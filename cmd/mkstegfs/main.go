// Command mkstegfs formats a file-backed StegFS volume.
//
// Usage:
//
//	mkstegfs -vol volume.img -size 67108864 -bs 1024 \
//	         -abandoned 0.01 -dummies 10 -dummy-size 1048576
//
// Formatting writes random patterns into every block, abandons the requested
// fraction of blocks, and creates the dummy hidden files — after this, used
// and free blocks are indistinguishable on the raw image.
package main

import (
	"flag"
	"fmt"
	"os"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	var (
		vol       = flag.String("vol", "", "path of the volume image to create (required)")
		size      = flag.Int64("size", 64<<20, "volume size in bytes")
		bs        = flag.Int("bs", 1<<10, "block size in bytes")
		abandoned = flag.Float64("abandoned", 0.01, "fraction of blocks to abandon")
		dummies   = flag.Int("dummies", 10, "number of dummy hidden files")
		dummySize = flag.Int64("dummy-size", 1<<20, "average dummy file size in bytes")
		freeMin   = flag.Int("free-min", 0, "minimum free blocks held per hidden file")
		freeMax   = flag.Int("free-max", 10, "maximum free blocks held per hidden file")
		maxPlain  = flag.Int("max-plain", 1024, "central directory capacity")
		seed      = flag.Int64("seed", 0, "deterministic seed (0 = derive from size)")
		cache     = flag.Int("cache", 4096, "format through a block cache of this many blocks (0 = uncached)")
		policy    = flag.String("cache-policy", "", "cache replacement policy: lru|arc|2q (default lru)")
		wbehind   = flag.Int("write-behind", 0, "start early write-back once this many dirty blocks accumulate (0 = only at sync)")
		flushers  = flag.Int("flush-workers", 0, "background flusher goroutines servicing write-behind runs (0 = default 1, negative = synchronous)")
	)
	flag.Parse()
	if *vol == "" {
		fmt.Fprintln(os.Stderr, "mkstegfs: -vol is required")
		flag.Usage()
		os.Exit(2)
	}
	if *size%int64(*bs) != 0 {
		fmt.Fprintf(os.Stderr, "mkstegfs: size %d is not a multiple of block size %d\n", *size, *bs)
		os.Exit(2)
	}
	store, err := vdisk.CreateFileStore(*vol, *size/int64(*bs), *bs)
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	p := stegfs.DefaultParams()
	p.PctAbandoned = *abandoned
	p.NDummy = *dummies
	p.DummyAvgSize = *dummySize
	p.FreeMin = *freeMin
	p.FreeMax = *freeMax
	p.MaxPlainFiles = *maxPlain
	if *seed != 0 {
		p.Seed = *seed
	} else {
		p.Seed = *size ^ int64(*bs)
	}
	// Formatting writes every block of the volume; a write-back cache batches
	// those writes into sequential flush passes. Write-behind keeps the dirty
	// backlog bounded when the cache is large.
	fs, err := stegfs.Format(store, p, stegfs.WithCache(*cache),
		stegfs.WithCachePolicy(*policy), stegfs.WithWriteBehind(*wbehind, *flushers))
	if err != nil {
		fatal(err)
	}
	if err := fs.Sync(); err != nil {
		fatal(err)
	}
	if err := store.Sync(); err != nil {
		fatal(err)
	}
	fmt.Printf("formatted %s: %d blocks x %d bytes, %d abandoned, %d dummies\n",
		*vol, *size/int64(*bs), *bs, fs.AbandonedCount(), *dummies)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkstegfs:", err)
	os.Exit(1)
}
