// Command lockcheck runs the repository's lock-hierarchy analyzer (see
// internal/analysis/lockcheck) over a set of packages and reports every
// violation of the annotated lock contracts: lock-order inversions, guarded
// fields touched without their mutex, and device I/O reached while a
// noio-flagged lock is held.
//
// Usage:
//
//	lockcheck [-json] [-dir moduledir] [packages]
//
// Packages default to ./... and accept any `go list` pattern, including
// explicit paths into testdata fixture trees (which wildcards skip), e.g.:
//
//	go run ./cmd/lockcheck ./...
//	go run ./cmd/lockcheck ./internal/stegdb
//	go run ./cmd/lockcheck ./internal/analysis/lockcheck/testdata/src/mutation
//
// The exit status is 1 when any diagnostic is reported, so CI can gate on
// it the way `go vet` would. (The module is dependency-free by design, so
// this binary is a standalone loader+checker rather than a
// golang.org/x/tools vettool; the checks and the annotation grammar follow
// the go/analysis idiom so a vettool port stays mechanical.)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stegfs/internal/analysis/load"
	"stegfs/internal/analysis/lockcheck"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit diagnostics as JSON (one object per finding)")
		dir     = flag.String("dir", ".", "module directory to resolve packages in")
	)
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	l := load.NewLoader(*dir)
	pkgs, err := l.Patterns(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		os.Exit(2)
	}
	diags := lockcheck.Analyze(l, pkgs)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Column   int    `json:"column"`
				Category string `json:"category"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Category, d.Message}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, "lockcheck:", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lockcheck: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
