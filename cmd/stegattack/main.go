// Command stegattack plays the adversary of Section 3: it inspects a StegFS
// volume image the way an attacker with full access would, and reports what
// can (and cannot) be learned.
//
// Usage:
//
//	stegattack -vol v.img scan          # raw-disk randomness scan
//	stegattack -vol v.img bruteforce    # used-but-unlisted block census
//	stegattack -vol v.img snapshot -out bm.snap     # save a bitmap snapshot
//	stegattack -vol v.img delta -prev bm.snap       # diff against a snapshot
package main

import (
	"flag"
	"fmt"
	"os"

	"stegfs/internal/adversary"
	"stegfs/internal/bitmapvec"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stegattack:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("stegattack", flag.ExitOnError)
	vol := global.String("vol", "", "volume image path (required)")
	bs := global.Int("bs", 1<<10, "block size")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 || *vol == "" {
		return fmt.Errorf("usage: stegattack -vol IMG <scan|bruteforce|snapshot|delta>")
	}
	store, err := vdisk.OpenFileStore(*vol, *bs)
	if err != nil {
		return err
	}
	defer store.Close()
	fs, err := stegfs.Mount(store)
	if err != nil {
		return err
	}

	switch rest[0] {
	case "scan":
		return attackScan(fs, store)
	case "bruteforce":
		return attackBruteForce(fs)
	case "snapshot":
		fl := flag.NewFlagSet("snapshot", flag.ExitOnError)
		out := fl.String("out", "bitmap.snap", "snapshot output path")
		fl.Parse(rest[1:])
		return os.WriteFile(*out, fs.Bitmap().Marshal(), 0o644)
	case "delta":
		fl := flag.NewFlagSet("delta", flag.ExitOnError)
		prev := fl.String("prev", "", "earlier bitmap snapshot")
		fl.Parse(rest[1:])
		return attackDelta(fs, *prev)
	default:
		return fmt.Errorf("unknown attack %q", rest[0])
	}
}

// attackScan samples blocks across the volume and reports whether any stand
// out statistically. On a correctly formatted StegFS volume nothing does:
// free space is random fill and hidden data is AES ciphertext.
func attackScan(fs *stegfs.FS, dev vdisk.Device) error {
	n := dev.NumBlocks()
	var sample []int64
	step := n / 512
	if step < 1 {
		step = 1
	}
	for b := fs.DataStart(); b < n; b += step {
		sample = append(sample, b)
	}
	st, err := adversary.ScanBlocks(dev, sample, 400)
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d blocks: mean chi2=%.1f max chi2=%.1f flagged=%d\n",
		st.Blocks, st.MeanChi, st.MaxChi, st.Flagged)
	if st.Flagged == 0 {
		fmt.Println("verdict: no block distinguishable from random fill")
	} else {
		fmt.Println("verdict: WARNING - some blocks look structured (plain files are expected to)")
	}
	return nil
}

// attackBruteForce counts blocks that are marked used but unreachable from
// the central directory — the §3.1 brute-force examination. The census mixes
// hidden data, dummies, pools and abandoned blocks indistinguishably.
func attackBruteForce(fs *stegfs.FS) error {
	bm := fs.Bitmap()
	// The attacker can enumerate plain files (central directory is public).
	plainRefs := make(map[int64]bool)
	for _, name := range fs.PlainNames() {
		_ = name // block-level enumeration below uses the FS's own accounting
	}
	refs, err := fs.PlainReferencedBlocks()
	if err != nil {
		return err
	}
	for b := range refs {
		plainRefs[b] = true
	}
	cands := adversary.UsedUnlisted(bm, plainRefs, fs.DataStart())
	total := bm.Len() - fs.DataStart()
	fmt.Printf("data region: %d blocks; used-but-unlisted: %d (%.2f%%)\n",
		total, len(cands), 100*float64(len(cands))/float64(total))
	fmt.Println("these blocks mix hidden data, dummy files, internal free pools and")
	fmt.Println("abandoned blocks; nothing in the image separates one from another")
	return nil
}

// attackDelta diffs the live bitmap against an earlier snapshot, the §3.1
// intruder who monitors allocations over time.
func attackDelta(fs *stegfs.FS, prevPath string) error {
	raw, err := os.ReadFile(prevPath)
	if err != nil {
		return err
	}
	prev, err := bitmapvec.Unmarshal(fs.Bitmap().Len(), raw)
	if err != nil {
		return err
	}
	newBlocks := bitmapvec.NewlySet(prev, fs.Bitmap())
	fmt.Printf("blocks newly allocated since snapshot: %d\n", len(newBlocks))
	fmt.Println("candidates include dummy-file churn and hidden files' internal free")
	fmt.Println("pools; the attacker cannot tell which newly allocated blocks hold data")
	return nil
}
