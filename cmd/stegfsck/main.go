// Command stegfsck cross-validates a StegFS volume image offline.
//
// Usage:
//
//	stegfsck -bs 1024 volume.img
//	stegfsck -bs 1024 -uid alice -names diary,ledger volume.img
//	stegfsck -bs 1024 -repair volume.img
//
// The check is key-asymmetric by design: geometry, the metadata region,
// plain files, and the system dummy set are always verified; hidden files
// are verified only for the keys supplied via -uid/-names (DeterministicKeys
// volumes) or -table. Used blocks no key reaches are reported as a count —
// they are indistinguishable cover, never an error.
//
// Exit status: 0 clean, 1 inconsistencies found, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stegfs/internal/stegdb"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	var (
		bs     = flag.Int("bs", 1<<10, "block size the image was formatted with")
		repair = flag.Bool("repair", false, "re-mark reachable-but-free blocks used and persist the bitmap")
		uid    = flag.String("uid", "", "user id owning -names (DeterministicKeys volumes)")
		names  = flag.String("names", "", "comma-separated hidden file names under -uid to verify")
		table  = flag.String("table", "", "embedded stegdb table to check, as uid/name")
		quiet  = flag.Bool("q", false, "print only errors")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "stegfsck: exactly one volume image required")
		flag.Usage()
		os.Exit(2)
	}
	if *names != "" && *uid == "" {
		fmt.Fprintln(os.Stderr, "stegfsck: -names requires -uid")
		os.Exit(2)
	}

	store, err := vdisk.OpenFileStore(flag.Arg(0), *bs)
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	opts := stegfs.CheckOptions{Repair: *repair}
	if *names != "" {
		opts.ViewFiles = map[string][]string{*uid: strings.Split(*names, ",")}
	}
	if *table != "" {
		u, n, ok := strings.Cut(*table, "/")
		if !ok {
			fmt.Fprintln(os.Stderr, "stegfsck: -table must be uid/name")
			os.Exit(2)
		}
		opts.Tables = []stegfs.TableRef{{UID: u, Name: n}}
		// CheckAny discovers whether the name is a plain table or partition
		// zero of a partitioned one, adopts every constituent hidden file
		// (partitions and journal siblings), and checks the whole structure;
		// the returned file list feeds stegfs block accounting.
		opts.CheckTable = func(view *stegfs.HiddenView, name string) ([]string, error) {
			return stegdb.CheckAny(view, view.Adopt, name)
		}
	}

	rep, err := stegfs.Check(store, opts)
	if err != nil {
		fatal(err)
	}
	if *repair {
		if err := store.Sync(); err != nil {
			fatal(err)
		}
	}
	if !*quiet {
		fmt.Print(rep.Summary())
	}
	if !rep.OK() {
		if *quiet {
			for _, e := range rep.Errors {
				fmt.Fprintln(os.Stderr, "stegfsck:", e)
			}
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Println("clean")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "stegfsck:", err)
	os.Exit(1)
}
