// Command stegbench regenerates the tables and figures of the paper's
// evaluation (Section 5). Each experiment prints the same rows/series the
// paper reports; values are simulated-disk seconds (see internal/vdisk).
//
// Usage:
//
//	stegbench -exp all                     # everything, paper-scale
//	stegbench -exp fig7 -scale small       # one experiment, test-scale
//	stegbench -exp space -volume 1073741824 -bs 1024
//	stegbench -exp ablate-cache -json out.jsonl
//
// With -json <path>, every sweep row is also appended to <path> as one
// JSON object per line (JSON Lines), tagged with its experiment name, so
// plots and regression tracking can consume runs without scraping the
// human-readable tables.
//
// Experiments: space, fig6, fig7, fig8, fig9, ablate-abandoned,
// ablate-pool, ablate-dummy, ablate-cache, ablate-policy,
// ablate-concurrency, ablate-write-concurrency, ablate-cached-write,
// ablate-stegdb, ablate-stegdb-write, ablate-faults, ida, speed, all.
//
// The speed experiment is the odd one out: it reports wall-clock CPU
// throughput (MB/s and allocs/op) of the crypto primitives and the cached
// sealed data path, not simulated-disk seconds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"stegfs/internal/bench"
)

// sink, when non-nil, receives one JSON object per sweep row (-json).
var sink *jsonSink

type jsonSink struct {
	f   *os.File
	enc *json.Encoder
}

func openSink(path string) (*jsonSink, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &jsonSink{f: f, enc: json.NewEncoder(f)}, nil
}

// emit writes row as a single flattened JSON object with an "experiment"
// tag. No-op when -json was not given.
func emit(experiment string, row any) {
	if sink == nil {
		return
	}
	b, err := json.Marshal(row)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stegbench: -json: %v\n", err)
		os.Exit(1)
	}
	m := map[string]any{}
	if err := json.Unmarshal(b, &m); err != nil {
		// Row is not an object (e.g. a bare value); nest it instead.
		m["row"] = json.RawMessage(b)
	}
	m["experiment"] = experiment
	if err := sink.enc.Encode(m); err != nil {
		fmt.Fprintf(os.Stderr, "stegbench: -json: %v\n", err)
		os.Exit(1)
	}
}

// emitSeries flattens figure series into one object per (series, point).
func emitSeries(experiment string, series []bench.Series, xLabel, yLabel string) {
	if sink == nil {
		return
	}
	for _, s := range series {
		for _, p := range s.Points {
			emit(experiment, map[string]any{
				"series": s.Label,
				xLabel:   p.X,
				yLabel:   p.Y,
			})
		}
	}
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: space|fig6|fig7|fig8|fig9|ablate-abandoned|ablate-pool|ablate-dummy|ablate-cache|ablate-policy|ablate-concurrency|ablate-write-concurrency|ablate-cached-write|ablate-stegdb|ablate-stegdb-write|ablate-faults|ida|speed|all")
		scale    = flag.String("scale", "small", "workload scale: paper|small")
		volume   = flag.Int64("volume", 0, "override volume size in bytes")
		bs       = flag.Int("bs", 0, "override block size in bytes")
		files    = flag.Int("files", 0, "override number of files")
		ops      = flag.Int("ops", 0, "override file operations per user")
		seed     = flag.Int64("seed", 1, "workload seed")
		policy   = flag.String("cache-policy", "", "cache replacement policy for cached experiments: lru|arc|2q (default lru)")
		jsonPath = flag.String("json", "", "append one JSON object per sweep row to this file (JSON Lines)")
	)
	flag.Parse()

	if *jsonPath != "" {
		s, err := openSink(*jsonPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "stegbench: -json: %v\n", err)
			os.Exit(2)
		}
		sink = s
		defer s.f.Close()
	}

	var cfg bench.Config
	switch *scale {
	case "paper":
		cfg = bench.PaperConfig()
	case "small":
		cfg = bench.SmallConfig()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *volume > 0 {
		cfg.VolumeBytes = *volume
	}
	if *bs > 0 {
		cfg.BlockSize = *bs
	}
	if *files > 0 {
		cfg.NumFiles = *files
	}
	if *ops > 0 {
		cfg.OpsPerUser = *ops
	}
	cfg.Seed = *seed
	cfg.CachePolicy = *policy

	run := func(name string, fn func(bench.Config) error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := fn(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("space", runSpace)
	run("fig6", runFig6)
	run("fig7", runFig7)
	run("fig8", runFig8)
	run("fig9", runFig9)
	run("ablate-abandoned", runAblateAbandoned)
	run("ablate-pool", runAblatePool)
	run("ablate-dummy", runAblateDummy)
	run("ablate-cache", runAblateCache)
	run("ablate-policy", runAblatePolicy)
	run("ablate-concurrency", runAblateConcurrency)
	run("ablate-write-concurrency", runAblateWriteConcurrency)
	run("ablate-cached-write", runAblateCachedWrite)
	run("ablate-stegdb", runAblateStegDB)
	run("ablate-stegdb-write", runAblateStegDBWrite)
	run("ablate-faults", runAblateFaults)
	run("ida", runIDA)
	run("speed", runSpeed)
}

func runSpeed(cfg bench.Config) error {
	// Small scale keeps each row's measured window tiny so the CI smoke run
	// finishes in seconds; paper scale measures long enough to be stable.
	budget := 20 * time.Millisecond
	if cfg.VolumeBytes >= 1<<30 {
		budget = 200 * time.Millisecond
	}
	rows, err := bench.SpeedSuite(cfg, budget)
	if err != nil {
		return err
	}
	fmt.Println("Raw speed — crypto primitives and cached sealed data path")
	fmt.Println("(single goroutine, wall clock; not simulated-disk seconds):")
	for _, line := range bench.FormatSpeedRows(rows) {
		fmt.Println(line)
	}
	for _, r := range rows {
		emit("speed", r)
	}
	return nil
}

func runAblateFaults(cfg bench.Config) error {
	fmt.Println("Ablation A-F — transient device faults (create/read/rewrite hidden-file workload):")
	fmt.Println("  fault-rate  retries-max       ops   errors  goodput  dev-retries  giveups  injected  read-only  disk-sec")
	for _, maxRetries := range []int{6, 0} {
		rows, err := bench.FaultSweep(cfg, nil, maxRetries)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("  %10.3f  %11d  %8d  %7d  %6.1f%%  %11d  %7d  %8d  %9v  %8.4f\n",
				r.Rate, r.MaxRetries, r.Ops, r.OpErrors, r.Goodput*100,
				r.Retries, r.GiveUps, r.Faults, r.ReadOnly, r.SimSeconds)
			emit("ablate-faults", r)
		}
	}
	return nil
}

func runAblatePolicy(cfg bench.Config) error {
	rows, err := bench.PolicySweep(cfg, nil, nil, 0)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A4b — replacement policy x capacity (scan+hot hidden-file workload):")
	fmt.Println("  policy    cache-blocks  disk-sec   speedup  hit-rate    hits  misses  writebacks")
	for _, r := range rows {
		fmt.Printf("  %-8s  %12d  %8.4f  %7.2fx  %7.1f%%  %6d  %6d  %10d\n",
			r.Policy, r.CacheBlocks, r.Seconds, r.Speedup, r.HitRate*100,
			r.Stats.Hits, r.Stats.Misses, r.Stats.WriteBacks)
		emit("ablate-policy", r)
	}
	return nil
}

func runAblateConcurrency(cfg bench.Config) error {
	rows, err := bench.ConcurrencySweep(cfg, nil, 0, 0)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A5 — parallel read path (goroutines over one shared cached volume,")
	fmt.Println("latency-emulated disk; wall-clock is real time, disk-sec the simulated clock):")
	fmt.Println("  goroutines  wall-sec     ops/s   speedup  disk-sec  hit-rate")
	for _, r := range rows {
		fmt.Printf("  %10d  %8.3f  %8.1f  %7.2fx  %8.3f  %7.1f%%\n",
			r.Goroutines, r.WallSeconds, r.OpsPerSec, r.Speedup, r.DiskSeconds, r.HitRate*100)
		emit("ablate-concurrency", r)
	}
	return nil
}

func runAblateWriteConcurrency(cfg bench.Config) error {
	rows, report, err := bench.WriteConcurrencySweep(cfg, nil, 0, 0)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A6 — parallel write path (goroutines over one shared uncached volume,")
	fmt.Println("mixed create/rewrite/delete on distinct objects; latency-emulated disk):")
	fmt.Println("  goroutines  wall-sec     ops/s   speedup  disk-sec")
	for _, r := range rows {
		fmt.Printf("  %10d  %8.3f  %8.1f  %7.2fx  %8.3f\n",
			r.Goroutines, r.WallSeconds, r.OpsPerSec, r.Speedup, r.DiskSeconds)
		emit("ablate-write-concurrency", r)
	}
	printAllocReport(report)
	emit("ablate-write-concurrency-alloc", report)
	return nil
}

func runAblateCachedWrite(cfg bench.Config) error {
	rows, report, err := bench.CachedWriteConcurrencySweep(cfg, nil, 0)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A7 — cached parallel write path (goroutines over one shared volume")
	fmt.Println("mounted through the write-back cache with the async flush pipeline; cold reads +")
	fmt.Println("mixed create/rewrite/delete; window ends at the Sync barrier; latency-emulated disk;")
	fmt.Println("sync-tail is the closing barrier alone — the elevator (C-SCAN) flusher keeps it short):")
	fmt.Println("  goroutines  wall-sec     ops/s   speedup  disk-sec  sync-tail  hit-rate  writebacks  batches  wbehind  stalls")
	for _, r := range rows {
		fmt.Printf("  %10d  %8.3f  %8.1f  %7.2fx  %8.3f  %9.3f  %7.1f%%  %10d  %7d  %7d  %6d\n",
			r.Goroutines, r.WallSeconds, r.OpsPerSec, r.Speedup, r.DiskSeconds, r.SyncTailSeconds,
			r.HitRate*100, r.WriteBacks, r.FlushBatches, r.WriteBehinds, r.FlushStalls)
		emit("ablate-cached-write", r)
	}
	printAllocReport(report)
	emit("ablate-cached-write-alloc", report)
	return nil
}

func runAblateStegDB(cfg bench.Config) error {
	rows, err := bench.StegDBConcurrencySweep(cfg, nil, 0, 0)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A8 — concurrent hidden database (goroutines of mixed Get/Put/Delete/")
	fmt.Println("Scan over ONE shared stegdb table on a cached, latency-emulated volume; scans")
	fmt.Println("read pager snapshots; write-back Sync runs between levels, unmeasured):")
	fmt.Println("  goroutines  wall-sec     ops/s   speedup  disk-sec  hit-rate")
	for _, r := range rows {
		fmt.Printf("  %10d  %8.3f  %8.1f  %7.2fx  %8.3f  %7.1f%%\n",
			r.Goroutines, r.WallSeconds, r.OpsPerSec, r.Speedup, r.DiskSeconds, r.HitRate*100)
		emit("ablate-stegdb", r)
	}
	return nil
}

func runAblateStegDBWrite(cfg bench.Config) error {
	rows, err := bench.StegDBWriteSweep(cfg, nil, 0, 0)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A9 — stegdb write scalability (goroutines of a write-heavy mixed")
	fmt.Println("Put/Delete/Get/Range op set over ONE shared PARTITIONED hidden table — B-link")
	fmt.Println("tree writers, hash-sharded partitions, group-commit Sync between levels,")
	fmt.Println("unmeasured; cached, latency-emulated volume; identical op set per level):")
	fmt.Println("  goroutines  partitions  wall-sec     ops/s   speedup  disk-sec  hit-rate")
	for _, r := range rows {
		fmt.Printf("  %10d  %10d  %8.3f  %8.1f  %7.2fx  %8.3f  %7.1f%%\n",
			r.Goroutines, r.Partitions, r.WallSeconds, r.OpsPerSec, r.Speedup, r.DiskSeconds, r.HitRate*100)
		emit("ablate-stegdb-write", r)
	}
	return nil
}

// printAllocReport prints the sharded allocator's group-skew summary under a
// concurrency sweep's table.
func printAllocReport(rep bench.AllocReport) {
	contPct := 0.0
	if rep.Locks > 0 {
		contPct = 100 * float64(rep.Contended) / float64(rep.Locks)
	}
	fmt.Printf("  alloc groups=%d allocs=%d frees=%d lock-contention=%d/%d (%.2f%%) per-group allocs min/mean/max=%d/%.1f/%d\n",
		rep.Groups, rep.Allocs, rep.Frees, rep.Contended, rep.Locks, contPct,
		rep.MinAllocs, rep.MeanAllocs, rep.MaxAllocs)
}

func runAblateCache(cfg bench.Config) error {
	rows, err := bench.CacheSweep(cfg, nil, 0, 0)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A4 — block cache capacity (repeated-read hidden-file workload):")
	fmt.Println("  cache-blocks  disk-sec   speedup  hit-rate   hits  misses  writebacks")
	for _, r := range rows {
		fmt.Printf("  %12d  %8.4f  %7.2fx  %7.1f%%  %5d  %6d  %10d\n",
			r.CacheBlocks, r.Seconds, r.Speedup, r.HitRate*100,
			r.Stats.Hits, r.Stats.Misses, r.Stats.WriteBacks)
		emit("ablate-cache", r)
	}
	return nil
}

func runIDA(cfg bench.Config) error {
	rows := bench.IDAComparison(cfg, nil, 4)
	fmt.Println("Extension E-IDA — replication vs Rabin IDA at equal overhead:")
	for _, line := range bench.FormatIDARows(rows) {
		fmt.Println(line)
	}
	for _, r := range rows {
		emit("ida", r)
	}
	return nil
}

func runSpace(cfg bench.Config) error {
	rows, err := bench.SpaceTable(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Effective space utilization (§5.2):")
	for _, r := range rows {
		fmt.Printf("  %-10s %6.1f%%   %s\n", r.Scheme, r.Utilization*100, r.Note)
		emit("space", r)
	}
	return nil
}

func runFig6(cfg bench.Config) error {
	series := bench.StegRandSpaceCurve(cfg, nil, nil)
	fmt.Println("Figure 6 — StegRand space utilization vs replication factor:")
	printSeries(series, "repl", "util")
	emitSeries("fig6", series, "repl", "util")
	return nil
}

func runFig7(cfg bench.Config) error {
	readS, writeS, err := bench.ConcurrencyCurve(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("Figure 7(a) — read access time (s) vs concurrent users:")
	printSeries(readS, "users", "sec")
	emitSeries("fig7a", readS, "users", "sec")
	fmt.Println("Figure 7(b) — write access time (s) vs concurrent users:")
	printSeries(writeS, "users", "sec")
	emitSeries("fig7b", writeS, "users", "sec")
	return nil
}

func runFig8(cfg bench.Config) error {
	sizes := scaledFig8Sizes(cfg)
	readS, writeS, err := bench.FileSizeCurve(cfg, sizes, 16)
	if err != nil {
		return err
	}
	fmt.Println("Figure 8(a) — normalized read time (s/KB) vs file size (KB):")
	printSeries(readS, "KB", "s/KB")
	emitSeries("fig8a", readS, "kb", "sPerKB")
	fmt.Println("Figure 8(b) — normalized write time (s/KB) vs file size (KB):")
	printSeries(writeS, "KB", "s/KB")
	emitSeries("fig8b", writeS, "kb", "sPerKB")
	return nil
}

// scaledFig8Sizes keeps the Figure 8 sweep inside the configured file-size
// range when running at reduced scale.
func scaledFig8Sizes(cfg bench.Config) []int {
	if cfg.FileHi >= 2<<20 {
		return nil // paper scale: use the figure's own axis
	}
	hiKB := int(cfg.FileHi >> 10)
	var out []int
	for f := 1; f <= 10; f++ {
		out = append(out, hiKB*f/10)
	}
	return out
}

func runFig9(cfg bench.Config) error {
	readS, writeS, err := bench.BlockSizeCurve(cfg, nil, 0)
	if err != nil {
		return err
	}
	fmt.Println("Figure 9(a) — serial read access time (s) vs block size (KB):")
	printSeries(readS, "KB", "sec")
	emitSeries("fig9a", readS, "kb", "sec")
	fmt.Println("Figure 9(b) — serial write access time (s) vs block size (KB):")
	printSeries(writeS, "KB", "sec")
	emitSeries("fig9b", writeS, "kb", "sec")
	return nil
}

func runAblateAbandoned(cfg bench.Config) error {
	rows, err := bench.AbandonedSweep(cfg, nil, 16)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A1 — abandoned-block percentage:")
	fmt.Println("  pct%   util%   candidates  hidden  guesswork")
	for _, r := range rows {
		fmt.Printf("  %4.0f  %6.1f  %10d  %6d  %9.2f\n",
			r.PctAbandoned*100, r.Utilization*100, r.Candidates, r.HiddenBlocks, r.GuessWork)
		emit("ablate-abandoned", r)
	}
	return nil
}

func runAblatePool(cfg bench.Config) error {
	rows, err := bench.FreePoolSweep(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A2 — hidden-file free-pool size:")
	fmt.Println("  FreeMax  attack-precision  create-sec")
	for _, r := range rows {
		fmt.Printf("  %7d  %16.3f  %10.4f\n", r.FreeMax, r.AttackPrecision, r.CreateSeconds)
		emit("ablate-pool", r)
	}
	return nil
}

func runAblateDummy(cfg bench.Config) error {
	rows, err := bench.DummySweep(cfg, nil)
	if err != nil {
		return err
	}
	fmt.Println("Ablation A3 — dummy hidden files:")
	fmt.Println("  NDummy  attack-precision  candidates")
	for _, r := range rows {
		fmt.Printf("  %6d  %16.3f  %10d\n", r.NDummy, r.AttackPrecision, r.Candidates)
		emit("ablate-dummy", r)
	}
	return nil
}

// printSeries renders series as aligned columns, one row per X value.
func printSeries(series []bench.Series, xLabel, yLabel string) {
	if len(series) == 0 {
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "  %8s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %12s", s.Label)
	}
	fmt.Println(b.String())
	for i := range series[0].Points {
		b.Reset()
		fmt.Fprintf(&b, "  %8.4g", series[0].Points[i].X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "  %12.5g", s.Points[i].Y)
			}
		}
		fmt.Println(b.String())
	}
	_ = yLabel
}
