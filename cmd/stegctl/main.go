// Command stegctl operates on a StegFS volume image, exposing the nine
// steganographic APIs of Section 4 plus the plain-file operations.
//
// Usage:
//
//	stegctl -vol v.img <subcommand> [flags]
//
// Subcommands:
//
//	ls                                     list plain files (what an admin sees)
//	put   -name N -in FILE                 create a plain file
//	get   -name N -out FILE                read a plain file
//	rm    -name N                          delete a plain file
//	steg-create  -uid U -uak K -name N [-dir] [-in FILE]   steg_create
//	steg-put     -uid U -uak K -name N[,N...] -in F[,F...] [-workers W]
//	                                           parallel multi-file steg_create
//	steg-hide    -uid U -uak K -path P -name N             steg_hide
//	steg-unhide  -uid U -uak K -path P -name N             steg_unhide
//	steg-ls      -uid U -uak K                             list a UAK directory
//	steg-cat     -uid U -uak K -name N[,N...] [-out FILE]   connect + read (parallel)
//	steg-write   -uid U -uak K -name N -in FILE            connect + write
//	steg-rm      -uid U -uak K -name N                     delete hidden object
//	keygen       -priv F -pub F                            recipient key pair
//	getentry     -uid U -uak K -name N -pub F -out ENTRY   steg_getentry
//	addentry     -uid U -uak K -priv F -entry ENTRY        steg_addentry
//	backup       -out FILE                                 steg_backup
//	recover      -in FILE                                  steg_recovery
//	tick-dummies                                           dummy maintenance round
package main

import (
	"crypto/rsa"
	"crypto/x509"
	"encoding/pem"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"stegfs/internal/sgcrypto"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stegctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	global := flag.NewFlagSet("stegctl", flag.ExitOnError)
	vol := global.String("vol", "", "volume image path (required)")
	bs := global.Int("bs", 1<<10, "block size the volume was formatted with")
	cache := global.Int("cache", 0, "mount through a block cache of this many blocks (0 = uncached)")
	cachePolicy := global.String("cache-policy", "", "cache replacement policy: lru|arc|2q (default lru)")
	writeBehind := global.Int("write-behind", 0, "start early write-back once this many dirty blocks accumulate (0 = only at sync)")
	flushWorkers := global.Int("flush-workers", 0, "background flusher goroutines servicing write-behind runs (0 = default 1, negative = synchronous)")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand")
	}
	cmd, cmdArgs := rest[0], rest[1:]

	// keygen does not need a volume.
	if cmd == "keygen" {
		return cmdKeygen(cmdArgs)
	}
	if *vol == "" {
		return fmt.Errorf("-vol is required")
	}
	store, err := vdisk.OpenFileStore(*vol, *bs)
	if err != nil {
		return err
	}
	defer store.Close()

	if cmd == "recover" {
		return cmdRecover(store, cmdArgs)
	}
	fs, err := stegfs.Mount(store, stegfs.WithCache(*cache),
		stegfs.WithCachePolicy(*cachePolicy), stegfs.WithWriteBehind(*writeBehind, *flushWorkers))
	if err != nil {
		return err
	}
	cmdErr := runCmd(fs, cmd, cmdArgs)
	// Sync flushes the cache (data before metadata) and then the
	// superblock/bitmap, so the image on disk is always consistent. With a
	// write-back cache this is the moment data reaches the device — a
	// swallowed error here would silently lose everything just written.
	if err := fs.Sync(); err != nil && cmdErr == nil {
		cmdErr = fmt.Errorf("sync volume: %w", err)
	}
	if err := store.Sync(); err != nil && cmdErr == nil {
		cmdErr = fmt.Errorf("sync store: %w", err)
	}
	return cmdErr
}

func runCmd(fs *stegfs.FS, cmd string, cmdArgs []string) error {
	switch cmd {
	case "ls":
		for _, n := range fs.PlainNames() {
			fmt.Println(n)
		}
		return nil
	case "put":
		return cmdPut(fs, cmdArgs)
	case "get":
		return cmdGet(fs, cmdArgs)
	case "rm":
		return cmdRm(fs, cmdArgs)
	case "steg-create":
		return cmdStegCreate(fs, cmdArgs)
	case "steg-put":
		return cmdStegPut(fs, cmdArgs)
	case "steg-hide":
		return cmdStegHide(fs, cmdArgs)
	case "steg-unhide":
		return cmdStegUnhide(fs, cmdArgs)
	case "steg-ls":
		return cmdStegLs(fs, cmdArgs)
	case "steg-cat":
		return cmdStegCat(fs, cmdArgs)
	case "steg-write":
		return cmdStegWrite(fs, cmdArgs)
	case "steg-rm":
		return cmdStegRm(fs, cmdArgs)
	case "getentry":
		return cmdGetEntry(fs, cmdArgs)
	case "addentry":
		return cmdAddEntry(fs, cmdArgs)
	case "backup":
		return cmdBackup(fs, cmdArgs)
	case "tick-dummies":
		return fs.TickDummies()
	default:
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

// userFlags declares the common -uid/-uak pair.
func userFlags(fl *flag.FlagSet) (uid, uak *string) {
	uid = fl.String("uid", "", "user id")
	uak = fl.String("uak", "", "user access key")
	return
}

func session(fs *stegfs.FS, uid string) (*stegfs.Session, error) {
	if uid == "" {
		return nil, fmt.Errorf("-uid is required")
	}
	return fs.NewSession(uid)
}

func cmdPut(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("put", flag.ExitOnError)
	name := fl.String("name", "", "plain file name")
	in := fl.String("in", "", "input file")
	fl.Parse(args)
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	return fs.Create(*name, data)
}

func cmdGet(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("get", flag.ExitOnError)
	name := fl.String("name", "", "plain file name")
	out := fl.String("out", "", "output file (default stdout)")
	fl.Parse(args)
	data, err := fs.Read(*name)
	if err != nil {
		return err
	}
	return writeOut(*out, data)
}

func cmdRm(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("rm", flag.ExitOnError)
	name := fl.String("name", "", "plain file name")
	fl.Parse(args)
	return fs.Delete(*name)
}

func cmdStegCreate(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-create", flag.ExitOnError)
	uid, uak := userFlags(fl)
	name := fl.String("name", "", "hidden object name")
	dir := fl.Bool("dir", false, "create a hidden directory")
	in := fl.String("in", "", "initial contents (files only)")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	objtype := stegfs.FlagFile
	var data []byte
	if *dir {
		objtype = stegfs.FlagDir
	} else if *in != "" {
		if data, err = os.ReadFile(*in); err != nil {
			return err
		}
	}
	return s.CreateHidden(*name, []byte(*uak), objtype, data)
}

func cmdStegPut(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-put", flag.ExitOnError)
	uid, uak := userFlags(fl)
	name := fl.String("name", "", "hidden object name(s), comma-separated")
	in := fl.String("in", "", "input file(s), comma-separated, one per name")
	workers := fl.Int("workers", 4, "bound on concurrent object writes")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	names := strings.Split(*name, ",")
	files := strings.Split(*in, ",")
	if len(names) != len(files) {
		return fmt.Errorf("steg-put: %d names but %d input files", len(names), len(files))
	}
	datas := make([][]byte, len(files))
	for i, f := range files {
		if datas[i], err = os.ReadFile(f); err != nil {
			return err
		}
	}
	// Writers to distinct hidden objects overlap their device waits (the
	// object creations spread across the sharded allocator's groups); the
	// directory entries are recorded in one namespace-lock hold at the end.
	return s.CreateHiddenBatch(names, []byte(*uak), datas, *workers)
}

func cmdStegHide(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-hide", flag.ExitOnError)
	uid, uak := userFlags(fl)
	path := fl.String("path", "", "plain file to hide")
	name := fl.String("name", "", "target hidden object name")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	return s.Hide(*path, *name, []byte(*uak))
}

func cmdStegUnhide(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-unhide", flag.ExitOnError)
	uid, uak := userFlags(fl)
	path := fl.String("path", "", "target plain file name")
	name := fl.String("name", "", "hidden object to reveal")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	return s.Unhide(*path, *name, []byte(*uak))
}

func cmdStegLs(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-ls", flag.ExitOnError)
	uid, uak := userFlags(fl)
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	entries, err := s.ListHidden([]byte(*uak))
	if err != nil {
		return err
	}
	for _, e := range entries {
		kind := "file"
		if e.Flags&stegfs.FlagDir != 0 {
			kind = "dir"
		}
		fmt.Printf("%-4s %s\n", kind, e.Name)
	}
	return nil
}

func cmdStegCat(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-cat", flag.ExitOnError)
	uid, uak := userFlags(fl)
	name := fl.String("name", "", "hidden object name(s), comma-separated; multiple names are read in parallel")
	out := fl.String("out", "", "output file (default stdout; with multiple names, a -<name> suffix is appended)")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	names := strings.Split(*name, ",")
	for _, n := range names {
		if err := s.Connect(n, []byte(*uak)); err != nil {
			return err
		}
	}
	defer s.Logoff()
	// Reads of distinct hidden objects hold only per-object shared locks, so
	// a multi-name cat overlaps its device waits; outputs are emitted in the
	// order the names were given.
	datas := make([][]byte, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, n := range names {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			datas[i], errs[i] = s.ReadHidden(n)
		}(i, n)
	}
	wg.Wait()
	for i, n := range names {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", n, errs[i])
		}
		dst := *out
		if dst != "" && len(names) > 1 {
			dst = dst + "-" + strings.ReplaceAll(n, "/", "_")
		}
		if err := writeOut(dst, datas[i]); err != nil {
			return err
		}
	}
	return nil
}

func cmdStegWrite(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-write", flag.ExitOnError)
	uid, uak := userFlags(fl)
	name := fl.String("name", "", "hidden object name")
	in := fl.String("in", "", "input file")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	if err := s.Connect(*name, []byte(*uak)); err != nil {
		return err
	}
	defer s.Logoff()
	return s.WriteHidden(*name, data)
}

func cmdStegRm(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("steg-rm", flag.ExitOnError)
	uid, uak := userFlags(fl)
	name := fl.String("name", "", "hidden object name")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	return s.DeleteHidden(*name, []byte(*uak))
}

func cmdKeygen(args []string) error {
	fl := flag.NewFlagSet("keygen", flag.ExitOnError)
	privPath := fl.String("priv", "", "private key output (PEM)")
	pubPath := fl.String("pub", "", "public key output (PEM)")
	fl.Parse(args)
	priv, err := sgcrypto.GenerateKeyPair()
	if err != nil {
		return err
	}
	privPEM := pem.EncodeToMemory(&pem.Block{Type: "RSA PRIVATE KEY", Bytes: x509.MarshalPKCS1PrivateKey(priv)})
	pubPEM := pem.EncodeToMemory(&pem.Block{Type: "RSA PUBLIC KEY", Bytes: x509.MarshalPKCS1PublicKey(&priv.PublicKey)})
	if err := os.WriteFile(*privPath, privPEM, 0o600); err != nil {
		return err
	}
	return os.WriteFile(*pubPath, pubPEM, 0o644)
}

func loadPriv(path string) (*rsa.PrivateKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	blk, _ := pem.Decode(raw)
	if blk == nil {
		return nil, fmt.Errorf("%s: not PEM", path)
	}
	return x509.ParsePKCS1PrivateKey(blk.Bytes)
}

func loadPub(path string) (*rsa.PublicKey, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	blk, _ := pem.Decode(raw)
	if blk == nil {
		return nil, fmt.Errorf("%s: not PEM", path)
	}
	return x509.ParsePKCS1PublicKey(blk.Bytes)
}

func cmdGetEntry(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("getentry", flag.ExitOnError)
	uid, uak := userFlags(fl)
	name := fl.String("name", "", "hidden object to share")
	pubPath := fl.String("pub", "", "recipient public key (PEM)")
	out := fl.String("out", "", "entry-file output path")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	pub, err := loadPub(*pubPath)
	if err != nil {
		return err
	}
	ct, err := s.GetEntry(*name, []byte(*uak), pub)
	if err != nil {
		return err
	}
	return os.WriteFile(*out, ct, 0o600)
}

func cmdAddEntry(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("addentry", flag.ExitOnError)
	uid, uak := userFlags(fl)
	privPath := fl.String("priv", "", "recipient private key (PEM)")
	entry := fl.String("entry", "", "entry-file path")
	fl.Parse(args)
	s, err := session(fs, *uid)
	if err != nil {
		return err
	}
	priv, err := loadPriv(*privPath)
	if err != nil {
		return err
	}
	ct, err := os.ReadFile(*entry)
	if err != nil {
		return err
	}
	if err := s.AddEntry(ct, priv, []byte(*uak)); err != nil {
		return err
	}
	// Figure 4: "the ciphertext is destroyed" after the entry is added.
	return os.Remove(*entry)
}

func cmdBackup(fs *stegfs.FS, args []string) error {
	fl := flag.NewFlagSet("backup", flag.ExitOnError)
	out := fl.String("out", "", "backup file path")
	fl.Parse(args)
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	return fs.Backup(f)
}

func cmdRecover(store *vdisk.FileStore, args []string) error {
	fl := flag.NewFlagSet("recover", flag.ExitOnError)
	in := fl.String("in", "", "backup file path")
	fl.Parse(args)
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	fs, err := stegfs.Recover(store, f)
	if err != nil {
		return err
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	return store.Sync()
}

func writeOut(path string, data []byte) error {
	if path == "" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
