module stegfs

go 1.24
