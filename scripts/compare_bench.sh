#!/usr/bin/env bash
# compare_bench.sh BASELINE.jsonl CURRENT.jsonl
#
# Gate a fresh `stegbench -json` run against the committed BENCH_seed.json
# baseline. See scripts/compare_bench.jq for exactly which columns are
# compared and with what tolerance (deterministic columns only — never
# wall clock). Exits non-zero, listing every offending row, on drift.
#
# Refresh the baseline deliberately, on a quiet machine, when a PR changes
# the benched behavior on purpose:
#   rm -f BENCH_seed.json
#   go run ./cmd/stegbench -exp ablate-stegdb-write -scale small -json BENCH_seed.json
#   go run ./cmd/stegbench -exp speed              -scale small -json BENCH_seed.json
set -euo pipefail

if [ "$#" -ne 2 ]; then
    echo "usage: $0 BASELINE.jsonl CURRENT.jsonl" >&2
    exit 2
fi

exec jq -rn \
    --slurpfile base "$1" \
    --slurpfile cur "$2" \
    -f "$(dirname "$0")/compare_bench.jq"
