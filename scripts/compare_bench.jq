# Compare a fresh stegbench JSONL run against the committed baseline
# (BENCH_seed.json). Invoked by scripts/compare_bench.sh with
# --slurpfile base / --slurpfile cur.
#
# Only columns the workload itself determines are compared — wall-clock
# and MB/s depend on the machine and are never gated here:
#
#   ablate-stegdb-write : simulated-disk seconds (±5%) and block-cache
#                         hit rate (±2pp) per goroutine level — the op set
#                         is deterministic, so these must reproduce; plus
#                         an absolute floor on the 8-goroutine speedup
#                         (the A9 acceptance gate, with slack for noisy
#                         shared runners).
#   speed               : allocs/op per operation (+0.5 slack) — the heap
#                         cost of the sealed data path must not regress.

def abs: if . < 0 then -. else . end;

($base | map(select(.experiment == "ablate-stegdb-write"))) as $ba9
| ($cur | map(select(.experiment == "ablate-stegdb-write"))) as $ca9
| ($base | map(select(.experiment == "speed"))) as $bsp
| ($cur | map(select(.experiment == "speed"))) as $csp
| [
    ($ba9[] as $b
     | ($ca9 | map(select(.Goroutines == $b.Goroutines)) | first) as $c
     | if $c == null
       then "A9 g=\($b.Goroutines): row missing from current run"
       elif (($c.DiskSeconds - $b.DiskSeconds) | abs) > 0.05 * $b.DiskSeconds
       then "A9 g=\($b.Goroutines): disk-sec \($c.DiskSeconds) drifted >5% from baseline \($b.DiskSeconds)"
       elif (($c.HitRate - $b.HitRate) | abs) > 0.02
       then "A9 g=\($b.Goroutines): hit-rate \($c.HitRate) drifted >2pp from baseline \($b.HitRate)"
       else empty
       end),
    (($ca9 | map(select(.Goroutines == 8)) | first) as $c
     | if $c == null
       then "A9: no 8-goroutine row in current run"
       elif $c.Speedup < 3.0
       then "A9: speedup at 8 goroutines is \($c.Speedup)x, below the 3.0x CI floor"
       else empty
       end),
    ($bsp[] as $b
     | ($csp | map(select(.op == $b.op)) | first) as $c
     | if $c == null
       then "speed \($b.op): row missing from current run"
       elif $c.allocsPerOp > $b.allocsPerOp + 0.5
       then "speed \($b.op): allocs/op \($c.allocsPerOp) regressed past baseline \($b.allocsPerOp)+0.5"
       else empty
       end)
  ]
| if length == 0
  then "bench-compare: all rows within tolerance of BENCH_seed.json"
  else (.[] | "bench-compare: FAIL: \(.)"),
       ("\(length) bench row(s) outside tolerance" | halt_error(1))
  end
