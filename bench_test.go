// Package stegfs_test hosts the top-level benchmark harness: one testing.B
// benchmark per table/figure of the paper's evaluation (Section 5), plus
// per-scheme micro-benchmarks. Benchmarks run at reduced scale so the whole
// suite completes quickly; cmd/stegbench runs the same experiments at paper
// scale and prints the full tables.
//
// Reported custom metrics are simulated-disk seconds (sim-s/op and
// sim-s-per-KB), the paper's y-axes.
package stegfs_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"stegfs/internal/bench"
	"stegfs/internal/stegdb"
	"stegfs/internal/stegfs"
	"stegfs/internal/stegrand"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

// benchConfig returns the reduced-scale configuration used by all harness
// benchmarks.
func benchConfig() bench.Config {
	cfg := bench.SmallConfig()
	cfg.VolumeBytes = 16 << 20
	cfg.FileLo = 32 << 10
	cfg.FileHi = 64 << 10
	cfg.NumFiles = 24
	cfg.CoverBytes = 64 << 10
	cfg.OpsPerUser = 2
	cfg.Steg.DummyAvgSize = 32 << 10
	cfg.Steg.NDummy = 4
	return cfg
}

// BenchmarkSpaceUtilization regenerates the §5.2 space-utilization
// comparison (StegCover ~75%, StegRand ~5%, StegFS >80%).
func BenchmarkSpaceUtilization(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.SpaceTable(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Utilization*100, "util%/"+r.Scheme)
			}
		}
	}
}

// BenchmarkFig6StegRandSpace regenerates Figure 6: StegRand space
// utilization versus replication factor, per block size.
func BenchmarkFig6StegRandSpace(b *testing.B) {
	cfg := benchConfig()
	for _, bs := range []int{512, 1 << 10, 4 << 10} {
		for _, repl := range []int{1, 4, 8, 16, 64} {
			b.Run(fmt.Sprintf("bs=%d/repl=%d", bs, repl), func(b *testing.B) {
				var util float64
				for i := 0; i < b.N; i++ {
					res := stegrand.SimulateLoad(cfg.VolumeBytes/int64(bs), bs, repl, cfg.Seed,
						stegrand.UniformFileSize(cfg.FileLo, cfg.FileHi))
					util = res.Utilization
				}
				b.ReportMetric(util*100, "util%")
			})
		}
	}
}

// BenchmarkFig7Concurrency regenerates Figure 7: read and write access time
// versus the number of concurrent users, for all five schemes.
func BenchmarkFig7Concurrency(b *testing.B) {
	cfg := benchConfig()
	specs := cfg.Specs()
	for _, scheme := range bench.SchemeNames {
		for _, users := range []int{1, 8, 32} {
			for _, op := range []workload.Op{workload.OpRead, workload.OpWrite} {
				b.Run(fmt.Sprintf("%s/u=%d/%s", scheme, users, op), func(b *testing.B) {
					var lat float64
					for i := 0; i < b.N; i++ {
						inst, err := bench.BuildInstance(scheme, cfg, specs)
						if err != nil {
							b.Fatal(err)
						}
						res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, users, cfg.OpsPerUser, op, cfg.Seed)
						if err != nil {
							b.Fatal(err)
						}
						lat = res.AvgPerOp.Seconds()
					}
					b.ReportMetric(lat, "sim-s/op")
				})
			}
		}
	}
}

// BenchmarkFig8FileSize regenerates Figure 8: normalized access time (per
// KB) versus file size under interleaved multi-user load.
func BenchmarkFig8FileSize(b *testing.B) {
	cfg := benchConfig()
	for _, scheme := range bench.SchemeNames {
		for _, kb := range []int{16, 32, 64} {
			b.Run(fmt.Sprintf("%s/%dKB", scheme, kb), func(b *testing.B) {
				var perKB float64
				for i := 0; i < b.N; i++ {
					sized := cfg
					sized.FileLo = int64(kb) << 10
					sized.FileHi = int64(kb) << 10
					sized.NumFiles = 16
					specs := workload.FixedSpecs(sized.NumFiles, int64(kb)<<10, "f")
					inst, err := bench.BuildInstance(scheme, sized, specs)
					if err != nil {
						b.Fatal(err)
					}
					res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, 8, sized.OpsPerUser, workload.OpRead, sized.Seed)
					if err != nil {
						b.Fatal(err)
					}
					perKB = res.AvgPerOp.Seconds() / float64(kb)
				}
				b.ReportMetric(perKB, "sim-s-per-KB")
			})
		}
	}
}

// BenchmarkFig9BlockSize regenerates Figure 9: serial single-user access
// time versus block size.
func BenchmarkFig9BlockSize(b *testing.B) {
	cfg := benchConfig()
	for _, scheme := range bench.SchemeNames {
		for _, bs := range []int{512, 4 << 10, 32 << 10} {
			b.Run(fmt.Sprintf("%s/bs=%d", scheme, bs), func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					sized := cfg
					sized.BlockSize = bs
					sized.FileLo = 64 << 10
					sized.FileHi = 64 << 10
					sized.NumFiles = 8
					specs := workload.FixedSpecs(sized.NumFiles, 64<<10, "f")
					inst, err := bench.BuildInstance(scheme, sized, specs)
					if err != nil {
						b.Fatal(err)
					}
					res, err := workload.RunInterleaved(inst.Disk, inst.FS, specs, 1, sized.OpsPerUser, workload.OpRead, sized.Seed)
					if err != nil {
						b.Fatal(err)
					}
					lat = res.AvgPerOp.Seconds()
				}
				b.ReportMetric(lat, "sim-s/op")
			})
		}
	}
}

// BenchmarkAblateAbandoned regenerates ablation A1 (abandoned-block
// percentage vs utilization and attacker guess-work).
func BenchmarkAblateAbandoned(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.AbandonedSweep(cfg, []float64{0, 0.01, 0.10}, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.Utilization*100, fmt.Sprintf("util%%@%.0f%%", r.PctAbandoned*100))
			}
		}
	}
}

// BenchmarkAblateFreePool regenerates ablation A2 (free-pool size vs
// snapshot-attack precision).
func BenchmarkAblateFreePool(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.FreePoolSweep(cfg, []int{0, 10, 28})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AttackPrecision, fmt.Sprintf("precision@max=%d", r.FreeMax))
			}
		}
	}
}

// BenchmarkAblateDummies regenerates ablation A3 (dummy count vs
// snapshot-attack precision).
func BenchmarkAblateDummies(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows, err := bench.DummySweep(cfg, []int{0, 4, 16})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AttackPrecision, fmt.Sprintf("precision@n=%d", r.NDummy))
			}
		}
	}
}

// BenchmarkSchemeCreate micro-benchmarks file creation per scheme (real CPU
// time, not simulated time): allocation, encryption and device writes.
func BenchmarkSchemeCreate(b *testing.B) {
	cfg := benchConfig()
	payloadSpec := workload.FileSpec{Name: "x", Size: 64 << 10}
	payload := workload.Payload(payloadSpec, 1)
	for _, scheme := range bench.SchemeNames {
		b.Run(scheme, func(b *testing.B) {
			inst, err := bench.BuildInstance(scheme, cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("m%06d", i)
				if err := inst.FS.Create(name, payload); err != nil {
					// Volume full: recycle.
					b.StopTimer()
					inst, err = bench.BuildInstance(scheme, cfg, nil)
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					if err := inst.FS.Create(name, payload); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkSchemeRead micro-benchmarks whole-file reads per scheme.
func BenchmarkSchemeRead(b *testing.B) {
	cfg := benchConfig()
	specs := workload.FixedSpecs(4, 64<<10, "f")
	for _, scheme := range bench.SchemeNames {
		b.Run(scheme, func(b *testing.B) {
			inst, err := bench.BuildInstance(scheme, cfg, specs)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(64 << 10)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inst.FS.Read(specs[i%len(specs)].Name); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtIDA regenerates the E-IDA extension: replication vs Rabin IDA
// utilization at equal storage overhead (Mnemosyne, paper §2 ref [10]).
func BenchmarkExtIDA(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := bench.IDAComparison(cfg, []int{2, 4}, 4)
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.ReplUtilization*100, fmt.Sprintf("repl%%@%gx", r.Overhead))
				b.ReportMetric(r.IDAUtilization*100, fmt.Sprintf("ida%%@%gx", r.Overhead))
			}
		}
	}
}

// BenchmarkExtStegDB measures the hidden-database extension (paper §6): row
// inserts and point lookups through a B-tree + hash index living entirely in
// hidden pages.
func BenchmarkExtStegDB(b *testing.B) {
	store, err := vdisk.NewMemStore(64<<10, 1<<10)
	if err != nil {
		b.Fatal(err)
	}
	p := stegfs.DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 16 << 10
	p.DeterministicKeys = true
	p.FillVolume = false
	fs, err := stegfs.Format(store, p)
	if err != nil {
		b.Fatal(err)
	}
	view := fs.NewHiddenView("bench")
	table, err := stegdb.CreateTable(view, "bench.db", true, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := table.PutUint64(uint64(i), []byte("benchmark row payload")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GetHash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := table.GetUint64(uint64(i % 1000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("GetBTree", func(b *testing.B) {
		var k [8]byte
		for i := 0; i < b.N; i++ {
			binary.BigEndian.PutUint64(k[:], uint64(i%1000))
			if _, _, err := table.GetOrdered(k[:]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
