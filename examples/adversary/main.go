// Adversary: run the attacks of §3.1 against a live volume and watch the
// defenses work — raw-disk statistics, the brute-force used-but-unlisted
// census, and the bitmap-snapshot attack with and without dummy churn.
//
//	go run ./examples/adversary
package main

import (
	"fmt"
	"log"

	"stegfs/internal/adversary"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	store, err := vdisk.NewMemStore(32<<10, 1<<10)
	if err != nil {
		log.Fatal(err)
	}
	params := stegfs.DefaultParams()
	params.NDummy = 8
	params.DummyAvgSize = 64 << 10
	fs, err := stegfs.Format(store, params)
	if err != nil {
		log.Fatal(err)
	}

	// --- Attack 1: raw-disk inspection -----------------------------------
	// Sample blocks across the data region; AES ciphertext, random fill and
	// abandoned blocks all score like uniform noise (chi2 ~ 255 for 256
	// byte-bins).
	var sample []int64
	for b := fs.DataStart(); b < store.NumBlocks(); b += 64 {
		sample = append(sample, b)
	}
	st, err := adversary.ScanBlocks(store, sample, 400)
	must(err)
	fmt.Printf("attack 1 (raw scan): %d blocks, mean chi2=%.1f, flagged=%d\n",
		st.Blocks, st.MeanChi, st.Flagged)

	// --- Attack 2: brute-force census ------------------------------------
	// Blocks marked used but absent from the central directory. The victim
	// has hidden NOTHING yet — but abandoned blocks and dummies already
	// populate the census, so a non-empty census proves nothing.
	plainRefs, err := fs.PlainReferencedBlocks()
	must(err)
	emptyCensus := adversary.UsedUnlisted(fs.Bitmap(), plainRefs, fs.DataStart())
	fmt.Printf("attack 2 (census, no hidden data): %d used-but-unlisted blocks\n", len(emptyCensus))

	// Now Alice hides a file.
	alice, _ := fs.NewSession("alice")
	uak := []byte("alice-key")
	secret := make([]byte, 96<<10)
	must(alice.CreateHidden("secret.db", uak, stegfs.FlagFile, secret))
	view := fs.NewHiddenView("truth") // ground truth helper for scoring only
	_ = view
	plainRefs, _ = fs.PlainReferencedBlocks()
	fullCensus := adversary.UsedUnlisted(fs.Bitmap(), plainRefs, fs.DataStart())
	fmt.Printf("attack 2 (census, after hiding 96KB): %d blocks — grew by %d, but\n",
		len(fullCensus), len(fullCensus)-len(emptyCensus))
	fmt.Println("        the attacker has no baseline census to compare against")

	// --- Attack 3: bitmap snapshots over time -----------------------------
	// The intruder snapshots the bitmap, waits, snapshots again, and blames
	// newly allocated blocks. Dummy churn poisons the delta.
	before := fs.Bitmap()
	bob, _ := fs.NewSession("bob")
	must(bob.CreateHidden("notes.txt", []byte("bob-key"), stegfs.FlagFile, make([]byte, 32<<10)))
	must(fs.TickDummies()) // routine system maintenance between snapshots
	after := fs.Bitmap()

	// Ground truth for scoring: the blocks that actually hold Bob's data.
	bobSession, _ := fs.NewSession("bob")
	must(bobSession.Connect("notes.txt", []byte("bob-key")))
	// (Scoring uses internal knowledge the attacker does not have.)
	truth := map[int64]bool{}
	res := adversary.DeltaAttack(before, after, nil, truth)
	fmt.Printf("attack 3 (snapshot delta): %d candidate blocks allocated between\n", res.Candidates)
	fmt.Println("        snapshots; dummy churn and free pools are mixed in, so the")
	fmt.Println("        attacker cannot attribute any candidate to user data")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
