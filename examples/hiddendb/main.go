// Hiddendb: the paper's future-work direction (§6) — database tables,
// B-trees and hash indices hidden inside StegFS. A salary table lives in a
// hidden file; to anyone without the key, the volume shows only encrypted,
// unlisted blocks.
//
//	go run ./examples/hiddendb
package main

import (
	"fmt"
	"log"

	"stegfs/internal/stegdb"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	store, err := vdisk.NewMemStore(32<<10, 1<<10)
	if err != nil {
		log.Fatal(err)
	}
	params := stegfs.DefaultParams()
	params.NDummy = 4
	params.DummyAvgSize = 32 << 10
	fs, err := stegfs.Format(store, params)
	if err != nil {
		log.Fatal(err)
	}

	// The HR officer's session. The table is one hidden file: its pages,
	// B-tree and hash index are all sealed under the file's access key.
	view := fs.NewHiddenView("hr-officer")
	table, err := stegdb.CreateTable(view, "salaries.db", true, 64)
	if err != nil {
		log.Fatal(err)
	}

	people := []struct {
		id     uint64
		record string
	}{
		{1001, "Ada Lovelace, Principal Engineer, $245k"},
		{1002, "Grace Hopper, Distinguished Engineer, $260k"},
		{1003, "Alan Turing, Research Fellow, $250k"},
		{1004, "Hedy Lamarr, Inventor in Residence, $240k"},
	}
	for _, p := range people {
		if err := table.PutUint64(p.id, []byte(p.record)); err != nil {
			log.Fatal(err)
		}
	}

	// Point lookup through the hash index.
	rec, ok, err := table.GetUint64(1002)
	if err != nil || !ok {
		log.Fatalf("lookup: %v", err)
	}
	fmt.Println("point lookup:", string(rec))

	// Ordered scan through the B-tree.
	fmt.Println("ordered scan:")
	if err := table.Scan(func(k, v []byte) bool {
		fmt.Printf("  %x -> %s\n", k, v)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	rows, _ := table.Rows()
	fmt.Printf("table: %d rows in %d hidden pages\n", rows, table.Pages())

	// What the rest of the world sees: an empty central directory and a
	// bitmap full of indistinguishable used blocks.
	fmt.Println("central directory as seen by an admin:", fs.PlainNames())
	fmt.Printf("blocks in use (table + dummies + abandoned, indistinguishable): %d\n",
		fs.Bitmap().CountSet()-fs.DataStart())
}
