// Backup: the §3.3 procedure — back a volume up without being able to see
// the hidden files, corrupt the volume, and recover. Hidden blocks return to
// their original addresses (their internal inode tables cannot be
// relocated); plain files are rebuilt, possibly elsewhere.
//
//	go run ./examples/backup
package main

import (
	"bytes"
	"fmt"
	"log"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	store, err := vdisk.NewMemStore(16<<10, 1<<10)
	if err != nil {
		log.Fatal(err)
	}
	params := stegfs.DefaultParams()
	params.NDummy = 2
	params.DummyAvgSize = 32 << 10
	fs, err := stegfs.Format(store, params)
	if err != nil {
		log.Fatal(err)
	}

	// One plain and one hidden file.
	plain := []byte("this file is public\n")
	secret := bytes.Repeat([]byte("launch codes "), 1000)
	must(fs.Create("readme.txt", plain))
	alice, _ := fs.NewSession("alice")
	uak := []byte("alice-key")
	must(alice.CreateHidden("codes.bin", uak, stegfs.FlagFile, secret))

	// The administrator backs up. The backup tool cannot enumerate hidden
	// files — it images every allocated block that no plain file accounts
	// for (hidden data + dummies + abandoned blocks, indistinguishably).
	var backup bytes.Buffer
	must(fs.Backup(&backup))
	fmt.Printf("backup stream: %d KB for a %d KB volume\n", backup.Len()>>10, (16<<10*1024)>>10)

	// Disaster: the volume is trashed.
	junk := make([]byte, 1024)
	for i := range junk {
		junk[i] = 0xde
	}
	for b := int64(0); b < store.NumBlocks(); b++ {
		must(store.WriteBlock(b, junk))
	}

	// Recovery restores hidden/abandoned images first, then plain files.
	restored, err := stegfs.Recover(store, bytes.NewReader(backup.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	gotPlain, err := restored.Read("readme.txt")
	must(err)
	session, _ := restored.NewSession("alice")
	must(session.Connect("codes.bin", uak))
	gotSecret, err := session.ReadHidden("codes.bin")
	must(err)

	fmt.Println("plain file intact: ", bytes.Equal(gotPlain, plain))
	fmt.Println("hidden file intact:", bytes.Equal(gotSecret, secret))
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
