// Quickstart: format an in-memory StegFS volume, store a plain file and a
// hidden file, and show what an administrator can and cannot see.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	// 1. A 16 MB volume with 1 KB blocks (Table 3 uses 1 GB; everything
	//    scales). Format writes random patterns everywhere, abandons 1% of
	//    blocks and creates 4 small dummy hidden files.
	store, err := vdisk.NewMemStore(16<<10, 1<<10)
	if err != nil {
		log.Fatal(err)
	}
	params := stegfs.DefaultParams()
	params.NDummy = 4
	params.DummyAvgSize = 64 << 10
	fs, err := stegfs.Format(store, params)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Plain files go through the central directory, like any file system.
	if err := fs.Create("address-book.txt", []byte("mum: 555-0101\n")); err != nil {
		log.Fatal(err)
	}

	// 3. Hidden files need a user session and a user access key (UAK). The
	//    UAK unlocks a per-user directory of (name, file-access-key) pairs;
	//    each hidden file is encrypted under its own random FAK.
	alice, err := fs.NewSession("alice")
	if err != nil {
		log.Fatal(err)
	}
	uak := []byte("correct horse battery staple")
	budget := []byte("Q3 acquisition budget: $40M\n")
	if err := alice.CreateHidden("budget.xls", uak, stegfs.FlagFile, budget); err != nil {
		log.Fatal(err)
	}

	// 4. Reading it back requires connecting it to the session first
	//    (steg_connect); after logoff it is invisible again.
	if err := alice.Connect("budget.xls", uak); err != nil {
		log.Fatal(err)
	}
	got, err := alice.ReadHidden("budget.xls")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden file contents: %s", got)
	alice.Logoff()

	// 5. What the administrator sees: the central directory lists only the
	//    plain file. The hidden file, the dummies and the abandoned blocks
	//    are indistinguishable encrypted/random blocks.
	fmt.Println("central directory:", fs.PlainNames())
	fmt.Printf("bitmap: %d used / %d blocks (hidden data is in there somewhere...)\n",
		fs.Bitmap().CountSet(), fs.Bitmap().Len())

	// 6. A wrong key does not error differently from a missing file —
	//    plausible deniability means "no such file" is all anyone learns.
	if err := alice.Connect("budget.xls", []byte("wrong key")); err != nil {
		fmt.Println("with a wrong UAK:", err)
	}
}
