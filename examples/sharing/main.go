// Sharing: the multi-user workflow of §3.2 / Figure 4 — Alice shares one
// hidden file with Bob without exposing her UAK or her other hidden files,
// then revokes the share.
//
//	go run ./examples/sharing
package main

import (
	"fmt"
	"log"

	"stegfs/internal/sgcrypto"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

func main() {
	store, err := vdisk.NewMemStore(16<<10, 1<<10)
	if err != nil {
		log.Fatal(err)
	}
	params := stegfs.DefaultParams()
	params.NDummy = 2
	params.DummyAvgSize = 32 << 10
	fs, err := stegfs.Format(store, params)
	if err != nil {
		log.Fatal(err)
	}

	aliceUAK := []byte("alice-secret-key")
	bobUAK := []byte("bob-secret-key")

	alice, _ := fs.NewSession("alice")
	bob, _ := fs.NewSession("bob")

	// Alice has two hidden files; she will share only one.
	must(alice.CreateHidden("reports", aliceUAK, stegfs.FlagDir, nil))
	must(alice.CreateHidden("reports/q3.txt", aliceUAK, stegfs.FlagFile, []byte("Q3 numbers\n")))
	must(alice.CreateHidden("diary.txt", aliceUAK, stegfs.FlagFile, []byte("dear diary...\n")))

	// Bob generates a key pair; Alice encrypts the (name, FAK) entry of the
	// shared file with Bob's public key (steg_getentry).
	bobPriv, err := sgcrypto.GenerateKeyPair()
	if err != nil {
		log.Fatal(err)
	}
	entryfile, err := alice.GetEntry("reports/q3.txt", aliceUAK, &bobPriv.PublicKey)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice -> Bob: %d-byte encrypted entry file (e.g. via email)\n", len(entryfile))

	// Bob decrypts and adds the entry to his own UAK directory
	// (steg_addentry); the ciphertext would then be destroyed.
	must(bob.AddEntry(entryfile, bobPriv, bobUAK))
	must(bob.Connect("q3.txt", bobUAK))
	got, err := bob.ReadHidden("q3.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Bob reads the shared file: %s", got)

	// The share exposes nothing else: Bob cannot see Alice's diary.
	if err := bob.Connect("diary.txt", bobUAK); err != nil {
		fmt.Println("Bob trying Alice's diary:", err)
	}

	// Alice revokes: a fresh copy under a new FAK, the original removed.
	// Bob's stale entry now dangles — the old FAK no longer opens anything.
	must(alice.Revoke("reports/q3.txt", "reports/q3.txt", aliceUAK))
	bob.Logoff()
	if err := bob.Connect("q3.txt", bobUAK); err != nil {
		fmt.Println("Bob after revocation:", err)
	}

	// Alice still reads her fresh copy.
	must(alice.Connect("reports", aliceUAK))
	got, err = alice.ReadHidden("reports/q3.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Alice after revocation still has: %s", got)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
