package stegfs_test

// Integration tests: full cross-module lifecycles — format, multi-user
// hidden/plain activity, dummy maintenance, sharing, backup, crash,
// recovery, remount — on both memory- and file-backed volumes.

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"stegfs/internal/adversary"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
	"stegfs/internal/workload"
)

func testParams() stegfs.Params {
	p := stegfs.DefaultParams()
	p.NDummy = 3
	p.DummyAvgSize = 16 << 10
	p.MaxPlainFiles = 64
	return p
}

// TestIntegrationFullLifecycle drives a realistic multi-user month on one
// volume: plain files, hidden files at several access levels, hide/unhide
// conversions, sharing, revocation, dummy ticks, then a backup, a crash and
// a recovery — asserting every byte survives where the paper says it should.
func TestIntegrationFullLifecycle(t *testing.T) {
	store, err := vdisk.NewMemStore(32<<10, 1<<10) // 32 MB volume
	if err != nil {
		t.Fatal(err)
	}
	fs, err := stegfs.Format(store, testParams())
	if err != nil {
		t.Fatal(err)
	}

	// Plain activity (what an auditor sees).
	plainRef := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("public-%d.txt", i)
		plainRef[name] = payload(3000+913*i, byte(i))
		if err := fs.Create(name, plainRef[name]); err != nil {
			t.Fatal(err)
		}
	}

	// Alice: two access levels; level 2 holds the valuable data.
	alice, err := fs.NewSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	uaks := [][]byte{[]byte("alice-l1"), []byte("alice-l2")}
	if err := alice.CreateHidden("contacts", uaks[0], stegfs.FlagFile, payload(2000, 10)); err != nil {
		t.Fatal(err)
	}
	if err := alice.CreateHidden("vault", uaks[1], stegfs.FlagDir, nil); err != nil {
		t.Fatal(err)
	}
	budget := payload(40_000, 11)
	if err := alice.CreateHidden("vault/budget.xls", uaks[1], stegfs.FlagFile, budget); err != nil {
		t.Fatal(err)
	}

	// Convert a plain file into a hidden one (steg_hide).
	if err := alice.Hide("public-0.txt", "was-public", uaks[0]); err != nil {
		t.Fatal(err)
	}
	hidden0 := plainRef["public-0.txt"]
	delete(plainRef, "public-0.txt")

	// System maintenance between user actions.
	if err := fs.TickDummies(); err != nil {
		t.Fatal(err)
	}

	// Bob receives vault/budget.xls via the Figure 4 protocol.
	bob, err := fs.NewSession("bob")
	if err != nil {
		t.Fatal(err)
	}
	bobPriv, err := sgcrypto.GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	entry, err := alice.GetEntry("vault/budget.xls", uaks[1], &bobPriv.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.AddEntry(entry, bobPriv, []byte("bob-uak")); err != nil {
		t.Fatal(err)
	}
	if err := bob.Connect("budget.xls", []byte("bob-uak")); err != nil {
		t.Fatal(err)
	}
	got, err := bob.ReadHidden("budget.xls")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, budget) {
		t.Fatal("shared file mismatch")
	}

	// Backup, crash, recover.
	var backup bytes.Buffer
	if err := fs.Backup(&backup); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0x77}, 1<<10)
	for b := int64(0); b < store.NumBlocks(); b++ {
		_ = store.WriteBlock(b, junk)
	}
	fs, err = stegfs.Recover(store, bytes.NewReader(backup.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Everything survives: plain files, both levels, the hidden conversion,
	// Bob's share, the dummies.
	for name, want := range plainRef {
		got, err := fs.Read(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("plain %s lost in recovery (%v)", name, err)
		}
	}
	alice2, _ := fs.NewSession("alice")
	if err := alice2.ConnectLevel(uaks, 2); err != nil {
		t.Fatal(err)
	}
	got, err = alice2.ReadHidden("vault/budget.xls")
	if err != nil || !bytes.Equal(got, budget) {
		t.Fatalf("budget lost in recovery (%v)", err)
	}
	got, err = alice2.ReadHidden("was-public")
	if err != nil || !bytes.Equal(got, hidden0) {
		t.Fatalf("hidden conversion lost in recovery (%v)", err)
	}
	bob2, _ := fs.NewSession("bob")
	if err := bob2.Connect("budget.xls", []byte("bob-uak")); err != nil {
		t.Fatalf("bob's share lost in recovery: %v", err)
	}
	if err := fs.TickDummies(); err != nil {
		t.Fatalf("dummies lost in recovery: %v", err)
	}

	// Revocation after recovery still works.
	if err := alice2.Revoke("vault/budget.xls", "vault/budget.xls", uaks[1]); err != nil {
		t.Fatal(err)
	}
	bob2.Logoff()
	if err := bob2.Connect("budget.xls", []byte("bob-uak")); err == nil {
		t.Fatal("bob retains access after revocation")
	}
}

// TestIntegrationFileBackedVolume exercises the persistent path end to end:
// mkfs, unmount, remount across separate FileStore instances.
func TestIntegrationFileBackedVolume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	store, err := vdisk.CreateFileStore(path, 8<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := stegfs.Format(store, testParams())
	if err != nil {
		t.Fatal(err)
	}
	s, _ := fs.NewSession("u")
	want := payload(20_000, 3)
	if err := s.CreateHidden("diary", []byte("k"), stegfs.FlagFile, want); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := vdisk.OpenFileStore(path, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	fs2, err := stegfs.Mount(store2)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := fs2.NewSession("u")
	if err := s2.Connect("diary", []byte("k")); err != nil {
		t.Fatal(err)
	}
	got, err := s2.ReadHidden("diary")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("file-backed volume lost hidden data across remount")
	}
}

// TestIntegrationDeniabilityUnderTimeline simulates the strongest intruder
// of §3.1: present from format time, snapshotting the bitmap after every
// event. Even so, the delta attack's precision must stay well below 1.
func TestIntegrationDeniabilityUnderTimeline(t *testing.T) {
	store, err := vdisk.NewMemStore(16<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams()
	p.NDummy = 6
	fs, err := stegfs.Format(store, p)
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("victim")
	truth := map[int64]bool{}
	var worstPrecision float64

	prev := fs.Bitmap()
	for round := 0; round < 5; round++ {
		// Victim hides a file; the system ticks dummies; plain activity too.
		name := fmt.Sprintf("secret-%d", round)
		if err := view.Create(name, payload(12_000, byte(round))); err != nil {
			t.Fatal(err)
		}
		if err := fs.TickDummies(); err != nil {
			t.Fatal(err)
		}
		if err := fs.Create(fmt.Sprintf("plain-%d", round), payload(2_000, byte(round))); err != nil {
			t.Fatal(err)
		}
		data, _, err := view.BlocksOf(name)
		if err != nil {
			t.Fatal(err)
		}
		roundTruth := map[int64]bool{}
		for _, b := range data {
			roundTruth[b] = true
			truth[b] = true
		}
		cur := fs.Bitmap()
		newPlain, err := fs.PlainReferencedBlocks()
		if err != nil {
			t.Fatal(err)
		}
		res := adversary.DeltaAttack(prev, cur, newPlain, roundTruth)
		if res.Precision > worstPrecision {
			worstPrecision = res.Precision
		}
		prev = cur
	}
	if worstPrecision > 0.75 {
		t.Fatalf("delta attack precision reached %.2f — cover traffic insufficient", worstPrecision)
	}
}

// TestIntegrationMixedWorkloadReplay replays the same seeded workload
// against StegFS twice and asserts simulated costs are identical —
// experiments are exactly reproducible.
func TestIntegrationMixedWorkloadReplay(t *testing.T) {
	run := func() (int64, []byte) {
		store, err := vdisk.NewMemStore(16<<10, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		disk := vdisk.NewDisk(store, vdisk.DefaultGeometry())
		p := testParams()
		p.FillVolume = false
		p.DeterministicKeys = true
		fs, err := stegfs.Format(disk, p)
		if err != nil {
			t.Fatal(err)
		}
		view := fs.NewHiddenView("bench")
		rng := rand.New(rand.NewSource(99))
		specs := workload.UniformSpecs(rng, 10, 8<<10, 16<<10, "w")
		if err := workload.Populate(view, specs, 5); err != nil {
			t.Fatal(err)
		}
		disk.ResetClock()
		res, err := workload.RunInterleaved(disk, view, specs, 4, 2, workload.OpRead, 5)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := view.Read(specs[0].Name)
		if err != nil {
			t.Fatal(err)
		}
		return int64(res.TotalTime), sum
	}
	t1, d1 := run()
	t2, d2 := run()
	if t1 != t2 {
		t.Fatalf("replay not deterministic: %d vs %d", t1, t2)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("replay content differs")
	}
}

func payload(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag ^ byte(i*17)
	}
	return out
}
