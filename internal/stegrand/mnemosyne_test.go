package stegrand

import "testing"

func TestSimulateLoadIDABasics(t *testing.T) {
	res := SimulateLoadIDA(1<<20, 1024, 4, 16, 1, UniformFileSize(1<<20, 2<<20))
	if res.FilesLoaded <= 0 || res.Utilization <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Deterministic for a fixed seed.
	res2 := SimulateLoadIDA(1<<20, 1024, 4, 16, 1, UniformFileSize(1<<20, 2<<20))
	if res != res2 {
		t.Fatal("SimulateLoadIDA not deterministic")
	}
	// Bad parameters yield the zero result, not a panic.
	if r := SimulateLoadIDA(1<<20, 1024, 0, 4, 1, UniformFileSize(1, 2)); r.FilesLoaded != 0 {
		t.Fatal("invalid m accepted")
	}
	if r := SimulateLoadIDA(1<<20, 1024, 8, 4, 1, UniformFileSize(1, 2)); r.FilesLoaded != 0 {
		t.Fatal("n < m accepted")
	}
}

func TestIDABeatsReplicationAtEqualOverhead(t *testing.T) {
	// The Mnemosyne claim (paper §2, ref [10]): dispersal tolerates any
	// n-m losses per group, so at equal storage overhead it sustains a
	// higher safe load than replication.
	const numBlocks, bs = 1 << 20, 1024
	sizes := UniformFileSize(1<<20, 2<<20)
	var repl, ida float64
	for s := int64(0); s < 5; s++ {
		repl += SimulateLoad(numBlocks, bs, 4, s, sizes).Utilization
		ida += SimulateLoadIDA(numBlocks, bs, 4, 16, s, sizes).Utilization
	}
	if ida <= repl {
		t.Fatalf("IDA (%.4f) should beat replication (%.4f) at 4x overhead", ida/5, repl/5)
	}
}

func TestIDAQuorumMatters(t *testing.T) {
	// (m, n) with a wider loss budget must not do worse than a tighter one
	// at the same overhead... but the real invariant to pin down is simpler:
	// more total redundancy at fixed m helps until overhead dominates.
	const numBlocks, bs = 1 << 18, 1024
	sizes := UniformFileSize(256<<10, 512<<10)
	var u1, u4 float64
	for s := int64(0); s < 5; s++ {
		u1 += SimulateLoadIDA(numBlocks, bs, 4, 4, s, sizes).Utilization  // no redundancy
		u4 += SimulateLoadIDA(numBlocks, bs, 4, 16, s, sizes).Utilization // 4x
	}
	if u4 <= u1 {
		t.Fatalf("redundancy (%.4f) should beat none (%.4f)", u4/5, u1/5)
	}
}
