// Package stegrand implements the second steganographic scheme of Anderson,
// Needham and Shamir — hidden files written to absolute disk addresses given
// by a pseudorandom process — with the k-fold replication the paper's
// StegRand baseline uses to reduce data loss (Table 4; an implementation of
// this scheme was the McDonald/Kuhn Linux StegFS, reference [13]).
//
// Because the scheme deliberately keeps no central record of which blocks
// are occupied, a write may land on and destroy another hidden file's block.
// Replication delays but cannot eliminate the loss: once every replica of
// some block has been overwritten, that file is gone (fsapi.ErrCorrupt).
// Reads must "hunt for an intact replicate when the primary copy of a file
// is found to be corrupted" (§5.3), paying extra I/Os.
package stegrand

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"stegfs/internal/fsapi"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// Config parameterizes the scheme.
type Config struct {
	// Replication is the number of copies of each block (paper's
	// recommendation for the performance experiments: 4).
	Replication int
	// Seed namespaces the address chains of this volume.
	Seed int64
}

// DefaultConfig mirrors the paper's performance-experiment setting.
func DefaultConfig() Config { return Config{Replication: 4, Seed: 1} }

// owner identifies which (file, replica, block index) most recently wrote a
// physical block. The real scheme detects stale blocks with embedded
// checksums; tracking ownership explicitly charges the same I/O without
// re-deriving hashes.
type owner struct {
	fileID  int
	replica int
	idx     int64
}

// fileState is the bookkeeping for one hidden file.
type fileState struct {
	id      int
	name    string
	size    int64
	nblocks int64
	// addrs[r][i] is the physical block of replica r of logical block i.
	addrs [][]int64
	// alive[i] counts intact replicas of logical block i.
	alive []int
	// corrupt is set when any logical block has zero intact replicas.
	corrupt bool
}

// FS is a mounted StegRand volume.
type FS struct {
	mu     sync.Mutex
	dev    vdisk.Device
	cfg    Config
	files  map[string]*fileState
	byID   map[int]*fileState
	owners map[int64]owner
	nextID int
}

// Format initializes dev (writing random patterns across it) and mounts the
// scheme.
func Format(dev vdisk.Device, cfg Config) (*FS, error) {
	if cfg.Replication <= 0 {
		return nil, fmt.Errorf("stegrand: replication %d must be positive", cfg.Replication)
	}
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(cfg.Seed))
	filler := sgcrypto.NewRandomFiller(seed[:])
	buf := make([]byte, dev.BlockSize())
	for b := int64(0); b < dev.NumBlocks(); b++ {
		filler.Fill(buf)
		if err := dev.WriteBlock(b, buf); err != nil {
			return nil, err
		}
	}
	return &FS{
		dev:    dev,
		cfg:    cfg,
		files:  make(map[string]*fileState),
		byID:   make(map[int]*fileState),
		owners: make(map[int64]owner),
	}, nil
}

// SchemeName implements fsapi.FileSystem.
func (fs *FS) SchemeName() string { return "StegRand" }

// replicaAddrs derives the pseudorandom address sequence of one replica: a
// hash chain seeded from the file name, the volume seed and the replica
// number, exactly the "absolute disk addresses given by some pseudo-random
// process" of the original scheme.
func (fs *FS) replicaAddrs(name string, replica int, n int64) []int64 {
	seed := make([]byte, 0, len(name)+17)
	seed = append(seed, name...)
	var tail [17]byte
	binary.BigEndian.PutUint64(tail[:8], uint64(fs.cfg.Seed))
	binary.BigEndian.PutUint64(tail[8:16], uint64(replica))
	tail[16] = 0x5a
	seed = append(seed, tail[:]...)
	// Addresses avoid block 0 (reserved) by mapping into [1, NumBlocks).
	gen := sgcrypto.NewPRBG(seed, fs.dev.NumBlocks()-1)
	out := make([]int64, n)
	for i := range out {
		out[i] = 1 + gen.Next()
	}
	return out
}

// claim records that (f, replica, idx) now owns physical block b,
// decrementing the previous owner's replica count. It returns the file that
// became corrupt as a result, if any.
func (fs *FS) claim(f *fileState, replica int, idx int64, b int64) *fileState {
	var victim *fileState
	if prev, ok := fs.owners[b]; ok {
		if pf := fs.byID[prev.fileID]; pf != nil {
			// The previous owner's copy is destroyed — unless it is the very
			// slot being rewritten.
			if !(prev.fileID == f.id && prev.replica == replica && prev.idx == idx) {
				pf.alive[prev.idx]--
				if pf.alive[prev.idx] == 0 && !pf.corrupt {
					pf.corrupt = true
					victim = pf
				}
			}
		}
	}
	fs.owners[b] = owner{fileID: f.id, replica: replica, idx: idx}
	return victim
}

// Create implements fsapi.FileSystem. Creating a file can corrupt earlier
// files; the create itself succeeds (the scheme cannot even know).
func (fs *FS) Create(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return fmt.Errorf("%w: %q", fsapi.ErrExists, name)
	}
	bs := int64(fs.dev.BlockSize())
	n := (int64(len(data)) + bs - 1) / bs
	f := &fileState{
		id:      fs.nextID,
		name:    name,
		size:    int64(len(data)),
		nblocks: n,
		addrs:   make([][]int64, fs.cfg.Replication),
		alive:   make([]int, n),
	}
	fs.nextID++
	for r := 0; r < fs.cfg.Replication; r++ {
		f.addrs[r] = fs.replicaAddrs(name, r, n)
	}
	fs.files[name] = f
	fs.byID[f.id] = f
	return fs.writeAllReplicas(f, data)
}

// writeAllReplicas writes every replica of every block of f.
func (fs *FS) writeAllReplicas(f *fileState, data []byte) error {
	bs := fs.dev.BlockSize()
	buf := make([]byte, bs)
	for i := range f.alive {
		f.alive[i] = 0
	}
	for idx := int64(0); idx < f.nblocks; idx++ {
		for j := range buf {
			buf[j] = 0
		}
		off := idx * int64(bs)
		if off < int64(len(data)) {
			copy(buf, data[off:])
		}
		for r := 0; r < fs.cfg.Replication; r++ {
			b := f.addrs[r][idx]
			fs.claim(f, r, idx, b)
			if err := fs.dev.WriteBlock(b, buf); err != nil {
				return err
			}
		}
		// Count live replicas after all writes of this index: a later
		// replica of the same index can overwrite an earlier one.
		live := 0
		for r := 0; r < fs.cfg.Replication; r++ {
			if o, ok := fs.owners[f.addrs[r][idx]]; ok && o.fileID == f.id && o.idx == idx {
				live++
			}
		}
		f.alive[idx] = live
		if live == 0 {
			f.corrupt = true
		}
	}
	return nil
}

// Read implements fsapi.FileSystem. For each block it tries replicas in
// order, paying one block read per attempt, until an intact copy is found.
func (fs *FS) Read(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	bs := fs.dev.BlockSize()
	out := make([]byte, f.nblocks*int64(bs))
	buf := make([]byte, bs)
	for idx := int64(0); idx < f.nblocks; idx++ {
		if err := fs.readBlockHunting(f, idx, buf); err != nil {
			return nil, err
		}
		copy(out[idx*int64(bs):], buf)
	}
	return out[:f.size], nil
}

// readBlockHunting reads logical block idx of f into buf, hunting through
// replicas. Every attempted replica costs a device read.
func (fs *FS) readBlockHunting(f *fileState, idx int64, buf []byte) error {
	for r := 0; r < fs.cfg.Replication; r++ {
		b := f.addrs[r][idx]
		if err := fs.dev.ReadBlock(b, buf); err != nil {
			return err
		}
		if o, ok := fs.owners[b]; ok && o.fileID == f.id && o.replica == r && o.idx == idx {
			return nil
		}
		// Stale copy (would fail its checksum): keep hunting.
	}
	return fmt.Errorf("%w: %q block %d: all %d replicas overwritten", fsapi.ErrCorrupt, f.name, idx, fs.cfg.Replication)
}

// Write implements fsapi.FileSystem: all replicas of all blocks are
// rewritten ("the write access times are much worse because all the
// replicates must be updated", §5.3).
func (fs *FS) Write(name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	bs := int64(fs.dev.BlockSize())
	n := (int64(len(data)) + bs - 1) / bs
	if n != f.nblocks {
		// Regenerate the address chains for the new length.
		f.nblocks = n
		f.alive = make([]int, n)
		for r := 0; r < fs.cfg.Replication; r++ {
			f.addrs[r] = fs.replicaAddrs(name, r, n)
		}
	}
	f.size = int64(len(data))
	f.corrupt = false
	return fs.writeAllReplicas(f, data)
}

// Delete implements fsapi.FileSystem: the blocks are simply disowned (the
// scheme has no bitmap to clear).
func (fs *FS) Delete(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	for r := range f.addrs {
		for idx, b := range f.addrs[r] {
			if o, ok := fs.owners[b]; ok && o.fileID == f.id && o.replica == r && o.idx == int64(idx) {
				delete(fs.owners, b)
			}
		}
	}
	delete(fs.files, name)
	delete(fs.byID, f.id)
	return nil
}

// Stat implements fsapi.FileSystem.
func (fs *FS) Stat(name string) (fsapi.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return fsapi.FileInfo{}, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	return fsapi.FileInfo{Name: name, Size: f.size, Blocks: f.nblocks}, nil
}

// Corrupt reports whether the named file has lost all replicas of any block.
func (fs *FS) Corrupt(name string) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return false, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	return f.corrupt, nil
}

// AnyCorrupt reports whether any file on the volume is unrecoverable.
func (fs *FS) AnyCorrupt() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		if f.corrupt {
			return true
		}
	}
	return false
}

// readCursor hunts replicas block by block.
type readCursor struct {
	fs   *FS
	f    *fileState
	pos  int64
	buf  []byte
	lost int
}

// ReadCursor implements fsapi.CursorFS.
func (fs *FS) ReadCursor(name string) (fsapi.Cursor, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	return &readCursor{fs: fs, f: f, buf: make([]byte, fs.dev.BlockSize())}, nil
}

// Step reads the next logical block (hunting replicas as needed). Unlike
// the whole-file Read, a cursor tolerates unrecoverable blocks: the reader
// has already paid the I/O for every replica before discovering the loss,
// which is the cost the paper's access-time experiments measure. Losses are
// counted in Lost().
func (c *readCursor) Step() (bool, error) {
	if c.pos >= c.f.nblocks {
		return true, errors.New("stegrand: Step past end of cursor")
	}
	c.fs.mu.Lock()
	err := c.fs.readBlockHunting(c.f, c.pos, c.buf)
	c.fs.mu.Unlock()
	if err != nil {
		if !errors.Is(err, fsapi.ErrCorrupt) {
			return false, err
		}
		c.lost++
	}
	c.pos++
	return c.pos == c.f.nblocks, nil
}

// Lost returns how many unrecoverable blocks the cursor encountered.
func (c *readCursor) Lost() int { return c.lost }

// Remaining returns the logical blocks left.
func (c *readCursor) Remaining() int { return int(c.f.nblocks - c.pos) }

// writeCursor rewrites all replicas block by block.
type writeCursor struct {
	fs   *FS
	f    *fileState
	data []byte
	pos  int64
	buf  []byte
}

// WriteCursor implements fsapi.CursorFS (same-shape overwrite).
func (fs *FS) WriteCursor(name string, data []byte) (fsapi.Cursor, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	bs := int64(fs.dev.BlockSize())
	if (int64(len(data))+bs-1)/bs != f.nblocks {
		return nil, fmt.Errorf("stegrand: write cursor size mismatch")
	}
	f.size = int64(len(data))
	return &writeCursor{fs: fs, f: f, data: data, buf: make([]byte, fs.dev.BlockSize())}, nil
}

// Step writes all replicas of the next logical block.
func (c *writeCursor) Step() (bool, error) {
	if c.pos >= c.f.nblocks {
		return true, errors.New("stegrand: Step past end of cursor")
	}
	bs := len(c.buf)
	for j := range c.buf {
		c.buf[j] = 0
	}
	off := c.pos * int64(bs)
	if off < int64(len(c.data)) {
		copy(c.buf, c.data[off:])
	}
	c.fs.mu.Lock()
	for r := 0; r < c.fs.cfg.Replication; r++ {
		b := c.f.addrs[r][c.pos]
		c.fs.claim(c.f, r, c.pos, b)
		if err := c.fs.dev.WriteBlock(b, c.buf); err != nil {
			c.fs.mu.Unlock()
			return false, err
		}
	}
	c.fs.mu.Unlock()
	c.pos++
	return c.pos == c.f.nblocks, nil
}

// Remaining returns the logical blocks left.
func (c *writeCursor) Remaining() int { return int(c.f.nblocks - c.pos) }

var _ fsapi.CursorFS = (*FS)(nil)
