package stegrand

import "math/rand"

// LoadResult summarizes one Figure 6 loading run.
type LoadResult struct {
	FilesLoaded int     // files fully stored before the first loss
	BytesLoaded int64   // unique bytes of those files
	Utilization float64 // BytesLoaded / volume capacity
}

// SimulateLoad reproduces the Figure 6 loading procedure without touching a
// device: "for each replication factor ... we load the data files one at a
// time until all copies of any data block of a file are overwritten — that
// is when StegRand has just passed the limit where it can safely recover all
// its hidden files." It returns the effective space utilization, counting
// each file once regardless of replication.
//
// numBlocks and blockSize describe the volume; fileSize draws the next file
// size in bytes; replication is the number of copies per block.
func SimulateLoad(numBlocks int64, blockSize int, replication int, seed int64, fileSize func(*rand.Rand) int64) LoadResult {
	rng := rand.New(rand.NewSource(seed))
	type slot struct {
		fileID int32
		idx    int32
	}
	owners := make(map[int64]slot, numBlocks/4)
	// alive[fileID][idx] counts intact replicas.
	var alive [][]int16
	var bytesLoaded int64
	filesLoaded := 0

	for fileID := 0; ; fileID++ {
		size := fileSize(rng)
		n := (size + int64(blockSize) - 1) / int64(blockSize)
		if n <= 0 {
			n = 1
		}
		fa := make([]int16, n)
		alive = append(alive, fa)
		lost := false

		for idx := int64(0); idx < n && !lost; idx++ {
			for r := 0; r < replication; r++ {
				// One fresh pseudorandom address per (file, replica, idx).
				// Drawing from the rng is statistically identical to the
				// SHA-256 chain and an order of magnitude faster, which
				// matters when sweeping 8 block sizes x 7 replication
				// factors.
				b := 1 + rng.Int63n(numBlocks-1)
				if prev, ok := owners[b]; ok {
					pa := alive[prev.fileID]
					pa[prev.idx]--
					if pa[prev.idx] == 0 {
						lost = true
					}
				}
				owners[b] = slot{fileID: int32(fileID), idx: int32(idx)}
				fa[idx]++
			}
			if fa[idx] == 0 {
				lost = true
			}
		}
		if lost {
			// This load destroyed the last replica of some block (its own or
			// an earlier file's): the safe-recovery limit has been passed.
			break
		}
		filesLoaded++
		bytesLoaded += size
	}
	capacity := numBlocks * int64(blockSize)
	return LoadResult{
		FilesLoaded: filesLoaded,
		BytesLoaded: bytesLoaded,
		Utilization: float64(bytesLoaded) / float64(capacity),
	}
}

// UniformFileSize returns a sampler drawing sizes uniformly from (lo, hi].
func UniformFileSize(lo, hi int64) func(*rand.Rand) int64 {
	return func(rng *rand.Rand) int64 {
		if hi <= lo {
			return hi
		}
		return lo + 1 + rng.Int63n(hi-lo)
	}
}
