package stegrand

import "math/rand"

// This file models the Mnemosyne variant of the random-addressing scheme
// (Hand & Roscoe, IPTPS'02 — the paper's reference [10]): instead of k full
// replicas, each file is dispersed with Rabin's IDA into n shares of size
// 1/m of the file, any m of which reconstruct it. The storage overhead is
// n/m (vs k for replication) and a file survives until more than n-m of its
// shares are damaged.
//
// SimulateLoadIDA mirrors SimulateLoad's Figure 6 procedure so the two
// schemes can be compared at equal overhead in the extension experiment
// (EXPERIMENTS.md, E-IDA).

// IDAResult summarizes one IDA loading run.
type IDAResult struct {
	FilesLoaded int
	BytesLoaded int64
	Utilization float64
}

// SimulateLoadIDA loads IDA-dispersed files one at a time until some file
// drops below a reconstruction quorum, and reports the effective space
// utilization at that point.
//
// Dispersal is at block-group granularity, as in Mnemosyne: every run of m
// logical blocks becomes n share blocks written to fresh pseudorandom
// addresses (storage overhead n/m, the same physical write count as
// (n/m)-fold replication). A group survives while at least m of its n share
// blocks are intact; a file is lost when any of its groups dies. Compared
// with replication at equal overhead k = n/m, the group tolerates *any*
// n-m losses, whereas replication fails as soon as the k copies of one
// particular block are all hit.
func SimulateLoadIDA(numBlocks int64, blockSize, m, n int, seed int64, fileSize func(*rand.Rand) int64) IDAResult {
	if m <= 0 || n < m {
		return IDAResult{}
	}
	rng := rand.New(rand.NewSource(seed))
	type slot struct {
		fileID  int32
		groupID int32
	}
	owners := make(map[int64]slot, numBlocks/4)
	// groupAlive[fileID][groupID] counts intact share blocks of the group.
	var groupAlive [][]int16

	var bytesLoaded int64
	filesLoaded := 0
	for fileID := 0; ; fileID++ {
		size := fileSize(rng)
		logical := (size + int64(blockSize) - 1) / int64(blockSize)
		if logical <= 0 {
			logical = 1
		}
		groups := int((logical + int64(m) - 1) / int64(m))
		ga := make([]int16, groups)
		groupAlive = append(groupAlive, ga)
		lost := false

		for g := 0; g < groups && !lost; g++ {
			for sh := 0; sh < n; sh++ {
				addr := 1 + rng.Int63n(numBlocks-1)
				if prev, ok := owners[addr]; ok {
					pa := groupAlive[prev.fileID]
					pa[prev.groupID]--
					if pa[prev.groupID] == int16(m)-1 {
						// The victim group just dropped below quorum.
						lost = true
					}
				}
				owners[addr] = slot{fileID: int32(fileID), groupID: int32(g)}
				ga[g]++
			}
			if ga[g] < int16(m) {
				lost = true
			}
		}
		if lost {
			break
		}
		filesLoaded++
		bytesLoaded += size
	}
	capacity := numBlocks * int64(blockSize)
	return IDAResult{
		FilesLoaded: filesLoaded,
		BytesLoaded: bytesLoaded,
		Utilization: float64(bytesLoaded) / float64(capacity),
	}
}
