package stegrand

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"stegfs/internal/fsapi"
	"stegfs/internal/vdisk"
)

func newTestFS(t *testing.T, numBlocks int64, bs, repl int) (*FS, *vdisk.Disk) {
	t.Helper()
	store, err := vdisk.NewMemStore(numBlocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	disk := vdisk.NewDisk(store, vdisk.DefaultGeometry())
	fs, err := Format(disk, Config{Replication: repl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs, disk
}

func mk(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag ^ byte(i*11)
	}
	return out
}

func TestRoundTripSparseVolume(t *testing.T) {
	// A sparse volume (one small file in 64K blocks) should survive intact.
	fs, _ := newTestFS(t, 1<<16, 512, 4)
	want := mk(20_000, 1)
	if err := fs.Create("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestWriteUpdatesAllReplicas(t *testing.T) {
	fs, disk := newTestFS(t, 1<<16, 512, 4)
	if err := fs.Create("f", mk(512*10, 1)); err != nil {
		t.Fatal(err)
	}
	w0 := disk.Stats().Writes
	if err := fs.Write("f", mk(512*10, 2)); err != nil {
		t.Fatal(err)
	}
	writes := disk.Stats().Writes - w0
	if writes != 40 { // 10 blocks x 4 replicas
		t.Fatalf("overwrite issued %d writes, want 40", writes)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk(512*10, 2)) {
		t.Fatal("overwrite mismatch")
	}
}

func TestOverwriteCorruptsVictims(t *testing.T) {
	// Load a tiny volume until something dies: the defining flaw of the
	// scheme ("different files could map to the same disk addresses, thus
	// causing data loss").
	fs, _ := newTestFS(t, 256, 512, 1)
	var anyCorrupt bool
	for i := 0; i < 100; i++ {
		if err := fs.Create(fmt.Sprintf("f%d", i), mk(512*20, byte(i))); err != nil {
			t.Fatal(err)
		}
		if fs.AnyCorrupt() {
			anyCorrupt = true
			break
		}
	}
	if !anyCorrupt {
		t.Fatal("no corruption after overfilling a 256-block volume — collision tracking broken")
	}
}

func TestCorruptReadReturnsErrCorrupt(t *testing.T) {
	fs, _ := newTestFS(t, 128, 512, 1)
	if err := fs.Create("a", mk(512*30, 1)); err != nil {
		t.Fatal(err)
	}
	// Keep loading until file "a" specifically is corrupted.
	for i := 0; ; i++ {
		if i > 200 {
			t.Fatal("could not corrupt file a")
		}
		if err := fs.Create(fmt.Sprintf("x%d", i), mk(512*30, byte(i))); err != nil {
			t.Fatal(err)
		}
		if c, _ := fs.Corrupt("a"); c {
			break
		}
	}
	if _, err := fs.Read("a"); !errors.Is(err, fsapi.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestReplicationSavesData(t *testing.T) {
	// Same workload, higher replication: the file survives collisions that
	// would kill an unreplicated copy.
	load := func(repl int) bool {
		fs, _ := newTestFS(t, 2048, 512, repl)
		if err := fs.Create("precious", mk(512*40, 9)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if err := fs.Create(fmt.Sprintf("noise%d", i), mk(512*10, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		c, err := fs.Corrupt("precious")
		if err != nil {
			t.Fatal(err)
		}
		return !c
	}
	// At this light load (~16% of blocks claimed by noise), 8-fold
	// replication protects the file with overwhelming probability: every
	// data block would need all 8 copies overwritten.
	if !load(8) {
		t.Fatal("replication 8 failed to protect the file at light load")
	}
}

func TestReadHuntsReplicas(t *testing.T) {
	fs, disk := newTestFS(t, 1024, 512, 4)
	if err := fs.Create("f", mk(512*8, 1)); err != nil {
		t.Fatal(err)
	}
	// Damage some primary copies by loading more data.
	for i := 0; i < 4; i++ {
		if err := fs.Create(fmt.Sprintf("n%d", i), mk(512*8, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	r0 := disk.Stats().Reads
	if _, err := fs.Read("f"); err != nil && !errors.Is(err, fsapi.ErrCorrupt) {
		t.Fatal(err)
	}
	reads := disk.Stats().Reads - r0
	if reads < 8 {
		t.Fatalf("read issued %d device reads for 8 blocks", reads)
	}
}

func TestDeleteDisowns(t *testing.T) {
	fs, _ := newTestFS(t, 1<<14, 512, 2)
	if err := fs.Create("f", mk(512*5, 1)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Read("f"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	// Recreating under the same name works (same addresses, re-owned).
	if err := fs.Create("f", mk(512*5, 2)); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk(512*5, 2)) {
		t.Fatal("recreate mismatch")
	}
}

func TestCursorStepsAndLossTolerance(t *testing.T) {
	fs, _ := newTestFS(t, 1<<14, 512, 2)
	if err := fs.Create("f", mk(512*6, 1)); err != nil {
		t.Fatal(err)
	}
	rc, err := fs.ReadCursor("f")
	if err != nil {
		t.Fatal(err)
	}
	steps, err := fsapi.Drain(rc)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 6 {
		t.Fatalf("read cursor %d steps, want 6", steps)
	}
	wc, err := fs.WriteCursor("f", mk(512*6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.Drain(wc); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mk(512*6, 3)) {
		t.Fatal("cursor write mismatch")
	}
}

func TestAddressChainsDeterministic(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, 2)
	a := fs.replicaAddrs("name", 0, 20)
	b := fs.replicaAddrs("name", 0, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("address chain not deterministic")
		}
		if a[i] <= 0 || a[i] >= 4096 {
			t.Fatalf("address %d out of range", a[i])
		}
	}
	c := fs.replicaAddrs("name", 1, 20)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("replica chains overlap %d/20 positions", same)
	}
}

func TestSimulateLoadBasics(t *testing.T) {
	res := SimulateLoad(1<<20, 1024, 4, 1, UniformFileSize(1<<20, 2<<20))
	if res.FilesLoaded <= 0 {
		t.Fatal("no files loaded before first loss")
	}
	if res.Utilization <= 0 || res.Utilization > 0.5 {
		t.Fatalf("utilization %v implausible", res.Utilization)
	}
	// Determinism.
	res2 := SimulateLoad(1<<20, 1024, 4, 1, UniformFileSize(1<<20, 2<<20))
	if res.FilesLoaded != res2.FilesLoaded || res.BytesLoaded != res2.BytesLoaded {
		t.Fatal("SimulateLoad not deterministic for a fixed seed")
	}
}

func TestSimulateLoadReplicationShape(t *testing.T) {
	// The Figure 6 shape: some replication beats none, and extreme
	// replication is worse than the sweet spot (overheads dominate).
	util := func(repl int) float64 {
		var sum float64
		for s := int64(0); s < 5; s++ {
			sum += SimulateLoad(1<<20, 1024, repl, s, UniformFileSize(1<<20, 2<<20)).Utilization
		}
		return sum / 5
	}
	u1, u8, u64 := util(1), util(8), util(64)
	if u8 <= u1 {
		t.Fatalf("replication 8 (%.4f) should beat 1 (%.4f)", u8, u1)
	}
	if u64 >= u8 {
		t.Fatalf("replication 64 (%.4f) should trail the sweet spot 8 (%.4f)", u64, u8)
	}
}

func TestUniformFileSizeRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sample := UniformFileSize(100, 200)
	for i := 0; i < 1000; i++ {
		v := sample(rng)
		if v <= 100 || v > 200 {
			t.Fatalf("size %d outside (100,200]", v)
		}
	}
}

// TestPropertyAliveCountsConsistent: after arbitrary create sequences, a
// file is corrupt exactly when one of its logical blocks has no owning
// replica left.
func TestPropertyAliveCountsConsistent(t *testing.T) {
	f := func(sizes []uint8) bool {
		fs, _ := newTestFS(t, 512, 512, 2)
		for i, szRaw := range sizes {
			if i >= 8 {
				break
			}
			name := fmt.Sprintf("f%d", i)
			if err := fs.Create(name, mk(int(szRaw)%4000+1, byte(i))); err != nil {
				return false
			}
		}
		fs.mu.Lock()
		defer fs.mu.Unlock()
		for _, f := range fs.files {
			wantCorrupt := false
			for idx := int64(0); idx < f.nblocks; idx++ {
				live := 0
				for r := 0; r < fs.cfg.Replication; r++ {
					b := f.addrs[r][idx]
					if o, ok := fs.owners[b]; ok && o.fileID == f.id && o.replica == r && o.idx == idx {
						live++
					}
				}
				if live != f.alive[idx] {
					return false
				}
				if live == 0 {
					wantCorrupt = true
				}
			}
			if wantCorrupt != f.corrupt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
