package plainfs

import (
	"errors"
	"fmt"

	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
)

// readCursor steps through a file one data block per Step.
type readCursor struct {
	v      *Volume
	blocks []int64
	pos    int
	buf    []byte
}

// ReadCursor implements fsapi.CursorFS: a block-by-block read of name.
func (v *Volume) ReadCursor(name string) (fsapi.Cursor, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	in, err := v.lookup(name)
	if err != nil {
		return nil, err
	}
	blocks, err := ptree.Read(rawIO{v.dev}, in.root, in.nblocks)
	if err != nil {
		return nil, err
	}
	return &readCursor{v: v, blocks: blocks, buf: make([]byte, v.dev.BlockSize())}, nil
}

// Step reads the next data block.
func (c *readCursor) Step() (bool, error) {
	if c.pos >= len(c.blocks) {
		return true, errors.New("plainfs: Step past end of cursor")
	}
	if err := c.v.dev.ReadBlock(c.blocks[c.pos], c.buf); err != nil {
		return false, err
	}
	c.pos++
	return c.pos == len(c.blocks), nil
}

// Remaining returns the number of block steps left.
func (c *readCursor) Remaining() int { return len(c.blocks) - c.pos }

// writeCursor overwrites a file's existing blocks one per Step.
type writeCursor struct {
	v      *Volume
	blocks []int64
	data   []byte
	pos    int
	buf    []byte
}

// WriteCursor implements fsapi.CursorFS: a block-by-block in-place overwrite
// of name with data. The payload must need the same number of blocks as the
// file currently occupies (the benchmark workloads rewrite like-sized
// content, as the paper's write experiments do).
func (v *Volume) WriteCursor(name string, data []byte) (fsapi.Cursor, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	slot, ok := v.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	in := v.nodes[slot]
	if v.blocksFor(len(data)) != in.nblocks {
		return nil, fmt.Errorf("plainfs: write cursor size mismatch: %d blocks vs %d", v.blocksFor(len(data)), in.nblocks)
	}
	blocks, err := ptree.Read(rawIO{v.dev}, in.root, in.nblocks)
	if err != nil {
		return nil, err
	}
	in.size = int64(len(data))
	if err := v.flushInode(slot); err != nil {
		return nil, err
	}
	return &writeCursor{v: v, blocks: blocks, data: data, buf: make([]byte, v.dev.BlockSize())}, nil
}

// Step writes the next data block.
func (c *writeCursor) Step() (bool, error) {
	if c.pos >= len(c.blocks) {
		return true, errors.New("plainfs: Step past end of cursor")
	}
	bs := len(c.buf)
	for j := range c.buf {
		c.buf[j] = 0
	}
	off := c.pos * bs
	if off < len(c.data) {
		copy(c.buf, c.data[off:])
	}
	if err := c.v.dev.WriteBlock(c.blocks[c.pos], c.buf); err != nil {
		return false, err
	}
	c.pos++
	return c.pos == len(c.blocks), nil
}

// Remaining returns the number of block steps left.
func (c *writeCursor) Remaining() int { return len(c.blocks) - c.pos }

var _ fsapi.CursorFS = (*Volume)(nil)
