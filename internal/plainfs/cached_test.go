package plainfs

import (
	"bytes"
	"fmt"
	"testing"

	"stegfs/internal/bitmapvec"
	"stegfs/internal/blockcache"
	"stegfs/internal/vdisk"
)

// TestVolumeThroughBlockCache proves plainfs is cache-transparent: a volume
// whose device is a write-back blockcache behaves identically, and after a
// Flush the raw store alone (fresh mount, no cache) serves every file.
func TestVolumeThroughBlockCache(t *testing.T) {
	for _, capacity := range []int{0, 1, 16, 512} {
		t.Run(fmt.Sprintf("cache=%d", capacity), func(t *testing.T) {
			store, err := vdisk.NewMemStore(4096, 512)
			if err != nil {
				t.Fatal(err)
			}
			cache := blockcache.New(store, capacity)
			bm := bitmapvec.New(4096)
			cfg := DefaultConfig(Random)
			cfg.MaxFiles = 32
			const inoStart = 1
			inoLen := InodeBlocksFor(cache, cfg.MaxFiles)
			for b := int64(0); b < inoStart+inoLen; b++ {
				_ = bm.Set(b)
			}
			v, err := NewEmbedded(cache, bm, inoStart, inoLen, inoStart+inoLen, cfg)
			if err != nil {
				t.Fatal(err)
			}

			want := map[string][]byte{}
			for i := 0; i < 8; i++ {
				name := fmt.Sprintf("f%d", i)
				want[name] = payload(2000+i*333, byte(i+1))
				if err := v.Create(name, want[name]); err != nil {
					t.Fatalf("Create %s: %v", name, err)
				}
			}
			want["f2"] = payload(5000, 0xEE)
			if err := v.Write("f2", want["f2"]); err != nil {
				t.Fatal(err)
			}
			if err := v.Delete("f7"); err != nil {
				t.Fatal(err)
			}
			delete(want, "f7")

			// Reads through the cache see the latest data.
			for name, data := range want {
				got, err := v.Read(name)
				if err != nil {
					t.Fatalf("Read %s: %v", name, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s corrupted through cache", name)
				}
			}

			// After a flush, the raw store alone has everything: remount the
			// inode region straight off the MemStore.
			if err := cache.Flush(); err != nil {
				t.Fatal(err)
			}
			v2, err := NewEmbedded(store, bm.Clone(), inoStart, inoLen, inoStart+inoLen, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for name, data := range want {
				got, err := v2.Read(name)
				if err != nil {
					t.Fatalf("uncached Read %s: %v", name, err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("%s lost in the cache (not flushed to store)", name)
				}
			}
		})
	}
}
