package plainfs

import (
	"fmt"
	"math/rand"
	"sync"

	"stegfs/internal/alloc"
	"stegfs/internal/bitmapvec"
	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
	"stegfs/internal/vdisk"
)

// Policy selects how data blocks are placed on the volume.
type Policy int

// Allocation policies.
const (
	// Contiguous places each file in one contiguous run of blocks — the
	// CleanDisk baseline ("files are loaded onto a freshly formatted disk
	// volume and occupy contiguous blocks").
	Contiguous Policy = iota
	// Fragmented breaks each file into fixed-size contiguous fragments
	// scattered across the volume — the FragDisk baseline ("simulated by
	// breaking each file into fragments of 8 blocks").
	Fragmented
	// Random scatters every block uniformly across the free space, the way
	// StegFS allocates both its plain and hidden data.
	Random
)

// String names the policy for logs and bench labels.
func (p Policy) String() string {
	switch p {
	case Contiguous:
		return "contiguous"
	case Fragmented:
		return "fragmented"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config parameterizes a plain volume.
type Config struct {
	Policy     Policy
	FragBlocks int   // fragment length for Fragmented (paper default: 8)
	MaxFiles   int   // capacity of the central directory
	Seed       int64 // seed for the allocation RNG (Random policy)

	// Alloc, when non-nil, routes all Random-policy block allocation and
	// every free through the shared sharded allocator instead of the raw
	// bitmap. StegFS passes its volume allocator here, so plain-file
	// mutators no longer need the outer file system's allocation lock —
	// they contend with hidden-file writers only when their blocks land in
	// the same allocation group. Requires Policy == Random (the contiguous
	// baselines scan the raw bitmap).
	Alloc *alloc.Allocator
}

// DefaultConfig returns a plain-volume configuration matching the paper's
// workload defaults (up to 1024 files, 8-block fragments).
func DefaultConfig(policy Policy) Config {
	return Config{Policy: policy, FragBlocks: 8, MaxFiles: 1024, Seed: 1}
}

// Volume is a mounted plain filesystem. It can be standalone (owning its
// superblock and bitmap, as the native baselines do) or embedded inside
// StegFS (sharing the outer bitmap so plain and hidden allocations never
// collide).
type Volume struct {
	// One big mutex per mounted plain volume; it sits below the allocation
	// group locks, which its mutators take through the shared allocator, and
	// above FS.mu: stegfs.Backup walks the plain directory under fs.mu.
	//
	// lockcheck:level 45 volume/plainMu
	mu  sync.Mutex
	dev vdisk.Device
	bm  *bitmapvec.Bitmap
	cfg Config

	inodeStart  int64 // first block of the inode table
	inodeBlocks int64 // length of the inode table in blocks
	dataStart   int64 // first allocatable data block

	// lockcheck:guardedby mu
	rng *rand.Rand
	// lockcheck:guardedby mu
	byName map[string]int // name -> inode slot
	// lockcheck:guardedby mu
	nodes []*inode // slot -> inode (cache of the whole table)

	standalone bool
	bmStart    int64 // standalone only: bitmap region start
	bmBlocks   int64 // standalone only: bitmap region length
}

// inodesPerBlock returns how many inode records fit in one device block.
func inodesPerBlock(dev vdisk.Device) int64 {
	n := int64(dev.BlockSize() / InodeSize)
	if n < 1 {
		n = 1
	}
	return n
}

// InodeBlocksFor returns the number of blocks a central directory with
// maxFiles entries occupies on dev.
func InodeBlocksFor(dev vdisk.Device, maxFiles int) int64 {
	per := inodesPerBlock(dev)
	return (int64(maxFiles) + per - 1) / per
}

// NewEmbedded mounts a plain volume inside an outer file system. The caller
// provides the shared bitmap (with all metadata regions already marked) and
// the inode-table placement; data blocks are allocated from the shared
// bitmap at or after dataStart.
func NewEmbedded(dev vdisk.Device, bm *bitmapvec.Bitmap, inodeStart, inodeBlocks, dataStart int64, cfg Config) (*Volume, error) {
	v := &Volume{
		dev:         dev,
		bm:          bm,
		cfg:         cfg,
		inodeStart:  inodeStart,
		inodeBlocks: inodeBlocks,
		dataStart:   dataStart,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		byName:      make(map[string]int),
	}
	if cfg.Policy == Fragmented && cfg.FragBlocks <= 0 {
		return nil, fmt.Errorf("plainfs: fragmented policy needs FragBlocks > 0")
	}
	if cfg.Alloc != nil && cfg.Policy != Random {
		return nil, fmt.Errorf("plainfs: shared allocator requires the random policy, got %v", cfg.Policy)
	}
	if err := v.loadInodes(); err != nil {
		return nil, err
	}
	return v, nil
}

// loadInodes reads the whole central directory into memory and indexes it.
// lockcheck:holds volume/plainMu
func (v *Volume) loadInodes() error {
	per := inodesPerBlock(v.dev)
	capacity := v.inodeBlocks * per
	if int64(v.cfg.MaxFiles) > capacity {
		v.cfg.MaxFiles = int(capacity)
	}
	v.nodes = make([]*inode, v.cfg.MaxFiles)
	buf := make([]byte, v.dev.BlockSize())
	for slot := 0; slot < v.cfg.MaxFiles; slot++ {
		blk := v.inodeStart + int64(slot)/per
		if int64(slot)%per == 0 {
			if err := v.dev.ReadBlock(blk, buf); err != nil {
				return fmt.Errorf("plainfs: read inode block %d: %w", blk, err)
			}
		}
		off := (int64(slot) % per) * InodeSize
		in, err := decodeInode(buf[off : off+InodeSize])
		if err != nil {
			return err
		}
		v.nodes[slot] = in
		if in.used {
			v.byName[in.name] = slot
		}
	}
	return nil
}

// flushInode writes one inode slot back to the device.
// lockcheck:holds volume/plainMu
func (v *Volume) flushInode(slot int) error {
	per := inodesPerBlock(v.dev)
	blk := v.inodeStart + int64(slot)/per
	buf := make([]byte, v.dev.BlockSize())
	if err := v.dev.ReadBlock(blk, buf); err != nil {
		return fmt.Errorf("plainfs: read inode block %d: %w", blk, err)
	}
	off := (int64(slot) % per) * InodeSize
	if err := encodeInode(v.nodes[slot], buf[off:off+InodeSize]); err != nil {
		return err
	}
	if err := v.dev.WriteBlock(blk, buf); err != nil {
		return fmt.Errorf("plainfs: write inode block %d: %w", blk, err)
	}
	return nil
}

// SchemeName implements fsapi.FileSystem.
func (v *Volume) SchemeName() string { return "plainfs-" + v.cfg.Policy.String() }

// Bitmap exposes the allocation bitmap (shared with the outer FS when
// embedded).
func (v *Volume) Bitmap() *bitmapvec.Bitmap { return v.bm }

// Device exposes the underlying block device.
func (v *Volume) Device() vdisk.Device { return v.dev }

// blocksFor returns how many data blocks a payload of size bytes needs.
func (v *Volume) blocksFor(size int) int64 {
	bs := int64(v.dev.BlockSize())
	return (int64(size) + bs - 1) / bs
}

// allocData allocates n data blocks under the configured policy.
// lockcheck:holds volume/plainMu
func (v *Volume) allocData(n int64) ([]int64, error) {
	switch v.cfg.Policy {
	case Contiguous:
		start, err := v.bm.AllocContiguous(n)
		if err != nil {
			return nil, fsapi.ErrNoSpace
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = start + int64(i)
		}
		return out, nil
	case Fragmented:
		// Fragments land at random positions: a well-used disk's free space
		// is scattered, which is exactly what FragDisk models.
		frag := int64(v.cfg.FragBlocks)
		out := make([]int64, 0, n)
		for rem := n; rem > 0; {
			run := frag
			if rem < run {
				run = rem
			}
			start, err := v.bm.AllocContiguousAt(v.rng, run)
			if err != nil {
				v.freeBlocks(out)
				return nil, fsapi.ErrNoSpace
			}
			for i := int64(0); i < run; i++ {
				out = append(out, start+i)
			}
			rem -= run
		}
		return out, nil
	case Random:
		out := make([]int64, 0, n)
		for i := int64(0); i < n; i++ {
			b, err := v.allocRandom()
			if err != nil {
				v.freeBlocks(out)
				return nil, fsapi.ErrNoSpace
			}
			out = append(out, b)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("plainfs: unknown policy %v", v.cfg.Policy)
	}
}

// allocRandom draws one uniformly random free block, through the shared
// sharded allocator when the volume is embedded under one.
// lockcheck:holds volume/plainMu
func (v *Volume) allocRandom() (int64, error) {
	if v.cfg.Alloc != nil {
		b, err := v.cfg.Alloc.Alloc()
		if err != nil {
			return 0, fsapi.ErrNoSpace
		}
		return b, nil
	}
	b, err := v.bm.AllocRandomFree(v.rng)
	if err != nil {
		return 0, fsapi.ErrNoSpace
	}
	return b, nil
}

// allocMeta allocates one block for indirect pointers.
// lockcheck:holds volume/plainMu
func (v *Volume) allocMeta() (int64, error) {
	if v.cfg.Policy == Random {
		return v.allocRandom()
	}
	b, err := v.bm.AllocFirstFree(v.dataStart)
	if err != nil {
		return 0, fsapi.ErrNoSpace
	}
	return b, nil
}

// freeBlocks returns a set of blocks to the free space — through the shared
// allocator's group-aware batch free when embedded, so a large plain delete
// locks each allocation group once instead of once per block.
func (v *Volume) freeBlocks(blocks []int64) {
	if v.cfg.Alloc != nil {
		v.cfg.Alloc.FreeBatch(blocks)
		return
	}
	for _, b := range blocks {
		v.freeBlock(b)
	}
}

// freeBlock returns one block, through the shared allocator when embedded.
func (v *Volume) freeBlock(b int64) {
	if v.cfg.Alloc != nil {
		v.cfg.Alloc.Free(b)
		return
	}
	_ = v.bm.Clear(b)
}

// Create implements fsapi.FileSystem.
func (v *Volume) Create(name string, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.createLocked(name, data)
}

// lockcheck:holds volume/plainMu
func (v *Volume) createLocked(name string, data []byte) error {
	if _, ok := v.byName[name]; ok {
		return fmt.Errorf("%w: %q", fsapi.ErrExists, name)
	}
	slot := -1
	for i, in := range v.nodes {
		if !in.used {
			slot = i
			break
		}
	}
	if slot < 0 {
		return fmt.Errorf("%w: central directory full", fsapi.ErrNoSpace)
	}
	n := v.blocksFor(len(data))
	blocks, err := v.allocData(n)
	if err != nil {
		return err
	}
	if err := v.writeData(blocks, data); err != nil {
		v.freeBlocks(blocks)
		return err
	}
	root, meta, err := ptree.Write(rawIO{v.dev}, v.allocMeta, NumDirect, blocks)
	if err != nil {
		v.freeBlocks(blocks)
		v.freeBlocks(meta)
		return err
	}
	in := &inode{used: true, name: name, size: int64(len(data)), nblocks: n, root: root}
	v.nodes[slot] = in
	if err := v.flushInode(slot); err != nil {
		v.freeBlocks(blocks)
		v.freeBlocks(meta)
		v.nodes[slot] = &inode{root: ptree.NewRoot(NumDirect)}
		return err
	}
	v.byName[name] = slot
	return nil
}

// writeData writes data across the given blocks, zero-padding the tail.
func (v *Volume) writeData(blocks []int64, data []byte) error {
	bs := v.dev.BlockSize()
	buf := make([]byte, bs)
	for i, b := range blocks {
		for j := range buf {
			buf[j] = 0
		}
		off := i * bs
		if off < len(data) {
			copy(buf, data[off:])
		}
		if err := v.dev.WriteBlock(b, buf); err != nil {
			return err
		}
	}
	return nil
}

// Read implements fsapi.FileSystem.
func (v *Volume) Read(name string) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	in, err := v.lookup(name)
	if err != nil {
		return nil, err
	}
	blocks, err := ptree.Read(rawIO{v.dev}, in.root, in.nblocks)
	if err != nil {
		return nil, err
	}
	bs := v.dev.BlockSize()
	out := make([]byte, in.nblocks*int64(bs))
	buf := make([]byte, bs)
	for i, b := range blocks {
		if err := v.dev.ReadBlock(b, buf); err != nil {
			return nil, err
		}
		copy(out[i*bs:], buf)
	}
	return out[:in.size], nil
}

// Write implements fsapi.FileSystem: it replaces the contents of name.
// When the new payload needs the same number of blocks the file is updated
// in place; otherwise the old blocks are freed and new ones allocated.
func (v *Volume) Write(name string, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	slot, ok := v.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	in := v.nodes[slot]
	n := v.blocksFor(len(data))
	if n == in.nblocks {
		blocks, err := ptree.Read(rawIO{v.dev}, in.root, in.nblocks)
		if err != nil {
			return err
		}
		if err := v.writeData(blocks, data); err != nil {
			return err
		}
		in.size = int64(len(data))
		return v.flushInode(slot)
	}
	if err := v.deleteLocked(name); err != nil {
		return err
	}
	return v.createLocked(name, data)
}

// Delete implements fsapi.FileSystem.
func (v *Volume) Delete(name string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.deleteLocked(name)
}

// lockcheck:holds volume/plainMu
func (v *Volume) deleteLocked(name string) error {
	slot, ok := v.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	in := v.nodes[slot]
	blocks, err := ptree.Read(rawIO{v.dev}, in.root, in.nblocks)
	if err != nil {
		return err
	}
	if err := ptree.Free(rawIO{v.dev}, in.root, in.nblocks, v.freeBlock); err != nil {
		return err
	}
	v.freeBlocks(blocks)
	v.nodes[slot] = &inode{root: ptree.NewRoot(NumDirect)}
	delete(v.byName, name)
	return v.flushInode(slot)
}

// Stat implements fsapi.FileSystem.
func (v *Volume) Stat(name string) (fsapi.FileInfo, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	in, err := v.lookup(name)
	if err != nil {
		return fsapi.FileInfo{}, err
	}
	return fsapi.FileInfo{Name: in.name, Size: in.size, Blocks: in.nblocks}, nil
}

// lockcheck:holds volume/plainMu
func (v *Volume) lookup(name string) (*inode, error) {
	slot, ok := v.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	return v.nodes[slot], nil
}

// Names returns the names of all files in the central directory. The
// adversary tooling uses this: plain files are, by design, fully visible.
func (v *Volume) Names() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.byName))
	for n := range v.byName {
		out = append(out, n)
	}
	return out
}

// ReferencedBlocks returns every block reachable from the central directory:
// all plain files' data and indirect blocks. StegFS backup uses this to
// exclude plain-file space from the raw image (paper §3.3).
func (v *Volume) ReferencedBlocks() (map[int64]bool, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[int64]bool)
	for _, in := range v.nodes {
		if !in.used {
			continue
		}
		blocks, err := ptree.Read(rawIO{v.dev}, in.root, in.nblocks)
		if err != nil {
			return nil, err
		}
		for _, b := range blocks {
			out[b] = true
		}
		meta, err := ptree.MetaBlocks(rawIO{v.dev}, in.root, in.nblocks)
		if err != nil {
			return nil, err
		}
		for _, b := range meta {
			out[b] = true
		}
	}
	return out, nil
}

// rawIO adapts a vdisk.Device to ptree.BlockIO without encryption.
type rawIO struct{ dev vdisk.Device }

func (r rawIO) ReadBlock(n int64, buf []byte) error  { return r.dev.ReadBlock(n, buf) }
func (r rawIO) WriteBlock(n int64, buf []byte) error { return r.dev.WriteBlock(n, buf) }
func (r rawIO) BlockSize() int                       { return r.dev.BlockSize() }

var _ fsapi.FileSystem = (*Volume)(nil)
