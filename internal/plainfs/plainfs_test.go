package plainfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"stegfs/internal/bitmapvec"
	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
	"stegfs/internal/vdisk"
)

// newTestVolume builds an embedded volume over a fresh MemStore: block 0
// reserved, 8 inode blocks, rest data.
func newTestVolume(t *testing.T, policy Policy, numBlocks int64, bs int) *Volume {
	t.Helper()
	store, err := vdisk.NewMemStore(numBlocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	bm := bitmapvec.New(numBlocks)
	cfg := DefaultConfig(policy)
	cfg.MaxFiles = 32
	const inoStart = 1
	inoLen := InodeBlocksFor(store, cfg.MaxFiles)
	for b := int64(0); b < inoStart+inoLen; b++ {
		_ = bm.Set(b)
	}
	v, err := NewEmbedded(store, bm, inoStart, inoLen, inoStart+inoLen, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func payload(n int, tag byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = tag + byte(i%13)
	}
	return out
}

func TestInodeCodecRoundTrip(t *testing.T) {
	in := &inode{used: true, name: "hello/world.txt", size: 12345, nblocks: 13}
	in.root = rootWith(13)
	buf := make([]byte, InodeSize)
	if err := encodeInode(in, buf); err != nil {
		t.Fatal(err)
	}
	got, err := decodeInode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.name != in.name || got.size != in.size || got.nblocks != in.nblocks {
		t.Fatalf("decode mismatch: %+v", got)
	}
	for i := range in.root.Direct {
		if got.root.Direct[i] != in.root.Direct[i] {
			t.Fatalf("direct[%d] mismatch", i)
		}
	}
}

func rootWith(n int) ptree.Root {
	r := ptree.NewRoot(NumDirect)
	for i := 0; i < NumDirect && i < n; i++ {
		r.Direct[i] = int64(100 + i)
	}
	r.Single, r.Double = 7, 9
	return r
}

func TestInodeNameTooLong(t *testing.T) {
	in := &inode{used: true, name: string(make([]byte, 300))}
	in.root = rootWith(0)
	if err := encodeInode(in, make([]byte, InodeSize)); err == nil {
		t.Fatal("oversized name should fail")
	}
}

func TestCreateReadAllPolicies(t *testing.T) {
	for _, policy := range []Policy{Contiguous, Fragmented, Random} {
		t.Run(policy.String(), func(t *testing.T) {
			v := newTestVolume(t, policy, 4096, 512)
			want := payload(10_000, 3)
			if err := v.Create("f", want); err != nil {
				t.Fatal(err)
			}
			got, err := v.Read("f")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("round trip mismatch")
			}
			fi, err := v.Stat("f")
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size != int64(len(want)) || fi.Blocks != 20 {
				t.Fatalf("Stat = %+v", fi)
			}
		})
	}
}

func TestContiguousIsContiguous(t *testing.T) {
	v := newTestVolume(t, Contiguous, 4096, 512)
	if err := v.Create("f", payload(5120, 1)); err != nil {
		t.Fatal(err)
	}
	refs, err := v.ReferencedBlocks()
	if err != nil {
		t.Fatal(err)
	}
	var min, max int64 = 1 << 62, 0
	for b := range refs {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	// 10 data blocks, contiguous (no indirect needed under 24 direct).
	if max-min != 9 {
		t.Fatalf("contiguous file spans [%d,%d]", min, max)
	}
}

func TestFragmentedScatters(t *testing.T) {
	v := newTestVolume(t, Fragmented, 8192, 512)
	if err := v.Create("f", payload(512*24, 1)); err != nil { // 24 blocks = 3 fragments
		t.Fatal(err)
	}
	refs, err := v.ReferencedBlocks()
	if err != nil {
		t.Fatal(err)
	}
	var min, max int64 = 1 << 62, 0
	for b := range refs {
		if b < min {
			min = b
		}
		if b > max {
			max = b
		}
	}
	if max-min < 30 {
		t.Fatalf("fragments not scattered: span %d", max-min)
	}
}

func TestCreateDuplicate(t *testing.T) {
	v := newTestVolume(t, Random, 1024, 512)
	if err := v.Create("f", payload(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := v.Create("f", payload(100, 2)); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("want ErrExists, got %v", err)
	}
}

func TestReadMissing(t *testing.T) {
	v := newTestVolume(t, Random, 1024, 512)
	if _, err := v.Read("nope"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if err := v.Delete("nope"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("delete: want ErrNotFound, got %v", err)
	}
	if _, err := v.Stat("nope"); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("stat: want ErrNotFound, got %v", err)
	}
}

func TestWriteSameShapeInPlace(t *testing.T) {
	v := newTestVolume(t, Random, 2048, 512)
	if err := v.Create("f", payload(2000, 1)); err != nil {
		t.Fatal(err)
	}
	before, _ := v.ReferencedBlocks()
	want := payload(1900, 9) // same block count (4)
	if err := v.Write("f", want); err != nil {
		t.Fatal(err)
	}
	after, _ := v.ReferencedBlocks()
	if len(before) != len(after) {
		t.Fatalf("in-place write changed block count %d -> %d", len(before), len(after))
	}
	for b := range before {
		if !after[b] {
			t.Fatal("in-place write moved blocks")
		}
	}
	got, err := v.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after in-place write")
	}
}

func TestWriteResizeReallocates(t *testing.T) {
	v := newTestVolume(t, Random, 2048, 512)
	if err := v.Create("f", payload(2000, 1)); err != nil {
		t.Fatal(err)
	}
	want := payload(6000, 5)
	if err := v.Write("f", want); err != nil {
		t.Fatal(err)
	}
	got, err := v.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch after grow")
	}
}

func TestDeleteFreesSpace(t *testing.T) {
	v := newTestVolume(t, Random, 1024, 512)
	free0 := v.Bitmap().CountFree()
	if err := v.Create("f", payload(512*40, 1)); err != nil { // needs indirect
		t.Fatal(err)
	}
	if v.Bitmap().CountFree() >= free0 {
		t.Fatal("create did not consume space")
	}
	if err := v.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if v.Bitmap().CountFree() != free0 {
		t.Fatalf("delete leaked: free %d -> %d", free0, v.Bitmap().CountFree())
	}
}

func TestNoSpace(t *testing.T) {
	v := newTestVolume(t, Contiguous, 64, 512)
	set0 := v.Bitmap().CountSet() // metadata only
	err := v.Create("f", payload(512*100, 1))
	if !errors.Is(err, fsapi.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	// Failed create must not leak blocks.
	if v.Bitmap().CountSet() != set0 {
		t.Fatalf("failed create leaked blocks: %d set, want %d", v.Bitmap().CountSet(), set0)
	}
}

func TestPersistenceAcrossRemount(t *testing.T) {
	store, err := vdisk.NewMemStore(2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	bm := bitmapvec.New(2048)
	for b := int64(0); b < 9; b++ {
		_ = bm.Set(b)
	}
	cfg := DefaultConfig(Random)
	cfg.MaxFiles = 16
	v, err := NewEmbedded(store, bm, 1, 8, 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := payload(3000, 4)
	if err := v.Create("persist", want); err != nil {
		t.Fatal(err)
	}
	// Remount over the same device with the same bitmap: inodes reload.
	v2, err := NewEmbedded(store, bm, 1, 8, 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v2.Read("persist")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("remounted volume lost content")
	}
}

func TestCursorsMatchWholeFileOps(t *testing.T) {
	v := newTestVolume(t, Random, 4096, 512)
	want := payload(7000, 2)
	if err := v.Create("f", want); err != nil {
		t.Fatal(err)
	}
	rc, err := v.ReadCursor("f")
	if err != nil {
		t.Fatal(err)
	}
	steps, err := fsapi.Drain(rc)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 14 { // ceil(7000/512)
		t.Fatalf("read cursor took %d steps, want 14", steps)
	}
	want2 := payload(7000, 8)
	wc, err := v.WriteCursor("f", want2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.Drain(wc); err != nil {
		t.Fatal(err)
	}
	got, err := v.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want2) {
		t.Fatal("write cursor content mismatch")
	}
}

func TestWriteCursorSizeMismatch(t *testing.T) {
	v := newTestVolume(t, Random, 2048, 512)
	if err := v.Create("f", payload(1024, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := v.WriteCursor("f", payload(5000, 1)); err == nil {
		t.Fatal("size-changing write cursor should fail")
	}
}

func TestStepPastEnd(t *testing.T) {
	v := newTestVolume(t, Random, 1024, 512)
	if err := v.Create("f", payload(512, 1)); err != nil {
		t.Fatal(err)
	}
	c, err := v.ReadCursor("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fsapi.Drain(c); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(); err == nil {
		t.Fatal("Step past end should error")
	}
}

// TestPropertyCreateReadDelete: arbitrary create/read/delete sequences keep
// contents and the free-space ledger consistent.
func TestPropertyCreateReadDelete(t *testing.T) {
	f := func(sizes []uint16) bool {
		v := newTestVolume(t, Random, 8192, 512)
		ref := map[string][]byte{}
		free0 := v.Bitmap().CountFree()
		for i, szRaw := range sizes {
			if i >= 10 {
				break
			}
			name := fmt.Sprintf("f%d", i)
			data := payload(int(szRaw)%20000+1, byte(i))
			if err := v.Create(name, data); err != nil {
				return false
			}
			ref[name] = data
		}
		for name, want := range ref {
			got, err := v.Read(name)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		for name := range ref {
			if err := v.Delete(name); err != nil {
				return false
			}
		}
		return v.Bitmap().CountFree() == free0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
