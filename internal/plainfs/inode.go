// Package plainfs implements the plain-file machinery: a central directory
// of Unix-style inodes plus data blocks placed by a pluggable allocation
// policy. It serves three roles in the reproduction:
//
//   - the plain-file side of StegFS (paper §3.1: "all the plain files are
//     accessed through the central directory, which is modeled after the
//     inode table in Unix");
//   - the CleanDisk baseline (contiguous allocation on a fresh volume);
//   - the FragDisk baseline (files broken into fragments of 8 blocks,
//     paper §5.1).
package plainfs

import (
	"encoding/binary"
	"fmt"

	"stegfs/internal/ptree"
)

// InodeSize is the fixed on-disk size of one inode record.
const InodeSize = 512

// NumDirect is the number of direct block pointers per inode.
const NumDirect = 24

// maxNameLen is the longest file name an inode can store inline.
const maxNameLen = 246

// inode is the in-memory form of one central-directory entry.
type inode struct {
	used    bool
	name    string
	size    int64
	nblocks int64
	root    ptree.Root
}

// encodeInode serializes an inode into a 512-byte record.
//
// Layout: flag(1) nameLen(2) name(246) size(8) nblocks(8) direct(24*8)
// single(8) double(8), zero padding to 512.
func encodeInode(in *inode, buf []byte) error {
	if len(buf) < InodeSize {
		return fmt.Errorf("plainfs: inode buffer too small (%d)", len(buf))
	}
	for i := range buf[:InodeSize] {
		buf[i] = 0
	}
	if !in.used {
		return nil
	}
	if len(in.name) > maxNameLen {
		return fmt.Errorf("plainfs: name too long (%d > %d)", len(in.name), maxNameLen)
	}
	buf[0] = 1
	binary.BigEndian.PutUint16(buf[1:], uint16(len(in.name)))
	copy(buf[3:3+maxNameLen], in.name)
	off := 3 + maxNameLen
	binary.BigEndian.PutUint64(buf[off:], uint64(in.size))
	binary.BigEndian.PutUint64(buf[off+8:], uint64(in.nblocks))
	off += 16
	if len(in.root.Direct) != NumDirect {
		return fmt.Errorf("plainfs: inode root has %d direct slots, want %d", len(in.root.Direct), NumDirect)
	}
	for i := 0; i < NumDirect; i++ {
		binary.BigEndian.PutUint64(buf[off+i*8:], uint64(in.root.Direct[i]))
	}
	off += NumDirect * 8
	binary.BigEndian.PutUint64(buf[off:], uint64(in.root.Single))
	binary.BigEndian.PutUint64(buf[off+8:], uint64(in.root.Double))
	return nil
}

// decodeInode parses a 512-byte record into an inode.
func decodeInode(buf []byte) (*inode, error) {
	if len(buf) < InodeSize {
		return nil, fmt.Errorf("plainfs: inode buffer too small (%d)", len(buf))
	}
	in := &inode{root: ptree.NewRoot(NumDirect)}
	if buf[0] == 0 {
		return in, nil
	}
	in.used = true
	nameLen := int(binary.BigEndian.Uint16(buf[1:]))
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("plainfs: corrupt inode: name length %d", nameLen)
	}
	in.name = string(buf[3 : 3+nameLen])
	off := 3 + maxNameLen
	in.size = int64(binary.BigEndian.Uint64(buf[off:]))
	in.nblocks = int64(binary.BigEndian.Uint64(buf[off+8:]))
	off += 16
	for i := 0; i < NumDirect; i++ {
		in.root.Direct[i] = int64(binary.BigEndian.Uint64(buf[off+i*8:]))
	}
	off += NumDirect * 8
	in.root.Single = int64(binary.BigEndian.Uint64(buf[off:]))
	in.root.Double = int64(binary.BigEndian.Uint64(buf[off+8:]))
	return in, nil
}
