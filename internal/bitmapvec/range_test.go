package bitmapvec

import (
	"errors"
	"math/rand"
	"testing"
)

// naiveCountFree is the reference implementation the word-at-a-time scan is
// checked against.
func naiveCountFree(b *Bitmap, lo, hi int64) int64 {
	if lo < 0 {
		lo = 0
	}
	if hi > b.Len() {
		hi = b.Len()
	}
	var n int64
	for i := lo; i < hi; i++ {
		if !b.Test(i) {
			n++
		}
	}
	return n
}

func TestCountFreeInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := New(517) // deliberately not a multiple of 64
	for i := int64(0); i < b.Len(); i++ {
		if rng.Intn(3) == 0 {
			_ = b.Set(i)
		}
	}
	ranges := [][2]int64{
		{0, 517}, {0, 0}, {517, 517}, {64, 128}, {63, 65}, {1, 516},
		{100, 100}, {511, 517}, {-10, 50}, {400, 9999}, {200, 100},
	}
	for _, r := range ranges {
		got := b.CountFreeInRange(r[0], r[1])
		want := naiveCountFree(b, r[0], r[1])
		if got != want {
			t.Errorf("CountFreeInRange(%d,%d) = %d, want %d", r[0], r[1], got, want)
		}
	}
	if b.CountFreeInRange(0, b.Len()) != b.CountFree() {
		t.Errorf("full-range count %d != CountFree %d", b.CountFreeInRange(0, b.Len()), b.CountFree())
	}
}

func TestRandomFreeInRangeStaysInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := New(1024)
	for i := int64(0); i < b.Len(); i++ {
		if rng.Intn(2) == 0 {
			_ = b.Set(i)
		}
	}
	lo, hi := int64(192), int64(832)
	for trial := 0; trial < 500; trial++ {
		i, err := b.RandomFreeInRange(rng, lo, hi)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if i < lo || i >= hi {
			t.Fatalf("block %d outside [%d,%d)", i, lo, hi)
		}
		if b.Test(i) {
			t.Fatalf("block %d reported free but is set", i)
		}
	}
}

// TestRandomFreeInRangeRankPath drives occupancy above the rejection-sampling
// cutoff so the rank-selection fallback is what returns the block.
func TestRandomFreeInRangeRankPath(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := New(640)
	lo, hi := int64(64), int64(576)
	// Leave exactly 5 free blocks in the range (occupancy ~99%).
	keep := map[int64]bool{70: true, 133: true, 134: true, 400: true, 575: true}
	for i := int64(0); i < b.Len(); i++ {
		if i >= lo && i < hi && keep[i] {
			continue
		}
		_ = b.Set(i)
	}
	seen := map[int64]int{}
	for trial := 0; trial < 2000; trial++ {
		i, err := b.RandomFreeInRange(rng, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if !keep[i] {
			t.Fatalf("rank path returned non-free block %d", i)
		}
		seen[i]++
	}
	for want := range keep {
		if seen[want] == 0 {
			t.Errorf("free block %d never sampled in 2000 trials", want)
		}
	}
}

func TestAllocRandomFreeInRangeExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := New(256)
	lo, hi := int64(64), int64(128)
	for i := int64(0); i < 64; i++ {
		blk, err := b.AllocRandomFreeInRange(rng, lo, hi)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if blk < lo || blk >= hi {
			t.Fatalf("alloc %d: block %d outside [%d,%d)", i, blk, lo, hi)
		}
	}
	if _, err := b.AllocRandomFreeInRange(rng, lo, hi); !errors.Is(err, ErrNoFree) {
		t.Fatalf("exhausted range alloc = %v, want ErrNoFree", err)
	}
	// Blocks outside the range were untouched.
	if got := b.CountFreeInRange(0, lo); got != lo {
		t.Fatalf("allocation leaked below the range: %d free, want %d", got, lo)
	}
	if got := b.CountFreeInRange(hi, 256); got != 256-hi {
		t.Fatalf("allocation leaked above the range: %d free, want %d", got, 256-hi)
	}
}

// TestRangeUniformity is a coarse frequency check that in-range sampling is
// uniform over the free blocks of the range (the sharded allocator's
// correctness rests on it; the statistical chi-squared test lives in
// internal/alloc).
func TestRangeUniformity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	b := New(512)
	for i := int64(0); i < 512; i += 2 {
		_ = b.Set(i) // even blocks used, odd free
	}
	lo, hi := int64(128), int64(384)
	free := b.CountFreeInRange(lo, hi)
	const trials = 64000
	counts := map[int64]int{}
	for trial := 0; trial < trials; trial++ {
		i, err := b.RandomFreeInRange(rng, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		counts[i]++
	}
	expected := float64(trials) / float64(free)
	for blk, c := range counts {
		if ratio := float64(c) / expected; ratio < 0.6 || ratio > 1.4 {
			t.Errorf("block %d sampled %d times, expected ~%.0f", blk, c, expected)
		}
	}
	if int64(len(counts)) != free {
		t.Errorf("sampled %d distinct blocks, range has %d free", len(counts), free)
	}
}
