package bitmapvec

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal feeds arbitrary lengths and bytes to the bitmap decoder —
// the bitmap region is read straight off an untrusted volume image at mount
// time. It must never panic; a successful decode must keep its set-count
// invariant and survive a Marshal→Unmarshal round trip.
func FuzzUnmarshal(f *testing.F) {
	bm := New(200)
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 199} {
		_ = bm.Set(i)
	}
	f.Add(int64(200), bm.Marshal())
	f.Add(int64(0), []byte{})
	f.Add(int64(64), []byte{0xFF})       // short data
	f.Add(int64(3), []byte{0xFF, 0xFF})  // trailing bits beyond n
	f.Add(int64(-5), []byte{1, 2, 3})    // negative length
	f.Add(int64(1<<20), make([]byte, 4)) // huge n, tiny data
	f.Fuzz(func(t *testing.T, n int64, data []byte) {
		if n > 1<<20 {
			n %= 1 << 20 // keep allocations bounded, not the parse logic
		}
		b, err := Unmarshal(n, data)
		if err != nil {
			return
		}
		// Invariant: counted bits match tested bits.
		var nset int64
		for i := int64(0); i < b.Len(); i++ {
			if b.Test(i) {
				nset++
			}
		}
		if nset != b.CountSet() {
			t.Fatalf("CountSet %d != counted %d", b.CountSet(), nset)
		}
		if b.CountSet()+b.CountFree() != b.Len() {
			t.Fatalf("set %d + free %d != len %d", b.CountSet(), b.CountFree(), b.Len())
		}
		// Round trip.
		again, err := Unmarshal(b.Len(), b.Marshal())
		if err != nil {
			t.Fatalf("round-trip Unmarshal: %v", err)
		}
		if !bytes.Equal(again.Marshal(), b.Marshal()) {
			t.Fatal("Marshal→Unmarshal→Marshal not stable")
		}
		if again.CountSet() != b.CountSet() {
			t.Fatalf("round trip changed set count: %d vs %d", again.CountSet(), b.CountSet())
		}
	})
}
