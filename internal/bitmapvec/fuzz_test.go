package bitmapvec

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// FuzzUnmarshal feeds arbitrary lengths and bytes to the bitmap decoder —
// the bitmap region is read straight off an untrusted volume image at mount
// time. It must never panic; a successful decode must keep its set-count
// invariant and survive a Marshal→Unmarshal round trip.
func FuzzUnmarshal(f *testing.F) {
	bm := New(200)
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 199} {
		_ = bm.Set(i)
	}
	f.Add(int64(200), bm.Marshal())
	f.Add(int64(0), []byte{})
	f.Add(int64(64), []byte{0xFF})       // short data
	f.Add(int64(3), []byte{0xFF, 0xFF})  // trailing bits beyond n
	f.Add(int64(-5), []byte{1, 2, 3})    // negative length
	f.Add(int64(1<<20), make([]byte, 4)) // huge n, tiny data
	f.Fuzz(func(t *testing.T, n int64, data []byte) {
		if n > 1<<20 {
			n %= 1 << 20 // keep allocations bounded, not the parse logic
		}
		b, err := Unmarshal(n, data)
		if err != nil {
			return
		}
		// Invariant: counted bits match tested bits.
		var nset int64
		for i := int64(0); i < b.Len(); i++ {
			if b.Test(i) {
				nset++
			}
		}
		if nset != b.CountSet() {
			t.Fatalf("CountSet %d != counted %d", b.CountSet(), nset)
		}
		if b.CountSet()+b.CountFree() != b.Len() {
			t.Fatalf("set %d + free %d != len %d", b.CountSet(), b.CountFree(), b.Len())
		}
		// Round trip.
		again, err := Unmarshal(b.Len(), b.Marshal())
		if err != nil {
			t.Fatalf("round-trip Unmarshal: %v", err)
		}
		if !bytes.Equal(again.Marshal(), b.Marshal()) {
			t.Fatal("Marshal→Unmarshal→Marshal not stable")
		}
		if again.CountSet() != b.CountSet() {
			t.Fatalf("round trip changed set count: %d vs %d", again.CountSet(), b.CountSet())
		}
	})
}

// FuzzRangePrimitives feeds arbitrary bit patterns and (lo, hi) bounds —
// including inverted, negative and out-of-range ones — to the per-group
// range primitives the sharded allocator is built on. CountFreeInRange must
// agree with a bit-by-bit count, and RandomFreeInRange must return a free
// block inside the clipped range exactly when one exists.
func FuzzRangePrimitives(f *testing.F) {
	f.Add(int64(200), []byte{0xAA, 0x55, 0xFF, 0x00}, int64(3), int64(130), int64(1))
	f.Add(int64(64), []byte{0xFF}, int64(0), int64(64), int64(2))
	f.Add(int64(129), []byte{}, int64(-7), int64(9999), int64(3))
	f.Add(int64(300), []byte{0x01}, int64(250), int64(100), int64(4)) // inverted
	f.Fuzz(func(t *testing.T, n int64, pattern []byte, lo, hi, seed int64) {
		if n < 0 {
			n = -n
		}
		n %= 1 << 16
		b := New(n)
		for i := int64(0); i < n; i++ {
			if len(pattern) > 0 && pattern[int(i)%len(pattern)]&(1<<(uint(i)&7)) != 0 {
				if err := b.Set(i); err != nil {
					t.Fatalf("Set(%d): %v", i, err)
				}
			}
		}
		got := b.CountFreeInRange(lo, hi)
		want := naiveCountFree(b, lo, hi)
		if got != want {
			t.Fatalf("CountFreeInRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
		rng := rand.New(rand.NewSource(seed))
		i, err := b.RandomFreeInRange(rng, lo, hi)
		if want == 0 {
			if !errors.Is(err, ErrNoFree) {
				t.Fatalf("empty range returned (%d, %v), want ErrNoFree", i, err)
			}
			return
		}
		if err != nil {
			t.Fatalf("RandomFreeInRange(%d,%d) with %d free: %v", lo, hi, want, err)
		}
		cl, ch := b.clampRange(lo, hi)
		if i < cl || i >= ch {
			t.Fatalf("block %d outside clipped range [%d,%d)", i, cl, ch)
		}
		if b.Test(i) {
			t.Fatalf("block %d reported free but is set", i)
		}
		// Allocating it must shrink the range's free count by exactly one.
		if _, err := b.AllocRandomFreeInRange(rng, lo, hi); err != nil {
			t.Fatalf("alloc with %d free: %v", want, err)
		}
		if b.CountFreeInRange(lo, hi) != want-1 {
			t.Fatalf("alloc changed range free count %d -> %d", want, b.CountFreeInRange(lo, hi))
		}
	})
}
