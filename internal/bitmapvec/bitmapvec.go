// Package bitmapvec implements the block-allocation bitmap used by every
// file system in this repository. A 0 bit marks a free block and a 1 bit a
// used block, exactly as in Section 3.1 of the paper.
//
// Beyond the usual set/clear/test operations it supports the pieces the
// steganographic schemes need: uniform sampling of a random free block (so
// hidden-file blocks land anywhere in the free space), snapshots and set
// differences (the intruder attack in Section 3.1 tracks bitmap deltas
// between observations), and flat serialization so the bitmap can live in a
// reserved region of the volume.
package bitmapvec

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"sync/atomic"
)

// ErrNoFree is returned when an allocation is requested but no block is free.
var ErrNoFree = errors.New("bitmapvec: no free block")

// Bitmap is a fixed-size bit vector over block numbers [0, N).
// The zero value is unusable; use New or Unmarshal.
//
// A Bitmap is not internally synchronized, with one deliberate carve-out for
// the sharded allocator (internal/alloc): callers that partition the block
// space into ranges whose boundaries are multiples of 64 (so no two ranges
// share a word) may mutate distinct ranges concurrently, each under its own
// lock, using the *InRange primitives plus Set/Clear/Test on blocks inside
// their own range. The set-count is kept atomically so those disjoint-word
// mutations never race on the shared counter. Whole-bitmap operations
// (Marshal, Clone, RandomFree, NewlySet, ...) still require all ranges to be
// quiescent.
type Bitmap struct {
	n     int64
	words []uint64
	nset  atomic.Int64
}

// New creates a bitmap for n blocks, all free (zero).
func New(n int64) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of blocks tracked.
func (b *Bitmap) Len() int64 { return b.n }

// CountSet returns the number of used (1) blocks.
func (b *Bitmap) CountSet() int64 { return b.nset.Load() }

// CountFree returns the number of free (0) blocks.
func (b *Bitmap) CountFree() int64 { return b.n - b.nset.Load() }

func (b *Bitmap) checkRange(i int64) error {
	if i < 0 || i >= b.n {
		return fmt.Errorf("bitmapvec: index %d out of range [0,%d)", i, b.n)
	}
	return nil
}

// Test reports whether block i is marked used.
func (b *Bitmap) Test(i int64) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Set marks block i used. It returns an error when i is out of range.
func (b *Bitmap) Set(i int64) error {
	if err := b.checkRange(i); err != nil {
		return err
	}
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.nset.Add(1)
	}
	return nil
}

// Clear marks block i free. It returns an error when i is out of range.
func (b *Bitmap) Clear(i int64) error {
	if err := b.checkRange(i); err != nil {
		return err
	}
	w, m := i>>6, uint64(1)<<(uint(i)&63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.nset.Add(-1)
	}
	return nil
}

// FirstFreeFrom returns the lowest free block number >= from, wrapping past
// the end of the volume. It returns ErrNoFree when every block is used.
func (b *Bitmap) FirstFreeFrom(from int64) (int64, error) {
	if b.nset.Load() >= b.n {
		return 0, ErrNoFree
	}
	if from < 0 || from >= b.n {
		from = 0
	}
	// Scan [from, n) then [0, from).
	if i, ok := b.scanFree(from, b.n); ok {
		return i, nil
	}
	if i, ok := b.scanFree(0, from); ok {
		return i, nil
	}
	return 0, ErrNoFree
}

// scanFree finds the first zero bit in [lo, hi), using word-at-a-time scans.
func (b *Bitmap) scanFree(lo, hi int64) (int64, bool) {
	if lo >= hi {
		return 0, false
	}
	for i := lo; i < hi; {
		w := i >> 6
		word := b.words[w]
		// Mask off bits below i within this word.
		word |= (1 << (uint(i) & 63)) - 1
		inv := ^word
		if inv != 0 {
			bit := int64(bits.TrailingZeros64(inv))
			cand := w<<6 + bit
			if cand < hi {
				return cand, true
			}
			return 0, false
		}
		i = (w + 1) << 6
	}
	return 0, false
}

// RandomFree returns a uniformly random free block, using rng for
// randomness. It returns ErrNoFree when every block is used.
//
// The sampler first tries bounded rejection sampling (fast while the volume
// has plenty of free space) and then falls back to rank selection, so it
// stays correct and O(n) worst-case even at 99%+ occupancy.
func (b *Bitmap) RandomFree(rng *rand.Rand) (int64, error) {
	free := b.CountFree()
	if free == 0 {
		return 0, ErrNoFree
	}
	// Rejection sampling: expected tries = n/free.
	if free*4 >= b.n {
		for tries := 0; tries < 32; tries++ {
			i := rng.Int63n(b.n)
			if !b.Test(i) {
				return i, nil
			}
		}
	}
	// Rank selection: pick the k-th free block.
	k := rng.Int63n(free)
	for w, word := range b.words {
		zeros := int64(64 - bits.OnesCount64(word))
		if int64(w) == int64(len(b.words))-1 {
			// Exclude bits beyond n in the last word.
			extra := int64(len(b.words))*64 - b.n
			hi := ^uint64(0)
			if extra > 0 {
				hi = ^uint64(0) >> uint(extra) // valid-bit mask
			}
			zeros = int64(bits.OnesCount64(^word & hi))
		}
		if k >= zeros {
			k -= zeros
			continue
		}
		// The k-th zero bit lives in this word.
		for bit := int64(0); bit < 64; bit++ {
			i := int64(w)<<6 + bit
			if i >= b.n {
				break
			}
			if word&(1<<uint(bit)) == 0 {
				if k == 0 {
					return i, nil
				}
				k--
			}
		}
	}
	return 0, ErrNoFree
}

// AllocFirstFree finds, marks and returns the lowest free block >= from.
func (b *Bitmap) AllocFirstFree(from int64) (int64, error) {
	i, err := b.FirstFreeFrom(from)
	if err != nil {
		return 0, err
	}
	if err := b.Set(i); err != nil {
		return 0, err
	}
	return i, nil
}

// AllocRandomFree finds, marks and returns a uniformly random free block.
func (b *Bitmap) AllocRandomFree(rng *rand.Rand) (int64, error) {
	i, err := b.RandomFree(rng)
	if err != nil {
		return 0, err
	}
	if err := b.Set(i); err != nil {
		return 0, err
	}
	return i, nil
}

// AllocContiguous finds, marks and returns the start of the lowest run of
// count contiguous free blocks. Used by the CleanDisk baseline.
func (b *Bitmap) AllocContiguous(count int64) (int64, error) {
	if count <= 0 {
		return 0, fmt.Errorf("bitmapvec: invalid run length %d", count)
	}
	var runStart, runLen int64 = -1, 0
	for i := int64(0); i < b.n; i++ {
		if b.Test(i) {
			runStart, runLen = -1, 0
			continue
		}
		if runStart < 0 {
			runStart = i
		}
		runLen++
		if runLen == count {
			for j := runStart; j <= i; j++ {
				if err := b.Set(j); err != nil {
					return 0, err
				}
			}
			return runStart, nil
		}
	}
	return 0, ErrNoFree
}

// AllocContiguousAt finds, marks and returns the start of a run of count
// contiguous free blocks at or after a random position (wrapping around).
// The FragDisk baseline uses this to scatter its 8-block fragments the way a
// well-used disk does.
func (b *Bitmap) AllocContiguousAt(rng *rand.Rand, count int64) (int64, error) {
	if count <= 0 {
		return 0, fmt.Errorf("bitmapvec: invalid run length %d", count)
	}
	if b.CountFree() < count {
		return 0, ErrNoFree
	}
	start := rng.Int63n(b.n)
	var runStart, runLen int64 = -1, 0
	scan := func(lo, hi int64) (int64, bool) {
		runStart, runLen = -1, 0
		for i := lo; i < hi; i++ {
			if b.Test(i) {
				runStart, runLen = -1, 0
				continue
			}
			if runStart < 0 {
				runStart = i
			}
			runLen++
			if runLen == count {
				return runStart, true
			}
		}
		return 0, false
	}
	s, ok := scan(start, b.n)
	if !ok {
		s, ok = scan(0, start)
	}
	if !ok {
		return 0, ErrNoFree
	}
	for j := s; j < s+count; j++ {
		if err := b.Set(j); err != nil {
			return 0, err
		}
	}
	return s, nil
}

// Clone returns a deep copy of the bitmap (a snapshot an observer might take).
func (b *Bitmap) Clone() *Bitmap {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	c := &Bitmap{n: b.n, words: w}
	c.nset.Store(b.nset.Load())
	return c
}

// NewlySet returns the block numbers that are used in cur but were free in
// prev — the delta an intruder computes from two bitmap snapshots.
func NewlySet(prev, cur *Bitmap) []int64 {
	var out []int64
	n := cur.n
	if prev.n < n {
		n = prev.n
	}
	for w := int64(0); w <= (n-1)>>6 && n > 0; w++ {
		diff := cur.words[w] &^ prev.words[w]
		for diff != 0 {
			bit := int64(bits.TrailingZeros64(diff))
			i := w<<6 + bit
			if i < n {
				out = append(out, i)
			}
			diff &^= 1 << uint(bit)
		}
	}
	return out
}

// MarshaledLen returns the byte length of the serialized bitmap for n blocks.
func MarshaledLen(n int64) int { return int((n + 7) / 8) }

// Marshal serializes the bitmap to a compact little-endian byte slice.
func (b *Bitmap) Marshal() []byte {
	out := make([]byte, MarshaledLen(b.n))
	for i, w := range b.words {
		for j := 0; j < 8; j++ {
			idx := i*8 + j
			if idx >= len(out) {
				break
			}
			out[idx] = byte(w >> uint(8*j))
		}
	}
	return out
}

// Unmarshal reconstructs a bitmap for n blocks from data produced by Marshal.
func Unmarshal(n int64, data []byte) (*Bitmap, error) {
	want := MarshaledLen(n)
	if len(data) < want {
		return nil, fmt.Errorf("bitmapvec: short data %d < %d", len(data), want)
	}
	b := New(n)
	var nset int64
	for i := int64(0); i < n; i++ {
		if data[i>>3]&(1<<(uint(i)&7)) != 0 {
			b.words[i>>6] |= 1 << (uint(i) & 63)
			nset++
		}
	}
	b.nset.Store(nset)
	return b, nil
}
