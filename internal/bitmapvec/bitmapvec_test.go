package bitmapvec

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetClearTest(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int64{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bitmap has bit %d set", i)
		}
		if err := b.Set(i); err != nil {
			t.Fatal(err)
		}
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.CountSet() != 8 {
		t.Fatalf("CountSet = %d, want 8", b.CountSet())
	}
	if err := b.Clear(64); err != nil {
		t.Fatal(err)
	}
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if b.CountSet() != 7 {
		t.Fatalf("CountSet = %d, want 7", b.CountSet())
	}
}

func TestSetIdempotent(t *testing.T) {
	b := New(10)
	for i := 0; i < 3; i++ {
		if err := b.Set(5); err != nil {
			t.Fatal(err)
		}
	}
	if b.CountSet() != 1 {
		t.Fatalf("double Set counted twice: %d", b.CountSet())
	}
	for i := 0; i < 3; i++ {
		if err := b.Clear(5); err != nil {
			t.Fatal(err)
		}
	}
	if b.CountSet() != 0 {
		t.Fatalf("double Clear miscounted: %d", b.CountSet())
	}
}

func TestRangeErrors(t *testing.T) {
	b := New(10)
	if err := b.Set(10); err == nil {
		t.Fatal("Set out of range should fail")
	}
	if err := b.Clear(-1); err == nil {
		t.Fatal("Clear out of range should fail")
	}
	if b.Test(10) || b.Test(-5) {
		t.Fatal("Test out of range should be false")
	}
}

func TestFirstFreeFromWraps(t *testing.T) {
	b := New(8)
	for i := int64(4); i < 8; i++ {
		_ = b.Set(i)
	}
	i, err := b.FirstFreeFrom(5)
	if err != nil {
		t.Fatal(err)
	}
	if i != 0 {
		t.Fatalf("FirstFreeFrom(5) = %d, want 0 (wrap)", i)
	}
	for i := int64(0); i < 4; i++ {
		_ = b.Set(i)
	}
	if _, err := b.FirstFreeFrom(0); !errors.Is(err, ErrNoFree) {
		t.Fatalf("want ErrNoFree on full bitmap, got %v", err)
	}
}

func TestRandomFreeUniform(t *testing.T) {
	const n = 64
	b := New(n)
	for i := int64(0); i < n; i += 2 {
		_ = b.Set(i) // even blocks used; odd blocks free
	}
	rng := rand.New(rand.NewSource(42))
	hits := make(map[int64]int)
	for i := 0; i < 3200; i++ {
		blk, err := b.RandomFree(rng)
		if err != nil {
			t.Fatal(err)
		}
		if blk%2 == 0 {
			t.Fatalf("RandomFree returned used block %d", blk)
		}
		hits[blk]++
	}
	if len(hits) != 32 {
		t.Fatalf("sampler reached %d of 32 free blocks", len(hits))
	}
	for blk, c := range hits {
		if c < 40 || c > 200 { // expectation 100; loose uniformity bound
			t.Fatalf("block %d sampled %d times (expected ~100)", blk, c)
		}
	}
}

func TestRandomFreeNearlyFull(t *testing.T) {
	const n = 1000
	b := New(n)
	for i := int64(0); i < n-1; i++ {
		_ = b.Set(i)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		blk, err := b.RandomFree(rng)
		if err != nil {
			t.Fatal(err)
		}
		if blk != n-1 {
			t.Fatalf("only free block is %d, got %d", n-1, blk)
		}
	}
	_ = b.Set(n - 1)
	if _, err := b.RandomFree(rng); !errors.Is(err, ErrNoFree) {
		t.Fatalf("want ErrNoFree, got %v", err)
	}
}

func TestRandomFreeLastWordBoundary(t *testing.T) {
	// n not a multiple of 64: the rank-selection path must not return
	// phantom bits beyond n.
	const n = 70
	b := New(n)
	for i := int64(0); i < n; i++ {
		if i != 67 {
			_ = b.Set(i)
		}
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		blk, err := b.RandomFree(rng)
		if err != nil {
			t.Fatal(err)
		}
		if blk != 67 {
			t.Fatalf("got %d, want 67", blk)
		}
	}
}

func TestAllocContiguous(t *testing.T) {
	b := New(32)
	_ = b.Set(3) // split the space: [0,3) and [4,32)
	start, err := b.AllocContiguous(5)
	if err != nil {
		t.Fatal(err)
	}
	if start != 4 {
		t.Fatalf("AllocContiguous(5) = %d, want 4", start)
	}
	for i := start; i < start+5; i++ {
		if !b.Test(i) {
			t.Fatalf("block %d of run not marked", i)
		}
	}
	start2, err := b.AllocContiguous(3)
	if err != nil {
		t.Fatal(err)
	}
	if start2 != 0 {
		t.Fatalf("second run = %d, want 0", start2)
	}
	if _, err := b.AllocContiguous(25); !errors.Is(err, ErrNoFree) {
		t.Fatalf("oversized run should fail, got %v", err)
	}
	if _, err := b.AllocContiguous(0); err == nil {
		t.Fatal("zero-length run should fail")
	}
}

func TestAllocContiguousAtScatters(t *testing.T) {
	b := New(4096)
	rng := rand.New(rand.NewSource(9))
	starts := make(map[int64]bool)
	for i := 0; i < 32; i++ {
		s, err := b.AllocContiguousAt(rng, 8)
		if err != nil {
			t.Fatal(err)
		}
		if s%1 != 0 {
			t.Fatal("impossible")
		}
		starts[s] = true
		for j := s; j < s+8; j++ {
			if !b.Test(j) {
				t.Fatalf("run block %d unmarked", j)
			}
		}
	}
	// Fragments must not all be adjacent: with random placement over 4096
	// blocks, consecutive starts would be astronomically unlikely.
	adjacent := 0
	for s := range starts {
		if starts[s+8] {
			adjacent++
		}
	}
	if adjacent > 16 {
		t.Fatalf("fragments look sequential: %d adjacent pairs of 32", adjacent)
	}
}

func TestSnapshotDelta(t *testing.T) {
	b := New(128)
	_ = b.Set(3)
	prev := b.Clone()
	_ = b.Set(70)
	_ = b.Set(100)
	_ = b.Clear(3)
	delta := NewlySet(prev, b)
	if len(delta) != 2 || delta[0] != 70 || delta[1] != 100 {
		t.Fatalf("NewlySet = %v, want [70 100]", delta)
	}
	// Clone is deep: mutating b must not affect prev.
	if prev.Test(70) {
		t.Fatal("Clone is shallow")
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	for _, n := range []int64{1, 7, 8, 63, 64, 65, 1000} {
		b := New(n)
		rng := rand.New(rand.NewSource(n))
		for i := int64(0); i < n; i++ {
			if rng.Intn(2) == 0 {
				_ = b.Set(i)
			}
		}
		got, err := Unmarshal(n, b.Marshal())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.CountSet() != b.CountSet() {
			t.Fatalf("n=%d: counts differ", n)
		}
		for i := int64(0); i < n; i++ {
			if got.Test(i) != b.Test(i) {
				t.Fatalf("n=%d: bit %d differs", n, i)
			}
		}
	}
	if _, err := Unmarshal(100, make([]byte, 3)); err == nil {
		t.Fatal("short unmarshal should fail")
	}
}

// TestPropertyCountInvariant: CountSet always equals the number of set bits,
// under arbitrary operation sequences.
func TestPropertyCountInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 257
		b := New(n)
		ref := make(map[int64]bool)
		for _, op := range ops {
			i := int64(op) % n
			if op%2 == 0 {
				_ = b.Set(i)
				ref[i] = true
			} else {
				_ = b.Clear(i)
				delete(ref, i)
			}
		}
		if b.CountSet() != int64(len(ref)) {
			return false
		}
		for i := int64(0); i < n; i++ {
			if b.Test(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMarshalRoundTrip: marshal/unmarshal is the identity for
// arbitrary bit patterns.
func TestPropertyMarshalRoundTrip(t *testing.T) {
	f := func(bits []bool) bool {
		n := int64(len(bits))
		if n == 0 {
			n = 1
			bits = []bool{false}
		}
		b := New(n)
		for i, set := range bits {
			if set {
				_ = b.Set(int64(i))
			}
		}
		got, err := Unmarshal(n, b.Marshal())
		if err != nil {
			return false
		}
		for i := int64(0); i < n; i++ {
			if got.Test(i) != b.Test(i) {
				return false
			}
		}
		return got.CountSet() == b.CountSet()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAllocNeverDoubleAllocates: random allocation never returns a
// block that is already used.
func TestPropertyAllocNeverDoubleAllocates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := New(512)
	seen := make(map[int64]bool)
	for {
		blk, err := b.AllocRandomFree(rng)
		if errors.Is(err, ErrNoFree) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if seen[blk] {
			t.Fatalf("block %d allocated twice", blk)
		}
		seen[blk] = true
	}
	if len(seen) != 512 {
		t.Fatalf("allocated %d of 512", len(seen))
	}
}
