package bitmapvec

import (
	"math/bits"
	"math/rand"
)

// The *InRange primitives below operate on a half-open block range [lo, hi).
// They are what the sharded allocator (internal/alloc) builds its groups on:
// each group owns one range, takes its own lock, and samples uniformly inside
// it, so allocation in distinct groups never contends. Ranges whose
// boundaries are multiples of 64 touch disjoint words, which is what makes
// that pattern race-free (see the Bitmap type comment).

// clampRange clips [lo, hi) to the bitmap's [0, n).
func (b *Bitmap) clampRange(lo, hi int64) (int64, int64) {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// CountFreeInRange returns the number of free (0) blocks in [lo, hi),
// clipped to the bitmap bounds. It scans word-at-a-time with popcounts.
func (b *Bitmap) CountFreeInRange(lo, hi int64) int64 {
	lo, hi = b.clampRange(lo, hi)
	if lo >= hi {
		return 0
	}
	var free int64
	for i := lo; i < hi; {
		w := i >> 6
		word := b.words[w]
		// Mask to the bits of this word that fall inside [i, hi).
		mask := ^uint64(0) << (uint(i) & 63)
		wordEnd := (w + 1) << 6
		if hi < wordEnd {
			mask &= ^uint64(0) >> uint(wordEnd-hi)
		}
		free += int64(bits.OnesCount64(^word & mask))
		i = wordEnd
	}
	return free
}

// RandomFreeInRange returns a uniformly random free block in [lo, hi), using
// rng for randomness. It returns ErrNoFree when no block in the range is
// free. Like RandomFree it tries bounded rejection sampling first and falls
// back to rank selection, so it stays O(range) worst-case at any occupancy.
func (b *Bitmap) RandomFreeInRange(rng *rand.Rand, lo, hi int64) (int64, error) {
	lo, hi = b.clampRange(lo, hi)
	span := hi - lo
	if span <= 0 {
		return 0, ErrNoFree
	}
	free := b.CountFreeInRange(lo, hi)
	if free == 0 {
		return 0, ErrNoFree
	}
	// Rejection sampling: expected tries = span/free.
	if free*4 >= span {
		for tries := 0; tries < 32; tries++ {
			i := lo + rng.Int63n(span)
			if !b.Test(i) {
				return i, nil
			}
		}
	}
	// Rank selection: pick the k-th free block of the range.
	k := rng.Int63n(free)
	for i := lo; i < hi; {
		w := i >> 6
		word := b.words[w]
		mask := ^uint64(0) << (uint(i) & 63)
		wordEnd := (w + 1) << 6
		if hi < wordEnd {
			mask &= ^uint64(0) >> uint(wordEnd-hi)
		}
		inv := ^word & mask
		zeros := int64(bits.OnesCount64(inv))
		if k >= zeros {
			k -= zeros
			i = wordEnd
			continue
		}
		// The k-th free block of the range lives in this word.
		for inv != 0 {
			bit := int64(bits.TrailingZeros64(inv))
			if k == 0 {
				return w<<6 + bit, nil
			}
			k--
			inv &^= 1 << uint(bit)
		}
		break // unreachable: zeros > k guaranteed a hit above
	}
	return 0, ErrNoFree
}

// AllocRandomFreeInRange finds, marks and returns a uniformly random free
// block in [lo, hi).
func (b *Bitmap) AllocRandomFreeInRange(rng *rand.Rand, lo, hi int64) (int64, error) {
	i, err := b.RandomFreeInRange(rng, lo, hi)
	if err != nil {
		return 0, err
	}
	if err := b.Set(i); err != nil {
		return 0, err
	}
	return i, nil
}
