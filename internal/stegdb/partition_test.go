package stegdb

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"stegfs/internal/stegfs"
)

func TestPartitionedTableCRUDAndMerge(t *testing.T) {
	view, _ := newView(t, 64<<10)
	pt, err := CreatePartitionedTable(view, "pt", 4, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%05d", i))
		if err := pt.Put(key, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := pt.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if rows != n {
		t.Fatalf("rows = %d, want %d", rows, n)
	}
	// Every key resolves via both paths.
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("k%05d", i))
		want := fmt.Sprintf("v-%d", i)
		v, ok, err := pt.Get(key)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get %s = %q %v %v", key, v, ok, err)
		}
		v, ok, err = pt.GetOrdered(key)
		if err != nil || !ok || string(v) != want {
			t.Fatalf("GetOrdered %s = %q %v %v", key, v, ok, err)
		}
	}
	// Scan merges the partitions back into global key order.
	var keys []string
	if err := pt.Scan(func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("scan saw %d keys, want %d", len(keys), n)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("merged scan out of order")
	}
	// Range seeks within the merged space.
	var got []string
	if err := pt.Range([]byte("k00100"), []byte("k00110"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k00100" || got[9] != "k00109" {
		t.Fatalf("range = %v", got)
	}
	// Deletes route to the right partition and the counter follows.
	for i := 0; i < n; i += 2 {
		found, err := pt.Delete([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	rows, _ = pt.Rows()
	if rows != n/2 {
		t.Fatalf("rows after deletes = %d, want %d", rows, n/2)
	}
	if err := pt.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedTableRemountAndCheckAny(t *testing.T) {
	view, store := newView(t, 64<<10)
	pt, err := CreatePartitionedTable(view, "pt", 3, true, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := pt.Put([]byte(fmt.Sprintf("r%04d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.Sync(); err != nil {
		t.Fatal(err)
	}

	fs2, err := stegfs.Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	view2 := fs2.NewHiddenView("db")
	files, err := CheckAny(view2, view2.Adopt, "pt")
	if err != nil {
		t.Fatalf("CheckAny: %v (files %v)", err, files)
	}
	// 3 partitions + 3 journals must all be discovered.
	if len(files) != 6 {
		t.Fatalf("CheckAny found files %v, want 3 partitions + 3 journals", files)
	}
	pt2, err := OpenPartitionedTable(view2, "pt")
	if err != nil {
		t.Fatal(err)
	}
	if pt2.Partitions() != 3 {
		t.Fatalf("partitions = %d", pt2.Partitions())
	}
	rows, _ := pt2.Rows()
	if rows != n {
		t.Fatalf("remounted rows = %d, want %d", rows, n)
	}
	for i := 0; i < n; i++ {
		v, ok, err := pt2.Get([]byte(fmt.Sprintf("r%04d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("remount key %d = %q %v %v", i, v, ok, err)
		}
	}
}

func TestCheckAnyPlainTable(t *testing.T) {
	view, store := newView(t, 64<<10)
	tab, err := CreateTable(view, "plain", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := tab.PutUint64(uint64(i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := stegfs.Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	view2 := fs2.NewHiddenView("db")
	files, err := CheckAny(view2, view2.Adopt, "plain")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0] != "plain" || files[1] != "plain.wal" {
		t.Fatalf("files = %v", files)
	}
	if _, err := CheckAny(view2, view2.Adopt, "no-such-table"); err == nil {
		t.Fatal("CheckAny on a missing table must fail")
	}
}

// TestStegDBPartitionedSnapshotAtomic: a cross-partition snapshot pins one
// instant — under concurrent single-key "transfers" that keep an invariant
// across two partitions (total token count constant), every snapshot must
// observe the invariant intact.
func TestStegDBPartitionedSnapshotAtomic(t *testing.T) {
	view, _ := newView(t, 64<<10)
	pt, err := CreatePartitionedTable(view, "atom", 4, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs (a<i>, b<i>): together always hold exactly 8 tokens, split as
	// fixed-width "count" values. Writers move a token by updating both keys
	// while holding the snapshot gate shared across BOTH puts — the gate is
	// what makes the two-key move atomic against snapshots.
	const pairs = 8
	for i := 0; i < pairs; i++ {
		if err := pt.Put([]byte(fmt.Sprintf("a%02d", i)), []byte("4")); err != nil {
			t.Fatal(err)
		}
		if err := pt.Put([]byte(fmt.Sprintf("b%02d", i)), []byte("4")); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := (w*3 + i) % pairs
				av := byte('0' + byte((i)%9))
				bv := byte('0' + byte(8-(i)%9))
				pt.snapGate.RLock()
				ea := pt.parts[pt.partFor([]byte(fmt.Sprintf("a%02d", p)))].Put([]byte(fmt.Sprintf("a%02d", p)), []byte{av})
				eb := pt.parts[pt.partFor([]byte(fmt.Sprintf("b%02d", p)))].Put([]byte(fmt.Sprintf("b%02d", p)), []byte{bv})
				pt.snapGate.RUnlock()
				if ea != nil || eb != nil {
					errCh <- fmt.Errorf("put: %v %v", ea, eb)
					return
				}
			}
		}(w)
	}
	for iter := 0; iter < 50; iter++ {
		s := pt.Snapshot()
		for i := 0; i < pairs; i++ {
			va, oka, ea := s.Get([]byte(fmt.Sprintf("a%02d", i)))
			vb, okb, eb := s.Get([]byte(fmt.Sprintf("b%02d", i)))
			if ea != nil || eb != nil || !oka || !okb {
				s.Close()
				t.Fatalf("snapshot get pair %d: %v %v %v %v", i, oka, ea, okb, eb)
			}
			if int(va[0]-'0')+int(vb[0]-'0') != 8 {
				s.Close()
				t.Fatalf("iter %d pair %d: snapshot saw torn transfer %q + %q", iter, i, va, vb)
			}
		}
		s.Close()
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := pt.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStegDBPartitionedGroupCommit: many goroutines write and Sync
// concurrently; every Sync call must return only after its own writes are
// committed. Verified by remounting cold after the storm.
func TestStegDBPartitionedGroupCommit(t *testing.T) {
	view, store := newView(t, 64<<10)
	pt, err := CreatePartitionedTable(view, "gc", 4, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		keysPerG   = 40
	)
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerG; i++ {
				key := []byte(fmt.Sprintf("g%d-%04d", w, i))
				if err := pt.Put(key, []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
					errCh <- err
					return
				}
				if i%8 == 7 {
					if err := pt.Sync(); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := pt.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := stegfs.Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	view2 := fs2.NewHiddenView("db")
	if _, err := CheckAny(view2, view2.Adopt, "gc"); err != nil {
		t.Fatal(err)
	}
	pt2, err := OpenPartitionedTable(view2, "gc")
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := pt2.Rows()
	if rows != goroutines*keysPerG {
		t.Fatalf("remounted rows = %d, want %d", rows, goroutines*keysPerG)
	}
	for w := 0; w < goroutines; w++ {
		for i := 0; i < keysPerG; i++ {
			key := []byte(fmt.Sprintf("g%d-%04d", w, i))
			v, ok, err := pt2.Get(key)
			if err != nil || !ok || string(v) != fmt.Sprintf("val-%d-%d", w, i) {
				t.Fatalf("key %s = %q %v %v", key, v, ok, err)
			}
		}
	}
}

// TestStegDBSnapshotUnderSplitStress: writers force continuous leaf splits
// and root growths while snapshots are taken and scanned. Each writer
// appends sequential keys, so every snapshot must see a contiguous prefix
// of each writer's keys — a split leaking into a pinned snapshot would
// break contiguity or ordering.
func TestStegDBSnapshotUnderSplitStress(t *testing.T) {
	view, _ := newView(t, 64<<10)
	tab, err := CreateTable(view, "split", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	stop := make(chan struct{})
	errCh := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := []byte(fmt.Sprintf("w%d-%06d", w, i))
				if err := tab.Put(key, []byte(fmt.Sprintf("%s=%d", key, i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for iter := 0; iter < 40; iter++ {
		s := tab.Snapshot()
		last := make([]int, writers)
		for i := range last {
			last[i] = -1
		}
		var count int64
		err := s.Scan(func(k, v []byte) bool {
			count++
			var w, i int
			if _, err := fmt.Sscanf(string(k), "w%d-%06d", &w, &i); err != nil {
				t.Errorf("iter %d: unparseable key %q", iter, k)
				return false
			}
			if i != last[w]+1 {
				t.Errorf("iter %d: writer %d jumped %d -> %d (split leaked into snapshot)", iter, w, last[w], i)
				return false
			}
			last[w] = i
			if want := fmt.Sprintf("%s=%d", k, i); string(v) != want {
				t.Errorf("iter %d: torn row %q = %q", iter, k, v)
				return false
			}
			return true
		})
		if err != nil {
			s.Close()
			t.Fatal(err)
		}
		if got := s.Rows(); got != count {
			t.Fatalf("iter %d: snapshot Rows()=%d but scan saw %d", iter, got, count)
		}
		s.Close()
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeParallelWritersDisjoint: concurrent Put/Delete across disjoint
// key ranges on the bare tree (no table shard locks), exercising the B-link
// split path and root growth under contention.
func TestBTreeParallelWritersDisjoint(t *testing.T) {
	view, _ := newView(t, 64<<10)
	pg, err := CreatePager(view, "blink")
	if err != nil {
		t.Fatal(err)
	}
	tree := NewBTree(pg)
	const (
		goroutines = 8
		keysPerG   = 300
	)
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keysPerG; i++ {
				key := []byte(fmt.Sprintf("g%d-%05d", w, i))
				if err := tree.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					errCh <- err
					return
				}
				if i%7 == 6 { // churn a recent key
					if _, err := tree.Delete([]byte(fmt.Sprintf("g%d-%05d", w, i-3))); err != nil {
						errCh <- err
						return
					}
					if err := tree.Put([]byte(fmt.Sprintf("g%d-%05d", w, i-3)), []byte("back")); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every key present, scan sorted, height grown past a single leaf.
	var keys []string
	if err := tree.Scan(func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(keys) != goroutines*keysPerG {
		t.Fatalf("scan saw %d keys, want %d", len(keys), goroutines*keysPerG)
	}
	if !sort.StringsAreSorted(keys) {
		t.Fatal("scan out of order")
	}
	for w := 0; w < goroutines; w++ {
		for i := 0; i < keysPerG; i++ {
			key := []byte(fmt.Sprintf("g%d-%05d", w, i))
			if _, ok, err := tree.Get(key); err != nil || !ok {
				t.Fatalf("key %s: ok=%v err=%v", key, ok, err)
			}
		}
	}
	h, err := tree.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("height = %d, want >= 2 (splits must have happened)", h)
	}
}
