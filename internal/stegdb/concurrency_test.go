package stegdb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"stegfs/internal/stegfs"
)

// TestStegDBParallelChurn: goroutines churn disjoint key ranges through one
// shared table; the table must survive races on the pager, free list, hash
// directory and row counter. Run under -race.
func TestStegDBParallelChurn(t *testing.T) {
	view, _ := newView(t, 64<<10)
	tab, err := CreateTable(view, "churn", true, 64)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 8
		keysPerG   = 40
		opsPerG    = 240
	)
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				key := []byte(fmt.Sprintf("w%d-k%04d", w, i%keysPerG))
				switch i % 4 {
				case 0, 1:
					if err := tab.Put(key, []byte(fmt.Sprintf("v%d-%d", w, i))); err != nil {
						errCh <- err
						return
					}
				case 2:
					if _, _, err := tab.Get(key); err != nil {
						errCh <- err
						return
					}
				case 3:
					if _, err := tab.Delete(key); err != nil {
						errCh <- err
						return
					}
				}
			}
			// Deterministic final state for verification.
			for i := 0; i < keysPerG; i++ {
				key := []byte(fmt.Sprintf("w%d-k%04d", w, i))
				if err := tab.Put(key, []byte(fmt.Sprintf("final-%d-%d", w, i))); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	rows, err := tab.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if rows != goroutines*keysPerG {
		t.Fatalf("rows = %d, want %d", rows, goroutines*keysPerG)
	}
	for w := 0; w < goroutines; w++ {
		for i := 0; i < keysPerG; i++ {
			key := []byte(fmt.Sprintf("w%d-k%04d", w, i))
			want := fmt.Sprintf("final-%d-%d", w, i)
			v, ok, err := tab.Get(key)
			if err != nil || !ok || string(v) != want {
				t.Fatalf("key %s = %q %v %v, want %q", key, v, ok, err, want)
			}
		}
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStegDBScanSnapshotIsolation: scans run concurrently with writers and
// must each observe a consistent point-in-time state — every stable key
// exactly once, in order, with a well-formed value bound to its key (no
// torn rows, no doubled or missing keys from in-flight splits).
func TestStegDBScanSnapshotIsolation(t *testing.T) {
	view, _ := newView(t, 64<<10)
	tab, err := CreateTable(view, "snap", true, 32)
	if err != nil {
		t.Fatal(err)
	}
	const nStable = 64
	for i := 0; i < nStable; i++ {
		key := fmt.Sprintf("s%04d", i)
		if err := tab.Put([]byte(key), []byte(key+":00000000")); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	errCh := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for ver := 1; ; ver++ {
				select {
				case <-stop:
					return
				default:
				}
				// Rewrite a stable key (fixed-width value keyed to its key)
				// and churn a volatile key to force splits and frees.
				key := fmt.Sprintf("s%04d", rng.Intn(nStable))
				if err := tab.Put([]byte(key), []byte(fmt.Sprintf("%s:%08d", key, ver))); err != nil {
					errCh <- err
					return
				}
				vk := []byte(fmt.Sprintf("vol%d-%02d", w, ver%40))
				if ver%2 == 0 {
					if err := tab.Put(vk, []byte("x")); err != nil {
						errCh <- err
						return
					}
				} else if _, err := tab.Delete(vk); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for scan := 0; scan < 25; scan++ {
		seen := make(map[string]bool, nStable)
		var order []string
		err := tab.Scan(func(k, v []byte) bool {
			ks := string(k)
			if !strings.HasPrefix(ks, "s") {
				return true
			}
			if seen[ks] {
				t.Errorf("scan %d: key %s seen twice", scan, ks)
			}
			seen[ks] = true
			order = append(order, ks)
			vs := string(v)
			if !strings.HasPrefix(vs, ks+":") || len(vs) != len(ks)+1+8 {
				t.Errorf("scan %d: torn row %s = %q", scan, ks, vs)
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != nStable {
			t.Fatalf("scan %d: saw %d stable keys, want %d", scan, len(seen), nStable)
		}
		if !sort.StringsAreSorted(order) {
			t.Fatalf("scan %d: keys out of order", scan)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStegDBSyncUnderLoad: Sync runs repeatedly while writers churn; after
// a final Sync the volume is remounted cold and every row must be there.
func TestStegDBSyncUnderLoad(t *testing.T) {
	view, store := newView(t, 64<<10)
	tab, err := CreateTable(view, "t", true, 32)
	if err != nil {
		t.Fatal(err)
	}
	const (
		goroutines = 4
		keysPerG   = 80
	)
	errCh := make(chan error, goroutines+1)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() { // syncer
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := tab.Sync(); err != nil {
				errCh <- err
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < keysPerG; i++ {
				key := []byte(fmt.Sprintf("w%d-%04d", w, i))
				if err := tab.Put(key, []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
					errCh <- err
					return
				}
				if i%5 == 4 { // churn: delete and re-put
					if _, err := tab.Delete(key); err != nil {
						errCh <- err
						return
					}
					if err := tab.Put(key, []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	writers.Wait()
	close(done)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := tab.Sync(); err != nil {
		t.Fatal(err)
	}

	// Cold remount: a fresh mount and view must see every row.
	fs2, err := stegfs.Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	view2 := fs2.NewHiddenView("db")
	if err := view2.Adopt("t"); err != nil {
		t.Fatal(err)
	}
	tab2, err := OpenTable(view2, "t")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := tab2.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if rows != goroutines*keysPerG {
		t.Fatalf("remounted rows = %d, want %d", rows, goroutines*keysPerG)
	}
	for w := 0; w < goroutines; w++ {
		for i := 0; i < keysPerG; i++ {
			key := []byte(fmt.Sprintf("w%d-%04d", w, i))
			want := fmt.Sprintf("val-%d-%d", w, i)
			v, ok, err := tab2.Get(key)
			if err != nil || !ok || string(v) != want {
				t.Fatalf("remount key %s = %q %v %v", key, v, ok, err)
			}
		}
	}
	if err := tab2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestStegDBSnapshotPinsState: a snapshot taken before a batch of writes
// keeps serving the old state after them.
func TestStegDBSnapshotPinsState(t *testing.T) {
	view, _ := newView(t, 64<<10)
	tab, err := CreateTable(view, "pin", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tab.PutUint64(uint64(i), []byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap := tab.Snapshot()
	defer snap.Close()

	for i := 0; i < 200; i++ {
		if err := tab.PutUint64(uint64(i), []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 200; i < 400; i++ { // splits after the snapshot
		if err := tab.PutUint64(uint64(i), []byte("extra")); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	err = snap.Scan(func(k, v []byte) bool {
		if want := fmt.Sprintf("old-%d", n); string(v) != want {
			t.Fatalf("snapshot row %d = %q, want %q", n, v, want)
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("snapshot saw %d rows, want 200", n)
	}
	if got := snap.Rows(); got != 200 {
		t.Fatalf("snapshot Rows() = %d, want 200", got)
	}
	// The live table sees the new state.
	v, ok, err := tab.GetUint64(7)
	if err != nil || !ok || string(v) != "new-7" {
		t.Fatalf("live read = %q %v %v", v, ok, err)
	}
}
