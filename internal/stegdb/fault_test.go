package stegdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"stegfs/internal/fsapi"
	"stegfs/internal/stegfs"
)

// errView wraps a HiddenView and fails exactly one armed call (the n-th of
// the armed kind), then disarms — modeling a transient device fault. The
// table's rollback paths must leave the B-tree and hash index consistent.
type errView struct {
	inner *stegfs.HiddenView
	mu    sync.Mutex
	kind  string // "read" | "write" | "resize"; "" = disarmed
	count int    // fail when it reaches 0
	fired bool
}

var errInjected = errors.New("stegdb_test: injected fault")

func (v *errView) arm(kind string, n int) {
	v.mu.Lock()
	v.kind, v.count, v.fired = kind, n, false
	v.mu.Unlock()
}

func (v *errView) didFire() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.fired
}

func (v *errView) trip(kind string) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.kind != kind {
		return nil
	}
	v.count--
	if v.count > 0 {
		return nil
	}
	v.kind = ""
	v.fired = true
	return errInjected
}

func (v *errView) Create(name string, data []byte) error { return v.inner.Create(name, data) }

func (v *errView) ReadAt(name string, p []byte, off int64) (int, error) {
	if err := v.trip("read"); err != nil {
		return 0, err
	}
	return v.inner.ReadAt(name, p, off)
}

func (v *errView) WriteAt(name string, p []byte, off int64) (int, error) {
	if err := v.trip("write"); err != nil {
		return 0, err
	}
	return v.inner.WriteAt(name, p, off)
}

func (v *errView) Resize(name string, newSize int64) error {
	if err := v.trip("resize"); err != nil {
		return err
	}
	return v.inner.Resize(name, newSize)
}

func (v *errView) Stat(name string) (fsapi.FileInfo, error) { return v.inner.Stat(name) }

func (v *errView) Sync() error { return v.inner.Sync() }

// faultTable builds a hash-indexed table behind an errView, seeded with
// nSeed rows mirrored in ref.
func faultTable(t *testing.T, nSeed int) (*Table, *errView, map[string]string) {
	t.Helper()
	view, _ := newView(t, 64<<10)
	ev := &errView{inner: view}
	tab, err := CreateTable(ev, "ft", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := make(map[string]string, nSeed)
	for i := 0; i < nSeed; i++ {
		k := fmt.Sprintf("fk%04d", i)
		v := fmt.Sprintf("seed-%d", i)
		if err := tab.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	if err := tab.Sync(); err != nil {
		t.Fatal(err)
	}
	return tab, ev, ref
}

// verifyAgainst asserts the table exactly matches ref through both access
// paths, the O(1) row counter, and Check's cross-validation.
func verifyAgainst(t *testing.T, tab *Table, ref map[string]string) {
	t.Helper()
	for k, want := range ref {
		hv, ok, err := tab.Get([]byte(k))
		if err != nil || !ok || string(hv) != want {
			t.Fatalf("hash path %s = %q %v %v, want %q", k, hv, ok, err, want)
		}
		bv, ok, err := tab.GetOrdered([]byte(k))
		if err != nil || !ok || string(bv) != want {
			t.Fatalf("tree path %s = %q %v %v, want %q", k, bv, ok, err, want)
		}
	}
	rows, err := tab.Rows()
	if err != nil {
		t.Fatal(err)
	}
	if rows != int64(len(ref)) {
		t.Fatalf("rows = %d, want %d", rows, len(ref))
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
}

// sweepReadFaults runs op repeatedly, injecting a read fault at call
// positions 1, 2, 3, ... until an unfaulted run completes — every read the
// operation performs gets to fail once. After a faulted run the table must
// equal ref (the op rolled back); after the clean run, apply mutates ref
// and the table must equal the new ref.
func sweepReadFaults(t *testing.T, tab *Table, ev *errView, ref map[string]string,
	op func(round int) error, apply func(round int)) {
	t.Helper()
	pg := tab.Pager()
	for k := 1; k <= 256; k++ {
		// Empty the page cache so the op's reads actually hit the view.
		if err := pg.InvalidatePageCache(); err != nil {
			t.Fatal(err)
		}
		ev.arm("read", k)
		err := op(k)
		fired := ev.didFire()
		ev.arm("", 0)
		if err != nil {
			if !fired {
				t.Fatalf("injection point %d: op failed without the fault firing: %v", k, err)
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("injection point %d: unexpected error chain: %v", k, err)
			}
			verifyAgainst(t, tab, ref)
			continue
		}
		if fired {
			t.Fatalf("injection point %d: fault fired but op succeeded", k)
		}
		// Clean run: the sweep covered every read the op performs.
		apply(k)
		verifyAgainst(t, tab, ref)
		return
	}
	t.Fatal("sweep did not terminate (op performs >256 reads?)")
}

// TestStegDBFaultPutReplace: a replace Put that fails anywhere (tree read,
// hash chain walk, rollback load) must leave the old row intact in BOTH
// structures.
func TestStegDBFaultPutReplace(t *testing.T) {
	tab, ev, ref := faultTable(t, 60)
	const key = "fk0031"
	sweepReadFaults(t, tab, ev, ref,
		func(round int) error { return tab.Put([]byte(key), []byte(fmt.Sprintf("rep-%d", round))) },
		func(round int) { ref[key] = fmt.Sprintf("rep-%d", round) })
}

// TestStegDBFaultPutFresh: a fresh-key Put that fails after the tree insert
// must roll the insert back — the key absent everywhere, row count flat.
func TestStegDBFaultPutFresh(t *testing.T) {
	tab, ev, ref := faultTable(t, 60)
	sweepReadFaults(t, tab, ev, ref,
		func(round int) error {
			return tab.Put([]byte(fmt.Sprintf("fresh-%04d", round)), []byte("newrow"))
		},
		func(round int) { ref[fmt.Sprintf("fresh-%04d", round)] = "newrow" })
}

// TestStegDBFaultDelete: a Delete whose hash-side fails must restore the
// tree row and report (false, err) — the delete did not happen.
func TestStegDBFaultDelete(t *testing.T) {
	tab, ev, ref := faultTable(t, 60)
	const key = "fk0017"
	sweepReadFaults(t, tab, ev, ref,
		func(round int) error {
			found, err := tab.Delete([]byte(key))
			if err != nil {
				if found {
					t.Fatalf("faulted delete reported found=true")
				}
				return err
			}
			if !found {
				t.Fatalf("clean delete of %s reported not found", key)
			}
			return nil
		},
		func(round int) { delete(ref, key) })
}

// TestStegDBFaultSyncRetry: a write fault during Sync leaves dirty pages
// dirty; a retried Sync lands them and a cold remount sees every row.
func TestStegDBFaultSyncRetry(t *testing.T) {
	tab, ev, ref := faultTable(t, 40)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("post%04d", i)
		if err := tab.Put([]byte(k), []byte("after-sync")); err != nil {
			t.Fatal(err)
		}
		ref[k] = "after-sync"
	}
	ev.arm("write", 1)
	if err := tab.Sync(); !errors.Is(err, errInjected) {
		t.Fatalf("Sync with write fault = %v, want injected error", err)
	}
	ev.arm("", 0)
	if err := tab.Sync(); err != nil {
		t.Fatalf("retried Sync: %v", err)
	}
	if err := tab.Pager().InvalidatePageCache(); err != nil {
		t.Fatal(err)
	}
	verifyAgainst(t, tab, ref)
}
