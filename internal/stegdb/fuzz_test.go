package stegdb

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeBucket drives the bucket-chain codec's corruption paths: an
// adversarially mangled page must never panic the decoder, and anything it
// accepts must survive an encode/decode round trip.
func FuzzDecodeBucket(f *testing.F) {
	valid := make([]byte, PageSize)
	if err := encodeBucket(&bucketPage{
		next:    7,
		entries: []kv{{key: []byte("key-a"), val: []byte("val-a")}, {key: []byte("k"), val: nil}},
	}, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:bucketHdr])  // header only, zero entries claimed? (count=2, truncated)
	f.Add(valid[:PageSize/2]) // truncated mid-entries
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	lying := make([]byte, PageSize)
	binary.BigEndian.PutUint16(lying[8:], 0xffff) // claims 65535 entries
	f.Add(lying)
	huge := make([]byte, bucketHdr+4)
	binary.BigEndian.PutUint16(huge[8:], 1)
	binary.BigEndian.PutUint16(huge[bucketHdr:], 0xffff) // klen past the page
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		bp, err := decodeBucket(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if bp.size() > len(data) {
			t.Fatalf("accepted bucket claims %d bytes from %d input", bp.size(), len(data))
		}
		if bp.size() > PageSize {
			return // can't re-encode into one page
		}
		buf := make([]byte, PageSize)
		if err := encodeBucket(bp, buf); err != nil {
			t.Fatalf("re-encode of accepted bucket failed: %v", err)
		}
		bp2, err := decodeBucket(buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if bp2.next != bp.next || len(bp2.entries) != len(bp.entries) {
			t.Fatalf("round trip mismatch: %d/%d entries", len(bp2.entries), len(bp.entries))
		}
		for i := range bp.entries {
			if !bytes.Equal(bp.entries[i].key, bp2.entries[i].key) ||
				!bytes.Equal(bp.entries[i].val, bp2.entries[i].val) {
				t.Fatalf("entry %d round trip mismatch", i)
			}
		}
	})
}
