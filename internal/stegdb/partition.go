package stegdb

import (
	"errors"
	"fmt"
	"sync"
)

// PartitionedTable shards one logical table by key hash across N hidden
// files, each a complete Table (own Pager, B-tree, optional hash index,
// journal). Partitioning multiplies the write paths the same way A6's
// distinct-object scaling multiplied file writes: Put/Delete on different
// partitions share no pager, no tree, no commit lock and no journal, so a
// write-heavy workload scales with the partition count instead of
// funneling into one file's allocator and commit pipeline.
//
// Composition rules:
//   - Put/Delete route by partFor(key) — a mixing hash deliberately
//     distinct from the per-table shard hash, so shard striping stays
//     uniform within each partition.
//   - Rows/Scan/Range/Check/Snapshot compose across partitions. A
//     cross-partition snapshot pins one epoch per partition atomically:
//     Snapshot briefly excludes writers via snapGate, so no operation is
//     half-landed while the per-partition epochs are pinned, and the
//     merged view is a true point in time.
//   - Sync is a cross-partition group commit: concurrent committers batch
//     into one pipeline run that journals every partition, issues ONE
//     shared pre-barrier, homes every partition, and issues ONE shared
//     post-barrier — two volume barriers per batch regardless of
//     partition count or caller count.
//
// Layout: partition i of table "t" lives in hidden file "t.p<i>" (plus its
// ".wal" journal sibling); each partition's meta page records the
// partition count and its own index, so fsck and Open can discover and
// validate the set from any one member.
type PartitionedTable struct {
	view  View
	base  string
	parts []*Table

	// snapGate makes cross-partition snapshots atomic: Put/Delete hold it
	// shared for the operation's duration, Snapshot holds it exclusive
	// while pinning every partition's epoch. Outermost lock of the stegdb
	// hierarchy.
	// lockcheck:level 5 stegdb/snapGate
	snapGate sync.RWMutex

	// gc batches concurrent Sync callers into shared cross-partition
	// commits.
	gc groupCommit
}

// maxPartitions bounds the partition count (also the fsck discovery bound).
const maxPartitions = 64

// partName names partition i of a partitioned table.
func partName(base string, i int) string { return fmt.Sprintf("%s.p%d", base, i) }

// CreatePartitionedTable creates a table sharded across nParts hidden
// files. withHash/nBuckets apply to every partition.
func CreatePartitionedTable(view View, name string, nParts int, withHash bool, nBuckets int) (*PartitionedTable, error) {
	if nParts < 1 || nParts > maxPartitions {
		return nil, fmt.Errorf("stegdb: partition count %d out of range [1,%d]", nParts, maxPartitions)
	}
	pt := &PartitionedTable{view: view, base: name, parts: make([]*Table, nParts)}
	for i := range pt.parts {
		t, err := CreateTable(view, partName(name, i), withHash, nBuckets)
		if err != nil {
			return nil, err
		}
		t.pg.setMetaField(metaPartCount, int64(nParts))
		t.pg.setMetaField(metaPartIndex, int64(i))
		if err := t.pg.flushMetaNow(); err != nil {
			return nil, err
		}
		pt.parts[i] = t
	}
	return pt, nil
}

// OpenPartitionedTable opens an existing partitioned table; every
// partition file (name.p0 .. name.p<N-1>) must already be visible in the
// view. The partition count is read from partition 0's meta page and each
// member's meta is validated against its position.
func OpenPartitionedTable(view View, name string) (*PartitionedTable, error) {
	t0, err := OpenTable(view, partName(name, 0))
	if err != nil {
		return nil, fmt.Errorf("stegdb: open partition 0: %w", err)
	}
	n := t0.pg.metaField(metaPartCount)
	if n < 1 || n > maxPartitions {
		return nil, fmt.Errorf("stegdb: partition 0 declares %d partitions (max %d)", n, maxPartitions)
	}
	pt := &PartitionedTable{view: view, base: name, parts: make([]*Table, n)}
	pt.parts[0] = t0
	for i := 1; i < int(n); i++ {
		t, err := OpenTable(view, partName(name, i))
		if err != nil {
			return nil, fmt.Errorf("stegdb: open partition %d: %w", i, err)
		}
		pt.parts[i] = t
	}
	for i, t := range pt.parts {
		if got := t.pg.metaField(metaPartCount); got != n {
			return nil, fmt.Errorf("stegdb: partition %d declares %d partitions, expected %d", i, got, n)
		}
		if got := t.pg.metaField(metaPartIndex); got != int64(i) {
			return nil, fmt.Errorf("stegdb: file %q declares partition index %d, expected %d", partName(name, i), got, i)
		}
	}
	return pt, nil
}

// Partitions returns the partition count.
func (pt *PartitionedTable) Partitions() int { return len(pt.parts) }

// Files returns the hidden-file names the table occupies, journal siblings
// included — the set fsck must find and verify.
func (pt *PartitionedTable) Files() []string {
	out := make([]string, 0, 2*len(pt.parts))
	for i := range pt.parts {
		out = append(out, partName(pt.base, i), partName(pt.base, i)+walSuffix)
	}
	return out
}

// partFor routes a key to its partition. The hash mixes harder than the
// per-table shard hash (plain FNV-1a) on purpose: the two must not
// correlate, or one partition's keys would pile onto a few shard locks.
func (pt *PartitionedTable) partFor(key []byte) int {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % uint64(len(pt.parts)))
}

// Put inserts or replaces a row in the owning partition.
func (pt *PartitionedTable) Put(key, val []byte) error {
	pt.snapGate.RLock()
	defer pt.snapGate.RUnlock()
	return pt.parts[pt.partFor(key)].Put(key, val)
}

// Delete removes a row from the owning partition.
func (pt *PartitionedTable) Delete(key []byte) (bool, error) {
	pt.snapGate.RLock()
	defer pt.snapGate.RUnlock()
	return pt.parts[pt.partFor(key)].Delete(key)
}

// Get returns the row stored under key (hash-index path when present).
func (pt *PartitionedTable) Get(key []byte) ([]byte, bool, error) {
	return pt.parts[pt.partFor(key)].Get(key)
}

// GetOrdered always uses the owning partition's B-tree.
func (pt *PartitionedTable) GetOrdered(key []byte) ([]byte, bool, error) {
	return pt.parts[pt.partFor(key)].GetOrdered(key)
}

// Rows sums the per-partition row counters — O(partitions).
func (pt *PartitionedTable) Rows() (int64, error) {
	var total int64
	for _, t := range pt.parts {
		total += t.pg.Rows()
	}
	return total, nil
}

// Pages sums the per-partition pager footprints.
func (pt *PartitionedTable) Pages() int64 {
	var total int64
	for _, t := range pt.parts {
		total += t.pg.NumPages()
	}
	return total
}

// SetPageCacheSize sets every partition pager's page cache capacity.
func (pt *PartitionedTable) SetPageCacheSize(frames int) {
	for _, t := range pt.parts {
		t.pg.SetPageCacheSize(frames)
	}
}

// InvalidatePageCache flushes and drops every partition pager's page cache
// (a maintenance/benchmark reset; see Pager.InvalidatePageCache).
func (pt *PartitionedTable) InvalidatePageCache() error {
	for _, t := range pt.parts {
		if err := t.pg.InvalidatePageCache(); err != nil {
			return err
		}
	}
	return nil
}

// PartitionedSnapshot is a point-in-time view across every partition: one
// pinned TreeSnapshot per partition, all taken with writers excluded, so
// the merged state is a single instant of the logical table.
type PartitionedSnapshot struct {
	pt    *PartitionedTable
	snaps []*TreeSnapshot
}

// Snapshot pins one epoch per partition atomically (writers excluded for
// the instant of the pinning, not for the life of the snapshot).
func (pt *PartitionedTable) Snapshot() *PartitionedSnapshot {
	pt.snapGate.Lock()
	snaps := make([]*TreeSnapshot, len(pt.parts))
	for i, t := range pt.parts {
		snaps[i] = t.Snapshot()
	}
	pt.snapGate.Unlock()
	return &PartitionedSnapshot{pt: pt, snaps: snaps}
}

// Close releases every partition's pinned snapshot.
func (s *PartitionedSnapshot) Close() {
	for _, ts := range s.snaps {
		ts.Close()
	}
}

// Rows sums the per-partition row counters as of the snapshot.
func (s *PartitionedSnapshot) Rows() int64 {
	var total int64
	for _, ts := range s.snaps {
		total += ts.Rows()
	}
	return total
}

// Get returns the value stored under key as of the snapshot.
func (s *PartitionedSnapshot) Get(key []byte) ([]byte, bool, error) {
	return s.snaps[s.pt.partFor(key)].Get(key)
}

// Scan visits every row of every partition in global key order.
func (s *PartitionedSnapshot) Scan(fn func(key, val []byte) bool) error {
	return s.Range(nil, nil, fn)
}

// Range visits rows with lo <= key < hi in global key order: a k-way merge
// of the per-partition leaf chains (linear min over <= maxPartitions
// iterators per step — partitions are few, keys are many).
func (s *PartitionedSnapshot) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	iters := make([]*treeIter, 0, len(s.snaps))
	for _, ts := range s.snaps {
		it, err := ts.iter(lo, hi)
		if err != nil {
			return err
		}
		if !it.done() {
			iters = append(iters, it)
		}
	}
	for len(iters) > 0 {
		min := 0
		for i := 1; i < len(iters); i++ {
			if string(iters[i].key()) < string(iters[min].key()) {
				min = i
			}
		}
		if !fn(iters[min].key(), iters[min].val()) {
			return nil
		}
		if err := iters[min].next(); err != nil {
			return err
		}
		if iters[min].done() {
			iters[min] = iters[len(iters)-1]
			iters = iters[:len(iters)-1]
		}
	}
	return nil
}

// Scan visits every row in global key order from a fresh snapshot.
func (pt *PartitionedTable) Scan(fn func(key, val []byte) bool) error {
	s := pt.Snapshot()
	defer s.Close()
	return s.Scan(fn)
}

// Range visits rows with lo <= key < hi in global key order from a fresh
// snapshot.
func (pt *PartitionedTable) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	s := pt.Snapshot()
	defer s.Close()
	return s.Range(lo, hi, fn)
}

// Check verifies every partition's internal consistency, that every key
// lives in the partition the routing hash assigns it, and that each
// member's meta agrees on the partition layout.
func (pt *PartitionedTable) Check() error {
	n := int64(len(pt.parts))
	for i, t := range pt.parts {
		if got := t.pg.metaField(metaPartCount); got != n {
			return fmt.Errorf("stegdb: partition %d declares %d partitions, expected %d", i, got, n)
		}
		if got := t.pg.metaField(metaPartIndex); got != int64(i) {
			return fmt.Errorf("stegdb: partition %d declares index %d", i, got)
		}
		if err := t.Check(); err != nil {
			return fmt.Errorf("stegdb: partition %d: %w", i, err)
		}
		var misrouted int
		if err := t.tree.Scan(func(k, _ []byte) bool {
			if pt.partFor(k) != i {
				misrouted++
			}
			return true
		}); err != nil {
			return err
		}
		if misrouted > 0 {
			return fmt.Errorf("stegdb: partition %d holds %d misrouted keys", i, misrouted)
		}
	}
	return nil
}

// Sync commits every partition as one batch. Concurrent callers are group
// committed: each batch journals all partitions, issues one shared
// journal barrier, homes all partitions, and issues one shared home
// barrier — the per-caller cost the tentpole exists to amortize.
func (pt *PartitionedTable) Sync() error { return pt.gc.do(pt.commitAll) }

// Close is the shutdown path: one final cross-partition commit.
func (pt *PartitionedTable) Close() error { return pt.Sync() }

// commitAll runs one cross-partition commit. Commit locks are taken in
// partition order (the commitMu class is `multi` for exactly this walk),
// so concurrent commitAll runs cannot deadlock.
func (pt *PartitionedTable) commitAll() error {
	for _, t := range pt.parts {
		t.pg.commitMu.Lock()
	}
	defer func() {
		for _, t := range pt.parts {
			t.pg.commitMu.Unlock()
		}
	}()
	states := make([]*commitState, len(pt.parts))
	release := func() {
		for i, st := range states {
			if st != nil {
				pt.parts[i].pg.releaseCommit(st)
			}
		}
	}
	work := false
	for i, t := range pt.parts {
		st, err := t.pg.commitPrepare()
		states[i] = st
		if err != nil {
			release()
			return err
		}
		if !st.empty() {
			work = true
		}
	}
	if !work {
		release()
		for _, t := range pt.parts {
			t.pg.bumpEpoch()
		}
		return pt.view.Sync()
	}
	for i, t := range pt.parts {
		if states[i].empty() {
			continue
		}
		if err := t.pg.writeWAL(states[i]); err != nil {
			release()
			return err
		}
	}
	if err := pt.view.Sync(); err != nil { // one barrier: all journals durable
		release()
		return err
	}
	var errs []error
	for i, t := range pt.parts {
		if states[i].empty() {
			continue
		}
		if err := t.pg.commitHome(states[i]); err != nil {
			errs = append(errs, fmt.Errorf("stegdb: partition %d: %w", i, err))
		}
	}
	release()
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	for _, t := range pt.parts {
		t.pg.bumpEpoch()
	}
	return pt.view.Sync() // one barrier: all homes durable
}

// CheckAny opens and checks the named table, plain or partitioned,
// adopting each constituent hidden file into the view via adopt (e.g.
// (*stegfs.HiddenView).Adopt, which derives per-file keys from the view's
// deterministic key schedule). It returns the names of every hidden file
// the table occupies — journal siblings included when present — so callers
// like stegfsck can verify each one's block-level integrity too.
func CheckAny(view View, adopt func(name string) error, name string) ([]string, error) {
	if err := adopt(name); err == nil {
		files := []string{name}
		if adopt(name+walSuffix) == nil {
			files = append(files, name+walSuffix)
		}
		t, err := OpenTable(view, name)
		if err != nil {
			return files, err
		}
		return files, t.Check()
	}
	if err := adopt(partName(name, 0)); err != nil {
		return nil, fmt.Errorf("stegdb: table %q not found as plain file or partition 0: %w", name, err)
	}
	files := []string{partName(name, 0)}
	if adopt(partName(name, 0)+walSuffix) == nil {
		files = append(files, partName(name, 0)+walSuffix)
	}
	pg0, err := OpenPager(view, partName(name, 0))
	if err != nil {
		return files, err
	}
	n := pg0.metaField(metaPartCount)
	if n < 1 || n > maxPartitions {
		return files, fmt.Errorf("stegdb: partition 0 of %q declares %d partitions (max %d)", name, n, maxPartitions)
	}
	for i := 1; i < int(n); i++ {
		pn := partName(name, i)
		if err := adopt(pn); err != nil {
			return files, fmt.Errorf("stegdb: partition %d of %q missing: %w", i, name, err)
		}
		files = append(files, pn)
		if adopt(pn+walSuffix) == nil {
			files = append(files, pn+walSuffix)
		}
	}
	pt, err := OpenPartitionedTable(view, name)
	if err != nil {
		return files, err
	}
	return files, pt.Check()
}
