// Package stegdb implements the paper's stated future work (§6): "we are
// investigating how database tables, hash indices and B-trees can be hidden
// effectively" — database structures stored entirely inside StegFS hidden
// files, so their very existence is deniable.
//
// The package provides a page store (Pager) over a hidden file, a B-tree
// and a bucket-chain hash index over the pager, and a Table combining them.
// Everything an adversary can observe is the same encrypted, unlisted
// blocks as any other hidden file; even the fact that a database exists is
// hidden behind the (name, key) pair.
package stegdb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"stegfs/internal/stegfs"
)

// PageSize is the fixed database page size. It is independent of the volume
// block size; the pager maps pages onto hidden-file offsets.
const PageSize = 4096

// pagerMagic marks page 0 of a database file.
const pagerMagic = "SGDB0001"

// metaLayout (page 0): magic(8) numPages(8) freeHead(8) btreeRoot(8)
// hashRoot(8) rows(8).
const (
	metaNumPages  = 8
	metaFreeHead  = 16
	metaBTreeRoot = 24
	metaHashRoot  = 32
	metaRows      = 40
)

// nilPage is the null page id (page 0 is the meta page, never allocatable).
const nilPage int64 = 0

// Pager provides page-granular storage inside one hidden file, with a
// free-list for recycling and amortized-doubling growth.
type Pager struct {
	view *stegfs.HiddenView
	name string
	meta [PageSize]byte
}

// CreatePager creates the named hidden file and initializes an empty
// database in it. The file starts with capacity for a handful of pages and
// doubles as needed.
func CreatePager(view *stegfs.HiddenView, name string) (*Pager, error) {
	if err := view.Create(name, make([]byte, 8*PageSize)); err != nil {
		return nil, err
	}
	p := &Pager{view: view, name: name}
	copy(p.meta[:], pagerMagic)
	p.setMeta(metaNumPages, 1) // the meta page itself
	if err := p.flushMeta(); err != nil {
		return nil, err
	}
	return p, nil
}

// OpenPager opens an existing database file.
func OpenPager(view *stegfs.HiddenView, name string) (*Pager, error) {
	p := &Pager{view: view, name: name}
	if _, err := view.ReadAt(name, p.meta[:], 0); err != nil {
		return nil, fmt.Errorf("stegdb: read meta page: %w", err)
	}
	if string(p.meta[:8]) != pagerMagic {
		return nil, errors.New("stegdb: not a stegdb file (bad magic)")
	}
	return p, nil
}

func (p *Pager) getMeta(off int) int64 { return int64(binary.BigEndian.Uint64(p.meta[off:])) }

func (p *Pager) setMeta(off int, v int64) { binary.BigEndian.PutUint64(p.meta[off:], uint64(v)) }

// flushMeta persists page 0.
func (p *Pager) flushMeta() error {
	_, err := p.view.WriteAt(p.name, p.meta[:], 0)
	return err
}

// NumPages returns the number of pages in use (including the meta page).
func (p *Pager) NumPages() int64 { return p.getMeta(metaNumPages) }

// ReadPage reads page id into buf (len PageSize).
func (p *Pager) ReadPage(id int64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("stegdb: page buffer %d != %d", len(buf), PageSize)
	}
	if id <= nilPage || id >= p.NumPages() {
		return fmt.Errorf("stegdb: page %d out of range [1,%d)", id, p.NumPages())
	}
	_, err := p.view.ReadAt(p.name, buf, id*PageSize)
	return err
}

// WritePage writes buf (len PageSize) to page id.
func (p *Pager) WritePage(id int64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("stegdb: page buffer %d != %d", len(buf), PageSize)
	}
	if id <= nilPage || id >= p.NumPages() {
		return fmt.Errorf("stegdb: page %d out of range [1,%d)", id, p.NumPages())
	}
	_, err := p.view.WriteAt(p.name, buf, id*PageSize)
	return err
}

// AllocPage returns a zeroed page, reusing the free list when possible.
func (p *Pager) AllocPage() (int64, error) {
	if head := p.getMeta(metaFreeHead); head != nilPage {
		buf := make([]byte, PageSize)
		if err := p.ReadPage(head, buf); err != nil {
			return 0, err
		}
		next := int64(binary.BigEndian.Uint64(buf))
		p.setMeta(metaFreeHead, next)
		if err := p.flushMeta(); err != nil {
			return 0, err
		}
		zero := make([]byte, PageSize)
		if err := p.WritePage(head, zero); err != nil {
			return 0, err
		}
		return head, nil
	}
	id := p.NumPages()
	// Grow the backing hidden file when the next page would not fit.
	fi, err := p.view.Stat(p.name)
	if err != nil {
		return 0, err
	}
	if (id+1)*PageSize > fi.Size {
		newSize := fi.Size * 2
		if newSize < (id+1)*PageSize {
			newSize = (id + 1) * PageSize
		}
		if err := p.view.Resize(p.name, newSize); err != nil {
			return 0, err
		}
	}
	p.setMeta(metaNumPages, id+1)
	if err := p.flushMeta(); err != nil {
		return 0, err
	}
	return id, nil
}

// Sync persists the meta page and then syncs the underlying volume, flushing
// any block cache the volume is mounted through. Databases that ride a
// cached StegFS volume call this at transaction boundaries.
func (p *Pager) Sync() error {
	if err := p.flushMeta(); err != nil {
		return err
	}
	return p.view.Sync()
}

// Close is the database shutdown path: meta page out, volume synced.
func (p *Pager) Close() error { return p.Sync() }

// FreePage returns a page to the free list.
func (p *Pager) FreePage(id int64) error {
	if id <= nilPage || id >= p.NumPages() {
		return fmt.Errorf("stegdb: freeing page %d out of range", id)
	}
	buf := make([]byte, PageSize)
	binary.BigEndian.PutUint64(buf, uint64(p.getMeta(metaFreeHead)))
	if err := p.WritePage(id, buf); err != nil {
		return err
	}
	p.setMeta(metaFreeHead, id)
	return p.flushMeta()
}
