// Package stegdb implements the paper's stated future work (§6): "we are
// investigating how database tables, hash indices and B-trees can be hidden
// effectively" — database structures stored entirely inside StegFS hidden
// files, so their very existence is deniable.
//
// The package provides a page store (Pager) over a hidden file, a B-tree
// and a bucket-chain hash index over the pager, and a Table combining them.
// Everything an adversary can observe is the same encrypted, unlisted
// blocks as any other hidden file; even the fact that a database exists is
// hidden behind the (name, key) pair.
//
// Concurrency: the pager is safe for concurrent use. Pages live in a small
// no-steal write-back cache with per-page latches (shared for reads,
// exclusive for writes), the meta page has its own mutex, and
// AllocPage/FreePage are atomic against concurrent allocators. Structural
// writers run in parallel over the B-link tree (btree.go); readers that
// must not block behind writers take copy-on-write snapshots
// (BeginSnapshot) pinned at an epoch; see snapshot.go. Durability point:
// WritePage is write-back — dirty pages reach the hidden file only at
// Sync/Close, which runs a group commit through a physical redo journal
// (commit.go): journal + header, barrier, home writes, barrier. Crash
// recovery replays a CRC-valid journal at OpenPager, so the on-device
// state is always exactly some committed epoch (old-or-new, never a mix).
// Lock order inside the package, outermost first: PartitionedTable
// snapGate → Table key shards → Pager commit lock → tree latches →
// HashIndex stripes → HashIndex.dirMu → BTree rootMu → Pager.allocMu →
// page latches → Pager.snapMu → Pager.metaMu → the pageCache mutex. This
// order is not just prose: each lock carries a lockcheck:level annotation
// in the stegdb domain and cmd/lockcheck enforces it in CI — see
// docs/ANALYSIS.md for the grammar and the level map, and docs/STEGDB.md
// for the protocols that rely on it.
package stegdb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"sync"

	"stegfs/internal/fsapi"
)

// PageSize is the fixed database page size. It is independent of the volume
// block size; the pager maps pages onto hidden-file offsets.
const PageSize = 4096

// pagerMagic marks page 0 of a database file.
const pagerMagic = "SGDB0001"

// metaLayout (page 0): magic(8) numPages(8) freeHead(8) btreeRoot(8)
// hashRoot(8) rows(8) commitEpoch(8) partCount(8) partIndex(8).
// commitEpoch is stamped into the journaled meta image at each commit;
// partCount/partIndex are zero for plain tables and identify the shard for
// partitioned ones (partition.go).
const (
	metaNumPages    = 8
	metaFreeHead    = 16
	metaBTreeRoot   = 24
	metaHashRoot    = 32
	metaRows        = 40
	metaCommitEpoch = 48
	metaPartCount   = 56
	metaPartIndex   = 64
)

// nilPage is the null page id (page 0 is the meta page, never allocatable).
const nilPage int64 = 0

// defaultPageCacheSize is the default number of page frames the in-pager
// cache holds (4 KB each). Hot directory/root pages are served from here
// without re-reading through the hidden file.
const defaultPageCacheSize = 1024

// View is the slice of stegfs.HiddenView the pager needs. Production code
// passes a *stegfs.HiddenView; tests substitute error-injecting wrappers to
// exercise partial-failure paths.
type View interface {
	// lockcheck:io
	Create(name string, data []byte) error
	// lockcheck:io
	ReadAt(name string, p []byte, off int64) (int, error)
	// lockcheck:io
	WriteAt(name string, p []byte, off int64) (int, error)
	// lockcheck:io
	Resize(name string, newSize int64) error
	// lockcheck:io
	Stat(name string) (fsapi.FileInfo, error)
	// lockcheck:io
	Sync() error
}

// Pager provides page-granular storage inside one hidden file, with a
// free-list for recycling, amortized-doubling growth, and a physical redo
// journal (a sibling hidden file, name + ".wal") making every Sync an
// atomic commit.
type Pager struct {
	view View
	name string

	// walName is the sibling journal file; walOK records whether it exists
	// and is writable. When it does not (a database adopted without its
	// journal), Sync degrades to the legacy flush path, which is correct
	// for clean shutdowns but not torn-crash-atomic.
	walName string
	walOK   bool

	// commitMu serializes the commit pipeline of this pager (journal write
	// through home writes). It is held across hidden-file I/O by design and
	// is multi: a partitioned table's group commit holds the commit locks
	// of all its partitions at once, always in partition order.
	// lockcheck:level 15 stegdb/commitMu multi
	commitMu sync.Mutex

	// gc batches concurrent Sync callers into shared commits.
	gc groupCommit

	// metaMu guards the meta page buffer and its dirty flag. It is the
	// innermost leveled mutex of the package hierarchy bar the page-cache
	// mutex; flushMetaLocked deliberately writes the hidden file while
	// holding it (the meta page must not change mid-write), so it is not
	// noio.
	// lockcheck:level 70 stegdb/metaMu
	metaMu sync.Mutex
	// lockcheck:guardedby metaMu
	meta [PageSize]byte
	// lockcheck:guardedby metaMu
	metaDirty bool
	// lockcheck:guardedby metaMu
	metaGen uint64 // bumped on every setMeta; write-wins on commit

	// allocMu serializes AllocPage/FreePage so free-list updates, file
	// growth and the numPages counter stay atomic under concurrency. It
	// sits above the latches/snapMu/metaMu it takes, and is not noio:
	// AllocPage stats and grows the hidden file under it by design.
	// lockcheck:level 40 stegdb/allocMu
	allocMu sync.Mutex

	cache *pageCache

	// snapMu guards the snapshot machinery: the epoch counter, the set of
	// active snapshots, per-page last-write epochs and saved page versions.
	// lockcheck:level 60 stegdb/snapMu
	snapMu sync.Mutex
	// lockcheck:guardedby snapMu
	epoch int64
	// lockcheck:guardedby snapMu
	nextSnapID int64
	// lockcheck:guardedby snapMu
	snaps map[int64]int64 // snapshot id -> pinned epoch
	// lockcheck:guardedby snapMu
	maxSnapEpoch int64 // max over snaps (0 when none)
	// lockcheck:guardedby snapMu
	liveEpoch map[int64]int64 // page id -> epoch of its last write
	// lockcheck:guardedby snapMu
	versions map[int64][]pageVersion
}

func newPager(view View, name string) *Pager {
	return &Pager{
		view:      view,
		name:      name,
		walName:   name + walSuffix,
		cache:     newPageCache(defaultPageCacheSize),
		epoch:     1,
		snaps:     make(map[int64]int64),
		liveEpoch: make(map[int64]int64),
		versions:  make(map[int64][]pageVersion),
	}
}

// CreatePager creates the named hidden file (plus its journal sibling) and
// initializes an empty database in it. The file starts with capacity for a
// handful of pages and doubles as needed.
func CreatePager(view View, name string) (*Pager, error) {
	if err := view.Create(name, make([]byte, 8*PageSize)); err != nil {
		return nil, err
	}
	p := newPager(view, name)
	// An all-zero journal header has no magic, so it never replays.
	if err := view.Create(p.walName, make([]byte, PageSize)); err != nil {
		return nil, fmt.Errorf("stegdb: create journal: %w", err)
	}
	p.walOK = true
	// lockcheck:ignore the pager has not been published yet; CreatePager has it to itself
	copy(p.meta[:], pagerMagic)
	// lockcheck:ignore the pager has not been published yet; CreatePager has it to itself
	p.setMeta(metaNumPages, 1) // the meta page itself
	if err := p.flushMetaNow(); err != nil {
		return nil, err
	}
	return p, nil
}

// OpenPager opens an existing database file, first replaying the sibling
// journal if it holds a complete commit (crash recovery). A database
// adopted without its journal file still opens — every commit lands fully
// in the home file before the journal is needed again — but runs with the
// legacy non-atomic Sync until recreated.
func OpenPager(view View, name string) (*Pager, error) {
	p := newPager(view, name)
	if err := p.recoverWAL(); err != nil {
		return nil, err
	}
	// lockcheck:ignore the pager has not been published yet; OpenPager has it to itself
	if _, err := view.ReadAt(name, p.meta[:], 0); err != nil {
		return nil, fmt.Errorf("stegdb: read meta page: %w", err)
	}
	// lockcheck:ignore the pager has not been published yet; OpenPager has it to itself
	if string(p.meta[:8]) != pagerMagic {
		return nil, errors.New("stegdb: not a stegdb file (bad magic)")
	}
	return p, nil
}

// getMeta/setMeta access the meta buffer; callers hold metaMu (or have the
// pager to themselves, as in CreatePager/OpenPager, which carry audited
// lockcheck:ignore annotations for exactly that reason).
//
// lockcheck:holds stegdb/metaMu
func (p *Pager) getMeta(off int) int64 { return int64(binary.BigEndian.Uint64(p.meta[off:])) }

// lockcheck:holds stegdb/metaMu
func (p *Pager) setMeta(off int, v int64) {
	binary.BigEndian.PutUint64(p.meta[off:], uint64(v))
	p.metaDirty = true
	p.metaGen++
}

// metaField returns one meta page field under the meta mutex.
func (p *Pager) metaField(off int) int64 {
	p.metaMu.Lock()
	defer p.metaMu.Unlock()
	return p.getMeta(off)
}

// setMetaField updates one meta page field. The change is write-back: it
// reaches the device at the next Sync/FlushMeta.
func (p *Pager) setMetaField(off int, v int64) {
	p.metaMu.Lock()
	p.setMeta(off, v)
	p.metaMu.Unlock()
}

// bumpRows adjusts the persistent row counter (write-back, like any other
// meta field).
func (p *Pager) bumpRows(delta int64) {
	p.metaMu.Lock()
	p.setMeta(metaRows, p.getMeta(metaRows)+delta)
	p.metaMu.Unlock()
}

// flushMetaLocked persists page 0; the caller holds metaMu.
//
// lockcheck:holds stegdb/metaMu
func (p *Pager) flushMetaLocked() error {
	if _, err := p.view.WriteAt(p.name, p.meta[:], 0); err != nil {
		return err
	}
	p.metaDirty = false
	return nil
}

// flushMetaNow persists page 0 immediately.
func (p *Pager) flushMetaNow() error {
	p.metaMu.Lock()
	defer p.metaMu.Unlock()
	return p.flushMetaLocked()
}

// NumPages returns the number of pages in use (including the meta page).
func (p *Pager) NumPages() int64 { return p.metaField(metaNumPages) }

// Rows returns the persistent row counter maintained by Table.
func (p *Pager) Rows() int64 { return p.metaField(metaRows) }

// SetPageCacheSize adjusts the page cache capacity (frames of PageSize
// bytes). Shrinking takes effect as later pins evict clean unpinned
// frames; dirty frames stay cached until the next commit (no-steal).
func (p *Pager) SetPageCacheSize(n int) { p.cache.setCap(n) }

// InvalidatePageCache flushes every dirty page and drops all unpinned
// frames, so subsequent reads go back through the hidden file. Benchmarks
// use it to restore a cold-cache state between measurement windows. The
// flush bypasses the commit journal, so it is a maintenance path: call it
// only at quiescent points, never as a durability barrier.
func (p *Pager) InvalidatePageCache() error {
	if err := p.FlushPages(); err != nil {
		return err
	}
	p.cache.dropClean()
	return nil
}

// ReadPage reads page id into buf (len PageSize).
func (p *Pager) ReadPage(id int64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("stegdb: page buffer %d != %d", len(buf), PageSize)
	}
	if id <= nilPage || id >= p.NumPages() {
		return fmt.Errorf("stegdb: page %d out of range [1,%d)", id, p.NumPages())
	}
	e := p.cache.pin(id)
	defer p.cache.unpin(e)
	if err := p.ensureLoaded(e); err != nil {
		return err
	}
	e.latch.RLock()
	copy(buf, e.buf[:])
	e.latch.RUnlock()
	return nil
}

// ensureLoaded fills e.buf from the hidden file if the frame is empty.
func (p *Pager) ensureLoaded(e *pageEntry) error {
	e.latch.RLock()
	ok := e.valid
	e.latch.RUnlock()
	if ok {
		return nil
	}
	e.latch.Lock()
	defer e.latch.Unlock()
	if e.valid {
		return nil
	}
	if _, err := p.view.ReadAt(p.name, e.buf[:], e.id*PageSize); err != nil {
		return err
	}
	e.valid = true
	return nil
}

// WritePage writes buf (len PageSize) to page id. The write is write-back:
// the frame is marked dirty and reaches the hidden file at the next commit
// (Sync/Close). If a snapshot could still see the page's previous content,
// that content is saved as a copy-on-write version first.
//
// The frame is marked dirty BEFORE the epoch stamp inside
// saveVersionLocked: a commit pins its epoch under snapMu, so a write
// stamped at or before that epoch must already be visible to the commit's
// dirty-list capture — the reverse order could journal a cut that silently
// misses this page.
func (p *Pager) WritePage(id int64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("stegdb: page buffer %d != %d", len(buf), PageSize)
	}
	if id <= nilPage || id >= p.NumPages() {
		return fmt.Errorf("stegdb: page %d out of range [1,%d)", id, p.NumPages())
	}
	e := p.cache.pin(id)
	defer p.cache.unpin(e)
	e.latch.Lock()
	defer e.latch.Unlock()
	wasDirty := p.cache.markDirty(e)
	if err := p.saveVersionLocked(e); err != nil {
		if !wasDirty {
			p.cache.unmarkDirty(e)
		}
		return err
	}
	copy(e.buf[:], buf)
	e.valid = true
	return nil
}

// FlushPages writes every dirty frame back to the hidden file, coalescing
// runs of consecutive page ids into single vectored writes. Frames
// re-dirtied mid-flush stay dirty (write-wins via per-frame generations).
func (p *Pager) FlushPages() error {
	dirty := p.cache.dirtyEntries()
	defer func() {
		for _, e := range dirty {
			p.cache.unpin(e)
		}
	}()
	for i := 0; i < len(dirty); {
		j := i + 1
		for j < len(dirty) && dirty[j].id == dirty[j-1].id+1 {
			j++
		}
		run := dirty[i:j]
		buf := make([]byte, len(run)*PageSize)
		gens := make([]uint64, len(run))
		for k, e := range run {
			e.latch.RLock()
			copy(buf[k*PageSize:], e.buf[:])
			gens[k] = p.cache.gen(e)
			e.latch.RUnlock()
		}
		if _, err := p.view.WriteAt(p.name, buf, run[0].id*PageSize); err != nil {
			return err
		}
		for k, e := range run {
			p.cache.clearDirty(e, gens[k])
		}
		i = j
	}
	return nil
}

// AllocPage returns a zeroed page, reusing the free list when possible.
// Atomic against concurrent allocators and frees.
func (p *Pager) AllocPage() (int64, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if head := p.metaField(metaFreeHead); head != nilPage {
		buf := make([]byte, PageSize)
		if err := p.ReadPage(head, buf); err != nil {
			return 0, err
		}
		next := int64(binary.BigEndian.Uint64(buf))
		p.setMetaField(metaFreeHead, next)
		zero := make([]byte, PageSize)
		if err := p.WritePage(head, zero); err != nil {
			return 0, err
		}
		return head, nil
	}
	id := p.metaField(metaNumPages)
	// Grow the backing hidden file when the next page would not fit.
	fi, err := p.view.Stat(p.name)
	if err != nil {
		return 0, err
	}
	if (id+1)*PageSize > fi.Size {
		newSize := fi.Size * 2
		if newSize < (id+1)*PageSize {
			newSize = (id + 1) * PageSize
		}
		if err := p.view.Resize(p.name, newSize); err != nil {
			return 0, err
		}
	}
	p.setMetaField(metaNumPages, id+1)
	return id, nil
}

// FreePage returns a page to the free list. Atomic against concurrent
// allocators.
func (p *Pager) FreePage(id int64) error {
	if id <= nilPage || id >= p.NumPages() {
		return fmt.Errorf("stegdb: freeing page %d out of range", id)
	}
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	buf := make([]byte, PageSize)
	binary.BigEndian.PutUint64(buf, uint64(p.metaField(metaFreeHead)))
	if err := p.WritePage(id, buf); err != nil {
		return err
	}
	p.setMetaField(metaFreeHead, id)
	return nil
}

// Sync is the durability barrier and commit point: concurrent callers are
// batched into shared commits (group commit), each of which journals a
// consistent cut of the dirty pages plus the meta page, barriers, writes
// everything home, and barriers again. After a torn crash anywhere inside,
// recovery at OpenPager leaves the database at exactly the old or the new
// epoch. When the journal file is unavailable (walOK false), Sync falls
// back to the legacy flush path: durable on success, but a torn crash
// mid-flush can mix epochs.
func (p *Pager) Sync() error {
	if !p.walOK {
		return p.legacySync()
	}
	return p.gc.do(p.commitOnce)
}

// legacySync is the pre-journal durability path: dirty pages out (data
// before metadata), then the meta page, then the underlying volume.
func (p *Pager) legacySync() error {
	if err := p.FlushPages(); err != nil {
		return err
	}
	p.metaMu.Lock()
	err := p.flushMetaLocked()
	p.metaMu.Unlock()
	if err != nil {
		return err
	}
	// A Sync opens a new epoch, so snapshots taken afterwards are pinned at
	// a post-Sync boundary.
	p.bumpEpoch()
	return p.view.Sync()
}

// bumpEpoch opens a new epoch after a commit, so snapshots taken afterwards
// are pinned at a post-commit boundary.
func (p *Pager) bumpEpoch() {
	p.snapMu.Lock()
	p.epoch++
	p.snapMu.Unlock()
}

// Close is the database shutdown path: everything durable on the device.
func (p *Pager) Close() error { return p.Sync() }
