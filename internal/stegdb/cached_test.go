package stegdb

import (
	"fmt"
	"testing"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

// newCachedView provisions a StegFS volume mounted through a block cache.
func newCachedView(t *testing.T, blocks int64, cacheBlocks int) (*stegfs.HiddenView, *stegfs.FS, *vdisk.MemStore) {
	t.Helper()
	store, err := vdisk.NewMemStore(blocks, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	p := stegfs.DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 8 << 10
	p.DeterministicKeys = true
	p.Seed = 42
	fs, err := stegfs.Format(store, p, stegfs.WithCache(cacheBlocks))
	if err != nil {
		t.Fatal(err)
	}
	return fs.NewHiddenView("db"), fs, store
}

// TestTableThroughBlockCache runs the whole database stack — pager, B-tree,
// hash index — over a cached StegFS volume and proves the result survives a
// Pager.Sync plus a cold, uncached remount of the raw store.
func TestTableThroughBlockCache(t *testing.T) {
	for _, capacity := range []int{0, 32, 2048} {
		t.Run(fmt.Sprintf("cache=%d", capacity), func(t *testing.T) {
			view, fs, store := newCachedView(t, 16<<10, capacity)
			tbl, err := CreateTable(view, "accounts", true, 64)
			if err != nil {
				t.Fatal(err)
			}
			const rows = 200
			for i := 0; i < rows; i++ {
				key := fmt.Sprintf("user%04d", i)
				val := fmt.Sprintf("balance=%d", i*37)
				if err := tbl.Put([]byte(key), []byte(val)); err != nil {
					t.Fatalf("Put %s: %v", key, err)
				}
			}
			if err := tbl.Sync(); err != nil {
				t.Fatalf("Table Sync: %v", err)
			}
			if capacity > 0 {
				stats, ok := fs.CacheStats()
				if !ok || stats.Hits == 0 {
					t.Fatalf("stegdb workload produced no cache hits: %+v", stats)
				}
				if fs.Cache().Dirty() != 0 {
					t.Fatal("dirty blocks left after Pager.Sync")
				}
			}

			// Cold remount of the raw store without any cache: the database
			// must be fully there.
			fs2, err := stegfs.Mount(store)
			if err != nil {
				t.Fatal(err)
			}
			view2 := fs2.NewHiddenView("db")
			if err := view2.Adopt("accounts"); err != nil {
				t.Fatalf("Adopt: %v", err)
			}
			tbl2, err := OpenTable(view2, "accounts")
			if err != nil {
				t.Fatalf("OpenTable after remount: %v", err)
			}
			for i := 0; i < rows; i++ {
				key := fmt.Sprintf("user%04d", i)
				want := fmt.Sprintf("balance=%d", i*37)
				got, ok, err := tbl2.Get([]byte(key))
				if err != nil {
					t.Fatalf("Get %s: %v", key, err)
				}
				if !ok || string(got) != want {
					t.Fatalf("Get %s = %q/%v, want %q", key, got, ok, want)
				}
			}
		})
	}
}
