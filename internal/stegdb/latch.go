package stegdb

import (
	"container/list"
	"sync"
)

// pageEntry is one frame of the in-pager page cache. The latch guards the
// frame contents (buf, valid): shared for readers copying out, exclusive
// for writers and for load/flush. The bookkeeping fields (refs, dirty, gen,
// elem) belong to the cache mutex, so eviction and flush can inspect them
// without taking the latch.
type pageEntry struct {
	id int64
	// Latches sit between allocMu and snapMu in the hierarchy; only one
	// frame's latch is ever held at a time. Latched loads/flushes touch the
	// hidden file on purpose, so the class is not noio.
	// lockcheck:level 50 stegdb/latch
	latch sync.RWMutex
	// lockcheck:guardedby latch
	valid bool // buf holds the page's current content
	// lockcheck:guardedby latch
	buf [PageSize]byte

	// lockcheck:guardedby stegdb/cacheMu
	refs int // pins; >0 keeps the frame out of eviction
	// lockcheck:guardedby stegdb/cacheMu
	dirty bool // content newer than the hidden file
	// lockcheck:guardedby stegdb/cacheMu
	gen uint64 // bumped on every markDirty; write-wins on flush
	// lockcheck:guardedby stegdb/cacheMu
	elem *list.Element // position in the LRU list
}

// pageCache is a small LRU of page frames with per-page latches. The cache
// mutex covers only the map/LRU bookkeeping — never page I/O — so pins are
// cheap and page loads/flushes proceed in parallel on distinct pages.
type pageCache struct {
	// lockcheck:level 80 stegdb/cacheMu noio
	mu sync.Mutex
	// lockcheck:guardedby mu
	cap int
	// lockcheck:guardedby mu
	entries map[int64]*pageEntry
	// lockcheck:guardedby mu
	lru *list.List // front = most recently used; holds *pageEntry
}

func newPageCache(capacity int) *pageCache {
	if capacity < 16 {
		capacity = 16
	}
	return &pageCache{
		cap:     capacity,
		entries: make(map[int64]*pageEntry),
		lru:     list.New(),
	}
}

func (c *pageCache) setCap(n int) {
	if n < 16 {
		n = 16
	}
	c.mu.Lock()
	c.cap = n
	c.mu.Unlock()
}

// pin returns the frame for page id with its reference count raised,
// creating (empty, invalid) frames on miss and evicting over-capacity
// clean victims. The cache is strictly no-steal: dirty frames never reach
// the hidden file outside a commit, so eviction skips them (the cache may
// run over capacity by the size of the uncommitted working set, which the
// commit bounds by flushing). Callers must unpin the returned entry.
func (c *pageCache) pin(id int64) *pageEntry {
	c.mu.Lock()
	e, ok := c.entries[id]
	if ok {
		e.refs++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e
	}
	e = &pageEntry{id: id, refs: 1}
	e.elem = c.lru.PushFront(e)
	c.entries[id] = e

	// Evict clean, unpinned frames from the LRU tail while over capacity.
	over := c.lru.Len() - c.cap
	if over > 0 {
		var el, prev *list.Element
		for el = c.lru.Back(); el != nil && over > 0; el = prev {
			prev = el.Prev()
			cand := el.Value.(*pageEntry)
			if cand.refs == 0 && !cand.dirty {
				c.removeLocked(cand)
				over--
			}
		}
	}
	c.mu.Unlock()
	return e
}

// removeLocked drops a frame from the map and LRU; caller holds c.mu.
//
// lockcheck:holds stegdb/cacheMu
func (c *pageCache) removeLocked(e *pageEntry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.id)
}

func (c *pageCache) unpin(e *pageEntry) {
	c.mu.Lock()
	e.refs--
	c.mu.Unlock()
}

// markDirty records that the frame content is newer than the hidden file,
// returning whether the frame was already dirty (so a failed write can
// revert the flag it set without clobbering an earlier writer's). Caller
// holds the frame's exclusive latch.
//
// lockcheck:holds stegdb/latch
func (c *pageCache) markDirty(e *pageEntry) (wasDirty bool) {
	c.mu.Lock()
	wasDirty = e.dirty
	e.dirty = true
	e.gen++
	c.mu.Unlock()
	return wasDirty
}

// unmarkDirty reverts a markDirty after the guarded write failed; caller
// holds the frame's exclusive latch and knows no content changed.
//
// lockcheck:holds stegdb/latch
func (c *pageCache) unmarkDirty(e *pageEntry) {
	c.mu.Lock()
	e.dirty = false
	c.mu.Unlock()
}

// gen reads the frame's dirty generation.
func (c *pageCache) gen(e *pageEntry) uint64 {
	c.mu.Lock()
	g := e.gen
	c.mu.Unlock()
	return g
}

// clearDirty marks the frame clean if no write landed since generation g
// was observed (write-wins: a concurrent re-dirty keeps the flag).
func (c *pageCache) clearDirty(e *pageEntry, g uint64) {
	c.mu.Lock()
	if e.gen == g {
		e.dirty = false
	}
	c.mu.Unlock()
}

// dirtyEntries returns every dirty frame, pinned and sorted by page id.
// The caller flushes them and unpins.
func (c *pageCache) dirtyEntries() []*pageEntry {
	c.mu.Lock()
	var out []*pageEntry
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*pageEntry)
		if e.dirty {
			e.refs++
			out = append(out, e)
		}
	}
	c.mu.Unlock()
	sortEntriesByID(out)
	return out
}

func sortEntriesByID(es []*pageEntry) {
	// Insertion sort: dirty sets are small and usually nearly ordered.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j-1].id > es[j].id; j-- {
			es[j-1], es[j] = es[j], es[j-1]
		}
	}
}

// dropClean removes every clean, unpinned frame (cache invalidation for
// benchmarks; dirty or pinned frames survive).
func (c *pageCache) dropClean() {
	c.mu.Lock()
	var el, next *list.Element
	for el = c.lru.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*pageEntry)
		if !e.dirty && e.refs == 0 {
			c.removeLocked(e)
		}
	}
	c.mu.Unlock()
}
