package stegdb

import (
	"encoding/binary"
	"fmt"

	"stegfs/internal/stegfs"
)

// Table is a hidden key-value table: rows live in a B-tree (ordered access,
// range scans) with an optional hash index for O(1) point lookups — the
// three structures the paper's future work names (tables, B-trees, hash
// indices), all stored in one deniable hidden file.
type Table struct {
	pg    *Pager
	tree  *BTree
	hash  *HashIndex
	hashy bool
}

// CreateTable creates a new hidden table in the named hidden file.
// withHash adds the hash index (nBuckets buckets).
func CreateTable(view *stegfs.HiddenView, name string, withHash bool, nBuckets int) (*Table, error) {
	pg, err := CreatePager(view, name)
	if err != nil {
		return nil, err
	}
	t := &Table{pg: pg, tree: NewBTree(pg), hashy: withHash}
	if withHash {
		if t.hash, err = NewHashIndex(pg, nBuckets); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// OpenTable opens an existing hidden table.
func OpenTable(view *stegfs.HiddenView, name string) (*Table, error) {
	pg, err := OpenPager(view, name)
	if err != nil {
		return nil, err
	}
	t := &Table{pg: pg, tree: NewBTree(pg)}
	if pg.getMeta(metaHashRoot) != nilPage {
		t.hashy = true
		if t.hash, err = NewHashIndex(pg, 0); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Pager exposes the table's page store (for Sync/Close and stats).
func (t *Table) Pager() *Pager { return t.pg }

// Sync persists the table to the device, flushing any block cache the
// backing volume is mounted through.
func (t *Table) Sync() error { return t.pg.Sync() }

// Close is the table shutdown path: everything durable on the device.
func (t *Table) Close() error { return t.pg.Close() }

// Put inserts or replaces a row.
func (t *Table) Put(key, val []byte) error {
	if err := t.tree.Put(key, val); err != nil {
		return err
	}
	if t.hashy {
		if err := t.hash.Put(key, val); err != nil {
			return err
		}
	}
	return nil
}

// Get returns the row stored under key. With a hash index it takes the O(1)
// path; otherwise the B-tree.
func (t *Table) Get(key []byte) ([]byte, bool, error) {
	if t.hashy {
		return t.hash.Get(key)
	}
	return t.tree.Get(key)
}

// GetOrdered always uses the B-tree (for verification and range queries).
func (t *Table) GetOrdered(key []byte) ([]byte, bool, error) { return t.tree.Get(key) }

// Delete removes a row, reporting whether it existed.
func (t *Table) Delete(key []byte) (bool, error) {
	found, err := t.tree.Delete(key)
	if err != nil {
		return false, err
	}
	if t.hashy {
		if _, err := t.hash.Delete(key); err != nil {
			return false, err
		}
	}
	return found, nil
}

// Scan visits rows in key order.
func (t *Table) Scan(fn func(key, val []byte) bool) error { return t.tree.Scan(fn) }

// Range visits rows with lo <= key < hi in order (nil bounds are open).
func (t *Table) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	return t.tree.Scan(func(k, v []byte) bool {
		if lo != nil && string(k) < string(lo) {
			return true
		}
		if hi != nil && string(k) >= string(hi) {
			return false
		}
		return fn(k, v)
	})
}

// Rows counts the rows by scanning (the table is hidden; nothing may be
// cached outside it).
func (t *Table) Rows() (int64, error) {
	var n int64
	err := t.tree.Scan(func(k, v []byte) bool { n++; return true })
	return n, err
}

// Pages reports the pager footprint (pages in use).
func (t *Table) Pages() int64 { return t.pg.NumPages() }

// PutUint64 is a convenience for integer-keyed rows.
func (t *Table) PutUint64(key uint64, val []byte) error {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], key)
	return t.Put(k[:], val)
}

// GetUint64 fetches an integer-keyed row.
func (t *Table) GetUint64(key uint64) ([]byte, bool, error) {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], key)
	return t.Get(k[:])
}

// Check verifies internal consistency: every B-tree row resolves through
// the hash index (when present) and vice versa counts match.
func (t *Table) Check() error {
	if !t.hashy {
		return nil
	}
	var missed int
	err := t.tree.Scan(func(k, v []byte) bool {
		hv, ok, err := t.hash.Get(k)
		if err != nil || !ok || string(hv) != string(v) {
			missed++
		}
		return true
	})
	if err != nil {
		return err
	}
	if missed > 0 {
		return fmt.Errorf("stegdb: %d rows missing or stale in hash index", missed)
	}
	return nil
}
