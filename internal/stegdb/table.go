package stegdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Table is a hidden key-value table: rows live in a B-tree (ordered access,
// range scans) with an optional hash index for O(1) point lookups — the
// three structures the paper's future work names (tables, B-trees, hash
// indices), all stored in one deniable hidden file.
//
// Concurrency: Put/Delete serialize per key via nKeyShards shard locks, so
// the B-tree and hash index stay mutually consistent for any one key while
// distinct keys proceed in parallel (limited below by the tree writer
// lock). Get/Scan/Range never block behind writers: the hash path stripes
// by bucket, the tree path reads snapshots.
type Table struct {
	pg    *Pager
	tree  *BTree
	hash  *HashIndex
	hashy bool
	// Outermost lock of the stegdb hierarchy; one shard per operation.
	// lockcheck:level 10 stegdb/shard
	shards [nKeyShards]sync.Mutex
}

// nKeyShards is the Put/Delete key striping factor.
const nKeyShards = 64

// shardFor hashes the key (FNV-1a) onto a shard lock.
//
// lockcheck:returns stegdb/shard
func (t *Table) shardFor(key []byte) *sync.Mutex {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return &t.shards[h%nKeyShards]
}

// CreateTable creates a new hidden table in the named hidden file.
// withHash adds the hash index (nBuckets buckets).
func CreateTable(view View, name string, withHash bool, nBuckets int) (*Table, error) {
	pg, err := CreatePager(view, name)
	if err != nil {
		return nil, err
	}
	t := &Table{pg: pg, tree: NewBTree(pg), hashy: withHash}
	if withHash {
		if t.hash, err = NewHashIndex(pg, nBuckets); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// OpenTable opens an existing hidden table.
func OpenTable(view View, name string) (*Table, error) {
	pg, err := OpenPager(view, name)
	if err != nil {
		return nil, err
	}
	t := &Table{pg: pg, tree: NewBTree(pg)}
	if pg.metaField(metaHashRoot) != nilPage {
		t.hashy = true
		if t.hash, err = NewHashIndex(pg, 0); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Pager exposes the table's page store (for Sync/Close and stats).
func (t *Table) Pager() *Pager { return t.pg }

// Sync persists the table to the device, flushing any block cache the
// backing volume is mounted through.
func (t *Table) Sync() error { return t.pg.Sync() }

// Close is the table shutdown path: everything durable on the device.
func (t *Table) Close() error { return t.pg.Close() }

// Put inserts or replaces a row. The B-tree and hash index are kept
// error-consistent: if the hash insert fails after the tree insert
// succeeded, the tree change is rolled back before the error returns.
func (t *Table) Put(key, val []byte) error {
	sh := t.shardFor(key)
	sh.Lock()
	defer sh.Unlock()
	prev, existed, err := t.tree.PutEx(key, val)
	if err != nil {
		return err
	}
	if t.hashy {
		if err := t.hash.Put(key, val); err != nil {
			var rerr error
			if existed {
				_, _, rerr = t.tree.PutEx(key, prev)
			} else {
				_, _, rerr = t.tree.DeleteEx(key)
			}
			if rerr != nil {
				return errors.Join(err, fmt.Errorf("stegdb: rollback failed: %w", rerr))
			}
			return err
		}
	}
	if !existed {
		t.pg.bumpRows(1)
	}
	return nil
}

// Get returns the row stored under key. With a hash index it takes the O(1)
// path; otherwise the B-tree.
func (t *Table) Get(key []byte) ([]byte, bool, error) {
	if t.hashy {
		return t.hash.Get(key)
	}
	return t.tree.Get(key)
}

// GetOrdered always uses the B-tree (for verification and range queries).
func (t *Table) GetOrdered(key []byte) ([]byte, bool, error) { return t.tree.Get(key) }

// Delete removes a row, reporting whether it existed. Error-consistent like
// Put: if the hash delete fails after the tree delete succeeded, the row is
// restored and (false, err) returned — the delete did not happen. The hash
// index is probed even when the tree had no row, repairing any orphaned
// hash entry from an earlier partial failure.
func (t *Table) Delete(key []byte) (bool, error) {
	sh := t.shardFor(key)
	sh.Lock()
	defer sh.Unlock()
	prev, found, err := t.tree.DeleteEx(key)
	if err != nil {
		return false, err
	}
	if t.hashy {
		if _, err := t.hash.Delete(key); err != nil {
			if found {
				if _, _, rerr := t.tree.PutEx(key, prev); rerr != nil {
					return false, errors.Join(err, fmt.Errorf("stegdb: rollback failed: %w", rerr))
				}
			}
			return false, err
		}
	}
	if found {
		t.pg.bumpRows(-1)
	}
	return found, nil
}

// Scan visits rows in key order, reading from a snapshot: the scan sees the
// table exactly as of its start and never blocks concurrent writers.
func (t *Table) Scan(fn func(key, val []byte) bool) error { return t.tree.Scan(fn) }

// Range visits rows with lo <= key < hi in order (nil bounds are open),
// with the same snapshot semantics as Scan. The B-link leaf chain makes
// this a seek to lo plus a bounded walk, not a filtered full scan.
func (t *Table) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	s := t.Snapshot()
	defer s.Close()
	return s.Range(lo, hi, fn)
}

// Snapshot pins a point-in-time read view of the table's ordered rows.
func (t *Table) Snapshot() *TreeSnapshot { return t.tree.Snapshot() }

// Rows returns the row count from the persistent counter maintained by
// Put/Delete — O(1). Check() cross-validates it against a full scan.
func (t *Table) Rows() (int64, error) { return t.pg.Rows(), nil }

// Pages reports the pager footprint (pages in use).
func (t *Table) Pages() int64 { return t.pg.NumPages() }

// PutUint64 is a convenience for integer-keyed rows.
func (t *Table) PutUint64(key uint64, val []byte) error {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], key)
	return t.Put(k[:], val)
}

// GetUint64 fetches an integer-keyed row.
func (t *Table) GetUint64(key uint64) ([]byte, bool, error) {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], key)
	return t.Get(k[:])
}

// Check verifies internal consistency against one snapshot of the tree:
// every B-tree row resolves through the hash index (when present) with the
// same value, the hash entry count matches the tree row count, and the O(1)
// row counter agrees with the snapshot's scan count.
func (t *Table) Check() error {
	s := t.Snapshot()
	defer s.Close()
	var scanned int64
	var missed int
	err := s.Scan(func(k, v []byte) bool {
		scanned++
		if t.hashy {
			hv, ok, err := t.hash.Get(k)
			if err != nil || !ok || string(hv) != string(v) {
				missed++
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	if missed > 0 {
		return fmt.Errorf("stegdb: %d rows missing or stale in hash index", missed)
	}
	if rows := s.Rows(); rows != scanned {
		return fmt.Errorf("stegdb: row counter %d != scanned rows %d", rows, scanned)
	}
	if t.hashy {
		hc, err := t.hash.Count()
		if err != nil {
			return err
		}
		if hc != scanned {
			return fmt.Errorf("stegdb: hash index holds %d entries, tree holds %d rows", hc, scanned)
		}
	}
	return nil
}
