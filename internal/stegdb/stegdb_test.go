package stegdb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

// newView provisions a StegFS volume and a user view for database tests.
func newView(t *testing.T, blocks int64) (*stegfs.HiddenView, *vdisk.MemStore) {
	t.Helper()
	store, err := vdisk.NewMemStore(blocks, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	p := stegfs.DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 8 << 10
	p.DeterministicKeys = true
	p.Seed = 42
	fs, err := stegfs.Format(store, p)
	if err != nil {
		t.Fatal(err)
	}
	return fs.NewHiddenView("db"), store
}

func TestPagerAllocReadWrite(t *testing.T) {
	view, _ := newView(t, 16<<10)
	pg, err := CreatePager(view, "db1")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, 10)
	for i := range ids {
		id, err := pg.AllocPage()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		buf := bytes.Repeat([]byte{byte(i + 1)}, PageSize)
		if err := pg.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		buf := make([]byte, PageSize)
		if err := pg.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) || buf[PageSize-1] != byte(i+1) {
			t.Fatalf("page %d content mismatch", id)
		}
	}
	// Bounds.
	if err := pg.ReadPage(0, make([]byte, PageSize)); err == nil {
		t.Fatal("meta page must not be readable as data")
	}
	if err := pg.ReadPage(999, make([]byte, PageSize)); err == nil {
		t.Fatal("out-of-range page read should fail")
	}
}

func TestPagerFreeListRecycles(t *testing.T) {
	view, _ := newView(t, 16<<10)
	pg, err := CreatePager(view, "db1")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pg.AllocPage()
	b, _ := pg.AllocPage()
	grown := pg.NumPages()
	if err := pg.FreePage(a); err != nil {
		t.Fatal(err)
	}
	if err := pg.FreePage(b); err != nil {
		t.Fatal(err)
	}
	c, _ := pg.AllocPage()
	d, _ := pg.AllocPage()
	if pg.NumPages() != grown {
		t.Fatalf("free list not recycled: %d pages, had %d", pg.NumPages(), grown)
	}
	if (c != a && c != b) || (d != a && d != b) || c == d {
		t.Fatalf("recycled ids wrong: %d %d from {%d %d}", c, d, a, b)
	}
	// Recycled pages come back zeroed.
	buf := make([]byte, PageSize)
	if err := pg.ReadPage(c, buf); err != nil {
		t.Fatal(err)
	}
	for _, x := range buf {
		if x != 0 {
			t.Fatal("recycled page not zeroed")
		}
	}
}

func TestPagerPersistence(t *testing.T) {
	view, _ := newView(t, 16<<10)
	pg, err := CreatePager(view, "db1")
	if err != nil {
		t.Fatal(err)
	}
	id, _ := pg.AllocPage()
	want := bytes.Repeat([]byte{0x5c}, PageSize)
	if err := pg.WritePage(id, want); err != nil {
		t.Fatal(err)
	}
	// Pages are write-back: Sync is the durability point before reopening.
	if err := pg.Sync(); err != nil {
		t.Fatal(err)
	}
	pg2, err := OpenPager(view, "db1")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := pg2.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("pager state lost across reopen")
	}
	if _, err := OpenPager(view, "nosuch"); err == nil {
		t.Fatal("opening a missing database should fail")
	}
}

func TestBTreeBasicCRUD(t *testing.T) {
	view, _ := newView(t, 16<<10)
	pg, _ := CreatePager(view, "db1")
	bt := NewBTree(pg)
	if _, ok, _ := bt.Get([]byte("missing")); ok {
		t.Fatal("empty tree found a key")
	}
	if err := bt.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := bt.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := bt.Put([]byte("c"), []byte("3")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := bt.Get([]byte("b"))
	if err != nil || !ok || string(v) != "2" {
		t.Fatalf("Get(b) = %q %v %v", v, ok, err)
	}
	// Replace.
	if err := bt.Put([]byte("b"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = bt.Get([]byte("b"))
	if string(v) != "two" {
		t.Fatal("replace failed")
	}
	// Delete.
	found, err := bt.Delete([]byte("b"))
	if err != nil || !found {
		t.Fatalf("Delete = %v %v", found, err)
	}
	if _, ok, _ := bt.Get([]byte("b")); ok {
		t.Fatal("deleted key still present")
	}
	if found, _ := bt.Delete([]byte("zz")); found {
		t.Fatal("deleting a missing key reported found")
	}
	if err := bt.Put(nil, []byte("x")); err == nil {
		t.Fatal("empty key should be rejected")
	}
}

func TestBTreeManyKeysSplitsAndOrder(t *testing.T) {
	view, _ := newView(t, 64<<10)
	pg, _ := CreatePager(view, "db1")
	bt := NewBTree(pg)
	const n = 3000
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	for _, i := range perm {
		key := []byte(fmt.Sprintf("key-%06d", i))
		val := []byte(fmt.Sprintf("val-%d", i*i))
		if err := bt.Put(key, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	h, err := bt.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("3000 keys but height %d — splits never happened", h)
	}
	// Every key resolves.
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		v, ok, err := bt.Get(key)
		if err != nil || !ok {
			t.Fatalf("lost key %d (%v)", i, err)
		}
		if string(v) != fmt.Sprintf("val-%d", i*i) {
			t.Fatalf("key %d wrong value", i)
		}
	}
	// Scan yields sorted order, all keys exactly once.
	var scanned []string
	if err := bt.Scan(func(k, v []byte) bool {
		scanned = append(scanned, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(scanned) != n {
		t.Fatalf("scan saw %d keys, want %d", len(scanned), n)
	}
	if !sort.StringsAreSorted(scanned) {
		t.Fatal("scan not in key order")
	}
}

func TestBTreeDeleteHalf(t *testing.T) {
	view, _ := newView(t, 64<<10)
	pg, _ := CreatePager(view, "db1")
	bt := NewBTree(pg)
	const n = 800
	for i := 0; i < n; i++ {
		if err := bt.Put([]byte(fmt.Sprintf("k%05d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		found, err := bt.Delete([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	for i := 0; i < n; i++ {
		_, ok, err := bt.Get([]byte(fmt.Sprintf("k%05d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if ok != (i%2 == 1) {
			t.Fatalf("key %d presence = %v", i, ok)
		}
	}
}

func TestBTreeLargeValues(t *testing.T) {
	view, _ := newView(t, 64<<10)
	pg, _ := CreatePager(view, "db1")
	bt := NewBTree(pg)
	big := bytes.Repeat([]byte{7}, MaxEntry-10)
	if err := bt.Put([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, ok, err := bt.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatal("large value round trip failed")
	}
	if err := bt.Put([]byte("too"), bytes.Repeat([]byte{8}, MaxEntry+1)); err == nil {
		t.Fatal("oversized entry should be rejected")
	}
}

func TestHashIndexCRUD(t *testing.T) {
	view, _ := newView(t, 64<<10)
	pg, _ := CreatePager(view, "db1")
	h, err := NewHashIndex(pg, 16)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := h.Put([]byte(fmt.Sprintf("hk%05d", i)), []byte(fmt.Sprintf("hv%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := h.Get([]byte(fmt.Sprintf("hk%05d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("hv%d", i) {
			t.Fatalf("get %d: %q %v %v", i, v, ok, err)
		}
	}
	// Replace.
	if err := h.Put([]byte("hk00001"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	v, _, _ := h.Get([]byte("hk00001"))
	if string(v) != "fresh" {
		t.Fatal("hash replace failed")
	}
	// Delete.
	for i := 0; i < n; i += 3 {
		found, err := h.Delete([]byte(fmt.Sprintf("hk%05d", i)))
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	for i := 0; i < n; i++ {
		_, ok, _ := h.Get([]byte(fmt.Sprintf("hk%05d", i)))
		if ok != (i%3 != 0) {
			t.Fatalf("key %d presence %v", i, ok)
		}
	}
	if found, _ := h.Delete([]byte("never")); found {
		t.Fatal("missing delete reported found")
	}
}

func TestHashIndexPersistence(t *testing.T) {
	view, _ := newView(t, 32<<10)
	pg, _ := CreatePager(view, "db1")
	h, err := NewHashIndex(pg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := pg.Sync(); err != nil {
		t.Fatal(err)
	}
	pg2, err := OpenPager(view, "db1")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHashIndex(pg2, 0) // reopening ignores nBuckets
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := h2.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatal("hash index lost across reopen")
	}
}

func TestTableEndToEnd(t *testing.T) {
	view, _ := newView(t, 64<<10)
	tab, err := CreateTable(view, "accounts", true, 32)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := tab.PutUint64(uint64(i), []byte(fmt.Sprintf("row-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
	rows, err := tab.Rows()
	if err != nil || rows != n {
		t.Fatalf("Rows = %d %v", rows, err)
	}
	// Point lookups through the hash path and the ordered path agree.
	for i := 0; i < n; i += 17 {
		hv, ok1, _ := tab.GetUint64(uint64(i))
		var k [8]byte
		k[7] = byte(i)
		k[6] = byte(i >> 8)
		bv, ok2, _ := tab.GetOrdered(k[:])
		if !ok1 || !ok2 || !bytes.Equal(hv, bv) {
			t.Fatalf("row %d: hash %q vs btree %q", i, hv, bv)
		}
	}
	// Range query.
	var got []string
	lo := make([]byte, 8)
	hi := make([]byte, 8)
	lo[7], hi[7] = 10, 20
	if err := tab.Range(lo, hi, func(k, v []byte) bool {
		got = append(got, string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "row-10" || got[9] != "row-19" {
		t.Fatalf("range [10,20) = %v", got)
	}
	// Delete through both structures.
	found, err := tab.Delete(lo)
	if err != nil || !found {
		t.Fatal("table delete failed")
	}
	if _, ok, _ := tab.Get(lo); ok {
		t.Fatal("deleted row still visible via hash")
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestTablePersistenceAcrossRemount(t *testing.T) {
	store, err := vdisk.NewMemStore(64<<10, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	p := stegfs.DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 8 << 10
	p.DeterministicKeys = true
	fs, err := stegfs.Format(store, p)
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("db")
	tab, err := CreateTable(view, "t", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := tab.PutUint64(uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Table.Sync flushes the pager's dirty pages, then the volume.
	if err := tab.Sync(); err != nil {
		t.Fatal(err)
	}

	// Remount the volume; DeterministicKeys lets a fresh view re-derive the
	// FAK (a real user would keep it in their UAK directory).
	fs2, err := stegfs.Mount(store)
	if err != nil {
		t.Fatal(err)
	}
	view2 := fs2.NewHiddenView("db")
	if err := view2.Adopt("t"); err != nil {
		t.Fatal(err)
	}
	tab2, err := OpenTable(view2, "t")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		v, ok, err := tab2.GetUint64(uint64(i))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("row %d lost across remount (%v)", i, err)
		}
	}
	if err := tab2.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTableVsMap: arbitrary operation sequences agree with a map.
func TestPropertyTableVsMap(t *testing.T) {
	view, _ := newView(t, 64<<10)
	tab, err := CreateTable(view, "prop", true, 16)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]string{}
	f := func(ops []uint16) bool {
		for j, op := range ops {
			if j >= 30 {
				break
			}
			key := fmt.Sprintf("k%d", int(op)%40)
			switch op % 3 {
			case 0, 1:
				val := fmt.Sprintf("v%d-%d", op, j)
				if err := tab.Put([]byte(key), []byte(val)); err != nil {
					return false
				}
				ref[key] = val
			case 2:
				found, err := tab.Delete([]byte(key))
				if err != nil {
					return false
				}
				_, inRef := ref[key]
				if found != inRef {
					return false
				}
				delete(ref, key)
			}
		}
		for key, want := range ref {
			got, ok, err := tab.Get([]byte(key))
			if err != nil || !ok || string(got) != want {
				return false
			}
			got2, ok2, err := tab.GetOrdered([]byte(key))
			if err != nil || !ok2 || string(got2) != want {
				return false
			}
		}
		rows, err := tab.Rows()
		return err == nil && rows == int64(len(ref))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
