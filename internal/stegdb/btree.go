package stegdb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// BTree is a B-tree over a Pager with variable-length byte-string keys and
// values, kept fully inside hidden pages. Deletions are simple removals
// (no eager rebalancing): pages may run underfull, which costs space, not
// correctness — the trade the original paper's DBMS direction also faces,
// since merging pages changes the allocation picture an intruder sees.
//
// Concurrency: mu serializes structural writers (Put/Delete). Readers do
// not hold mu during their descent — Get/Scan pin a pager snapshot (taken
// under mu shared for the instant of the begin, so it can't straddle a
// multi-page split) and read copy-on-write page versions, never blocking
// behind writers.
type BTree struct {
	pg *Pager
	// lockcheck:level 20 stegdb/btree
	mu sync.RWMutex
}

// MaxEntry bounds key+value length so any two entries fit in a page after a
// split.
const MaxEntry = (PageSize - pageHdr) / 4

const (
	pageHdr      = 3 // type(1) + nkeys(2)
	nodeLeaf     = 1
	nodeInternal = 2
)

// kv is one leaf entry.
type kv struct {
	key, val []byte
}

// node is the in-memory form of a B-tree page.
type node struct {
	leaf     bool
	entries  []kv     // leaf: key/value pairs, sorted
	keys     [][]byte // internal: separator keys, sorted
	children []int64  // internal: len(keys)+1 child pages
}

// NewBTree opens the tree rooted in the pager's meta (creating an empty
// tree if none exists).
func NewBTree(pg *Pager) *BTree { return &BTree{pg: pg} }

func (t *BTree) root() int64 { return t.pg.metaField(metaBTreeRoot) }

func (t *BTree) setRoot(id int64) { t.pg.setMetaField(metaBTreeRoot, id) }

// --- node codec --------------------------------------------------------------

func encodeNode(n *node, buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = nodeLeaf
		binary.BigEndian.PutUint16(buf[1:], uint16(len(n.entries)))
		off := pageHdr
		for _, e := range n.entries {
			need := 4 + len(e.key) + len(e.val)
			if off+need > PageSize {
				return fmt.Errorf("stegdb: leaf overflow during encode (%d entries)", len(n.entries))
			}
			binary.BigEndian.PutUint16(buf[off:], uint16(len(e.key)))
			binary.BigEndian.PutUint16(buf[off+2:], uint16(len(e.val)))
			off += 4
			copy(buf[off:], e.key)
			off += len(e.key)
			copy(buf[off:], e.val)
			off += len(e.val)
		}
		return nil
	}
	buf[0] = nodeInternal
	binary.BigEndian.PutUint16(buf[1:], uint16(len(n.keys)))
	off := pageHdr
	binary.BigEndian.PutUint64(buf[off:], uint64(n.children[0]))
	off += 8
	for i, k := range n.keys {
		need := 2 + len(k) + 8
		if off+need > PageSize {
			return fmt.Errorf("stegdb: internal overflow during encode (%d keys)", len(n.keys))
		}
		binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		copy(buf[off:], k)
		off += len(k)
		binary.BigEndian.PutUint64(buf[off:], uint64(n.children[i+1]))
		off += 8
	}
	return nil
}

func decodeNode(buf []byte) (*node, error) {
	n := &node{}
	count := int(binary.BigEndian.Uint16(buf[1:]))
	off := pageHdr
	switch buf[0] {
	case nodeLeaf:
		n.leaf = true
		for i := 0; i < count; i++ {
			if off+4 > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt leaf page")
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			vl := int(binary.BigEndian.Uint16(buf[off+2:]))
			off += 4
			if off+kl+vl > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt leaf entry")
			}
			e := kv{
				key: append([]byte(nil), buf[off:off+kl]...),
				val: append([]byte(nil), buf[off+kl:off+kl+vl]...),
			}
			off += kl + vl
			n.entries = append(n.entries, e)
		}
	case nodeInternal:
		n.children = append(n.children, int64(binary.BigEndian.Uint64(buf[off:])))
		off += 8
		for i := 0; i < count; i++ {
			if off+2 > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt internal page")
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			off += 2
			if off+kl+8 > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt internal entry")
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			off += kl
			n.children = append(n.children, int64(binary.BigEndian.Uint64(buf[off:])))
			off += 8
		}
	default:
		return nil, fmt.Errorf("stegdb: unknown node type %d", buf[0])
	}
	return n, nil
}

// encodedSize returns the byte size the node needs.
func (n *node) encodedSize() int {
	size := pageHdr
	if n.leaf {
		for _, e := range n.entries {
			size += 4 + len(e.key) + len(e.val)
		}
		return size
	}
	size += 8
	for _, k := range n.keys {
		size += 2 + len(k) + 8
	}
	return size
}

// pageReader is the read side shared by the live pager and snapshots, so
// one descent/scan implementation serves both.
type pageReader interface {
	ReadPage(id int64, buf []byte) error
}

func loadNode(r pageReader, id int64) (*node, error) {
	buf := make([]byte, PageSize)
	if err := r.ReadPage(id, buf); err != nil {
		return nil, err
	}
	return decodeNode(buf)
}

func (t *BTree) load(id int64) (*node, error) { return loadNode(t.pg, id) }

func (t *BTree) store(id int64, n *node) error {
	buf := make([]byte, PageSize)
	if err := encodeNode(n, buf); err != nil {
		return err
	}
	return t.pg.WritePage(id, buf)
}

// --- snapshot reads ----------------------------------------------------------

// TreeSnapshot is a point-in-time read-only view of the tree: the root and
// every page are frozen at the snapshot's epoch. Close it when done.
type TreeSnapshot struct {
	s    *Snapshot
	root int64
}

// Snapshot pins the tree at the current instant. The tree lock is held
// shared only for the begin itself — it waits out any in-flight writer so
// the snapshot can't straddle a multi-page split, then releases before any
// page is read. Reads through the snapshot never block writers.
func (t *BTree) Snapshot() *TreeSnapshot {
	t.mu.RLock()
	s := t.pg.BeginSnapshot()
	t.mu.RUnlock()
	return &TreeSnapshot{s: s, root: s.BTreeRoot()}
}

// Close releases the snapshot's pinned page versions.
func (ts *TreeSnapshot) Close() { ts.s.Close() }

// Rows returns the table row counter as of the snapshot.
func (ts *TreeSnapshot) Rows() int64 { return ts.s.RowsAtSnapshot() }

// Get returns the value stored under key as of the snapshot.
func (ts *TreeSnapshot) Get(key []byte) ([]byte, bool, error) {
	return getFrom(ts.s, ts.root, key)
}

// Scan visits every key/value pair in key order as of the snapshot.
func (ts *TreeSnapshot) Scan(fn func(key, val []byte) bool) error {
	_, err := scanFrom(ts.s, ts.root, fn)
	return err
}

func getFrom(r pageReader, id int64, key []byte) ([]byte, bool, error) {
	for id != nilPage {
		n, err := loadNode(r, id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			for _, e := range n.entries {
				if bytes.Equal(e.key, key) {
					return e.val, true, nil
				}
			}
			return nil, false, nil
		}
		id = n.children[childIndex(n.keys, key)]
	}
	return nil, false, nil
}

func scanFrom(r pageReader, id int64, fn func(k, v []byte) bool) (bool, error) {
	if id == nilPage {
		return true, nil
	}
	n, err := loadNode(r, id)
	if err != nil {
		return false, err
	}
	if n.leaf {
		for _, e := range n.entries {
			if !fn(e.key, e.val) {
				return false, nil
			}
		}
		return true, nil
	}
	for _, c := range n.children {
		cont, err := scanFrom(r, c, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// --- operations ----------------------------------------------------------------

// Get returns the value stored under key, or (nil, false). The read runs
// against a snapshot, so it never blocks behind a writer's descent.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	s := t.Snapshot()
	defer s.Close()
	return s.Get(key)
}

// childIndex returns the child slot for key: the number of separators <= key.
func childIndex(keys [][]byte, key []byte) int {
	i := 0
	for i < len(keys) && bytes.Compare(key, keys[i]) >= 0 {
		i++
	}
	return i
}

// Put inserts or replaces key -> val.
func (t *BTree) Put(key, val []byte) error {
	_, _, err := t.PutEx(key, val)
	return err
}

// PutEx inserts or replaces key -> val and reports the previous value (and
// whether one existed) so callers can undo the operation exactly.
func (t *BTree) PutEx(key, val []byte) (prev []byte, existed bool, err error) {
	if len(key) == 0 {
		return nil, false, fmt.Errorf("stegdb: empty key")
	}
	if len(key)+len(val) > MaxEntry {
		return nil, false, fmt.Errorf("stegdb: entry %d bytes exceeds max %d", len(key)+len(val), MaxEntry)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root() == nilPage {
		id, err := t.pg.AllocPage()
		if err != nil {
			return nil, false, err
		}
		if err := t.store(id, &node{leaf: true, entries: []kv{{key: key, val: val}}}); err != nil {
			return nil, false, err
		}
		t.setRoot(id)
		return nil, false, nil
	}
	var res putResult
	splitKey, rightID, err := t.insert(t.root(), key, val, &res)
	if err != nil {
		return nil, false, err
	}
	if rightID == nilPage {
		return res.prev, res.existed, nil
	}
	// Root split: grow the tree by one level.
	newRoot, err := t.pg.AllocPage()
	if err != nil {
		return nil, false, err
	}
	rn := &node{keys: [][]byte{splitKey}, children: []int64{t.root(), rightID}}
	if err := t.store(newRoot, rn); err != nil {
		return nil, false, err
	}
	t.setRoot(newRoot)
	return res.prev, res.existed, nil
}

// putResult carries the replaced value out of the recursive insert.
type putResult struct {
	prev    []byte
	existed bool
}

// insert descends into page id; on split it returns the promoted key and the
// new right sibling's page id.
func (t *BTree) insert(id int64, key, val []byte, res *putResult) ([]byte, int64, error) {
	n, err := t.load(id)
	if err != nil {
		return nil, nilPage, err
	}
	if n.leaf {
		pos := 0
		for pos < len(n.entries) && bytes.Compare(n.entries[pos].key, key) < 0 {
			pos++
		}
		if pos < len(n.entries) && bytes.Equal(n.entries[pos].key, key) {
			res.prev = append([]byte(nil), n.entries[pos].val...)
			res.existed = true
			n.entries[pos].val = val
		} else {
			n.entries = append(n.entries, kv{})
			copy(n.entries[pos+1:], n.entries[pos:])
			n.entries[pos] = kv{key: key, val: val}
		}
	} else {
		ci := childIndex(n.keys, key)
		splitKey, rightID, err := t.insert(n.children[ci], key, val, res)
		if err != nil {
			return nil, nilPage, err
		}
		if rightID != nilPage {
			n.keys = append(n.keys, nil)
			copy(n.keys[ci+1:], n.keys[ci:])
			n.keys[ci] = splitKey
			n.children = append(n.children, nilPage)
			copy(n.children[ci+2:], n.children[ci+1:])
			n.children[ci+1] = rightID
		}
	}
	if n.encodedSize() <= PageSize {
		return nil, nilPage, t.store(id, n)
	}
	return t.split(id, n)
}

// split divides an overflowing node roughly in half by encoded size, keeps
// the left half in place and returns the promoted separator plus the new
// right page.
func (t *BTree) split(id int64, n *node) ([]byte, int64, error) {
	rightID, err := t.pg.AllocPage()
	if err != nil {
		return nil, nilPage, err
	}
	if n.leaf {
		mid := splitPointLeaf(n.entries)
		right := &node{leaf: true, entries: append([]kv(nil), n.entries[mid:]...)}
		n.entries = n.entries[:mid]
		if err := t.store(id, n); err != nil {
			return nil, nilPage, err
		}
		if err := t.store(rightID, right); err != nil {
			return nil, nilPage, err
		}
		// Copy-up: the separator is the right leaf's first key.
		sep := append([]byte(nil), right.entries[0].key...)
		return sep, rightID, nil
	}
	mid := len(n.keys) / 2
	sep := append([]byte(nil), n.keys[mid]...)
	right := &node{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]int64(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.store(id, n); err != nil {
		return nil, nilPage, err
	}
	if err := t.store(rightID, right); err != nil {
		return nil, nilPage, err
	}
	return sep, rightID, nil
}

// splitPointLeaf finds the entry index closest to half the encoded size.
func splitPointLeaf(entries []kv) int {
	total := 0
	for _, e := range entries {
		total += 4 + len(e.key) + len(e.val)
	}
	acc := 0
	for i, e := range entries {
		acc += 4 + len(e.key) + len(e.val)
		if acc*2 >= total {
			if i+1 >= len(entries) {
				return len(entries) - 1
			}
			return i + 1
		}
	}
	return len(entries) / 2
}

// Delete removes key if present, reporting whether it was found. Pages are
// not rebalanced; an emptied root leaf resets the tree.
func (t *BTree) Delete(key []byte) (bool, error) {
	_, found, err := t.DeleteEx(key)
	return found, err
}

// DeleteEx removes key and reports the removed value, so callers can undo
// the deletion exactly.
func (t *BTree) DeleteEx(key []byte) (prev []byte, found bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.root()
	if id == nilPage {
		return nil, false, nil
	}
	depth := 0
	for {
		n, err := t.load(id)
		if err != nil {
			return nil, false, err
		}
		if n.leaf {
			for i, e := range n.entries {
				if bytes.Equal(e.key, key) {
					prev = append([]byte(nil), e.val...)
					n.entries = append(n.entries[:i], n.entries[i+1:]...)
					if err := t.store(id, n); err != nil {
						return nil, false, err
					}
					if len(n.entries) == 0 && depth == 0 {
						if err := t.pg.FreePage(id); err != nil {
							return nil, false, err
						}
						t.setRoot(nilPage)
					}
					return prev, true, nil
				}
			}
			return nil, false, nil
		}
		depth++
		id = n.children[childIndex(n.keys, key)]
	}
}

// Scan visits every key/value pair in key order, reading from a snapshot so
// concurrent writers are neither blocked nor observed mid-operation. fn
// returning false stops the scan early.
func (t *BTree) Scan(fn func(key, val []byte) bool) error {
	s := t.Snapshot()
	defer s.Close()
	return s.Scan(fn)
}

// Height returns the tree height (0 = empty).
func (t *BTree) Height() (int, error) {
	s := t.Snapshot()
	defer s.Close()
	h := 0
	id := s.root
	for id != nilPage {
		h++
		n, err := loadNode(s.s, id)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			break
		}
		id = n.children[0]
	}
	return h, nil
}
