package stegdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// BTree is a B-link tree (Lehman-Yao) over a Pager with variable-length
// byte-string keys and values, kept fully inside hidden pages. Deletions are
// simple removals (no eager rebalancing): pages may run underfull, which
// costs space, not correctness — the trade the original paper's DBMS
// direction also faces, since merging pages changes the allocation picture
// an intruder sees.
//
// Concurrency: every node carries a right-sibling pointer and a high key,
// and a split writes the new right sibling BEFORE the shrunken left half.
// Any prefix of the write sequence is therefore a consistent tree: a reader
// (or a pinned snapshot) that lands on a node whose range has moved simply
// follows the right link. That single invariant buys all three properties
// the package needs:
//
//   - Writers into disjoint subtrees proceed in parallel. A writer descends
//     latch-free, then holds at most two per-page tree latches (hand over
//     hand, moving right) while it modifies a node, so Put/Delete on
//     different leaves never serialize against each other.
//   - Readers are latch-free. Get/Scan move right by high key and never
//     block behind a writer's descent.
//   - Snapshots need no tree lock at all. BeginSnapshot pins an epoch and
//     the meta page atomically; every page pointer a snapshot can follow
//     leads to content written before the pin (split ordering), so splits
//     in flight are invisible to it.
//
// The tree never frees pages: an emptied leaf stays in place (reachable,
// zero entries) so no snapshot or concurrent descent can ever chase a right
// link into a recycled page. Space is reclaimed only by dropping the table.
type BTree struct {
	pg      *Pager
	latches *treeLatches

	// rootMu serializes root growth (and first-root creation): the check
	// "is this node still the root?" and the swap to a taller root must be
	// atomic. It is never held together with a tree latch.
	// lockcheck:level 35 stegdb/rootMu
	rootMu sync.Mutex
}

// MaxEntry bounds key+value length. The bound keeps every split half
// encodable: a post-split node holds at least one max-size entry, a
// separator-length high key and the 22-byte fixed header, and the split
// point can overshoot the byte midpoint by one max-size entry, so the worst
// half is nodeHdr + MaxEntry (high key) + T/2 + (4+MaxEntry) bytes with
// T <= PageSize + (4+MaxEntry); MaxEntry = 768 keeps that under PageSize.
const MaxEntry = 768

const (
	nodeHdr      = 14 // type(1) + level(1) + nkeys(2) + right(8) + hklen(2)
	nodeLeaf     = 1
	nodeInternal = 2
)

// kv is one leaf entry.
type kv struct {
	key, val []byte
}

// node is the in-memory form of a B-link tree page.
type node struct {
	leaf  bool
	level uint8  // 0 = leaf, parents count up; the root is the highest level
	right int64  // right sibling at the same level (nilPage = rightmost)
	high  []byte // exclusive upper bound of this node's range (nil = +inf)

	entries  []kv     // leaf: key/value pairs, sorted
	keys     [][]byte // internal: separator keys, sorted
	children []int64  // internal: len(keys)+1 child pages
}

// NewBTree opens the tree rooted in the pager's meta (creating an empty
// tree if none exists).
func NewBTree(pg *Pager) *BTree { return &BTree{pg: pg, latches: newTreeLatches()} }

func (t *BTree) root() int64 { return t.pg.metaField(metaBTreeRoot) }

func (t *BTree) setRoot(id int64) { t.pg.setMetaField(metaBTreeRoot, id) }

// --- per-page tree latches ----------------------------------------------------

// treeLatches hands out one exclusive latch per tree page, so structural
// writers on distinct pages proceed in parallel. Entries are
// reference-counted and reclaimed when the last holder releases, keeping
// the table proportional to the number of pages being written, not to the
// tree size. Writers hold at most two latches at once, always acquiring
// rightward (latch coupling while moving right), so the same-class nesting
// can never cycle.
type treeLatches struct {
	// mu is deliberately unleveled: it guards only the map and freelist, is
	// held for a few map operations, and never wraps another acquisition.
	mu sync.Mutex
	// lockcheck:guardedby mu
	m map[int64]*treeLatch
	// lockcheck:guardedby mu
	free []*treeLatch
}

// treeLatchFreelistCap bounds the reclaimed-entry freelist.
const treeLatchFreelistCap = 64

type treeLatch struct {
	refs int
	// lockcheck:level 20 stegdb/treelatch multi
	mu sync.Mutex
}

func newTreeLatches() *treeLatches {
	return &treeLatches{m: make(map[int64]*treeLatch)}
}

// lock latches tree page id exclusively. Callers may hold one other tree
// latch — only ever the left sibling's (rightward coupling).
// lockcheck:acquire stegdb/treelatch
func (t *treeLatches) lock(id int64) {
	t.mu.Lock()
	l, ok := t.m[id]
	if !ok {
		if n := len(t.free); n > 0 {
			l = t.free[n-1]
			t.free[n-1] = nil
			t.free = t.free[:n-1]
		} else {
			l = &treeLatch{}
		}
		t.m[id] = l
	}
	l.refs++
	t.mu.Unlock()
	l.mu.Lock()
}

// unlock releases the latch on page id, reclaiming the entry when the last
// holder is gone (waiters take their reference before blocking, so zero
// references means quiescent).
// lockcheck:release stegdb/treelatch
func (t *treeLatches) unlock(id int64) {
	t.mu.Lock()
	l := t.m[id]
	t.mu.Unlock()
	l.mu.Unlock()
	t.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(t.m, id)
		if len(t.free) < treeLatchFreelistCap {
			t.free = append(t.free, l)
		}
	}
	t.mu.Unlock()
}

// --- node codec --------------------------------------------------------------

func encodeNode(n *node, buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	if n.leaf {
		buf[0] = nodeLeaf
	} else {
		buf[0] = nodeInternal
	}
	buf[1] = n.level
	count := len(n.entries)
	if !n.leaf {
		count = len(n.keys)
	}
	binary.BigEndian.PutUint16(buf[2:], uint16(count))
	binary.BigEndian.PutUint64(buf[4:], uint64(n.right))
	binary.BigEndian.PutUint16(buf[12:], uint16(len(n.high)))
	off := nodeHdr
	if off+len(n.high) > PageSize {
		return fmt.Errorf("stegdb: high key overflow during encode")
	}
	copy(buf[off:], n.high)
	off += len(n.high)
	if n.leaf {
		for _, e := range n.entries {
			need := 4 + len(e.key) + len(e.val)
			if off+need > PageSize {
				return fmt.Errorf("stegdb: leaf overflow during encode (%d entries)", len(n.entries))
			}
			binary.BigEndian.PutUint16(buf[off:], uint16(len(e.key)))
			binary.BigEndian.PutUint16(buf[off+2:], uint16(len(e.val)))
			off += 4
			copy(buf[off:], e.key)
			off += len(e.key)
			copy(buf[off:], e.val)
			off += len(e.val)
		}
		return nil
	}
	if off+8 > PageSize {
		return fmt.Errorf("stegdb: internal overflow during encode")
	}
	binary.BigEndian.PutUint64(buf[off:], uint64(n.children[0]))
	off += 8
	for i, k := range n.keys {
		need := 2 + len(k) + 8
		if off+need > PageSize {
			return fmt.Errorf("stegdb: internal overflow during encode (%d keys)", len(n.keys))
		}
		binary.BigEndian.PutUint16(buf[off:], uint16(len(k)))
		off += 2
		copy(buf[off:], k)
		off += len(k)
		binary.BigEndian.PutUint64(buf[off:], uint64(n.children[i+1]))
		off += 8
	}
	return nil
}

func decodeNode(buf []byte) (*node, error) {
	n := &node{level: buf[1]}
	count := int(binary.BigEndian.Uint16(buf[2:]))
	n.right = int64(binary.BigEndian.Uint64(buf[4:]))
	hklen := int(binary.BigEndian.Uint16(buf[12:]))
	off := nodeHdr
	if off+hklen > PageSize {
		return nil, fmt.Errorf("stegdb: corrupt node header (high key)")
	}
	if hklen > 0 {
		n.high = append([]byte(nil), buf[off:off+hklen]...)
	}
	off += hklen
	switch buf[0] {
	case nodeLeaf:
		n.leaf = true
		for i := 0; i < count; i++ {
			if off+4 > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt leaf page")
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			vl := int(binary.BigEndian.Uint16(buf[off+2:]))
			off += 4
			if off+kl+vl > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt leaf entry")
			}
			e := kv{
				key: append([]byte(nil), buf[off:off+kl]...),
				val: append([]byte(nil), buf[off+kl:off+kl+vl]...),
			}
			off += kl + vl
			n.entries = append(n.entries, e)
		}
	case nodeInternal:
		if off+8 > PageSize {
			return nil, fmt.Errorf("stegdb: corrupt internal page")
		}
		n.children = append(n.children, int64(binary.BigEndian.Uint64(buf[off:])))
		off += 8
		for i := 0; i < count; i++ {
			if off+2 > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt internal page")
			}
			kl := int(binary.BigEndian.Uint16(buf[off:]))
			off += 2
			if off+kl+8 > PageSize {
				return nil, fmt.Errorf("stegdb: corrupt internal entry")
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			off += kl
			n.children = append(n.children, int64(binary.BigEndian.Uint64(buf[off:])))
			off += 8
		}
	default:
		return nil, fmt.Errorf("stegdb: unknown node type %d", buf[0])
	}
	return n, nil
}

// encodedSize returns the byte size the node needs.
func (n *node) encodedSize() int {
	size := nodeHdr + len(n.high)
	if n.leaf {
		for _, e := range n.entries {
			size += 4 + len(e.key) + len(e.val)
		}
		return size
	}
	size += 8
	for _, k := range n.keys {
		size += 2 + len(k) + 8
	}
	return size
}

// pageReader is the read side shared by the live pager and snapshots, so
// one descent/scan implementation serves both.
type pageReader interface {
	ReadPage(id int64, buf []byte) error
}

func loadNode(r pageReader, id int64) (*node, error) {
	buf := make([]byte, PageSize)
	if err := r.ReadPage(id, buf); err != nil {
		return nil, err
	}
	return decodeNode(buf)
}

func (t *BTree) load(id int64) (*node, error) { return loadNode(t.pg, id) }

func (t *BTree) store(id int64, n *node) error {
	buf := make([]byte, PageSize)
	if err := encodeNode(n, buf); err != nil {
		return err
	}
	return t.pg.WritePage(id, buf)
}

// covers reports whether key falls inside n's range (move right otherwise).
func (n *node) covers(key []byte) bool {
	return n.high == nil || bytes.Compare(key, n.high) < 0
}

// --- snapshot reads ----------------------------------------------------------

// TreeSnapshot is a point-in-time read-only view of the tree: the root and
// every page are frozen at the snapshot's epoch. Close it when done.
type TreeSnapshot struct {
	s    *Snapshot
	root int64
}

// Snapshot pins the tree at the current instant. No tree lock is needed:
// BeginSnapshot pins the epoch and the meta page atomically, and the
// B-link write ordering (right sibling before left half before parent)
// guarantees every page pointer reachable from the pinned root leads to
// content written before the pin. Reads through the snapshot never block
// writers.
func (t *BTree) Snapshot() *TreeSnapshot {
	s := t.pg.BeginSnapshot()
	return &TreeSnapshot{s: s, root: s.BTreeRoot()}
}

// Close releases the snapshot's pinned page versions.
func (ts *TreeSnapshot) Close() { ts.s.Close() }

// Rows returns the table row counter as of the snapshot.
func (ts *TreeSnapshot) Rows() int64 { return ts.s.RowsAtSnapshot() }

// Get returns the value stored under key as of the snapshot.
func (ts *TreeSnapshot) Get(key []byte) ([]byte, bool, error) {
	return getFrom(ts.s, ts.root, key)
}

// Scan visits every key/value pair in key order as of the snapshot.
func (ts *TreeSnapshot) Scan(fn func(key, val []byte) bool) error {
	_, err := rangeFrom(ts.s, ts.root, nil, nil, fn)
	return err
}

// Range visits pairs with lo <= key < hi in key order as of the snapshot
// (nil bounds are open). The B-link leaf chain makes this a seek plus a
// bounded walk, not a full scan.
func (ts *TreeSnapshot) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	_, err := rangeFrom(ts.s, ts.root, lo, hi, fn)
	return err
}

func getFrom(r pageReader, id int64, key []byte) ([]byte, bool, error) {
	for id != nilPage {
		n, err := loadNode(r, id)
		if err != nil {
			return nil, false, err
		}
		if !n.covers(key) {
			id = n.right
			continue
		}
		if n.leaf {
			for _, e := range n.entries {
				if bytes.Equal(e.key, key) {
					return e.val, true, nil
				}
			}
			return nil, false, nil
		}
		id = n.children[childIndex(n.keys, key)]
	}
	return nil, false, nil
}

// rangeFrom walks pairs with lo <= key < hi (nil = open) in order: descend
// toward lo, then follow the leaf chain rightward until hi.
func rangeFrom(r pageReader, root int64, lo, hi []byte, fn func(k, v []byte) bool) (bool, error) {
	if root == nilPage {
		return true, nil
	}
	id := root
	var n *node
	for {
		var err error
		n, err = loadNode(r, id)
		if err != nil {
			return false, err
		}
		if lo != nil && !n.covers(lo) {
			id = n.right
			continue
		}
		if n.leaf {
			break
		}
		if lo == nil {
			id = n.children[0]
		} else {
			id = n.children[childIndex(n.keys, lo)]
		}
	}
	for {
		for _, e := range n.entries {
			if lo != nil && bytes.Compare(e.key, lo) < 0 {
				continue
			}
			if hi != nil && bytes.Compare(e.key, hi) >= 0 {
				return true, nil
			}
			if !fn(e.key, e.val) {
				return false, nil
			}
		}
		if n.right == nilPage {
			return true, nil
		}
		var err error
		n, err = loadNode(r, n.right)
		if err != nil {
			return false, err
		}
	}
}

// treeIter is a pull iterator over one snapshot's [lo, hi) range, used by
// partitioned tables to k-way-merge per-partition snapshots into one
// ordered stream. done() true means exhausted; key()/val() are valid only
// while !done().
type treeIter struct {
	r        pageReader
	cur      *node
	idx      int
	hi       []byte
	finished bool
}

// iter positions a new iterator at the first key >= lo of the snapshot.
func (ts *TreeSnapshot) iter(lo, hi []byte) (*treeIter, error) {
	it := &treeIter{r: ts.s, hi: hi}
	if ts.root == nilPage {
		it.finished = true
		return it, nil
	}
	id := ts.root
	for {
		n, err := loadNode(it.r, id)
		if err != nil {
			return nil, err
		}
		if lo != nil && !n.covers(lo) {
			id = n.right
			continue
		}
		if n.leaf {
			it.cur = n
			break
		}
		if lo == nil {
			id = n.children[0]
		} else {
			id = n.children[childIndex(n.keys, lo)]
		}
	}
	for it.idx < len(it.cur.entries) && lo != nil && bytes.Compare(it.cur.entries[it.idx].key, lo) < 0 {
		it.idx++
	}
	return it, it.settle()
}

// settle advances past exhausted leaves and enforces the hi bound.
func (it *treeIter) settle() error {
	for !it.finished {
		if it.idx < len(it.cur.entries) {
			if it.hi != nil && bytes.Compare(it.cur.entries[it.idx].key, it.hi) >= 0 {
				it.finished = true
			}
			return nil
		}
		if it.cur.right == nilPage {
			it.finished = true
			return nil
		}
		n, err := loadNode(it.r, it.cur.right)
		if err != nil {
			return err
		}
		it.cur, it.idx = n, 0
	}
	return nil
}

func (it *treeIter) done() bool  { return it.finished }
func (it *treeIter) key() []byte { return it.cur.entries[it.idx].key }
func (it *treeIter) val() []byte { return it.cur.entries[it.idx].val }

// next advances to the following key.
func (it *treeIter) next() error {
	it.idx++
	return it.settle()
}

// --- operations ----------------------------------------------------------------

// Get returns the value stored under key, or (nil, false). The read is
// latch-free: it descends the live tree moving right past in-flight splits,
// never blocking behind a writer.
func (t *BTree) Get(key []byte) ([]byte, bool, error) {
	return getFrom(t.pg, t.root(), key)
}

// childIndex returns the child slot for key: the number of separators <= key.
func childIndex(keys [][]byte, key []byte) int {
	i := 0
	for i < len(keys) && bytes.Compare(key, keys[i]) >= 0 {
		i++
	}
	return i
}

// Put inserts or replaces key -> val.
func (t *BTree) Put(key, val []byte) error {
	_, _, err := t.PutEx(key, val)
	return err
}

// putResult carries the replaced value out of the leaf apply step.
type putResult struct {
	prev    []byte
	existed bool
}

// PutEx inserts or replaces key -> val and reports the previous value (and
// whether one existed) so callers can undo the operation exactly.
//
// Failure atomicity: the leaf store is the commit point. Every error before
// it leaves the tree untouched; an error after it (a failed ancestor
// separator insert) triggers an exact undo of the leaf change before the
// error returns, so a failed PutEx always leaves the table at its prior
// state. Completed splits are kept either way — a B-link tree is consistent
// with or without the parent pointer, since searches reach the new sibling
// through the right link.
func (t *BTree) PutEx(key, val []byte) (prev []byte, existed bool, err error) {
	if len(key) == 0 {
		return nil, false, fmt.Errorf("stegdb: empty key")
	}
	if len(key)+len(val) > MaxEntry {
		return nil, false, fmt.Errorf("stegdb: entry %d bytes exceeds max %d", len(key)+len(val), MaxEntry)
	}
	rootID, err := t.ensureRoot()
	if err != nil {
		return nil, false, err
	}
	stack, leafID, err := descendToLeaf(t.pg, rootID, key)
	if err != nil {
		return nil, false, err
	}
	id, n, err := t.lockNodeForKey(leafID, key)
	if err != nil {
		t.latches.unlock(id)
		return nil, false, err
	}
	var res putResult
	pos := 0
	for pos < len(n.entries) && bytes.Compare(n.entries[pos].key, key) < 0 {
		pos++
	}
	if pos < len(n.entries) && bytes.Equal(n.entries[pos].key, key) {
		res.prev = append([]byte(nil), n.entries[pos].val...)
		res.existed = true
		n.entries[pos].val = val
	} else {
		n.entries = append(n.entries, kv{})
		copy(n.entries[pos+1:], n.entries[pos:])
		n.entries[pos] = kv{key: key, val: val}
	}
	if n.encodedSize() <= PageSize {
		err := t.store(id, n)
		t.latches.unlock(id)
		return res.prev, res.existed, err
	}
	sep, rightID, level, serr := t.splitStore(id, n)
	t.latches.unlock(id)
	if serr != nil {
		return nil, false, serr
	}
	if err := t.insertSepChain(stack, sep, rightID, id, level); err != nil {
		if uerr := t.undoLeafChange(key, res); uerr != nil {
			return nil, false, errors.Join(err, fmt.Errorf("stegdb: put rollback failed: %w", uerr))
		}
		return nil, false, err
	}
	return res.prev, res.existed, nil
}

// ensureRoot returns the root page, creating an empty leaf root under
// rootMu if the tree is empty.
func (t *BTree) ensureRoot() (int64, error) {
	if id := t.root(); id != nilPage {
		return id, nil
	}
	t.rootMu.Lock()
	defer t.rootMu.Unlock()
	if id := t.root(); id != nilPage {
		return id, nil
	}
	id, err := t.pg.AllocPage()
	if err != nil {
		return 0, err
	}
	if err := t.store(id, &node{leaf: true}); err != nil {
		return 0, err
	}
	t.setRoot(id)
	return id, nil
}

// descendToLeaf walks from rootID to the leaf owning key without latches,
// recording one ancestor per level (the rightmost node visited at that
// level) for the ascent after a split. Stale entries are fine: nodes only
// ever shed range to the right, and the ascent re-finds the exact parent by
// moving right under its latch.
func descendToLeaf(r pageReader, rootID int64, key []byte) (stack []int64, leafID int64, err error) {
	id := rootID
	for {
		n, err := loadNode(r, id)
		if err != nil {
			return nil, 0, err
		}
		if !n.covers(key) {
			id = n.right
			continue
		}
		if n.leaf {
			return stack, id, nil
		}
		stack = append(stack, id)
		id = n.children[childIndex(n.keys, key)]
	}
}

// lockNodeForKey latches the node that currently owns key's range in
// start's level chain: latch start, re-read, and move right (latch
// coupling) while key is at or beyond the node's high key. On success the
// latch on the returned id is held; on error it is too — the caller always
// unlocks the returned id.
// lockcheck:acquire stegdb/treelatch
func (t *BTree) lockNodeForKey(start int64, key []byte) (int64, *node, error) {
	id := start
	t.latches.lock(id)
	for {
		n, err := t.load(id)
		if err != nil {
			return id, nil, err
		}
		if n.covers(key) {
			return id, n, nil
		}
		next := n.right
		t.latches.lock(next)
		t.latches.unlock(id)
		id = next
	}
}

// splitStore divides the latched, overflowing node in two. Write order is
// the B-link commit protocol: the new right sibling is stored first (it is
// unreachable until the left half's right pointer lands), then the shrunken
// left half — the moment the left store succeeds the split is committed and
// every key stays reachable through the right link. An error before the
// left store leaves the tree unchanged (at worst one leaked free page).
// The caller holds the node's tree latch.
// lockcheck:holds stegdb/treelatch
func (t *BTree) splitStore(id int64, n *node) (sep []byte, rightID int64, level uint8, err error) {
	rightID, err = t.pg.AllocPage()
	if err != nil {
		return nil, nilPage, 0, err
	}
	right := &node{leaf: n.leaf, level: n.level, right: n.right, high: n.high}
	if n.leaf {
		mid := splitPointLeaf(n.entries)
		right.entries = append([]kv(nil), n.entries[mid:]...)
		sep = append([]byte(nil), n.entries[mid].key...)
		n.entries = n.entries[:mid]
	} else {
		mid := splitPointInternal(n.keys)
		sep = append([]byte(nil), n.keys[mid]...)
		right.keys = append([][]byte(nil), n.keys[mid+1:]...)
		right.children = append([]int64(nil), n.children[mid+1:]...)
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
	}
	n.right = rightID
	n.high = sep
	if err := t.store(rightID, right); err != nil {
		return nil, nilPage, 0, err
	}
	if err := t.store(id, n); err != nil {
		return nil, nilPage, 0, err
	}
	return sep, rightID, n.level, nil
}

// insertSepChain walks back up the ancestor stack inserting the separator
// produced by a split, splitting ancestors in turn as needed. When the
// stack runs out the tree grows a new root (or, if another writer grew it
// first, the insert re-descends to the right level).
func (t *BTree) insertSepChain(stack []int64, sep []byte, rightID, leftID int64, level uint8) error {
	for {
		var start int64
		if len(stack) > 0 {
			start = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		} else {
			grown, id, err := t.growOrFindParent(leftID, sep, rightID, level)
			if err != nil || grown {
				return err
			}
			start = id
		}
		id, n, err := t.lockNodeForKey(start, sep)
		if err != nil {
			t.latches.unlock(id)
			return err
		}
		ci := childIndex(n.keys, sep)
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = sep
		n.children = append(n.children, nilPage)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = rightID
		if n.encodedSize() <= PageSize {
			err := t.store(id, n)
			t.latches.unlock(id)
			return err
		}
		nsep, nright, lvl, err := t.splitStore(id, n)
		t.latches.unlock(id)
		if err != nil {
			return err
		}
		sep, rightID, leftID, level = nsep, nright, id, lvl
	}
}

// growOrFindParent handles a split that exhausted the ancestor stack: if
// the split node is still the root, grow the tree by one level; otherwise
// another writer grew it first and the separator belongs in the (now
// existing) level above — find it.
func (t *BTree) growOrFindParent(leftID int64, sep []byte, rightID int64, level uint8) (grown bool, parent int64, err error) {
	t.rootMu.Lock()
	if t.root() == leftID {
		defer t.rootMu.Unlock()
		newRoot, err := t.pg.AllocPage()
		if err != nil {
			return false, 0, err
		}
		rn := &node{
			level:    level + 1,
			keys:     [][]byte{append([]byte(nil), sep...)},
			children: []int64{leftID, rightID},
		}
		if err := t.store(newRoot, rn); err != nil {
			return false, 0, err
		}
		t.setRoot(newRoot)
		return true, 0, nil
	}
	t.rootMu.Unlock()
	id, err := t.findAtLevel(sep, level+1)
	return false, id, err
}

// findAtLevel descends the live tree to the node owning key at the given
// level (used after a concurrent root growth stole the ascent's target).
func (t *BTree) findAtLevel(key []byte, level uint8) (int64, error) {
	id := t.root()
	for {
		n, err := t.load(id)
		if err != nil {
			return 0, err
		}
		if !n.covers(key) {
			id = n.right
			continue
		}
		if n.level == level {
			return id, nil
		}
		if n.leaf || n.level < level {
			return 0, fmt.Errorf("stegdb: btree level %d unreachable from root", level)
		}
		id = n.children[childIndex(n.keys, key)]
	}
}

// undoLeafChange reverses a committed leaf mutation after a later step of
// the same Put failed, restoring the exact prior row state.
func (t *BTree) undoLeafChange(key []byte, res putResult) error {
	_, leafID, err := descendToLeaf(t.pg, t.root(), key)
	if err != nil {
		return err
	}
	id, n, err := t.lockNodeForKey(leafID, key)
	if err != nil {
		t.latches.unlock(id)
		return err
	}
	defer t.latches.unlock(id)
	for i, e := range n.entries {
		if bytes.Equal(e.key, key) {
			if res.existed {
				n.entries[i].val = res.prev
			} else {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			}
			return t.store(id, n)
		}
	}
	return fmt.Errorf("stegdb: undo lost key %q", key)
}

// splitPointLeaf finds the entry index closest to half the encoded size.
func splitPointLeaf(entries []kv) int {
	total := 0
	for _, e := range entries {
		total += 4 + len(e.key) + len(e.val)
	}
	acc := 0
	for i, e := range entries {
		acc += 4 + len(e.key) + len(e.val)
		if acc*2 >= total {
			if i+1 >= len(entries) {
				return len(entries) - 1
			}
			return i + 1
		}
	}
	return len(entries) / 2
}

// splitPointInternal picks the promoted-key index balancing the two halves
// by encoded byte size (a count split can overfill one half when key sizes
// are skewed).
func splitPointInternal(keys [][]byte) int {
	if len(keys) < 3 {
		return len(keys) / 2
	}
	total := 0
	for _, k := range keys {
		total += 10 + len(k)
	}
	acc := 0
	for i, k := range keys {
		acc += 10 + len(k)
		if acc*2 >= total {
			m := i + 1
			if m > len(keys)-2 {
				m = len(keys) - 2
			}
			return m
		}
	}
	return len(keys) / 2
}

// Delete removes key if present, reporting whether it was found. Pages are
// not rebalanced or freed; an emptied leaf stays in place so concurrent
// descents and snapshots never chase a link into a recycled page.
func (t *BTree) Delete(key []byte) (bool, error) {
	_, found, err := t.DeleteEx(key)
	return found, err
}

// DeleteEx removes key and reports the removed value, so callers can undo
// the deletion exactly. A failed DeleteEx leaves the tree untouched (the
// single leaf store is the only mutation).
func (t *BTree) DeleteEx(key []byte) (prev []byte, found bool, err error) {
	rootID := t.root()
	if rootID == nilPage {
		return nil, false, nil
	}
	_, leafID, err := descendToLeaf(t.pg, rootID, key)
	if err != nil {
		return nil, false, err
	}
	id, n, err := t.lockNodeForKey(leafID, key)
	if err != nil {
		t.latches.unlock(id)
		return nil, false, err
	}
	defer t.latches.unlock(id)
	for i, e := range n.entries {
		if bytes.Equal(e.key, key) {
			prev = append([]byte(nil), e.val...)
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			if err := t.store(id, n); err != nil {
				return nil, false, err
			}
			return prev, true, nil
		}
	}
	return nil, false, nil
}

// Scan visits every key/value pair in key order, reading from a snapshot so
// concurrent writers are neither blocked nor observed mid-operation. fn
// returning false stops the scan early.
func (t *BTree) Scan(fn func(key, val []byte) bool) error {
	s := t.Snapshot()
	defer s.Close()
	return s.Scan(fn)
}

// Height returns the tree height (0 = empty).
func (t *BTree) Height() (int, error) {
	s := t.Snapshot()
	defer s.Close()
	if s.root == nilPage {
		return 0, nil
	}
	n, err := loadNode(s.s, s.root)
	if err != nil {
		return 0, err
	}
	return int(n.level) + 1, nil
}
