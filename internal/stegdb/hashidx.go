package stegdb

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// HashIndex is a bucket-chain hash index over the pager: a directory page
// of bucket head pointers, each bucket a chain of pages holding entries.
// Lookups cost one directory read plus the chain walk — O(1) expected —
// which is the access pattern the paper's future work wants to preserve
// while keeping every page hidden.
//
// Concurrency: buckets are striped over nStripes RWMutexes keyed by
// bucketOf, so point ops on distinct buckets run fully in parallel; Get
// takes its stripe shared. The directory page holds every bucket head, and
// WritePage replaces whole pages — so head updates (chain prepend/unlink)
// re-read and rewrite the directory under dirMu to avoid losing a
// concurrent bucket's update. Lock order: stripe → dirMu → pager.
type HashIndex struct {
	pg       *Pager
	nBuckets int
	// Only one stripe is ever held at a time (Count walks them one by one),
	// so the class is single-hold despite being an array of locks.
	// lockcheck:level 25 stegdb/stripe
	stripes [nStripes]sync.RWMutex
	// lockcheck:level 30 stegdb/dirMu
	dirMu sync.Mutex
}

// nStripes is the bucket lock striping factor.
const nStripes = 64

// hash bucket page layout: next(8) nentries(2) then entries
// [klen u16][vlen u16][key][val]...
const bucketHdr = 10

// dirCapacity is how many bucket heads fit in the directory page.
const dirCapacity = (PageSize - 8) / 8 // count(8) + heads

// NewHashIndex opens (or initializes) the index stored under the pager's
// hash root. nBuckets is fixed at creation; reopening ignores the argument.
func NewHashIndex(pg *Pager, nBuckets int) (*HashIndex, error) {
	if root := pg.metaField(metaHashRoot); root != nilPage {
		buf := make([]byte, PageSize)
		if err := pg.ReadPage(root, buf); err != nil {
			return nil, err
		}
		return &HashIndex{pg: pg, nBuckets: int(binary.BigEndian.Uint64(buf))}, nil
	}
	if nBuckets <= 0 || nBuckets > dirCapacity {
		return nil, fmt.Errorf("stegdb: nBuckets %d out of (0,%d]", nBuckets, dirCapacity)
	}
	root, err := pg.AllocPage()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, PageSize)
	binary.BigEndian.PutUint64(buf, uint64(nBuckets))
	if err := pg.WritePage(root, buf); err != nil {
		return nil, err
	}
	pg.setMetaField(metaHashRoot, root)
	return &HashIndex{pg: pg, nBuckets: nBuckets}, nil
}

// bucketOf returns the bucket number for a key.
func (h *HashIndex) bucketOf(key []byte) int {
	s := sha256.Sum256(key)
	return int(binary.BigEndian.Uint64(s[:8]) % uint64(h.nBuckets))
}

// lockcheck:returns stegdb/stripe
func (h *HashIndex) stripeFor(bucket int) *sync.RWMutex {
	return &h.stripes[bucket%nStripes]
}

// dir reads the directory page and returns (rootID, buf).
func (h *HashIndex) dir() (int64, []byte, error) {
	root := h.pg.metaField(metaHashRoot)
	buf := make([]byte, PageSize)
	if err := h.pg.ReadPage(root, buf); err != nil {
		return 0, nil, err
	}
	return root, buf, nil
}

// updateHead rewrites one bucket's head pointer with a fresh read-modify-
// write of the directory page under dirMu, so concurrent head updates on
// other buckets are never lost.
func (h *HashIndex) updateHead(bucket int, id int64) error {
	h.dirMu.Lock()
	defer h.dirMu.Unlock()
	root, dirBuf, err := h.dir()
	if err != nil {
		return err
	}
	setHead(dirBuf, bucket, id)
	return h.pg.WritePage(root, dirBuf)
}

func headOf(dirBuf []byte, bucket int) int64 {
	return int64(binary.BigEndian.Uint64(dirBuf[8+bucket*8:]))
}

func setHead(dirBuf []byte, bucket int, id int64) {
	binary.BigEndian.PutUint64(dirBuf[8+bucket*8:], uint64(id))
}

// bucketPage is a decoded chain page.
type bucketPage struct {
	next    int64
	entries []kv
}

// decodeBucket parses a chain page, tolerating corrupt or truncated input
// (bounds are taken from len(buf), never assumed).
func decodeBucket(buf []byte) (*bucketPage, error) {
	if len(buf) < bucketHdr {
		return nil, fmt.Errorf("stegdb: bucket page too short (%d bytes)", len(buf))
	}
	bp := &bucketPage{next: int64(binary.BigEndian.Uint64(buf))}
	n := int(binary.BigEndian.Uint16(buf[8:]))
	off := bucketHdr
	for i := 0; i < n; i++ {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("stegdb: corrupt bucket page")
		}
		kl := int(binary.BigEndian.Uint16(buf[off:]))
		vl := int(binary.BigEndian.Uint16(buf[off+2:]))
		off += 4
		if off+kl+vl > len(buf) {
			return nil, fmt.Errorf("stegdb: corrupt bucket entry")
		}
		bp.entries = append(bp.entries, kv{
			key: append([]byte(nil), buf[off:off+kl]...),
			val: append([]byte(nil), buf[off+kl:off+kl+vl]...),
		})
		off += kl + vl
	}
	return bp, nil
}

func encodeBucket(bp *bucketPage, buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	binary.BigEndian.PutUint64(buf, uint64(bp.next))
	binary.BigEndian.PutUint16(buf[8:], uint16(len(bp.entries)))
	off := bucketHdr
	for _, e := range bp.entries {
		need := 4 + len(e.key) + len(e.val)
		if off+need > PageSize {
			return fmt.Errorf("stegdb: bucket overflow during encode")
		}
		binary.BigEndian.PutUint16(buf[off:], uint16(len(e.key)))
		binary.BigEndian.PutUint16(buf[off+2:], uint16(len(e.val)))
		off += 4
		copy(buf[off:], e.key)
		off += len(e.key)
		copy(buf[off:], e.val)
		off += len(e.val)
	}
	return nil
}

func (bp *bucketPage) size() int {
	s := bucketHdr
	for _, e := range bp.entries {
		s += 4 + len(e.key) + len(e.val)
	}
	return s
}

// Put inserts or replaces key -> val in the index.
func (h *HashIndex) Put(key, val []byte) error {
	if len(key) == 0 {
		return fmt.Errorf("stegdb: empty key")
	}
	if len(key)+len(val) > MaxEntry {
		return fmt.Errorf("stegdb: entry exceeds max %d", MaxEntry)
	}
	bucket := h.bucketOf(key)
	st := h.stripeFor(bucket)
	st.Lock()
	defer st.Unlock()
	for {
		again, err := h.putLocked(bucket, key, val)
		if err != nil || !again {
			return err
		}
		// A replacement grew past its page and was removed; re-run the
		// insert against the updated chain (the stripe lock is still held,
		// so at most one retry happens).
	}
}

// putLocked performs one insert/replace attempt; the caller holds the
// bucket's stripe exclusively. It returns again=true when a grown
// replacement was removed and the insert must be retried.
//
// lockcheck:holds stegdb/stripe
func (h *HashIndex) putLocked(bucket int, key, val []byte) (again bool, err error) {
	_, dirBuf, err := h.dir()
	if err != nil {
		return false, err
	}
	head := headOf(dirBuf, bucket)
	buf := make([]byte, PageSize)
	// Walk the chain once: replace in place if the key exists, and keep the
	// head page's decoded form so a fresh insert needn't re-read it.
	var headBP *bucketPage
	for cur := head; cur != nilPage; {
		if err := h.pg.ReadPage(cur, buf); err != nil {
			return false, err
		}
		bp, err := decodeBucket(buf)
		if err != nil {
			return false, err
		}
		if cur == head {
			headBP = bp
		}
		for i := range bp.entries {
			if bytes.Equal(bp.entries[i].key, key) {
				bp.entries[i].val = val
				if bp.size() <= PageSize {
					if err := encodeBucket(bp, buf); err != nil {
						return false, err
					}
					return false, h.pg.WritePage(cur, buf)
				}
				// Replacement grew past the page: remove here, reinsert.
				bp.entries = append(bp.entries[:i], bp.entries[i+1:]...)
				if err := encodeBucket(bp, buf); err != nil {
					return false, err
				}
				if err := h.pg.WritePage(cur, buf); err != nil {
					return false, err
				}
				return true, nil
			}
		}
		cur = bp.next
	}
	// Fresh insert: reuse the head page decoded during the walk.
	if headBP != nil {
		headBP.entries = append(headBP.entries, kv{key: key, val: val})
		if headBP.size() <= PageSize {
			if err := encodeBucket(headBP, buf); err != nil {
				return false, err
			}
			return false, h.pg.WritePage(head, buf)
		}
	}
	// Head missing or full: prepend a new chain page.
	fresh, err := h.pg.AllocPage()
	if err != nil {
		return false, err
	}
	bp := &bucketPage{next: head, entries: []kv{{key: key, val: val}}}
	if err := encodeBucket(bp, buf); err != nil {
		return false, err
	}
	if err := h.pg.WritePage(fresh, buf); err != nil {
		return false, err
	}
	return false, h.updateHead(bucket, fresh)
}

// Get returns the value stored under key, or (nil, false).
func (h *HashIndex) Get(key []byte) ([]byte, bool, error) {
	bucket := h.bucketOf(key)
	st := h.stripeFor(bucket)
	st.RLock()
	defer st.RUnlock()
	_, dirBuf, err := h.dir()
	if err != nil {
		return nil, false, err
	}
	buf := make([]byte, PageSize)
	for cur := headOf(dirBuf, bucket); cur != nilPage; {
		if err := h.pg.ReadPage(cur, buf); err != nil {
			return nil, false, err
		}
		bp, err := decodeBucket(buf)
		if err != nil {
			return nil, false, err
		}
		for _, e := range bp.entries {
			if bytes.Equal(e.key, key) {
				return e.val, true, nil
			}
		}
		cur = bp.next
	}
	return nil, false, nil
}

// Delete removes key, reporting whether it was present. Emptied chain pages
// are returned to the pager.
func (h *HashIndex) Delete(key []byte) (bool, error) {
	bucket := h.bucketOf(key)
	st := h.stripeFor(bucket)
	st.Lock()
	defer st.Unlock()
	_, dirBuf, err := h.dir()
	if err != nil {
		return false, err
	}
	buf := make([]byte, PageSize)
	prev := nilPage
	for cur := headOf(dirBuf, bucket); cur != nilPage; {
		if err := h.pg.ReadPage(cur, buf); err != nil {
			return false, err
		}
		bp, err := decodeBucket(buf)
		if err != nil {
			return false, err
		}
		for i := range bp.entries {
			if !bytes.Equal(bp.entries[i].key, key) {
				continue
			}
			bp.entries = append(bp.entries[:i], bp.entries[i+1:]...)
			if len(bp.entries) > 0 {
				if err := encodeBucket(bp, buf); err != nil {
					return false, err
				}
				return true, h.pg.WritePage(cur, buf)
			}
			// Unlink the empty page from the chain.
			if prev == nilPage {
				if err := h.updateHead(bucket, bp.next); err != nil {
					return false, err
				}
			} else {
				pbuf := make([]byte, PageSize)
				if err := h.pg.ReadPage(prev, pbuf); err != nil {
					return false, err
				}
				pbp, err := decodeBucket(pbuf)
				if err != nil {
					return false, err
				}
				pbp.next = bp.next
				if err := encodeBucket(pbp, pbuf); err != nil {
					return false, err
				}
				if err := h.pg.WritePage(prev, pbuf); err != nil {
					return false, err
				}
			}
			return true, h.pg.FreePage(cur)
		}
		prev = cur
		cur = bp.next
	}
	return false, nil
}

// Count returns the number of entries in the index by walking every bucket
// chain (Check cross-validation; O(pages)).
func (h *HashIndex) Count() (int64, error) {
	var total int64
	buf := make([]byte, PageSize)
	for b := 0; b < h.nBuckets; b++ {
		st := h.stripeFor(b)
		st.RLock()
		_, dirBuf, err := h.dir()
		if err != nil {
			st.RUnlock()
			return 0, err
		}
		for cur := headOf(dirBuf, b); cur != nilPage; {
			if err := h.pg.ReadPage(cur, buf); err != nil {
				st.RUnlock()
				return 0, err
			}
			bp, err := decodeBucket(buf)
			if err != nil {
				st.RUnlock()
				return 0, err
			}
			total += int64(len(bp.entries))
			cur = bp.next
		}
		st.RUnlock()
	}
	return total, nil
}
