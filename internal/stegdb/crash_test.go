package stegdb

import (
	"fmt"
	"testing"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

// Group-commit crash consistency: a partitioned table's Sync is run with a
// vdisk.CutStore dropping every device write past a cut point, the
// surviving image is remounted (journal recovery runs at open), and the
// table must be at exactly the old or the new epoch PER PARTITION — never
// a mix within one partition — at every cut point across the commit's
// whole write window.

const (
	crashBlocks = 32 << 10
	crashBS     = 1 << 10
	crashParts  = 3
	crashKeys   = 120
)

// crashKey/crashOldVal/crashNewVal define the deterministic workload: keys
// k+x seeded with old values and committed (a warm round shaped like the
// cut round, so the cut round never needs to grow a journal file); then
// i%3==0 k-keys are updated, i%3==1 k-keys deleted, and every x-key
// rewritten, all riding the final (cut) commit.
func crashKey(i int) []byte    { return []byte(fmt.Sprintf("k%04d", i)) }
func crashOldVal(i int) string { return fmt.Sprintf("old-%04d", i) }
func crashNewVal(i int) string { return fmt.Sprintf("new-%04d", i) }
func crashInsKey(i int) []byte { return []byte(fmt.Sprintf("x%04d", i)) }

// runPartitionedCrash seeds and checkpoints the table, applies the
// mutation batch, arms the cut cutAt writes into the commit window, runs
// Sync, and returns the surviving image plus the window's write count.
// cutAt < 0 leaves the cut disarmed (the probe run measuring the window).
func runPartitionedCrash(t *testing.T, cutAt int64) (img []byte, window int64) {
	t.Helper()
	mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
	if err != nil {
		t.Fatal(err)
	}
	cs := vdisk.NewCutStore(mem)
	p := stegfs.DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 8 << 10
	p.DeterministicKeys = true
	p.Seed = 42
	fs, err := stegfs.Format(cs, p)
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("db")
	pt, err := CreatePartitionedTable(view, "t", crashParts, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashKeys; i++ {
		if err := pt.Put(crashKey(i), []byte(crashOldVal(i))); err != nil {
			t.Fatal(err)
		}
		if err := pt.Put(crashInsKey(i), []byte(crashOldVal(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := pt.Sync(); err != nil { // the old epoch every cut must preserve
		t.Fatal(err)
	}
	for i := 0; i < crashKeys; i++ {
		switch i % 3 {
		case 0:
			if err := pt.Put(crashKey(i), []byte(crashNewVal(i))); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := pt.Delete(crashKey(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := pt.Put(crashInsKey(i), []byte(crashNewVal(i))); err != nil {
			t.Fatal(err)
		}
	}
	pre := cs.Writes()
	if cutAt >= 0 {
		cs.CutAfter(cutAt)
	}
	// With the cut armed the live mount may observe its own dropped writes
	// as stale reads and surface an error — that IS the crash; only the
	// surviving image matters. Without a cut the commit must succeed.
	if err := pt.Sync(); err != nil && cutAt < 0 {
		t.Fatalf("probe Sync: %v", err)
	}
	return mem.Snapshot(), cs.Writes() - pre
}

// verifyPartitionedCrash remounts a surviving image (running journal
// recovery), checks the table, and enforces old-or-new per partition.
func verifyPartitionedCrash(t *testing.T, img []byte, cutAt int64) {
	t.Helper()
	mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Restore(img); err != nil {
		t.Fatal(err)
	}
	fs, err := stegfs.Mount(mem)
	if err != nil {
		t.Fatalf("cut %d: remount: %v", cutAt, err)
	}
	view := fs.NewHiddenView("db")
	if _, err := CheckAny(view, view.Adopt, "t"); err != nil {
		t.Fatalf("cut %d: CheckAny: %v", cutAt, err)
	}
	pt, err := OpenPartitionedTable(view, "t")
	if err != nil {
		t.Fatalf("cut %d: open: %v", cutAt, err)
	}
	// Classify each partition: every key routed to it must be uniformly at
	// the old or the new epoch.
	for part := 0; part < crashParts; part++ {
		verdict := "" // "", "old" or "new"
		note := func(i int, state string) {
			if verdict == "" {
				verdict = state
			} else if verdict != state {
				t.Fatalf("cut %d: partition %d mixes epochs (key %d is %s, partition was %s)",
					cutAt, part, i, state, verdict)
			}
		}
		for i := 0; i < crashKeys; i++ {
			if pt.partFor(crashKey(i)) == part {
				v, ok, err := pt.Get(crashKey(i))
				if err != nil {
					t.Fatalf("cut %d: get %d: %v", cutAt, i, err)
				}
				switch i % 3 {
				case 0:
					switch {
					case ok && string(v) == crashOldVal(i):
						note(i, "old")
					case ok && string(v) == crashNewVal(i):
						note(i, "new")
					default:
						t.Fatalf("cut %d: key %d = %q %v (neither epoch)", cutAt, i, v, ok)
					}
				case 1:
					if ok {
						note(i, "old")
					} else {
						note(i, "new")
					}
				case 2: // untouched in the second batch; must hold the old value
					if !ok || string(v) != crashOldVal(i) {
						t.Fatalf("cut %d: stable key %d = %q %v", cutAt, i, v, ok)
					}
				}
			}
			if pt.partFor(crashInsKey(i)) == part {
				v, ok, err := pt.Get(crashInsKey(i))
				if err != nil || !ok {
					t.Fatalf("cut %d: get x %d: %v %v", cutAt, i, ok, err)
				}
				switch string(v) {
				case crashOldVal(i):
					note(i, "old")
				case crashNewVal(i):
					note(i, "new")
				default:
					t.Fatalf("cut %d: x key %d torn: %q", cutAt, i, v)
				}
			}
		}
	}
}

// TestStegDBPartitionedSyncCrashSweep sweeps the cut point across the
// entire commit write window.
func TestStegDBPartitionedSyncCrashSweep(t *testing.T) {
	_, window := runPartitionedCrash(t, -1) // probe: measure the window
	if window < 10 {
		t.Fatalf("commit window only %d writes; workload too small to sweep", window)
	}
	stride := window / 24
	if stride < 1 {
		stride = 1
	}
	if testing.Short() {
		stride = window / 6
	}
	for cut := int64(0); cut <= window; cut += stride {
		img, _ := runPartitionedCrash(t, cut)
		verifyPartitionedCrash(t, img, cut)
	}
	// The exact end of the window (everything durable) must be fully new.
	img, _ := runPartitionedCrash(t, window)
	verifyPartitionedCrash(t, img, window)
}

// TestStegDBPlainTableCrashRecovery: the single-pager commit path under a
// cut in the middle of its journal and home writes.
func TestStegDBPlainTableCrashRecovery(t *testing.T) {
	for _, cut := range []int64{0, 1, 3, 7, 15, 40} {
		mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
		if err != nil {
			t.Fatal(err)
		}
		cs := vdisk.NewCutStore(mem)
		p := stegfs.DefaultParams()
		p.NDummy = 2
		p.DummyAvgSize = 8 << 10
		p.DeterministicKeys = true
		p.Seed = 42
		fs, err := stegfs.Format(cs, p)
		if err != nil {
			t.Fatal(err)
		}
		view := fs.NewHiddenView("db")
		tab, err := CreateTable(view, "t", true, 32)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			if err := tab.Put(crashKey(i), []byte(crashOldVal(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := tab.Sync(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			if err := tab.Put(crashKey(i), []byte(crashNewVal(i))); err != nil {
				t.Fatal(err)
			}
		}
		cs.CutAfter(cut)
		_ = tab.Sync() // may error: the mount sees its own dropped writes

		mem2, err := vdisk.NewMemStore(crashBlocks, crashBS)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem2.Restore(mem.Snapshot()); err != nil {
			t.Fatal(err)
		}
		fs2, err := stegfs.Mount(mem2)
		if err != nil {
			t.Fatal(err)
		}
		view2 := fs2.NewHiddenView("db")
		if _, err := CheckAny(view2, view2.Adopt, "t"); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		tab2, err := OpenTable(view2, "t")
		if err != nil {
			t.Fatal(err)
		}
		verdict := ""
		for i := 0; i < 80; i++ {
			v, ok, err := tab2.Get(crashKey(i))
			if err != nil || !ok {
				t.Fatalf("cut %d: key %d = %v %v", cut, i, ok, err)
			}
			state := ""
			switch string(v) {
			case crashOldVal(i):
				state = "old"
			case crashNewVal(i):
				state = "new"
			default:
				t.Fatalf("cut %d: key %d torn: %q", cut, i, v)
			}
			if verdict == "" {
				verdict = state
			} else if verdict != state {
				t.Fatalf("cut %d: table mixes epochs at key %d", cut, i)
			}
		}
	}
}
