package stegdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"sync"
)

// Commit pipeline: stegdb turns every Pager.Sync into an atomic commit via
// a physical redo journal kept in a sibling hidden file (name + ".wal").
// The cache is no-steal (dirty pages never reach the home file outside a
// commit), so the home file always holds exactly the last committed epoch,
// and the commit sequence is:
//
//  1. prepare  — pin an internal snapshot (epoch + full meta image,
//     atomically) and capture every dirty page AS OF that epoch: the live
//     frame when its last write predates the pin, else the copy-on-write
//     version the snapshot machinery saved. The captured cut is exactly
//     the snapshot's state, hence consistent even while writers keep
//     running.
//  2. journal  — write the records (meta image first) and then the header
//     (epoch, count, length, CRCs) to the journal file.
//  3. barrier  — view.Sync(): journal durable before any home write.
//  4. home     — write the captured images to the home file (vectored runs
//     + meta), then clear dirty flags write-wins (a frame or the meta
//     re-dirtied since capture stays dirty for the next commit).
//  5. epoch++  — later snapshots pin post-commit state.
//  6. barrier  — view.Sync(): home durable; the journal is now dead weight
//     until the next commit overwrites it.
//
// Recovery (recoverWAL, at OpenPager): if the journal header and body
// check out, replay every record into the home file and barrier. A crash
// before step 3 leaves an invalid journal (CRC) and an untouched home file
// (old epoch); a crash after it leaves a valid journal whose replay
// produces the new epoch; replay is idempotent, and a journal can never be
// both valid and older than the home file (the home writes of commit N+1
// start only after commit N+1's journal landed). The database therefore
// remounts at exactly the old or the new epoch — never a mix.

// walSuffix names the journal sibling of a database file.
const walSuffix = ".wal"

// walMagic marks a journal header page.
const walMagic = "SGWL0001"

// walHeader layout (page 0 of the journal file): magic(8) epoch(8)
// count(8) journalLen(8) journalCRC(8) headerCRC(8).
const (
	walHdrEpoch   = 8
	walHdrCount   = 16
	walHdrLen     = 24
	walHdrJCRC    = 32
	walHdrHCRC    = 40
	walHdrEnd     = 48
	walRecordSize = 8 + PageSize // page id + image
)

// walMaxRecords bounds a plausible journal (sanity check on recovery).
const walMaxRecords = 1 << 20

var walCRCTable = crc64.MakeTable(crc64.ECMA)

// groupCommit batches concurrent committers: the first caller becomes the
// leader and runs commits; callers arriving while one is in flight join a
// shared batch that the leader serves with ONE further commit, amortizing
// the journal write and both barriers across the whole batch.
type groupCommit struct {
	// mu is deliberately unleveled: it guards only the two fields below,
	// never wraps another acquisition, and is held for pointer flips.
	mu sync.Mutex
	// lockcheck:guardedby mu
	running bool
	// lockcheck:guardedby mu
	waiting *commitBatch
}

type commitBatch struct {
	done chan struct{}
	err  error
}

// do runs fn now (leader) or returns the result of the batched commit that
// starts after the caller joined (follower). Either way, every write the
// caller made before do() is covered by the commit whose result it gets.
func (g *groupCommit) do(fn func() error) error {
	g.mu.Lock()
	if !g.running {
		g.running = true
		g.mu.Unlock()
		err := fn()
		g.mu.Lock()
		for g.waiting != nil {
			b := g.waiting
			g.waiting = nil
			g.mu.Unlock()
			b.err = fn()
			close(b.done)
			g.mu.Lock()
		}
		g.running = false
		g.mu.Unlock()
		return err
	}
	b := g.waiting
	if b == nil {
		b = &commitBatch{done: make(chan struct{})}
		g.waiting = b
	}
	g.mu.Unlock()
	<-b.done
	return b.err
}

// walRecord is one captured page image bound for the journal and home file.
type walRecord struct {
	id  int64
	img []byte
}

// clearOp marks a live-captured frame whose dirty flag may be cleared
// after homing, unless generation gen was overtaken by a newer write.
type clearOp struct {
	e   *pageEntry
	gen uint64
}

// commitState carries one commit's consistent cut between pipeline phases.
type commitState struct {
	entries   []*pageEntry // every dirty frame at capture, pinned
	recs      []walRecord  // captured page images, ascending id
	clears    []clearOp
	meta      [PageSize]byte
	metaGen   uint64
	metaClean bool // meta unchanged since its last commit
	epoch     int64
}

// empty reports a commit with nothing to journal: Sync degenerates to a
// bare volume barrier.
func (st *commitState) empty() bool { return len(st.recs) == 0 && st.metaClean }

// commitOnce runs one full commit of this pager: the single-pager Sync
// path. PartitionedTable.Sync composes the same phases across partitions
// with shared barriers (partition.go).
func (p *Pager) commitOnce() error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	st, err := p.commitPrepare()
	if err != nil {
		p.releaseCommit(st)
		return err
	}
	if st.empty() {
		p.releaseCommit(st)
		p.bumpEpoch()
		return p.view.Sync()
	}
	if err := p.writeWAL(st); err != nil {
		p.releaseCommit(st)
		return err
	}
	if err := p.view.Sync(); err != nil { // barrier: journal before home
		p.releaseCommit(st)
		return err
	}
	if err := p.commitHome(st); err != nil {
		p.releaseCommit(st)
		return err
	}
	p.releaseCommit(st)
	p.bumpEpoch()
	return p.view.Sync() // barrier: home durable
}

// commitPrepare captures a consistent cut of the dirty state: an internal
// snapshot pins the epoch and the full meta image atomically, then every
// dirty page is captured as of that epoch. The returned state holds pins
// on all dirty frames; the caller must releaseCommit it, success or not.
func (p *Pager) commitPrepare() (*commitState, error) {
	st := &commitState{}
	s := p.beginSnapshot(st.meta[:], &st.metaGen)
	st.epoch = s.epoch
	st.entries = p.cache.dirtyEntries()
	var err error
	for _, e := range st.entries {
		if e.id >= s.numPages {
			// Allocated after the pin; the next commit gets it.
			continue
		}
		img := make([]byte, PageSize)
		live, gen, ok, cerr := p.captureAsOf(e, s.epoch, img)
		if cerr != nil {
			err = cerr
			break
		}
		if !ok {
			continue // transiently-dirty invalid frame; nothing to persist
		}
		st.recs = append(st.recs, walRecord{id: e.id, img: img})
		if live {
			st.clears = append(st.clears, clearOp{e: e, gen: gen})
		}
	}
	s.Close()
	if err != nil {
		return st, err
	}
	// Stamp the commit epoch into the captured meta image so the home file
	// records which epoch it holds (recovery re-reads it from there).
	binary.BigEndian.PutUint64(st.meta[metaCommitEpoch:], uint64(st.epoch))
	// If the meta has not changed since it was last committed clean, the
	// cut may still be empty overall.
	p.metaMu.Lock()
	if !p.metaDirty && p.metaGen == st.metaGen {
		st.metaClean = true
	}
	p.metaMu.Unlock()
	return st, nil
}

// captureAsOf copies page e's content as of epoch E into img: the live
// frame when its last write is stamped at or before E (live=true, with the
// generation to clear after homing), else the newest saved version at or
// before E. ok=false means the frame holds nothing persistable (a write
// that failed before loading content). Lock order: page latch -> snapMu,
// same as Snapshot.ReadPage.
func (p *Pager) captureAsOf(e *pageEntry, epoch int64, img []byte) (live bool, gen uint64, ok bool, err error) {
	e.latch.RLock()
	defer e.latch.RUnlock()
	p.snapMu.Lock()
	if p.liveEpoch[e.id] <= epoch {
		p.snapMu.Unlock()
		if !e.valid {
			return false, 0, false, nil
		}
		gen = p.cache.gen(e)
		copy(img, e.buf[:])
		return true, gen, true, nil
	}
	vs := p.versions[e.id]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].epoch <= epoch {
			copy(img, vs[i].data)
			p.snapMu.Unlock()
			return false, 0, true, nil
		}
	}
	p.snapMu.Unlock()
	return false, 0, false, errors.New("stegdb: commit lost page version")
}

// writeWAL writes the commit's records and then the validating header to
// the journal file. Nothing here is a durability point; the caller
// barriers afterwards.
func (p *Pager) writeWAL(st *commitState) error {
	n := len(st.recs) + 1 // + the meta record
	jlen := n * walRecordSize
	journal := make([]byte, jlen)
	off := 0
	put := func(id int64, img []byte) {
		binary.BigEndian.PutUint64(journal[off:], uint64(id))
		copy(journal[off+8:], img)
		off += walRecordSize
	}
	put(0, st.meta[:]) // meta is record 0: page id 0, offset 0 on replay
	for _, r := range st.recs {
		put(r.id, r.img)
	}
	fi, err := p.view.Stat(p.walName)
	if err != nil {
		return fmt.Errorf("stegdb: stat journal: %w", err)
	}
	if need := int64(PageSize + jlen); fi.Size < need {
		if err := p.view.Resize(p.walName, need); err != nil {
			return fmt.Errorf("stegdb: grow journal: %w", err)
		}
	}
	if _, err := p.view.WriteAt(p.walName, journal, PageSize); err != nil {
		return fmt.Errorf("stegdb: write journal: %w", err)
	}
	var hdr [PageSize]byte
	copy(hdr[:8], walMagic)
	binary.BigEndian.PutUint64(hdr[walHdrEpoch:], uint64(st.epoch))
	binary.BigEndian.PutUint64(hdr[walHdrCount:], uint64(n))
	binary.BigEndian.PutUint64(hdr[walHdrLen:], uint64(jlen))
	binary.BigEndian.PutUint64(hdr[walHdrJCRC:], crc64.Checksum(journal, walCRCTable))
	binary.BigEndian.PutUint64(hdr[walHdrHCRC:], crc64.Checksum(hdr[:walHdrJCRC+8], walCRCTable))
	if _, err := p.view.WriteAt(p.walName, hdr[:], 0); err != nil {
		return fmt.Errorf("stegdb: write journal header: %w", err)
	}
	return nil
}

// commitHome writes the captured cut into the home file: vectored runs of
// consecutive pages, then the meta image. Dirty flags are cleared
// write-wins afterwards — a frame (or the meta) redirtied since capture
// stays dirty for the next commit.
func (p *Pager) commitHome(st *commitState) error {
	for i := 0; i < len(st.recs); {
		j := i + 1
		for j < len(st.recs) && st.recs[j].id == st.recs[j-1].id+1 {
			j++
		}
		run := st.recs[i:j]
		var buf []byte
		if len(run) == 1 {
			buf = run[0].img
		} else {
			buf = make([]byte, len(run)*PageSize)
			for k, r := range run {
				copy(buf[k*PageSize:], r.img)
			}
		}
		if _, err := p.view.WriteAt(p.name, buf, run[0].id*PageSize); err != nil {
			return err
		}
		i = j
	}
	if _, err := p.view.WriteAt(p.name, st.meta[:], 0); err != nil {
		return err
	}
	for _, c := range st.clears {
		p.cache.clearDirty(c.e, c.gen)
	}
	p.metaMu.Lock()
	if p.metaGen == st.metaGen {
		p.metaDirty = false
	}
	// Keep the live buffer's commit-epoch field in step with what just
	// landed home; no gen bump — it is already durable.
	binary.BigEndian.PutUint64(p.meta[metaCommitEpoch:], uint64(st.epoch))
	p.metaMu.Unlock()
	return nil
}

// releaseCommit drops the pins commitPrepare took. nil-safe.
func (p *Pager) releaseCommit(st *commitState) {
	if st == nil {
		return
	}
	for _, e := range st.entries {
		p.cache.unpin(e)
	}
	st.entries = nil
}

// recoverWAL replays the journal into the home file if it holds a complete
// commit. Called from OpenPager before the meta page is read, with the
// pager unpublished. A missing/unreadable journal file only disables the
// journaled commit path (walOK=false) — the home file is always complete
// on its own.
func (p *Pager) recoverWAL() error {
	var hdr [PageSize]byte
	if _, err := p.view.ReadAt(p.walName, hdr[:], 0); err != nil {
		p.walOK = false
		return nil
	}
	p.walOK = true
	if string(hdr[:8]) != walMagic {
		return nil // never committed, or header torn to garbage
	}
	if crc64.Checksum(hdr[:walHdrJCRC+8], walCRCTable) != binary.BigEndian.Uint64(hdr[walHdrHCRC:]) {
		return nil // torn header: the previous commit fully homed, skip
	}
	count := int64(binary.BigEndian.Uint64(hdr[walHdrCount:]))
	jlen := int64(binary.BigEndian.Uint64(hdr[walHdrLen:]))
	if count <= 0 || count > walMaxRecords || jlen != count*walRecordSize {
		return nil
	}
	journal := make([]byte, jlen)
	if _, err := p.view.ReadAt(p.walName, journal, PageSize); err != nil {
		return nil // journal shorter than the header claims: torn commit
	}
	if crc64.Checksum(journal, walCRCTable) != binary.BigEndian.Uint64(hdr[walHdrJCRC:]) {
		return nil // torn journal body: home file holds the old epoch
	}
	// Valid journal: replay. Pre-grow the home file if the crash lost a
	// Resize that preceded the commit.
	maxID := int64(0)
	for i := int64(0); i < count; i++ {
		id := int64(binary.BigEndian.Uint64(journal[i*walRecordSize:]))
		if id < 0 || id > walMaxRecords {
			return fmt.Errorf("stegdb: journal record %d has implausible page id %d", i, id)
		}
		if id > maxID {
			maxID = id
		}
	}
	fi, err := p.view.Stat(p.name)
	if err != nil {
		return fmt.Errorf("stegdb: stat for replay: %w", err)
	}
	if need := (maxID + 1) * PageSize; fi.Size < need {
		if err := p.view.Resize(p.name, need); err != nil {
			return fmt.Errorf("stegdb: grow for replay: %w", err)
		}
	}
	for i := int64(0); i < count; i++ {
		rec := journal[i*walRecordSize : (i+1)*walRecordSize]
		id := int64(binary.BigEndian.Uint64(rec))
		if _, err := p.view.WriteAt(p.name, rec[8:], id*PageSize); err != nil {
			return fmt.Errorf("stegdb: replay page %d: %w", id, err)
		}
	}
	return p.view.Sync()
}
