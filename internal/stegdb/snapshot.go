package stegdb

import (
	"errors"
	"fmt"
)

// Snapshot reads: a Snapshot pins the pager at an epoch and serves page
// reads as of that instant, no matter how many writes land afterwards.
// Writers pay a copy-on-write: the first overwrite of a page whose old
// content some snapshot can still see saves that content as a version
// (in memory, keyed by epoch). Readers holding a snapshot therefore never
// block writers and never see torn structures — the basis of stegdb's
// Scan/Range/Get isolation.
//
// Contract: BeginSnapshot needs no external exclusion, even against
// multi-page structural writes. The epoch pin and the meta-page freeze
// happen atomically under snapMu (metaMu nests inside), and the B-link
// tree's split protocol (new right sibling stored before the shrunken left
// half, child stored before the parent's pointer to it) makes every write
// sequence prefix-consistent: any page pointer the frozen meta can reach
// leads to content stamped at or before the pinned epoch. Versions live
// only while at least one snapshot is active; when the last closes, all
// saved versions and epoch tracking are dropped. The commit path reuses
// the same machinery to capture a consistent cut of the dirty set (see
// commit.go).

// pageVersion is one saved pre-image: the page's content as of liveEpoch
// `epoch` (i.e. visible to snapshots pinned at >= epoch... < next write).
type pageVersion struct {
	epoch int64 // last-write epoch of this content
	data  []byte
}

// Snapshot is a read-only, point-in-time view of the pager. Close it when
// done so saved versions can be reclaimed.
type Snapshot struct {
	pg    *Pager
	id    int64
	epoch int64
	// Meta fields frozen at begin time.
	numPages  int64
	btreeRoot int64
	rows      int64
}

// BeginSnapshot pins a new snapshot at the current epoch and advances the
// epoch, so every later write is distinguishable from content the snapshot
// saw.
func (p *Pager) BeginSnapshot() *Snapshot {
	return p.beginSnapshot(nil, nil)
}

// beginSnapshot is the shared implementation: pin an epoch and freeze the
// meta fields in one atomic step. The meta freeze MUST happen inside the
// snapMu critical section (metaMu nests inside snapMu, order 60 -> 70):
// releasing snapMu first would let a root growth land in the window, giving
// the snapshot a root page whose content it cannot read back. When metaImg
// and metaGen are non-nil the full meta page image and its generation are
// captured too — the commit path uses this to journal the exact meta state
// its dirty-page cut corresponds to.
func (p *Pager) beginSnapshot(metaImg []byte, metaGen *uint64) *Snapshot {
	p.snapMu.Lock()
	p.nextSnapID++
	s := &Snapshot{pg: p, id: p.nextSnapID, epoch: p.epoch}
	p.epoch++
	p.snaps[s.id] = s.epoch
	if s.epoch > p.maxSnapEpoch {
		p.maxSnapEpoch = s.epoch
	}
	p.metaMu.Lock()
	s.numPages = p.getMeta(metaNumPages)
	s.btreeRoot = p.getMeta(metaBTreeRoot)
	s.rows = p.getMeta(metaRows)
	if metaImg != nil {
		copy(metaImg, p.meta[:])
	}
	if metaGen != nil {
		*metaGen = p.metaGen
	}
	p.metaMu.Unlock()
	p.snapMu.Unlock()
	return s
}

// Close releases the snapshot. When the last active snapshot closes, every
// saved page version and the per-page epoch map are dropped.
func (s *Snapshot) Close() {
	p := s.pg
	p.snapMu.Lock()
	delete(p.snaps, s.id)
	if len(p.snaps) == 0 {
		p.maxSnapEpoch = 0
		p.liveEpoch = make(map[int64]int64)
		p.versions = make(map[int64][]pageVersion)
	} else {
		max := int64(0)
		for _, e := range p.snaps {
			if e > max {
				max = e
			}
		}
		p.maxSnapEpoch = max
	}
	p.snapMu.Unlock()
}

// NumPages returns the page count as of the snapshot.
func (s *Snapshot) NumPages() int64 { return s.numPages }

// BTreeRoot returns the B-tree root page as of the snapshot.
func (s *Snapshot) BTreeRoot() int64 { return s.btreeRoot }

// RowsAtSnapshot returns the row counter as of the snapshot.
func (s *Snapshot) RowsAtSnapshot() int64 { return s.rows }

// ReadPage reads page id as of the snapshot's epoch: the live frame when
// the page has not been rewritten since, else the newest saved pre-image
// the snapshot is allowed to see.
func (s *Snapshot) ReadPage(id int64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("stegdb: page buffer %d != %d", len(buf), PageSize)
	}
	if id <= nilPage || id >= s.numPages {
		return fmt.Errorf("stegdb: snapshot page %d out of range [1,%d)", id, s.numPages)
	}
	p := s.pg
	e := p.cache.pin(id)
	defer p.cache.unpin(e)
	if err := p.ensureLoaded(e); err != nil {
		return err
	}
	// Lock order: page latch, then snapMu (same as WritePage's version
	// save). Holding the latch shared pins the frame content while we
	// decide whether it is the version this snapshot should see.
	e.latch.RLock()
	defer e.latch.RUnlock()
	p.snapMu.Lock()
	if p.liveEpoch[id] <= s.epoch {
		p.snapMu.Unlock()
		copy(buf, e.buf[:])
		return nil
	}
	// The live page is too new; find the newest saved version the snapshot
	// may see. Versions are appended in epoch order.
	vs := p.versions[id]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].epoch <= s.epoch {
			data := vs[i].data
			p.snapMu.Unlock()
			copy(buf, data)
			return nil
		}
	}
	p.snapMu.Unlock()
	return errors.New("stegdb: snapshot lost page version")
}

// saveVersionLocked runs on the write path: if any active snapshot could
// still see the page's current content, that content is saved as a version
// before the caller overwrites the frame. The caller holds the frame's
// exclusive latch; the frame may still be invalid (never loaded), in which
// case the old content is loaded from the hidden file first.
//
// lockcheck:holds stegdb/latch
func (p *Pager) saveVersionLocked(e *pageEntry) error {
	for {
		p.snapMu.Lock()
		if len(p.snaps) == 0 {
			p.snapMu.Unlock()
			return nil
		}
		old := p.liveEpoch[e.id] // 0 = content predates all snapshots
		if old > p.maxSnapEpoch {
			// Already rewritten past every snapshot this epoch range; no
			// snapshot can see the current content.
			p.liveEpoch[e.id] = p.epoch
			p.snapMu.Unlock()
			return nil
		}
		if e.valid {
			v := pageVersion{epoch: old, data: append([]byte(nil), e.buf[:]...)}
			p.versions[e.id] = append(p.versions[e.id], v)
			p.liveEpoch[e.id] = p.epoch
			p.snapMu.Unlock()
			return nil
		}
		// Frame never loaded: fetch the old content (under the held
		// exclusive latch, outside snapMu), then re-check.
		p.snapMu.Unlock()
		if _, err := p.view.ReadAt(p.name, e.buf[:], e.id*PageSize); err != nil {
			return err
		}
		e.valid = true
	}
}
