package stegdb

import (
	"errors"
	"fmt"
)

// Snapshot reads: a Snapshot pins the pager at an epoch and serves page
// reads as of that instant, no matter how many writes land afterwards.
// Writers pay a copy-on-write: the first overwrite of a page whose old
// content some snapshot can still see saves that content as a version
// (in memory, keyed by epoch). Readers holding a snapshot therefore never
// block writers and never see torn structures — the basis of stegdb's
// Scan/Range/Get isolation.
//
// Contract: BeginSnapshot must not race a multi-page structural write —
// callers exclude writers for the instant of the begin (BTree.Snapshot
// takes the tree lock shared, which waits out in-flight exclusive writers;
// registration then happens-before any later writer's version-save check).
// Versions live only while at least one snapshot is active; when the last
// closes, all saved versions and epoch tracking are dropped.

// pageVersion is one saved pre-image: the page's content as of liveEpoch
// `epoch` (i.e. visible to snapshots pinned at >= epoch... < next write).
type pageVersion struct {
	epoch int64 // last-write epoch of this content
	data  []byte
}

// Snapshot is a read-only, point-in-time view of the pager. Close it when
// done so saved versions can be reclaimed.
type Snapshot struct {
	pg    *Pager
	id    int64
	epoch int64
	// Meta fields frozen at begin time.
	numPages  int64
	btreeRoot int64
	rows      int64
}

// BeginSnapshot pins a new snapshot at the current epoch and advances the
// epoch, so every later write is distinguishable from content the snapshot
// saw. See the contract above for excluding concurrent structural writers.
func (p *Pager) BeginSnapshot() *Snapshot {
	p.snapMu.Lock()
	p.nextSnapID++
	s := &Snapshot{pg: p, id: p.nextSnapID, epoch: p.epoch}
	p.epoch++
	p.snaps[s.id] = s.epoch
	if s.epoch > p.maxSnapEpoch {
		p.maxSnapEpoch = s.epoch
	}
	p.snapMu.Unlock()

	p.metaMu.Lock()
	s.numPages = p.getMeta(metaNumPages)
	s.btreeRoot = p.getMeta(metaBTreeRoot)
	s.rows = p.getMeta(metaRows)
	p.metaMu.Unlock()
	return s
}

// Close releases the snapshot. When the last active snapshot closes, every
// saved page version and the per-page epoch map are dropped.
func (s *Snapshot) Close() {
	p := s.pg
	p.snapMu.Lock()
	delete(p.snaps, s.id)
	if len(p.snaps) == 0 {
		p.maxSnapEpoch = 0
		p.liveEpoch = make(map[int64]int64)
		p.versions = make(map[int64][]pageVersion)
	} else {
		max := int64(0)
		for _, e := range p.snaps {
			if e > max {
				max = e
			}
		}
		p.maxSnapEpoch = max
	}
	p.snapMu.Unlock()
}

// NumPages returns the page count as of the snapshot.
func (s *Snapshot) NumPages() int64 { return s.numPages }

// BTreeRoot returns the B-tree root page as of the snapshot.
func (s *Snapshot) BTreeRoot() int64 { return s.btreeRoot }

// RowsAtSnapshot returns the row counter as of the snapshot.
func (s *Snapshot) RowsAtSnapshot() int64 { return s.rows }

// ReadPage reads page id as of the snapshot's epoch: the live frame when
// the page has not been rewritten since, else the newest saved pre-image
// the snapshot is allowed to see.
func (s *Snapshot) ReadPage(id int64, buf []byte) error {
	if len(buf) != PageSize {
		return fmt.Errorf("stegdb: page buffer %d != %d", len(buf), PageSize)
	}
	if id <= nilPage || id >= s.numPages {
		return fmt.Errorf("stegdb: snapshot page %d out of range [1,%d)", id, s.numPages)
	}
	p := s.pg
	e := p.cache.pin(id, p.flushEntry)
	defer p.cache.unpin(e)
	if err := p.ensureLoaded(e); err != nil {
		return err
	}
	// Lock order: page latch, then snapMu (same as WritePage's version
	// save). Holding the latch shared pins the frame content while we
	// decide whether it is the version this snapshot should see.
	e.latch.RLock()
	defer e.latch.RUnlock()
	p.snapMu.Lock()
	if p.liveEpoch[id] <= s.epoch {
		p.snapMu.Unlock()
		copy(buf, e.buf[:])
		return nil
	}
	// The live page is too new; find the newest saved version the snapshot
	// may see. Versions are appended in epoch order.
	vs := p.versions[id]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].epoch <= s.epoch {
			data := vs[i].data
			p.snapMu.Unlock()
			copy(buf, data)
			return nil
		}
	}
	p.snapMu.Unlock()
	return errors.New("stegdb: snapshot lost page version")
}

// saveVersionLocked runs on the write path: if any active snapshot could
// still see the page's current content, that content is saved as a version
// before the caller overwrites the frame. The caller holds the frame's
// exclusive latch; the frame may still be invalid (never loaded), in which
// case the old content is loaded from the hidden file first.
//
// lockcheck:holds stegdb/latch
func (p *Pager) saveVersionLocked(e *pageEntry) error {
	for {
		p.snapMu.Lock()
		if len(p.snaps) == 0 {
			p.snapMu.Unlock()
			return nil
		}
		old := p.liveEpoch[e.id] // 0 = content predates all snapshots
		if old > p.maxSnapEpoch {
			// Already rewritten past every snapshot this epoch range; no
			// snapshot can see the current content.
			p.liveEpoch[e.id] = p.epoch
			p.snapMu.Unlock()
			return nil
		}
		if e.valid {
			v := pageVersion{epoch: old, data: append([]byte(nil), e.buf[:]...)}
			p.versions[e.id] = append(p.versions[e.id], v)
			p.liveEpoch[e.id] = p.epoch
			p.snapMu.Unlock()
			return nil
		}
		// Frame never loaded: fetch the old content (under the held
		// exclusive latch, outside snapMu), then re-check.
		p.snapMu.Unlock()
		if _, err := p.view.ReadAt(p.name, e.buf[:], e.id*PageSize); err != nil {
			return err
		}
		e.valid = true
	}
}
