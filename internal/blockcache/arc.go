package blockcache

import "container/list"

// arcPolicy implements ARC (Megiddo & Modha, "ARC: A Self-Tuning, Low
// Overhead Replacement Cache", FAST 2003). Resident blocks live in T1
// (seen once recently) or T2 (seen at least twice); evicted block numbers
// linger in the ghost lists B1/B2. A hit in a ghost list signals that the
// corresponding side deserved more space, so the adaptation target p —
// the desired size of T1 — moves toward the side that would have hit.
//
// Under the StegFS hidden-file workload the long data-block scans flow
// through T1 without displacing the repeatedly probed header, p-tree and
// directory blocks that B1 hits promote into T2, which is what keeps the
// hot metadata resident at capacities where plain LRU degenerates to 0%.
type arcPolicy struct {
	c int // cache capacity in blocks
	p int // adaptation target: preferred |T1|

	t1, t2 *list.List // resident; front = MRU
	b1, b2 *list.List // ghosts (block numbers only); front = most recent
	where  map[int64]*arcEntry
}

// arc list tags for arcEntry.list.
const (
	arcT1 = iota
	arcT2
	arcB1
	arcB2
)

type arcEntry struct {
	elem *list.Element
	list int
}

func newARCPolicy(capacity int) *arcPolicy {
	if capacity < 1 {
		capacity = 1
	}
	return &arcPolicy{
		c:     capacity,
		t1:    list.New(),
		t2:    list.New(),
		b1:    list.New(),
		b2:    list.New(),
		where: make(map[int64]*arcEntry),
	}
}

func (p *arcPolicy) Name() string { return PolicyARC }

// Touch promotes a resident hit into T2: the block has now been used more
// than once and is worth protecting from scans.
func (p *arcPolicy) Touch(n int64) {
	e, ok := p.where[n]
	if !ok {
		return
	}
	switch e.list {
	case arcT1:
		p.t1.Remove(e.elem)
		e.elem = p.t2.PushFront(n)
		e.list = arcT2
	case arcT2:
		p.t2.MoveToFront(e.elem)
	}
}

// Insert places a newly resident block. Ghost hits adapt p and go straight
// to T2 (the block's recent eviction proves it has reuse); cold blocks
// enter T1, and the ghost lists are trimmed to their bounds.
func (p *arcPolicy) Insert(n int64) {
	if e, ok := p.where[n]; ok {
		switch e.list {
		case arcT1, arcT2:
			// Already resident (defensive; the cache never double-inserts).
			p.Touch(n)
		case arcB1:
			// B1 hit: recency side was starved — grow p.
			p.p = min(p.c, p.p+max(1, p.b2.Len()/max(1, p.b1.Len())))
			p.b1.Remove(e.elem)
			e.elem = p.t2.PushFront(n)
			e.list = arcT2
		case arcB2:
			// B2 hit: frequency side was starved — shrink p.
			p.p = max(0, p.p-max(1, p.b1.Len()/max(1, p.b2.Len())))
			p.b2.Remove(e.elem)
			e.elem = p.t2.PushFront(n)
			e.list = arcT2
		}
		p.trimGhosts()
		return
	}
	p.where[n] = &arcEntry{elem: p.t1.PushFront(n), list: arcT1}
	p.trimGhosts()
}

// Victim implements ARC's REPLACE: evict from T1 while it exceeds the
// target p, otherwise from T2. Falls back to whichever side is non-empty.
func (p *arcPolicy) Victim() (int64, bool) {
	fromT1 := p.t1.Len() > 0 && (p.t1.Len() > p.p || p.t2.Len() == 0)
	if fromT1 {
		return p.t1.Back().Value.(int64), true
	}
	if back := p.t2.Back(); back != nil {
		return back.Value.(int64), true
	}
	return 0, false
}

// Remove retires an evicted resident block into the matching ghost list,
// preserving its history for adaptation.
func (p *arcPolicy) Remove(n int64) {
	e, ok := p.where[n]
	if !ok {
		return
	}
	switch e.list {
	case arcT1:
		p.t1.Remove(e.elem)
		e.elem = p.b1.PushFront(n)
		e.list = arcB1
	case arcT2:
		p.t2.Remove(e.elem)
		e.elem = p.b2.PushFront(n)
		e.list = arcB2
	case arcB1:
		p.b1.Remove(e.elem)
		delete(p.where, n)
	case arcB2:
		p.b2.Remove(e.elem)
		delete(p.where, n)
	}
	p.trimGhosts()
}

// trimGhosts bounds each ghost list by the full capacity c. This is the
// practical variant (as in ZFS's ARC) rather than the paper's
// |T1|+|B1| <= c: under the paper's bound a cold cache whose residents are
// all still in T1 can keep no ghosts at all, so a hot set whose re-reads
// are separated by scans longer than the capacity would never be detected.
// A full-length B1 preserves one capacity's worth of eviction history even
// during cold-start scan pollution, which is exactly when it is needed.
func (p *arcPolicy) trimGhosts() {
	for p.b1.Len() > p.c {
		p.dropGhost(p.b1)
	}
	for p.b2.Len() > p.c {
		p.dropGhost(p.b2)
	}
}

func (p *arcPolicy) dropGhost(l *list.List) {
	back := l.Back()
	n := back.Value.(int64)
	l.Remove(back)
	delete(p.where, n)
}

func (p *arcPolicy) Reset() {
	p.p = 0
	p.t1.Init()
	p.t2.Init()
	p.b1.Init()
	p.b2.Init()
	p.where = make(map[int64]*arcEntry)
}

var _ Policy = (*arcPolicy)(nil)
