package blockcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"stegfs/internal/vdisk"
)

// waitUntil polls cond until it holds or a generous deadline passes. The
// background flush pipeline is asynchronous, so tests about its steady state
// poll instead of assuming the flusher ran inline.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

// pipeDev is a BatchDevice test double for the flush pipeline: it records
// every batch submission, can park batch writes on a gate, and can fail
// them. Per-block writes (evictions) pass straight through.
type pipeDev struct {
	*vdisk.MemStore
	mu       sync.Mutex
	gate     chan struct{} // nil = ungated; batch writes park until closed
	entered  chan int      // batch length signaled when a batch write arrives
	batches  [][]int64
	writeErr error
}

func newPipeDev(t *testing.T, blocks int64, bs int) *pipeDev {
	t.Helper()
	store, err := vdisk.NewMemStore(blocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	return &pipeDev{MemStore: store, entered: make(chan int, 64)}
}

func (d *pipeDev) ReadBlocks(ns []int64, bufs [][]byte) error {
	for i, n := range ns {
		if err := d.MemStore.ReadBlock(n, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (d *pipeDev) WriteBlocks(ns []int64, bufs [][]byte) error {
	d.mu.Lock()
	d.batches = append(d.batches, append([]int64(nil), ns...))
	gate := d.gate
	failErr := d.writeErr
	d.mu.Unlock()
	select {
	case d.entered <- len(ns):
	default:
	}
	if gate != nil {
		<-gate
	}
	if failErr != nil {
		return failErr
	}
	for i, n := range ns {
		if err := d.MemStore.WriteBlock(n, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

func (d *pipeDev) batchSizes() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]int, len(d.batches))
	for i, b := range d.batches {
		out[i] = len(b)
	}
	return out
}

var _ vdisk.BatchDevice = (*pipeDev)(nil)

// TestPipelineBackgroundFlushBatched: crossing the high-water mark must
// trigger the background flusher, which submits sorted multi-block batches
// (not per-block writes) and drains the backlog to half the mark without the
// writer ever issuing a device write itself.
func TestPipelineBackgroundFlushBatched(t *testing.T) {
	dev := newPipeDev(t, 256, 32)
	c := newCache(t, dev, Options{Capacity: 128, WriteBehind: 16, FlushWorkers: 1})
	defer c.Close()
	for n := int64(63); n >= 0; n-- {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, func() bool { return c.FlushInFlight() == 0 && c.Dirty() <= 16 })
	st := c.Stats()
	if st.WriteBehinds == 0 {
		t.Fatal("background write-behind never ran")
	}
	if st.FlushBatches == 0 {
		t.Fatal("no batched flush submissions recorded")
	}
	sizes := dev.batchSizes()
	if len(sizes) == 0 {
		t.Fatal("device saw no batch submissions")
	}
	multi := 0
	for _, s := range sizes {
		if s > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatalf("all %d flush submissions were single-block: %v", len(sizes), sizes)
	}
	// Every batch is sorted ascending.
	dev.mu.Lock()
	for _, b := range dev.batches {
		for i := 1; i < len(b); i++ {
			if b[i-1] >= b[i] {
				t.Fatalf("flush batch not ascending: %v", b)
			}
		}
	}
	dev.mu.Unlock()
	// Flushed blocks stayed resident and correct.
	buf := make([]byte, 32)
	pre := c.Stats()
	for n := int64(0); n < 64; n++ {
		if err := c.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d wrong after background flush", n)
		}
	}
	if got := c.Stats().Sub(pre); got.Misses != 0 {
		t.Fatalf("background flush evicted blocks: %d misses", got.Misses)
	}
}

// TestPipelineWriteWins: a block re-dirtied while its flush is in flight
// must stay dirty — the racing write wins, the stale staged bytes are
// superseded at the next run, and the barrier leaves the NEW data on the
// device.
func TestPipelineWriteWins(t *testing.T) {
	dev := newPipeDev(t, 64, 32)
	dev.gate = make(chan struct{})
	c := newCache(t, dev, Options{Capacity: 32, WriteBehind: 2, FlushWorkers: 1})
	defer c.Close()
	old := blockPayload(32, 0xAA)
	for _, n := range []int64{10, 11, 12} {
		if err := c.WriteBlock(n, old); err != nil {
			t.Fatal(err)
		}
	}
	<-dev.entered // a flush batch is parked inside the device

	// Re-dirty block 10 while its staged copy is in flight.
	fresh := blockPayload(32, 0x55)
	if err := c.WriteBlock(10, fresh); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes across the in-flight window.
	buf := make([]byte, 32)
	if err := c.ReadBlock(10, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("read during in-flight flush returned stale data")
	}
	close(dev.gate)
	dev.mu.Lock()
	dev.gate = nil
	dev.mu.Unlock()

	// The completed run must NOT have marked block 10 clean.
	waitUntil(t, func() bool { return c.FlushInFlight() == 0 })
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := c.Dirty(); d != 0 {
		t.Fatalf("dirty after barrier = %d, want 0", d)
	}
	if err := dev.MemStore.ReadBlock(10, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("device holds stale data: write-wins violated")
	}
}

// TestPipelineStickyAsyncError: a background flush failure is recorded and
// surfaced exactly once at the next barrier; the data survives and lands
// once the device recovers. While the error is pending the pipeline pauses
// instead of hammering the failing device.
func TestPipelineStickyAsyncError(t *testing.T) {
	injected := errors.New("injected batch write error")
	dev := newPipeDev(t, 64, 32)
	dev.mu.Lock()
	dev.writeErr = injected
	dev.mu.Unlock()
	c := newCache(t, dev, Options{Capacity: 32, WriteBehind: 4, FlushWorkers: 1})
	defer c.Close()
	for n := int64(0); n < 8; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	<-dev.entered // the failing background run was submitted
	waitUntil(t, func() bool { return c.FlushInFlight() == 0 })
	attempts := len(dev.batchSizes())
	// Pipeline pauses on the sticky error: no further attempts pile up.
	time.Sleep(20 * time.Millisecond)
	if got := len(dev.batchSizes()); got != attempts {
		t.Fatalf("pipeline kept retrying a failing device: %d -> %d attempts", attempts, got)
	}
	dev.mu.Lock()
	dev.writeErr = nil
	dev.mu.Unlock()
	if err := c.Flush(); !errors.Is(err, injected) {
		t.Fatalf("first barrier = %v, want sticky injected error", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("second barrier = %v, want nil", err)
	}
	buf := make([]byte, 32)
	for n := int64(0); n < 8; n++ {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d lost across failed background flush", n)
		}
	}
}

// TestPipelineBackpressure: writers stall at the hard cap (twice the
// high-water mark) until the flusher makes room, instead of growing the
// dirty backlog without bound.
func TestPipelineBackpressure(t *testing.T) {
	dev := newPipeDev(t, 64, 32)
	dev.gate = make(chan struct{})
	c := newCache(t, dev, Options{Capacity: 32, WriteBehind: 2, FlushWorkers: 1})
	defer c.Close()
	for n := int64(0); n < 3; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	<-dev.entered // flusher parked in the device with a staged run

	// dirty is now 3; the next write reaches the hard cap (4) and must wait.
	done := make(chan error, 1)
	go func() { done <- c.WriteBlock(40, blockPayload(32, 40)) }()
	select {
	case err := <-done:
		t.Fatalf("write past the hard cap returned early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(dev.gate)
	dev.mu.Lock()
	dev.gate = nil
	dev.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().FlushStalls; got == 0 {
		t.Fatal("no back-pressure stall recorded")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineBarrierDrainsInFlight: Flush must wait for in-flight
// background runs before reporting the cache clean.
func TestPipelineBarrierDrainsInFlight(t *testing.T) {
	dev := newPipeDev(t, 64, 32)
	dev.gate = make(chan struct{})
	c := newCache(t, dev, Options{Capacity: 32, WriteBehind: 2, FlushWorkers: 1})
	defer c.Close()
	for n := int64(0); n < 3; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	<-dev.entered
	flushed := make(chan error, 1)
	go func() { flushed <- c.Flush() }()
	select {
	case err := <-flushed:
		t.Fatalf("Flush returned with a run still parked in the device (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(dev.gate)
	dev.mu.Lock()
	dev.gate = nil
	dev.mu.Unlock()
	if err := <-flushed; err != nil {
		t.Fatal(err)
	}
	if d := c.Dirty(); d != 0 {
		t.Fatalf("dirty after barrier = %d, want 0", d)
	}
	buf := make([]byte, 32)
	for n := int64(0); n < 3; n++ {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d missing on device after barrier", n)
		}
	}
}

// TestPipelineCloseShutsDownWorkers: Close drains the pipeline, stops the
// pool and leaves the device complete.
func TestPipelineCloseShutsDownWorkers(t *testing.T) {
	dev := newPipeDev(t, 128, 32)
	c := newCache(t, dev, Options{Capacity: 64, WriteBehind: 8, FlushWorkers: 2})
	for n := int64(0); n < 40; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// The store is closed now; inspect the raw image instead of reading.
	img := dev.Snapshot()
	for n := int64(0); n < 40; n++ {
		if !bytes.Equal(img[n*32:(n+1)*32], blockPayload(32, byte(n))) {
			t.Fatalf("block %d not durable after Close", n)
		}
	}
}

// TestPipelineConcurrentStress hammers the async pipeline from concurrent
// writers, readers and barriers; run with -race. Contents are verifiable
// because each goroutine owns a disjoint block range.
func TestPipelineConcurrentStress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dev := newPipeDev(t, 256, 32)
			c := newCache(t, dev, Options{Capacity: 48, Policy: Policy2Q, WriteBehind: 12, FlushWorkers: workers})
			const writers = 8
			const perWorker = 16
			var wg sync.WaitGroup
			errs := make(chan error, writers)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := int64(w * perWorker)
					buf := make([]byte, 32)
					for round := 0; round < 15; round++ {
						for i := int64(0); i < perWorker; i++ {
							n := base + i
							p := blockPayload(32, byte(n)+byte(round))
							if err := c.WriteBlock(n, p); err != nil {
								errs <- err
								return
							}
							if err := c.ReadBlock(n, buf); err != nil {
								errs <- err
								return
							}
							if !bytes.Equal(buf, p) {
								errs <- fmt.Errorf("worker %d block %d torn read", w, n)
								return
							}
						}
						if round%6 == 0 {
							if err := c.Flush(); err != nil {
								errs <- err
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			img := dev.Snapshot()
			for n := int64(0); n < writers*perWorker; n++ {
				if !bytes.Equal(img[n*32:(n+1)*32], blockPayload(32, byte(n)+14)) {
					t.Fatalf("block %d final content wrong", n)
				}
			}
		})
	}
}

// TestPipelineStopFlushers: StopFlushers drains and terminates the pool
// without closing the device; the cache stays usable with synchronous
// write-behind afterwards.
func TestPipelineStopFlushers(t *testing.T) {
	dev := newPipeDev(t, 128, 32)
	c := newCache(t, dev, Options{Capacity: 64, WriteBehind: 8, FlushWorkers: 2})
	for n := int64(0); n < 20; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.StopFlushers(); err != nil {
		t.Fatal(err)
	}
	if d := c.Dirty(); d != 0 {
		t.Fatalf("dirty after StopFlushers = %d, want 0", d)
	}
	// Still usable: the device is open and write-behind runs synchronously.
	for n := int64(40); n < 60; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for n := int64(40); n < 60; n++ {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d lost after StopFlushers", n)
		}
	}
}

// TestPipelineBacklogSplitsAcrossWorkers: one oversized write batch must be
// drained as multiple concurrent runs when the pool has more than one
// flusher, not one serialized mega-run.
func TestPipelineBacklogSplitsAcrossWorkers(t *testing.T) {
	dev := newPipeDev(t, 256, 32)
	dev.gate = make(chan struct{})
	c := newCache(t, dev, Options{Capacity: 128, WriteBehind: 8, FlushWorkers: 2})
	defer c.Close()
	ns := make([]int64, 64)
	bufs := make([][]byte, 64)
	for i := range ns {
		ns[i] = int64(i)
		bufs[i] = blockPayload(32, byte(i))
	}
	done := make(chan error, 1)
	go func() { done <- c.WriteBlocks(ns, bufs) }() // stalls at the hard cap until the pool drains
	// Both workers must take a share of the backlog and park in the device
	// concurrently.
	<-dev.entered
	<-dev.entered
	close(dev.gate)
	dev.mu.Lock()
	dev.gate = nil
	dev.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	for _, n := range ns {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d wrong after split drain", n)
		}
	}
}
