package blockcache

import (
	"bytes"
	"errors"
	"testing"

	"stegfs/internal/vdisk"
)

// The pipeline-resume suite pins the contract the fault-tolerance layer
// depends on: a sticky write-back error pauses the pipeline and surfaces at
// the next barrier ONCE — and after that barrier the cache must be fully
// recovered: clean, durable, and with the background pipeline re-armed. The
// fault source is vdisk.FaultStore, so the errors crossing the cache are the
// real sentinel-classified faults the retry/degradation layers see.

func newFaultCache(t *testing.T, blocks int64, bs int, o Options) (*vdisk.MemStore, *vdisk.FaultStore, *Cache) {
	t.Helper()
	mem, err := vdisk.NewMemStore(blocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	fs := vdisk.NewFaultStore(mem, 21)
	c, err := NewWithOptions(fs, o)
	if err != nil {
		t.Fatal(err)
	}
	return mem, fs, c
}

// TestPipelineResumeAfterBackgroundFault: an async write-behind run fails,
// the sticky error surfaces at the next Sync, and the SAME Sync leaves the
// cache clean and durable; the background pipeline then resumes on new work.
func TestPipelineResumeAfterBackgroundFault(t *testing.T) {
	mem, fs, c := newFaultCache(t, 256, 32, Options{Capacity: 128, WriteBehind: 8, FlushWorkers: 2})
	defer c.StopFlushers()

	fs.SetTransientRates(0, 1, 1<<20) // every write fails until disarmed
	for n := int64(0); n < 24; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatalf("write-behind failures must stay in the background: %v", err)
		}
	}
	// Wait for the pipeline to have tried and failed at least once.
	waitUntil(t, func() bool { return fs.Stats().WriteFaults > 0 })

	fs.Disarm()
	err := c.Sync()
	if err == nil {
		t.Fatal("first barrier after a background fault must surface the sticky error")
	}
	if !errors.Is(err, vdisk.ErrTransient) {
		t.Fatalf("sticky error lost its fault class: %v", err)
	}

	// Recovery contract: the erroring barrier already did its work.
	if d := c.Dirty(); d != 0 {
		t.Fatalf("cache still has %d dirty blocks after the surfacing barrier", d)
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("second barrier must be clean, got %v", err)
	}
	buf := make([]byte, 32)
	for n := int64(0); n < 24; n++ {
		if err := mem.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d not durable after recovery", n)
		}
	}

	// The pipeline is re-armed: fresh dirty blocks drain without a barrier.
	before := c.Stats().WriteBehinds
	for n := int64(100); n < 124; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, func() bool { return c.Stats().WriteBehinds > before })
	waitUntil(t, func() bool { return c.Dirty() < 24 })
	if err := c.Sync(); err != nil {
		t.Fatalf("pipeline did not recover: %v", err)
	}
}

// TestPipelineResumeAfterEvictionFault: failed eviction write-backs pile
// dirty blocks past capacity; after the device heals, one barrier surfaces
// the incident and restores the invariant that the cache can evict again.
func TestPipelineResumeAfterEvictionFault(t *testing.T) {
	mem, fs, c := newFaultCache(t, 64, 32, Options{Capacity: 2})
	fs.SetTransientRates(0, 1, 1<<20)
	for n := int64(0); n < 6; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if d := c.Dirty(); d != 6 {
		t.Fatalf("dirty = %d, want all 6 retained across failed evictions", d)
	}
	fs.Disarm()
	if err := c.Flush(); !errors.Is(err, vdisk.ErrTransient) {
		t.Fatalf("Flush = %v, want sticky transient fault", err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("second Flush = %v, want nil", err)
	}
	buf := make([]byte, 32)
	for n := int64(0); n < 6; n++ {
		if err := mem.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d lost across eviction faults", n)
		}
	}
	// Evictions work again: pushing new dirty blocks through a capacity-2
	// cache forces write-backs on the healed device.
	for n := int64(20); n < 26; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n)+7)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("post-recovery Flush = %v", err)
	}
	for n := int64(20); n < 26; n++ {
		if err := mem.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n)+7)) {
			t.Fatalf("block %d wrong after recovery", n)
		}
	}
}

// TestPipelineResumeHardCapNoDeadlock: the dirty hard cap stalls writers
// until the pipeline catches up — but when the pipeline is down with a
// sticky error, writers must NOT wait for progress that cannot come.
func TestPipelineResumeHardCapNoDeadlock(t *testing.T) {
	mem, fs, c := newFaultCache(t, 256, 32, Options{Capacity: 128, WriteBehind: 4, FlushWorkers: 1})
	defer c.StopFlushers()
	fs.SetTransientRates(0, 1, 1<<20)

	done := make(chan error, 1)
	go func() {
		// 32 writes blow far past the 2x high-water hard cap; with the
		// pipeline erroring they must still complete instead of stalling.
		for n := int64(0); n < 32; n++ {
			if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	waitUntil(t, func() bool {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("writer failed: %v", err)
			}
			return true
		default:
			return false
		}
	})

	fs.Disarm()
	if err := c.Sync(); !errors.Is(err, vdisk.ErrTransient) {
		t.Fatalf("Sync = %v, want sticky transient fault", err)
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("second Sync = %v, want nil", err)
	}
	buf := make([]byte, 32)
	for n := int64(0); n < 32; n++ {
		if err := mem.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d not durable after stalled-writer recovery", n)
		}
	}
}
