package blockcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"stegfs/internal/vdisk"
)

// traceDev wraps a MemStore and records the order of device-level writes,
// optionally failing requests, so tests can observe write-back behaviour.
type traceDev struct {
	*vdisk.MemStore
	mu         sync.Mutex
	writeOrder []int64
	readErr    error
	writeErr   error
}

func newTraceDev(t *testing.T, blocks int64, bs int) *traceDev {
	t.Helper()
	store, err := vdisk.NewMemStore(blocks, bs)
	if err != nil {
		t.Fatalf("NewMemStore: %v", err)
	}
	return &traceDev{MemStore: store}
}

func (d *traceDev) ReadBlock(n int64, buf []byte) error {
	d.mu.Lock()
	err := d.readErr
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return d.MemStore.ReadBlock(n, buf)
}

func (d *traceDev) WriteBlock(n int64, buf []byte) error {
	d.mu.Lock()
	err := d.writeErr
	if err == nil {
		d.writeOrder = append(d.writeOrder, n)
	}
	d.mu.Unlock()
	if err != nil {
		return err
	}
	return d.MemStore.WriteBlock(n, buf)
}

func (d *traceDev) writes() []int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int64(nil), d.writeOrder...)
}

func (d *traceDev) resetWrites() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writeOrder = nil
}

func blockPayload(bs int, tag byte) []byte {
	buf := make([]byte, bs)
	for i := range buf {
		buf[i] = tag ^ byte(i)
	}
	return buf
}

func TestAccounting(t *testing.T) {
	const bs = 64
	cases := []struct {
		name     string
		capacity int
		run      func(t *testing.T, c *Cache, dev *traceDev)
		want     Stats
	}{
		{
			name:     "repeat reads hit",
			capacity: 4,
			run: func(t *testing.T, c *Cache, dev *traceDev) {
				buf := make([]byte, bs)
				for i := 0; i < 5; i++ {
					if err := c.ReadBlock(7, buf); err != nil {
						t.Fatal(err)
					}
				}
			},
			want: Stats{Hits: 4, Misses: 1},
		},
		{
			name:     "distinct reads miss",
			capacity: 8,
			run: func(t *testing.T, c *Cache, dev *traceDev) {
				buf := make([]byte, bs)
				for n := int64(0); n < 6; n++ {
					if err := c.ReadBlock(n, buf); err != nil {
						t.Fatal(err)
					}
				}
			},
			want: Stats{Misses: 6},
		},
		{
			name:     "capacity pressure evicts clean blocks",
			capacity: 2,
			run: func(t *testing.T, c *Cache, dev *traceDev) {
				buf := make([]byte, bs)
				for n := int64(0); n < 5; n++ {
					if err := c.ReadBlock(n, buf); err != nil {
						t.Fatal(err)
					}
				}
			},
			want: Stats{Misses: 5, Evictions: 3},
		},
		{
			name:     "dirty eviction writes back",
			capacity: 2,
			run: func(t *testing.T, c *Cache, dev *traceDev) {
				for n := int64(0); n < 4; n++ {
					if err := c.WriteBlock(n, blockPayload(bs, byte(n))); err != nil {
						t.Fatal(err)
					}
				}
			},
			want: Stats{Evictions: 2, WriteBacks: 2},
		},
		{
			name:     "write hit stays cached",
			capacity: 4,
			run: func(t *testing.T, c *Cache, dev *traceDev) {
				for i := 0; i < 3; i++ {
					if err := c.WriteBlock(9, blockPayload(bs, byte(i))); err != nil {
						t.Fatal(err)
					}
				}
				buf := make([]byte, bs)
				if err := c.ReadBlock(9, buf); err != nil {
					t.Fatal(err)
				}
			},
			want: Stats{Hits: 1},
		},
		{
			name:     "capacity zero is pass-through",
			capacity: 0,
			run: func(t *testing.T, c *Cache, dev *traceDev) {
				buf := make([]byte, bs)
				if err := c.WriteBlock(3, blockPayload(bs, 3)); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3; i++ {
					if err := c.ReadBlock(3, buf); err != nil {
						t.Fatal(err)
					}
				}
				if got := dev.writes(); len(got) != 1 || got[0] != 3 {
					t.Fatalf("pass-through writes = %v, want [3]", got)
				}
			},
			// Pass-through counters mirror the cached modes: every read is a
			// miss, every write a write-back — not the old asymmetric
			// miss-only accounting.
			want: Stats{Misses: 3, WriteBacks: 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dev := newTraceDev(t, 64, bs)
			c := New(dev, tc.capacity)
			tc.run(t, c, dev)
			if got := c.Stats(); got != tc.want {
				t.Errorf("stats = %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestReadYourWrites(t *testing.T) {
	for _, capacity := range []int{0, 1, 3, 64} {
		t.Run(fmt.Sprintf("cap=%d", capacity), func(t *testing.T) {
			dev := newTraceDev(t, 64, 32)
			c := New(dev, capacity)
			want := make(map[int64][]byte)
			// Overwrite a working set larger than the capacity, twice.
			for round := 0; round < 2; round++ {
				for n := int64(0); n < 10; n++ {
					p := blockPayload(32, byte(n)+byte(round)*17)
					want[n] = p
					if err := c.WriteBlock(n, p); err != nil {
						t.Fatal(err)
					}
				}
			}
			buf := make([]byte, 32)
			for n, p := range want {
				if err := c.ReadBlock(n, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, p) {
					t.Fatalf("block %d: read-your-writes violated", n)
				}
			}
		})
	}
}

func TestFlushOrdering(t *testing.T) {
	dev := newTraceDev(t, 256, 32)
	c := New(dev, 128)
	// Dirty a scattered set of blocks in descending / shuffled order.
	blocks := []int64{201, 3, 77, 150, 8, 42, 199, 0, 63}
	for _, n := range blocks {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	dev.resetWrites()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	got := dev.writes()
	if len(got) != len(blocks) {
		t.Fatalf("flush wrote %d blocks, want %d", len(got), len(blocks))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("write-back order not strictly ascending: %v", got)
		}
	}
	// Everything reached the device with the right contents.
	buf := make([]byte, 32)
	for _, n := range blocks {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d content wrong after flush", n)
		}
	}
}

func TestFlushInvariants(t *testing.T) {
	dev := newTraceDev(t, 64, 32)
	c := New(dev, 16)
	for n := int64(0); n < 8; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if d := c.Dirty(); d != 8 {
		t.Fatalf("dirty before flush = %d, want 8", d)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if d := c.Dirty(); d != 0 {
		t.Fatalf("dirty after flush = %d, want 0", d)
	}
	// A second flush is a no-op at the device.
	dev.resetWrites()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := dev.writes(); len(got) != 0 {
		t.Fatalf("idempotent flush wrote %v", got)
	}
	// Flushed blocks stay resident: re-reads are hits, not device reads.
	pre := c.Stats()
	buf := make([]byte, 32)
	if err := c.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != pre.Hits+1 {
		t.Fatalf("read after flush missed (stats %+v)", got)
	}
	if got := c.Stats().Flushes; got != 2 {
		t.Fatalf("flush count = %d, want 2", got)
	}
}

func TestErrorPropagation(t *testing.T) {
	readErr := errors.New("injected read error")
	writeErr := errors.New("injected write error")

	t.Run("read miss", func(t *testing.T) {
		dev := newTraceDev(t, 16, 32)
		dev.readErr = readErr
		c := New(dev, 4)
		if err := c.ReadBlock(1, make([]byte, 32)); !errors.Is(err, readErr) {
			t.Fatalf("err = %v, want injected", err)
		}
	})
	t.Run("flush", func(t *testing.T) {
		dev := newTraceDev(t, 16, 32)
		c := New(dev, 4)
		if err := c.WriteBlock(1, blockPayload(32, 1)); err != nil {
			t.Fatal(err)
		}
		dev.writeErr = writeErr
		if err := c.Flush(); !errors.Is(err, writeErr) {
			t.Fatalf("err = %v, want injected", err)
		}
		// Data survives the failed flush and lands once the device recovers.
		dev.writeErr = nil
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 32)
		if err := dev.MemStore.ReadBlock(1, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, 1)) {
			t.Fatal("dirty block lost across failed flush")
		}
	})
	t.Run("bad buffer", func(t *testing.T) {
		dev := newTraceDev(t, 16, 32)
		c := New(dev, 4)
		if err := c.ReadBlock(0, make([]byte, 16)); !errors.Is(err, vdisk.ErrBadBuffer) {
			t.Fatalf("err = %v, want ErrBadBuffer", err)
		}
		if err := c.WriteBlock(0, make([]byte, 16)); !errors.Is(err, vdisk.ErrBadBuffer) {
			t.Fatalf("err = %v, want ErrBadBuffer", err)
		}
	})
	t.Run("out of range write stays cached-free", func(t *testing.T) {
		dev := newTraceDev(t, 16, 32)
		c := New(dev, 4)
		if err := c.WriteBlock(99, make([]byte, 32)); !errors.Is(err, vdisk.ErrOutOfRange) {
			t.Fatalf("err = %v, want ErrOutOfRange", err)
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("flush after rejected write: %v", err)
		}
	})
}

func TestWriteThrough(t *testing.T) {
	dev := newTraceDev(t, 64, 32)
	c := NewWriteThrough(dev, 8)
	// Every write reaches the device immediately, in issue order.
	for _, n := range []int64{9, 3, 7} {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.writes(); len(got) != 3 || got[0] != 9 || got[1] != 3 || got[2] != 7 {
		t.Fatalf("write-through device writes = %v, want [9 3 7]", got)
	}
	if d := c.Dirty(); d != 0 {
		t.Fatalf("write-through left %d dirty blocks", d)
	}
	// Reads of written blocks are hits (the write populated the cache).
	buf := make([]byte, 32)
	if err := c.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blockPayload(32, 3)) {
		t.Fatal("write-through read-back mismatch")
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("read after write-through write missed: %+v", got)
	}
	// Flush is a no-op: nothing deferred.
	dev.resetWrites()
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := dev.writes(); len(got) != 0 {
		t.Fatalf("flush of write-through cache wrote %v", got)
	}
	// A failed device write surfaces immediately and does not populate the
	// cache with unpersisted data.
	dev.writeErr = errors.New("injected")
	if err := c.WriteBlock(11, blockPayload(32, 11)); err == nil {
		t.Fatal("write-through swallowed device error")
	}
	dev.writeErr = nil
	pre := c.Stats()
	if err := c.ReadBlock(11, buf); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Misses != pre.Misses+1 {
		t.Fatal("failed write left stale data in the cache")
	}
}

func TestInvalidate(t *testing.T) {
	dev := newTraceDev(t, 16, 32)
	c := New(dev, 8)
	if err := c.WriteBlock(2, blockPayload(32, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Invalidate(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	pre := c.Stats()
	if err := c.ReadBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Misses != pre.Misses+1 {
		t.Fatal("read after Invalidate did not go to the device")
	}
	if !bytes.Equal(buf, blockPayload(32, 2)) {
		t.Fatal("dirty data lost by Invalidate")
	}
}

func TestSyncReachesStore(t *testing.T) {
	dev := newTraceDev(t, 16, 32)
	c := New(dev, 8)
	if err := c.WriteBlock(5, blockPayload(32, 5)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	if err := dev.MemStore.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, blockPayload(32, 5)) {
		t.Fatal("Sync did not push dirty block to the store")
	}
}

// TestConcurrentAccess hammers the cache from several goroutines; run with
// -race. Each goroutine owns a disjoint block range so contents are also
// verifiable.
func TestConcurrentAccess(t *testing.T) {
	dev := newTraceDev(t, 256, 32)
	c := New(dev, 32)
	const workers = 8
	const perWorker = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := int64(w * perWorker)
			buf := make([]byte, 32)
			for round := 0; round < 20; round++ {
				for i := int64(0); i < perWorker; i++ {
					n := base + i
					p := blockPayload(32, byte(n)+byte(round))
					if err := c.WriteBlock(n, p); err != nil {
						errs <- err
						return
					}
					if err := c.ReadBlock(n, buf); err != nil {
						errs <- err
						return
					}
					if !bytes.Equal(buf, p) {
						errs <- fmt.Errorf("worker %d block %d torn read", w, n)
						return
					}
				}
				if round%5 == 0 {
					if err := c.Flush(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// Final state on the device matches the last round written.
	buf := make([]byte, 32)
	for n := int64(0); n < workers*perWorker; n++ {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n)+19)) {
			t.Fatalf("block %d final content wrong", n)
		}
	}
}

// TestElevatorSweepCursor: truncated flush runs must service the dirty
// backlog as one repeating ascending sweep (C-SCAN) — each run picks up
// where the previous one stopped and wraps at the top of the stroke —
// while untruncated (barrier) runs always return the whole backlog in
// ascending order and leave the cursor alone.
func TestElevatorSweepCursor(t *testing.T) {
	dev := newTraceDev(t, 256, 64)
	c := New(dev, 256)
	defer c.Close()
	payload := blockPayload(64, 0x5A)
	for i := 0; i < 100; i++ {
		if err := c.WriteBlock(int64(i), payload); err != nil {
			t.Fatal(err)
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	blocksOf := func(run []*entry) []int64 {
		ns := make([]int64, len(run))
		for i, e := range run {
			ns[i] = e.block
		}
		return ns
	}
	want := func(label string, got []int64, from, n int) {
		t.Helper()
		if len(got) != n {
			t.Fatalf("%s: got %d blocks %v, want %d", label, len(got), got, n)
		}
		for i, b := range got {
			if b != int64((from+i)%100) {
				t.Fatalf("%s: block[%d] = %d, want %d (run %v)", label, i, b, (from+i)%100, got)
			}
		}
	}

	want("run 1", blocksOf(c.dirtyRunLocked(40)), 0, 40)
	want("run 2", blocksOf(c.dirtyRunLocked(40)), 40, 40)
	// Third run reaches the top of the stroke and wraps, servicing 80..99
	// plus the wrapped tail 0..19 — re-sorted ascending so the batch keeps
	// the pipeline's sorted-submission contract.
	wrap := blocksOf(c.dirtyRunLocked(40))
	if len(wrap) != 40 {
		t.Fatalf("run 3 (wrap): got %d blocks %v, want 40", len(wrap), wrap)
	}
	for i, b := range wrap {
		w := int64(i) // 0..19
		if i >= 20 {
			w = int64(i) + 60 // 80..99
		}
		if b != w {
			t.Fatalf("run 3 (wrap): block[%d] = %d, want %d (run %v)", i, b, w, wrap)
		}
	}
	want("run 4", blocksOf(c.dirtyRunLocked(40)), 20, 40)

	// An untruncated run (the barrier path) is the whole backlog ascending,
	// regardless of where the sweep cursor sits.
	want("barrier run", blocksOf(c.dirtyRunLocked(0)), 0, 100)
}
