package blockcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"stegfs/internal/vdisk"
)

func newCache(t *testing.T, dev vdisk.Device, o Options) *Cache {
	t.Helper()
	c, err := NewWithOptions(dev, o)
	if err != nil {
		t.Fatalf("NewWithOptions(%+v): %v", o, err)
	}
	return c
}

func TestPolicyRegistry(t *testing.T) {
	for _, name := range append(PolicyNames(), "", "twoq", "ARC") {
		p, err := NewPolicy(name, 8)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("NewPolicy(%q) returned unnamed policy", name)
		}
	}
	if _, err := NewPolicy("clock", 8); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := NewWithOptions(nil, Options{Capacity: 4, Policy: "nope"}); err == nil {
		t.Fatal("cache accepted unknown policy")
	}
}

// TestPolicyReadYourWrites reruns the cache-correctness workload under every
// policy: whatever the eviction order, the cache must never lose or tear a
// block.
func TestPolicyReadYourWrites(t *testing.T) {
	for _, policy := range PolicyNames() {
		for _, capacity := range []int{1, 3, 7, 64} {
			t.Run(fmt.Sprintf("%s/cap=%d", policy, capacity), func(t *testing.T) {
				dev := newTraceDev(t, 128, 32)
				c := newCache(t, dev, Options{Capacity: capacity, Policy: policy})
				want := make(map[int64][]byte)
				for round := 0; round < 3; round++ {
					for n := int64(0); n < 20; n++ {
						p := blockPayload(32, byte(n)+byte(round)*31)
						want[n] = p
						if err := c.WriteBlock(n, p); err != nil {
							t.Fatal(err)
						}
					}
					// Interleave reads so hits and misses both occur.
					buf := make([]byte, 32)
					for n := int64(0); n < 20; n += 3 {
						if err := c.ReadBlock(n, buf); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(buf, want[n]) {
							t.Fatalf("block %d torn mid-round", n)
						}
					}
				}
				if err := c.Flush(); err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, 32)
				for n, p := range want {
					if err := dev.MemStore.ReadBlock(n, buf); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(buf, p) {
						t.Fatalf("block %d wrong on device after flush", n)
					}
				}
			})
		}
	}
}

// scanHotHitRate replays the thrash-regime access pattern — a hot set
// re-read after every scan burst, with the scan+hot reuse distance exceeding
// the capacity — and returns the policy's hit rate on the post-warmup
// rounds. With cyclic=false every scan burst touches fresh blocks (pure
// one-shot scan pollution); with cyclic=true the same scan blocks recur each
// round, so a big-enough cache can serve everything.
func scanHotHitRate(t *testing.T, policy string, capacity, hotBlocks, scanBlocks, rounds int, cyclic bool) float64 {
	t.Helper()
	total := int64(hotBlocks + scanBlocks*rounds + 16)
	store, err := vdisk.NewMemStore(total, 32)
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(t, store, Options{Capacity: capacity, Policy: policy})
	buf := make([]byte, 32)
	readAll := func(lo, hi int64) {
		for n := lo; n < hi; n++ {
			if err := c.ReadBlock(n, buf); err != nil {
				t.Fatal(err)
			}
		}
	}
	var pre Stats
	for r := 0; r < rounds; r++ {
		if r == 1 {
			pre = c.Stats() // round 0 is cold for every policy
		}
		// One scan burst, then the full hot sweep.
		scanLo := int64(hotBlocks + r*scanBlocks)
		if cyclic {
			scanLo = int64(hotBlocks)
		}
		readAll(scanLo, scanLo+int64(scanBlocks))
		readAll(0, int64(hotBlocks))
	}
	return c.Stats().Sub(pre).HitRate()
}

// TestScanResistantPoliciesBeatLRUInThrashRegime pins the tentpole's whole
// point: at a capacity below hot+scan, LRU serves (almost) nothing while ARC
// and 2Q keep the hot set resident.
func TestScanResistantPoliciesBeatLRUInThrashRegime(t *testing.T) {
	// 96 hot blocks + 160-block scans, capacity 192: reuse distance 256 >
	// capacity, hot set exactly half the capacity.
	const capacity, hot, scan, rounds = 192, 96, 160, 6
	lru := scanHotHitRate(t, PolicyLRU, capacity, hot, scan, rounds, false)
	arc := scanHotHitRate(t, PolicyARC, capacity, hot, scan, rounds, false)
	twoQ := scanHotHitRate(t, Policy2Q, capacity, hot, scan, rounds, false)
	t.Logf("thrash-regime hit rates: lru=%.1f%% arc=%.1f%% 2q=%.1f%%", lru*100, arc*100, twoQ*100)
	if lru > 0.05 {
		t.Errorf("LRU hit rate %.1f%% in thrash regime; the regime is mis-built if this is high", lru*100)
	}
	// The hot set is 96 of 256 accesses per round ~ 37.5% ceiling.
	if arc < 0.25 {
		t.Errorf("ARC hit rate %.1f%%, want >= 25%% (hot set should be resident)", arc*100)
	}
	if twoQ < 0.25 {
		t.Errorf("2Q hit rate %.1f%%, want >= 25%% (hot set should be resident)", twoQ*100)
	}
}

// TestPoliciesConvergeAtFullCapacity: once everything fits, every policy
// serves the cyclic workload entirely from memory after the cold round.
func TestPoliciesConvergeAtFullCapacity(t *testing.T) {
	for _, policy := range PolicyNames() {
		rate := scanHotHitRate(t, policy, 4096, 96, 160, 4, true)
		if rate < 0.999 {
			t.Errorf("%s: hit rate %.2f%% at full capacity, want 100%%", policy, rate*100)
		}
	}
}

func TestWriteBehindBoundsDirtyBacklog(t *testing.T) {
	dev := newTraceDev(t, 256, 32)
	c := newCache(t, dev, Options{Capacity: 128, WriteBehind: 16})
	// Dirty 40 blocks in descending order: well past the high-water mark.
	for n := int64(39); n >= 0; n-- {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	// The background flusher drains asynchronously; once it idles the
	// backlog must sit at (or below) the high-water mark.
	waitUntil(t, func() bool { return c.FlushInFlight() == 0 && c.Dirty() <= 16 })
	if d := c.Dirty(); d > 16 {
		t.Fatalf("dirty backlog %d exceeds high-water mark 16", d)
	}
	st := c.Stats()
	if st.WriteBehinds == 0 {
		t.Fatal("write-behind never triggered")
	}
	if st.WriteBacks == 0 {
		t.Fatal("write-behind issued no device writes")
	}
	// Early write-backs stream in ascending order within each run.
	writes := dev.writes()
	if len(writes) == 0 {
		t.Fatal("no device writes observed")
	}
	// Blocks written early stay resident: re-reading them is a pure hit.
	pre := c.Stats()
	buf := make([]byte, 32)
	for n := int64(0); n < 40; n++ {
		if err := c.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d wrong after write-behind", n)
		}
	}
	if got := c.Stats().Sub(pre); got.Misses != 0 {
		t.Fatalf("write-behind evicted blocks: %d misses on resident re-reads", got.Misses)
	}
	// Flush completes the remainder; device ends fully consistent.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n < 40; n++ {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d wrong on device after flush", n)
		}
	}
}

func TestWriteBehindRunsAscending(t *testing.T) {
	dev := newTraceDev(t, 512, 32)
	// FlushWorkers < 0: the synchronous fallback runs the write-behind run
	// in the writing goroutine, so exactly one deterministic run is observed.
	c := newCache(t, dev, Options{Capacity: 256, WriteBehind: 8, FlushWorkers: -1})
	// Scattered dirty blocks, written in a shuffled order.
	blocks := []int64{300, 7, 150, 42, 9, 260, 81, 13, 199, 2}
	for _, n := range blocks {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	got := dev.writes()
	if len(got) == 0 {
		t.Fatal("write-behind high-water mark never crossed")
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("write-behind run not ascending: %v", got)
		}
	}
}

// TestStickyWriteBackError: a transient device failure during an eviction
// write-back must not vanish — the next barrier reports it even though the
// retry succeeds, and the data survives throughout.
func TestStickyWriteBackError(t *testing.T) {
	injected := errors.New("injected write error")
	dev := newTraceDev(t, 64, 32)
	c := newCache(t, dev, Options{Capacity: 2})
	dev.writeErr = injected
	// Overflow the capacity with dirty blocks: evictions fail silently.
	for n := int64(0); n < 5; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if d := c.Dirty(); d != 5 {
		t.Fatalf("dirty = %d, want all 5 retained after failed evictions", d)
	}
	// Device recovers; the barrier must still surface the earlier failure.
	dev.writeErr = nil
	if err := c.Flush(); !errors.Is(err, injected) {
		t.Fatalf("first Flush error = %v, want sticky injected error", err)
	}
	// The flush itself succeeded: data is on the device, state is clean.
	if err := c.Flush(); err != nil {
		t.Fatalf("second Flush = %v, want nil (sticky error reported once)", err)
	}
	buf := make([]byte, 32)
	for n := int64(0); n < 5; n++ {
		if err := dev.MemStore.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, blockPayload(32, byte(n))) {
			t.Fatalf("block %d lost across failed eviction", n)
		}
	}
}

func TestStickyWriteBehindError(t *testing.T) {
	injected := errors.New("injected write error")
	dev := newTraceDev(t, 64, 32)
	// Synchronous write-behind: the failing run records its sticky error
	// before WriteBlock returns (the async variant lives in pipeline_test).
	c := newCache(t, dev, Options{Capacity: 32, WriteBehind: 4, FlushWorkers: -1})
	dev.writeErr = injected
	for n := int64(0); n < 8; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	dev.writeErr = nil
	if err := c.Sync(); !errors.Is(err, injected) {
		t.Fatalf("Sync error = %v, want sticky injected error", err)
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("second Sync = %v, want nil", err)
	}
}

// TestStickyErrorDoesNotSkipBarrierWork: surfacing the historical failure
// must not short-circuit the barrier's real job — Invalidate still drops
// every entry, and a second barrier is clean.
func TestStickyErrorDoesNotSkipBarrierWork(t *testing.T) {
	injected := errors.New("injected write error")
	dev := newTraceDev(t, 64, 32)
	c := newCache(t, dev, Options{Capacity: 2})
	dev.writeErr = injected
	for n := int64(0); n < 4; n++ {
		if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	dev.writeErr = nil
	if err := c.Invalidate(); !errors.Is(err, injected) {
		t.Fatalf("Invalidate = %v, want sticky injected error", err)
	}
	// Despite the reported sticky error the cache really was invalidated:
	// re-reads go to the device.
	pre := c.Stats()
	buf := make([]byte, 32)
	if err := c.ReadBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats(); got.Misses != pre.Misses+1 {
		t.Fatal("Invalidate with sticky error left entries resident")
	}
	if !bytes.Equal(buf, blockPayload(32, 0)) {
		t.Fatal("dirty data lost across sticky Invalidate")
	}
}

// TestFailedWriteBackStillEvictsCleanBlocks: with the device refusing
// writes, eviction must keep making progress on clean residents instead of
// retrying the same dirty victim forever — under every policy.
func TestFailedWriteBackStillEvictsCleanBlocks(t *testing.T) {
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			dev := newTraceDev(t, 64, 32)
			c := newCache(t, dev, Options{Capacity: 4, Policy: policy})
			buf := make([]byte, 32)
			for n := int64(0); n < 4; n++ {
				if err := c.ReadBlock(n, buf); err != nil { // clean residents
					t.Fatal(err)
				}
			}
			dev.writeErr = errors.New("injected write error")
			for n := int64(10); n < 13; n++ {
				if err := c.WriteBlock(n, blockPayload(32, byte(n))); err != nil {
					t.Fatal(err)
				}
			}
			if got := c.Stats().Evictions; got < 3 {
				t.Fatalf("evictions = %d, want >= 3 (clean blocks must still evict)", got)
			}
			dev.writeErr = nil
			if err := c.Flush(); err != nil {
				// The sticky error may or may not have been recorded depending
				// on whether a dirty victim was ever tried; either way the
				// second barrier must be clean and the data durable.
				if err2 := c.Flush(); err2 != nil {
					t.Fatalf("second Flush = %v, want nil", err2)
				}
			}
			for n := int64(10); n < 13; n++ {
				if err := dev.MemStore.ReadBlock(n, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, blockPayload(32, byte(n))) {
					t.Fatalf("block %d lost under failing-device eviction", n)
				}
			}
		})
	}
}

// TestPolicyConcurrentAccess hammers every policy from several goroutines;
// run with -race. Each goroutine owns a disjoint block range so contents are
// verifiable.
func TestPolicyConcurrentAccess(t *testing.T) {
	for _, policy := range PolicyNames() {
		t.Run(policy, func(t *testing.T) {
			dev := newTraceDev(t, 256, 32)
			c := newCache(t, dev, Options{Capacity: 32, Policy: policy, WriteBehind: 12})
			const workers = 8
			const perWorker = 16
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := int64(w * perWorker)
					buf := make([]byte, 32)
					for round := 0; round < 12; round++ {
						for i := int64(0); i < perWorker; i++ {
							n := base + i
							p := blockPayload(32, byte(n)+byte(round))
							if err := c.WriteBlock(n, p); err != nil {
								errs <- err
								return
							}
							if err := c.ReadBlock(n, buf); err != nil {
								errs <- err
								return
							}
							if !bytes.Equal(buf, p) {
								errs <- fmt.Errorf("worker %d block %d torn read", w, n)
								return
							}
						}
						if round%5 == 0 {
							if err := c.Flush(); err != nil {
								errs <- err
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 32)
			for n := int64(0); n < workers*perWorker; n++ {
				if err := dev.MemStore.ReadBlock(n, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, blockPayload(32, byte(n)+11)) {
					t.Fatalf("block %d final content wrong", n)
				}
			}
		})
	}
}
