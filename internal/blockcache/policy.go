package blockcache

import (
	"container/list"
	"fmt"
	"strings"
)

// Policy names accepted by NewPolicy and the -cache-policy flags.
const (
	PolicyLRU = "lru" // least recently used (the classic buffer-cache default)
	PolicyARC = "arc" // adaptive replacement cache (Megiddo & Modha, FAST 2003)
	Policy2Q  = "2q"  // two-queue (Johnson & Shasha, VLDB 1994), simplified variant
)

// PolicyNames lists the available replacement policies in display order.
func PolicyNames() []string { return []string{PolicyLRU, PolicyARC, Policy2Q} }

// Policy decides which resident block the cache evicts under capacity
// pressure. The Cache owns the data and the dirty state; the policy only
// tracks block numbers. Implementations are not safe for concurrent use —
// the Cache calls them with its mutex held.
//
// Lifecycle of a block through the hooks:
//
//	Insert(n)  n became resident (read miss fill or fresh write)
//	Touch(n)   a resident n was hit again (read or overwrite)
//	Victim()   peek the block the policy wants evicted next
//	Remove(n)  n left the resident set after a successful eviction
//	Reset()    drop all state, resident and ghost (cache Invalidate)
//
// Victim does not remove: the cache must first write the victim back if it
// is dirty, and only calls Remove once the device write succeeded. If the
// write-back fails the cache calls Touch(victim) instead, so the policy
// re-prioritizes it and the data stays resident.
type Policy interface {
	// Name returns the policy's registry name (e.g. "lru").
	Name() string
	// Touch records a hit on resident block n.
	Touch(n int64)
	// Insert records block n becoming resident.
	Insert(n int64)
	// Victim returns the preferred eviction candidate without removing it.
	// ok is false when nothing is resident.
	Victim() (n int64, ok bool)
	// Remove records resident block n being evicted. Scan-resistant
	// policies move n to a ghost list here.
	Remove(n int64)
	// Reset drops all policy state.
	Reset()
}

// NewPolicy builds the named replacement policy for a cache of the given
// capacity. An empty name selects LRU. Unknown names are an error listing
// the valid choices.
func NewPolicy(name string, capacity int) (Policy, error) {
	switch strings.ToLower(name) {
	case "", PolicyLRU:
		return newLRUPolicy(), nil
	case PolicyARC:
		return newARCPolicy(capacity), nil
	case Policy2Q, "twoq":
		return newTwoQPolicy(capacity), nil
	default:
		return nil, fmt.Errorf("blockcache: unknown policy %q (have %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// --- LRU ---------------------------------------------------------------------

// lruPolicy is the classic recency stack: hits and inserts move to the
// front, the victim is the back. It thrashes on cyclic scans longer than
// the capacity — exactly the regime ARC and 2Q exist for.
type lruPolicy struct {
	order *list.List // of int64; front = most recently used
	elems map[int64]*list.Element
}

func newLRUPolicy() *lruPolicy {
	return &lruPolicy{order: list.New(), elems: make(map[int64]*list.Element)}
}

func (p *lruPolicy) Name() string { return PolicyLRU }

func (p *lruPolicy) Touch(n int64) {
	if e, ok := p.elems[n]; ok {
		p.order.MoveToFront(e)
	}
}

func (p *lruPolicy) Insert(n int64) {
	if e, ok := p.elems[n]; ok {
		p.order.MoveToFront(e)
		return
	}
	p.elems[n] = p.order.PushFront(n)
}

func (p *lruPolicy) Victim() (int64, bool) {
	back := p.order.Back()
	if back == nil {
		return 0, false
	}
	return back.Value.(int64), true
}

func (p *lruPolicy) Remove(n int64) {
	if e, ok := p.elems[n]; ok {
		p.order.Remove(e)
		delete(p.elems, n)
	}
}

func (p *lruPolicy) Reset() {
	p.order.Init()
	p.elems = make(map[int64]*list.Element)
}

var _ Policy = (*lruPolicy)(nil)
