package blockcache

import "container/list"

// twoQPolicy implements the simplified 2Q algorithm (Johnson & Shasha,
// "2Q: A Low Overhead High Performance Buffer Management Replacement
// Algorithm", VLDB 1994). New blocks enter the A1in FIFO; only blocks
// whose number resurfaces in the A1out ghost queue — i.e. blocks re-read
// after leaving the FIFO — are admitted to the long-term Am LRU. One-shot
// scan blocks therefore flow through A1in and never displace Am, which is
// where the workload's hot header/p-tree/directory blocks settle.
//
// Tuning follows the paper's recommendation: Kin (FIFO share) is a quarter
// of the capacity; Kout (ghost length) is sized at twice the capacity so a
// hot block's ghost survives one full scan between touches.
type twoQPolicy struct {
	kin  int // max A1in residents before the FIFO is preferred for eviction
	kout int // max A1out ghost entries

	a1in  *list.List // resident FIFO; front = newest
	am    *list.List // resident LRU; front = MRU
	a1out *list.List // ghost FIFO of block numbers; front = newest
	where map[int64]*twoQEntry
}

// 2Q list tags for twoQEntry.list.
const (
	twoQA1in = iota
	twoQAm
	twoQA1out
)

type twoQEntry struct {
	elem *list.Element
	list int
}

func newTwoQPolicy(capacity int) *twoQPolicy {
	if capacity < 1 {
		capacity = 1
	}
	return &twoQPolicy{
		kin:   max(1, capacity/4),
		kout:  max(1, 2*capacity),
		a1in:  list.New(),
		am:    list.New(),
		a1out: list.New(),
		where: make(map[int64]*twoQEntry),
	}
}

func (p *twoQPolicy) Name() string { return Policy2Q }

// Touch refreshes an Am hit. An A1in hit re-fronts the block within A1in
// but never promotes it: correlated re-references inside one pass must not
// count as long-term reuse (that is the algorithm's scan filter). The
// re-front is a deliberate deviation from the paper's pure FIFO — the
// Policy contract requires Touch(victim) after a failed write-back to
// de-prioritize the victim so eviction can make progress on other blocks.
func (p *twoQPolicy) Touch(n int64) {
	e, ok := p.where[n]
	if !ok {
		return
	}
	switch e.list {
	case twoQAm:
		p.am.MoveToFront(e.elem)
	case twoQA1in:
		p.a1in.MoveToFront(e.elem)
	}
}

// Insert admits a block: ghosts of recently evicted FIFO blocks go to Am
// (their re-reference proves reuse beyond a single pass), everything else
// starts in A1in.
func (p *twoQPolicy) Insert(n int64) {
	if e, ok := p.where[n]; ok {
		switch e.list {
		case twoQA1in, twoQAm:
			p.Touch(n) // defensive; the cache never double-inserts
		case twoQA1out:
			p.a1out.Remove(e.elem)
			e.elem = p.am.PushFront(n)
			e.list = twoQAm
		}
		return
	}
	p.where[n] = &twoQEntry{elem: p.a1in.PushFront(n), list: twoQA1in}
}

// Victim prefers draining the FIFO once it exceeds its share, so scans
// evict their own blocks instead of Am's.
func (p *twoQPolicy) Victim() (int64, bool) {
	if p.a1in.Len() > p.kin || p.am.Len() == 0 {
		if back := p.a1in.Back(); back != nil {
			return back.Value.(int64), true
		}
	}
	if back := p.am.Back(); back != nil {
		return back.Value.(int64), true
	}
	return 0, false
}

// Remove retires an evicted block: FIFO evictions leave a ghost in A1out,
// Am evictions are forgotten entirely.
func (p *twoQPolicy) Remove(n int64) {
	e, ok := p.where[n]
	if !ok {
		return
	}
	switch e.list {
	case twoQA1in:
		p.a1in.Remove(e.elem)
		e.elem = p.a1out.PushFront(n)
		e.list = twoQA1out
		for p.a1out.Len() > p.kout {
			back := p.a1out.Back()
			old := back.Value.(int64)
			p.a1out.Remove(back)
			delete(p.where, old)
		}
	case twoQAm:
		p.am.Remove(e.elem)
		delete(p.where, n)
	case twoQA1out:
		p.a1out.Remove(e.elem)
		delete(p.where, n)
	}
}

func (p *twoQPolicy) Reset() {
	p.a1in.Init()
	p.am.Init()
	p.a1out.Init()
	p.where = make(map[int64]*twoQEntry)
}

var _ Policy = (*twoQPolicy)(nil)
