// Package blockcache implements a buffered block cache between the file
// systems and the vdisk device layer.
//
// The ICDE 2003 StegFS evaluation charges every hidden-file header probe,
// p-tree hop and stegdb page touch full mechanical disk cost; hot metadata
// blocks (superblock, bitmap, headers, B-tree interior pages) are re-read on
// every access. Cache wraps any vdisk.Device with a block cache that absorbs
// those repeated reads and batches writes: dirty blocks are held in memory
// and written back in ascending block order, so the flush pass streams over
// the (simulated or real) platter instead of random-seeking.
//
// # Replacement policies
//
// Eviction is delegated to a pluggable Policy. Three are built in:
//
//   - "lru" — classic recency stack. Ideal once capacity covers the working
//     set, but a cyclic scan even one block larger than the cache evicts
//     every entry just before its reuse, collapsing to a 0% hit rate.
//   - "arc" — adaptive replacement (Megiddo & Modha). Ghost lists detect
//     whether recency or frequency deserved the space and re-balance
//     continuously; repeatedly probed metadata survives data-block scans.
//   - "2q" — two-queue (Johnson & Shasha). A small FIFO absorbs one-shot
//     scan blocks; only blocks re-referenced after leaving the FIFO enter
//     the protected LRU. Cheaper bookkeeping than ARC, no adaptation.
//
// Under the StegFS hidden-file workload (long data scans interleaved with
// hot header/p-tree/directory re-reads) ARC and 2Q retain the hot metadata
// at capacities far below the total working set, where LRU caches nothing;
// see the A4 ablation in ROADMAP.md. LRU remains the default.
//
// # The flush pipeline
//
// All deferred device writes run through one pipeline: dirty entries are
// collected into runs sorted by block number, marked flush-in-flight, and
// submitted via vdisk.WriteBlocks OUTSIDE the cache mutex, so a writer
// hitting the cache never waits behind the device. Write-behind
// (Options.WriteBehind) hands those runs to a bounded pool of background
// flusher goroutines (Options.FlushWorkers); barriers (Flush/Sync/Close/
// Invalidate) drain the in-flight runs and then batch the remainder
// themselves. A block re-dirtied while its flush is in flight stays dirty —
// the write wins and the next run picks up the fresh data — so read-your-
// writes and barrier completeness hold across the unlocked window.
//
// The cache is a write-back cache, so crash consistency is the caller's
// responsibility: callers must Flush (or Sync) before any point where the
// on-device image has to be self-consistent. stegfs.FS does this around its
// superblock/bitmap writes so that data blocks always reach the device
// before the metadata that references them. Write-behind bounds how much
// dirty data those barriers can accumulate without weakening them: the cache
// cannot tell data from metadata and flushes whatever is dirty, but issuing
// any deferred write earlier than its barrier is harmless — stegfs's
// consistency rests solely on the superblock/bitmap being written inside
// Sync after a full Flush, and that ordering is untouched.
package blockcache

import (
	"fmt"
	"sort"
	"sync"

	"stegfs/internal/vdisk"
)

// Stats counts cache activity. Counters only ever increase; read a snapshot
// with Cache.Stats. All counters record successful operations only — a
// failed device read or write leaves every counter untouched, so windowed
// ablation stats stay honest under injected faults.
type Stats struct {
	Hits         int64 // reads served from the cache
	Misses       int64 // reads that went to the device
	Evictions    int64 // entries displaced by capacity pressure
	WriteBacks   int64 // dirty (or pass-through/write-through) blocks written to the device
	Flushes      int64 // explicit Flush/Sync barriers
	WriteBehinds int64 // write-behind runs triggered by the high-water mark
	FlushBatches int64 // batched (sorted, multi-block) flush submissions to the device
	FlushStalls  int64 // writers stalled at the hard dirty cap waiting for the flusher
}

// Sub returns s - o counter-wise. Benchmarks snapshot the counters before a
// measurement window and subtract to get windowed stats.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:         s.Hits - o.Hits,
		Misses:       s.Misses - o.Misses,
		Evictions:    s.Evictions - o.Evictions,
		WriteBacks:   s.WriteBacks - o.WriteBacks,
		Flushes:      s.Flushes - o.Flushes,
		WriteBehinds: s.WriteBehinds - o.WriteBehinds,
		FlushBatches: s.FlushBatches - o.FlushBatches,
		FlushStalls:  s.FlushStalls - o.FlushStalls,
	}
}

// HitRate returns the fraction of reads served from the cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached block. data always holds exactly one device block.
type entry struct {
	block    int64
	data     []byte
	dirty    bool
	flushing bool   // a staged copy is being written by the flush pipeline
	gen      uint64 // bumped on every write; detects re-dirty during a flight
}

// maxFlushRun caps how many blocks one pipeline submission stages (and
// copies) at a time; barriers loop until clean, so the cap bounds staging
// memory without bounding a drain.
const maxFlushRun = 4096

// maxFlushWorkers bounds the background flusher pool.
const maxFlushWorkers = 16

// Options configures a Cache built with NewWithOptions.
type Options struct {
	// Capacity is the maximum number of resident blocks. <= 0 disables
	// caching entirely (all I/O passes straight through).
	Capacity int
	// Policy names the replacement policy: "lru" (default), "arc" or "2q".
	Policy string
	// WriteThrough makes every write reach the device synchronously; see
	// NewWriteThrough.
	WriteThrough bool
	// WriteBehind is the dirty-block high-water mark. When more than this
	// many dirty blocks accumulate, the flush pipeline writes dirty blocks
	// back in ascending block order — lowest block numbers first, so the run
	// streams across the platter — until half the mark remains, without
	// waiting for the next Flush. With FlushWorkers > 0 the runs are issued
	// by background goroutines and the writer returns immediately; writers
	// only stall once twice the mark is dirty (hard cap back-pressure).
	// 0 disables write-behind. Ignored in write-through mode (nothing is
	// ever deferred there).
	WriteBehind int
	// FlushWorkers sets the number of background flusher goroutines that
	// service write-behind runs. 0 selects the default of 1; negative
	// disables the background pool, making write-behind synchronous in the
	// writing goroutine (still batched and outside the mutex). Without
	// WriteBehind no background flusher is started — barriers then own all
	// deferred writes.
	FlushWorkers int
}

// Cache is a block cache over a vdisk.Device with a pluggable replacement
// policy. It implements vdisk.Device itself, so every layer written against
// the device interface (plainfs, stegfs, stegdb's pager via hidden files)
// runs through it unchanged. A Cache with capacity 0 is a transparent
// pass-through.
//
// Cache is safe for concurrent use.
type Cache struct {
	// c.mu is a pure metadata lock: device I/O must never run under it
	// (enforced by the noio flag). The four deliberate exceptions —
	// pass-through, write-through and eviction write-back — carry audited
	// lockcheck:ignore annotations at the call sites.
	//
	// lockcheck:level 60 volume/cacheMu noio
	mu           sync.Mutex
	bgWake       *sync.Cond // wakes the background flushers (work or shutdown)
	flushDone    *sync.Cond // signaled when a flush run completes (barriers, back-pressure)
	dev          vdisk.Device
	cap          int
	writeThrough bool
	highWater    int // write-behind high-water mark; 0 = disabled
	// lockcheck:guardedby mu
	workers int // background flusher goroutines (0 = synchronous write-behind)
	// lockcheck:guardedby mu
	policy Policy
	// lockcheck:guardedby mu
	entries map[int64]*entry
	// lockcheck:guardedby mu
	inflight map[int64]*fetch // miss fetches in progress (see ReadBlock)
	// lockcheck:guardedby mu
	dirty int // resident dirty blocks (staged ones included)
	// lockcheck:guardedby mu
	staged int // dirty blocks currently flush-in-flight
	// lockcheck:guardedby mu
	draining bool // write-behind hysteresis: past high water, not yet at low
	// lockcheck:guardedby mu
	closed bool
	wg     sync.WaitGroup
	// lockcheck:guardedby mu
	sweep int64 // elevator cursor: where the next truncated flush run starts
	// lockcheck:guardedby mu
	wbErr error // sticky deferred write-back failure; surfaced at the next barrier
	// lockcheck:guardedby mu
	stats Stats
}

// fetch tracks one in-flight miss read. Misses release c.mu while the device
// request runs, so concurrent readers can overlap their device waits; the
// fetch entry dedups concurrent misses of the same block (single-flight) and
// records whether a write raced the fetch (in which case the fetched bytes
// are stale and must not enter the cache).
type fetch struct {
	done  chan struct{}
	stale bool // a WriteBlock for this block landed while the fetch was in flight
}

// New wraps dev in a write-back LRU cache holding up to capacity blocks.
// capacity <= 0 disables caching entirely (all I/O passes straight through).
func New(dev vdisk.Device, capacity int) *Cache {
	c, err := NewWithOptions(dev, Options{Capacity: capacity})
	if err != nil {
		panic("blockcache: default options invalid: " + err.Error()) // unreachable
	}
	return c
}

// NewWriteThrough wraps dev in a write-through LRU cache: reads are cached,
// but every write goes to the device synchronously, so no data is ever
// deferred and Flush is a no-op. Timing experiments use this mode so the
// device clock charges every write inside the measurement window; callers
// who want batched write-back with explicit barriers use New.
func NewWriteThrough(dev vdisk.Device, capacity int) *Cache {
	c, err := NewWithOptions(dev, Options{Capacity: capacity, WriteThrough: true})
	if err != nil {
		panic("blockcache: default options invalid: " + err.Error()) // unreachable
	}
	return c
}

// NewWithOptions wraps dev in a cache configured by o. It fails only on an
// unknown policy name.
func NewWithOptions(dev vdisk.Device, o Options) (*Cache, error) {
	if o.Capacity < 0 {
		o.Capacity = 0
	}
	pol, err := NewPolicy(o.Policy, o.Capacity)
	if err != nil {
		return nil, err
	}
	if o.WriteBehind < 0 || o.WriteThrough {
		o.WriteBehind = 0
	}
	workers := o.FlushWorkers
	if workers == 0 {
		workers = 1
	}
	if workers < 0 {
		workers = 0
	}
	if workers > maxFlushWorkers {
		workers = maxFlushWorkers
	}
	if o.Capacity == 0 || o.WriteThrough || o.WriteBehind == 0 {
		// Nothing is ever deferred ahead of a barrier without write-behind;
		// keep the pool empty instead of idling goroutines.
		workers = 0
	}
	c := &Cache{
		dev:          dev,
		cap:          o.Capacity,
		writeThrough: o.WriteThrough,
		highWater:    o.WriteBehind,
		workers:      workers,
		policy:       pol,
		entries:      make(map[int64]*entry, o.Capacity),
		inflight:     make(map[int64]*fetch),
	}
	c.bgWake = sync.NewCond(&c.mu)
	c.flushDone = sync.NewCond(&c.mu)
	for i := 0; i < workers; i++ {
		c.wg.Add(1)
		go c.flusher()
	}
	return c, nil
}

// Device returns the wrapped device.
func (c *Cache) Device() vdisk.Device { return c.dev }

// Capacity returns the maximum number of cached blocks.
func (c *Cache) Capacity() int { return c.cap }

// PolicyName returns the replacement policy in use ("lru", "arc", "2q").
func (c *Cache) PolicyName() string {
	// lockcheck:ignore the policy pointer is immutable after construction and Name is stateless; only policy STATE needs the mutex
	return c.policy.Name()
}

// FlushWorkers returns the number of background flusher goroutines (0 after
// StopFlushers/Close).
func (c *Cache) FlushWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers
}

// NumBlocks returns the number of blocks on the underlying device.
func (c *Cache) NumBlocks() int64 { return c.dev.NumBlocks() }

// BlockSize returns the block size of the underlying device.
func (c *Cache) BlockSize() int { return c.dev.BlockSize() }

// Stats returns a snapshot of the accumulated counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Dirty returns the number of dirty blocks currently held (blocks whose
// flush is in flight included — they are not durable until it completes).
func (c *Cache) Dirty() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirty
}

// FlushInFlight returns the number of blocks currently staged in the flush
// pipeline. Tests and monitoring use this.
func (c *Cache) FlushInFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.staged
}

// ReadBlock reads block n into buf, serving from the cache when possible.
//
// A miss releases the cache lock while the device request runs, so
// concurrent misses on distinct blocks overlap at the device instead of
// convoying behind one mutex. Concurrent misses on the same block are
// deduplicated: one caller fetches, the rest wait for it and are then served
// from the cache. A write that lands while a fetch is in flight wins — the
// cached (written) data is returned and the stale fetched bytes are
// discarded — so read-your-writes holds even across the unlocked window.
func (c *Cache) ReadBlock(n int64, buf []byte) error {
	if len(buf) != c.dev.BlockSize() {
		return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(buf), c.dev.BlockSize())
	}
	if c.cap == 0 {
		if err := c.dev.ReadBlock(n, buf); err != nil {
			return err
		}
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		return nil
	}
	for {
		c.mu.Lock()
		if e, ok := c.entries[n]; ok {
			c.stats.Hits++
			c.policy.Touch(n)
			copy(buf, e.data)
			c.mu.Unlock()
			return nil
		}
		if f, ok := c.inflight[n]; ok {
			// Another reader is fetching this block; wait and retry (the
			// retry normally hits the freshly inserted entry).
			c.mu.Unlock()
			<-f.done
			continue
		}
		f := &fetch{done: make(chan struct{})}
		c.inflight[n] = f
		c.mu.Unlock()

		err := c.dev.ReadBlock(n, buf)

		c.mu.Lock()
		delete(c.inflight, n)
		close(f.done)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		if e, ok := c.entries[n]; ok {
			// A write raced the fetch and inserted newer data; the cache is
			// authoritative.
			c.stats.Hits++
			c.policy.Touch(n)
			copy(buf, e.data)
			c.mu.Unlock()
			return nil
		}
		if f.stale {
			// Written and already flushed+evicted during the fetch: the bytes
			// read may predate that write. Refetch from the device.
			c.mu.Unlock()
			continue
		}
		c.stats.Misses++
		c.insertLocked(n, buf, false)
		c.mu.Unlock()
		return nil
	}
}

// WriteBlock stores buf for block n in the cache, deferring the device write
// to the flush pipeline (pass-through and write-through modes write to the
// device immediately instead).
func (c *Cache) WriteBlock(n int64, buf []byte) error {
	if len(buf) != c.dev.BlockSize() {
		return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(buf), c.dev.BlockSize())
	}
	if n < 0 || n >= c.dev.NumBlocks() {
		return fmt.Errorf("%w: %d (of %d)", vdisk.ErrOutOfRange, n, c.dev.NumBlocks())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 {
		// lockcheck:ignore audited: pass-through mode serializes the write under the mutex exactly like a single spindle; there is no cached state to protect
		if err := c.dev.WriteBlock(n, buf); err != nil {
			return err
		}
		c.stats.WriteBacks++
		return nil
	}
	if c.writeThrough {
		// lockcheck:ignore audited: write-through holds the mutex across the device write so the cached copy and the device never diverge
		if err := c.dev.WriteBlock(n, buf); err != nil {
			return err
		}
		c.stats.WriteBacks++
	}
	c.writeLocked(n, buf)
	c.afterWriteLocked()
	return nil
}

// writeLocked stores buf for block n in the resident set (caller holds c.mu
// and has already handled pass-through/write-through device writes).
// lockcheck:holds volume/cacheMu
func (c *Cache) writeLocked(n int64, buf []byte) {
	if f, ok := c.inflight[n]; ok {
		// A miss fetch for this block is mid-flight; whatever it read no
		// longer reflects the device's future contents.
		f.stale = true
	}
	if e, ok := c.entries[n]; ok {
		copy(e.data, buf)
		e.gen++
		if !c.writeThrough && !e.dirty {
			e.dirty = true
			c.dirty++
		}
		c.policy.Touch(n)
	} else {
		c.insertLocked(n, buf, !c.writeThrough)
	}
}

// afterWriteLocked applies the write-behind policy after new dirty data
// landed: with a background pool it wakes a flusher past the high-water mark
// and stalls the writer only at the hard cap (2x the mark); without a pool
// it runs one synchronous (but batched, outside-the-mutex) write-behind run.
// Caller holds c.mu.
// lockcheck:holds volume/cacheMu
func (c *Cache) afterWriteLocked() {
	if c.highWater <= 0 || c.dirty <= c.highWater {
		return
	}
	if c.workers == 0 {
		c.stats.WriteBehinds++
		_ = c.flushRunLocked(c.highWater/2, 0, true)
		return
	}
	c.bgWake.Signal()
	if c.dirty < 2*c.highWater {
		return
	}
	// Hard cap: the pipeline is more than a full mark behind. Wait for it
	// rather than growing the backlog without bound. A sticky error pauses
	// the pipeline until the next barrier, so don't wait on it then.
	c.stats.FlushStalls++
	for c.dirty >= 2*c.highWater && c.wbErr == nil && !c.closed {
		c.flushDone.Wait()
	}
}

// ReadBlocks implements vdisk.BatchDevice. Hits and misses are partitioned
// under a single lock acquisition; the misses are then fetched from the
// device in one batched request (sorted submission at the device layer)
// while the lock is released, and inserted under a second acquisition. The
// same single-flight and write-wins rules as ReadBlock apply per block, so
// the returned bytes are identical to what the per-block path would produce.
func (c *Cache) ReadBlocks(ns []int64, bufs [][]byte) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", vdisk.ErrBadBuffer, len(ns), len(bufs))
	}
	bs := c.dev.BlockSize()
	for _, b := range bufs {
		if len(b) != bs {
			return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(b), bs)
		}
	}
	if c.cap == 0 {
		if err := vdisk.ReadBlocks(c.dev, ns, bufs); err != nil {
			return err
		}
		c.mu.Lock()
		c.stats.Misses += int64(len(ns))
		c.mu.Unlock()
		return nil
	}
	// Fast path: when every block is resident, serve the batch under one
	// lock hold with no bookkeeping allocations (the slow path's index
	// slice, dedup map and single-flight registrations exist only for
	// misses). The presence scan runs first so a partial hit does not
	// double-count its prefix against the stats below.
	c.mu.Lock()
	allHit := true
	for _, n := range ns {
		if _, ok := c.entries[n]; !ok {
			allHit = false
			break
		}
	}
	if allHit {
		for i, n := range ns {
			e := c.entries[n]
			c.stats.Hits++
			c.policy.Touch(n)
			copy(bufs[i], e.data)
		}
		c.mu.Unlock()
		return nil
	}
	c.mu.Unlock()

	remaining := make([]int, len(ns))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		var mine []int            // misses this call will fetch
		var fetches []*fetch      // registered single-flight entries, parallel to mine
		var foreign []int         // misses someone else is already fetching
		var waits []chan struct{} // their completion signals
		seen := map[int64]int{}   // block -> position in mine (dedup within the batch)

		c.mu.Lock()
		for _, i := range remaining {
			n := ns[i]
			if e, ok := c.entries[n]; ok {
				c.stats.Hits++
				c.policy.Touch(n)
				copy(bufs[i], e.data)
				continue
			}
			if _, ok := seen[n]; ok {
				// Duplicate within this batch: resolve on the next pass from
				// the entry the first occurrence inserts.
				foreign = append(foreign, i)
				continue
			}
			if f, ok := c.inflight[n]; ok {
				foreign = append(foreign, i)
				waits = append(waits, f.done)
				continue
			}
			f := &fetch{done: make(chan struct{})}
			c.inflight[n] = f
			seen[n] = len(mine)
			mine = append(mine, i)
			fetches = append(fetches, f)
		}
		c.mu.Unlock()

		retry := foreign
		if len(mine) > 0 {
			missNs := make([]int64, len(mine))
			missBufs := make([][]byte, len(mine))
			for k, i := range mine {
				missNs[k] = ns[i]
				missBufs[k] = bufs[i]
			}
			err := vdisk.ReadBlocks(c.dev, missNs, missBufs)
			c.mu.Lock()
			for k, i := range mine {
				n := ns[i]
				delete(c.inflight, n)
				close(fetches[k].done)
				if err != nil {
					continue
				}
				if e, ok := c.entries[n]; ok {
					c.stats.Hits++
					c.policy.Touch(n)
					copy(bufs[i], e.data)
					continue
				}
				if fetches[k].stale {
					retry = append(retry, i)
					continue
				}
				c.stats.Misses++
				c.insertLocked(n, bufs[i], false)
			}
			c.mu.Unlock()
			if err != nil {
				return err
			}
		}
		for _, done := range waits {
			<-done
		}
		remaining = retry
	}
	return nil
}

// WriteBlocks implements vdisk.BatchDevice: the whole batch is absorbed
// under one lock acquisition (pass-through and write-through modes issue a
// single batched, sorted device submission first) and the write-behind
// policy is applied once at the end.
func (c *Cache) WriteBlocks(ns []int64, bufs [][]byte) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", vdisk.ErrBadBuffer, len(ns), len(bufs))
	}
	bs := c.dev.BlockSize()
	nb := c.dev.NumBlocks()
	for i, b := range bufs {
		if len(b) != bs {
			return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(b), bs)
		}
		if ns[i] < 0 || ns[i] >= nb {
			return fmt.Errorf("%w: %d (of %d)", vdisk.ErrOutOfRange, ns[i], nb)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 || c.writeThrough {
		// lockcheck:ignore audited: pass/write-through batches hold the mutex across the device submission so the batch lands atomically w.r.t. cached state
		if err := vdisk.WriteBlocks(c.dev, ns, bufs); err != nil {
			return err
		}
		c.stats.WriteBacks += int64(len(ns))
		if c.cap == 0 {
			return nil
		}
	}
	for i, n := range ns {
		c.writeLocked(n, bufs[i])
	}
	c.afterWriteLocked()
	return nil
}

// insertLocked adds a new entry for block n (caller holds c.mu) and evicts
// policy-chosen victims while the cache is over capacity.
// lockcheck:holds volume/cacheMu
func (c *Cache) insertLocked(n int64, buf []byte, dirty bool) {
	e := &entry{block: n, data: append(make([]byte, 0, len(buf)), buf...), dirty: dirty}
	c.entries[n] = e
	if dirty {
		c.dirty++
	}
	c.policy.Insert(n)
	for len(c.entries) > c.cap {
		if !c.evictLocked() {
			break // over capacity until the device (or the pipeline) recovers
		}
	}
}

// evictLocked removes the policy's victim, writing it back first when dirty.
// A victim whose flush is in flight cannot be dropped (the pipeline still
// addresses its entry); it is rotated and eviction reports no progress. A
// write-back failure records a sticky error (surfaced by the next
// Flush/Sync/Close), keeps the victim resident so the data is not lost, and
// returns false.
// lockcheck:holds volume/cacheMu
func (c *Cache) evictLocked() bool {
	n, ok := c.policy.Victim()
	if !ok {
		return false
	}
	victim, ok := c.entries[n]
	if !ok {
		// Policy/resident-set desync would be an internal bug; drop the
		// stale policy entry and report progress so the loop retries.
		c.policy.Remove(n)
		return true
	}
	if victim.flushing {
		c.policy.Touch(n)
		return false
	}
	if victim.dirty {
		// lockcheck:ignore audited: eviction write-back keeps the mutex so the victim cannot be re-dirtied mid-write; evictions are rare next to the flush pipeline
		if err := c.dev.WriteBlock(n, victim.data); err != nil {
			if c.wbErr == nil {
				c.wbErr = fmt.Errorf("blockcache: eviction write-back block %d: %w", n, err)
				// A sticky error pauses the pipeline; wake anyone parked on
				// it — the back-pressure wait in afterWriteLocked checks
				// wbErr, and without this broadcast a stalled writer would
				// sleep until some OTHER goroutine reached a barrier.
				c.flushDone.Broadcast()
			}
			c.policy.Touch(n)
			return false
		}
		c.stats.WriteBacks++
		victim.dirty = false
		c.dirty--
	}
	c.policy.Remove(n)
	delete(c.entries, n)
	c.stats.Evictions++
	return true
}

// dirtyRunLocked returns up to limit unstaged dirty entries (limit <= 0
// means all, in ascending block order — the barrier path).
//
// When the limit truncates the backlog, selection is an elevator (C-SCAN):
// the run starts at the first dirty block at or above the sweep cursor left
// by the previous truncated run and wraps to the lowest dirty block if it
// reaches the top of the stroke, advancing the cursor past what it took.
// Successive write-behind runs then service the whole backlog in one
// repeating ascending sweep. Without the cursor every run restarts at the
// lowest dirty block, which both pays a full-stroke seek back per run and
// starves high-numbered blocks while writers keep re-dirtying low ones —
// the starved tail is then flushed by the next Sync barrier itself, which
// is exactly the latency the barrier caller sees. A run that wraps keeps
// the pipeline's ascending-batch contract: the picked set is re-sorted
// before submission (the classic C-SCAN return stroke is one long seek
// either way), and the cursor still advances past the wrapped tail so the
// next run resumes mid-stroke, not at zero.
// lockcheck:holds volume/cacheMu
func (c *Cache) dirtyRunLocked(limit int) []*entry {
	run := make([]*entry, 0, c.dirty-c.staged)
	for _, e := range c.entries {
		if e.dirty && !e.flushing {
			run = append(run, e)
		}
	}
	sort.Slice(run, func(i, j int) bool { return run[i].block < run[j].block })
	if limit <= 0 || len(run) <= limit {
		return run
	}
	cursor := c.sweep
	start := sort.Search(len(run), func(i int) bool { return run[i].block >= cursor })
	if start == len(run) {
		start = 0 // cursor above the highest dirty block: wrap the sweep
	}
	end := min(start+limit, len(run))
	picked := run[start:end:end]
	if rem := limit - len(picked); rem > 0 && start > 0 {
		wrapped := run[:min(rem, start)] // C-SCAN return stroke
		c.sweep = wrapped[len(wrapped)-1].block + 1
		picked = append(picked, wrapped...)
		sort.Slice(picked, func(i, j int) bool { return picked[i].block < picked[j].block })
	} else {
		c.sweep = picked[len(picked)-1].block + 1
	}
	return picked
}

// minWorkerRun is the smallest backlog share worth waking another flusher
// for — below this, one worker's sorted run beats the extra submissions.
const minWorkerRun = 16

// flushRunLocked picks one write-behind run — unstaged dirty blocks in
// ascending order, sized to bring the dirty count down to lowTarget (0 =
// everything unstaged), bounded by runCap (<= 0 = maxFlushRun) — and pushes
// it through the pipeline via flushEntriesLocked. Caller holds c.mu; the
// lock is held on return.
// lockcheck:holds volume/cacheMu
func (c *Cache) flushRunLocked(lowTarget, runCap int, background bool) error {
	limit := maxFlushRun
	if runCap > 0 && runCap < limit {
		limit = runCap
	}
	if lowTarget > 0 {
		want := c.dirty - lowTarget
		if want <= 0 {
			return nil
		}
		if want < limit {
			limit = want
		}
	}
	run := c.dirtyRunLocked(limit)
	if len(run) == 0 {
		return nil
	}
	return c.flushEntriesLocked(run, background)
}

// flushEntriesLocked is the heart of the flush pipeline: it stages the given
// run of dirty entries — sorted ascending by the caller, marked
// flush-in-flight, data copied — releases c.mu, submits the run to the
// device as one batched write, and completes it under the lock again. A
// block re-dirtied while the run was in flight stays dirty (write-wins: its
// entry's generation moved, so the next run writes the fresh data).
//
// When background is true a device failure becomes the sticky write-back
// error surfaced at the next barrier; the error is also returned either way
// (barrier callers report it directly). The staged blocks stay dirty and
// resident on failure, so nothing is lost. Caller holds c.mu and guarantees
// every entry is dirty and not already flushing; the lock is held on return.
// lockcheck:holds volume/cacheMu
func (c *Cache) flushEntriesLocked(run []*entry, background bool) error {
	bs := c.dev.BlockSize()
	ns := make([]int64, len(run))
	gens := make([]uint64, len(run))
	slab := make([]byte, len(run)*bs)
	bufs := make([][]byte, len(run))
	for i, e := range run {
		ns[i] = e.block
		gens[i] = e.gen
		bufs[i] = slab[i*bs : (i+1)*bs]
		copy(bufs[i], e.data)
		e.flushing = true
	}
	c.staged += len(run)
	c.mu.Unlock()

	err := vdisk.WriteBlocks(c.dev, ns, bufs)

	c.mu.Lock()
	for i, n := range ns {
		// The entry cannot have been evicted or invalidated mid-flight:
		// eviction skips flushing entries and Invalidate drains first.
		e := c.entries[n]
		e.flushing = false
		if err == nil && e.dirty && e.gen == gens[i] {
			e.dirty = false
			c.dirty--
		}
	}
	c.staged -= len(run)
	if err == nil {
		c.stats.WriteBacks += int64(len(run))
		c.stats.FlushBatches++
	} else {
		err = fmt.Errorf("blockcache: write-back run [%d..%d]: %w", ns[0], ns[len(ns)-1], err)
		if background && c.wbErr == nil {
			c.wbErr = err
		}
	}
	c.flushDone.Broadcast()
	return err
}

// flushNeededLocked reports whether the background pool has write-behind
// work, with hysteresis: a drain STARTS when the high-water mark is crossed
// and keeps going until the backlog reaches half the mark (without the
// hysteresis, capped per-worker runs would park the pool the moment dirty
// dipped just below the mark, leaving the backlog hovering at the mark and
// handing the next barrier a fat serial drain). Unstaged dirty blocks must
// exist, and a sticky error pauses the pipeline (retrying a failing device
// in a tight loop helps nobody; the next barrier clears the error and
// re-arms).
// lockcheck:holds volume/cacheMu
func (c *Cache) flushNeededLocked() bool {
	if c.wbErr != nil || c.highWater <= 0 || c.dirty-c.staged <= 0 {
		return false
	}
	if c.dirty > c.highWater {
		c.draining = true
	} else if c.dirty <= c.highWater/2 {
		c.draining = false
	}
	return c.draining
}

// flusher is one background flush worker. It parks until write-behind work
// appears (or the cache closes) and services one run at a time; multiple
// workers naturally split a backlog because staged entries are excluded from
// each other's runs.
func (c *Cache) flusher() {
	defer c.wg.Done()
	c.mu.Lock()
	for {
		for !c.closed && !c.flushNeededLocked() {
			c.bgWake.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.stats.WriteBehinds++
		// Split a large backlog across the pool: cap this run at this
		// worker's share and wake a peer for the remainder, so one oversized
		// write batch drains with pool-wide device overlap instead of one
		// serialized mega-run.
		low := c.highWater / 2
		runCap := 0
		if want := c.dirty - low; c.workers > 1 && want > minWorkerRun {
			runCap = (want + c.workers - 1) / c.workers
			if runCap < minWorkerRun {
				runCap = minWorkerRun
			}
			if want > runCap {
				c.bgWake.Signal()
			}
		}
		_ = c.flushRunLocked(low, runCap, true) // errors go sticky
	}
}

// drainLocked runs the barrier flush. Its obligation is every block dirty
// when the barrier begins: in-flight background runs are drained first
// (write-wins may hand their blocks back still dirty, in which case they are
// the barrier's to write), then the obligation goes out in batched ascending
// runs. A block that is dirtied by a write racing one of the unlocked
// submission windows — including a re-dirty of a block this barrier already
// wrote — belongs to the NEXT barrier, exactly like a write that blocked on
// the mutex behind the old single-hold flush pass; that keeps the barrier
// terminating under sustained concurrent writers instead of chasing them
// forever. Caller holds c.mu.
// lockcheck:holds volume/cacheMu
func (c *Cache) drainLocked() error {
	c.stats.Flushes++
	for c.staged > 0 {
		c.flushDone.Wait()
	}
	// staged == 0, so this is ALL currently dirty blocks, sorted ascending.
	obligation := c.dirtyRunLocked(0)
	for len(obligation) > 0 {
		var run []*entry
		rest := make([]*entry, 0, len(obligation))
		waiting := false
		for _, e := range obligation {
			switch {
			case !e.dirty:
				// Already durable (a background run or eviction got there).
			case e.flushing:
				// A background flusher staged it during one of our unlocked
				// windows; wait for that flight and re-examine.
				waiting = true
				rest = append(rest, e)
			case len(run) < maxFlushRun:
				run = append(run, e)
			default:
				rest = append(rest, e)
			}
		}
		obligation = rest
		if len(run) == 0 {
			if !waiting {
				break
			}
			c.flushDone.Wait()
			continue
		}
		if err := c.flushEntriesLocked(run, false); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes every block that is dirty when the barrier begins to the
// device in ascending block order, so the write-back pass streams
// sequentially instead of random-seeking: any background runs still in
// flight are drained first, then the remainder goes out in batched sorted
// runs. Writes racing the flush land in the cache and are covered by the
// NEXT barrier, just as they would have queued behind the flush pass's
// mutex before the pipeline. Cached data stays resident (clean) for future
// reads. If an earlier eviction or write-behind write-back failed, that
// sticky error is returned here (once) even when the retry succeeds, so
// barrier callers learn a deferred write ever failed.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.drainLocked(); err != nil {
		return err
	}
	return c.takeStickyLocked()
}

// takeStickyLocked returns the recorded deferred write-back failure (if any)
// and clears it, so each incident is reported exactly once. Barrier methods
// call this only after completing their real work — a successful flush must
// still sync the device / drop entries before the historical error is
// surfaced. Clearing the error re-arms the background pipeline.
// lockcheck:holds volume/cacheMu
func (c *Cache) takeStickyLocked() error {
	err := c.wbErr
	c.wbErr = nil
	if err != nil {
		c.bgWake.Broadcast()
		c.flushDone.Broadcast()
	}
	return err
}

// Sync flushes all dirty blocks and then syncs the underlying device if it
// supports it (e.g. vdisk.FileStore). A sticky write-back error is reported
// only after the device sync completed, so the durable state is as good as
// it can be even on the error path.
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.drainLocked(); err != nil {
		return err
	}
	if s, ok := c.dev.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return c.takeStickyLocked()
}

// Invalidate drops every cached block and all policy state (resident and
// ghost). Dirty data is flushed first (draining the pipeline), repeating
// until the cache is fully clean so no write racing a drain window is ever
// discarded and no flush flight is in the air when the resident set is
// replaced; the error from that flush is returned. Tests use this to force
// cold reads — under sustained concurrent writers it may keep draining, so
// quiesce first.
func (c *Cache) Invalidate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if err := c.drainLocked(); err != nil {
			return err
		}
		if c.dirty == 0 {
			break
		}
	}
	c.entries = make(map[int64]*entry, c.cap)
	c.policy.Reset()
	return c.takeStickyLocked()
}

var _ vdisk.BatchDevice = (*Cache)(nil)

// StopFlushers drains the flush pipeline and terminates the background
// flusher pool WITHOUT closing the underlying device. Owners that wrap a
// device they do not own (stegfs.FS mounts a caller-provided store) use this
// on teardown so the worker goroutines never outlive the mount. The cache
// stays usable afterwards — write-behind simply runs synchronously.
func (c *Cache) StopFlushers() error {
	c.mu.Lock()
	flushErr := c.drainLocked()
	if flushErr == nil {
		flushErr = c.takeStickyLocked()
	}
	c.stopPoolLocked()
	c.mu.Unlock()
	c.wg.Wait()
	return flushErr
}

// stopPoolLocked signals every background flusher to exit and converts the
// cache to synchronous write-behind. Caller holds c.mu.
// lockcheck:holds volume/cacheMu
func (c *Cache) stopPoolLocked() {
	c.closed = true
	c.workers = 0
	c.bgWake.Broadcast()
	c.flushDone.Broadcast()
}

// Close flushes dirty blocks, stops the background flusher pool and closes
// the underlying device if it is closable. The cache must not be used
// afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	flushErr := c.drainLocked()
	if flushErr == nil {
		flushErr = c.takeStickyLocked()
	}
	c.stopPoolLocked()
	c.mu.Unlock()
	c.wg.Wait()
	if cl, ok := c.dev.(interface{ Close() error }); ok {
		if err := cl.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// String summarizes the cache for logs.
func (c *Cache) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("blockcache.Cache{cap=%d policy=%s resident=%d hits=%d misses=%d}",
		c.cap, c.policy.Name(), len(c.entries), c.stats.Hits, c.stats.Misses)
}

var _ vdisk.Device = (*Cache)(nil)
