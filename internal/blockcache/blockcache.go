// Package blockcache implements a buffered block cache between the file
// systems and the vdisk device layer.
//
// The ICDE 2003 StegFS evaluation charges every hidden-file header probe,
// p-tree hop and stegdb page touch full mechanical disk cost; hot metadata
// blocks (superblock, bitmap, headers, B-tree interior pages) are re-read on
// every access. Cache wraps any vdisk.Device with a block cache that absorbs
// those repeated reads and batches writes: dirty blocks are held in memory
// and written back in ascending block order, so the flush pass streams over
// the (simulated or real) platter instead of random-seeking.
//
// # Replacement policies
//
// Eviction is delegated to a pluggable Policy. Three are built in:
//
//   - "lru" — classic recency stack. Ideal once capacity covers the working
//     set, but a cyclic scan even one block larger than the cache evicts
//     every entry just before its reuse, collapsing to a 0% hit rate.
//   - "arc" — adaptive replacement (Megiddo & Modha). Ghost lists detect
//     whether recency or frequency deserved the space and re-balance
//     continuously; repeatedly probed metadata survives data-block scans.
//   - "2q" — two-queue (Johnson & Shasha). A small FIFO absorbs one-shot
//     scan blocks; only blocks re-referenced after leaving the FIFO enter
//     the protected LRU. Cheaper bookkeeping than ARC, no adaptation.
//
// Under the StegFS hidden-file workload (long data scans interleaved with
// hot header/p-tree/directory re-reads) ARC and 2Q retain the hot metadata
// at capacities far below the total working set, where LRU caches nothing;
// see the A4 ablation in ROADMAP.md. LRU remains the default.
//
// The cache is a write-back cache, so crash consistency is the caller's
// responsibility: callers must Flush (or Sync) before any point where the
// on-device image has to be self-consistent. stegfs.FS does this around its
// superblock/bitmap writes so that data blocks always reach the device
// before the metadata that references them. Optional write-behind
// (Options.WriteBehind) bounds how much dirty data those barriers can
// accumulate without weakening them: the cache cannot tell data from
// metadata and flushes whatever is dirty, but issuing any deferred write
// earlier than its barrier is harmless — stegfs's consistency rests solely
// on the superblock/bitmap being written inside Sync after a full Flush,
// and that ordering is untouched.
package blockcache

import (
	"fmt"
	"sort"
	"sync"

	"stegfs/internal/vdisk"
)

// Stats counts cache activity. Counters only ever increase; read a snapshot
// with Cache.Stats. All counters record successful operations only — a
// failed device read or write leaves every counter untouched, so windowed
// ablation stats stay honest under injected faults.
type Stats struct {
	Hits         int64 // reads served from the cache
	Misses       int64 // reads that went to the device
	Evictions    int64 // entries displaced by capacity pressure
	WriteBacks   int64 // dirty (or pass-through/write-through) blocks written to the device
	Flushes      int64 // explicit Flush/Sync barriers
	WriteBehinds int64 // background write-behind runs triggered by the high-water mark
}

// Sub returns s - o counter-wise. Benchmarks snapshot the counters before a
// measurement window and subtract to get windowed stats.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:         s.Hits - o.Hits,
		Misses:       s.Misses - o.Misses,
		Evictions:    s.Evictions - o.Evictions,
		WriteBacks:   s.WriteBacks - o.WriteBacks,
		Flushes:      s.Flushes - o.Flushes,
		WriteBehinds: s.WriteBehinds - o.WriteBehinds,
	}
}

// HitRate returns the fraction of reads served from the cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached block. data always holds exactly one device block.
type entry struct {
	block int64
	data  []byte
	dirty bool
}

// Options configures a Cache built with NewWithOptions.
type Options struct {
	// Capacity is the maximum number of resident blocks. <= 0 disables
	// caching entirely (all I/O passes straight through).
	Capacity int
	// Policy names the replacement policy: "lru" (default), "arc" or "2q".
	Policy string
	// WriteThrough makes every write reach the device synchronously; see
	// NewWriteThrough.
	WriteThrough bool
	// WriteBehind is the dirty-block high-water mark. When more than this
	// many dirty blocks accumulate, the cache immediately writes dirty
	// blocks back in ascending block order — lowest block numbers first, so
	// the run streams across the platter — until half the mark remains,
	// without waiting for the next Flush. 0 disables write-behind. Ignored
	// in write-through mode (nothing is ever deferred there).
	WriteBehind int
}

// Cache is a block cache over a vdisk.Device with a pluggable replacement
// policy. It implements vdisk.Device itself, so every layer written against
// the device interface (plainfs, stegfs, stegdb's pager via hidden files)
// runs through it unchanged. A Cache with capacity 0 is a transparent
// pass-through.
//
// Cache is safe for concurrent use.
type Cache struct {
	mu           sync.Mutex
	dev          vdisk.Device
	cap          int
	writeThrough bool
	highWater    int // write-behind high-water mark; 0 = disabled
	policy       Policy
	entries      map[int64]*entry
	inflight     map[int64]*fetch // miss fetches in progress (see ReadBlock)
	dirty        int              // resident dirty blocks
	wbErr        error            // sticky deferred write-back failure; surfaced at the next barrier
	stats        Stats
}

// fetch tracks one in-flight miss read. Misses release c.mu while the device
// request runs, so concurrent readers can overlap their device waits; the
// fetch entry dedups concurrent misses of the same block (single-flight) and
// records whether a write raced the fetch (in which case the fetched bytes
// are stale and must not enter the cache).
type fetch struct {
	done  chan struct{}
	stale bool // a WriteBlock for this block landed while the fetch was in flight
}

// New wraps dev in a write-back LRU cache holding up to capacity blocks.
// capacity <= 0 disables caching entirely (all I/O passes straight through).
func New(dev vdisk.Device, capacity int) *Cache {
	c, err := NewWithOptions(dev, Options{Capacity: capacity})
	if err != nil {
		panic("blockcache: default options invalid: " + err.Error()) // unreachable
	}
	return c
}

// NewWriteThrough wraps dev in a write-through LRU cache: reads are cached,
// but every write goes to the device synchronously, so no data is ever
// deferred and Flush is a no-op. Timing experiments use this mode so the
// device clock charges every write inside the measurement window; callers
// who want batched write-back with explicit barriers use New.
func NewWriteThrough(dev vdisk.Device, capacity int) *Cache {
	c, err := NewWithOptions(dev, Options{Capacity: capacity, WriteThrough: true})
	if err != nil {
		panic("blockcache: default options invalid: " + err.Error()) // unreachable
	}
	return c
}

// NewWithOptions wraps dev in a cache configured by o. It fails only on an
// unknown policy name.
func NewWithOptions(dev vdisk.Device, o Options) (*Cache, error) {
	if o.Capacity < 0 {
		o.Capacity = 0
	}
	pol, err := NewPolicy(o.Policy, o.Capacity)
	if err != nil {
		return nil, err
	}
	if o.WriteBehind < 0 || o.WriteThrough {
		o.WriteBehind = 0
	}
	return &Cache{
		dev:          dev,
		cap:          o.Capacity,
		writeThrough: o.WriteThrough,
		highWater:    o.WriteBehind,
		policy:       pol,
		entries:      make(map[int64]*entry, o.Capacity),
		inflight:     make(map[int64]*fetch),
	}, nil
}

// Device returns the wrapped device.
func (c *Cache) Device() vdisk.Device { return c.dev }

// Capacity returns the maximum number of cached blocks.
func (c *Cache) Capacity() int { return c.cap }

// PolicyName returns the replacement policy in use ("lru", "arc", "2q").
func (c *Cache) PolicyName() string { return c.policy.Name() }

// NumBlocks returns the number of blocks on the underlying device.
func (c *Cache) NumBlocks() int64 { return c.dev.NumBlocks() }

// BlockSize returns the block size of the underlying device.
func (c *Cache) BlockSize() int { return c.dev.BlockSize() }

// Stats returns a snapshot of the accumulated counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Dirty returns the number of dirty blocks currently held.
func (c *Cache) Dirty() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirty
}

// ReadBlock reads block n into buf, serving from the cache when possible.
//
// A miss releases the cache lock while the device request runs, so
// concurrent misses on distinct blocks overlap at the device instead of
// convoying behind one mutex. Concurrent misses on the same block are
// deduplicated: one caller fetches, the rest wait for it and are then served
// from the cache. A write that lands while a fetch is in flight wins — the
// cached (written) data is returned and the stale fetched bytes are
// discarded — so read-your-writes holds even across the unlocked window.
func (c *Cache) ReadBlock(n int64, buf []byte) error {
	if len(buf) != c.dev.BlockSize() {
		return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(buf), c.dev.BlockSize())
	}
	if c.cap == 0 {
		if err := c.dev.ReadBlock(n, buf); err != nil {
			return err
		}
		c.mu.Lock()
		c.stats.Misses++
		c.mu.Unlock()
		return nil
	}
	for {
		c.mu.Lock()
		if e, ok := c.entries[n]; ok {
			c.stats.Hits++
			c.policy.Touch(n)
			copy(buf, e.data)
			c.mu.Unlock()
			return nil
		}
		if f, ok := c.inflight[n]; ok {
			// Another reader is fetching this block; wait and retry (the
			// retry normally hits the freshly inserted entry).
			c.mu.Unlock()
			<-f.done
			continue
		}
		f := &fetch{done: make(chan struct{})}
		c.inflight[n] = f
		c.mu.Unlock()

		err := c.dev.ReadBlock(n, buf)

		c.mu.Lock()
		delete(c.inflight, n)
		close(f.done)
		if err != nil {
			c.mu.Unlock()
			return err
		}
		if e, ok := c.entries[n]; ok {
			// A write raced the fetch and inserted newer data; the cache is
			// authoritative.
			c.stats.Hits++
			c.policy.Touch(n)
			copy(buf, e.data)
			c.mu.Unlock()
			return nil
		}
		if f.stale {
			// Written and already flushed+evicted during the fetch: the bytes
			// read may predate that write. Refetch from the device.
			c.mu.Unlock()
			continue
		}
		c.stats.Misses++
		c.insertLocked(n, buf, false)
		c.mu.Unlock()
		return nil
	}
}

// WriteBlock stores buf for block n in the cache, deferring the device write
// until eviction, write-behind or the next Flush (pass-through and
// write-through modes write to the device immediately instead).
func (c *Cache) WriteBlock(n int64, buf []byte) error {
	if len(buf) != c.dev.BlockSize() {
		return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(buf), c.dev.BlockSize())
	}
	if n < 0 || n >= c.dev.NumBlocks() {
		return fmt.Errorf("%w: %d (of %d)", vdisk.ErrOutOfRange, n, c.dev.NumBlocks())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 {
		if err := c.dev.WriteBlock(n, buf); err != nil {
			return err
		}
		c.stats.WriteBacks++
		return nil
	}
	if c.writeThrough {
		if err := c.dev.WriteBlock(n, buf); err != nil {
			return err
		}
		c.stats.WriteBacks++
	}
	c.writeLocked(n, buf)
	if c.highWater > 0 && c.dirty > c.highWater {
		c.writeBehindLocked()
	}
	return nil
}

// writeLocked stores buf for block n in the resident set (caller holds c.mu
// and has already handled pass-through/write-through device writes).
func (c *Cache) writeLocked(n int64, buf []byte) {
	if f, ok := c.inflight[n]; ok {
		// A miss fetch for this block is mid-flight; whatever it read no
		// longer reflects the device's future contents.
		f.stale = true
	}
	if e, ok := c.entries[n]; ok {
		copy(e.data, buf)
		if !c.writeThrough && !e.dirty {
			e.dirty = true
			c.dirty++
		}
		c.policy.Touch(n)
	} else {
		c.insertLocked(n, buf, !c.writeThrough)
	}
}

// ReadBlocks implements vdisk.BatchDevice. Hits and misses are partitioned
// under a single lock acquisition; the misses are then fetched from the
// device in one batched request (sorted submission at the device layer)
// while the lock is released, and inserted under a second acquisition. The
// same single-flight and write-wins rules as ReadBlock apply per block, so
// the returned bytes are identical to what the per-block path would produce.
func (c *Cache) ReadBlocks(ns []int64, bufs [][]byte) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", vdisk.ErrBadBuffer, len(ns), len(bufs))
	}
	bs := c.dev.BlockSize()
	for _, b := range bufs {
		if len(b) != bs {
			return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(b), bs)
		}
	}
	if c.cap == 0 {
		if err := vdisk.ReadBlocks(c.dev, ns, bufs); err != nil {
			return err
		}
		c.mu.Lock()
		c.stats.Misses += int64(len(ns))
		c.mu.Unlock()
		return nil
	}
	remaining := make([]int, len(ns))
	for i := range remaining {
		remaining[i] = i
	}
	for len(remaining) > 0 {
		var mine []int            // misses this call will fetch
		var fetches []*fetch      // registered single-flight entries, parallel to mine
		var foreign []int         // misses someone else is already fetching
		var waits []chan struct{} // their completion signals
		seen := map[int64]int{}   // block -> position in mine (dedup within the batch)

		c.mu.Lock()
		for _, i := range remaining {
			n := ns[i]
			if e, ok := c.entries[n]; ok {
				c.stats.Hits++
				c.policy.Touch(n)
				copy(bufs[i], e.data)
				continue
			}
			if _, ok := seen[n]; ok {
				// Duplicate within this batch: resolve on the next pass from
				// the entry the first occurrence inserts.
				foreign = append(foreign, i)
				continue
			}
			if f, ok := c.inflight[n]; ok {
				foreign = append(foreign, i)
				waits = append(waits, f.done)
				continue
			}
			f := &fetch{done: make(chan struct{})}
			c.inflight[n] = f
			seen[n] = len(mine)
			mine = append(mine, i)
			fetches = append(fetches, f)
		}
		c.mu.Unlock()

		retry := foreign
		if len(mine) > 0 {
			missNs := make([]int64, len(mine))
			missBufs := make([][]byte, len(mine))
			for k, i := range mine {
				missNs[k] = ns[i]
				missBufs[k] = bufs[i]
			}
			err := vdisk.ReadBlocks(c.dev, missNs, missBufs)
			c.mu.Lock()
			for k, i := range mine {
				n := ns[i]
				delete(c.inflight, n)
				close(fetches[k].done)
				if err != nil {
					continue
				}
				if e, ok := c.entries[n]; ok {
					c.stats.Hits++
					c.policy.Touch(n)
					copy(bufs[i], e.data)
					continue
				}
				if fetches[k].stale {
					retry = append(retry, i)
					continue
				}
				c.stats.Misses++
				c.insertLocked(n, bufs[i], false)
			}
			c.mu.Unlock()
			if err != nil {
				return err
			}
		}
		for _, done := range waits {
			<-done
		}
		remaining = retry
	}
	return nil
}

// WriteBlocks implements vdisk.BatchDevice: the whole batch is absorbed
// under one lock acquisition (pass-through and write-through modes issue a
// single batched, sorted device submission first) and the write-behind
// high-water mark is checked once at the end.
func (c *Cache) WriteBlocks(ns []int64, bufs [][]byte) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", vdisk.ErrBadBuffer, len(ns), len(bufs))
	}
	bs := c.dev.BlockSize()
	nb := c.dev.NumBlocks()
	for i, b := range bufs {
		if len(b) != bs {
			return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(b), bs)
		}
		if ns[i] < 0 || ns[i] >= nb {
			return fmt.Errorf("%w: %d (of %d)", vdisk.ErrOutOfRange, ns[i], nb)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 || c.writeThrough {
		if err := vdisk.WriteBlocks(c.dev, ns, bufs); err != nil {
			return err
		}
		c.stats.WriteBacks += int64(len(ns))
		if c.cap == 0 {
			return nil
		}
	}
	for i, n := range ns {
		c.writeLocked(n, bufs[i])
	}
	if c.highWater > 0 && c.dirty > c.highWater {
		c.writeBehindLocked()
	}
	return nil
}

// insertLocked adds a new entry for block n (caller holds c.mu) and evicts
// policy-chosen victims while the cache is over capacity.
func (c *Cache) insertLocked(n int64, buf []byte, dirty bool) {
	e := &entry{block: n, data: append(make([]byte, 0, len(buf)), buf...), dirty: dirty}
	c.entries[n] = e
	if dirty {
		c.dirty++
	}
	c.policy.Insert(n)
	for len(c.entries) > c.cap {
		if !c.evictLocked() {
			break // over capacity until the device recovers
		}
	}
}

// evictLocked removes the policy's victim, writing it back first when dirty.
// A write-back failure records a sticky error (surfaced by the next
// Flush/Sync/Close), keeps the victim resident so the data is not lost, and
// returns false.
func (c *Cache) evictLocked() bool {
	n, ok := c.policy.Victim()
	if !ok {
		return false
	}
	victim, ok := c.entries[n]
	if !ok {
		// Policy/resident-set desync would be an internal bug; drop the
		// stale policy entry and report progress so the loop retries.
		c.policy.Remove(n)
		return true
	}
	if victim.dirty {
		if err := c.dev.WriteBlock(n, victim.data); err != nil {
			if c.wbErr == nil {
				c.wbErr = fmt.Errorf("blockcache: eviction write-back block %d: %w", n, err)
			}
			c.policy.Touch(n)
			return false
		}
		c.stats.WriteBacks++
		victim.dirty = false
		c.dirty--
	}
	c.policy.Remove(n)
	delete(c.entries, n)
	c.stats.Evictions++
	return true
}

// dirtyAscendingLocked returns the dirty entries sorted by block number.
func (c *Cache) dirtyAscendingLocked() []*entry {
	dirty := make([]*entry, 0, c.dirty)
	for _, e := range c.entries {
		if e.dirty {
			dirty = append(dirty, e)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].block < dirty[j].block })
	return dirty
}

// writeBehindLocked issues deferred writes early: dirty blocks are written
// back in ascending block order (lowest block numbers first, regardless of
// when they were dirtied) until only half the high-water mark remains
// dirty. Blocks stay resident (clean), so reads keep hitting; only
// the deferred device writes are issued. Errors become the sticky write-back
// error surfaced at the next barrier — the data itself stays dirty and
// resident, so nothing is lost.
func (c *Cache) writeBehindLocked() {
	c.stats.WriteBehinds++
	low := c.highWater / 2
	for _, e := range c.dirtyAscendingLocked() {
		if c.dirty <= low {
			return
		}
		if err := c.dev.WriteBlock(e.block, e.data); err != nil {
			if c.wbErr == nil {
				c.wbErr = fmt.Errorf("blockcache: write-behind block %d: %w", e.block, err)
			}
			return
		}
		c.stats.WriteBacks++
		e.dirty = false
		c.dirty--
	}
}

// Flush writes every dirty block to the device in ascending block order, so
// the write-back pass streams sequentially instead of random-seeking. Cached
// data stays resident (clean) for future reads. If an earlier eviction or
// write-behind write-back failed, that sticky error is returned here (once)
// even when the retry succeeds, so barrier callers learn a deferred write
// ever failed.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	return c.takeStickyLocked()
}

func (c *Cache) flushLocked() error {
	c.stats.Flushes++
	for _, e := range c.dirtyAscendingLocked() {
		if err := c.dev.WriteBlock(e.block, e.data); err != nil {
			return fmt.Errorf("blockcache: write-back block %d: %w", e.block, err)
		}
		e.dirty = false
		c.dirty--
		c.stats.WriteBacks++
	}
	return nil
}

// takeStickyLocked returns the recorded deferred write-back failure (if any)
// and clears it, so each incident is reported exactly once. Barrier methods
// call this only after completing their real work — a successful flush must
// still sync the device / drop entries before the historical error is
// surfaced.
func (c *Cache) takeStickyLocked() error {
	err := c.wbErr
	c.wbErr = nil
	return err
}

// Sync flushes all dirty blocks and then syncs the underlying device if it
// supports it (e.g. vdisk.FileStore). A sticky write-back error is reported
// only after the device sync completed, so the durable state is as good as
// it can be even on the error path.
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	if s, ok := c.dev.(interface{ Sync() error }); ok {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	return c.takeStickyLocked()
}

// Invalidate drops every cached block and all policy state (resident and
// ghost). Dirty data is flushed first; the error from that flush is
// returned. Tests use this to force cold reads.
func (c *Cache) Invalidate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	c.entries = make(map[int64]*entry, c.cap)
	c.dirty = 0
	c.policy.Reset()
	return c.takeStickyLocked()
}

var _ vdisk.BatchDevice = (*Cache)(nil)

// Close flushes dirty blocks and closes the underlying device if it is
// closable. The cache must not be used afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	flushErr := c.flushLocked()
	if flushErr == nil {
		flushErr = c.takeStickyLocked()
	}
	if cl, ok := c.dev.(interface{ Close() error }); ok {
		if err := cl.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// String summarizes the cache for logs.
func (c *Cache) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("blockcache.Cache{cap=%d policy=%s resident=%d hits=%d misses=%d}",
		c.cap, c.policy.Name(), len(c.entries), c.stats.Hits, c.stats.Misses)
}

var _ vdisk.Device = (*Cache)(nil)
