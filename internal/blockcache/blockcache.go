// Package blockcache implements a buffered block cache between the file
// systems and the vdisk device layer.
//
// The ICDE 2003 StegFS evaluation charges every hidden-file header probe,
// p-tree hop and stegdb page touch full mechanical disk cost; hot metadata
// blocks (superblock, bitmap, headers, B-tree interior pages) are re-read on
// every access. Cache wraps any vdisk.Device with an LRU block cache that
// absorbs those repeated reads and batches writes: dirty blocks are held in
// memory and written back in ascending block order, so the flush pass
// streams over the (simulated or real) platter instead of random-seeking.
//
// The cache is a write-back cache, so crash consistency is the caller's
// responsibility: callers must Flush (or Sync) before any point where the
// on-device image has to be self-consistent. stegfs.FS does this around its
// superblock/bitmap writes so that data blocks always reach the device
// before the metadata that references them.
package blockcache

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"stegfs/internal/vdisk"
)

// Stats counts cache activity. Counters only ever increase; read a snapshot
// with Cache.Stats.
type Stats struct {
	Hits       int64 // reads served from the cache
	Misses     int64 // reads that went to the device
	Evictions  int64 // entries displaced by capacity pressure
	WriteBacks int64 // dirty blocks written to the device
	Flushes    int64 // explicit Flush/Sync barriers
}

// Sub returns s - o counter-wise. Benchmarks snapshot the counters before a
// measurement window and subtract to get windowed stats.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:       s.Hits - o.Hits,
		Misses:     s.Misses - o.Misses,
		Evictions:  s.Evictions - o.Evictions,
		WriteBacks: s.WriteBacks - o.WriteBacks,
		Flushes:    s.Flushes - o.Flushes,
	}
}

// HitRate returns the fraction of reads served from the cache.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one cached block. data always holds exactly one device block.
type entry struct {
	block int64
	data  []byte
	dirty bool
	elem  *list.Element
}

// Cache is an LRU block cache over a vdisk.Device. It implements
// vdisk.Device itself, so every layer written against the device interface
// (plainfs, stegfs, stegdb's pager via hidden files) runs through it
// unchanged. A Cache with capacity 0 is a transparent pass-through.
//
// Cache is safe for concurrent use.
type Cache struct {
	mu           sync.Mutex
	dev          vdisk.Device
	cap          int
	writeThrough bool
	entries      map[int64]*entry
	lru          *list.List // front = most recently used
	stats        Stats
}

// New wraps dev in a write-back cache holding up to capacity blocks.
// capacity <= 0 disables caching entirely (all I/O passes straight through).
func New(dev vdisk.Device, capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		dev:     dev,
		cap:     capacity,
		entries: make(map[int64]*entry, capacity),
		lru:     list.New(),
	}
}

// NewWriteThrough wraps dev in a write-through cache: reads are cached, but
// every write goes to the device synchronously, so no data is ever deferred
// and Flush is a no-op. Timing experiments use this mode so the device clock
// charges every write inside the measurement window; callers who want
// batched write-back with explicit barriers use New.
func NewWriteThrough(dev vdisk.Device, capacity int) *Cache {
	c := New(dev, capacity)
	c.writeThrough = true
	return c
}

// Device returns the wrapped device.
func (c *Cache) Device() vdisk.Device { return c.dev }

// Capacity returns the maximum number of cached blocks.
func (c *Cache) Capacity() int { return c.cap }

// NumBlocks returns the number of blocks on the underlying device.
func (c *Cache) NumBlocks() int64 { return c.dev.NumBlocks() }

// BlockSize returns the block size of the underlying device.
func (c *Cache) BlockSize() int { return c.dev.BlockSize() }

// Stats returns a snapshot of the accumulated counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Dirty returns the number of dirty blocks currently held.
func (c *Cache) Dirty() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		if e.dirty {
			n++
		}
	}
	return n
}

// ReadBlock reads block n into buf, serving from the cache when possible.
func (c *Cache) ReadBlock(n int64, buf []byte) error {
	if len(buf) != c.dev.BlockSize() {
		return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(buf), c.dev.BlockSize())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 {
		c.stats.Misses++
		return c.dev.ReadBlock(n, buf)
	}
	if e, ok := c.entries[n]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(e.elem)
		copy(buf, e.data)
		return nil
	}
	c.stats.Misses++
	if err := c.dev.ReadBlock(n, buf); err != nil {
		return err
	}
	c.insertLocked(n, buf, false)
	return nil
}

// WriteBlock stores buf for block n in the cache, deferring the device write
// until eviction or the next Flush.
func (c *Cache) WriteBlock(n int64, buf []byte) error {
	if len(buf) != c.dev.BlockSize() {
		return fmt.Errorf("%w: %d != %d", vdisk.ErrBadBuffer, len(buf), c.dev.BlockSize())
	}
	if n < 0 || n >= c.dev.NumBlocks() {
		return fmt.Errorf("%w: %d (of %d)", vdisk.ErrOutOfRange, n, c.dev.NumBlocks())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap == 0 {
		return c.dev.WriteBlock(n, buf)
	}
	if c.writeThrough {
		if err := c.dev.WriteBlock(n, buf); err != nil {
			return err
		}
		c.stats.WriteBacks++
	}
	if e, ok := c.entries[n]; ok {
		copy(e.data, buf)
		e.dirty = !c.writeThrough
		c.lru.MoveToFront(e.elem)
		return nil
	}
	c.insertLocked(n, buf, !c.writeThrough)
	return nil
}

// insertLocked adds a new entry for block n (caller holds c.mu) and evicts
// the least recently used entry if the cache is over capacity.
func (c *Cache) insertLocked(n int64, buf []byte, dirty bool) {
	e := &entry{block: n, data: append(make([]byte, 0, len(buf)), buf...), dirty: dirty}
	e.elem = c.lru.PushFront(e)
	c.entries[n] = e
	for len(c.entries) > c.cap {
		if !c.evictLocked() {
			break // over capacity until the device recovers
		}
	}
}

// evictLocked removes the LRU entry, writing it back first when dirty. On a
// write-back error the entry stays resident so the data is not lost (the
// error surfaces on the next Flush) and false is returned.
func (c *Cache) evictLocked() bool {
	back := c.lru.Back()
	if back == nil {
		return false
	}
	victim := back.Value.(*entry)
	if victim.dirty {
		if err := c.dev.WriteBlock(victim.block, victim.data); err != nil {
			c.lru.MoveToFront(back)
			return false
		}
		c.stats.WriteBacks++
		victim.dirty = false
	}
	c.lru.Remove(back)
	delete(c.entries, victim.block)
	c.stats.Evictions++
	return true
}

// Flush writes every dirty block to the device in ascending block order, so
// the write-back pass streams sequentially instead of random-seeking. Cached
// data stays resident (clean) for future reads.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Cache) flushLocked() error {
	c.stats.Flushes++
	var dirty []*entry
	for _, e := range c.entries {
		if e.dirty {
			dirty = append(dirty, e)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].block < dirty[j].block })
	for _, e := range dirty {
		if err := c.dev.WriteBlock(e.block, e.data); err != nil {
			return fmt.Errorf("blockcache: write-back block %d: %w", e.block, err)
		}
		e.dirty = false
		c.stats.WriteBacks++
	}
	return nil
}

// Sync flushes all dirty blocks and then syncs the underlying device if it
// supports it (e.g. vdisk.FileStore).
func (c *Cache) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	if s, ok := c.dev.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Invalidate drops every cached block. Dirty data is flushed first; the
// error from that flush is returned. Tests use this to force cold reads.
func (c *Cache) Invalidate() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushLocked(); err != nil {
		return err
	}
	c.entries = make(map[int64]*entry, c.cap)
	c.lru.Init()
	return nil
}

// Close flushes dirty blocks and closes the underlying device if it is
// closable. The cache must not be used afterwards.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	flushErr := c.flushLocked()
	if cl, ok := c.dev.(interface{ Close() error }); ok {
		if err := cl.Close(); err != nil && flushErr == nil {
			flushErr = err
		}
	}
	return flushErr
}

// String summarizes the cache for logs.
func (c *Cache) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("blockcache.Cache{cap=%d resident=%d hits=%d misses=%d}",
		c.cap, len(c.entries), c.stats.Hits, c.stats.Misses)
}

var _ vdisk.Device = (*Cache)(nil)
