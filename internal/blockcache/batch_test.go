package blockcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"stegfs/internal/vdisk"
)

func fillStore(t *testing.T, blocks int64, bs int) *vdisk.MemStore {
	t.Helper()
	store, err := vdisk.NewMemStore(blocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, bs)
	for b := int64(0); b < blocks; b++ {
		for i := range buf {
			buf[i] = byte(b) ^ byte(i*13)
		}
		if err := store.WriteBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	return store
}

func expectBlock(b int64, bs int) []byte {
	buf := make([]byte, bs)
	for i := range buf {
		buf[i] = byte(b) ^ byte(i*13)
	}
	return buf
}

// TestReadBlocksMixedHitMiss: a batch spanning resident and cold blocks must
// return the same bytes as the serial path and account one hit or one miss
// per block.
func TestReadBlocksMixedHitMiss(t *testing.T) {
	store := fillStore(t, 128, 256)
	c := New(store, 64)
	// Warm blocks 10 and 12.
	warm := make([]byte, 256)
	for _, b := range []int64{10, 12} {
		if err := c.ReadBlock(b, warm); err != nil {
			t.Fatal(err)
		}
	}
	pre := c.Stats()
	ns := []int64{12, 50, 10, 51, 52}
	bufs := make([][]byte, len(ns))
	for i := range bufs {
		bufs[i] = make([]byte, 256)
	}
	if err := c.ReadBlocks(ns, bufs); err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		if !bytes.Equal(bufs[i], expectBlock(n, 256)) {
			t.Fatalf("block %d corrupted through batch read", n)
		}
	}
	d := c.Stats().Sub(pre)
	if d.Hits != 2 || d.Misses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 2/3", d.Hits, d.Misses)
	}
	// All five must now be resident: a second batch is pure hits.
	pre = c.Stats()
	if err := c.ReadBlocks(ns, bufs); err != nil {
		t.Fatal(err)
	}
	if d := c.Stats().Sub(pre); d.Hits != 5 || d.Misses != 0 {
		t.Fatalf("second pass hits/misses = %d/%d, want 5/0", d.Hits, d.Misses)
	}
}

// TestReadBlocksDuplicates: a batch naming the same block twice must fill
// both buffers and fetch the block once.
func TestReadBlocksDuplicates(t *testing.T) {
	store := fillStore(t, 64, 256)
	c := New(store, 16)
	ns := []int64{7, 7, 7}
	bufs := [][]byte{make([]byte, 256), make([]byte, 256), make([]byte, 256)}
	if err := c.ReadBlocks(ns, bufs); err != nil {
		t.Fatal(err)
	}
	for i := range bufs {
		if !bytes.Equal(bufs[i], expectBlock(7, 256)) {
			t.Fatalf("duplicate slot %d wrong", i)
		}
	}
	if d := c.Stats(); d.Misses != 1 {
		t.Fatalf("duplicate batch fetched %d times, want 1", d.Misses)
	}
}

// TestWriteBlocksReadYourWrites: a write batch must be visible to subsequent
// reads (cached) and survive Flush to the device.
func TestWriteBlocksReadYourWrites(t *testing.T) {
	store := fillStore(t, 64, 256)
	c := New(store, 16)
	ns := []int64{9, 3, 30}
	bufs := make([][]byte, len(ns))
	for i := range ns {
		bufs[i] = bytes.Repeat([]byte{byte(0xC0 + i)}, 256)
	}
	if err := c.WriteBlocks(ns, bufs); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	for i, n := range ns {
		if err := c.ReadBlock(n, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bufs[i]) {
			t.Fatalf("read-your-writes failed for block %d", n)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		if err := store.ReadBlock(n, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bufs[i]) {
			t.Fatalf("block %d not flushed", n)
		}
	}
}

// TestSingleflightConcurrentMisses: N concurrent cold reads of one block
// must produce one device fetch; the waiters are served from the cache.
func TestSingleflightConcurrentMisses(t *testing.T) {
	store := fillStore(t, 64, 256)
	c := New(store, 16)
	const readers = 8
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 256)
			if err := c.ReadBlock(33, buf); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(buf, expectBlock(33, 256)) {
				errs <- fmt.Errorf("corrupt concurrent read")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("%d device fetches for one block, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits != readers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, readers-1)
	}
}

// gatedStore delays reads of one block until released, so tests can hold a
// miss fetch in flight deterministically.
type gatedStore struct {
	*vdisk.MemStore
	gate    chan struct{} // closed to release
	entered chan struct{} // signaled when the gated read begins
	block   int64
}

func (g *gatedStore) ReadBlock(n int64, buf []byte) error {
	if n == g.block {
		g.entered <- struct{}{}
		<-g.gate
	}
	return g.MemStore.ReadBlock(n, buf)
}

// TestWriteDuringFetchWins: a WriteBlock that lands while a miss fetch for
// the same block is in flight must win — the reader returns the written
// data, and the stale device bytes never enter the cache.
func TestWriteDuringFetchWins(t *testing.T) {
	mem := fillStore(t, 64, 256)
	gs := &gatedStore{MemStore: mem, gate: make(chan struct{}), entered: make(chan struct{}, 1), block: 21}
	c := New(gs, 16)

	readDone := make(chan []byte, 1)
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 256)
		if err := c.ReadBlock(21, buf); err != nil {
			readErr <- err
			return
		}
		readDone <- buf
	}()
	<-gs.entered // fetch is now parked inside the device read

	want := bytes.Repeat([]byte{0x5A}, 256)
	if err := c.WriteBlock(21, want); err != nil {
		t.Fatal(err)
	}
	close(gs.gate) // release the fetch

	select {
	case err := <-readErr:
		t.Fatal(err)
	case got := <-readDone:
		if !bytes.Equal(got, want) {
			t.Fatal("reader returned stale pre-write data")
		}
	}
	// The cache must still serve the written data.
	got := make([]byte, 256)
	if err := c.ReadBlock(21, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stale fetch clobbered the cached write")
	}
}

// TestBatchPassThroughAndWriteThrough: cap-0 and write-through caches keep
// their synchronous device semantics on the batch paths.
func TestBatchPassThroughAndWriteThrough(t *testing.T) {
	for _, mode := range []string{"passthrough", "writethrough"} {
		t.Run(mode, func(t *testing.T) {
			store := fillStore(t, 64, 256)
			var c *Cache
			if mode == "passthrough" {
				c = New(store, 0)
			} else {
				c = NewWriteThrough(store, 16)
			}
			ns := []int64{4, 2}
			w := [][]byte{bytes.Repeat([]byte{1}, 256), bytes.Repeat([]byte{2}, 256)}
			if err := c.WriteBlocks(ns, w); err != nil {
				t.Fatal(err)
			}
			// The device already holds the data, no Flush needed.
			got := make([]byte, 256)
			for i, n := range ns {
				if err := store.ReadBlock(n, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, w[i]) {
					t.Fatalf("%s: block %d not on device", mode, n)
				}
			}
			r := [][]byte{make([]byte, 256), make([]byte, 256)}
			if err := c.ReadBlocks(ns, r); err != nil {
				t.Fatal(err)
			}
			for i := range ns {
				if !bytes.Equal(r[i], w[i]) {
					t.Fatalf("%s: batch read wrong", mode)
				}
			}
		})
	}
}
