package vdisk

import (
	"fmt"
	"os"
	"sync"
)

// Store is the raw persistence layer beneath a Disk: block-addressed storage
// with no timing model. MemStore keeps blocks in memory; FileStore backs the
// volume with a single ordinary file (the "file-backed block store" used by
// the CLI tools).
type Store interface {
	Device
	// Close releases underlying resources.
	Close() error
}

// MemStore is an in-memory block store. It is the default substrate for
// tests and benchmarks; contents are zero until written.
type MemStore struct {
	// lockcheck:level 66 volume/memMu
	mu        sync.RWMutex
	blockSize int
	// lockcheck:guardedby mu
	data []byte
	// lockcheck:guardedby mu
	closed bool
}

// NewMemStore creates an in-memory store with numBlocks blocks of blockSize
// bytes each.
func NewMemStore(numBlocks int64, blockSize int) (*MemStore, error) {
	if numBlocks <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("vdisk: invalid geometry %d x %d", numBlocks, blockSize)
	}
	return &MemStore{
		blockSize: blockSize,
		data:      make([]byte, numBlocks*int64(blockSize)),
	}, nil
}

// NumBlocks returns the number of blocks.
func (m *MemStore) NumBlocks() int64 {
	// lockcheck:ignore the slice header is immutable after construction; only the contents are guarded
	return int64(len(m.data) / m.blockSize)
}

// BlockSize returns the block size in bytes.
func (m *MemStore) BlockSize() int { return m.blockSize }

// lockcheck:holds volume/memMu shared
func (m *MemStore) check(n int64, buf []byte) error {
	if m.closed {
		return ErrClosed
	}
	if n < 0 || n >= m.NumBlocks() {
		return fmt.Errorf("%w: %d (of %d)", ErrOutOfRange, n, m.NumBlocks())
	}
	if len(buf) != m.blockSize {
		return fmt.Errorf("%w: %d != %d", ErrBadBuffer, len(buf), m.blockSize)
	}
	return nil
}

// ReadBlock copies block n into buf.
func (m *MemStore) ReadBlock(n int64, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.check(n, buf); err != nil {
		return err
	}
	off := n * int64(m.blockSize)
	copy(buf, m.data[off:off+int64(m.blockSize)])
	return nil
}

// WriteBlock copies buf into block n.
func (m *MemStore) WriteBlock(n int64, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(n, buf); err != nil {
		return err
	}
	off := n * int64(m.blockSize)
	copy(m.data[off:off+int64(m.blockSize)], buf)
	return nil
}

// Close marks the store closed. Further I/O fails with ErrClosed.
func (m *MemStore) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// Snapshot returns a copy of the raw volume contents. Adversary tooling uses
// this to model an attacker who images the disk.
func (m *MemStore) Snapshot() []byte {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out
}

// Restore overwrites the raw volume contents from a snapshot taken earlier.
func (m *MemStore) Restore(img []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(img) != len(m.data) {
		return fmt.Errorf("vdisk: snapshot length %d != volume length %d", len(img), len(m.data))
	}
	copy(m.data, img)
	return nil
}

var _ Store = (*MemStore)(nil)

// FileStore is a block store backed by a single file on the host file
// system. The file is created (or truncated to size) on open.
type FileStore struct {
	// lockcheck:level 67 volume/fileMu
	mu sync.Mutex
	// lockcheck:guardedby mu
	f         *os.File
	blockSize int
	numBlocks int64
	// lockcheck:guardedby mu
	closed bool
}

// CreateFileStore creates (or truncates) path as a volume of numBlocks
// blocks of blockSize bytes.
func CreateFileStore(path string, numBlocks int64, blockSize int) (*FileStore, error) {
	if numBlocks <= 0 || blockSize <= 0 {
		return nil, fmt.Errorf("vdisk: invalid geometry %d x %d", numBlocks, blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("vdisk: create %s: %w", path, err)
	}
	if err := f.Truncate(numBlocks * int64(blockSize)); err != nil {
		f.Close()
		return nil, fmt.Errorf("vdisk: truncate %s: %w", path, err)
	}
	return &FileStore{f: f, blockSize: blockSize, numBlocks: numBlocks}, nil
}

// OpenFileStore opens an existing volume file with the given block size.
func OpenFileStore(path string, blockSize int) (*FileStore, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("vdisk: invalid block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o600)
	if err != nil {
		return nil, fmt.Errorf("vdisk: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("vdisk: stat %s: %w", path, err)
	}
	if fi.Size()%int64(blockSize) != 0 {
		f.Close()
		return nil, fmt.Errorf("vdisk: %s size %d not a multiple of block size %d", path, fi.Size(), blockSize)
	}
	return &FileStore{f: f, blockSize: blockSize, numBlocks: fi.Size() / int64(blockSize)}, nil
}

// NumBlocks returns the number of blocks.
func (s *FileStore) NumBlocks() int64 { return s.numBlocks }

// BlockSize returns the block size in bytes.
func (s *FileStore) BlockSize() int { return s.blockSize }

// lockcheck:holds volume/fileMu
func (s *FileStore) check(n int64, buf []byte) error {
	if s.closed {
		return ErrClosed
	}
	if n < 0 || n >= s.numBlocks {
		return fmt.Errorf("%w: %d (of %d)", ErrOutOfRange, n, s.numBlocks)
	}
	if len(buf) != s.blockSize {
		return fmt.Errorf("%w: %d != %d", ErrBadBuffer, len(buf), s.blockSize)
	}
	return nil
}

// ReadBlock reads block n into buf.
func (s *FileStore) ReadBlock(n int64, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(n, buf); err != nil {
		return err
	}
	if _, err := s.f.ReadAt(buf, n*int64(s.blockSize)); err != nil {
		return fmt.Errorf("vdisk: read block %d: %w: %w", n, ErrIO, err)
	}
	return nil
}

// WriteBlock writes buf to block n.
func (s *FileStore) WriteBlock(n int64, buf []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.check(n, buf); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(buf, n*int64(s.blockSize)); err != nil {
		return fmt.Errorf("vdisk: write block %d: %w: %w", n, ErrIO, err)
	}
	return nil
}

// Sync flushes the backing file to stable storage.
func (s *FileStore) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("vdisk: sync: %w: %w", ErrIO, err)
	}
	return nil
}

// Close flushes and closes the backing file.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("vdisk: close: %w: %w", ErrIO, err)
	}
	return nil
}

var _ Store = (*FileStore)(nil)
