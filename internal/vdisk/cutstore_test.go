package vdisk

import (
	"bytes"
	"testing"
)

func TestCutStoreDropsWritesAfterCut(t *testing.T) {
	mem, err := NewMemStore(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCutStore(mem)
	pay := func(tag byte) []byte { return bytes.Repeat([]byte{tag}, 32) }

	cs.StartTrace()
	cs.CutAfter(2)
	for i := int64(0); i < 4; i++ {
		if err := cs.WriteBlock(i, pay(byte(1+i))); err != nil {
			t.Fatalf("write %d: %v (dropped writes must still acknowledge)", i, err)
		}
	}
	if got := cs.Writes(); got != 2 {
		t.Fatalf("accepted writes = %d, want 2", got)
	}
	if got := cs.Dropped(); got != 2 {
		t.Fatalf("dropped writes = %d, want 2", got)
	}
	trace := cs.StopTrace()
	if len(trace) != 2 || trace[0] != 0 || trace[1] != 1 {
		t.Fatalf("trace = %v, want [0 1]", trace)
	}
	// Blocks 0-1 persisted; blocks 2-3 never reached the store.
	buf := make([]byte, 32)
	for i := int64(0); i < 4; i++ {
		if err := cs.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
		want := pay(byte(1 + i))
		if i >= 2 {
			want = make([]byte, 32)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d content wrong after cut", i)
		}
	}
	// Disarm lifts the cut.
	cs.Disarm()
	if err := cs.WriteBlock(5, pay(9)); err != nil {
		t.Fatal(err)
	}
	if err := cs.ReadBlock(5, buf); err != nil || !bytes.Equal(buf, pay(9)) {
		t.Fatalf("write after Disarm lost (err=%v)", err)
	}
}

// TestBatchAccounting: every batch submission bumps the Batch counters once,
// regardless of its length; failed batches charge nothing.
func TestBatchAccounting(t *testing.T) {
	mem, err := NewMemStore(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisk(mem, DefaultGeometry())
	bufs := [][]byte{make([]byte, 32), make([]byte, 32), make([]byte, 32)}
	if err := d.WriteBlocks([]int64{3, 9, 1}, bufs); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlocks([]int64{1, 3}, bufs[:2]); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.BatchWrites != 1 || st.BatchReads != 1 {
		t.Fatalf("batch counters = %d writes / %d reads, want 1/1", st.BatchWrites, st.BatchReads)
	}
	if st.Writes != 3 || st.Reads != 2 {
		t.Fatalf("block counters = %d writes / %d reads, want 3/2", st.Writes, st.Reads)
	}
	// A rejected batch (out of range) leaves every counter untouched.
	if err := d.ReadBlocks([]int64{99}, bufs[:1]); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if got := d.Stats(); got != st {
		t.Fatalf("failed batch mutated stats: %+v -> %+v", st, got)
	}
}
