// Package vdisk implements the virtual block device substrate used by every
// file system in this repository.
//
// The ICDE 2003 StegFS evaluation ran on a physical Ultra ATA/100 disk; its
// measured access times are dominated by mechanical latency (seek and
// rotational delay) and by the drive's read-ahead behaviour. vdisk reproduces
// that cost structure with a deterministic simulator: every block request is
// charged a simulated service time derived from the head position, the seek
// distance, the rotational latency and the transfer rate. Sequential reads
// that fall inside the read-ahead window are served from the prefetch cache
// at transfer cost only.
//
// The simulated clock is the Disk's Elapsed() value; nothing ever sleeps, so
// experiments are fast and perfectly repeatable.
package vdisk

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Common errors returned by stores and disks.
var (
	// ErrOutOfRange reports a block number outside the device.
	ErrOutOfRange = errors.New("vdisk: block number out of range")
	// ErrBadBuffer reports a buffer whose length differs from the block size.
	ErrBadBuffer = errors.New("vdisk: buffer length != block size")
	// ErrClosed reports use of a closed device.
	ErrClosed = errors.New("vdisk: device is closed")
	// ErrTransient reports a fault that may clear on retry (a momentary bus
	// or controller error). RetryDevice retries these; nothing above the
	// retry seam should ever observe one.
	ErrTransient = errors.New("vdisk: transient device error")
	// ErrCorrupt reports an unrecoverable media fault on a block (a grown
	// defect, an uncorrectable ECC error). Retrying cannot help.
	ErrCorrupt = errors.New("vdisk: unrecoverable media error")
	// ErrIO wraps an operating-system I/O error from a file-backed store, so
	// callers can classify host failures without matching os/syscall errors
	// directly. RetryDevice treats these as retryable.
	ErrIO = errors.New("vdisk: host I/O error")
)

// IsFault reports whether err is a device-level fault (as opposed to a usage
// error such as ErrOutOfRange or ErrBadBuffer). stegfs uses this to decide
// when a failed write should degrade the mount to read-only.
func IsFault(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrIO)
}

// Device is the block-level interface the file systems are written against.
// Both raw stores (no timing) and Disk (timing simulator) implement it.
type Device interface {
	// ReadBlock reads block n into buf. len(buf) must equal BlockSize().
	//
	// lockcheck:io
	ReadBlock(n int64, buf []byte) error
	// WriteBlock writes buf to block n. len(buf) must equal BlockSize().
	//
	// lockcheck:io
	WriteBlock(n int64, buf []byte) error
	// NumBlocks returns the number of blocks on the device.
	NumBlocks() int64
	// BlockSize returns the block size in bytes.
	BlockSize() int
}

// BatchDevice is a Device that can service many blocks in one call. A batch
// is submitted to the device as a unit: implementations sort the requests by
// block number before issuing them (so sequential runs earn the read-ahead /
// streaming reward of the timing model) and acquire their internal locks once
// per batch instead of once per block. The data read or written is exactly
// what the equivalent sequence of per-block calls would produce; only the
// submission order and the locking cost differ.
type BatchDevice interface {
	Device
	// ReadBlocks reads block ns[i] into bufs[i] for every i. len(ns) must
	// equal len(bufs) and every buffer must be exactly one block long.
	//
	// lockcheck:io
	ReadBlocks(ns []int64, bufs [][]byte) error
	// WriteBlocks writes bufs[i] to block ns[i] for every i.
	//
	// lockcheck:io
	WriteBlocks(ns []int64, bufs [][]byte) error
}

// ReadBlocks reads many blocks through dev, using the BatchDevice fast path
// when the device offers one and falling back to per-block calls otherwise.
func ReadBlocks(dev Device, ns []int64, bufs [][]byte) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", ErrBadBuffer, len(ns), len(bufs))
	}
	if bd, ok := dev.(BatchDevice); ok {
		return bd.ReadBlocks(ns, bufs)
	}
	for i, n := range ns {
		if err := dev.ReadBlock(n, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks writes many blocks through dev, using the BatchDevice fast
// path when available.
func WriteBlocks(dev Device, ns []int64, bufs [][]byte) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", ErrBadBuffer, len(ns), len(bufs))
	}
	if bd, ok := dev.(BatchDevice); ok {
		return bd.WriteBlocks(ns, bufs)
	}
	for i, n := range ns {
		if err := dev.WriteBlock(n, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Geometry describes the mechanical timing model of the simulated drive.
// The defaults approximate a 2003-era 7200 RPM Ultra ATA/100 disk, matching
// the testbed in Table 2 of the paper.
type Geometry struct {
	// AvgSeek is the average (one-third stroke) seek time.
	AvgSeek time.Duration
	// TrackToTrack is the minimum seek time between adjacent tracks.
	TrackToTrack time.Duration
	// RPM is the spindle speed; rotational latency is half a revolution.
	RPM int
	// TransferRate is the sustained media transfer rate in bytes/second.
	TransferRate float64
	// TrackSizeBytes is the amount of data per track, used to decide when a
	// sequential run crosses a track boundary (charged TrackToTrack).
	TrackSizeBytes int
	// ReadAheadBytes is the size of the drive's prefetch window. A read that
	// continues a sequential run within this window is served by streaming:
	// it is charged the transfer time of every block passed over (the media
	// still rotates under the head), or a fresh seek if that would be
	// cheaper.
	ReadAheadBytes int
	// PerRequest is the fixed per-request overhead (controller, interrupt,
	// kernel path) charged on every block request.
	PerRequest time.Duration
	// VolumeSpan is the fraction of the physical platter the volume
	// occupies. The paper's 1 GB volume lives on a 20 GB disk, so seeks
	// within the volume are short-stroke: distance fractions are scaled by
	// this factor before entering the seek curve.
	VolumeSpan float64
}

// DefaultGeometry returns timing parameters approximating the paper's
// testbed disk (Ultra ATA/100, 7200 RPM, ~40 MB/s sustained).
func DefaultGeometry() Geometry {
	return Geometry{
		AvgSeek:        8900 * time.Microsecond,
		TrackToTrack:   1200 * time.Microsecond,
		RPM:            7200,
		TransferRate:   40 << 20, // 40 MiB/s
		TrackSizeBytes: 512 << 10,
		ReadAheadBytes: 256 << 10,
		PerRequest:     200 * time.Microsecond,
		VolumeSpan:     0.05, // 1 GB volume on a 20 GB disk
	}
}

// rotLatency returns the average rotational latency (half a revolution).
func (g Geometry) rotLatency() time.Duration {
	if g.RPM <= 0 {
		return 0
	}
	perRev := time.Minute / time.Duration(g.RPM)
	return perRev / 2
}

// transferTime returns the media transfer time for n bytes.
func (g Geometry) transferTime(n int) time.Duration {
	if g.TransferRate <= 0 {
		return 0
	}
	sec := float64(n) / g.TransferRate
	return time.Duration(sec * float64(time.Second))
}

// seekTime models the classic square-root seek curve: track-to-track cost
// for distance 1, rising with the square root of the seek distance toward
// roughly 2x the average seek for a full-stroke move.
func (g Geometry) seekTime(distBlocks, totalBlocks int64) time.Duration {
	if distBlocks <= 0 || totalBlocks <= 0 {
		return 0
	}
	frac := float64(distBlocks) / float64(totalBlocks)
	if g.VolumeSpan > 0 && g.VolumeSpan <= 1 {
		frac *= g.VolumeSpan
	}
	if frac > 1 {
		frac = 1
	}
	// full-stroke seek ~= 2 * average seek (uniform-random seeks average to
	// one third of the stroke; sqrt model calibrated so that frac=1/3 yields
	// approximately AvgSeek).
	full := 2 * float64(g.AvgSeek-g.TrackToTrack)
	t := float64(g.TrackToTrack) + full*math.Sqrt(frac)*0.866
	return time.Duration(t)
}

// Stats aggregates the operation counts and simulated costs of a Disk.
type Stats struct {
	Reads        int64         // block reads issued
	Writes       int64         // block writes issued
	SeqHits      int64         // reads served from the read-ahead window
	Seeks        int64         // requests that paid a mechanical seek
	BytesRead    int64         // total bytes read
	BytesWritten int64         // total bytes written
	BatchReads   int64         // ReadBlocks submissions (each covers >= 1 blocks)
	BatchWrites  int64         // WriteBlocks submissions (each covers >= 1 blocks)
	Busy         time.Duration // accumulated service time
	Retries      int64         // requests reissued after a retryable fault (RetryDevice)
	GiveUps      int64         // requests abandoned after exhausting the retry budget
}

// Disk wraps a Store with the mechanical timing simulator. It is safe for
// concurrent use; requests are serialized exactly like a single spindle.
type Disk struct {
	// The timing state below is mutated per request, but the store I/O
	// itself always runs outside the mutex (the noio flag enforces that):
	// a held d.mu only ever covers clock arithmetic, never a device wait.
	//
	// lockcheck:level 62 volume/diskMu noio
	mu    sync.Mutex
	store Store
	geom  Geometry

	// lockcheck:guardedby mu
	clock time.Duration
	// lockcheck:guardedby mu
	headPos int64 // next block after the last serviced request; -1 = unknown
	// lockcheck:guardedby mu
	raEnd int64 // exclusive end of the current read-ahead window
	// lockcheck:guardedby mu
	stats Stats

	// emuScale > 0 turns on latency emulation: every request additionally
	// sleeps emuScale x its simulated service time, outside d.mu. See
	// EmulateLatency.
	//
	// lockcheck:guardedby mu
	emuScale float64
}

// NewDisk builds a timing-simulated disk over store.
func NewDisk(store Store, geom Geometry) *Disk {
	return &Disk{store: store, geom: geom, headPos: -1, raEnd: -1}
}

// NumBlocks returns the number of blocks on the device.
func (d *Disk) NumBlocks() int64 { return d.store.NumBlocks() }

// BlockSize returns the block size in bytes.
func (d *Disk) BlockSize() int { return d.store.BlockSize() }

// Geometry returns the timing model in use.
func (d *Disk) Geometry() Geometry { return d.geom }

// Elapsed returns the simulated time consumed by all requests so far.
func (d *Disk) Elapsed() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock
}

// Stats returns a copy of the accumulated statistics.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// EmulateLatency makes every request actually sleep scale x its simulated
// service time (0 disables, the default). The simulated clock is untouched:
// it remains the serialized single-spindle cost and stays the canonical
// experiment metric. The sleep happens outside the simulator lock, so
// requests from concurrent callers overlap their waits the way a
// command-queuing device overlaps outstanding requests. Concurrency
// experiments use this to measure how much device latency the software
// stack above the disk can keep in flight: a layer that holds a shared lock
// across its device calls serializes the sleeps and its wall-clock
// throughput stays flat no matter how many callers pile on.
func (d *Disk) EmulateLatency(scale float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if scale < 0 {
		scale = 0
	}
	d.emuScale = scale
}

// emulate sleeps the emulated share of cost, if emulation is on. Called
// without d.mu held; scale is the emuScale captured under the lock.
func emulate(scale float64, cost time.Duration) {
	if scale > 0 && cost > 0 {
		time.Sleep(time.Duration(float64(cost) * scale))
	}
}

// ResetClock zeroes the simulated clock and statistics without touching the
// stored data or the head position.
func (d *Disk) ResetClock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.clock = 0
	d.stats = Stats{}
}

// ReadBlock reads block n, charging simulated service time. The store is
// consulted first: a rejected request (out of range, bad buffer, closed
// store) returns its error without touching the clock, the head position or
// the statistics, so failed I/O can never skew an experiment window.
func (d *Disk) ReadBlock(n int64, buf []byte) error {
	if err := d.store.ReadBlock(n, buf); err != nil {
		return err
	}
	d.mu.Lock()
	cost := d.chargeLocked(n, true)
	d.stats.Reads++
	d.stats.BytesRead += int64(len(buf))
	d.clock += cost
	d.stats.Busy += cost
	scale := d.emuScale
	d.mu.Unlock()
	emulate(scale, cost)
	return nil
}

// WriteBlock writes block n, charging simulated service time. As with
// ReadBlock, a store error short-circuits before any simulator state is
// mutated.
func (d *Disk) WriteBlock(n int64, buf []byte) error {
	if err := d.store.WriteBlock(n, buf); err != nil {
		return err
	}
	d.mu.Lock()
	cost := d.chargeLocked(n, false)
	d.stats.Writes++
	d.stats.BytesWritten += int64(len(buf))
	d.clock += cost
	d.stats.Busy += cost
	scale := d.emuScale
	d.mu.Unlock()
	emulate(scale, cost)
	return nil
}

// ReadBlocks implements BatchDevice: the batch is sorted by block number and
// charged as one uninterrupted submission, so an ascending run earns the
// sequential/read-ahead pricing even when other callers are hammering the
// disk concurrently. All store reads are performed (and validated) before
// any simulator state is touched, so a failed batch charges nothing.
func (d *Disk) ReadBlocks(ns []int64, bufs [][]byte) error {
	return d.batch(ns, bufs, true)
}

// WriteBlocks implements BatchDevice with the same sorted-submission and
// fail-charge-nothing semantics as ReadBlocks.
func (d *Disk) WriteBlocks(ns []int64, bufs [][]byte) error {
	return d.batch(ns, bufs, false)
}

func (d *Disk) batch(ns []int64, bufs [][]byte, read bool) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", ErrBadBuffer, len(ns), len(bufs))
	}
	if len(ns) == 0 {
		return nil
	}
	order := make([]int, len(ns))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return ns[order[a]] < ns[order[b]] })

	// Store pass first: every block transfers (or the whole batch is
	// rejected) before the clock, head position or statistics move.
	for _, i := range order {
		var err error
		if read {
			err = d.store.ReadBlock(ns[i], bufs[i])
		} else {
			err = d.store.WriteBlock(ns[i], bufs[i])
		}
		if err != nil {
			return err
		}
	}
	var total time.Duration
	d.mu.Lock()
	if read {
		d.stats.BatchReads++
	} else {
		d.stats.BatchWrites++
	}
	for _, i := range order {
		cost := d.chargeLocked(ns[i], read)
		if read {
			d.stats.Reads++
			d.stats.BytesRead += int64(len(bufs[i]))
		} else {
			d.stats.Writes++
			d.stats.BytesWritten += int64(len(bufs[i]))
		}
		d.clock += cost
		d.stats.Busy += cost
		total += cost
	}
	scale := d.emuScale
	d.mu.Unlock()
	emulate(scale, total)
	return nil
}

// CostOf returns the simulated service time a request for block n would be
// charged right now, without performing it. Used by tests. The full
// simulator state is restored, including the SeqHits/Seeks counters that
// chargeLocked updates — an earlier version leaked those into Stats.
func (d *Disk) CostOf(n int64, read bool) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	saveHead, saveRA, saveStats := d.headPos, d.raEnd, d.stats
	cost := d.chargeLocked(n, read)
	d.headPos, d.raEnd, d.stats = saveHead, saveRA, saveStats
	return cost
}

// chargeLocked computes the service time for a request on block n and
// updates the head position and read-ahead window. Caller holds d.mu.
//
// lockcheck:holds volume/diskMu
func (d *Disk) chargeLocked(n int64, read bool) time.Duration {
	bs := d.store.BlockSize()
	total := d.store.NumBlocks()
	xfer := d.geom.transferTime(bs)

	sequential := d.headPos >= 0 && n == d.headPos
	inWindow := read && d.raEnd >= 0 && n >= d.headPos && n < d.raEnd

	// Cost of servicing this request with a fresh mechanical seek.
	dist := n - d.headPos
	if d.headPos < 0 {
		dist = total / 3
	}
	if dist < 0 {
		dist = -dist
	}
	missCost := d.geom.seekTime(dist, total) + d.geom.rotLatency() + xfer

	var cost time.Duration
	switch {
	case sequential:
		// Continuing the sequential run: media transfer only, plus a
		// track-to-track hop when a track boundary is crossed.
		cost = xfer
		blocksPerTrack := int64(d.geom.TrackSizeBytes / bs)
		if blocksPerTrack > 0 && n%blocksPerTrack == 0 && n != 0 {
			cost += d.geom.TrackToTrack
		}
		d.stats.SeqHits++
	case inWindow:
		// Streaming forward inside the prefetch window: the media rotates
		// under the head, so every skipped block costs its transfer time.
		// Drive firmware falls back to a seek when that is cheaper.
		catchup := xfer * time.Duration(n-d.headPos+1)
		if catchup <= missCost {
			cost = catchup
			d.stats.SeqHits++
		} else {
			cost = missCost
			d.stats.Seeks++
		}
	default:
		cost = missCost
		d.stats.Seeks++
	}
	cost += d.geom.PerRequest

	d.headPos = n + 1
	if read {
		ra := int64(d.geom.ReadAheadBytes / bs)
		d.raEnd = n + 1 + ra
		if d.raEnd > total {
			d.raEnd = total
		}
	} else {
		d.raEnd = -1
	}
	return cost
}

// String summarizes the disk for logs.
func (d *Disk) String() string {
	return fmt.Sprintf("vdisk.Disk{blocks=%d bs=%d}", d.NumBlocks(), d.BlockSize())
}

var _ BatchDevice = (*Disk)(nil)
