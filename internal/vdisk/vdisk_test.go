package vdisk

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func testGeom() Geometry { return DefaultGeometry() }

func newTestDisk(t *testing.T, blocks int64, bs int) (*Disk, *MemStore) {
	t.Helper()
	store, err := NewMemStore(blocks, bs)
	if err != nil {
		t.Fatalf("NewMemStore: %v", err)
	}
	return NewDisk(store, testGeom()), store
}

func TestMemStoreRoundTrip(t *testing.T) {
	store, err := NewMemStore(16, 512)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xab}, 512)
	if err := store.WriteBlock(7, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := store.ReadBlock(7, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read mismatch")
	}
}

func TestMemStoreBounds(t *testing.T) {
	store, _ := NewMemStore(4, 512)
	buf := make([]byte, 512)
	if err := store.ReadBlock(4, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := store.ReadBlock(-1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange for negative, got %v", err)
	}
	if err := store.WriteBlock(0, buf[:100]); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("want ErrBadBuffer, got %v", err)
	}
}

func TestMemStoreClosed(t *testing.T) {
	store, _ := NewMemStore(4, 512)
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := store.ReadBlock(0, buf); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestMemStoreSnapshotRestore(t *testing.T) {
	store, _ := NewMemStore(8, 512)
	blk := bytes.Repeat([]byte{0x5a}, 512)
	if err := store.WriteBlock(3, blk); err != nil {
		t.Fatal(err)
	}
	snap := store.Snapshot()
	zero := make([]byte, 512)
	if err := store.WriteBlock(3, zero); err != nil {
		t.Fatal(err)
	}
	if err := store.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := store.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Fatal("restore did not bring back contents")
	}
	if err := store.Restore(snap[:10]); err == nil {
		t.Fatal("restore of wrong-size snapshot should fail")
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	fsStore, err := CreateFileStore(path, 32, 1024)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xcd}, 1024)
	if err := fsStore.WriteBlock(9, want); err != nil {
		t.Fatal(err)
	}
	if err := fsStore.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenFileStore(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.NumBlocks() != 32 {
		t.Fatalf("NumBlocks = %d, want 32", reopened.NumBlocks())
	}
	got := make([]byte, 1024)
	if err := reopened.ReadBlock(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("persisted block mismatch")
	}
}

func TestFileStoreBadGeometry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.img")
	if _, err := CreateFileStore(path, 0, 1024); err == nil {
		t.Fatal("zero blocks should fail")
	}
	if _, err := OpenFileStore(filepath.Join(t.TempDir(), "missing"), 1024); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	disk, _ := newTestDisk(t, 1<<16, 1024)
	buf := make([]byte, 1024)
	// Prime head position.
	if err := disk.ReadBlock(100, buf); err != nil {
		t.Fatal(err)
	}
	seq := disk.CostOf(101, true)
	rnd := disk.CostOf(40000, true)
	if seq >= rnd {
		t.Fatalf("sequential (%v) should be cheaper than random (%v)", seq, rnd)
	}
	if rnd < disk.Geometry().rotLatency() {
		t.Fatalf("random access %v should pay at least rotational latency %v", rnd, disk.Geometry().rotLatency())
	}
}

func TestReadAheadWindowHit(t *testing.T) {
	disk, _ := newTestDisk(t, 1<<16, 1024)
	buf := make([]byte, 1024)
	if err := disk.ReadBlock(100, buf); err != nil {
		t.Fatal(err)
	}
	// A short forward skip within the prefetch window streams (catch-up
	// transfer), cheaper than a full seek.
	hit := disk.CostOf(105, true)
	miss := disk.CostOf(50000, true)
	if hit >= miss {
		t.Fatalf("window hit (%v) should be cheaper than distant miss (%v)", hit, miss)
	}
}

func TestWriteInvalidatesReadAhead(t *testing.T) {
	disk, _ := newTestDisk(t, 1<<16, 1024)
	buf := make([]byte, 1024)
	if err := disk.ReadBlock(100, buf); err != nil {
		t.Fatal(err)
	}
	if err := disk.WriteBlock(101, buf); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// After the write, a forward skip must not be treated as a prefetch hit.
	before := disk.Stats().Seeks
	if err := disk.ReadBlock(110, buf); err != nil {
		t.Fatal(err)
	}
	if disk.Stats().Seeks != before+1 {
		t.Fatal("forward skip after write should seek, not hit the window")
	}
}

func TestClockMonotonicAndResettable(t *testing.T) {
	disk, _ := newTestDisk(t, 1024, 1024)
	buf := make([]byte, 1024)
	var last time.Duration
	for i := int64(0); i < 50; i++ {
		if err := disk.ReadBlock(i*13%1024, buf); err != nil {
			t.Fatal(err)
		}
		now := disk.Elapsed()
		if now <= last {
			t.Fatalf("clock not monotonic: %v then %v", last, now)
		}
		last = now
	}
	disk.ResetClock()
	if disk.Elapsed() != 0 {
		t.Fatal("ResetClock did not zero the clock")
	}
	if disk.Stats().Reads != 0 {
		t.Fatal("ResetClock did not zero stats")
	}
}

func TestSeekTimeMonotoneInDistance(t *testing.T) {
	g := testGeom()
	const total = 1 << 20
	var prev time.Duration
	for _, dist := range []int64{1, 100, 10000, 100000, total} {
		st := g.seekTime(dist, total)
		if st < prev {
			t.Fatalf("seekTime(%d) = %v < previous %v", dist, st, prev)
		}
		prev = st
	}
	if g.seekTime(0, total) != 0 {
		t.Fatal("zero distance should cost zero seek")
	}
}

func TestTransferTimeScalesWithBlockSize(t *testing.T) {
	g := testGeom()
	if g.transferTime(2048) <= g.transferTime(512) {
		t.Fatal("larger transfers should take longer")
	}
}

func TestCostOfDoesNotMoveHead(t *testing.T) {
	disk, _ := newTestDisk(t, 4096, 1024)
	buf := make([]byte, 1024)
	if err := disk.ReadBlock(10, buf); err != nil {
		t.Fatal(err)
	}
	c1 := disk.CostOf(2000, true)
	c2 := disk.CostOf(2000, true)
	if c1 != c2 {
		t.Fatalf("CostOf should be side-effect free: %v vs %v", c1, c2)
	}
}

func TestDiskStatsAccounting(t *testing.T) {
	disk, _ := newTestDisk(t, 4096, 512)
	buf := make([]byte, 512)
	for i := int64(0); i < 10; i++ {
		if err := disk.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 5; i++ {
		if err := disk.WriteBlock(i*100, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := disk.Stats()
	if st.Reads != 10 || st.Writes != 5 {
		t.Fatalf("ops miscounted: %+v", st)
	}
	if st.BytesRead != 10*512 || st.BytesWritten != 5*512 {
		t.Fatalf("bytes miscounted: %+v", st)
	}
	if st.Busy != disk.Elapsed() {
		t.Fatalf("busy %v != elapsed %v", st.Busy, disk.Elapsed())
	}
}

// TestFailedIODoesNotMutateSimulator is the regression test for the timing
// bug where Disk charged the clock, advanced the head and bumped Stats
// before delegating to the store: a rejected request (out of range, bad
// buffer, closed store) must leave the simulator exactly as it was, or
// every experiment that trips an error reports a polluted Elapsed().
func TestFailedIODoesNotMutateSimulator(t *testing.T) {
	disk, store := newTestDisk(t, 64, 512)
	buf := make([]byte, 512)
	// Establish a head position so a failed request could visibly move it.
	if err := disk.ReadBlock(10, buf); err != nil {
		t.Fatal(err)
	}
	elapsed, stats := disk.Elapsed(), disk.Stats()
	costNext := disk.CostOf(11, true)

	fail := func(desc string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: expected error", desc)
		}
		if got := disk.Elapsed(); got != elapsed {
			t.Fatalf("%s charged the clock: %v -> %v", desc, elapsed, got)
		}
		if got := disk.Stats(); got != stats {
			t.Fatalf("%s mutated stats: %+v -> %+v", desc, stats, got)
		}
		if got := disk.CostOf(11, true); got != costNext {
			t.Fatalf("%s moved the head: next-block cost %v -> %v", desc, costNext, got)
		}
	}

	fail("out-of-range read", disk.ReadBlock(64, buf))
	fail("negative write", disk.WriteBlock(-1, buf))
	fail("short-buffer read", disk.ReadBlock(0, buf[:100]))
	fail("short-buffer write", disk.WriteBlock(0, buf[:100]))

	// A closed store rejects everything; the simulator stays untouched.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	fail("read after close", disk.ReadBlock(0, buf))
	fail("write after close", disk.WriteBlock(0, buf))
}

// TestPropertyStoreReadsWhatWasWritten is a property test: for arbitrary
// block/content sequences, the last write to each block is what a read
// returns.
func TestPropertyStoreReadsWhatWasWritten(t *testing.T) {
	const blocks, bs = 64, 256
	f := func(ops []uint16, fill byte) bool {
		store, err := NewMemStore(blocks, bs)
		if err != nil {
			return false
		}
		last := map[int64]byte{}
		for i, op := range ops {
			b := int64(op) % blocks
			v := fill + byte(i)
			buf := bytes.Repeat([]byte{v}, bs)
			if err := store.WriteBlock(b, buf); err != nil {
				return false
			}
			last[b] = v
		}
		for b, v := range last {
			buf := make([]byte, bs)
			if err := store.ReadBlock(b, buf); err != nil {
				return false
			}
			for _, got := range buf {
				if got != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCostAlwaysPositive: every charged request costs at least the
// per-request overhead and the clock never decreases.
func TestPropertyCostAlwaysPositive(t *testing.T) {
	disk, _ := newTestDisk(t, 1<<14, 512)
	buf := make([]byte, 512)
	rng := rand.New(rand.NewSource(7))
	var last time.Duration
	for i := 0; i < 500; i++ {
		b := rng.Int63n(1 << 14)
		var err error
		if rng.Intn(2) == 0 {
			err = disk.ReadBlock(b, buf)
		} else {
			err = disk.WriteBlock(b, buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		now := disk.Elapsed()
		if now-last < disk.Geometry().PerRequest {
			t.Fatalf("request %d cost %v < per-request floor %v", i, now-last, disk.Geometry().PerRequest)
		}
		last = now
	}
}
