package vdisk

import (
	"bytes"
	"errors"
	"testing"
)

func newFaultFixture(t *testing.T) (*MemStore, *FaultStore) {
	t.Helper()
	mem, err := NewMemStore(64, 512)
	if err != nil {
		t.Fatal(err)
	}
	return mem, NewFaultStore(mem, 7)
}

func fillBlock(tag byte, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = tag ^ byte(i*31)
	}
	return buf
}

func TestFaultStoreTransientFailKThenSucceed(t *testing.T) {
	_, fs := newFaultFixture(t)
	buf := fillBlock(1, 512)
	if err := fs.WriteBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	// Rate 1: every fresh request starts an incident of exactly 3 failures,
	// and the attempt after the incident drains is guaranteed to succeed.
	fs.SetTransientRates(1, 1, 3)
	got := make([]byte, 512)
	var failures int
	for {
		err := fs.ReadBlock(3, got)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrTransient) {
			t.Fatalf("want ErrTransient, got %v", err)
		}
		failures++
		if failures > 10 {
			t.Fatal("transient incident never cleared")
		}
	}
	if failures != 3 {
		t.Fatalf("want exactly 3 failures, got %d", failures)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("payload mismatch after incident cleared")
	}
}

func TestFaultStoreTransientDeterministic(t *testing.T) {
	run := func() (FaultStats, error) {
		mem, err := NewMemStore(64, 512)
		if err != nil {
			return FaultStats{}, err
		}
		fs := NewFaultStore(mem, 99)
		fs.SetTransientRates(0.3, 0.3, 2)
		buf := fillBlock(5, 512)
		for i := int64(0); i < 40; i++ {
			fs.WriteBlock(i%8, buf) //nolint:errcheck // faults are the point
			fs.ReadBlock(i%8, buf)  //nolint:errcheck
		}
		return fs.Stats(), nil
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different fault schedule: %+v vs %+v", a, b)
	}
	if a.ReadFaults == 0 && a.WriteFaults == 0 {
		t.Fatal("rate 0.3 over 80 ops injected nothing")
	}
}

func TestFaultStorePermanentFaults(t *testing.T) {
	_, fs := newFaultFixture(t)
	buf := fillBlock(2, 512)
	fs.FailWrite(5)
	fs.FailRead(6)
	if err := fs.WriteBlock(5, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt writing failed block, got %v", err)
	}
	if err := fs.WriteBlock(6, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadBlock(6, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt reading failed block, got %v", err)
	}
	// Permanent faults are never retryable.
	if Retryable(fs.ReadBlock(6, buf)) {
		t.Fatal("ErrCorrupt must not be retryable")
	}
	if fs.Stats().PermFaults != 3 {
		t.Fatalf("want 3 permanent faults, got %d", fs.Stats().PermFaults)
	}
}

func TestFaultStoreBitFlipHealsOnRewrite(t *testing.T) {
	_, fs := newFaultFixture(t)
	buf := fillBlock(3, 512)
	if err := fs.WriteBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	fs.FlipBit(2, 17) // byte 2, bit 1
	got := make([]byte, 512)
	if err := fs.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, buf) {
		t.Fatal("bit flip had no effect")
	}
	want := append([]byte(nil), buf...)
	want[2] ^= 1 << 1
	if !bytes.Equal(got, want) {
		t.Fatal("wrong bit flipped")
	}
	// Rewriting the block heals the rot.
	if err := fs.WriteBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadBlock(2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("rewrite did not heal the flip")
	}
	if fs.Stats().CorruptReads != 1 {
		t.Fatalf("want 1 corrupt read, got %d", fs.Stats().CorruptReads)
	}
}

func TestFaultStoreTornWindow(t *testing.T) {
	mem, fs := newFaultFixture(t)
	buf := fillBlock(4, 512)
	// Accept 3 writes, coin-flip the next 8, drop the rest.
	fs.TearAfter(3, 8)
	for i := int64(0); i < 20; i++ {
		if err := fs.WriteBlock(i%32, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := fs.Stats()
	if st.TornApplied+st.TornDropped != 8 {
		t.Fatalf("window saw %d writes, want 8", st.TornApplied+st.TornDropped)
	}
	if st.Dropped != 20-3-8 {
		t.Fatalf("want %d post-window drops, got %d", 20-3-8, st.Dropped)
	}
	if got := fs.Writes(); got != 3+st.TornApplied {
		t.Fatalf("applied writes %d != accepted 3 + torn-applied %d", got, st.TornApplied)
	}
	// Blocks 0..2 (pre-window) must carry the payload.
	got := make([]byte, 512)
	for i := int64(0); i < 3; i++ {
		if err := mem.ReadBlock(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf) {
			t.Fatalf("pre-window block %d not applied", i)
		}
	}
	// Disarm: writes pass through again.
	fs.Disarm()
	if err := fs.WriteBlock(30, buf); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadBlock(30, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("write after Disarm not applied")
	}
}

func TestFaultStoreErrorsClassify(t *testing.T) {
	_, fs := newFaultFixture(t)
	buf := fillBlock(6, 512)
	fs.SetTransientRates(0, 1, 1)
	err := fs.WriteBlock(1, buf)
	if !errors.Is(err, ErrTransient) || !IsFault(err) || !Retryable(err) {
		t.Fatalf("transient classification broken: %v", err)
	}
	fs.SetTransientRates(0, 0, 1)
	fs.FailWrite(1)
	err = fs.WriteBlock(1, buf)
	if !errors.Is(err, ErrCorrupt) || !IsFault(err) || Retryable(err) {
		t.Fatalf("permanent classification broken: %v", err)
	}
	if IsFault(ErrOutOfRange) || IsFault(ErrBadBuffer) || IsFault(nil) {
		t.Fatal("usage errors must not classify as faults")
	}
}
