package vdisk

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy configures a RetryDevice. The zero value is usable: every zero
// field is replaced with the default noted on it.
type RetryPolicy struct {
	// MaxRetries is the number of reissues after the first failure before
	// the device gives up. Default 4.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; it doubles on each
	// further retry. Default 500 microseconds.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Default 16 milliseconds.
	MaxDelay time.Duration
	// Seed feeds the jitter PRNG. Default 1.
	Seed int64
	// Sleep is called to wait out the backoff; nil means time.Sleep. Tests
	// inject a recorder here so retry schedules are checked without real
	// waiting.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 500 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 16 * time.Millisecond
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Retryable reports whether err is worth reissuing: transient faults and
// host I/O errors are; usage errors (ErrOutOfRange, ErrBadBuffer, ErrClosed)
// and permanent media faults (ErrCorrupt) are not.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrIO)
}

// RetryDevice wraps a Device with bounded retry: a request that fails with a
// retryable fault is reissued up to MaxRetries times, waiting out an
// exponential backoff with equal jitter between attempts. A batch request is
// tried whole once — the Disk charges nothing for a failed batch and block
// writes are idempotent, so a reissue is safe — and on a retryable failure
// degrades to per-block requests, each with its own retry budget. Retrying
// whole batches would multiply the effective fault rate by the batch size
// (any one flaky block fails the attempt, and fresh blocks fail on every
// reissue); isolating the faulty sector keeps the give-up probability a
// per-block property regardless of how large the pipeline's flush runs get.
//
// The wrapper is transparent to the timing simulator (it adds no simulated
// cost) and to Sync/Close, which pass through when the wrapped device offers
// them.
type RetryDevice struct {
	dev Device
	pol RetryPolicy

	// r.mu guards only the jitter PRNG and the counters; it is never held
	// across a device call or a backoff sleep.
	//
	// lockcheck:level 61 volume/retryMu noio
	mu sync.Mutex
	// lockcheck:guardedby mu
	rng *rand.Rand
	// lockcheck:guardedby mu
	retries int64
	// lockcheck:guardedby mu
	giveUps int64
}

// NewRetryDevice wraps dev with the given policy (zero fields take the
// defaults documented on RetryPolicy).
func NewRetryDevice(dev Device, pol RetryPolicy) *RetryDevice {
	pol = pol.withDefaults()
	return &RetryDevice{dev: dev, pol: pol, rng: rand.New(rand.NewSource(pol.Seed))}
}

// NumBlocks returns the number of blocks on the wrapped device.
func (r *RetryDevice) NumBlocks() int64 { return r.dev.NumBlocks() }

// BlockSize returns the block size of the wrapped device.
func (r *RetryDevice) BlockSize() int { return r.dev.BlockSize() }

// Stats returns the retry counters in a vdisk.Stats (only the Retries and
// GiveUps fields are populated; the wrapped Disk keeps the I/O counts).
func (r *RetryDevice) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{Retries: r.retries, GiveUps: r.giveUps}
}

// do runs op with the retry schedule.
func (r *RetryDevice) do(op func() error) error {
	delay := r.pol.BaseDelay
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || !Retryable(err) {
			return err
		}
		if attempt >= r.pol.MaxRetries {
			r.mu.Lock()
			r.giveUps++
			r.mu.Unlock()
			return fmt.Errorf("vdisk: giving up after %d retries: %w", r.pol.MaxRetries, err)
		}
		r.mu.Lock()
		r.retries++
		// Equal jitter: half the deterministic backoff, half uniform random.
		wait := delay/2 + time.Duration(r.rng.Int63n(int64(delay/2)+1))
		r.mu.Unlock()
		r.pol.Sleep(wait)
		delay *= 2
		if delay > r.pol.MaxDelay {
			delay = r.pol.MaxDelay
		}
	}
}

// ReadBlock reads block n, retrying transient faults.
func (r *RetryDevice) ReadBlock(n int64, buf []byte) error {
	return r.do(func() error { return r.dev.ReadBlock(n, buf) })
}

// WriteBlock writes block n, retrying transient faults.
func (r *RetryDevice) WriteBlock(n int64, buf []byte) error {
	return r.do(func() error { return r.dev.WriteBlock(n, buf) })
}

// ReadBlocks implements BatchDevice: one whole-batch attempt, then per-block
// retries to isolate the faulty sector (see the type comment).
func (r *RetryDevice) ReadBlocks(ns []int64, bufs [][]byte) error {
	err := ReadBlocks(r.dev, ns, bufs)
	if err == nil || !Retryable(err) {
		return err
	}
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
	for i, n := range ns {
		if err := r.ReadBlock(n, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks implements BatchDevice with the same batch-then-per-block
// degradation as ReadBlocks.
func (r *RetryDevice) WriteBlocks(ns []int64, bufs [][]byte) error {
	err := WriteBlocks(r.dev, ns, bufs)
	if err == nil || !Retryable(err) {
		return err
	}
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
	for i, n := range ns {
		if err := r.WriteBlock(n, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sync passes through to the wrapped device when it supports it, retrying
// transient faults.
func (r *RetryDevice) Sync() error {
	if s, ok := r.dev.(interface{ Sync() error }); ok {
		return r.do(s.Sync)
	}
	return nil
}

// Close closes the wrapped device when it supports closing.
func (r *RetryDevice) Close() error {
	if c, ok := r.dev.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

var _ BatchDevice = (*RetryDevice)(nil)
