package vdisk

import "sync"

// CutStore wraps a Store with write fault injection for crash-consistency
// tests: after a configurable number of accepted writes (the cut point),
// every further write is silently dropped — acknowledged to the caller but
// never applied to the wrapped store — modeling a device that loses power
// after acknowledging a request. Reads always pass through, so the surviving
// image can be remounted and examined exactly as a post-crash disk would be.
//
// The cut counts WRITE REQUESTS in device submission order (batch writes
// count each block individually, since that is the granularity at which a
// real device commits), so a test can sweep the cut point across an entire
// barrier's write stream and verify the on-disk invariants at every prefix.
type CutStore struct {
	store Store

	// c.mu is deliberately NOT noio: WriteBlock holds it across the wrapped
	// store's write so the cut point is exact under concurrent writers.
	//
	// lockcheck:level 64 volume/cutMu
	mu sync.Mutex
	// lockcheck:guardedby mu
	limit int64 // accepted-write budget; < 0 = unlimited
	// lockcheck:guardedby mu
	writes int64 // writes accepted so far
	// lockcheck:guardedby mu
	dropped int64 // writes silently discarded after the cut
	// lockcheck:guardedby mu
	trace []int64
	// lockcheck:guardedby mu
	tracing bool
}

// NewCutStore wraps store with no cut armed (all writes pass through).
func NewCutStore(store Store) *CutStore {
	return &CutStore{store: store, limit: -1}
}

// CutAfter arms the cut: the next n writes are applied, everything after is
// silently dropped. n <= 0 drops all writes from now on; use Disarm to lift
// a cut.
func (c *CutStore) CutAfter(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0
	}
	c.limit = c.writes + n
}

// Disarm lifts the cut; subsequent writes pass through again.
func (c *CutStore) Disarm() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = -1
}

// Writes returns the number of writes applied to the wrapped store.
func (c *CutStore) Writes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// Dropped returns the number of writes discarded after the cut.
func (c *CutStore) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// StartTrace begins recording the block number of every accepted write, in
// device submission order. Crash-consistency tests use the trace to assert
// ordering invariants (e.g. data blocks before superblock/bitmap).
func (c *CutStore) StartTrace() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.trace = nil
	c.tracing = true
}

// StopTrace stops recording and returns the accepted-write trace.
func (c *CutStore) StopTrace() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracing = false
	out := c.trace
	c.trace = nil
	return out
}

// NumBlocks returns the number of blocks on the wrapped store.
func (c *CutStore) NumBlocks() int64 { return c.store.NumBlocks() }

// BlockSize returns the block size of the wrapped store.
func (c *CutStore) BlockSize() int { return c.store.BlockSize() }

// ReadBlock reads block n from the wrapped store (reads are never cut).
func (c *CutStore) ReadBlock(n int64, buf []byte) error {
	return c.store.ReadBlock(n, buf)
}

// WriteBlock applies or drops the write depending on the cut point. Dropped
// writes report success: the "device" acknowledged them, the platter never
// saw them.
func (c *CutStore) WriteBlock(n int64, buf []byte) error {
	// The budget check and the store write stay under one mutex hold so the
	// cut point is exact even under concurrent writers (the serialization
	// mirrors a single device anyway).
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.limit >= 0 && c.writes >= c.limit {
		c.dropped++
		return nil
	}
	if err := c.store.WriteBlock(n, buf); err != nil {
		return err
	}
	c.writes++
	if c.tracing {
		c.trace = append(c.trace, n)
	}
	return nil
}

// Sync passes through to the wrapped store when it supports it.
func (c *CutStore) Sync() error {
	if s, ok := c.store.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close closes the wrapped store.
func (c *CutStore) Close() error { return c.store.Close() }

var _ Store = (*CutStore)(nil)
