package vdisk

import (
	"fmt"
	"math/rand"
	"sync"
)

// FaultStore wraps a Store with deterministic, seeded fault injection — the
// fault-tolerance sibling of CutStore. Four failure modes are supported, all
// drawn from one seeded PRNG so a run is exactly reproducible:
//
//   - transient errors: each read/write independently fails with a configured
//     probability; once a request faults it keeps failing until it has been
//     retried failsPer times in total (fail k times, then succeed), modeling a
//     momentary bus or controller glitch that clears on retry. Errors wrap
//     ErrTransient.
//   - permanent per-block errors: blocks marked with FailRead/FailWrite fail
//     every time with an error wrapping ErrCorrupt (a grown media defect).
//   - bit-flip corruption: blocks marked with FlipBit return their contents
//     with one bit inverted on every read — silent bit rot the device itself
//     does not report. Rewriting the block heals it (fresh magnetization).
//   - torn batches: TearAfter models power loss during an in-flight window of
//     writes. After an accept budget is exhausted, each of the next `window`
//     writes commits or vanishes on an independent seeded coin flip, and
//     everything after the window is dropped — a device cache that had
//     reordered its queue and committed a random subset before power failed.
//     Per-block old-or-new atomicity is preserved (sector atomicity), only
//     cross-block ordering is lost.
//
// Batch writes arriving via Disk reach the store one block at a time, so both
// the torn window and the transient coin apply at per-block granularity —
// exactly how a real device commits.
type FaultStore struct {
	store Store

	// f.mu is deliberately NOT noio: the injection decision and the wrapped
	// store call stay under one mutex hold so the fault schedule is exact
	// under concurrent callers, mirroring CutStore's cut-point guarantee.
	//
	// lockcheck:level 65 volume/faultMu
	mu sync.Mutex
	// lockcheck:guardedby mu
	rng *rand.Rand
	// lockcheck:guardedby mu
	readRate float64 // per-read transient fault probability
	// lockcheck:guardedby mu
	writeRate float64 // per-write transient fault probability
	// lockcheck:guardedby mu
	failsPer int // consecutive failures per transient incident
	// lockcheck:guardedby mu
	pendingRead map[int64]int // outstanding transient failures per block
	// lockcheck:guardedby mu
	pendingWrite map[int64]int
	// graceRead/graceWrite mark blocks whose incident just drained: the next
	// attempt is guaranteed to succeed (the "then succeed" half of the
	// fail-k-then-succeed contract), even at a transient rate of 1.
	//
	// lockcheck:guardedby mu
	graceRead map[int64]bool
	// lockcheck:guardedby mu
	graceWrite map[int64]bool
	// lockcheck:guardedby mu
	permRead map[int64]bool // permanently unreadable blocks
	// lockcheck:guardedby mu
	permWrite map[int64]bool // permanently unwritable blocks
	// lockcheck:guardedby mu
	flips map[int64]uint // bit index inverted on every read of the block
	// lockcheck:guardedby mu
	tornAccept int64 // writes still accepted before the torn window; < 0 = disarmed
	// lockcheck:guardedby mu
	tornWindow int64 // coin-flip writes remaining in the torn window
	// lockcheck:guardedby mu
	writes int64 // writes applied to the wrapped store
	// lockcheck:guardedby mu
	stats FaultStats
}

// FaultStats counts the faults a FaultStore has injected.
type FaultStats struct {
	ReadFaults   int64 // transient read errors returned
	WriteFaults  int64 // transient write errors returned
	PermFaults   int64 // permanent per-block errors returned
	CorruptReads int64 // reads returned with a flipped bit
	TornApplied  int64 // torn-window writes the coin committed
	TornDropped  int64 // torn-window writes the coin discarded
	Dropped      int64 // writes discarded after the torn window closed
}

// NewFaultStore wraps store with no faults armed. All randomness (transient
// coins, torn-window coins) comes from the given seed.
func NewFaultStore(store Store, seed int64) *FaultStore {
	return &FaultStore{
		store:        store,
		rng:          rand.New(rand.NewSource(seed)),
		failsPer:     1,
		pendingRead:  make(map[int64]int),
		pendingWrite: make(map[int64]int),
		graceRead:    make(map[int64]bool),
		graceWrite:   make(map[int64]bool),
		permRead:     make(map[int64]bool),
		permWrite:    make(map[int64]bool),
		flips:        make(map[int64]uint),
		tornAccept:   -1,
	}
}

// SetTransientRates arms transient faults: each read (write) independently
// starts a fault incident with probability readRate (writeRate), and each
// incident fails failsPer consecutive attempts on that block before the
// request succeeds. Rates of 0 disarm the respective direction.
func (f *FaultStore) SetTransientRates(readRate, writeRate float64, failsPer int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if failsPer < 1 {
		failsPer = 1
	}
	f.readRate, f.writeRate, f.failsPer = readRate, writeRate, failsPer
}

// FailNextReads arms a one-shot transient incident on block n: the next k
// reads of it fail with ErrTransient, then reads succeed again.
func (f *FaultStore) FailNextReads(n int64, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k > 0 {
		f.pendingRead[n] = k
	}
}

// FailNextWrites arms a one-shot transient incident on block n: the next k
// writes to it fail with ErrTransient, then writes succeed again.
func (f *FaultStore) FailNextWrites(n int64, k int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if k > 0 {
		f.pendingWrite[n] = k
	}
}

// FailRead marks block n permanently unreadable (errors wrap ErrCorrupt).
func (f *FaultStore) FailRead(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.permRead[n] = true
}

// FailWrite marks block n permanently unwritable (errors wrap ErrCorrupt).
func (f *FaultStore) FailWrite(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.permWrite[n] = true
}

// FlipBit arms silent corruption on block n: every read returns the stored
// contents with the given bit (counted from the start of the block) inverted,
// until the block is rewritten.
func (f *FaultStore) FlipBit(n int64, bit uint) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.flips[n] = bit
}

// TearAfter arms a torn batch: the next n writes are applied normally, each
// of the following `window` writes commits or is silently dropped on a seeded
// coin flip, and every write after the window is dropped. Reads pass through,
// so the surviving image can be examined like a post-crash disk.
func (f *FaultStore) TearAfter(n int64, window int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if window < 0 {
		window = 0
	}
	f.tornAccept = n
	f.tornWindow = int64(window)
}

// Disarm lifts every armed fault mode: transient rates to zero, permanent
// and bit-flip marks cleared, torn window disarmed, pending incidents
// forgotten. Counters are preserved.
func (f *FaultStore) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readRate, f.writeRate = 0, 0
	f.pendingRead = make(map[int64]int)
	f.pendingWrite = make(map[int64]int)
	f.graceRead = make(map[int64]bool)
	f.graceWrite = make(map[int64]bool)
	f.permRead = make(map[int64]bool)
	f.permWrite = make(map[int64]bool)
	f.flips = make(map[int64]uint)
	f.tornAccept = -1
	f.tornWindow = 0
}

// Writes returns the number of writes applied to the wrapped store.
func (f *FaultStore) Writes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Stats returns a copy of the injected-fault counters.
func (f *FaultStore) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// NumBlocks returns the number of blocks on the wrapped store.
func (f *FaultStore) NumBlocks() int64 { return f.store.NumBlocks() }

// BlockSize returns the block size of the wrapped store.
func (f *FaultStore) BlockSize() int { return f.store.BlockSize() }

// ReadBlock reads block n, possibly injecting a fault or corrupting the
// returned data.
func (f *FaultStore) ReadBlock(n int64, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.permRead[n] {
		f.stats.PermFaults++
		return fmt.Errorf("vdisk: injected media error reading block %d: %w", n, ErrCorrupt)
	}
	if left := f.pendingRead[n]; left > 0 {
		if left == 1 {
			delete(f.pendingRead, n)
			f.graceRead[n] = true
		} else {
			f.pendingRead[n] = left - 1
		}
		f.stats.ReadFaults++
		return fmt.Errorf("vdisk: injected transient error reading block %d: %w", n, ErrTransient)
	}
	if f.graceRead[n] {
		delete(f.graceRead, n)
	} else if f.readRate > 0 && f.rng.Float64() < f.readRate {
		if f.failsPer > 1 {
			f.pendingRead[n] = f.failsPer - 1
		} else {
			f.graceRead[n] = true
		}
		f.stats.ReadFaults++
		return fmt.Errorf("vdisk: injected transient error reading block %d: %w", n, ErrTransient)
	}
	if err := f.store.ReadBlock(n, buf); err != nil {
		return err
	}
	if bit, ok := f.flips[n]; ok && int(bit/8) < len(buf) {
		buf[bit/8] ^= 1 << (bit % 8)
		f.stats.CorruptReads++
	}
	return nil
}

// WriteBlock writes block n, possibly injecting a fault or tearing the
// write. Torn and dropped writes report success: the device acknowledged
// them, the platter never saw them.
func (f *FaultStore) WriteBlock(n int64, buf []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.permWrite[n] {
		f.stats.PermFaults++
		return fmt.Errorf("vdisk: injected media error writing block %d: %w", n, ErrCorrupt)
	}
	if left := f.pendingWrite[n]; left > 0 {
		if left == 1 {
			delete(f.pendingWrite, n)
			f.graceWrite[n] = true
		} else {
			f.pendingWrite[n] = left - 1
		}
		f.stats.WriteFaults++
		return fmt.Errorf("vdisk: injected transient error writing block %d: %w", n, ErrTransient)
	}
	if f.graceWrite[n] {
		delete(f.graceWrite, n)
	} else if f.writeRate > 0 && f.rng.Float64() < f.writeRate {
		if f.failsPer > 1 {
			f.pendingWrite[n] = f.failsPer - 1
		} else {
			f.graceWrite[n] = true
		}
		f.stats.WriteFaults++
		return fmt.Errorf("vdisk: injected transient error writing block %d: %w", n, ErrTransient)
	}
	if f.tornAccept >= 0 {
		switch {
		case f.tornAccept > 0:
			f.tornAccept--
		case f.tornWindow > 0:
			f.tornWindow--
			if f.rng.Intn(2) == 0 {
				f.stats.TornDropped++
				return nil
			}
			f.stats.TornApplied++
		default:
			f.stats.Dropped++
			return nil
		}
	}
	if err := f.store.WriteBlock(n, buf); err != nil {
		return err
	}
	delete(f.flips, n) // a fresh write heals bit rot
	f.writes++
	return nil
}

// Sync passes through to the wrapped store when it supports it.
func (f *FaultStore) Sync() error {
	if s, ok := f.store.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close closes the wrapped store.
func (f *FaultStore) Close() error { return f.store.Close() }

var _ Store = (*FaultStore)(nil)
