package vdisk

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

// sleepRecorder collects the backoff waits a RetryDevice asked for.
type sleepRecorder struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (s *sleepRecorder) sleep(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.waits = append(s.waits, d)
}

func newRetryFixture(t *testing.T, pol RetryPolicy) (*FaultStore, *RetryDevice, *sleepRecorder) {
	t.Helper()
	mem, err := NewMemStore(64, 512)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(mem, 11)
	rec := &sleepRecorder{}
	pol.Sleep = rec.sleep
	return fs, NewRetryDevice(fs, pol), rec
}

func TestRetryDeviceAbsorbsTransients(t *testing.T) {
	fs, dev, rec := newRetryFixture(t, RetryPolicy{MaxRetries: 4})
	fs.SetTransientRates(1, 1, 3) // every op: exactly 3 failures then success
	buf := fillBlock(1, 512)
	if err := dev.WriteBlock(9, buf); err != nil {
		t.Fatalf("retry should absorb a 3-failure incident: %v", err)
	}
	got := make([]byte, 512)
	if err := dev.ReadBlock(9, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("payload mismatch through retry layer")
	}
	st := dev.Stats()
	if st.Retries != 6 || st.GiveUps != 0 {
		t.Fatalf("want 6 retries 0 giveups, got %+v", st)
	}
	if len(rec.waits) != 6 {
		t.Fatalf("want 6 backoff sleeps, got %d", len(rec.waits))
	}
}

func TestRetryDeviceBackoffGrowsWithJitter(t *testing.T) {
	fs, dev, rec := newRetryFixture(t, RetryPolicy{
		MaxRetries: 6,
		BaseDelay:  time.Millisecond,
		MaxDelay:   8 * time.Millisecond,
	})
	fs.SetTransientRates(1, 0, 6)
	if err := dev.ReadBlock(0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if len(rec.waits) != 6 {
		t.Fatalf("want 6 waits, got %d", len(rec.waits))
	}
	// Equal jitter: attempt i waits in [base*2^i/2, base*2^i], capped.
	delay := time.Millisecond
	for i, w := range rec.waits {
		if w < delay/2 || w > delay {
			t.Fatalf("wait %d = %v outside [%v, %v]", i, w, delay/2, delay)
		}
		delay *= 2
		if delay > 8*time.Millisecond {
			delay = 8 * time.Millisecond
		}
	}
}

func TestRetryDeviceGivesUp(t *testing.T) {
	fs, dev, _ := newRetryFixture(t, RetryPolicy{MaxRetries: 2})
	fs.SetTransientRates(0, 1, 100) // incident longer than the budget
	err := dev.WriteBlock(1, fillBlock(2, 512))
	if err == nil {
		t.Fatal("want give-up error")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("give-up must preserve the fault class: %v", err)
	}
	st := dev.Stats()
	if st.GiveUps != 1 || st.Retries != 2 {
		t.Fatalf("want 2 retries 1 giveup, got %+v", st)
	}
}

func TestRetryDeviceDoesNotRetryUsageOrCorrupt(t *testing.T) {
	fs, dev, rec := newRetryFixture(t, RetryPolicy{MaxRetries: 4})
	buf := fillBlock(3, 512)
	if err := dev.WriteBlock(999, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	fs.FailWrite(4)
	if err := dev.WriteBlock(4, buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if len(rec.waits) != 0 {
		t.Fatal("non-retryable errors must not back off")
	}
	if st := dev.Stats(); st.Retries != 0 {
		t.Fatalf("non-retryable errors must not count retries: %+v", st)
	}
}

func TestRetryDeviceBatchRetry(t *testing.T) {
	fs, dev, _ := newRetryFixture(t, RetryPolicy{MaxRetries: 4})
	ns := []int64{10, 11, 12, 13}
	bufs := make([][]byte, len(ns))
	for i := range bufs {
		bufs[i] = fillBlock(byte(i), 512)
	}
	fs.FailNextWrites(10, 2) // first block of the batch fails twice
	if err := dev.WriteBlocks(ns, bufs); err != nil {
		t.Fatalf("batch retry failed: %v", err)
	}
	got := make([][]byte, len(ns))
	for i := range got {
		got[i] = make([]byte, 512)
	}
	if err := dev.ReadBlocks(ns, got); err != nil {
		t.Fatal(err)
	}
	for i := range ns {
		if !bytes.Equal(got[i], bufs[i]) {
			t.Fatalf("block %d mismatch after batch retry", ns[i])
		}
	}
	if dev.Stats().Retries == 0 {
		t.Fatal("expected at least one batch retry")
	}
}

// TestRetryDeviceThroughDisk checks the intended stack order: a Disk over a
// FaultStore, wrapped by RetryDevice. A failed store pass charges the Disk
// nothing, so the retry reissues an uncharged batch and only the successful
// submission hits the simulator clock.
func TestRetryDeviceThroughDisk(t *testing.T) {
	mem, err := NewMemStore(64, 512)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(mem, 3)
	disk := NewDisk(fs, DefaultGeometry())
	rec := &sleepRecorder{}
	dev := NewRetryDevice(disk, RetryPolicy{MaxRetries: 4, Sleep: rec.sleep})
	fs.SetTransientRates(0, 1, 2)
	buf := fillBlock(9, 512)
	if err := dev.WriteBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	if st.Writes != 1 {
		t.Fatalf("failed attempts must not be charged: disk saw %d writes", st.Writes)
	}
}

func TestRetryDeviceConcurrent(t *testing.T) {
	fs, dev, _ := newRetryFixture(t, RetryPolicy{MaxRetries: 8})
	fs.SetTransientRates(0.05, 0.05, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := fillBlock(byte(g), 512)
			got := make([]byte, 512)
			for i := 0; i < 50; i++ {
				n := int64((g*50 + i) % 64)
				if err := dev.WriteBlock(n, buf); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				if err := dev.ReadBlock(n, got); err != nil {
					t.Errorf("read: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRetryDeviceBatchFallsBackPerBlock: at a fault rate where some write in
// every whole-batch attempt fails, the device must degrade to per-block
// retries — whole-batch reissue would multiply the fault rate by the batch
// size and never complete.
func TestRetryDeviceBatchFallsBackPerBlock(t *testing.T) {
	fs, dev, _ := newRetryFixture(t, RetryPolicy{MaxRetries: 4})
	fs.SetTransientRates(1, 1, 2) // every fresh access starts a 2-fail incident
	ns := make([]int64, 16)
	bufs := make([][]byte, len(ns))
	for i := range ns {
		ns[i] = int64(10 + i)
		bufs[i] = fillBlock(byte(i), 512)
	}
	if err := dev.WriteBlocks(ns, bufs); err != nil {
		t.Fatalf("batch under total transient noise: %v", err)
	}
	got := make([][]byte, len(ns))
	for i := range got {
		got[i] = make([]byte, 512)
	}
	if err := dev.ReadBlocks(ns, got); err != nil {
		t.Fatalf("read-back under total transient noise: %v", err)
	}
	for i := range ns {
		if !bytes.Equal(got[i], bufs[i]) {
			t.Fatalf("block %d mismatch after per-block fallback", ns[i])
		}
	}
	if st := dev.Stats(); st.GiveUps != 0 {
		t.Fatalf("per-block fallback gave up %d times", st.GiveUps)
	}
}
