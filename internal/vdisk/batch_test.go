package vdisk

import (
	"bytes"
	"errors"
	"testing"
)

func newBatchDisk(t *testing.T, blocks int64, bs int) (*Disk, *MemStore) {
	t.Helper()
	store, err := NewMemStore(blocks, bs)
	if err != nil {
		t.Fatal(err)
	}
	return NewDisk(store, DefaultGeometry()), store
}

// TestBatchReadMatchesSerial: ReadBlocks must return byte-identical data to
// per-block ReadBlock calls, for an arbitrarily ordered request list with
// duplicates.
func TestBatchReadMatchesSerial(t *testing.T) {
	disk, _ := newBatchDisk(t, 256, 512)
	for b := int64(0); b < 256; b++ {
		buf := make([]byte, 512)
		for i := range buf {
			buf[i] = byte(b) ^ byte(i*7)
		}
		if err := disk.WriteBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	ns := []int64{250, 3, 77, 3, 0, 255, 128, 129, 130}
	batch := make([][]byte, len(ns))
	serial := make([][]byte, len(ns))
	for i := range ns {
		batch[i] = make([]byte, 512)
		serial[i] = make([]byte, 512)
	}
	if err := disk.ReadBlocks(ns, batch); err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		if err := disk.ReadBlock(n, serial[i]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(batch[i], serial[i]) {
			t.Fatalf("block %d: batch read differs from serial read", n)
		}
	}
}

// TestBatchWriteSortedSubmission: an unsorted write batch must be charged in
// ascending order, so a contiguous run earns sequential pricing (SeqHits)
// despite the shuffled request order.
func TestBatchWriteSortedSubmission(t *testing.T) {
	disk, store := newBatchDisk(t, 256, 512)
	ns := []int64{14, 10, 13, 11, 12}
	bufs := make([][]byte, len(ns))
	for i := range ns {
		bufs[i] = bytes.Repeat([]byte{byte(ns[i])}, 512)
	}
	if err := disk.WriteBlocks(ns, bufs); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	if st.Writes != int64(len(ns)) {
		t.Fatalf("Writes = %d, want %d", st.Writes, len(ns))
	}
	// After the first (seek) request, blocks 11..14 continue the run.
	if st.SeqHits < int64(len(ns)-1) {
		t.Fatalf("SeqHits = %d for a contiguous run, want >= %d", st.SeqHits, len(ns)-1)
	}
	for i, n := range ns {
		got := make([]byte, 512)
		if err := store.ReadBlock(n, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bufs[i]) {
			t.Fatalf("block %d holds wrong data after batch write", n)
		}
	}
}

// TestBatchFailedRequestChargesNothing: a batch containing an out-of-range
// block must fail without touching the clock or the statistics.
func TestBatchFailedRequestChargesNothing(t *testing.T) {
	disk, _ := newBatchDisk(t, 64, 512)
	good := make([]byte, 512)
	bad := make([]byte, 512)
	if err := disk.ReadBlocks([]int64{1, 9999}, [][]byte{good, bad}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if st := disk.Stats(); st != (Stats{}) {
		t.Fatalf("failed batch mutated stats: %+v", st)
	}
	if disk.Elapsed() != 0 {
		t.Fatalf("failed batch charged %v", disk.Elapsed())
	}
}

// TestBatchLengthMismatch: ns/bufs length disagreement is an error on both
// the Disk methods and the package helpers.
func TestBatchLengthMismatch(t *testing.T) {
	disk, store := newBatchDisk(t, 64, 512)
	buf := make([]byte, 512)
	if err := disk.ReadBlocks([]int64{1, 2}, [][]byte{buf}); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("ReadBlocks: want ErrBadBuffer, got %v", err)
	}
	if err := WriteBlocks(store, []int64{1}, nil); !errors.Is(err, ErrBadBuffer) {
		t.Fatalf("helper WriteBlocks: want ErrBadBuffer, got %v", err)
	}
}

// TestBatchHelperFallback: the package helpers must serve non-batch devices
// through per-block calls.
func TestBatchHelperFallback(t *testing.T) {
	store, err := NewMemStore(32, 512)
	if err != nil {
		t.Fatal(err)
	}
	// MemStore does not implement BatchDevice; the helper loops.
	want := bytes.Repeat([]byte{0xAB}, 512)
	if err := WriteBlocks(store, []int64{5}, [][]byte{want}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := ReadBlocks(store, []int64{5}, [][]byte{got}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("helper fallback round trip failed")
	}
}

// TestEmulateLatencySmoke: emulation mode must not change data or simulated
// accounting; it only adds real sleeps (scaled to nothing here).
func TestEmulateLatencySmoke(t *testing.T) {
	disk, _ := newBatchDisk(t, 64, 512)
	disk.EmulateLatency(1e-9)
	buf := bytes.Repeat([]byte{7}, 512)
	if err := disk.WriteBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := disk.ReadBlock(3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("emulated round trip mismatch")
	}
	if disk.Stats().Reads != 1 || disk.Stats().Writes != 1 {
		t.Fatalf("emulation skewed stats: %+v", disk.Stats())
	}
	disk.EmulateLatency(-5) // clamps to off, must not panic
}
