//go:build amd64

package cpux

// cpuid and xgetbv are implemented in cpuid_amd64.s.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	HasAESNI = ecx1&(1<<25) != 0
	osxsave := ecx1&(1<<27) != 0
	avx := ecx1&(1<<28) != 0
	ymmEnabled := false
	if osxsave {
		xcr0, _ := xgetbv()
		ymmEnabled = xcr0&0x6 == 0x6 // XMM and YMM state saved by the OS
	}
	if maxID >= 7 {
		_, ebx7, _, _ := cpuid(7, 0)
		HasAVX2 = avx && ymmEnabled && ebx7&(1<<5) != 0
	}
}
