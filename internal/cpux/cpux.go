// Package cpux detects the few x86 ISA extensions the hand-written kernels
// in this repository dispatch on: AES-NI for the sgcrypto CTR keystream and
// AVX2 for the gf256 nibble-table kernel. On other architectures — or older
// x86 parts — every flag is false and the callers keep their portable Go
// paths, so the package is a read-only capability report, never a
// requirement.
package cpux

// HasAESNI reports AESENC/AESENCLAST support (x86 AES-NI).
var HasAESNI bool

// HasAVX2 reports AVX2 support with OS-enabled YMM state (OSXSAVE checked,
// XCR0 confirms the OS saves XMM+YMM registers across context switches).
var HasAVX2 bool
