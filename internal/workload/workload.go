// Package workload generates the paper's experimental workloads and drives
// them against any fsapi.CursorFS on a simulated disk.
//
// The key mechanism is the interleaved mixer: the paper's multi-user
// experiments (Figures 7 and 8) run N concurrent users whose file operations
// are interleaved on one spindle. The mixer round-robins one block request
// per user per turn, so with enough users even a perfectly contiguous file
// system loses its sequential advantage — which is exactly the convergence
// the paper reports ("StegFS matches both CleanDisk and FragDisk from 16
// concurrent users onwards for read operations, and from just 8 users for
// write operations").
package workload

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"stegfs/internal/fsapi"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// FileSpec names one workload file and its size.
type FileSpec struct {
	Name string
	Size int64
}

// UniformSpecs draws count file sizes uniformly from (lo, hi] bytes — the
// paper's default is (1, 2] MB — with deterministic names.
func UniformSpecs(rng *rand.Rand, count int, lo, hi int64, prefix string) []FileSpec {
	out := make([]FileSpec, count)
	for i := range out {
		size := hi
		if hi > lo {
			size = lo + 1 + rng.Int63n(hi-lo)
		}
		out[i] = FileSpec{Name: fmt.Sprintf("%s%04d", prefix, i), Size: size}
	}
	return out
}

// FixedSpecs produces count files of exactly size bytes (Figures 8 and 9 fix
// the file size per data point).
func FixedSpecs(count int, size int64, prefix string) []FileSpec {
	out := make([]FileSpec, count)
	for i := range out {
		out[i] = FileSpec{Name: fmt.Sprintf("%s%04d", prefix, i), Size: size}
	}
	return out
}

// Payload builds deterministic pseudo-random contents for a spec.
func Payload(spec FileSpec, seed int64) []byte {
	var s [16]byte
	binary.BigEndian.PutUint64(s[:8], uint64(seed))
	binary.BigEndian.PutUint64(s[8:], uint64(len(spec.Name))+uint64(spec.Size))
	buf := make([]byte, spec.Size)
	sgcrypto.NewRandomFiller(append(s[:], spec.Name...)).Fill(buf)
	return buf
}

// Populate creates every spec'd file on fs.
func Populate(fs fsapi.FileSystem, specs []FileSpec, seed int64) error {
	for _, sp := range specs {
		if err := fs.Create(sp.Name, Payload(sp, seed)); err != nil {
			return fmt.Errorf("workload: create %q (%d bytes): %w", sp.Name, sp.Size, err)
		}
	}
	return nil
}

// Op selects the operation the mixer performs.
type Op int

// Operations.
const (
	OpRead Op = iota
	OpWrite
)

// String names the op.
func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Result aggregates a mixer run.
type Result struct {
	Ops        int           // completed file operations
	TotalTime  time.Duration // simulated time spanned by the run
	AvgPerOp   time.Duration // mean completion latency of one file operation
	AvgPerByte time.Duration // AvgPerOp normalized by mean file size (Fig. 8)
	Bytes      int64         // logical bytes moved
}

// RunInterleaved drives `users` concurrent streams of whole-file operations
// against fs, interleaving one block request per user per turn on the shared
// disk. Each user performs opsPerUser operations over the given files
// (assigned round-robin, shuffled per user). The access time of a file
// operation is the simulated time from its first to its last block request,
// matching the paper's metric ("the time taken to read or write a file").
//
// With users == 1 the mixer degenerates to the serial, one-file-at-a-time
// pattern of Figure 9.
func RunInterleaved(disk *vdisk.Disk, fs fsapi.CursorFS, files []FileSpec, users, opsPerUser int, op Op, seed int64) (Result, error) {
	if users <= 0 || opsPerUser <= 0 || len(files) == 0 {
		return Result{}, fmt.Errorf("workload: bad mixer parameters users=%d ops=%d files=%d", users, opsPerUser, len(files))
	}
	rng := rand.New(rand.NewSource(seed))

	// Assign each user a shuffled playlist of file indices.
	playlists := make([][]int, users)
	for u := range playlists {
		playlists[u] = make([]int, opsPerUser)
		for i := range playlists[u] {
			playlists[u][i] = (u + i*users) % len(files)
		}
		rng.Shuffle(opsPerUser, func(i, j int) {
			playlists[u][i], playlists[u][j] = playlists[u][j], playlists[u][i]
		})
	}

	streams := make([]*stream, users)
	for u := range streams {
		streams[u] = &stream{user: u}
	}

	openNext := func(st *stream) error {
		if st.next >= opsPerUser {
			st.cur = nil
			return nil
		}
		sp := files[playlists[st.user][st.next]]
		st.next++
		st.started = disk.Elapsed()
		var err error
		if op == OpRead {
			st.cur, err = fs.ReadCursor(sp.Name)
		} else {
			st.cur, err = fs.WriteCursor(sp.Name, Payload(sp, seed+int64(st.next)))
		}
		return err
	}

	var res Result
	var latSum time.Duration
	start := disk.Elapsed()
	active := 0
	for u := range streams {
		if err := openNext(streams[u]); err != nil {
			return res, err
		}
		if streams[u].cur != nil {
			active++
		}
	}
	for active > 0 {
		for _, st := range streams {
			if st.cur == nil {
				continue
			}
			done, err := st.cur.Step()
			if err != nil {
				return res, err
			}
			if done {
				latSum += disk.Elapsed() - st.started
				res.Ops++
				if err := openNext(st); err != nil {
					return res, err
				}
				if st.cur == nil {
					active--
				}
			}
		}
	}
	res.TotalTime = disk.Elapsed() - start
	if res.Ops > 0 {
		res.AvgPerOp = latSum / time.Duration(res.Ops)
	}
	var meanSize int64
	for _, sp := range files {
		meanSize += sp.Size
	}
	meanSize /= int64(len(files))
	res.Bytes = meanSize * int64(res.Ops)
	if meanSize > 0 {
		res.AvgPerByte = res.AvgPerOp / time.Duration(meanSize)
	}
	return res, nil
}

// stream tracks one user's in-flight file operation.
type stream struct {
	user    int
	cur     fsapi.Cursor
	started time.Duration
	next    int
}
