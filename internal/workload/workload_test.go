package workload

import (
	"bytes"
	"math/rand"
	"testing"

	"stegfs/internal/nativefs"
	"stegfs/internal/vdisk"
)

func TestUniformSpecsRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	specs := UniformSpecs(rng, 50, 1000, 2000, "f")
	names := map[string]bool{}
	for _, sp := range specs {
		if sp.Size <= 1000 || sp.Size > 2000 {
			t.Fatalf("size %d outside (1000,2000]", sp.Size)
		}
		if names[sp.Name] {
			t.Fatalf("duplicate name %s", sp.Name)
		}
		names[sp.Name] = true
	}
}

func TestFixedSpecs(t *testing.T) {
	specs := FixedSpecs(5, 4096, "x")
	if len(specs) != 5 {
		t.Fatal("count mismatch")
	}
	for _, sp := range specs {
		if sp.Size != 4096 {
			t.Fatal("size mismatch")
		}
	}
}

func TestPayloadDeterministic(t *testing.T) {
	sp := FileSpec{Name: "a", Size: 1000}
	if !bytes.Equal(Payload(sp, 1), Payload(sp, 1)) {
		t.Fatal("payload not deterministic")
	}
	if bytes.Equal(Payload(sp, 1), Payload(sp, 2)) {
		t.Fatal("payload ignores seed")
	}
	if bytes.Equal(Payload(sp, 1), Payload(FileSpec{Name: "b", Size: 1000}, 1)) {
		t.Fatal("payload ignores name")
	}
}

// buildNative provisions a CleanDisk instance populated with specs.
func buildNative(t *testing.T, specs []FileSpec) (*vdisk.Disk, *nativefs.FS) {
	t.Helper()
	store, err := vdisk.NewMemStore(16384, 512)
	if err != nil {
		t.Fatal(err)
	}
	disk := vdisk.NewDisk(store, vdisk.DefaultGeometry())
	fs, err := nativefs.Format(disk, true, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := Populate(fs, specs, 1); err != nil {
		t.Fatal(err)
	}
	disk.ResetClock()
	return disk, fs
}

func TestRunInterleavedCompletesAllOps(t *testing.T) {
	specs := FixedSpecs(8, 8<<10, "f")
	disk, fs := buildNative(t, specs)
	res, err := RunInterleaved(disk, fs, specs, 4, 3, OpRead, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 12 {
		t.Fatalf("completed %d ops, want 12", res.Ops)
	}
	if res.AvgPerOp <= 0 || res.TotalTime <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	if res.AvgPerOp > res.TotalTime {
		t.Fatal("per-op latency exceeds the whole run")
	}
}

func TestRunInterleavedWrite(t *testing.T) {
	specs := FixedSpecs(4, 8<<10, "f")
	disk, fs := buildNative(t, specs)
	res, err := RunInterleaved(disk, fs, specs, 2, 2, OpWrite, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 4 {
		t.Fatalf("completed %d write ops, want 4", res.Ops)
	}
}

func TestInterleavingRaisesLatency(t *testing.T) {
	// The core phenomenon of Figure 7: the same per-user workload takes
	// longer per file operation when interleaved with other users.
	specs := FixedSpecs(16, 8<<10, "f")
	lat := func(users int) float64 {
		disk, fs := buildNative(t, specs)
		res, err := RunInterleaved(disk, fs, specs, users, 2, OpRead, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgPerOp.Seconds()
	}
	l1, l8 := lat(1), lat(8)
	if l8 <= l1*2 {
		t.Fatalf("8-user latency %.4fs not substantially above 1-user %.4fs", l8, l1)
	}
}

func TestRunInterleavedValidation(t *testing.T) {
	specs := FixedSpecs(2, 4096, "f")
	disk, fs := buildNative(t, specs)
	if _, err := RunInterleaved(disk, fs, specs, 0, 1, OpRead, 1); err == nil {
		t.Fatal("0 users should fail")
	}
	if _, err := RunInterleaved(disk, fs, nil, 1, 1, OpRead, 1); err == nil {
		t.Fatal("no files should fail")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Fatal("op names wrong")
	}
}
