package ptree

import (
	"fmt"
	"testing"
	"testing/quick"
)

// memIO is a trivial in-memory BlockIO for tests.
type memIO struct {
	bs   int
	data map[int64][]byte
}

func newMemIO(bs int) *memIO { return &memIO{bs: bs, data: map[int64][]byte{}} }

func (m *memIO) BlockSize() int { return m.bs }

func (m *memIO) ReadBlock(n int64, buf []byte) error {
	b, ok := m.data[n]
	if !ok {
		return fmt.Errorf("memIO: block %d unwritten", n)
	}
	copy(buf, b)
	return nil
}

func (m *memIO) WriteBlock(n int64, buf []byte) error {
	b := make([]byte, len(buf))
	copy(b, buf)
	m.data[n] = b
	return nil
}

// seqAlloc hands out blocks 1000, 1001, ...
type seqAlloc struct{ next int64 }

func newSeqAlloc() *seqAlloc { return &seqAlloc{next: 1000} }

func (a *seqAlloc) alloc() (int64, error) {
	b := a.next
	a.next++
	return b, nil
}

func blockList(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(10 + i*3) // arbitrary, non-contiguous
	}
	return out
}

func TestWriteReadDirectOnly(t *testing.T) {
	io := newMemIO(256)
	alloc := newSeqAlloc()
	blocks := blockList(10)
	root, meta, err := Write(io, alloc.alloc, 24, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta) != 0 {
		t.Fatalf("direct-only file allocated %d indirect blocks", len(meta))
	}
	got, err := Read(io, root, int64(len(blocks)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("got %d blocks, want %d", len(got), len(blocks))
	}
	for i := range got {
		if got[i] != blocks[i] {
			t.Fatalf("block %d: got %d want %d", i, got[i], blocks[i])
		}
	}
}

func TestWriteReadSingleIndirect(t *testing.T) {
	io := newMemIO(256) // 32 pointers per block
	alloc := newSeqAlloc()
	blocks := blockList(24 + 20)
	root, meta, err := Write(io, alloc.alloc, 24, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta) != 1 {
		t.Fatalf("want 1 indirect block, got %d", len(meta))
	}
	if root.Single == NilBlock {
		t.Fatal("single-indirect pointer not set")
	}
	if root.Double != NilBlock {
		t.Fatal("double-indirect should be unused")
	}
	checkRead(t, io, root, blocks)
}

func TestWriteReadDoubleIndirect(t *testing.T) {
	io := newMemIO(256) // 32 ptrs/block: direct 24 + single 32 + double up to 1024
	alloc := newSeqAlloc()
	blocks := blockList(24 + 32 + 100)
	root, meta, err := Write(io, alloc.alloc, 24, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if root.Double == NilBlock {
		t.Fatal("double-indirect pointer not set")
	}
	// meta: 1 single + ceil(100/32)=4 L1 + 1 double = 6
	if len(meta) != 6 {
		t.Fatalf("want 6 indirect blocks, got %d", len(meta))
	}
	checkRead(t, io, root, blocks)

	gotMeta, err := MetaBlocks(io, root, int64(len(blocks)))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMeta) != len(meta) {
		t.Fatalf("MetaBlocks found %d, Write allocated %d", len(gotMeta), len(meta))
	}
}

func TestTooLarge(t *testing.T) {
	io := newMemIO(64) // 8 ptrs/block: max = 4 + 8 + 64 = 76
	alloc := newSeqAlloc()
	if MaxBlocks(4, 64) != 76 {
		t.Fatalf("MaxBlocks = %d, want 76", MaxBlocks(4, 64))
	}
	_, _, err := Write(io, alloc.alloc, 4, blockList(77))
	if err == nil {
		t.Fatal("oversized file should fail")
	}
	// Exactly at the limit is fine.
	root, _, err := Write(io, alloc.alloc, 4, blockList(76))
	if err != nil {
		t.Fatal(err)
	}
	checkRead(t, io, root, blockList(76))
}

func TestFreeReleasesAllMeta(t *testing.T) {
	io := newMemIO(256)
	alloc := newSeqAlloc()
	blocks := blockList(200)
	root, meta, err := Write(io, alloc.alloc, 24, blocks)
	if err != nil {
		t.Fatal(err)
	}
	freed := map[int64]bool{}
	if err := Free(io, root, int64(len(blocks)), func(b int64) { freed[b] = true }); err != nil {
		t.Fatal(err)
	}
	if len(freed) != len(meta) {
		t.Fatalf("freed %d, want %d", len(freed), len(meta))
	}
	for _, b := range meta {
		if !freed[b] {
			t.Fatalf("indirect block %d not freed", b)
		}
	}
}

func TestReadEmptyFile(t *testing.T) {
	io := newMemIO(256)
	root := NewRoot(24)
	got, err := Read(io, root, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty file read %d blocks", len(got))
	}
}

func TestReadMissingIndirect(t *testing.T) {
	io := newMemIO(256)
	root := NewRoot(24)
	for i := range root.Direct {
		root.Direct[i] = int64(i + 1)
	}
	if _, err := Read(io, root, 30); err == nil {
		t.Fatal("missing single-indirect should error")
	}
}

func checkRead(t *testing.T, io BlockIO, root Root, want []int64) {
	t.Helper()
	got, err := Read(io, root, int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d blocks, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("block %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestPropertyRoundTrip: for any block count within range, Read returns
// exactly what Write stored, in order.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(nRaw uint16) bool {
		io := newMemIO(128) // 16 ptrs/block; max = 8 + 16 + 256 = 280
		alloc := newSeqAlloc()
		n := int(nRaw) % 281
		blocks := make([]int64, n)
		for i := range blocks {
			blocks[i] = int64(1 + i) // distinct, nonzero
		}
		root, _, err := Write(io, alloc.alloc, 8, blocks)
		if err != nil {
			return false
		}
		got, err := Read(io, root, int64(n))
		if err != nil {
			return false
		}
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != blocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// batchIO wraps memIO with a counting BatchBlockIO implementation.
type batchIO struct {
	*memIO
	batchCalls  int
	batchBlocks int
}

func (b *batchIO) ReadBlocks(ns []int64, bufs [][]byte) error {
	b.batchCalls++
	b.batchBlocks += len(ns)
	for i, n := range ns {
		if err := b.ReadBlock(n, bufs[i]); err != nil {
			return err
		}
	}
	return nil
}

// TestReadUsesBatchForL1Indirects: a double-indirect tree read through a
// BatchBlockIO must fetch all L1 pointer blocks in one batched request and
// return the same block list as the plain path.
func TestReadUsesBatchForL1Indirects(t *testing.T) {
	const bs = 64 // 8 pointers per block -> double indirect kicks in fast
	plain := newMemIO(bs)
	alloc := newSeqAlloc()
	nDirect := 4
	blocks := make([]int64, 40) // 4 direct + 8 single + 28 double (4 L1 blocks)
	for i := range blocks {
		blocks[i] = int64(100 + i)
	}
	root, _, err := Write(plain, alloc.alloc, nDirect, blocks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Read(plain, root, int64(len(blocks)))
	if err != nil {
		t.Fatal(err)
	}

	bio := &batchIO{memIO: plain}
	got, err := Read(bio, root, int64(len(blocks)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("batch path returned %d blocks, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("block %d: batch %d != plain %d", i, got[i], want[i])
		}
	}
	if bio.batchCalls != 1 {
		t.Fatalf("L1 pointer blocks fetched in %d batch calls, want 1", bio.batchCalls)
	}
	if bio.batchBlocks < 2 {
		t.Fatalf("batch covered %d blocks, want all L1 indirects", bio.batchBlocks)
	}
}
