// Package ptree implements the inode pointer tree shared by plain files and
// hidden files: a fixed number of direct block pointers followed by one
// single-indirect and one double-indirect pointer, as in classic Unix inodes
// (the paper models its central directory "after the inode table in Unix",
// and each hidden file carries "a link to an inode table that indexes all
// the data blocks in the file").
//
// The tree is written through a BlockIO, so the same code serves both sides:
// plain inodes write raw pointer blocks, while hidden files pass an
// encrypting BlockIO so their inode-table blocks are indistinguishable from
// random data on disk.
package ptree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// NilBlock is the pointer value meaning "no block". Block 0 always holds a
// superblock in every scheme in this repository, so it can never be a data
// or pointer block.
const NilBlock int64 = 0

// BlockIO is the minimal block access the tree needs. Implementations may
// encrypt transparently.
type BlockIO interface {
	ReadBlock(n int64, buf []byte) error
	WriteBlock(n int64, buf []byte) error
	BlockSize() int
}

// BatchBlockIO is a BlockIO that can service many blocks in one request
// (mirroring vdisk.BatchDevice). When the IO offers it, Read fetches all the
// L1 indirect blocks of a double-indirect tree in a single batched request
// instead of one device round trip per pointer block.
type BatchBlockIO interface {
	BlockIO
	ReadBlocks(ns []int64, bufs [][]byte) error
}

// AllocFunc returns a fresh block to hold pointer (indirect) data.
type AllocFunc func() (int64, error)

// FreeFunc releases a pointer block.
type FreeFunc func(int64)

// Root is the pointer set stored inside an inode or hidden-file header.
type Root struct {
	Direct []int64 // len fixed by the owner's on-disk format
	Single int64   // single-indirect pointer block (NilBlock if unused)
	Double int64   // double-indirect pointer block (NilBlock if unused)
}

// NewRoot returns an empty root with nDirect direct slots.
func NewRoot(nDirect int) Root {
	d := make([]int64, nDirect)
	for i := range d {
		d[i] = NilBlock
	}
	return Root{Direct: d, Single: NilBlock, Double: NilBlock}
}

// ErrTooLarge reports a file that exceeds the addressable range of the tree.
var ErrTooLarge = errors.New("ptree: file exceeds maximum addressable size")

// MaxBlocks returns the number of data blocks addressable with nDirect
// direct pointers and the given block size.
func MaxBlocks(nDirect, blockSize int) int64 {
	ppb := int64(blockSize / 8)
	return int64(nDirect) + ppb + ppb*ppb
}

// ptrsPerBlock returns how many 8-byte pointers fit in one block.
func ptrsPerBlock(io BlockIO) int64 { return int64(io.BlockSize() / 8) }

// Write stores the data-block list under a root, allocating indirect blocks
// with alloc as needed. It returns the root and the list of indirect blocks
// it allocated (the owner must account for them, e.g. mark them in a bitmap
// or report them in Stat).
func Write(io BlockIO, alloc AllocFunc, nDirect int, blocks []int64) (Root, []int64, error) {
	root := NewRoot(nDirect)
	var meta []int64
	n := len(blocks)
	if int64(n) > MaxBlocks(nDirect, io.BlockSize()) {
		return root, nil, fmt.Errorf("%w: %d blocks", ErrTooLarge, n)
	}

	// Direct pointers.
	for i := 0; i < nDirect && i < n; i++ {
		root.Direct[i] = blocks[i]
	}
	if n <= nDirect {
		return root, meta, nil
	}
	rest := blocks[nDirect:]
	ppb := ptrsPerBlock(io)

	// Single indirect.
	cnt := int64(len(rest))
	if cnt > ppb {
		cnt = ppb
	}
	sb, err := writePtrBlock(io, alloc, rest[:cnt])
	if err != nil {
		if sb != NilBlock {
			meta = append(meta, sb)
		}
		return root, meta, err
	}
	root.Single = sb
	meta = append(meta, sb)
	rest = rest[cnt:]
	if len(rest) == 0 {
		return root, meta, nil
	}

	// Double indirect.
	var l1 []int64
	for len(rest) > 0 {
		cnt = int64(len(rest))
		if cnt > ppb {
			cnt = ppb
		}
		ib, err := writePtrBlock(io, alloc, rest[:cnt])
		if err != nil {
			if ib != NilBlock {
				meta = append(meta, ib)
			}
			return root, meta, err
		}
		meta = append(meta, ib)
		l1 = append(l1, ib)
		rest = rest[cnt:]
	}
	if int64(len(l1)) > ppb {
		return root, meta, fmt.Errorf("%w: needs %d L1 pointers", ErrTooLarge, len(l1))
	}
	db, err := writePtrBlock(io, alloc, l1)
	if err != nil {
		if db != NilBlock {
			meta = append(meta, db)
		}
		return root, meta, err
	}
	root.Double = db
	meta = append(meta, db)
	return root, meta, nil
}

// writePtrBlock allocates a block and writes the pointers into it (remaining
// slots are NilBlock). On a write failure the already-allocated block is
// returned alongside the error so the caller can report it in meta — error
// paths free the meta list, and a block dropped here would leak for the
// volume's lifetime.
func writePtrBlock(io BlockIO, alloc AllocFunc, ptrs []int64) (int64, error) {
	b, err := alloc()
	if err != nil {
		return NilBlock, err
	}
	buf := make([]byte, io.BlockSize())
	for i, p := range ptrs {
		binary.BigEndian.PutUint64(buf[i*8:], uint64(p))
	}
	if err := io.WriteBlock(b, buf); err != nil {
		return b, err
	}
	return b, nil
}

// ptrBufPool recycles the scratch block buffers pointer-block reads decode
// from, so traversing a tree allocates nothing once warm.
var ptrBufPool sync.Pool

func getPtrBuf(bs int) *[]byte {
	if p, _ := ptrBufPool.Get().(*[]byte); p != nil && cap(*p) >= bs {
		*p = (*p)[:bs]
		return p
	}
	b := make([]byte, bs)
	return &b
}

// readPtrBlock reads up to max pointers from a pointer block, stopping at
// the first NilBlock, appending them to dst.
func readPtrBlock(io BlockIO, b int64, max int64, dst []int64) ([]int64, error) {
	p := getPtrBuf(io.BlockSize())
	defer ptrBufPool.Put(p)
	if err := io.ReadBlock(b, *p); err != nil {
		return dst, err
	}
	return parsePtrs(io, *p, max, dst), nil
}

// parsePtrs decodes up to max pointers from a raw pointer block, stopping at
// the first NilBlock, appending them to dst.
func parsePtrs(io BlockIO, buf []byte, max int64, dst []int64) []int64 {
	ppb := ptrsPerBlock(io)
	if max > ppb {
		max = ppb
	}
	for i := int64(0); i < max; i++ {
		p := int64(binary.BigEndian.Uint64(buf[i*8:]))
		if p == NilBlock {
			break
		}
		dst = append(dst, p)
	}
	return dst
}

// Read returns the data-block list of a file with nBlocks blocks stored
// under root.
func Read(io BlockIO, root Root, nBlocks int64) ([]int64, error) {
	return ReadInto(io, root, nBlocks, nil)
}

// ReadInto is Read appending into dst[:0], so callers that traverse the same
// tree repeatedly can reuse one backing array; it returns the (possibly
// regrown) slice. Pointer-block scratch comes from an internal pool — a warm
// caller passing an adequately sized dst triggers no allocation at all.
func ReadInto(io BlockIO, root Root, nBlocks int64, dst []int64) ([]int64, error) {
	if nBlocks < 0 {
		return nil, fmt.Errorf("ptree: negative block count %d", nBlocks)
	}
	out := dst[:0]
	for i := 0; int64(i) < nBlocks && i < len(root.Direct); i++ {
		out = append(out, root.Direct[i])
	}
	if int64(len(out)) == nBlocks {
		return out, nil
	}
	if root.Single == NilBlock {
		return nil, errors.New("ptree: missing single-indirect block")
	}
	out, err := readPtrBlock(io, root.Single, nBlocks-int64(len(out)), out)
	if err != nil {
		return nil, err
	}
	if int64(len(out)) == nBlocks {
		return out, nil
	}
	if root.Double == NilBlock {
		return nil, errors.New("ptree: missing double-indirect block")
	}
	l1, err := readPtrBlock(io, root.Double, ptrsPerBlock(io), nil)
	if err != nil {
		return nil, err
	}
	if bio, ok := io.(BatchBlockIO); ok && len(l1) > 1 {
		// One batched request for every L1 pointer block of the tree.
		raw := make([]byte, len(l1)*io.BlockSize())
		bufs := make([][]byte, len(l1))
		for i := range l1 {
			bufs[i] = raw[i*io.BlockSize() : (i+1)*io.BlockSize()]
		}
		if err := bio.ReadBlocks(l1, bufs); err != nil {
			return nil, err
		}
		for _, buf := range bufs {
			out = parsePtrs(io, buf, nBlocks-int64(len(out)), out)
			if int64(len(out)) == nBlocks {
				return out, nil
			}
		}
	} else {
		for _, ib := range l1 {
			out, err = readPtrBlock(io, ib, nBlocks-int64(len(out)), out)
			if err != nil {
				return nil, err
			}
			if int64(len(out)) == nBlocks {
				return out, nil
			}
		}
	}
	if int64(len(out)) != nBlocks {
		return nil, fmt.Errorf("ptree: found %d of %d blocks", len(out), nBlocks)
	}
	return out, nil
}

// MetaBlocks returns the indirect blocks reachable from root for a file of
// nBlocks data blocks (in read order), so owners can free or image them.
func MetaBlocks(io BlockIO, root Root, nBlocks int64) ([]int64, error) {
	var out []int64
	nd := int64(len(root.Direct))
	if nBlocks <= nd {
		return out, nil
	}
	if root.Single == NilBlock {
		return nil, errors.New("ptree: missing single-indirect block")
	}
	out = append(out, root.Single)
	rem := nBlocks - nd - ptrsPerBlock(io)
	if rem <= 0 {
		return out, nil
	}
	if root.Double == NilBlock {
		return nil, errors.New("ptree: missing double-indirect block")
	}
	out, err := readPtrBlock(io, root.Double, ptrsPerBlock(io), out)
	if err != nil {
		return nil, err
	}
	out = append(out, root.Double)
	return out, nil
}

// Free releases all indirect blocks of the tree via free. Data blocks are
// the owner's responsibility.
func Free(io BlockIO, root Root, nBlocks int64, free FreeFunc) error {
	meta, err := MetaBlocks(io, root, nBlocks)
	if err != nil {
		return err
	}
	for _, b := range meta {
		free(b)
	}
	return nil
}
