// Package gf256 implements arithmetic in the finite field GF(2^8) with the
// AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b). It is the substrate for
// Rabin's information dispersal algorithm (internal/ida), which the paper
// discusses as Mnemosyne's improvement over plain replication for the
// random-addressing steganographic scheme (§2, reference [10]/[15]).
//
// The bulk entry points (MulSlice, MulAddSlices) have two kernels. On amd64
// with AVX2 they use the 16x16 nibble-table formulation every production
// erasure coder uses: the product table of c is split into two 16-entry
// tables (low and high nibble) and resolved 32 bytes at a time with VPSHUFB
// (gf_amd64.s). Everywhere else a portable word-wide Go kernel processes
// eight bytes per step: one 64-bit word of source is loaded, the eight
// product-table lookups are composed into one 64-bit result word, and a
// single XOR+store updates the destination.
package gf256

import "encoding/binary"

// poly is the reduction polynomial (0x11b without the x^8 bit).
const poly = 0x1b

// exp and log are the discriminant tables of the multiplicative group,
// generated from the primitive element 3.
var exp [512]byte
var log [256]int

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = i
		// multiply x by the generator 3 = x ^ (x<<1 mod poly)
		y := x << 1
		if x&0x80 != 0 {
			y ^= poly
		}
		x ^= y
	}
	for i := 255; i < 512; i++ {
		exp[i] = exp[i-255]
	}
}

// Add returns a + b (XOR in characteristic 2).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b (identical to Add in characteristic 2).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return exp[log[a]+log[b]]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics: division by
// zero in GF(256) is a caller bug, not a recoverable condition.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return exp[255-log[a]]
}

// Div returns a / b. Div by zero panics.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return exp[log[a]+255-log[b]]
}

// Pow returns a^n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return exp[(log[a]*n)%255]
}

// mulSliceTableMin is the slice length above which MulSlice amortizes a
// 256-byte product table. Building the table costs 255 lookups (~200ns);
// measured against the ~1ns/byte direct log/exp path the crossover sits
// near 360 bytes, so shorter slices keep the direct path.
const mulSliceTableMin = 384

// mulSliceVecMin is the minimum length routed to the vector kernel: below
// two 32-byte vectors the shuffle setup (two table broadcasts) is not worth
// the call.
const mulSliceVecMin = 64

// MulSlice computes dst[i] ^= c * src[i] for all i — the inner loop of
// matrix-vector products over the field. Long slices (IDA operates on
// block-sized shards) go to the VPSHUFB nibble kernel when available, else
// to the word-wide table kernel: eight bytes of src per step, one XOR+store
// into dst, with no zero-test branch and no double exp/log indirection.
func MulSlice(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	if hasVec && len(src) >= mulSliceVecMin {
		mulSliceVec(c, dst, src)
		return
	}
	if len(src) < mulSliceTableMin {
		lc := log[c]
		for i, s := range src {
			if s != 0 {
				dst[i] ^= exp[lc+log[s]]
			}
		}
		return
	}
	var tab [256]byte
	buildMulTable(c, &tab)
	mulAddWide(&tab, dst, src)
}

// buildMulTable fills tab with the 256-entry product table of c (tab[x] =
// c*x; tab[0] stays 0). Viewed as a 16x16 grid it is the nibble table the
// SIMD formulations use; the pure-Go kernel indexes it with whole bytes.
func buildMulTable(c byte, tab *[256]byte) {
	lc := log[c]
	for x := 1; x < 256; x++ {
		tab[x] = exp[lc+log[x]]
	}
}

// mulAddWide is the wide kernel behind MulSlice: dst[i] ^= tab[src[i]],
// eight bytes per step. The source word is loaded once, the eight table
// lookups are composed into one result word, and the destination is updated
// with a single load-XOR-store — roughly one third of the memory operations
// of the byte-at-a-time loop, which is where the table path's time went.
func mulAddWide(tab *[256]byte, dst, src []byte) {
	n := len(src)
	_ = dst[n-1] // one bounds check for the whole loop
	i := 0
	for ; i+8 <= n; i += 8 {
		s := binary.LittleEndian.Uint64(src[i:])
		r := uint64(tab[s&0xff]) |
			uint64(tab[s>>8&0xff])<<8 |
			uint64(tab[s>>16&0xff])<<16 |
			uint64(tab[s>>24&0xff])<<24 |
			uint64(tab[s>>32&0xff])<<32 |
			uint64(tab[s>>40&0xff])<<40 |
			uint64(tab[s>>48&0xff])<<48 |
			uint64(tab[s>>56])<<56
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^r)
	}
	for ; i < n; i++ {
		dst[i] ^= tab[src[i]]
	}
}

// fusedGroup bounds how many product tables a MulAddSlices pass keeps live
// at once: 8 tables are 2 KB of hot stack — comfortably L1-resident next to
// the source words — and cover every practical IDA quorum in one pass.
const fusedGroup = 8

// MulAddSlices computes dst[i] ^= sum_k cs[k] * srcs[k][i] — a fused
// matrix-vector row: one pass over dst accumulates every source, instead of
// the len(cs) separate read-modify-write passes that repeated MulSlice calls
// would make. Each srcs[k] must be at least len(dst) bytes. Zero
// coefficients are skipped. Quorums larger than fusedGroup fall back to
// ceil(k/fusedGroup) passes, still a k/8 reduction in dst traffic.
//
// When the vector kernel is available the fused Go pass loses to plain
// per-source VPSHUFB sweeps (the shuffle kernel is memory-bound, so the
// extra dst traffic is cheaper than leaving the vector unit), so this
// routes to one vector sweep per nonzero coefficient instead.
func MulAddSlices(cs []byte, dst []byte, srcs [][]byte) {
	if len(cs) != len(srcs) {
		panic("gf256: MulAddSlices coefficient/source count mismatch")
	}
	n := len(dst)
	if n == 0 {
		return
	}
	if hasVec && n >= mulSliceVecMin {
		for k, c := range cs {
			if c != 0 {
				mulSliceVec(c, dst, srcs[k][:n])
			}
		}
		return
	}
	if n < mulSliceTableMin {
		for k, c := range cs {
			MulSlice(c, dst, srcs[k][:n])
		}
		return
	}
	var tabs [fusedGroup][256]byte
	var sel [fusedGroup][]byte
	for base := 0; base < len(cs); {
		g := 0
		for base < len(cs) && g < fusedGroup {
			if cs[base] != 0 {
				buildMulTable(cs[base], &tabs[g])
				sel[g] = srcs[base]
				g++
			}
			base++
		}
		if g == 0 {
			continue
		}
		for t := 0; t < g; t++ {
			_ = sel[t][n-1] // one bounds check per source for the whole pass
		}
		i := 0
		for ; i+8 <= n; i += 8 {
			r := binary.LittleEndian.Uint64(dst[i:])
			for t := 0; t < g; t++ {
				s := binary.LittleEndian.Uint64(sel[t][i:])
				tab := &tabs[t]
				r ^= uint64(tab[s&0xff]) |
					uint64(tab[s>>8&0xff])<<8 |
					uint64(tab[s>>16&0xff])<<16 |
					uint64(tab[s>>24&0xff])<<24 |
					uint64(tab[s>>32&0xff])<<32 |
					uint64(tab[s>>40&0xff])<<40 |
					uint64(tab[s>>48&0xff])<<48 |
					uint64(tab[s>>56])<<56
			}
			binary.LittleEndian.PutUint64(dst[i:], r)
		}
		for ; i < n; i++ {
			b := dst[i]
			for t := 0; t < g; t++ {
				b ^= tabs[t][sel[t][i]]
			}
			dst[i] = b
		}
	}
}
