// Package gf256 implements arithmetic in the finite field GF(2^8) with the
// AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b). It is the substrate for
// Rabin's information dispersal algorithm (internal/ida), which the paper
// discusses as Mnemosyne's improvement over plain replication for the
// random-addressing steganographic scheme (§2, reference [10]/[15]).
package gf256

// poly is the reduction polynomial (0x11b without the x^8 bit).
const poly = 0x1b

// exp and log are the discriminant tables of the multiplicative group,
// generated from the primitive element 3.
var exp [512]byte
var log [256]int

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = i
		// multiply x by the generator 3 = x ^ (x<<1 mod poly)
		y := x << 1
		if x&0x80 != 0 {
			y ^= poly
		}
		x ^= y
	}
	for i := 255; i < 512; i++ {
		exp[i] = exp[i-255]
	}
}

// Add returns a + b (XOR in characteristic 2).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a - b (identical to Add in characteristic 2).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a * b.
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return exp[log[a]+log[b]]
}

// Inv returns the multiplicative inverse of a. Inv(0) panics: division by
// zero in GF(256) is a caller bug, not a recoverable condition.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return exp[255-log[a]]
}

// Div returns a / b. Div by zero panics.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return exp[log[a]+255-log[b]]
}

// Pow returns a^n.
func Pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return exp[(log[a]*n)%255]
}

// mulSliceTableMin is the slice length above which MulSlice amortizes a
// 256-byte product table. Building the table costs 255 lookups (~200ns);
// measured against the ~1ns/byte direct log/exp path the crossover sits
// near 360 bytes, so shorter slices keep the direct path.
const mulSliceTableMin = 384

// MulSlice computes dst[i] ^= c * src[i] for all i — the inner loop of
// matrix-vector products over the field. For long slices (IDA operates on
// block-sized shards) it first builds the 256-entry product table of c, so
// the per-byte work is a single table load and XOR with no zero-test branch
// and no double exp/log indirection.
func MulSlice(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	lc := log[c]
	if len(src) < mulSliceTableMin {
		for i, s := range src {
			if s != 0 {
				dst[i] ^= exp[lc+log[s]]
			}
		}
		return
	}
	var tab [256]byte // tab[0] stays 0: c*0 = 0
	for x := 1; x < 256; x++ {
		tab[x] = exp[lc+log[x]]
	}
	_ = dst[len(src)-1] // one bounds check for the whole loop
	for i, s := range src {
		dst[i] ^= tab[s]
	}
}
