//go:build !amd64

package gf256

// hasVec is false off amd64: there is no vector kernel, so MulSlice and
// MulAddSlices always take the portable word-wide Go path.
const hasVec = false

// mulSliceVec is never called when hasVec is false; the stub exists so the
// dispatch code compiles on every architecture.
func mulSliceVec(c byte, dst, src []byte) {}
