package gf256

import (
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	// Spot-check axioms exhaustively over the whole field.
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("1 is not multiplicative identity for %d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("0 absorption fails for %d", a)
		}
		if Add(byte(a), byte(a)) != 0 {
			t.Fatalf("characteristic-2 addition fails for %d", a)
		}
		if a != 0 {
			if Mul(byte(a), Inv(byte(a))) != 1 {
				t.Fatalf("inverse fails for %d", a)
			}
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 || Pow(0, 5) != 0 || Pow(7, 0) != 1 {
		t.Fatal("pow edge cases")
	}
	for a := 1; a < 256; a++ {
		// Fermat: a^255 = 1 in the multiplicative group.
		if Pow(byte(a), 255) != 1 {
			t.Fatalf("a^255 != 1 for %d", a)
		}
		want := byte(1)
		for k := 0; k < 10; k++ {
			if Pow(byte(a), k) != want {
				t.Fatalf("pow(%d,%d) mismatch", a, k)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	Inv(0)
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := make([]byte, 5)
	MulSlice(7, dst, src)
	for i := range src {
		if dst[i] != Mul(7, src[i]) {
			t.Fatalf("MulSlice[%d] mismatch", i)
		}
	}
	// c=0 leaves dst untouched.
	before := append([]byte(nil), dst...)
	MulSlice(0, dst, src)
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatal("MulSlice with c=0 modified dst")
		}
	}
}
