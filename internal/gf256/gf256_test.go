package gf256

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	// Spot-check axioms exhaustively over the whole field.
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("1 is not multiplicative identity for %d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("0 absorption fails for %d", a)
		}
		if Add(byte(a), byte(a)) != 0 {
			t.Fatalf("characteristic-2 addition fails for %d", a)
		}
		if a != 0 {
			if Mul(byte(a), Inv(byte(a))) != 1 {
				t.Fatalf("inverse fails for %d", a)
			}
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 || Pow(0, 5) != 0 || Pow(7, 0) != 1 {
		t.Fatal("pow edge cases")
	}
	for a := 1; a < 256; a++ {
		// Fermat: a^255 = 1 in the multiplicative group.
		if Pow(byte(a), 255) != 1 {
			t.Fatalf("a^255 != 1 for %d", a)
		}
		want := byte(1)
		for k := 0; k < 10; k++ {
			if Pow(byte(a), k) != want {
				t.Fatalf("pow(%d,%d) mismatch", a, k)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	Inv(0)
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := make([]byte, 5)
	MulSlice(7, dst, src)
	for i := range src {
		if dst[i] != Mul(7, src[i]) {
			t.Fatalf("MulSlice[%d] mismatch", i)
		}
	}
	// c=0 leaves dst untouched.
	before := append([]byte(nil), dst...)
	MulSlice(0, dst, src)
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatal("MulSlice with c=0 modified dst")
		}
	}
}

// TestMulSliceTablePathMatchesReference cross-checks the table-driven fast
// path (len >= mulSliceTableMin) against the definitional product for all
// byte values, including zeros, and verifies the accumulate (^=) semantics.
func TestMulSliceTablePathMatchesReference(t *testing.T) {
	for _, c := range []byte{1, 2, 3, 7, 0x53, 0xca, 255} {
		src := make([]byte, 4096)
		dst := make([]byte, len(src))
		want := make([]byte, len(src))
		for i := range src {
			src[i] = byte(i * 13)
			dst[i] = byte(i * 29)
			want[i] = dst[i] ^ Mul(c, src[i])
		}
		MulSlice(c, dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("c=%#x: MulSlice[%d] = %#x, want %#x", c, i, dst[i], want[i])
			}
		}
	}
}

// mulSliceNoTable is the pre-table reference implementation, kept for the
// benchmark comparison.
func mulSliceNoTable(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	lc := log[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp[lc+log[s]]
		}
	}
}

// mulSliceTabByte is the previous table path — one byte per step — kept as
// the reference the wide kernel is pinned against and benchmarked over.
func mulSliceTabByte(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	var tab [256]byte
	buildMulTable(c, &tab)
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] ^= tab[s]
	}
}

// FuzzMulSliceKernels pins the word-wide kernel (and the fused multi-source
// kernel) to the byte-at-a-time table path byte for byte, across arbitrary
// lengths, alignments and coefficients.
func FuzzMulSliceKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(0x53), byte(0xca))
	f.Add(make([]byte, 1024), byte(1), byte(255))
	f.Add([]byte{0xff}, byte(7), byte(0))
	f.Fuzz(func(t *testing.T, src []byte, c1, c2 byte) {
		if len(src) == 0 {
			return
		}
		dstA := make([]byte, len(src))
		dstB := make([]byte, len(src))
		for i := range dstA {
			dstA[i] = byte(i * 17)
			dstB[i] = dstA[i]
		}
		// Force the table/wide path regardless of length so short fuzz
		// inputs still exercise the kernel (MulSlice itself routes short
		// slices to the direct path, which TestMulSlice covers).
		var tab [256]byte
		if c1 != 0 {
			buildMulTable(c1, &tab)
			mulAddWide(&tab, dstA, src)
		}
		mulSliceTabByte(c1, dstB, src)
		if !bytes.Equal(dstA, dstB) {
			t.Fatalf("wide kernel diverges from byte kernel (c=%#x, n=%d)", c1, len(src))
		}
		// Pin the vector kernel (when this platform has one) to the same
		// reference, including its unaligned tail handling.
		if hasVec && c1 != 0 {
			dstV := make([]byte, len(src))
			for i := range dstV {
				dstV[i] = byte(i * 17)
			}
			mulSliceVec(c1, dstV, src)
			if !bytes.Equal(dstV, dstB) {
				t.Fatalf("vector kernel diverges from byte kernel (c=%#x, n=%d)", c1, len(src))
			}
		}
		// Fused two-source kernel vs two sequential MulSlice passes. Use the
		// reversed src as the second source so the sources differ.
		rev := make([]byte, len(src))
		for i := range src {
			rev[i] = src[len(src)-1-i]
		}
		fused := append([]byte(nil), dstA...)
		seq := append([]byte(nil), dstA...)
		MulAddSlices([]byte{c1, c2}, fused, [][]byte{src, rev})
		MulSlice(c1, seq, src)
		MulSlice(c2, seq, rev)
		if !bytes.Equal(fused, seq) {
			t.Fatalf("MulAddSlices diverges from sequential MulSlice (c1=%#x, c2=%#x, n=%d)", c1, c2, len(src))
		}
	})
}

// TestMulAddSlices checks the fused kernel against sequential MulSlice for
// quorums around the fusedGroup boundary, with zero coefficients mixed in.
func TestMulAddSlices(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 8, 9, 17} {
		for _, n := range []int{1, 7, 8, 384, 1024, 1031} {
			cs := make([]byte, k)
			srcs := make([][]byte, k)
			for j := range cs {
				cs[j] = byte(j * 37) // includes a zero coefficient at j=0
				srcs[j] = make([]byte, n)
				for i := range srcs[j] {
					srcs[j][i] = byte(i*31 + j*7 + 1)
				}
			}
			fused := make([]byte, n)
			seq := make([]byte, n)
			for i := range fused {
				fused[i] = byte(i * 11)
				seq[i] = fused[i]
			}
			MulAddSlices(cs, fused, srcs)
			for j := range cs {
				MulSlice(cs[j], seq, srcs[j])
			}
			if !bytes.Equal(fused, seq) {
				t.Fatalf("k=%d n=%d: fused result diverges", k, n)
			}
		}
	}
}

func TestMulAddSlicesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	MulAddSlices([]byte{1, 2}, make([]byte, 8), [][]byte{make([]byte, 8)})
}

// BenchmarkMulSlice measures the IDA inner loop at shard-typical lengths;
// /auto is MulSlice's dispatched path (VPSHUFB on amd64+AVX2), /gowide the
// portable word-at-a-time kernel, /tablebyte the previous byte-at-a-time
// table path, /logexp the original branch-and-double-lookup path.
func BenchmarkMulSlice(b *testing.B) {
	for _, n := range []int{512, 1024, 8192} {
		src := make([]byte, n)
		dst := make([]byte, n)
		for i := range src {
			src[i] = byte(i*31 + 1)
		}
		if n < mulSliceTableMin {
			b.Fatalf("benchmark size %d below table threshold %d", n, mulSliceTableMin)
		}
		b.Run(fmt.Sprintf("auto/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSlice(0x53, dst, src)
			}
		})
		b.Run(fmt.Sprintf("gowide/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			var tab [256]byte
			buildMulTable(0x53, &tab)
			for i := 0; i < b.N; i++ {
				mulAddWide(&tab, dst, src)
			}
		})
		b.Run(fmt.Sprintf("tablebyte/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				mulSliceTabByte(0x53, dst, src)
			}
		})
		b.Run(fmt.Sprintf("logexp/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				mulSliceNoTable(0x53, dst, src)
			}
		})
	}
}

// BenchmarkMulAddSlices compares a fused k-source accumulation against k
// sequential MulSlice passes (the IDA reconstruction inner loop, k = quorum).
func BenchmarkMulAddSlices(b *testing.B) {
	const n = 8192
	for _, k := range []int{3, 8} {
		cs := make([]byte, k)
		srcs := make([][]byte, k)
		for j := range cs {
			cs[j] = byte(j*37 + 5)
			srcs[j] = make([]byte, n)
			for i := range srcs[j] {
				srcs[j][i] = byte(i*31 + j)
			}
		}
		dst := make([]byte, n)
		b.Run(fmt.Sprintf("fused/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(n * k))
			for i := 0; i < b.N; i++ {
				MulAddSlices(cs, dst, srcs)
			}
		})
		b.Run(fmt.Sprintf("sequential/k=%d", k), func(b *testing.B) {
			b.SetBytes(int64(n * k))
			for i := 0; i < b.N; i++ {
				for j := range cs {
					MulSlice(cs[j], dst, srcs[j])
				}
			}
		})
	}
}
