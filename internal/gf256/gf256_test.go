package gf256

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	// Spot-check axioms exhaustively over the whole field.
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("1 is not multiplicative identity for %d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("0 absorption fails for %d", a)
		}
		if Add(byte(a), byte(a)) != 0 {
			t.Fatalf("characteristic-2 addition fails for %d", a)
		}
		if a != 0 {
			if Mul(byte(a), Inv(byte(a))) != 1 {
				t.Fatalf("inverse fails for %d", a)
			}
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		if Mul(a, b) != Mul(b, a) {
			return false
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			return false
		}
		// Distributivity.
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDivInvertsMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	if Pow(0, 0) != 1 || Pow(0, 5) != 0 || Pow(7, 0) != 1 {
		t.Fatal("pow edge cases")
	}
	for a := 1; a < 256; a++ {
		// Fermat: a^255 = 1 in the multiplicative group.
		if Pow(byte(a), 255) != 1 {
			t.Fatalf("a^255 != 1 for %d", a)
		}
		want := byte(1)
		for k := 0; k < 10; k++ {
			if Pow(byte(a), k) != want {
				t.Fatalf("pow(%d,%d) mismatch", a, k)
			}
			want = Mul(want, byte(a))
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	Inv(0)
}

func TestMulSlice(t *testing.T) {
	src := []byte{1, 2, 3, 0, 255}
	dst := make([]byte, 5)
	MulSlice(7, dst, src)
	for i := range src {
		if dst[i] != Mul(7, src[i]) {
			t.Fatalf("MulSlice[%d] mismatch", i)
		}
	}
	// c=0 leaves dst untouched.
	before := append([]byte(nil), dst...)
	MulSlice(0, dst, src)
	for i := range dst {
		if dst[i] != before[i] {
			t.Fatal("MulSlice with c=0 modified dst")
		}
	}
}

// TestMulSliceTablePathMatchesReference cross-checks the table-driven fast
// path (len >= mulSliceTableMin) against the definitional product for all
// byte values, including zeros, and verifies the accumulate (^=) semantics.
func TestMulSliceTablePathMatchesReference(t *testing.T) {
	for _, c := range []byte{1, 2, 3, 7, 0x53, 0xca, 255} {
		src := make([]byte, 4096)
		dst := make([]byte, len(src))
		want := make([]byte, len(src))
		for i := range src {
			src[i] = byte(i * 13)
			dst[i] = byte(i * 29)
			want[i] = dst[i] ^ Mul(c, src[i])
		}
		MulSlice(c, dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("c=%#x: MulSlice[%d] = %#x, want %#x", c, i, dst[i], want[i])
			}
		}
	}
}

// mulSliceNoTable is the pre-table reference implementation, kept for the
// benchmark comparison.
func mulSliceNoTable(c byte, dst, src []byte) {
	if c == 0 {
		return
	}
	lc := log[c]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= exp[lc+log[s]]
		}
	}
}

// BenchmarkMulSlice measures the IDA inner loop at shard-typical lengths;
// the /table variants use the per-c product table, /logexp the old
// branch-and-double-lookup path.
func BenchmarkMulSlice(b *testing.B) {
	for _, n := range []int{512, 1024, 8192} {
		src := make([]byte, n)
		dst := make([]byte, n)
		for i := range src {
			src[i] = byte(i*31 + 1)
		}
		if n < mulSliceTableMin {
			b.Fatalf("benchmark size %d below table threshold %d", n, mulSliceTableMin)
		}
		b.Run(fmt.Sprintf("table/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				MulSlice(0x53, dst, src)
			}
		})
		b.Run(fmt.Sprintf("logexp/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				mulSliceNoTable(0x53, dst, src)
			}
		})
	}
}
