//go:build amd64

#include "textflag.h"

DATA nibMask<>+0x00(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x08(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x10(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+0x18(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $32

// func mulAddVecAsm(lo, hi *[16]byte, dst, src *byte, n int)
//
// dst[i] ^= lo[src[i]&0x0f] ^ hi[src[i]>>4] for i in [0, n), n a multiple
// of 32. The two 16-entry nibble tables are broadcast once into both lanes
// of a YMM register; each 32-byte step splits the source into nibbles with
// a shift+mask (VPSRLW shifts 16-bit lanes, so the mask also strips the
// bits that bleed in from the neighboring byte) and resolves both halves
// with one VPSHUFB each.
TEXT ·mulAddVecAsm(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 (BX), Y1
	VMOVDQU nibMask<>(SB), Y2

loop64:
	CMPQ CX, $64
	JB   loop32
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y7
	VPSRLW  $4, Y3, Y4
	VPSRLW  $4, Y7, Y8
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y7, Y7
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y8, Y8
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y7, Y0, Y9
	VPSHUFB Y4, Y1, Y6
	VPSHUFB Y8, Y1, Y10
	VPXOR   Y5, Y6, Y5
	VPXOR   Y9, Y10, Y9
	VPXOR   (DI), Y5, Y5
	VPXOR   32(DI), Y9, Y9
	VMOVDQU Y5, (DI)
	VMOVDQU Y9, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	JMP     loop64

loop32:
	CMPQ CX, $32
	JB   done
	VMOVDQU (SI), Y3
	VPSRLW  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y5
	VPSHUFB Y4, Y1, Y6
	VPXOR   Y5, Y6, Y5
	VPXOR   (DI), Y5, Y5
	VMOVDQU Y5, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX

done:
	VZEROUPPER
	RET
