//go:build amd64

package gf256

import "stegfs/internal/cpux"

// hasVec gates the AVX2 nibble-table kernel. The check requires OS-enabled
// YMM state, not just the CPUID feature bit (see cpux).
var hasVec = cpux.HasAVX2

// mulNibLo[c][x] = c*x and mulNibHi[c][x] = c*(x<<4) for x in 0..15 — the
// split-nibble product tables behind the VPSHUFB kernel: a byte product
// c*b decomposes as c*(b&0x0f) ^ c*(b>>4 << 4) because multiplication by c
// is linear over GF(2). Each row is 16 bytes, exactly one PSHUFB table.
var mulNibLo, mulNibHi [256][16]byte

// mulSlow is carry-less (russian peasant) multiplication mod 0x11b. It is
// used only to build the nibble tables at init time so the build does not
// depend on the exp/log tables being initialized first — Go runs a package's
// init functions in file order, and relying on that ordering here would be a
// silent trap for anyone renaming files.
func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= poly
		}
		b >>= 1
	}
	return p
}

func init() {
	for c := 1; c < 256; c++ {
		for x := 1; x < 16; x++ {
			mulNibLo[c][x] = mulSlow(byte(c), byte(x))
			mulNibHi[c][x] = mulSlow(byte(c), byte(x<<4))
		}
	}
}

// mulAddVecAsm computes dst[i] ^= lo[src[i]&0x0f] ^ hi[src[i]>>4] over n
// bytes, 32 (or 64) per iteration, using VPSHUFB against the two nibble
// tables. n must be a non-negative multiple of 32. Implemented in
// gf_amd64.s.
//
//go:noescape
func mulAddVecAsm(lo, hi *[16]byte, dst, src *byte, n int)

// mulSliceVec is the AVX2 path behind MulSlice: the 32-byte-aligned body
// goes through the VPSHUFB kernel and the sub-32-byte tail through the
// direct exp/log loop. Callers have already rejected c == 0 and checked
// hasVec and the minimum length.
func mulSliceVec(c byte, dst, src []byte) {
	n := len(src)
	_ = dst[n-1]
	body := n &^ 31
	if body > 0 {
		mulAddVecAsm(&mulNibLo[c], &mulNibHi[c], &dst[0], &src[0], body)
	}
	if body < n {
		lc := log[c]
		for i := body; i < n; i++ {
			if s := src[i]; s != 0 {
				dst[i] ^= exp[lc+log[s]]
			}
		}
	}
}
