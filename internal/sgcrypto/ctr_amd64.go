//go:build amd64

package sgcrypto

import "stegfs/internal/cpux"

// hasFastCTR gates the assembly keystream kernel: the Sealer precomputes
// counter blocks in Go and encrypts them 8 at a time with AES-NI, which is
// both faster than stdlib cipher.NewCTR at block granularity and — unlike
// it — allocation-free, since no cipher.Stream object is constructed per
// block.
var hasFastCTR = cpux.HasAESNI

// encryptBlocks256Asm encrypts nblocks 16-byte blocks of buf in place (ECB)
// with the expanded AES-256 schedule at xk. Implemented in ctr_amd64.s.
//
//go:noescape
func encryptBlocks256Asm(xk *byte, buf *byte, nblocks int64)

// encryptBlocks256 encrypts len(buf)/16 blocks of buf in place. len(buf)
// must be a positive multiple of 16.
func encryptBlocks256(xk *[240]byte, buf []byte) {
	encryptBlocks256Asm(&xk[0], &buf[0], int64(len(buf)/16))
}

// ctrXor256Asm is the fused counter-mode kernel in ctr_amd64.s.
//
//go:noescape
func ctrXor256Asm(xk *byte, dst, src *byte, nblocks int64, hi, lo uint64)

// ctrXor256 computes dst = src XOR keystream for len(src)/16 counter blocks
// starting at (hi, lo). Lengths must be equal, positive multiples of 16.
func ctrXor256(xk *[240]byte, dst, src []byte, hi, lo uint64) {
	ctrXor256Asm(&xk[0], &dst[0], &src[0], int64(len(src)/16), hi, lo)
}
