package sgcrypto

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"testing"
)

// refCTR is the stdlib reference the fast path must match byte for byte:
// one cipher.NewCTR stream per block, exactly what Seal did before the
// assembly kernel existed. On-disk bytes written by older volumes were
// produced by this path, so equivalence here is a compatibility guarantee,
// not just a speedup check.
func refCTR(s *Sealer, blockNo int64, dst, src []byte) {
	iv := s.iv(blockNo)
	cipher.NewCTR(s.block, iv[:]).XORKeyStream(dst, src)
}

func testSealer(t testing.TB, nonce [16]byte) *Sealer {
	var key [KeyLen]byte
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	s, err := newSealer(&key, nonce)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExpandKeyMatchesStdlib(t *testing.T) {
	if !hasFastCTR {
		t.Skip("no fast CTR kernel on this platform")
	}
	var key [KeyLen]byte
	for i := range key {
		key[i] = byte(i * 17)
	}
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		t.Fatal(err)
	}
	var xk [240]byte
	expandKeyAES256(&key, &xk)
	// One ECB block through the kernel vs stdlib Encrypt.
	pt := []byte("0123456789abcdef")
	got := append([]byte(nil), pt...)
	encryptBlocks256(&xk, got)
	want := make([]byte, 16)
	blk.Encrypt(want, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("kernel ECB block = %x, want %x", got, want)
	}
}

func TestSealMatchesStdlibCTR(t *testing.T) {
	nonces := [][16]byte{
		{},
		{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12},
		// All-ones low half: blockNo XOR and counter increments carry into
		// the high half, the corner stdlib handles with its ripple loop.
		{1, 2, 3, 4, 5, 6, 7, 8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	}
	blockNos := []int64{0, 1, 2, 255, 1 << 20, 1<<62 - 1}
	sizes := []int{1, 15, 16, 17, 128, 1024, 4096, 8197}
	for ni, nonce := range nonces {
		s := testSealer(t, nonce)
		for _, no := range blockNos {
			for _, n := range sizes {
				src := make([]byte, n)
				for i := range src {
					src[i] = byte(i*13 + ni)
				}
				got := make([]byte, n)
				want := make([]byte, n)
				if err := s.Seal(no, got, src); err != nil {
					t.Fatal(err)
				}
				refCTR(s, no, want, src)
				if !bytes.Equal(got, want) {
					t.Fatalf("nonce %d blockNo %d n %d: Seal diverges from stdlib CTR", ni, no, n)
				}
				// Round trip through Open, in place.
				if err := s.Open(no, got, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, src) {
					t.Fatalf("nonce %d blockNo %d n %d: Open(Seal(x)) != x", ni, no, n)
				}
			}
		}
	}
}

func TestSealRangeMatchesPerBlockSeal(t *testing.T) {
	s := testSealer(t, [16]byte{9, 8, 7, 6, 5, 4, 3, 2, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xfe})
	for _, chunk := range []int{16, 512, 1024, 4096, 24} {
		for _, k := range []int{1, 2, 3, 7} {
			nos := make([]int64, k)
			for i := range nos {
				nos[i] = int64(i*i + 5)
			}
			src := make([]byte, chunk*k)
			for i := range src {
				src[i] = byte(i * 31)
			}
			got := make([]byte, len(src))
			want := make([]byte, len(src))
			if err := s.SealRange(nos, got, src); err != nil {
				t.Fatal(err)
			}
			for i, no := range nos {
				if err := s.Seal(no, want[i*chunk:(i+1)*chunk], src[i*chunk:(i+1)*chunk]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("chunk %d k %d: SealRange diverges from per-block Seal", chunk, k)
			}
			// In-place OpenRange round trip.
			if err := s.OpenRange(nos, got, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, src) {
				t.Fatalf("chunk %d k %d: OpenRange(SealRange(x)) != x", chunk, k)
			}
		}
	}
}

func TestSealRangeArgumentErrors(t *testing.T) {
	s := testSealer(t, [16]byte{})
	if err := s.SealRange([]int64{1}, make([]byte, 8), make([]byte, 16)); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if err := s.SealRange(nil, make([]byte, 16), make([]byte, 16)); err == nil {
		t.Fatal("empty nos with nonempty data not rejected")
	}
	if err := s.SealRange([]int64{1, 2, 3}, make([]byte, 16), make([]byte, 16)); err == nil {
		t.Fatal("non-multiple length not rejected")
	}
	if err := s.SealRange(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzSealEquivalence fuzzes data, block number and nonce through the fast
// path against the stdlib stream.
func FuzzSealEquivalence(f *testing.F) {
	f.Add([]byte("hello world, this is a block"), int64(42), []byte("nonce seed"))
	f.Add(make([]byte, 100), int64(0), []byte{0xff})
	f.Fuzz(func(t *testing.T, src []byte, blockNo int64, nonceSeed []byte) {
		if len(src) == 0 {
			return
		}
		var nonce [16]byte
		copy(nonce[:], nonceSeed)
		s := testSealer(t, nonce)
		got := make([]byte, len(src))
		want := make([]byte, len(src))
		if err := s.Seal(blockNo, got, src); err != nil {
			t.Fatal(err)
		}
		refCTR(s, blockNo, want, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("Seal diverges from stdlib CTR (blockNo=%d, n=%d)", blockNo, len(src))
		}
	})
}

func TestSealerAllocFree(t *testing.T) {
	if !hasFastCTR {
		t.Skip("fallback path allocates a stream per call by design")
	}
	s := testSealer(t, [16]byte{1})
	buf := make([]byte, 4096)
	nos := []int64{3, 9, 27, 81}
	span := make([]byte, 4*4096)
	if n := testing.AllocsPerRun(50, func() {
		_ = s.Seal(7, buf, buf)
		_ = s.SealRange(nos, span, span)
	}); n != 0 {
		t.Fatalf("sealing allocated %v times per op, want 0", n)
	}
}

func BenchmarkSeal(b *testing.B) {
	s := testSealer(b, [16]byte{1, 2, 3})
	for _, n := range []int{1024, 4096} {
		buf := make([]byte, n)
		b.Run(fmt.Sprintf("block/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = s.Seal(int64(i), buf, buf)
			}
		})
		b.Run(fmt.Sprintf("stdlib/%d", n), func(b *testing.B) {
			b.SetBytes(int64(n))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				refCTR(s, int64(i), buf, buf)
			}
		})
	}
	span := make([]byte, 16*4096)
	nos := make([]int64, 16)
	for i := range nos {
		nos[i] = int64(i * 3)
	}
	b.Run("range/16x4096", func(b *testing.B) {
		b.SetBytes(int64(len(span)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = s.SealRange(nos, span, span)
		}
	})
}

func BenchmarkFillerFill(b *testing.B) {
	f := NewRandomFiller([]byte("bench"))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Fill(buf)
	}
}
