// Package sgcrypto collects the cryptographic building blocks of StegFS:
//
//   - the SHA-256 chain pseudorandom block-number generator used to locate
//     hidden-file headers (paper §3.1 / §4: "the seed is recursively hashed
//     to generate the pseudorandom numbers");
//   - the per-file AES block sealer that makes hidden blocks
//     indistinguishable from random/abandoned blocks;
//   - file signatures H(name, key) that confirm a located header;
//   - RSA wrapping of (name, FAK) entry files for the sharing protocol of
//     Figure 4;
//   - a deterministic random filler for format-time block initialization.
//
// All primitives come from the Go standard library (crypto/aes, crypto/sha256,
// crypto/rsa), mirroring the paper's AES [5] and SHA [6] choices.
package sgcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// SignatureLen is the length in bytes of a hidden-file signature. The paper
// requires "a long string" to avoid false matches; 32 bytes (SHA-256) gives a
// 2^-256 false-match probability.
const SignatureLen = sha256.Size

// KeyLen is the AES key length used for hidden-file block encryption.
const KeyLen = 32 // AES-256

// PRBG is the pseudorandom block-number generator: a SHA-256 hash chain
// seeded from H(physical name, access key). Successive calls to Next yield
// the candidate block numbers for a hidden object's header.
type PRBG struct {
	state [sha256.Size]byte
	n     int64 // modulus: block numbers are in [0, n)
}

// NewPRBG creates a generator over block numbers [0, numBlocks) seeded from
// seed. The same (seed, numBlocks) always produces the same sequence.
func NewPRBG(seed []byte, numBlocks int64) *PRBG {
	if numBlocks <= 0 {
		numBlocks = 1
	}
	return &PRBG{state: sha256.Sum256(seed), n: numBlocks}
}

// Next advances the hash chain and returns the next candidate block number.
func (g *PRBG) Next() int64 {
	g.state = sha256.Sum256(g.state[:])
	v := binary.BigEndian.Uint64(g.state[:8])
	return int64(v % uint64(g.n))
}

// HeaderSeed derives the PRBG seed for locating a hidden object's header
// from its physical name and file access key (paper §3.1: "a hash value
// computed from the file name and access key").
func HeaderSeed(physName string, fak []byte) []byte {
	h := sha256.New()
	h.Write([]byte("stegfs.header.seed\x00"))
	writeLenPrefixed(h, []byte(physName))
	writeLenPrefixed(h, fak)
	return h.Sum(nil)
}

// Signature computes the hidden-file signature stored in the header: a
// one-way hash of the physical name and access key, so an attacker cannot
// infer the key from name + signature.
func Signature(physName string, fak []byte) [SignatureLen]byte {
	h := sha256.New()
	h.Write([]byte("stegfs.signature\x00"))
	writeLenPrefixed(h, []byte(physName))
	writeLenPrefixed(h, fak)
	var sig [SignatureLen]byte
	copy(sig[:], h.Sum(nil))
	return sig
}

// DeriveKey derives the AES-256 block-encryption key for a hidden object
// from its file access key.
func DeriveKey(fak []byte) [KeyLen]byte {
	h := sha256.New()
	h.Write([]byte("stegfs.blockkey\x00"))
	writeLenPrefixed(h, fak)
	var k [KeyLen]byte
	copy(k[:], h.Sum(nil))
	return k
}

// DeriveNonce derives the per-file 128-bit IV base mixed with the block
// number to form each block's CTR IV.
func DeriveNonce(physName string, fak []byte) [16]byte {
	h := sha256.New()
	h.Write([]byte("stegfs.nonce\x00"))
	writeLenPrefixed(h, []byte(physName))
	writeLenPrefixed(h, fak)
	var iv [16]byte
	copy(iv[:], h.Sum(nil))
	return iv
}

func writeLenPrefixed(w io.Writer, b []byte) {
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(b)))
	w.Write(l[:])
	w.Write(b)
}

// Sealer encrypts and decrypts the fixed-size blocks of one hidden object
// with AES-256 in CTR mode. The IV for block i is nonce XOR i, so every
// block of every file uses a distinct keystream and ciphertext blocks are
// indistinguishable from uniformly random bytes.
//
// On amd64 with AES-NI the sealer carries an expanded key schedule and runs
// a fused counter-mode kernel: counters are materialized, encrypted 8 at a
// time and XORed with the payload in a single assembly pass — byte-identical
// to stdlib CTR (the stdlib stream increments the whole 16-byte counter
// big-endian with carry, mirrored here in the hi/lo split) but with no
// per-call stream allocation and no keystream buffer traffic.
type Sealer struct {
	block cipher.Block
	nonce [16]byte

	// fast-path state (valid when fast is true)
	fast bool
	xk   [240]byte
	ivHi uint64 // big-endian high half of nonce
	ivLo uint64 // big-endian low half of nonce; block IVs XOR blockNo in here
}

// NewSealer builds a sealer for the hidden object identified by (physName,
// fak).
func NewSealer(physName string, fak []byte) (*Sealer, error) {
	key := DeriveKey(fak)
	return newSealer(&key, DeriveNonce(physName, fak))
}

// newSealer is the inner constructor, split out so tests can pin arbitrary
// nonces (e.g. all-0xff, to exercise counter carry into the high half).
func newSealer(key *[KeyLen]byte, nonce [16]byte) (*Sealer, error) {
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("sgcrypto: %w", err)
	}
	s := &Sealer{block: blk, nonce: nonce}
	if hasFastCTR {
		expandKeyAES256(key, &s.xk)
		s.ivHi = binary.BigEndian.Uint64(nonce[:8])
		s.ivLo = binary.BigEndian.Uint64(nonce[8:])
		s.fast = true
	}
	return s, nil
}

func (s *Sealer) iv(blockNo int64) [16]byte {
	iv := s.nonce
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(blockNo))
	for i := 0; i < 8; i++ {
		iv[8+i] ^= b[i]
	}
	return iv
}

// ctrXorFast runs the fused CTR kernel over dst/src for the counter
// starting at (hi, lo): the 16-byte-aligned body goes through the assembly
// kernel in one pass (counters materialized, encrypted and XORed without a
// keystream buffer); a trailing partial block encrypts one counter on the
// stack.
func (s *Sealer) ctrXorFast(dst, src []byte, hi, lo uint64) {
	full := len(src) &^ 15
	if full > 0 {
		ctrXor256(&s.xk, dst[:full], src[:full], hi, lo)
	}
	if rem := len(src) - full; rem > 0 {
		lo2 := lo + uint64(full/16)
		hi2 := hi
		if lo2 < lo {
			hi2++
		}
		var ctr [16]byte
		binary.BigEndian.PutUint64(ctr[:8], hi2)
		binary.BigEndian.PutUint64(ctr[8:], lo2)
		encryptBlocks256(&s.xk, ctr[:])
		subtle.XORBytes(dst[full:], src[full:], ctr[:rem])
	}
}

// Seal encrypts src (one disk block belonging to logical block blockNo) into
// dst. dst and src must have equal length and may alias exactly.
func (s *Sealer) Seal(blockNo int64, dst, src []byte) error {
	if len(dst) != len(src) {
		return errors.New("sgcrypto: Seal length mismatch")
	}
	if len(src) == 0 {
		return nil
	}
	if !s.fast {
		iv := s.iv(blockNo)
		cipher.NewCTR(s.block, iv[:]).XORKeyStream(dst, src)
		return nil
	}
	s.ctrXorFast(dst, src, s.ivHi, s.ivLo^uint64(blockNo))
	return nil
}

// Open decrypts src (one disk block) into dst. CTR mode is symmetric, so
// this is the same keystream XOR.
func (s *Sealer) Open(blockNo int64, dst, src []byte) error {
	return s.Seal(blockNo, dst, src)
}

// SealRange encrypts len(nos) equal-sized consecutive chunks of src into
// dst; chunk i belongs to logical block nos[i]. It produces exactly the
// bytes of one Seal call per chunk, restarting the counter at each chunk's
// IV, with one fused-kernel call per chunk (each chunk is many AES blocks,
// so the 8-way pipeline stays full). dst and src must have equal length, a
// multiple of len(nos), and may alias exactly.
func (s *Sealer) SealRange(nos []int64, dst, src []byte) error {
	if len(dst) != len(src) {
		return errors.New("sgcrypto: SealRange length mismatch")
	}
	if len(nos) == 0 {
		if len(src) != 0 {
			return errors.New("sgcrypto: SealRange with no block numbers")
		}
		return nil
	}
	if len(src)%len(nos) != 0 {
		return errors.New("sgcrypto: SealRange length not a multiple of chunk count")
	}
	chunk := len(src) / len(nos)
	if !s.fast {
		for i, no := range nos {
			if err := s.Seal(no, dst[i*chunk:(i+1)*chunk], src[i*chunk:(i+1)*chunk]); err != nil {
				return err
			}
		}
		return nil
	}
	for i, no := range nos {
		s.ctrXorFast(dst[i*chunk:(i+1)*chunk], src[i*chunk:(i+1)*chunk], s.ivHi, s.ivLo^uint64(no))
	}
	return nil
}

// OpenRange decrypts len(nos) equal-sized chunks; the CTR symmetry makes it
// the same operation as SealRange.
func (s *Sealer) OpenRange(nos []int64, dst, src []byte) error {
	return s.SealRange(nos, dst, src)
}

// RandomFiller produces a deterministic stream of uniformly-random-looking
// bytes (an AES-CTR keystream) for initializing freshly formatted volumes,
// abandoned blocks and dummy hidden files. Determinism keeps experiments
// repeatable; indistinguishability from true randomness is exactly the
// property format-time filling needs.
type RandomFiller struct {
	stream cipher.Stream
}

// NewRandomFiller creates a filler whose output is fixed by seed.
func NewRandomFiller(seed []byte) *RandomFiller {
	key := sha256.Sum256(append([]byte("stegfs.filler\x00"), seed...))
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		// aes.NewCipher only fails on bad key sizes; 32 bytes is valid.
		panic(err)
	}
	var iv [16]byte
	return &RandomFiller{stream: cipher.NewCTR(blk, iv[:])}
}

// Fill overwrites buf with the next bytes of the pseudorandom stream.
func (f *RandomFiller) Fill(buf []byte) {
	clear(buf)
	f.stream.XORKeyStream(buf, buf)
}

// --- Sharing protocol (Figure 4) -------------------------------------------

// RSAKeyBits is the modulus size for recipient key pairs in the sharing
// protocol.
const RSAKeyBits = 2048

// GenerateKeyPair creates an RSA key pair for a sharing recipient.
func GenerateKeyPair() (*rsa.PrivateKey, error) {
	return rsa.GenerateKey(rand.Reader, RSAKeyBits)
}

// WrapEntry encrypts an entry-file payload (the serialized (name, FAK)
// record) with the recipient's public key, producing the ciphertext the
// owner sends, e.g. via email (paper §3.2). Payloads longer than one RSA-OAEP
// block are chunked.
func WrapEntry(pub *rsa.PublicKey, payload []byte) ([]byte, error) {
	maxChunk := pub.Size() - 2*sha256.Size - 2
	if maxChunk <= 0 {
		return nil, errors.New("sgcrypto: RSA key too small")
	}
	var out []byte
	for off := 0; off < len(payload) || off == 0; off += maxChunk {
		end := off + maxChunk
		if end > len(payload) {
			end = len(payload)
		}
		ct, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, payload[off:end], []byte("stegfs.entry"))
		if err != nil {
			return nil, fmt.Errorf("sgcrypto: wrap entry: %w", err)
		}
		out = append(out, ct...)
		if end == len(payload) {
			break
		}
	}
	return out, nil
}

// UnwrapEntry decrypts an entry file produced by WrapEntry with the
// recipient's private key.
func UnwrapEntry(priv *rsa.PrivateKey, ct []byte) ([]byte, error) {
	size := priv.Size()
	if len(ct) == 0 || len(ct)%size != 0 {
		return nil, fmt.Errorf("sgcrypto: entry ciphertext length %d not a multiple of %d", len(ct), size)
	}
	var out []byte
	for off := 0; off < len(ct); off += size {
		pt, err := rsa.DecryptOAEP(sha256.New(), nil, priv, ct[off:off+size], []byte("stegfs.entry"))
		if err != nil {
			return nil, fmt.Errorf("sgcrypto: unwrap entry: %w", err)
		}
		out = append(out, pt...)
	}
	return out, nil
}

// NewFAK generates a fresh random file access key (paper §3.2: each hidden
// file is secured with a randomly generated FAK so it can be shared without
// exposing the owner's UAK).
func NewFAK() ([]byte, error) {
	fak := make([]byte, 32)
	if _, err := rand.Read(fak); err != nil {
		return nil, fmt.Errorf("sgcrypto: new FAK: %w", err)
	}
	return fak, nil
}
