package sgcrypto

import (
	"encoding/binary"

	"stegfs/internal/gf256"
)

// This file holds the portable half of the fast CTR path: AES-256 key
// expansion into the flat 240-byte schedule the assembly keystream kernel
// consumes (15 round keys x 16 bytes, each FIPS-197 word serialized
// big-endian so a plain 16-byte load yields the round key in AESENC order).
// Expansion runs once per Sealer; the per-block work is all in the kernel.

// aesSbox is the FIPS-197 S-box, built from the field inverse and the affine
// transform rather than pasted as a table: sbox(x) = A(inv(x)) ^ 0x63 with
// A(b) = b ^ rotl1(b) ^ rotl2(b) ^ rotl3(b) ^ rotl4(b).
var aesSbox [256]byte

func init() {
	rotl8 := func(b byte, n uint) byte { return b<<n | b>>(8-n) }
	for x := 0; x < 256; x++ {
		var inv byte
		if x != 0 {
			inv = gf256.Inv(byte(x))
		}
		aesSbox[x] = inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63
	}
}

func subWord(w uint32) uint32 {
	return uint32(aesSbox[w>>24])<<24 |
		uint32(aesSbox[w>>16&0xff])<<16 |
		uint32(aesSbox[w>>8&0xff])<<8 |
		uint32(aesSbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

// aesRcon holds x^(i-1) round constants for the seven key-schedule rounds
// AES-256 uses (Nk=8, Nr=14: 60 words, a subWord/rotWord step every 8).
var aesRcon = [8]uint32{0, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40}

// expandKeyAES256 expands a 32-byte key into the 240-byte encryption
// schedule. Decryption never needs the inverse schedule here: CTR only ever
// runs the forward cipher.
func expandKeyAES256(key *[KeyLen]byte, xk *[240]byte) {
	var w [60]uint32
	for i := 0; i < 8; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	for i := 8; i < 60; i++ {
		t := w[i-1]
		switch i % 8 {
		case 0:
			t = subWord(rotWord(t)) ^ aesRcon[i/8]<<24
		case 4:
			t = subWord(t)
		}
		w[i] = w[i-8] ^ t
	}
	for i, v := range w {
		binary.BigEndian.PutUint32(xk[4*i:], v)
	}
}
