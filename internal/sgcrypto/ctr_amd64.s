//go:build amd64

#include "textflag.h"

// One middle round (rounds 1..13) applied to eight blocks: the round key is
// reloaded from the schedule each round because 15 round keys plus 8 data
// blocks exceed the 16 XMM registers; the load is hoisted once per round
// and AESENC throughput (not the load) dominates.
#define ENC8(off) \
	MOVUPS off(AX), X8 \
	AESENC X8, X0      \
	AESENC X8, X1      \
	AESENC X8, X2      \
	AESENC X8, X3      \
	AESENC X8, X4      \
	AESENC X8, X5      \
	AESENC X8, X6      \
	AESENC X8, X7

#define ENC1(off) \
	MOVUPS off(AX), X8 \
	AESENC X8, X0

// Materialize the next big-endian 128-bit counter block into xreg and
// advance the (R8 hi, R9 lo) counter pair. BSWAP turns the native-endian
// GPR halves into the byte order stdlib CTR writes, so the encrypted
// keystream matches cipher.NewCTR bit for bit.
#define CTRBLK(xreg) \
	MOVQ   R8, R10        \
	MOVQ   R9, R11        \
	BSWAPQ R10            \
	BSWAPQ R11            \
	MOVQ   R10, xreg      \
	PINSRQ $1, R11, xreg  \
	ADDQ   $1, R9         \
	ADCQ   $0, R8

// func encryptBlocks256Asm(xk *byte, buf *byte, nblocks int64)
//
// AES-256 ECB over nblocks 16-byte blocks of buf, in place. Eight blocks
// are pipelined per iteration so the 4-cycle AESENC latency overlaps; the
// tail runs one block at a time.
TEXT ·encryptBlocks256Asm(SB), NOSPLIT, $0-24
	MOVQ xk+0(FP), AX
	MOVQ buf+8(FP), DI
	MOVQ nblocks+16(FP), CX

loop8:
	CMPQ CX, $8
	JB   loop1
	MOVUPS 0(DI), X0
	MOVUPS 16(DI), X1
	MOVUPS 32(DI), X2
	MOVUPS 48(DI), X3
	MOVUPS 64(DI), X4
	MOVUPS 80(DI), X5
	MOVUPS 96(DI), X6
	MOVUPS 112(DI), X7
	MOVUPS 0(AX), X8
	PXOR   X8, X0
	PXOR   X8, X1
	PXOR   X8, X2
	PXOR   X8, X3
	PXOR   X8, X4
	PXOR   X8, X5
	PXOR   X8, X6
	PXOR   X8, X7
	ENC8(16)
	ENC8(32)
	ENC8(48)
	ENC8(64)
	ENC8(80)
	ENC8(96)
	ENC8(112)
	ENC8(128)
	ENC8(144)
	ENC8(160)
	ENC8(176)
	ENC8(192)
	ENC8(208)
	MOVUPS     224(AX), X8
	AESENCLAST X8, X0
	AESENCLAST X8, X1
	AESENCLAST X8, X2
	AESENCLAST X8, X3
	AESENCLAST X8, X4
	AESENCLAST X8, X5
	AESENCLAST X8, X6
	AESENCLAST X8, X7
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	MOVUPS X4, 64(DI)
	MOVUPS X5, 80(DI)
	MOVUPS X6, 96(DI)
	MOVUPS X7, 112(DI)
	ADDQ   $128, DI
	SUBQ   $8, CX
	JMP    loop8

loop1:
	TESTQ CX, CX
	JZ    done
	MOVUPS 0(DI), X0
	MOVUPS 0(AX), X8
	PXOR   X8, X0
	ENC1(16)
	ENC1(32)
	ENC1(48)
	ENC1(64)
	ENC1(80)
	ENC1(96)
	ENC1(112)
	ENC1(128)
	ENC1(144)
	ENC1(160)
	ENC1(176)
	ENC1(192)
	ENC1(208)
	MOVUPS     224(AX), X8
	AESENCLAST X8, X0
	MOVUPS X0, 0(DI)
	ADDQ   $16, DI
	DECQ   CX
	JMP    loop1

done:
	RET

// func ctrXor256Asm(xk *byte, dst, src *byte, nblocks int64, hi, lo uint64)
//
// The fused CTR kernel: dst[i] = src[i] XOR AES256(counter_i) over nblocks
// 16-byte blocks, where the 128-bit counter starts at (hi, lo) and
// increments big-endian with carry. Counter materialization, the cipher and
// the payload XOR all happen in one pass, so no keystream buffer is ever
// written to memory. dst and src may be equal (in-place).
TEXT ·ctrXor256Asm(SB), NOSPLIT, $0-48
	MOVQ xk+0(FP), AX
	MOVQ dst+8(FP), DI
	MOVQ src+16(FP), SI
	MOVQ nblocks+24(FP), CX
	MOVQ hi+32(FP), R8
	MOVQ lo+40(FP), R9

ctrloop8:
	CMPQ CX, $8
	JB   ctrloop1
	CTRBLK(X0)
	CTRBLK(X1)
	CTRBLK(X2)
	CTRBLK(X3)
	CTRBLK(X4)
	CTRBLK(X5)
	CTRBLK(X6)
	CTRBLK(X7)
	MOVUPS 0(AX), X8
	PXOR   X8, X0
	PXOR   X8, X1
	PXOR   X8, X2
	PXOR   X8, X3
	PXOR   X8, X4
	PXOR   X8, X5
	PXOR   X8, X6
	PXOR   X8, X7
	ENC8(16)
	ENC8(32)
	ENC8(48)
	ENC8(64)
	ENC8(80)
	ENC8(96)
	ENC8(112)
	ENC8(128)
	ENC8(144)
	ENC8(160)
	ENC8(176)
	ENC8(192)
	ENC8(208)
	MOVUPS     224(AX), X8
	AESENCLAST X8, X0
	AESENCLAST X8, X1
	AESENCLAST X8, X2
	AESENCLAST X8, X3
	AESENCLAST X8, X4
	AESENCLAST X8, X5
	AESENCLAST X8, X6
	AESENCLAST X8, X7
	MOVUPS 0(SI), X8
	PXOR   X8, X0
	MOVUPS 16(SI), X8
	PXOR   X8, X1
	MOVUPS 32(SI), X8
	PXOR   X8, X2
	MOVUPS 48(SI), X8
	PXOR   X8, X3
	MOVUPS 64(SI), X8
	PXOR   X8, X4
	MOVUPS 80(SI), X8
	PXOR   X8, X5
	MOVUPS 96(SI), X8
	PXOR   X8, X6
	MOVUPS 112(SI), X8
	PXOR   X8, X7
	MOVUPS X0, 0(DI)
	MOVUPS X1, 16(DI)
	MOVUPS X2, 32(DI)
	MOVUPS X3, 48(DI)
	MOVUPS X4, 64(DI)
	MOVUPS X5, 80(DI)
	MOVUPS X6, 96(DI)
	MOVUPS X7, 112(DI)
	ADDQ   $128, SI
	ADDQ   $128, DI
	SUBQ   $8, CX
	JMP    ctrloop8

ctrloop1:
	TESTQ CX, CX
	JZ    ctrdone
	CTRBLK(X0)
	MOVUPS 0(AX), X8
	PXOR   X8, X0
	ENC1(16)
	ENC1(32)
	ENC1(48)
	ENC1(64)
	ENC1(80)
	ENC1(96)
	ENC1(112)
	ENC1(128)
	ENC1(144)
	ENC1(160)
	ENC1(176)
	ENC1(192)
	ENC1(208)
	MOVUPS     224(AX), X8
	AESENCLAST X8, X0
	MOVUPS 0(SI), X8
	PXOR   X8, X0
	MOVUPS X0, 0(DI)
	ADDQ   $16, SI
	ADDQ   $16, DI
	DECQ   CX
	JMP    ctrloop1

ctrdone:
	RET
