package sgcrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPRBGDeterministic(t *testing.T) {
	a := NewPRBG([]byte("seed"), 1000)
	b := NewPRBG([]byte("seed"), 1000)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestPRBGSeedSensitivity(t *testing.T) {
	a := NewPRBG([]byte("seed-a"), 1<<20)
	b := NewPRBG([]byte("seed-b"), 1<<20)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 3 {
		t.Fatalf("different seeds collide %d/100 times", same)
	}
}

func TestPRBGRange(t *testing.T) {
	for _, n := range []int64{1, 2, 7, 1000, 1 << 30} {
		g := NewPRBG([]byte("x"), n)
		for i := 0; i < 200; i++ {
			v := g.Next()
			if v < 0 || v >= n {
				t.Fatalf("n=%d: value %d out of range", n, v)
			}
		}
	}
}

func TestPRBGCoverage(t *testing.T) {
	// Over a small modulus the chain must reach most blocks quickly — the
	// header search depends on it.
	g := NewPRBG([]byte("cover"), 64)
	seen := make(map[int64]bool)
	for i := 0; i < 2000 && len(seen) < 64; i++ {
		seen[g.Next()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("chain reached only %d of 64 blocks", len(seen))
	}
}

func TestSignatureProperties(t *testing.T) {
	s1 := Signature("alice/doc", []byte("key"))
	s2 := Signature("alice/doc", []byte("key"))
	if s1 != s2 {
		t.Fatal("signature not deterministic")
	}
	if s1 == Signature("alice/doc", []byte("other")) {
		t.Fatal("signature ignores the key")
	}
	if s1 == Signature("alice/doc2", []byte("key")) {
		t.Fatal("signature ignores the name")
	}
	// Length-prefixing prevents boundary ambiguity: ("ab","c") != ("a","bc").
	if Signature("ab", []byte("c")) == Signature("a", []byte("bc")) {
		t.Fatal("signature has a concatenation ambiguity")
	}
}

func TestDeriveKeyDistinctFromSignature(t *testing.T) {
	k := DeriveKey([]byte("key"))
	sig := Signature("", []byte("key"))
	if bytes.Equal(k[:], sig[:]) {
		t.Fatal("key derivation and signature must use different domains")
	}
}

func TestSealerRoundTrip(t *testing.T) {
	s, err := NewSealer("alice/doc", []byte("fak"))
	if err != nil {
		t.Fatal(err)
	}
	pt := bytes.Repeat([]byte("hello world "), 40)
	ct := make([]byte, len(pt))
	if err := s.Seal(7, ct, pt); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ct, pt) {
		t.Fatal("ciphertext equals plaintext")
	}
	got := make([]byte, len(ct))
	if err := s.Open(7, got, ct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("open(seal(x)) != x")
	}
}

func TestSealerBlockNumberMatters(t *testing.T) {
	s, _ := NewSealer("n", []byte("k"))
	pt := make([]byte, 64)
	c1 := make([]byte, 64)
	c2 := make([]byte, 64)
	_ = s.Seal(1, c1, pt)
	_ = s.Seal(2, c2, pt)
	if bytes.Equal(c1, c2) {
		t.Fatal("same keystream for different blocks (IV reuse)")
	}
}

func TestSealerKeySeparation(t *testing.T) {
	s1, _ := NewSealer("n", []byte("k1"))
	s2, _ := NewSealer("n", []byte("k2"))
	pt := make([]byte, 64)
	c1 := make([]byte, 64)
	c2 := make([]byte, 64)
	_ = s1.Seal(1, c1, pt)
	_ = s2.Seal(1, c2, pt)
	if bytes.Equal(c1, c2) {
		t.Fatal("different keys produce identical ciphertext")
	}
	// Opening with the wrong sealer yields garbage, not plaintext.
	got := make([]byte, 64)
	_ = s2.Open(1, got, c1)
	if bytes.Equal(got, pt) {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestSealerInPlace(t *testing.T) {
	s, _ := NewSealer("n", []byte("k"))
	pt := bytes.Repeat([]byte{0x42}, 128)
	buf := append([]byte(nil), pt...)
	if err := s.Seal(3, buf, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, pt) {
		t.Fatal("in-place seal did nothing")
	}
	if err := s.Open(3, buf, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pt) {
		t.Fatal("in-place round trip failed")
	}
}

func TestSealerLengthMismatch(t *testing.T) {
	s, _ := NewSealer("n", []byte("k"))
	if err := s.Seal(0, make([]byte, 10), make([]byte, 20)); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestRandomFillerDeterministic(t *testing.T) {
	a := NewRandomFiller([]byte("s"))
	b := NewRandomFiller([]byte("s"))
	ba := make([]byte, 1024)
	bb := make([]byte, 1024)
	a.Fill(ba)
	b.Fill(bb)
	if !bytes.Equal(ba, bb) {
		t.Fatal("same seed, different stream")
	}
	// Stream advances: the next fill differs from the first.
	a.Fill(bb)
	if bytes.Equal(ba, bb) {
		t.Fatal("stream did not advance")
	}
}

func TestRandomFillerLooksRandom(t *testing.T) {
	f := NewRandomFiller([]byte("entropy"))
	buf := make([]byte, 1<<16)
	f.Fill(buf)
	var hist [256]int
	for _, b := range buf {
		hist[b]++
	}
	expected := float64(len(buf)) / 256
	var chi float64
	for _, c := range hist {
		d := float64(c) - expected
		chi += d * d / expected
	}
	// 255 dof: chi < 400 with overwhelming probability for uniform bytes.
	if chi > 400 {
		t.Fatalf("filler output not uniform: chi2 = %.1f", chi)
	}
}

func TestWrapUnwrapEntry(t *testing.T) {
	priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("name=budget.xls fak=0123456789abcdef")
	ct, err := WrapEntry(&priv.PublicKey, payload)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(ct, payload[:8]) {
		t.Fatal("ciphertext leaks plaintext")
	}
	got, err := UnwrapEntry(priv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("unwrap(wrap(x)) != x")
	}
}

func TestWrapEntryMultiChunk(t *testing.T) {
	priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("large entry payload "), 40) // > one OAEP block
	ct, err := WrapEntry(&priv.PublicKey, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnwrapEntry(priv, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("multi-chunk round trip failed")
	}
}

func TestUnwrapEntryWrongKey(t *testing.T) {
	priv1, _ := GenerateKeyPair()
	priv2, _ := GenerateKeyPair()
	ct, err := WrapEntry(&priv1.PublicKey, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnwrapEntry(priv2, ct); err == nil {
		t.Fatal("wrong private key should fail to unwrap")
	}
	if _, err := UnwrapEntry(priv1, ct[:10]); err == nil {
		t.Fatal("truncated ciphertext should fail")
	}
}

func TestNewFAKUnique(t *testing.T) {
	a, err := NewFAK()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFAK()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two fresh FAKs are identical")
	}
	if len(a) != 32 {
		t.Fatalf("FAK length %d, want 32", len(a))
	}
}

// TestPropertySealRoundTrip: seal/open is the identity for arbitrary
// payloads, names, keys and block numbers.
func TestPropertySealRoundTrip(t *testing.T) {
	f := func(name string, key []byte, blockNo int64, payload []byte) bool {
		s, err := NewSealer(name, key)
		if err != nil {
			return false
		}
		ct := make([]byte, len(payload))
		if err := s.Seal(blockNo, ct, payload); err != nil {
			return false
		}
		got := make([]byte, len(ct))
		if err := s.Open(blockNo, got, ct); err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHeaderSeedInjective-ish: distinct (name, key) pairs yield
// distinct seeds and signatures.
func TestPropertyDomainSeparation(t *testing.T) {
	f := func(n1, n2 string, k1, k2 []byte) bool {
		if n1 == n2 && bytes.Equal(k1, k2) {
			return true // identical inputs may collide, trivially
		}
		seedEq := bytes.Equal(HeaderSeed(n1, k1), HeaderSeed(n2, k2))
		sigA, sigB := Signature(n1, k1), Signature(n2, k2)
		return !seedEq && sigA != sigB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
