//go:build !amd64

package sgcrypto

// hasFastCTR is false off amd64; Seal and SealRange fall back to stdlib
// cipher.NewCTR per block, which is correct everywhere but allocates a
// stream object per call.
const hasFastCTR = false

// encryptBlocks256 is never called when hasFastCTR is false.
func encryptBlocks256(xk *[240]byte, buf []byte) {
	panic("sgcrypto: no AES block kernel on this architecture")
}

// ctrXor256 is never called when hasFastCTR is false.
func ctrXor256(xk *[240]byte, dst, src []byte, hi, lo uint64) {
	panic("sgcrypto: no CTR kernel on this architecture")
}
