// Package load type-checks Go packages for the static-analysis tools in
// this repository using only the standard library.
//
// The usual foundation for a checker like lockcheck is
// golang.org/x/tools/go/analysis + go/packages, but this module is
// deliberately dependency-free, so load reimplements the small slice it
// needs: `go list -e -json -deps` enumerates the requested packages and
// their full dependency closure in topological order, and go/parser +
// go/types type-check everything from source. Standard-library packages are
// checked with IgnoreFuncBodies (the analyzers only need their type
// signatures), so a whole-module load stays in the low seconds.
//
// Loading the whole program in one process means cross-package analysis is
// a map lookup instead of the analysis.Fact export/import protocol: every
// types.Object from every dependency is live at once, so an annotation on
// an interface method in internal/vdisk is directly visible while checking
// call sites in internal/blockcache.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package.
type Package struct {
	Path   string // import path
	Dir    string
	Target bool // named by the load patterns (vs. a dependency)
	Std    bool // standard-library dependency (bodies not type-checked)

	Fset  *token.FileSet // shared across all packages of one load
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors holds type-checker errors for target packages. Analyzers
	// should refuse to run on packages that do not type-check.
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// Loader loads and caches type-checked packages. A Loader is not safe for
// concurrent use.
type Loader struct {
	Fset   *token.FileSet
	dir    string              // module directory go list runs in
	listed map[string]*listPkg // import path -> metadata
	extra  map[string]string   // import path -> dir, for out-of-module fixtures
	pkgs   map[string]*Package
	types  map[string]*types.Package
}

// NewLoader returns a loader rooted at the module directory dir (where
// `go list` is run).
func NewLoader(dir string) *Loader {
	return &Loader{
		Fset:  token.NewFileSet(),
		dir:   dir,
		extra: make(map[string]string),
		pkgs:  make(map[string]*Package),
		types: map[string]*types.Package{"unsafe": types.Unsafe},
	}
}

// AddFixture registers an out-of-module package: import path -> directory.
// Fixture packages are always loaded with function bodies and marked Target.
func (l *Loader) AddFixture(importPath, dir string) { l.extra[importPath] = dir }

// goList runs `go list -e -json -deps` for patterns and merges the results
// into l.listed.
func (l *Loader) goList(patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	// Cgo-free loading: go list then reports pure-Go file sets for packages
	// like net that would otherwise include cgo-generated sources the
	// type-checker cannot see.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	if l.listed == nil {
		l.listed = make(map[string]*listPkg)
	}
	var roots []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Error != nil && p.Standard {
			continue
		}
		l.listed[p.ImportPath] = p
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	return roots, nil
}

// Patterns loads the packages matching the go list patterns (e.g. "./...")
// plus their dependency closure, and returns the matched target packages
// sorted by import path.
func (l *Loader) Patterns(patterns ...string) ([]*Package, error) {
	roots, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, path := range roots {
		// Packages with no non-test Go files (a test-only module root, say)
		// have nothing for the analyzers to look at.
		if lp := l.listed[path]; lp != nil && len(lp.GoFiles) == 0 {
			continue
		}
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		p.Target = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Fixtures loads the registered fixture packages named by importPaths.
// Imports resolve against other fixtures first, then against the module /
// standard library via go list.
func (l *Loader) Fixtures(importPaths ...string) ([]*Package, error) {
	var out []*Package
	for _, path := range importPaths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		p.Target = true
		out = append(out, p)
	}
	return out, nil
}

// Loaded returns every package loaded so far — targets and dependencies —
// sorted by import path. Analyzers use this to collect annotations from the
// whole in-memory program, not just the packages being diagnosed.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Import implements types.Importer so the type-checker can pull in
// dependencies on demand.
func (l *Loader) Import(path string) (*types.Package, error) {
	if tp, ok := l.types[path]; ok && tp != nil {
		return tp, nil
	}
	p, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

// load type-checks one package (and, recursively, its imports).
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, std, full, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(path, dir, full)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Std: std, Fset: l.Fset, Files: files}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:         importerFor(l, dir),
		IgnoreFuncBodies: std,
		Error: func(err error) {
			if !std {
				p.TypeErrors = append(p.TypeErrors, err)
			}
		},
	}
	tp, err := conf.Check(path, l.Fset, files, p.Info)
	if err != nil && tp == nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	p.Types = tp
	l.pkgs[path] = p
	l.types[path] = tp
	return p, nil
}

// resolve maps an import path to its source directory. full reports whether
// function bodies must be type-checked (module + fixture packages).
func (l *Loader) resolve(path string) (dir string, std, full bool, err error) {
	if d, ok := l.extra[path]; ok {
		return d, false, true, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		// Standard-library packages import their vendored copies of
		// golang.org/x/... under the source path; go list reports them
		// with a vendor/ prefix.
		lp, ok = l.listed["vendor/"+path]
	}
	if !ok {
		// An import reached outside everything listed so far (a fixture
		// importing a stdlib package, say). List it on demand.
		if _, lerr := l.goList([]string{path}); lerr != nil {
			return "", false, false, fmt.Errorf("cannot resolve import %q: %v", path, lerr)
		}
		if lp, ok = l.listed[path]; !ok {
			return "", false, false, fmt.Errorf("cannot resolve import %q", path)
		}
	}
	return lp.Dir, lp.Standard, !lp.Standard, nil
}

// parseDir parses the package's Go files. Listed packages use the exact
// build-constraint-filtered file set from go list; fixture packages take
// every non-test .go file in the directory.
func (l *Loader) parseDir(path, dir string, full bool) ([]*ast.File, error) {
	var names []string
	if lp, ok := l.listed[path]; ok {
		names = lp.GoFiles
	} else if lp, ok := l.listed["vendor/"+path]; ok {
		names = lp.GoFiles
	} else {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				names = append(names, n)
			}
		}
		sort.Strings(names)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("package %s (%s): no Go files", path, dir)
	}
	mode := parser.ParseComments | parser.SkipObjectResolution
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFor adapts the loader to types.ImporterFrom-style resolution. The
// plain Importer interface is enough: import paths are canonical already
// (go list resolved them), and fixtures use flat paths.
func importerFor(l *Loader, _ string) types.Importer { return l }
