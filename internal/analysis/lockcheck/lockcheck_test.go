package lockcheck

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"stegfs/internal/analysis/load"
)

// moduleDir walks up from the working directory to the go.mod root, so the
// loader's `go list` calls resolve the module no matter where `go test`
// runs the package.
func moduleDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; d = filepath.Dir(d) {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		if filepath.Dir(d) == d {
			t.Fatalf("no go.mod above %s", dir)
		}
	}
}

// runFixtures loads the named testdata/src packages (each import path is
// its directory name) and returns the diagnostics.
func runFixtures(t *testing.T, names ...string) []Diagnostic {
	t.Helper()
	l := load.NewLoader(moduleDir(t))
	for _, n := range names {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", n))
		if err != nil {
			t.Fatal(err)
		}
		l.AddFixture(n, dir)
	}
	pkgs, err := l.Fixtures(names...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Fatalf("fixture %s does not type-check: %v", p.Path, p.TypeErrors[0])
		}
	}
	return Analyze(l, pkgs)
}

// wantRe matches `// want` expectation comments carrying one or more
// backquoted regular expressions, analysistest-style.
var wantRe = regexp.MustCompile("// want ((?:`[^`]*`\\s*)+)$")

// expectation is one unmatched `// want` regex.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans fixture sources for expectation comments.
func collectWants(t *testing.T, names ...string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, n := range names {
		dir := filepath.Join("testdata", "src", n)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			abs, _ := filepath.Abs(path)
			sc := bufio.NewScanner(f)
			for lineno := 1; sc.Scan(); lineno++ {
				m := wantRe.FindStringSubmatch(sc.Text())
				if m == nil {
					continue
				}
				for _, quoted := range regexp.MustCompile("`[^`]*`").FindAllString(m[1], -1) {
					re, err := regexp.Compile(quoted[1 : len(quoted)-1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp: %v", path, lineno, err)
					}
					wants = append(wants, &expectation{file: abs, line: lineno, re: re})
				}
			}
			f.Close()
		}
	}
	return wants
}

// checkFixture is the golden-file driver: every diagnostic must match a
// want on its line, and every want must be matched by a diagnostic.
func checkFixture(t *testing.T, names ...string) {
	t.Helper()
	diags := runFixtures(t, names...)
	wants := collectWants(t, names...)
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if matched[i] || w.line != d.Pos.Line || !sameFile(w.file, d.Pos.Filename) {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, _ := filepath.Abs(a)
	bb, _ := filepath.Abs(b)
	return aa == bb
}

func TestOrder(t *testing.T)   { checkFixture(t, "order") }
func TestGuarded(t *testing.T) { checkFixture(t, "guarded") }
func TestIOUnder(t *testing.T) { checkFixture(t, "iounder") }
func TestIgnore(t *testing.T)  { checkFixture(t, "ignore") }

// TestHoldsPropagation loads provider and consumer together; all wants live
// in the consumer, every class in the provider.
func TestHoldsPropagation(t *testing.T) { checkFixture(t, "holdsa", "holdsb") }

// TestMutationSmoke mirrors the CI mutation-smoke step in-process: the
// seeded order inversion in testdata/src/mutation must produce at least one
// lockorder diagnostic. If this test fails, the analyzer has silently lost
// its core check.
func TestMutationSmoke(t *testing.T) {
	diags := runFixtures(t, "mutation")
	var order int
	for _, d := range diags {
		if d.Category == "lockorder" {
			order++
		}
	}
	if order == 0 {
		t.Fatalf("seeded lock-order inversion not detected; diagnostics: %v", diags)
	}
}

// TestDiagnosticString pins the human-readable rendering the CLI prints.
func TestDiagnosticString(t *testing.T) {
	diags := runFixtures(t, "mutation")
	if len(diags) == 0 {
		t.Fatal("expected diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "mutation.go") || !strings.Contains(s, "lockorder") {
		t.Fatalf("unexpected rendering: %q", s)
	}
}

// TestRepoIsClean runs the analyzer over the whole module, exactly like the
// CI lockcheck step: the tree must be free of findings. Any new finding is
// either a real locking bug (fix it) or a documented false positive (add a
// lockcheck:ignore with its reason).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	root := moduleDir(t)
	l := load.NewLoader(root)
	pkgs, err := l.Patterns("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Analyze(l, pkgs)
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if len(diags) > 0 {
		t.Fatalf("lockcheck over ./... reported %d finding(s):\n%s", len(diags), b.String())
	}
}
