// Package ignore exercises the lockcheck:ignore escape hatch: a suppressed
// violation stays silent, the identical unsuppressed one does not, and an
// ignore without a reason is itself a finding.
package ignore

import "sync"

type Pair struct {
	// lockcheck:level 10 fix/first
	first sync.Mutex
	// lockcheck:level 20 fix/second
	second sync.Mutex
	// lockcheck:guardedby first
	v int
}

// auditedInversion mirrors the real tree's one audited lock-order
// exception: the ignore (with its mandatory rationale) silences it.
func (p *Pair) auditedInversion() {
	p.second.Lock()
	defer p.second.Unlock()
	// lockcheck:ignore audited inversion: second holders never block on first
	p.first.Lock()
	p.first.Unlock()
}

// sameLineIgnore suppresses with a trailing comment.
func (p *Pair) sameLineIgnore() {
	p.second.Lock()
	defer p.second.Unlock()
	p.first.Lock() // lockcheck:ignore audited inversion, same-line form
	p.first.Unlock()
}

// unsuppressed is the identical inversion without an ignore.
func (p *Pair) unsuppressed() {
	p.second.Lock()
	defer p.second.Unlock()
	p.first.Lock() // want `fix/first \(level 10\) acquired while holding fix/second \(level 20\)`
	p.first.Unlock()
}

// guardIgnored: guarded-field findings honor the hatch too.
func (p *Pair) guardIgnored() int {
	// lockcheck:ignore benign stale read, consumed only by stats output
	return p.v
}

// reasonRequired: an ignore with no reason is a directive error, and it
// suppresses nothing.
func (p *Pair) reasonRequired() int {
	// lockcheck:ignore // want `lockcheck:ignore requires a reason`
	return p.v // want `read v without holding fix/first`
}
