// Package holdsa is the provider half of the cross-package propagation
// fixture: it declares a leveled registry lock, a guarded table, and
// exported entry points whose annotations (holds / acquire / release) are
// the only way package holdsb can interact with the hierarchy.
package holdsa

import "sync"

// Registry is shared state with an exported locking protocol.
type Registry struct {
	// lockcheck:level 10 reg/mu
	mu sync.RWMutex
	// lockcheck:guardedby mu
	entries map[string]int
	// lockcheck:level 20 reg/flush
	flushMu sync.Mutex
}

func New() *Registry {
	return &Registry{entries: make(map[string]int)}
}

// LockRegistry exposes the lock to other packages.
//
// lockcheck:acquire reg/mu
func (r *Registry) LockRegistry() { r.mu.Lock() }

// UnlockRegistry releases it.
//
// lockcheck:release reg/mu
func (r *Registry) UnlockRegistry() { r.mu.Unlock() }

// PutLocked requires the caller to hold the registry exclusively.
//
// lockcheck:holds reg/mu
func (r *Registry) PutLocked(k string, v int) { r.entries[k] = v }

// GetLocked requires at least a shared hold.
//
// lockcheck:holds reg/mu shared
func (r *Registry) GetLocked(k string) int { return r.entries[k] }

// Flush takes the inner flush lock; callers holding reg/mu are in order
// (10 -> 20), callers holding reg/flush already are not.
func (r *Registry) Flush() {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()
}
