// Package mutation is the CI mutation-smoke fixture: it contains one
// deliberate lock-order inversion modeled on the volume hierarchy (fs.mu
// taken while an allocation-group lock is held). The CI "mutation smoke"
// step runs cmd/lockcheck over this package and asserts a non-zero exit —
// proving the deployed analyzer actually detects a seeded inversion, not
// just that it runs. There are intentionally no `// want` expectations
// here; TestMutationSmoke asserts on the diagnostics directly.
package mutation

import "sync"

type Volume struct {
	// lockcheck:level 40 vol/fsmu
	mu sync.RWMutex
	// lockcheck:level 50 vol/group multi
	groups [4]sync.Mutex
}

// seededInversion takes fs.mu UNDER a group lock — the exact regression
// the volume hierarchy forbids (groups are leaves; fs.mu is level 40).
func (v *Volume) seededInversion() {
	v.groups[2].Lock()
	defer v.groups[2].Unlock()
	v.mu.Lock()
	defer v.mu.Unlock()
}
