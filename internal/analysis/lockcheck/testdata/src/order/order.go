// Package order exercises the lock-order check: direct inversions,
// same-class reentry, the multi flag, stripe accessors, and the
// interprocedural summary check.
package order

import "sync"

type System struct {
	// lockcheck:level 10 fix/outer
	outer sync.Mutex
	// lockcheck:level 20 fix/mid
	mid sync.RWMutex
	// lockcheck:level 30 fix/inner
	inner sync.Mutex
	// lockcheck:level 40 fix/stripes multi
	stripes [8]sync.Mutex

	n int
}

// goodOrder acquires strictly ascending levels: never flagged.
func (s *System) goodOrder() {
	s.outer.Lock()
	defer s.outer.Unlock()
	s.mid.Lock()
	defer s.mid.Unlock()
	s.inner.Lock()
	s.n++
	s.inner.Unlock()
}

// badOrder locks mid before outer.
func (s *System) badOrder() {
	s.mid.Lock()
	defer s.mid.Unlock()
	s.outer.Lock() // want `fix/outer \(level 10\) acquired while holding fix/mid \(level 20\)`
	defer s.outer.Unlock()
}

// equalIsBad: acquiring at the same level as a held lock is also an
// inversion (no two same-level locks may nest).
func (s *System) equalIsBad(o *System) {
	s.inner.Lock()
	defer s.inner.Unlock()
	o.inner.Lock() // want `fix/inner acquired while already held`
	defer o.inner.Unlock()
}

// reentry self-deadlocks.
func (s *System) reentry() {
	s.outer.Lock()
	s.outer.Lock() // want `fix/outer acquired while already held`
	s.outer.Unlock()
	s.outer.Unlock()
}

// explicitUnlockResets: after a real unlock the held set shrinks, so a
// lower-level lock may be taken again.
func (s *System) explicitUnlockResets() {
	s.mid.Lock()
	s.n = 1
	s.mid.Unlock()
	s.outer.Lock()
	s.outer.Unlock()
}

// stripesMulti: classes flagged `multi` may nest with themselves
// (ascending stripe sweeps), but still respect cross-class order.
func (s *System) stripesMulti() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
	for i := range s.stripes {
		s.stripes[i].Unlock()
	}
}

// stripeUnderInner is fine: 40 > 30.
func (s *System) stripeUnderInner() {
	s.inner.Lock()
	defer s.inner.Unlock()
	s.stripes[0].Lock()
	s.stripes[0].Unlock()
}

// stripeThenMid inverts: 20 under 40.
func (s *System) stripeThenMid() {
	s.stripes[1].Lock()
	defer s.stripes[1].Unlock()
	s.mid.RLock() // want `fix/mid \(level 20\) acquired while holding fix/stripes \(level 40\)`
	s.mid.RUnlock()
}

// stripe returns one stripe mutex.
//
// lockcheck:returns fix/stripes
func (s *System) stripe(i int) *sync.Mutex { return &s.stripes[i%len(s.stripes)] }

// viaAccessor resolves the accessor's return class.
func (s *System) viaAccessor() {
	m := s.stripe(3)
	m.Lock()
	s.mid.Lock() // want `fix/mid \(level 20\) acquired while holding fix/stripes \(level 40\)`
	s.mid.Unlock()
	m.Unlock()
}

// lockInner is a helper whose summary records the fix/inner acquisition.
func (s *System) lockInner() {
	s.inner.Lock()
	s.n++
	s.inner.Unlock()
}

// interprocedural: the callee's summary carries its acquisitions to the
// call site, so holding stripes (40) while calling a function that locks
// inner (30) is an inversion even though no Lock() appears here.
func (s *System) interprocedural() {
	s.stripes[0].Lock()
	defer s.stripes[0].Unlock()
	s.lockInner() // want `call to lockInner may acquire fix/inner \(level 30\) while holding fix/stripes \(level 40\)`
}

// tryThenLock is the counted-acquisition idiom (alloc's group.lock): the
// TryLock hold exists only inside the if body, so the blocking Lock on the
// fall-through path is not a reentry.
func (s *System) tryThenLock() {
	if s.inner.TryLock() {
		s.inner.Unlock()
		return
	}
	s.inner.Lock()
	s.inner.Unlock()
}

// tryNegated: the negated form holds the lock on the fall-through path —
// the guarded access there is fine, and unlocking it is balanced.
func (s *System) tryNegated() bool {
	if !s.outer.TryLock() {
		return false
	}
	s.outer.Unlock()
	return true
}

// tryIsNotOrdered: an out-of-order TryLock is deadlock-free by definition
// and is not flagged, but the hold it creates still orders what follows.
func (s *System) tryIsNotOrdered() {
	s.mid.Lock()
	defer s.mid.Unlock()
	if s.outer.TryLock() {
		s.n++
		s.outer.Unlock()
	}
}

// interproceduralOK: calling the same helper under a lower level is fine.
func (s *System) interproceduralOK() {
	s.outer.Lock()
	defer s.outer.Unlock()
	s.lockInner()
}
