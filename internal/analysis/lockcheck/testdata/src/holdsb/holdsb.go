// Package holdsb is the consumer half of the cross-package propagation
// fixture: every lock class, annotation and summary it is checked against
// lives in package holdsa.
package holdsb

import "holdsa"

// good follows holdsa's protocol exactly.
func good(r *holdsa.Registry) int {
	r.LockRegistry()
	r.PutLocked("a", 1)
	v := r.GetLocked("a")
	r.UnlockRegistry()
	return v
}

// badNoHold calls a holds-annotated function without the lock; the
// precondition propagates across the package boundary.
func badNoHold(r *holdsa.Registry) {
	r.PutLocked("a", 1) // want `call to PutLocked requires holding reg/mu`
}

// badAfterRelease: the release annotation ends the hold.
func badAfterRelease(r *holdsa.Registry) int {
	r.LockRegistry()
	r.UnlockRegistry()
	return r.GetLocked("a") // want `call to GetLocked requires holding reg/mu`
}

// goodNesting: holding reg/mu (10) while calling Flush, which acquires
// reg/flush (20), descends the hierarchy correctly.
func goodNesting(r *holdsa.Registry) {
	r.LockRegistry()
	defer r.UnlockRegistry()
	r.Flush()
}

// reentryAcrossPackages: a caller that re-enters reg/mu through the
// exported wrappers alone — the class identity crosses the package
// boundary with the acquire/release annotations.
func reentryAcrossPackages(r *holdsa.Registry) {
	r.LockRegistry()
	defer r.UnlockRegistry()
	r.Flush()
	// Still holding reg/mu: locking a second registry's reg/mu is a
	// same-class reentry, caught class-wide across packages.
	s := holdsa.New()
	s.LockRegistry() // want `reg/mu acquired while already held`
	s.UnlockRegistry()
}
