// Package guarded exercises the guardedby check: reads and writes in and
// out of the guard, shared-versus-exclusive discipline, the holds
// annotation, and the fresh-allocation exemption.
package guarded

import "sync"

type Counter struct {
	// lockcheck:level 10 fix/cmu
	mu sync.RWMutex
	// lockcheck:guardedby mu
	n int
	// lockcheck:guardedby mu
	byName map[string]int

	unguarded int
}

// goodWrite holds the guard exclusively.
func (c *Counter) goodWrite() {
	c.mu.Lock()
	c.n++
	c.byName["x"] = c.n
	c.mu.Unlock()
}

// goodRead holds the guard shared.
func (c *Counter) goodRead() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// badRead touches n with no lock at all.
func (c *Counter) badRead() int {
	return c.n // want `read n without holding fix/cmu`
}

// badWrite writes with no lock.
func (c *Counter) badWrite(v int) {
	c.n = v // want `write to n without holding fix/cmu`
}

// sharedWrite writes under a read lock.
func (c *Counter) sharedWrite() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n++ // want `write to n with only a shared hold of fix/cmu`
}

// mapWrite mutates the guarded map outside the lock.
func (c *Counter) mapWrite() {
	c.byName["y"] = 1 // want `write to byName without holding fix/cmu`
}

// afterUnlock: the hold ends at Unlock.
func (c *Counter) afterUnlock() int {
	c.mu.Lock()
	c.n = 7
	c.mu.Unlock()
	return c.n // want `read n without holding fix/cmu`
}

// bumpLocked documents its precondition; its body is clean and its call
// sites are checked instead.
//
// lockcheck:holds mu
func (c *Counter) bumpLocked() { c.n++ }

// readLocked only needs a shared hold.
//
// lockcheck:holds mu shared
func (c *Counter) readLocked() int { return c.n }

// goodCallers provide what the callees declared.
func (c *Counter) goodCallers() int {
	c.mu.Lock()
	c.bumpLocked()
	c.mu.Unlock()
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.readLocked()
}

// badCaller calls an exclusive-hold function with no lock.
func (c *Counter) badCaller() {
	c.bumpLocked() // want `call to bumpLocked requires holding fix/cmu`
}

// sharedCaller calls an exclusive-hold function under a shared hold.
func (c *Counter) sharedCaller() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.bumpLocked() // want `call to bumpLocked requires fix/cmu exclusive`
}

// fresh constructs a Counter nobody else can see yet: exempt — including
// the holds precondition of the init helper (the constructor idiom).
func fresh() *Counter {
	c := &Counter{byName: make(map[string]int)}
	c.n = 1
	c.byName["seed"] = 1
	c.bumpLocked()
	return c
}

// Bank embeds counters, mirroring the allocator's group array.
type Bank struct {
	counters [4]Counter
}

// derivedFresh: a pointer derived from a fresh allocation is itself fresh
// (`g := &a.groups[i]` in the allocator's constructor).
func derivedFresh() *Bank {
	b := &Bank{}
	c := &b.counters[0]
	c.n = 1
	return b
}

// touchUnguarded: fields without annotations are never checked.
func (c *Counter) touchUnguarded() { c.unguarded++ }
