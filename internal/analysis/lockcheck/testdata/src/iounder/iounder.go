// Package iounder exercises the no-I/O-under-lock check: an interface
// method seeded with lockcheck:io must not be reachable while a noio
// mutex is held, including transitively through helpers.
package iounder

import "sync"

// Dev mimics vdisk.Device.
type Dev interface {
	// lockcheck:io
	ReadBlock(n int64, buf []byte) error
	// lockcheck:io
	WriteBlock(n int64, buf []byte) error
}

type Cache struct {
	// lockcheck:level 10 fix/iomu noio
	mu sync.Mutex
	// lockcheck:guardedby mu
	blocks map[int64][]byte

	dev Dev
}

// goodMiss drops the mutex before touching the device.
func (c *Cache) goodMiss(n int64) ([]byte, error) {
	c.mu.Lock()
	if b, ok := c.blocks[n]; ok {
		c.mu.Unlock()
		return b, nil
	}
	c.mu.Unlock()
	buf := make([]byte, 512)
	if err := c.dev.ReadBlock(n, buf); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.blocks[n] = buf
	c.mu.Unlock()
	return buf, nil
}

// badMiss reads the device while holding the cache mutex.
func (c *Cache) badMiss(n int64) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, 512)
	if err := c.dev.ReadBlock(n, buf); err != nil { // want `call to ReadBlock may perform device I/O while holding fix/iomu`
		return nil, err
	}
	c.blocks[n] = buf
	return buf, nil
}

// writeOut is a helper that ends at the device; its summary is io-tainted.
func (c *Cache) writeOut(n int64, b []byte) error {
	return c.dev.WriteBlock(n, b)
}

// badFlush reaches the device transitively under the mutex.
func (c *Cache) badFlush(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.blocks[n]
	return c.writeOut(n, b) // want `call to writeOut may perform device I/O while holding fix/iomu`
}

// flushLocked runs with the cache mutex held by contract. Because it
// declares the hold, the io taint is diagnosed at the device call inside
// it — the exact offending line — and not at its call sites.
//
// lockcheck:holds mu
func (c *Cache) flushLocked(n int64) error {
	return c.dev.WriteBlock(n, c.blocks[n]) // want `call to WriteBlock may perform device I/O while holding fix/iomu`
}

// viaLocked calls the holds-annotated helper: the call site stays clean.
func (c *Cache) viaLocked(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked(n)
}

// stageLocked drops the mutex for the device write and retakes it, exactly
// like the real flush pipeline. The declared hold keeps its call sites
// clean; the unlock/io/relock sequence is flow-checked right here.
//
// lockcheck:holds mu
func (c *Cache) stageLocked(n int64) error {
	b := c.blocks[n]
	c.mu.Unlock()
	err := c.dev.WriteBlock(n, b)
	c.mu.Lock()
	return err
}

// viaStage calls the unlock-relock helper under the mutex: no finding.
func (c *Cache) viaStage(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stageLocked(n)
}

// goodFlush stages under the mutex and submits outside it.
func (c *Cache) goodFlush(n int64) error {
	c.mu.Lock()
	b := c.blocks[n]
	c.mu.Unlock()
	return c.writeOut(n, b)
}
