package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"stegfs/internal/analysis/load"
)

// A Class is one lock class: a set of mutexes that share a position in a
// documented lock hierarchy. A field annotated `lockcheck:level N dom/name`
// declares (or joins) the class dom/name at level N; all stripes of a mutex
// array belong to one class.
type Class struct {
	Name   string // canonical "domain/name", or an auto-generated guard name
	Domain string
	Level  int  // 0 = unleveled: guard discipline only, no order checking
	NoIO   bool // device I/O must not happen while this class is held
	Multi  bool // same-class nested acquisition is an audited pattern (ascending stripes)
	Pos    token.Position
}

func (c *Class) String() string { return c.Name }

// lockRef is a resolved reference to a class in a holds/acquire/release
// directive. Shared references accept a read-side hold.
type lockRef struct {
	class  *Class
	shared bool
}

// funcAnn carries the directives attached to one function, method, or
// interface method.
type funcAnn struct {
	holds    []lockRef // preconditions: caller must hold these
	acquires []lockRef // effects: held by the caller after the call returns
	releases []lockRef // effects: no longer held after the call returns
	io       bool      // performs device I/O (seed for the no-I/O-under-lock check)
	returns  *Class    // returns a pointer to a mutex of this class
}

// rawDirective is an unresolved directive, collected in the first pass and
// resolved once every class declaration is known.
type rawDirective struct {
	verb string // "guardedby", "holds", "acquire", "release", "returns"
	args []string
	pos  token.Pos
	pkg  *load.Package
	// context for name resolution:
	owner *types.Named // enclosing struct type (guardedby) or receiver type (func directives)
	obj   types.Object // the annotated field or function object
}

// program accumulates all annotation facts and analysis state across the
// loaded packages.
type program struct {
	fset    *token.FileSet
	classes map[string]*Class       // canonical name -> class
	byObj   map[types.Object]*Class // mutex field/var -> class
	guards  map[types.Object]*Class // guarded field/var -> guarding class
	funcs   map[types.Object]*funcAnn
	ignores map[string]map[int]bool // file -> lines carrying lockcheck:ignore
	diags   []Diagnostic

	summaries map[*types.Func]*summary
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Category string // "lockorder", "guarded", "io", "holds", "directive"
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Category, d.Message)
}

func newProgram(fset *token.FileSet) *program {
	return &program{
		fset:      fset,
		classes:   make(map[string]*Class),
		byObj:     make(map[types.Object]*Class),
		guards:    make(map[types.Object]*Class),
		funcs:     make(map[types.Object]*funcAnn),
		ignores:   make(map[string]map[int]bool),
		summaries: make(map[*types.Func]*summary),
	}
}

func (p *program) errorf(pos token.Pos, category, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.fset.Position(pos),
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a diagnostic at position pos is covered by a
// `lockcheck:ignore` on the same line or the line directly above.
func (p *program) suppressed(pos token.Position) bool {
	lines := p.ignores[pos.Filename]
	return lines != nil && (lines[pos.Line] || lines[pos.Line-1])
}

// directive splits a "lockcheck:" comment line into verb and arguments.
// Returns ok=false for ordinary comments.
func directive(text string) (verb string, args []string, ok bool) {
	text = strings.TrimPrefix(text, "//")
	// A nested "//" starts an unrelated trailing comment (fixtures put
	// `// want ...` expectations there); it is not part of the directive.
	if i := strings.Index(text, "//"); i >= 0 {
		text = text[:i]
	}
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "lockcheck:") {
		return "", nil, false
	}
	fields := strings.Fields(strings.TrimPrefix(text, "lockcheck:"))
	if len(fields) == 0 {
		return "", nil, true
	}
	return fields[0], fields[1:], true
}

// collect gathers every lockcheck directive from the package's source. The
// returned raw directives still need resolveRefs once all packages have
// been collected.
func (p *program) collect(pkg *load.Package) []rawDirective {
	var raw []rawDirective
	for _, file := range pkg.Files {
		fname := p.fset.Position(file.Pos()).Filename
		// lockcheck:ignore lines are positional, not attached to a declaration.
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				verb, args, ok := directive(c.Text)
				if !ok || verb != "ignore" {
					continue
				}
				if len(args) == 0 {
					p.errorf(c.Pos(), "directive", "lockcheck:ignore requires a reason")
					continue
				}
				if p.ignores[fname] == nil {
					p.ignores[fname] = make(map[int]bool)
				}
				p.ignores[fname][p.fset.Position(c.Pos()).Line] = true
			}
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				raw = append(raw, p.collectFunc(pkg, d)...)
			case *ast.GenDecl:
				raw = append(raw, p.collectGen(pkg, d)...)
			}
		}
	}
	return raw
}

// collectFunc parses the directives on one function declaration.
func (p *program) collectFunc(pkg *load.Package, d *ast.FuncDecl) []rawDirective {
	obj := pkg.Info.Defs[d.Name]
	if obj == nil {
		return nil
	}
	var recv *types.Named
	if d.Recv != nil && len(d.Recv.List) > 0 {
		recv = namedOf(pkg.Info.TypeOf(d.Recv.List[0].Type))
	}
	return p.parseFuncDirectives(pkg, d.Doc, obj, recv)
}

// parseFuncDirectives handles the function-directive verbs; it is shared by
// FuncDecls and interface methods.
func (p *program) parseFuncDirectives(pkg *load.Package, doc *ast.CommentGroup, obj types.Object, recv *types.Named) []rawDirective {
	if doc == nil {
		return nil
	}
	var raw []rawDirective
	for _, c := range doc.List {
		verb, args, ok := directive(c.Text)
		if !ok || verb == "ignore" {
			continue
		}
		switch verb {
		case "holds", "acquire", "release", "returns", "io":
			if verb == "io" {
				ann := p.funcAnnFor(obj)
				ann.io = true
				continue
			}
			if len(args) == 0 {
				p.errorf(c.Pos(), "directive", "lockcheck:%s requires a lock class", verb)
				continue
			}
			raw = append(raw, rawDirective{verb: verb, args: args, pos: c.Pos(), pkg: pkg, owner: recv, obj: obj})
		case "level", "guardedby":
			p.errorf(c.Pos(), "directive", "lockcheck:%s belongs on a mutex or field declaration, not a function", verb)
		default:
			p.errorf(c.Pos(), "directive", "unknown lockcheck directive %q", verb)
		}
	}
	return raw
}

// collectGen parses directives on type and var declarations: struct fields
// (level, guardedby), interface methods (io, holds, ...), package vars.
func (p *program) collectGen(pkg *load.Package, d *ast.GenDecl) []rawDirective {
	var raw []rawDirective
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			switch t := s.Type.(type) {
			case *ast.StructType:
				owner := namedOf(pkg.Info.TypeOf(s.Name))
				for _, f := range t.Fields.List {
					raw = append(raw, p.collectField(pkg, owner, f)...)
				}
			case *ast.InterfaceType:
				for _, m := range t.Methods.List {
					if len(m.Names) != 1 {
						continue // embedded interface
					}
					obj := pkg.Info.Defs[m.Names[0]]
					if obj == nil {
						continue
					}
					raw = append(raw, p.parseFuncDirectives(pkg, pickDoc(m.Doc, m.Comment), obj, nil)...)
				}
			}
		case *ast.ValueSpec:
			// Package-level vars: a mutex var may carry a level directive.
			doc := pickDoc(s.Doc, s.Comment)
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			if doc == nil || len(s.Names) == 0 {
				continue
			}
			obj := pkg.Info.Defs[s.Names[0]]
			if obj == nil {
				continue
			}
			for _, c := range doc.List {
				verb, args, ok := directive(c.Text)
				if !ok || verb == "ignore" {
					continue
				}
				switch verb {
				case "level":
					p.declareClass(obj, args, c.Pos())
				case "guardedby":
					raw = append(raw, rawDirective{verb: verb, args: args, pos: c.Pos(), pkg: pkg, obj: obj})
				default:
					p.errorf(c.Pos(), "directive", "lockcheck:%s not valid on a package variable", verb)
				}
			}
		}
	}
	return raw
}

// collectField parses directives on one struct field.
func (p *program) collectField(pkg *load.Package, owner *types.Named, f *ast.Field) []rawDirective {
	doc := pickDoc(f.Doc, f.Comment)
	if doc == nil || len(f.Names) == 0 {
		return nil
	}
	var raw []rawDirective
	for _, name := range f.Names {
		obj := pkg.Info.Defs[name]
		if obj == nil {
			continue
		}
		for _, c := range doc.List {
			verb, args, ok := directive(c.Text)
			if !ok || verb == "ignore" {
				continue
			}
			switch verb {
			case "level":
				if !isMutexType(obj.Type()) {
					p.errorf(c.Pos(), "directive", "lockcheck:level on %s, which is not a sync.Mutex/RWMutex (or array of them)", obj.Name())
					continue
				}
				p.declareClass(obj, args, c.Pos())
			case "guardedby":
				raw = append(raw, rawDirective{verb: verb, args: args, pos: c.Pos(), pkg: pkg, owner: owner, obj: obj})
			default:
				p.errorf(c.Pos(), "directive", "lockcheck:%s not valid on a struct field", verb)
			}
		}
	}
	return raw
}

// declareClass handles `lockcheck:level N dom/name [noio] [multi]`.
func (p *program) declareClass(obj types.Object, args []string, pos token.Pos) {
	if len(args) < 2 {
		p.errorf(pos, "directive", "lockcheck:level wants `level N domain/name [noio] [multi]`")
		return
	}
	level, err := strconv.Atoi(args[0])
	if err != nil || level <= 0 {
		p.errorf(pos, "directive", "lockcheck:level %q: level must be a positive integer", args[0])
		return
	}
	name := args[0+1]
	domain := "default"
	if i := strings.IndexByte(name, '/'); i >= 0 {
		domain, name = name[:i], name[i+1:]
	}
	if name == "" || domain == "" {
		p.errorf(pos, "directive", "lockcheck:level: empty class or domain name")
		return
	}
	canonical := domain + "/" + name
	var noio, multi bool
	for _, f := range args[2:] {
		switch f {
		case "noio":
			noio = true
		case "multi":
			multi = true
		default:
			p.errorf(pos, "directive", "lockcheck:level: unknown flag %q", f)
		}
	}
	c := p.classes[canonical]
	if c == nil {
		c = &Class{Name: canonical, Domain: domain, Level: level, NoIO: noio, Multi: multi, Pos: p.fset.Position(pos)}
		p.classes[canonical] = c
	} else if c.Level != level {
		p.errorf(pos, "directive", "lock class %s redeclared at level %d (previously %d at %s)", canonical, level, c.Level, c.Pos)
		return
	} else {
		c.NoIO = c.NoIO || noio
		c.Multi = c.Multi || multi
	}
	p.byObj[obj] = c
}

// resolveRefs resolves the second-pass directives now that every class is
// declared.
func (p *program) resolveRefs(raw []rawDirective) {
	for _, r := range raw {
		switch r.verb {
		case "guardedby":
			if len(r.args) != 1 {
				p.errorf(r.pos, "directive", "lockcheck:guardedby wants exactly one mutex reference")
				continue
			}
			class := p.resolveClassRef(r.pkg, r.owner, r.args[0], r.pos)
			if class == nil {
				continue
			}
			p.guards[r.obj] = class
		case "holds", "acquire", "release":
			ref, ok := p.resolveLockRef(r)
			if !ok {
				continue
			}
			ann := p.funcAnnFor(r.obj)
			switch r.verb {
			case "holds":
				ann.holds = append(ann.holds, ref)
			case "acquire":
				ann.acquires = append(ann.acquires, ref)
			case "release":
				ann.releases = append(ann.releases, ref)
			}
		case "returns":
			class := p.resolveClassRef(r.pkg, r.owner, r.args[0], r.pos)
			if class == nil {
				continue
			}
			p.funcAnnFor(r.obj).returns = class
		}
	}
}

func (p *program) resolveLockRef(r rawDirective) (lockRef, bool) {
	shared := false
	args := r.args
	if len(args) == 2 && args[1] == "shared" {
		shared = true
		args = args[:1]
	}
	if len(args) != 1 {
		p.errorf(r.pos, "directive", "lockcheck:%s wants `<class> [shared]`", r.verb)
		return lockRef{}, false
	}
	class := p.resolveClassRef(r.pkg, r.owner, args[0], r.pos)
	if class == nil {
		return lockRef{}, false
	}
	return lockRef{class: class, shared: shared}, true
}

// resolveClassRef resolves a class reference appearing in a directive.
// Accepted forms, tried in order:
//
//  1. "domain/name" — a declared class, looked up directly.
//  2. a field name of the owning struct / receiver type whose field is an
//     annotated mutex (or an unannotated one, which becomes an unleveled
//     guard-only class);
//  3. a bare class name unique across all declared domains;
//  4. a package-level mutex var of the directive's package.
func (p *program) resolveClassRef(pkg *load.Package, owner *types.Named, ref string, pos token.Pos) *Class {
	if strings.Contains(ref, "/") {
		if c := p.classes[ref]; c != nil {
			return c
		}
		p.errorf(pos, "directive", "unknown lock class %q", ref)
		return nil
	}
	if owner != nil {
		if st, ok := owner.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if f.Name() != ref {
					continue
				}
				if !isMutexType(f.Type()) {
					p.errorf(pos, "directive", "%s.%s is not a mutex", owner.Obj().Name(), ref)
					return nil
				}
				return p.classForMutex(f)
			}
		}
	}
	var found *Class
	for name, c := range p.classes {
		if strings.TrimPrefix(name, c.Domain+"/") == ref {
			if found != nil {
				p.errorf(pos, "directive", "class name %q is ambiguous (%s vs %s); qualify with a domain", ref, found.Name, c.Name)
				return nil
			}
			found = c
		}
	}
	if found != nil {
		return found
	}
	if pkg != nil {
		if obj := pkg.Types.Scope().Lookup(ref); obj != nil && isMutexType(obj.Type()) {
			return p.classForMutex(obj)
		}
	}
	p.errorf(pos, "directive", "cannot resolve lock reference %q", ref)
	return nil
}

// classForMutex returns the class of an annotated mutex object, creating an
// unleveled guard-only class for unannotated ones.
func (p *program) classForMutex(obj types.Object) *Class {
	if c := p.byObj[obj]; c != nil {
		return c
	}
	name := obj.Name()
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	c := &Class{Name: name, Domain: "default", Pos: p.fset.Position(obj.Pos())}
	p.byObj[obj] = c
	return c
}

func (p *program) funcAnnFor(obj types.Object) *funcAnn {
	ann := p.funcs[obj]
	if ann == nil {
		ann = &funcAnn{}
		p.funcs[obj] = ann
	}
	return ann
}

// sortDiags orders diagnostics by file position.
func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

func pickDoc(doc, comment *ast.CommentGroup) *ast.CommentGroup {
	if doc != nil && comment != nil {
		return &ast.CommentGroup{List: append(append([]*ast.Comment{}, doc.List...), comment.List...)}
	}
	if doc != nil {
		return doc
	}
	return comment
}

// namedOf unwraps pointers and returns the named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, a pointer to
// one, or an array of them (lock stripes).
func isMutexType(t types.Type) bool {
	switch tt := t.(type) {
	case *types.Pointer:
		return isMutexType(tt.Elem())
	case *types.Array:
		return isMutexType(tt.Elem())
	case *types.Named:
		obj := tt.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
	}
	return false
}
