package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"stegfs/internal/analysis/load"
)

// holdKind distinguishes shared (RLock) from exclusive holds. Exclusive
// satisfies any requirement; shared satisfies reads and `shared` refs.
type holdKind int

const (
	holdShared holdKind = iota
	holdExclusive
)

// heldSet maps each held class to the strongest kind of hold on it.
type heldSet map[*Class]holdKind

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// merge keeps only classes held on both paths (with the weaker kind), so a
// conditional unlock never leaves a phantom hold behind.
func (h heldSet) merge(o heldSet) heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		if ov, ok := o[k]; ok {
			if ov < v {
				v = ov
			}
			out[k] = v
		}
	}
	return out
}

func (h heldSet) maxLevel(domain string) (int, *Class) {
	max, maxc := 0, (*Class)(nil)
	for c := range h {
		if c.Domain == domain && c.Level > max {
			max, maxc = c.Level, c
		}
	}
	return max, maxc
}

// summary is what a function may do to locks, transitively through its
// (statically resolvable) callees. It is the in-process analogue of an
// exported analysis Fact.
type summary struct {
	acquires map[*Class]bool // classes the function may lock, however briefly
	io       bool            // may perform device I/O
	callees  map[*types.Func]bool
}

// walkMode selects what the walker produces: summaries first (call graph +
// direct effects, no diagnostics), then diagnostics once every summary has
// reached its fixed point.
type walkMode int

const (
	modeSummarize walkMode = iota
	modeDiagnose
)

// funcWalker walks one function body tracking the set of held lock classes
// through straight-line control flow. The tracking is deliberately simple —
// branches are analyzed independently and joined by intersection, loops are
// analyzed once with the pre-loop state — which matches the lock...defer
// unlock discipline this codebase uses everywhere; genuinely clever flows
// get a lockcheck:ignore with a written rationale instead of a cleverer
// analyzer.
type funcWalker struct {
	prog *program
	pkg  *load.Package
	mode walkMode
	sum  *summary

	held    heldSet
	locals  map[types.Object]*Class // local vars that alias an annotated mutex
	fresh   map[types.Object]bool   // locals holding a not-yet-shared allocation
	inGo    bool                    // inside a `go func(){...}` literal
	dead    bool                    // after return/panic on this path
	results []heldSet               // held sets at each normal exit (unused today, kept for joins)
}

// lockMethodKind classifies the sync.Mutex/RWMutex method set. Try variants
// never block, so they can never deadlock and are exempt from ordering
// diagnostics; their hold is branch-conditional (see the IfStmt case).
var lockMethods = map[string]struct {
	acquire bool
	try     bool
	kind    holdKind
}{
	"Lock":     {acquire: true, kind: holdExclusive},
	"TryLock":  {acquire: true, try: true, kind: holdExclusive},
	"RLock":    {acquire: true, kind: holdShared},
	"TryRLock": {acquire: true, try: true, kind: holdShared},
	"Unlock":   {kind: holdExclusive},
	"RUnlock":  {kind: holdShared},
}

func (p *program) analyzeFunc(pkg *load.Package, decl *ast.FuncDecl, mode walkMode, sum *summary) {
	if decl.Body == nil {
		return
	}
	obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return
	}
	w := &funcWalker{
		prog:   p,
		pkg:    pkg,
		mode:   mode,
		sum:    sum,
		held:   make(heldSet),
		locals: make(map[types.Object]*Class),
		fresh:  make(map[types.Object]bool),
	}
	if ann := p.funcs[obj]; ann != nil {
		for _, h := range ann.holds {
			kind := holdExclusive
			if h.shared {
				kind = holdShared
			}
			w.held[h.class] = kind
		}
	}
	w.walkStmt(decl.Body)
}

func (w *funcWalker) emit(pos token.Pos, category, format string, args ...any) {
	if w.mode != modeDiagnose {
		return
	}
	position := w.prog.fset.Position(pos)
	if w.prog.suppressed(position) {
		return
	}
	w.prog.errorf(pos, category, format, args...)
}

// ---------------------------------------------------------------- statements

func (w *funcWalker) walkStmt(s ast.Stmt) {
	if s == nil || w.dead {
		return
	}
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, s2 := range st.List {
			w.walkStmt(s2)
		}
	case *ast.ExprStmt:
		w.walkExpr(st.X, false)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.walkExpr(r, false)
		}
		for i, l := range st.Lhs {
			w.walkWrite(l)
			if i < len(st.Rhs) {
				w.recordLocal(l, st.Rhs[i], st.Tok)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.walkExpr(v, false)
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.recordLocalIdent(name, vs.Values[i])
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.walkWrite(st.X)
	case *ast.DeferStmt:
		w.walkDeferOrGo(st.Call, false)
	case *ast.GoStmt:
		w.walkDeferOrGo(st.Call, true)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.walkExpr(r, false)
		}
		w.dead = true
	case *ast.IfStmt:
		w.walkStmt(st.Init)
		// `if mu.TryLock() { ... }` (or the negated form): the hold exists
		// only on the branch where the try succeeded.
		tryClass, tryKind, tryNegated, isTry := w.tryLockCond(st.Cond)
		if !isTry {
			w.walkExpr(st.Cond, false)
		}
		entry := w.held.clone()
		if isTry && tryClass != nil && !tryNegated {
			w.acquireTry(tryClass, tryKind)
		}
		w.walkStmt(st.Body)
		thenHeld, thenDead := w.held, w.dead
		w.held, w.dead = entry.clone(), false
		if isTry && tryClass != nil && tryNegated {
			w.acquireTry(tryClass, tryKind)
		}
		if st.Else != nil {
			w.walkStmt(st.Else)
		}
		elseHeld, elseDead := w.held, w.dead
		switch {
		case thenDead && elseDead:
			w.dead = true
		case thenDead:
			w.held, w.dead = elseHeld, false
		case elseDead:
			w.held, w.dead = thenHeld, false
		default:
			w.held, w.dead = thenHeld.merge(elseHeld), false
		}
	case *ast.ForStmt:
		w.walkStmt(st.Init)
		w.walkExpr(st.Cond, false)
		entry := w.held.clone()
		w.walkStmt(st.Body)
		w.walkStmt(st.Post)
		// Loops are analyzed once; the post-loop state is the pre-loop
		// state (lock/unlock pairs inside a body balance out, and a `for
		// { Lock() }` sweep is checked inside the body on its first step).
		w.held, w.dead = entry, false
	case *ast.RangeStmt:
		w.walkExpr(st.X, false)
		if st.Key != nil {
			w.walkWrite(st.Key)
		}
		if st.Value != nil {
			w.walkWrite(st.Value)
		}
		entry := w.held.clone()
		w.walkStmt(st.Body)
		w.held, w.dead = entry, false
	case *ast.SwitchStmt:
		w.walkStmt(st.Init)
		w.walkExpr(st.Tag, false)
		w.walkCases(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(st.Init)
		w.walkStmt(st.Assign)
		w.walkCases(st.Body)
	case *ast.SelectStmt:
		w.walkCases(st.Body)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.SendStmt:
		w.walkExpr(st.Chan, false)
		w.walkExpr(st.Value, false)
	case *ast.BranchStmt:
		// break/continue/goto: treat as path end for held-state purposes.
		if st.Tok == token.BREAK || st.Tok == token.CONTINUE {
			w.dead = true
		}
	}
}

// walkCases analyzes each case clause independently from the entry state
// and restores the entry state after (cases rarely change lock state).
func (w *funcWalker) walkCases(body *ast.BlockStmt) {
	entry := w.held.clone()
	for _, c := range body.List {
		w.held, w.dead = entry.clone(), false
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.walkExpr(e, false)
			}
			for _, s := range cc.Body {
				w.walkStmt(s)
			}
		case *ast.CommClause:
			w.walkStmt(cc.Comm)
			for _, s := range cc.Body {
				w.walkStmt(s)
			}
		}
	}
	w.held, w.dead = entry, false
}

// walkDeferOrGo handles `defer f(...)` and `go f(...)`. Deferred unlocks
// keep the lock held for the remainder of the function (which is exactly
// how defer behaves); closure bodies run with an empty held set — a
// goroutine starts fresh, and a deferred closure runs at exits where this
// walker cannot know what is still held.
func (w *funcWalker) walkDeferOrGo(call *ast.CallExpr, isGo bool) {
	for _, a := range call.Args {
		w.walkExpr(a, false)
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.walkClosure(lit, isGo)
		return
	}
	// defer mu.Unlock() / defer t.Unfreeze(): the release happens at
	// function end, so the class simply stays held for the rest of the
	// walk — no state change now. Acquisitions in `go` statements belong
	// to the new goroutine, not this one. Other deferred calls (cleanups)
	// still contribute to the summary below.
	if class, acquire, _, _, ok := w.lockCall(call); ok {
		if acquire && !isGo && class != nil {
			// `defer mu.Lock()` is almost certainly a bug, but it is a vet
			// concern, not a hierarchy one; record the acquisition only.
			w.recordAcquire(class)
		}
		return
	}
	if callee := w.staticCallee(call); callee != nil && !isGo {
		w.recordCallee(callee)
	}
}

// walkClosure analyzes a function literal with an empty held set.
func (w *funcWalker) walkClosure(lit *ast.FuncLit, isGo bool) {
	inner := &funcWalker{
		prog:   w.prog,
		pkg:    w.pkg,
		mode:   w.mode,
		sum:    w.sum,
		held:   make(heldSet),
		locals: w.locals, // closures capture enclosing mutex aliases
		fresh:  w.fresh,
		inGo:   w.inGo || isGo,
	}
	inner.walkStmt(lit.Body)
}

// ---------------------------------------------------------------- expressions

func (w *funcWalker) walkWrite(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		w.checkAccess(x, nil, true)
	case *ast.SelectorExpr:
		w.walkExpr(x.X, false)
		w.checkAccess(x.Sel, x, true)
	case *ast.IndexExpr:
		// m[k] = v mutates the container: the container access is a write.
		w.walkWrite(x.X)
		w.walkExpr(x.Index, false)
	case *ast.StarExpr:
		w.walkExpr(x.X, false)
	default:
		w.walkExpr(e, false)
	}
}

func (w *funcWalker) walkExpr(e ast.Expr, _ bool) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		w.checkAccess(x, nil, false)
	case *ast.SelectorExpr:
		w.walkExpr(x.X, false)
		w.checkAccess(x.Sel, x, false)
	case *ast.CallExpr:
		w.walkCall(x)
	case *ast.FuncLit:
		w.walkClosure(x, false)
	case *ast.UnaryExpr:
		w.walkExpr(x.X, false)
	case *ast.BinaryExpr:
		w.walkExpr(x.X, false)
		w.walkExpr(x.Y, false)
	case *ast.ParenExpr:
		w.walkExpr(x.X, false)
	case *ast.StarExpr:
		w.walkExpr(x.X, false)
	case *ast.IndexExpr:
		w.walkExpr(x.X, false)
		w.walkExpr(x.Index, false)
	case *ast.SliceExpr:
		w.walkExpr(x.X, false)
		w.walkExpr(x.Low, false)
		w.walkExpr(x.High, false)
		w.walkExpr(x.Max, false)
	case *ast.TypeAssertExpr:
		w.walkExpr(x.X, false)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.walkExpr(kv.Value, false)
				continue
			}
			w.walkExpr(el, false)
		}
	case *ast.KeyValueExpr:
		w.walkExpr(x.Key, false)
		w.walkExpr(x.Value, false)
	}
}

// walkCall handles every call expression: direct mutex operations,
// annotated wrappers, and ordinary calls checked against their summaries.
func (w *funcWalker) walkCall(call *ast.CallExpr) {
	// Immediately-invoked literal: runs here, under the current locks.
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.walkExpr(a, false)
		}
		inner := &funcWalker{prog: w.prog, pkg: w.pkg, mode: w.mode, sum: w.sum,
			held: w.held, locals: w.locals, fresh: w.fresh, inGo: w.inGo}
		inner.walkStmt(lit.Body)
		return
	}

	if class, acquire, kind, try, ok := w.lockCall(call); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			w.walkExpr(sel.X, false)
		}
		if class == nil {
			return // untracked mutex (no annotation reaches it)
		}
		switch {
		case acquire && try:
			// A try-acquire outside an if condition: the result decides
			// whether the lock is held, which this walker does not track.
			// Record it for the summary but leave the held set alone.
			w.recordAcquire(class)
		case acquire:
			w.acquire(class, kind, call.Pos())
		default:
			w.release(class, kind)
		}
		return
	}

	// Walk receiver and arguments first (they may themselves lock).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		w.walkExpr(sel.X, false)
		w.checkAccess(sel.Sel, sel, false)
	} else {
		w.walkExpr(call.Fun, false)
	}
	for _, a := range call.Args {
		w.walkExpr(a, false)
	}

	callee := w.staticCallee(call)
	if callee == nil {
		return
	}
	w.recordCallee(callee)
	ann := w.prog.funcs[callee]

	if w.mode == modeDiagnose {
		w.checkCallSite(call, callee, ann)
	}

	// Apply annotated effects to the held set.
	if ann != nil {
		for _, r := range ann.releases {
			kind := holdExclusive
			if r.shared {
				kind = holdShared
			}
			w.release(r.class, kind)
		}
		for _, a := range ann.acquires {
			kind := holdExclusive
			if a.shared {
				kind = holdShared
			}
			w.acquire(a.class, kind, call.Pos())
		}
	}
}

// checkCallSite verifies holds preconditions, summary-based lock ordering,
// and the no-I/O-under-lock rule for one resolved call.
func (w *funcWalker) checkCallSite(call *ast.CallExpr, callee *types.Func, ann *funcAnn) {
	// A method called on a freshly allocated, not-yet-shared receiver (the
	// constructor idiom `v := &Volume{...}; v.loadInodes()`) needs no lock:
	// no other goroutine can reach the object yet.
	freshRecv := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		freshRecv = w.baseIsFresh(sel.X)
	}
	if ann != nil && !freshRecv {
		for _, h := range ann.holds {
			kind, ok := w.held[h.class]
			switch {
			case !ok:
				w.emit(call.Pos(), "holds", "call to %s requires holding %s", callee.Name(), h.class)
			case !h.shared && kind != holdExclusive:
				w.emit(call.Pos(), "holds", "call to %s requires %s exclusive, but only a shared hold is in scope", callee.Name(), h.class)
			}
		}
	}
	sum := w.prog.summaries[callee]
	if sum == nil {
		return
	}
	// Lock-order through the call graph: the callee may acquire a class at
	// or below a level we already hold in the same domain. Classes in the
	// callee's own `holds` list are exempt: such a callee runs with the
	// class held by contract and may transiently release and reacquire it
	// (the flush-pipeline pattern); the reacquire is flow-checked inside
	// the callee's body.
	annAcquires := map[*Class]bool{}
	if ann != nil {
		for _, a := range ann.acquires {
			annAcquires[a.class] = true
		}
		for _, h := range ann.holds {
			annAcquires[h.class] = true
		}
	}
	for c := range sum.acquires {
		if annAcquires[c] {
			continue // the explicit acquire effect is checked by acquire()
		}
		if _, ok := w.held[c]; ok && !c.Multi {
			w.emit(call.Pos(), "lockorder", "call to %s may acquire %s, which is already held", callee.Name(), c)
			continue
		}
		if c.Level == 0 {
			continue
		}
		if max, maxc := w.held.maxLevel(c.Domain); max >= c.Level && maxc != c {
			w.emit(call.Pos(), "lockorder",
				"call to %s may acquire %s (level %d) while holding %s (level %d)",
				callee.Name(), c, c.Level, maxc, max)
		}
	}
	// No I/O under a noio lock. A held class listed in the callee's own
	// `holds` annotation is skipped here: that callee's body is analyzed
	// with the class held, so any I/O under it is diagnosed at the exact
	// offending line inside the callee instead of cascading to every
	// *Locked helper call site.
	if sum.io || (ann != nil && ann.io) {
		calleeHolds := map[*Class]bool{}
		if ann != nil {
			for _, h := range ann.holds {
				calleeHolds[h.class] = true
			}
		}
		for c := range w.held {
			if c.NoIO && !calleeHolds[c] {
				w.emit(call.Pos(), "io", "call to %s may perform device I/O while holding %s", callee.Name(), c)
			}
		}
	}
}

// acquire records that class becomes held here, diagnosing hierarchy
// violations at the acquisition site.
func (w *funcWalker) acquire(class *Class, kind holdKind, pos token.Pos) {
	w.recordAcquire(class)
	if w.mode == modeDiagnose {
		if prev, ok := w.held[class]; ok && !class.Multi {
			verb := "held"
			if prev == holdShared {
				verb = "held shared"
			}
			w.emit(pos, "lockorder", "%s acquired while already %s (self-deadlock or unordered reentry)", class, verb)
		} else if class.Level > 0 {
			if max, maxc := w.held.maxLevel(class.Domain); maxc != nil && maxc != class && class.Level <= max {
				w.emit(pos, "lockorder", "%s (level %d) acquired while holding %s (level %d); the %s hierarchy runs low to high",
					class, class.Level, maxc, max, class.Domain)
			}
		}
	}
	if prev, ok := w.held[class]; !ok || kind > prev {
		w.held[class] = kind
	}
}

// release removes a hold. Releasing a class that is not in the tracked set
// is not diagnosed: wrappers (Unlock methods, gate transfers) routinely
// release locks their caller acquired.
func (w *funcWalker) release(class *Class, _ holdKind) {
	delete(w.held, class)
}

func (w *funcWalker) recordAcquire(class *Class) {
	if w.mode == modeSummarize && w.sum != nil && !w.inGo {
		w.sum.acquires[class] = true
	}
}

func (w *funcWalker) recordCallee(callee *types.Func) {
	if w.mode == modeSummarize && w.sum != nil && !w.inGo {
		w.sum.callees[callee] = true
	}
}

// lockCall recognizes `x.Lock()` / `x.RLock()` / ... where x is a
// sync.Mutex or sync.RWMutex, and resolves x to its lock class. ok reports
// that the call is a mutex operation (even if the class is unknown).
func (w *funcWalker) lockCall(call *ast.CallExpr) (class *Class, acquire bool, kind holdKind, try bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, 0, false, false
	}
	m, known := lockMethods[sel.Sel.Name]
	if !known {
		return nil, false, 0, false, false
	}
	selection := w.pkg.Info.Selections[sel]
	if selection == nil {
		return nil, false, 0, false, false
	}
	f, isFunc := selection.Obj().(*types.Func)
	if !isFunc || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return nil, false, 0, false, false
	}
	if recv := namedOf(recvType(f)); recv == nil || (recv.Obj().Name() != "Mutex" && recv.Obj().Name() != "RWMutex") {
		return nil, false, 0, false, false
	}
	return w.resolveClassExpr(sel.X), m.acquire, m.kind, m.try, true
}

// tryLockCond recognizes an if condition that is exactly `x.TryLock()` /
// `x.TryRLock()` or its negation.
func (w *funcWalker) tryLockCond(cond ast.Expr) (class *Class, kind holdKind, negated bool, ok bool) {
	e := cond
	if u, isNot := cond.(*ast.UnaryExpr); isNot && u.Op == token.NOT {
		e, negated = u.X, true
	}
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return nil, 0, false, false
	}
	c, acquire, k, try, isLock := w.lockCall(call)
	if !isLock || !acquire || !try {
		return nil, 0, false, false
	}
	if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
		w.walkExpr(sel.X, false)
	}
	return c, k, negated, true
}

// acquireTry records a successful try-acquire: the class becomes held and
// enters the summary, but no ordering diagnostic fires — a non-blocking
// acquire cannot participate in a deadlock cycle.
func (w *funcWalker) acquireTry(class *Class, kind holdKind) {
	w.recordAcquire(class)
	if prev, ok := w.held[class]; !ok || kind > prev {
		w.held[class] = kind
	}
}

func recvType(f *types.Func) types.Type {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// resolveClassExpr maps an expression denoting a mutex to its lock class:
// field selectors, stripe-array indexing, annotated accessor calls
// (lockcheck:returns), and single-assignment local aliases.
func (w *funcWalker) resolveClassExpr(e ast.Expr) *Class {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return w.resolveClassExpr(x.X)
	case *ast.StarExpr:
		return w.resolveClassExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return w.resolveClassExpr(x.X)
		}
	case *ast.IndexExpr:
		return w.resolveClassExpr(x.X)
	case *ast.SelectorExpr:
		if selection := w.pkg.Info.Selections[x]; selection != nil {
			if c := w.prog.byObj[selection.Obj()]; c != nil {
				return c
			}
		}
		// Qualified package identifier (pkg.Var).
		if obj := w.pkg.Info.Uses[x.Sel]; obj != nil {
			return w.prog.byObj[obj]
		}
	case *ast.Ident:
		if obj := w.pkg.Info.Uses[x]; obj != nil {
			if c := w.prog.byObj[obj]; c != nil {
				return c
			}
			return w.locals[obj]
		}
	case *ast.CallExpr:
		if callee := w.staticCallee(x); callee != nil {
			if ann := w.prog.funcs[callee]; ann != nil {
				return ann.returns
			}
		}
	}
	return nil
}

// staticCallee resolves the called function object, if the call target is
// statically known (direct function, method value on a concrete receiver,
// or interface method).
func (w *funcWalker) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		f, _ := w.pkg.Info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := w.pkg.Info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.ParenExpr:
		return w.staticCallee(&ast.CallExpr{Fun: fun.X, Args: call.Args})
	}
	return nil
}

// recordLocal tracks `m := &fs.createMu[i]` style aliases and fresh
// allocations (`c := &Cache{...}`) for guard-exemption.
func (w *funcWalker) recordLocal(lhs ast.Expr, rhs ast.Expr, tok token.Token) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	w.recordLocalIdent(id, rhs)
	_ = tok
}

func (w *funcWalker) recordLocalIdent(id *ast.Ident, rhs ast.Expr) {
	obj := w.pkg.Info.Defs[id]
	if obj == nil {
		obj = w.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if c := w.resolveClassExpr(rhs); c != nil {
		w.locals[obj] = c
		return
	}
	delete(w.locals, obj)
	// A pointer derived from a fresh allocation (`g := &a.groups[i]` with a
	// fresh `a`) is itself unreachable from other goroutines.
	w.fresh[obj] = isFreshExpr(rhs) || w.baseIsFresh(rhs)
}

// isFreshExpr reports whether e allocates an object no other goroutine can
// reach yet (guard checks do not apply through it).
func isFreshExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, lit := x.X.(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// checkAccess enforces guardedby on a resolved identifier use. sel is the
// selector expression when the identifier is a field selection.
func (w *funcWalker) checkAccess(id *ast.Ident, sel *ast.SelectorExpr, write bool) {
	if w.mode != modeDiagnose {
		return
	}
	var obj types.Object
	if sel != nil {
		if selection := w.pkg.Info.Selections[sel]; selection != nil {
			obj = selection.Obj()
		} else {
			obj = w.pkg.Info.Uses[id]
		}
	} else {
		obj = w.pkg.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	guard := w.prog.guards[obj]
	if guard == nil {
		return
	}
	if sel != nil && w.baseIsFresh(sel.X) {
		return
	}
	kind, held := w.held[guard]
	switch {
	case !held:
		mode := "read"
		if write {
			mode = "write to"
		}
		w.emit(id.Pos(), "guarded", "%s %s without holding %s", mode, obj.Name(), guard)
	case write && kind != holdExclusive:
		w.emit(id.Pos(), "guarded", "write to %s with only a shared hold of %s", obj.Name(), guard)
	}
}

// baseIsFresh walks to the root identifier of a selector chain and reports
// whether it is a fresh (unshared) local allocation.
func (w *funcWalker) baseIsFresh(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return false
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			obj := w.pkg.Info.Uses[x]
			return obj != nil && w.fresh[obj]
		default:
			return false
		}
	}
}
