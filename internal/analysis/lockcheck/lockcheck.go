// Package lockcheck statically enforces the repository's documented lock
// hierarchies (ROADMAP.md "Concurrency contract") from machine-readable
// annotations. It implements three checks:
//
//  1. lock-order: a mutex annotated `// lockcheck:level N domain/name` may
//     only be acquired when every lock already held in the same domain has
//     a strictly lower level. The check is interprocedural: each function
//     carries a summary of every class it may (transitively) acquire, so
//     holding fs.mu while calling into something that eventually locks
//     nsMu is flagged at the call site.
//  2. guarded fields: a struct field annotated `// lockcheck:guardedby mu`
//     may only be read while its guard is held (shared or exclusive) and
//     only be written under an exclusive hold. Functions annotated
//     `// lockcheck:holds mu` assert the caller provides the hold, and
//     call sites of such functions are checked for it.
//  3. no-I/O-under-lock: functions reachable from a vdisk.Device /
//     vdisk.BatchDevice method (seeded by `// lockcheck:io` annotations)
//     must not be called while a `noio`-flagged mutex — the block cache and
//     page cache map mutexes — is held. This pins the single-flight miss
//     path and the flush pipeline's submit-outside-the-mutex design.
//
// False positives are silenced in place with `// lockcheck:ignore <reason>`
// on the offending line or the line above; the reason is mandatory. See
// docs/ANALYSIS.md for the full annotation grammar and the level maps.
package lockcheck

import (
	"go/ast"
	"go/types"

	"stegfs/internal/analysis/load"
)

// Analyze runs all lockcheck checks over the target packages. The loader
// must be the one that loaded them: annotations and function summaries are
// collected from every module package in its cache (the in-process stand-in
// for go/analysis fact propagation), so cross-package contracts hold even
// when only a subset of packages is being diagnosed.
func Analyze(l *load.Loader, targets []*load.Package) []Diagnostic {
	prog := newProgram(l.Fset)

	// Pass 1: collect annotations from every module (non-stdlib) package.
	scope := l.Loaded()
	var raw []rawDirective
	for _, pkg := range scope {
		if pkg.Std {
			continue
		}
		raw = append(raw, prog.collect(pkg)...)
	}
	prog.resolveRefs(raw)

	// Pass 2: per-function summaries, then propagate to a fixed point.
	prog.buildSummaries(scope)

	// Pass 3: flow-sensitive diagnostics over the target packages.
	for _, pkg := range targets {
		if len(pkg.TypeErrors) > 0 {
			prog.errorf(pkg.Files[0].Pos(), "directive",
				"package %s does not type-check (%d errors); lockcheck skipped it: %v",
				pkg.Path, len(pkg.TypeErrors), pkg.TypeErrors[0])
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					prog.analyzeFunc(pkg, fd, modeDiagnose, nil)
				}
			}
		}
	}

	sortDiags(prog.diags)
	return prog.diags
}

// buildSummaries computes, for every function in the module packages, the
// set of lock classes it may acquire and whether it may reach device I/O,
// then propagates both through the static call graph to a fixed point.
func (p *program) buildSummaries(pkgs []*load.Package) {
	// Seed: direct effects observed in each body.
	for _, pkg := range pkgs {
		if pkg.Std {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				p.analyzeFunc(pkg, fd, modeSummarize, p.summaryFor(obj))
			}
		}
	}
	// Fold annotation-declared effects into the seeds. This covers
	// interface methods (no bodies): a call through vdisk.Device.WriteBlock
	// or a `lockcheck:acquire`-annotated interface still taints callers.
	for obj, ann := range p.funcs {
		f, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sum := p.summaryFor(f)
		for _, a := range ann.acquires {
			sum.acquires[a.class] = true
		}
		if ann.io {
			sum.io = true
		}
	}

	// Fixed point: propagate callee effects into callers.
	for changed := true; changed; {
		changed = false
		for _, sum := range p.summaries {
			for callee := range sum.callees {
				csum := p.summaries[callee]
				if csum == nil {
					continue
				}
				for c := range csum.acquires {
					if !sum.acquires[c] {
						sum.acquires[c] = true
						changed = true
					}
				}
				if csum.io && !sum.io {
					sum.io = true
					changed = true
				}
			}
		}
	}
}

func (p *program) summaryFor(f *types.Func) *summary {
	sum := p.summaries[f]
	if sum == nil {
		sum = &summary{acquires: make(map[*Class]bool), callees: make(map[*types.Func]bool)}
		p.summaries[f] = sum
	}
	return sum
}
