// Package adversary implements the attacks the paper designs StegFS to
// resist, so the deniability claims can be tested rather than asserted:
//
//   - raw-disk inspection: used blocks must be statistically
//     indistinguishable from free (random-filled) blocks;
//   - the brute-force examination of §3.1: "locate hidden data by looking
//     for blocks that are marked in the bitmap as having been assigned, yet
//     are not listed in the central directory" — foiled by abandoned blocks;
//   - the bitmap-snapshot attack of §3.1: an intruder who images the bitmap
//     repeatedly and attributes newly allocated non-plain blocks to hidden
//     data — blunted by dummy-file churn and the hidden files' internal
//     free-block pools.
package adversary

import (
	"math"

	"stegfs/internal/bitmapvec"
	"stegfs/internal/vdisk"
)

// ChiSquare returns the chi-square statistic of the byte histogram of data
// against the uniform distribution. For a 1 KB random block the statistic
// concentrates around 255 (the degrees of freedom); structured plaintext
// scores orders of magnitude higher.
func ChiSquare(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var hist [256]int
	for _, b := range data {
		hist[b]++
	}
	expected := float64(len(data)) / 256
	var chi float64
	for _, c := range hist {
		d := float64(c) - expected
		chi += d * d / expected
	}
	return chi
}

// BlockStats summarizes a scan of the raw volume.
type BlockStats struct {
	Blocks  int
	MeanChi float64
	MaxChi  float64
	// Flagged counts blocks whose chi-square exceeds the given threshold —
	// blocks that "stand out" to an observer.
	Flagged int
}

// ScanBlocks computes chi-square statistics over a set of blocks. threshold
// flags blocks that look non-random (a practical threshold for 256-bin
// chi-square is ~400: P[chi > 400] < 1e-8 for uniform data of >= 1 KB).
func ScanBlocks(dev vdisk.Device, blocks []int64, threshold float64) (BlockStats, error) {
	buf := make([]byte, dev.BlockSize())
	var st BlockStats
	for _, b := range blocks {
		if err := dev.ReadBlock(b, buf); err != nil {
			return st, err
		}
		chi := ChiSquare(buf)
		st.Blocks++
		st.MeanChi += chi
		if chi > st.MaxChi {
			st.MaxChi = chi
		}
		if chi > threshold {
			st.Flagged++
		}
	}
	if st.Blocks > 0 {
		st.MeanChi /= float64(st.Blocks)
	}
	return st, nil
}

// UsedUnlisted performs the brute-force examination: every block marked used
// in the bitmap that is not referenced by the central directory and is not
// file-system metadata. The result mixes hidden data, dummy files, internal
// free pools and abandoned blocks — the attacker cannot tell which is which.
func UsedUnlisted(bm *bitmapvec.Bitmap, plainRefs map[int64]bool, metaEnd int64) []int64 {
	var out []int64
	for b := metaEnd; b < bm.Len(); b++ {
		if bm.Test(b) && !plainRefs[b] {
			out = append(out, b)
		}
	}
	return out
}

// DeltaResult quantifies a bitmap-snapshot attack.
type DeltaResult struct {
	// Candidates is the number of newly allocated non-plain blocks the
	// attacker attributes to hidden data.
	Candidates int
	// TruePositives is how many candidates actually hold user hidden data.
	TruePositives int
	// Precision = TruePositives / Candidates (1.0 means the attacker's
	// inference is exact; lower is better for the defender).
	Precision float64
	// Recall = TruePositives / |truth| — how much of the hidden data the
	// attacker found.
	Recall float64
}

// DeltaAttack evaluates the snapshot attack: prev and cur are bitmap images
// taken before and after the victim's activity; newPlain are blocks newly
// referenced by plain files (the attacker can enumerate those); truth is the
// ground-truth set of blocks holding real user hidden data.
func DeltaAttack(prev, cur *bitmapvec.Bitmap, newPlain map[int64]bool, truth map[int64]bool) DeltaResult {
	var res DeltaResult
	for _, b := range bitmapvec.NewlySet(prev, cur) {
		if newPlain[b] {
			continue
		}
		res.Candidates++
		if truth[b] {
			res.TruePositives++
		}
	}
	if res.Candidates > 0 {
		res.Precision = float64(res.TruePositives) / float64(res.Candidates)
	}
	if len(truth) > 0 {
		res.Recall = float64(res.TruePositives) / float64(len(truth))
	}
	return res
}

// GuessWork estimates the expected number of blocks an attacker must examine
// to hit one block of real hidden data when probing the used-unlisted set
// uniformly: candidates / truth (infinite when there is no hidden data).
func GuessWork(candidates, truth int) float64 {
	if truth == 0 {
		return math.Inf(1)
	}
	return float64(candidates) / float64(truth)
}
