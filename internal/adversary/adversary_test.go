package adversary

import (
	"math"
	"testing"

	"stegfs/internal/bitmapvec"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

func TestChiSquareDiscriminates(t *testing.T) {
	random := make([]byte, 4096)
	sgcrypto.NewRandomFiller([]byte("x")).Fill(random)
	text := make([]byte, 4096)
	const phrase = "the quick brown fox jumps over the lazy dog "
	for i := range text {
		text[i] = phrase[i%len(phrase)]
	}
	chiRandom := ChiSquare(random)
	chiText := ChiSquare(text)
	if chiRandom > 400 {
		t.Fatalf("random data chi2 = %.1f, expected ~255", chiRandom)
	}
	if chiText < 10*chiRandom {
		t.Fatalf("structured text chi2 %.1f should dwarf random %.1f", chiText, chiRandom)
	}
	if ChiSquare(nil) != 0 {
		t.Fatal("empty input should score 0")
	}
}

func TestScanBlocks(t *testing.T) {
	store, err := vdisk.NewMemStore(16, 1024)
	if err != nil {
		t.Fatal(err)
	}
	filler := sgcrypto.NewRandomFiller([]byte("y"))
	buf := make([]byte, 1024)
	for b := int64(0); b < 8; b++ {
		filler.Fill(buf)
		if err := store.WriteBlock(b, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Blocks 8..15 are zeros (structured).
	st, err := ScanBlocks(store, []int64{0, 1, 2, 3}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if st.Flagged != 0 {
		t.Fatalf("random blocks flagged: %+v", st)
	}
	st, err = ScanBlocks(store, []int64{8, 9}, 400)
	if err != nil {
		t.Fatal(err)
	}
	if st.Flagged != 2 {
		t.Fatalf("zero blocks not flagged: %+v", st)
	}
}

func TestUsedUnlisted(t *testing.T) {
	bm := bitmapvec.New(32)
	for _, b := range []int64{0, 1, 2, 10, 11, 20} {
		_ = bm.Set(b)
	}
	plain := map[int64]bool{10: true}
	got := UsedUnlisted(bm, plain, 3) // metadata is [0,3)
	want := []int64{11, 20}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDeltaAttackScoring(t *testing.T) {
	prev := bitmapvec.New(64)
	cur := prev.Clone()
	for _, b := range []int64{5, 6, 7, 8} {
		_ = cur.Set(b)
	}
	truth := map[int64]bool{5: true, 6: true}
	newPlain := map[int64]bool{8: true}
	res := DeltaAttack(prev, cur, newPlain, truth)
	if res.Candidates != 3 { // 5,6,7 (8 is plain)
		t.Fatalf("candidates = %d, want 3", res.Candidates)
	}
	if res.TruePositives != 2 {
		t.Fatalf("TP = %d, want 2", res.TruePositives)
	}
	if math.Abs(res.Precision-2.0/3.0) > 1e-9 {
		t.Fatalf("precision = %v", res.Precision)
	}
	if math.Abs(res.Recall-1.0) > 1e-9 {
		t.Fatalf("recall = %v", res.Recall)
	}
}

func TestDeltaAttackEmpty(t *testing.T) {
	prev := bitmapvec.New(8)
	res := DeltaAttack(prev, prev.Clone(), nil, nil)
	if res.Candidates != 0 || res.Precision != 0 || res.Recall != 0 {
		t.Fatalf("empty delta: %+v", res)
	}
}

func TestGuessWork(t *testing.T) {
	if !math.IsInf(GuessWork(100, 0), 1) {
		t.Fatal("no hidden data should be infinite guess work")
	}
	if GuessWork(100, 10) != 10 {
		t.Fatal("guess work miscalculated")
	}
}
