package adversary

import (
	"fmt"
	"testing"

	"stegfs/internal/stegfs"
	"stegfs/internal/vdisk"
)

// TestBitmapDiffRevealsNoGroupStructure runs the §3.1 bitmap-snapshot attack
// against a volume whose allocator is sharded into many groups, and checks
// that the delta — the blocks newly allocated between two snapshots — shows
// no statistical trace of the group boundaries. The adversary knows the
// volume geometry but not the grouping; if allocations clustered per group
// (e.g. one writer pinned to one group), the delta's distribution across
// group-aligned bins would diverge from the free-space-weighted uniform
// expectation and the chi-squared statistic would explode. Two-level
// free-weighted sampling keeps the delta uniform over the pre-snapshot free
// space, so the statistic stays near its degrees of freedom.
func TestBitmapDiffRevealsNoGroupStructure(t *testing.T) {
	store, err := vdisk.NewMemStore(1<<16, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := stegfs.DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 4 * 512
	p.MaxPlainFiles = 64
	p.DeterministicKeys = true
	fs, err := stegfs.Format(store, p, stegfs.WithAllocGroups(32))
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("victim")

	prev := fs.Bitmap()
	// Victim activity between the snapshots: hidden creates, rewrites with
	// reallocation, and dummy maintenance — the full mutation surface.
	for i := 0; i < 24; i++ {
		payload := make([]byte, 3000+i*200)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if err := view.Create(fmt.Sprintf("doc%02d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.TickDummies(); err != nil {
		t.Fatal(err)
	}
	cur := fs.Bitmap()

	// Bin the newly allocated blocks by allocation group and compare with
	// the expectation proportional to each group's free space in the PREV
	// snapshot (what a uniform whole-volume sampler would produce).
	al := fs.Alloc()
	groups := al.Groups()
	if groups != 32 {
		t.Fatalf("volume built %d groups, want 32", groups)
	}
	newBlocks := 0
	observed := make([]float64, groups)
	freeWeight := make([]float64, groups)
	var totalFree float64
	for g := 0; g < groups; g++ {
		lo, hi := al.GroupRange(g)
		f := float64(prev.CountFreeInRange(lo, hi))
		freeWeight[g] = f
		totalFree += f
	}
	for b := fs.DataStart(); b < prev.Len(); b++ {
		if cur.Test(b) && !prev.Test(b) {
			observed[al.GroupOf(b)]++
			newBlocks++
		}
	}
	if newBlocks < 300 {
		t.Fatalf("only %d new blocks between snapshots; workload too small for the test", newBlocks)
	}
	var chi float64
	for g := 0; g < groups; g++ {
		expected := float64(newBlocks) * freeWeight[g] / totalFree
		if expected < 5 {
			t.Fatalf("group %d expected %.1f new blocks; workload too small", g, expected)
		}
		d := observed[g] - expected
		chi += d * d / expected
	}
	// df = 31; p=0.001 critical value is 61.1. A per-group allocation policy
	// (each writer draining "its" group) scores in the hundreds.
	const critical = 61.1
	t.Logf("bitmap-diff group histogram: %d new blocks, chi²=%.1f over %d groups (critical %.1f)",
		newBlocks, chi, groups, critical)
	if chi > critical {
		t.Fatalf("bitmap diff exposes group-boundary structure: chi²=%.1f > %.1f", chi, critical)
	}
}
