package stegfs

import (
	"errors"
	"fmt"
	"sync"

	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
	"stegfs/internal/sgcrypto"
)

// HiddenView adapts hidden-file access to the common fsapi interfaces so the
// benchmark harness can drive StegFS's hidden files exactly like the other
// schemes. The view plays the role of a logged-in user: it remembers the
// FAKs of the files it created (in memory only — nothing identifying leaks
// to the volume).
//
// A HiddenView is safe for concurrent use: the FAK map has its own lock, and
// file operations take the underlying per-object locks, so reads of distinct
// files through one view (or many views) run in parallel.
type HiddenView struct {
	fs  *FS
	uid string
	// The FAK map lock is self-contained: it is never held across a call
	// into FS (every method copies what it needs and releases first), but
	// it may be taken while a namespace op holds nsMu, so it sits between
	// nsMu and the gate.
	//
	// lockcheck:level 15 volume/viewMu
	mu sync.RWMutex // guards faks
	// lockcheck:guardedby mu
	faks map[string]*viewFile
}

// viewFile is a view's per-name handle: the FAK plus the derived values
// every open needs — the physical name (a string concatenation) and the
// header signature (a hash) — computed once at Create/Adopt time so the hot
// open path neither concatenates nor hashes.
type viewFile struct {
	fak  []byte
	phys string
	sig  [sgcrypto.SignatureLen]byte
}

// NewHiddenView creates a benchmarking/user view bound to a user id.
func (fs *FS) NewHiddenView(uid string) *HiddenView {
	return &HiddenView{fs: fs, uid: uid, faks: make(map[string]*viewFile)}
}

// SchemeName implements fsapi.FileSystem.
func (v *HiddenView) SchemeName() string { return "StegFS" }

func (v *HiddenView) phys(name string) string { return v.uid + "/" + name }

// newViewFile builds the handle for a name/FAK pair.
func (v *HiddenView) newViewFile(name string, fak []byte) *viewFile {
	phys := v.phys(name)
	return &viewFile{fak: fak, phys: phys, sig: sgcrypto.Signature(phys, fak)}
}

// fileFor returns the remembered handle for name.
func (v *HiddenView) fileFor(name string) (*viewFile, error) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	vf, ok := v.faks[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	return vf, nil
}

// fakFor returns the remembered FAK for name.
func (v *HiddenView) fakFor(name string) ([]byte, error) {
	vf, err := v.fileFor(name)
	if err != nil {
		return nil, err
	}
	return vf.fak, nil
}

// openShared opens the named file with its object lock held shared.
func (v *HiddenView) openShared(name string) (*hiddenRef, error) {
	vf, err := v.fileFor(name)
	if err != nil {
		return nil, err
	}
	return v.fs.openHiddenSig(vf.phys, vf.fak, vf.sig, false)
}

// openExclusive opens the named file with its object lock held exclusively.
func (v *HiddenView) openExclusive(name string) (*hiddenRef, error) {
	vf, err := v.fileFor(name)
	if err != nil {
		return nil, err
	}
	return v.fs.openHiddenSig(vf.phys, vf.fak, vf.sig, true)
}

// Create stores a hidden file with a fresh random FAK.
func (v *HiddenView) Create(name string, data []byte) error {
	v.mu.Lock()
	if _, ok := v.faks[name]; ok {
		v.mu.Unlock()
		return fmt.Errorf("%w: %q", fsapi.ErrExists, name)
	}
	v.mu.Unlock()
	var fak []byte
	if v.fs.params.DeterministicKeys {
		sig := sgcrypto.Signature("stegfs.view.fak\x00"+v.uid+"\x00"+name, v.fs.sb.volKey[:])
		fak = sig[:]
	} else {
		var err error
		if fak, err = sgcrypto.NewFAK(); err != nil {
			return err
		}
	}
	if _, err := v.fs.createHidden(v.phys(name), fak, FlagFile, data); err != nil {
		return err
	}
	v.mu.Lock()
	v.faks[name] = v.newViewFile(name, fak)
	v.mu.Unlock()
	return nil
}

// Adopt registers an existing hidden file created by an earlier view with
// the same uid on a DeterministicKeys volume (the FAK is re-derived and the
// header verified). Views on normal volumes must use AdoptWithFAK.
func (v *HiddenView) Adopt(name string) error {
	if !v.fs.params.DeterministicKeys {
		return fmt.Errorf("stegfs: Adopt requires DeterministicKeys; use AdoptWithFAK")
	}
	sig := sgcrypto.Signature("stegfs.view.fak\x00"+v.uid+"\x00"+name, v.fs.sb.volKey[:])
	return v.AdoptWithFAK(name, sig[:])
}

// AdoptWithFAK registers an existing hidden file under its file access key,
// verifying that the header can be located.
func (v *HiddenView) AdoptWithFAK(name string, fak []byte) error {
	pr, err := v.fs.probeHeader(v.phys(name), fak)
	if err != nil {
		return err
	}
	putRef(pr)
	v.mu.Lock()
	v.faks[name] = v.newViewFile(name, append([]byte(nil), fak...))
	v.mu.Unlock()
	return nil
}

// Read returns a hidden file's contents.
func (v *HiddenView) Read(name string) ([]byte, error) {
	r, err := v.openShared(name)
	if err != nil {
		return nil, err
	}
	defer v.fs.release(r)
	return v.fs.readHidden(r)
}

// Write replaces a hidden file's contents.
func (v *HiddenView) Write(name string, data []byte) error {
	r, err := v.openExclusive(name)
	if err != nil {
		return err
	}
	defer v.fs.release(r)
	return v.fs.rewriteHidden(r, data)
}

// Delete removes a hidden file.
func (v *HiddenView) Delete(name string) error {
	r, err := v.openExclusive(name)
	if err != nil {
		return err
	}
	v.fs.destroyHidden(r)
	v.fs.release(r)
	v.mu.Lock()
	delete(v.faks, name)
	v.mu.Unlock()
	return nil
}

// Sync flushes the volume (and any mounted cache) so every write made
// through this view has reached the device.
func (v *HiddenView) Sync() error { return v.fs.Sync() }

// Close is the view's shutdown path: it syncs the volume — flushing dirty
// cached blocks ahead of the superblock/bitmap write — and forgets the FAKs
// held in memory. The hidden files remain on the volume, reachable by a new
// view via Adopt/AdoptWithFAK.
func (v *HiddenView) Close() error {
	err := v.fs.Sync()
	v.mu.Lock()
	v.faks = make(map[string]*viewFile)
	v.mu.Unlock()
	return err
}

// Stat describes a hidden file.
func (v *HiddenView) Stat(name string) (fsapi.FileInfo, error) {
	r, err := v.openShared(name)
	if err != nil {
		return fsapi.FileInfo{}, err
	}
	defer v.fs.release(r)
	return fsapi.FileInfo{Name: name, Size: r.hdr.size, Blocks: r.hdr.nblocks}, nil
}

// OccupiedBlocks returns every block the view's files hold, including
// header, pointer and pooled free blocks. Space accounting uses this.
func (v *HiddenView) OccupiedBlocks() (int64, error) {
	v.mu.RLock()
	names := make([]string, 0, len(v.faks))
	for name := range v.faks {
		names = append(names, name)
	}
	v.mu.RUnlock()
	var total int64
	for _, name := range names {
		r, err := v.openShared(name)
		if err != nil {
			return 0, err
		}
		blocks, err := v.fs.hiddenBlocks(r)
		v.fs.release(r)
		if err != nil {
			return 0, err
		}
		total += int64(len(blocks))
	}
	return total, nil
}

// BlocksOf returns the named file's data blocks and the full set of blocks
// it occupies (header + data + pointer + pooled free blocks). The adversary
// experiments use the data blocks as attack ground truth.
func (v *HiddenView) BlocksOf(name string) (data, all []int64, err error) {
	r, err := v.openShared(name)
	if err != nil {
		return nil, nil, err
	}
	defer v.fs.release(r)
	data, err = ptree.Read(r.io(v.fs.dev), r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, nil, err
	}
	all, err = v.fs.hiddenBlocks(r)
	if err != nil {
		return nil, nil, err
	}
	return data, all, nil
}

// hiddenCursor steps a hidden-file read or write one data block per Step.
// Every Step performs the device I/O plus the seal/open, as the real system
// would ("data blocks ... are decrypted on-the-fly during retrieval", §4).
// The cursor holds no locks between Steps; it belongs to one goroutine.
type hiddenCursor struct {
	fs     *FS
	io     *encIO
	blocks []int64
	data   []byte // nil for reads
	pos    int
	buf    []byte
}

// ReadCursor implements fsapi.CursorFS. The header probe happens here, so
// the cursor's steps are pure data-block I/O — matching the paper's model
// where the header is located once at open time.
func (v *HiddenView) ReadCursor(name string) (fsapi.Cursor, error) {
	r, err := v.openShared(name)
	if err != nil {
		return nil, err
	}
	defer v.fs.release(r)
	blocks, err := ptree.Read(r.io(v.fs.dev), r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	// The cursor outlives the ref (released on return), so it gets its own
	// encIO rather than the ref's pooled one. The sealer itself is shared
	// and concurrency-safe.
	cio := &encIO{dev: v.fs.dev, sealer: r.sealer}
	return &hiddenCursor{fs: v.fs, io: cio, blocks: blocks, buf: make([]byte, v.fs.dev.BlockSize())}, nil
}

// WriteCursor implements fsapi.CursorFS for an in-place like-shaped
// overwrite.
func (v *HiddenView) WriteCursor(name string, data []byte) (fsapi.Cursor, error) {
	r, err := v.openExclusive(name)
	if err != nil {
		return nil, err
	}
	defer v.fs.release(r)
	bs := int64(v.fs.dev.BlockSize())
	if (int64(len(data))+bs-1)/bs != r.hdr.nblocks {
		return nil, fmt.Errorf("stegfs: write cursor size mismatch")
	}
	blocks, err := ptree.Read(r.io(v.fs.dev), r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	r.hdr.size = int64(len(data))
	if err := v.fs.flushHeader(r); err != nil {
		return nil, err
	}
	cio := &encIO{dev: v.fs.dev, sealer: r.sealer}
	return &hiddenCursor{fs: v.fs, io: cio, blocks: blocks, data: data, buf: make([]byte, v.fs.dev.BlockSize())}, nil
}

// Step performs the next block's sealed I/O.
func (c *hiddenCursor) Step() (bool, error) {
	if c.pos >= len(c.blocks) {
		return true, errors.New("stegfs: Step past end of cursor")
	}
	b := c.blocks[c.pos]
	if c.data == nil {
		if err := c.io.ReadBlock(b, c.buf); err != nil {
			return false, err
		}
	} else {
		for j := range c.buf {
			c.buf[j] = 0
		}
		off := c.pos * len(c.buf)
		if off < len(c.data) {
			copy(c.buf, c.data[off:])
		}
		if err := c.io.WriteBlock(b, c.buf); err != nil {
			return false, err
		}
	}
	c.pos++
	return c.pos == len(c.blocks), nil
}

// Remaining returns the number of block steps left.
func (c *hiddenCursor) Remaining() int { return len(c.blocks) - c.pos }

var _ fsapi.CursorFS = (*HiddenView)(nil)
