package stegfs

import (
	"errors"
	"fmt"

	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
	"stegfs/internal/sgcrypto"
)

// HiddenView adapts hidden-file access to the common fsapi interfaces so the
// benchmark harness can drive StegFS's hidden files exactly like the other
// schemes. The view plays the role of a logged-in user: it remembers the
// FAKs of the files it created (in memory only — nothing identifying leaks
// to the volume).
type HiddenView struct {
	fs   *FS
	uid  string
	faks map[string][]byte
}

// NewHiddenView creates a benchmarking/user view bound to a user id.
func (fs *FS) NewHiddenView(uid string) *HiddenView {
	return &HiddenView{fs: fs, uid: uid, faks: make(map[string][]byte)}
}

// SchemeName implements fsapi.FileSystem.
func (v *HiddenView) SchemeName() string { return "StegFS" }

func (v *HiddenView) phys(name string) string { return v.uid + "/" + name }

func (v *HiddenView) open(name string) (*hiddenRef, error) {
	fak, ok := v.faks[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, name)
	}
	return v.fs.probeHeader(v.phys(name), fak)
}

// Create stores a hidden file with a fresh random FAK.
func (v *HiddenView) Create(name string, data []byte) error {
	if _, ok := v.faks[name]; ok {
		return fmt.Errorf("%w: %q", fsapi.ErrExists, name)
	}
	var fak []byte
	if v.fs.params.DeterministicKeys {
		sig := sgcrypto.Signature("stegfs.view.fak\x00"+v.uid+"\x00"+name, v.fs.sb.volKey[:])
		fak = sig[:]
	} else {
		var err error
		if fak, err = sgcrypto.NewFAK(); err != nil {
			return err
		}
	}
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if _, err := v.fs.createHidden(v.phys(name), fak, FlagFile, data); err != nil {
		return err
	}
	v.faks[name] = fak
	return nil
}

// Adopt registers an existing hidden file created by an earlier view with
// the same uid on a DeterministicKeys volume (the FAK is re-derived and the
// header verified). Views on normal volumes must use AdoptWithFAK.
func (v *HiddenView) Adopt(name string) error {
	if !v.fs.params.DeterministicKeys {
		return fmt.Errorf("stegfs: Adopt requires DeterministicKeys; use AdoptWithFAK")
	}
	sig := sgcrypto.Signature("stegfs.view.fak\x00"+v.uid+"\x00"+name, v.fs.sb.volKey[:])
	return v.AdoptWithFAK(name, sig[:])
}

// AdoptWithFAK registers an existing hidden file under its file access key,
// verifying that the header can be located.
func (v *HiddenView) AdoptWithFAK(name string, fak []byte) error {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	if _, err := v.fs.probeHeader(v.phys(name), fak); err != nil {
		return err
	}
	v.faks[name] = append([]byte(nil), fak...)
	return nil
}

// Read returns a hidden file's contents.
func (v *HiddenView) Read(name string) ([]byte, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return nil, err
	}
	return v.fs.readHidden(r)
}

// Write replaces a hidden file's contents.
func (v *HiddenView) Write(name string, data []byte) error {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return err
	}
	return v.fs.rewriteHidden(r, data)
}

// Delete removes a hidden file.
func (v *HiddenView) Delete(name string) error {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return err
	}
	v.fs.destroyHiddenLocked(r)
	delete(v.faks, name)
	return nil
}

// Sync flushes the volume (and any mounted cache) so every write made
// through this view has reached the device.
func (v *HiddenView) Sync() error { return v.fs.Sync() }

// Close is the view's shutdown path: it syncs the volume — flushing dirty
// cached blocks ahead of the superblock/bitmap write — and forgets the FAKs
// held in memory. The hidden files remain on the volume, reachable by a new
// view via Adopt/AdoptWithFAK.
func (v *HiddenView) Close() error {
	err := v.fs.Sync()
	v.fs.mu.Lock()
	v.faks = make(map[string][]byte)
	v.fs.mu.Unlock()
	return err
}

// Stat describes a hidden file.
func (v *HiddenView) Stat(name string) (fsapi.FileInfo, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return fsapi.FileInfo{}, err
	}
	return fsapi.FileInfo{Name: name, Size: r.hdr.size, Blocks: r.hdr.nblocks}, nil
}

// OccupiedBlocks returns every block the view's files hold, including
// header, pointer and pooled free blocks. Space accounting uses this.
func (v *HiddenView) OccupiedBlocks() (int64, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	var total int64
	for name := range v.faks {
		r, err := v.open(name)
		if err != nil {
			return 0, err
		}
		blocks, err := v.fs.hiddenBlocks(r)
		if err != nil {
			return 0, err
		}
		total += int64(len(blocks))
	}
	return total, nil
}

// BlocksOf returns the named file's data blocks and the full set of blocks
// it occupies (header + data + pointer + pooled free blocks). The adversary
// experiments use the data blocks as attack ground truth.
func (v *HiddenView) BlocksOf(name string) (data, all []int64, err error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return nil, nil, err
	}
	data, err = ptree.Read(r.io(v.fs.dev), r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, nil, err
	}
	all, err = v.fs.hiddenBlocks(r)
	if err != nil {
		return nil, nil, err
	}
	return data, all, nil
}

// hiddenCursor steps a hidden-file read or write one data block per Step.
// Every Step performs the device I/O plus the seal/open, as the real system
// would ("data blocks ... are decrypted on-the-fly during retrieval", §4).
type hiddenCursor struct {
	fs     *FS
	ref    *hiddenRef
	blocks []int64
	data   []byte // nil for reads
	pos    int
	buf    []byte
}

// ReadCursor implements fsapi.CursorFS. The header probe happens here, so
// the cursor's steps are pure data-block I/O — matching the paper's model
// where the header is located once at open time.
func (v *HiddenView) ReadCursor(name string) (fsapi.Cursor, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return nil, err
	}
	blocks, err := ptree.Read(r.io(v.fs.dev), r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	return &hiddenCursor{fs: v.fs, ref: r, blocks: blocks, buf: make([]byte, v.fs.dev.BlockSize())}, nil
}

// WriteCursor implements fsapi.CursorFS for an in-place like-shaped
// overwrite.
func (v *HiddenView) WriteCursor(name string, data []byte) (fsapi.Cursor, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return nil, err
	}
	bs := int64(v.fs.dev.BlockSize())
	if (int64(len(data))+bs-1)/bs != r.hdr.nblocks {
		return nil, fmt.Errorf("stegfs: write cursor size mismatch")
	}
	blocks, err := ptree.Read(r.io(v.fs.dev), r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	r.hdr.size = int64(len(data))
	if err := v.fs.flushHeader(r); err != nil {
		return nil, err
	}
	return &hiddenCursor{fs: v.fs, ref: r, blocks: blocks, data: data, buf: make([]byte, v.fs.dev.BlockSize())}, nil
}

// Step performs the next block's sealed I/O.
func (c *hiddenCursor) Step() (bool, error) {
	if c.pos >= len(c.blocks) {
		return true, errors.New("stegfs: Step past end of cursor")
	}
	io := c.ref.io(c.fs.dev)
	b := c.blocks[c.pos]
	if c.data == nil {
		if err := io.ReadBlock(b, c.buf); err != nil {
			return false, err
		}
	} else {
		for j := range c.buf {
			c.buf[j] = 0
		}
		off := c.pos * len(c.buf)
		if off < len(c.data) {
			copy(c.buf, c.data[off:])
		}
		if err := io.WriteBlock(b, c.buf); err != nil {
			return false, err
		}
	}
	c.pos++
	return c.pos == len(c.blocks), nil
}

// Remaining returns the number of block steps left.
func (c *hiddenCursor) Remaining() int { return len(c.blocks) - c.pos }

var _ fsapi.CursorFS = (*HiddenView)(nil)
