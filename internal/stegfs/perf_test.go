package stegfs

import (
	"bytes"
	"fmt"
	"testing"

	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// perfVolume builds a small cached, deterministic volume for the data-path
// benchmarks and the allocation-regression tests.
func perfVolume(tb testing.TB) (*FS, *HiddenView) {
	tb.Helper()
	store, err := vdisk.NewMemStore(16384, 1024)
	if err != nil {
		tb.Fatal(err)
	}
	p := DefaultParams()
	p.FillVolume = false
	p.DeterministicKeys = true
	p.NDummy = 4
	p.DummyAvgSize = 4096
	fs, err := Format(store, p, WithCache(16384))
	if err != nil {
		tb.Fatal(err)
	}
	v := fs.NewHiddenView("bench")
	return fs, v
}

// TestCachedReadAllocFree pins the zero-allocation guarantee of the cached
// read path: once the ref pool, lock freelist and block cache are warm, a
// ReadAt (open → header reload → tree walk → batched cache read → vectored
// open → release) must not touch the heap. CI runs this as the allocs/op
// regression gate alongside BenchmarkCachedReadAt.
func TestCachedReadAllocFree(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	_, v := perfVolume(t)
	data := make([]byte, 65536)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := v.Create("f", data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	// Warm pools and cache.
	for i := 0; i < 8; i++ {
		if _, err := v.ReadAt("f", buf, 4096); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := v.ReadAt("f", buf, 4096); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached ReadAt allocates %.1f objects/op, want 0", allocs)
	}
	if !bytes.Equal(buf, data[4096:8192]) {
		t.Fatal("read returned wrong bytes")
	}
}

// TestSealerCacheRecycle exercises the staleness paths of the sealer cache:
// create → open (hint inserted) → delete (hint dropped) → re-create, with
// the re-created object typically landing on the same header block (same
// PRBG chain, same volume state). Every open in between must see exactly
// the current object's content, including a second view whose own opens
// race the first view's hints, and a delete+miss must report not-found.
func TestSealerCacheRecycle(t *testing.T) {
	fs, v := perfVolume(t)
	for gen := 0; gen < 5; gen++ {
		content := []byte(fmt.Sprintf("generation %d payload", gen))
		if err := v.Create("cycled", content); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		got, err := v.Read("cycled")
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("gen %d: read %q, want %q", gen, got, content)
		}
		// A second view adopts the same file: its open goes through the
		// shared FS-level cache populated by the first view's operations.
		v2 := fs.NewHiddenView("bench")
		if err := v2.Adopt("cycled"); err != nil {
			t.Fatalf("gen %d: adopt: %v", gen, err)
		}
		got2, err := v2.Read("cycled")
		if err != nil {
			t.Fatalf("gen %d: adopted read: %v", gen, err)
		}
		if !bytes.Equal(got2, content) {
			t.Fatalf("gen %d: adopted read %q, want %q", gen, got2, content)
		}
		if err := v.Delete("cycled"); err != nil {
			t.Fatalf("gen %d: delete: %v", gen, err)
		}
		// The hint is gone and the object is gone: a fresh open must miss.
		if _, err := v2.Read("cycled"); err == nil {
			t.Fatalf("gen %d: read after delete succeeded", gen)
		}
	}
}

// TestSealerCacheStaleHint plants a deliberately stale hint — the entry
// survives while the object is destroyed behind the cache's back — and
// checks that verify-on-open heals it rather than serving garbage.
func TestSealerCacheStaleHint(t *testing.T) {
	fs, v := perfVolume(t)
	if err := v.Create("victim", []byte("first body")); err != nil {
		t.Fatal(err)
	}
	vf, err := v.fileFor("victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := fs.sealers.get(vf.sig); !ok {
		t.Fatal("create did not populate the sealer cache")
	}
	// Destroy the object without telling the cache (simulating a hint that
	// outlived its object), then re-create it: the PRBG chain may pick a
	// different header block this time, so the hint can point at a block
	// now owned by the new generation's data.
	r, err := fs.openExclusive(vf.phys, vf.fak)
	if err != nil {
		t.Fatal(err)
	}
	hb := r.headerBlk
	fs.destroyHidden(r)
	fs.release(r)
	staleSealer, err := sgcrypto.NewSealer(vf.phys, vf.fak)
	if err != nil {
		t.Fatal(err)
	}
	fs.sealers.add(vf.sig, staleSealer, hb)
	if _, err := fs.createHidden(vf.phys, vf.fak, FlagFile, []byte("second body")); err != nil {
		t.Fatal(err)
	}
	got, err := v.Read("victim")
	if err != nil {
		t.Fatalf("read through stale hint: %v", err)
	}
	if !bytes.Equal(got, []byte("second body")) {
		t.Fatalf("read %q through stale hint, want %q", got, "second body")
	}
}

func BenchmarkCachedReadAt(b *testing.B) {
	for _, sz := range []int{4096, 16384, 65536} {
		b.Run(fmt.Sprintf("%dB", sz), func(b *testing.B) {
			_, v := perfVolume(b)
			data := make([]byte, sz)
			for i := range data {
				data[i] = byte(i)
			}
			if err := v.Create("f", data); err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, sz)
			if _, err := v.ReadAt("f", buf, 0); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.SetBytes(int64(sz))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.ReadAt("f", buf, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCachedRead(b *testing.B) {
	_, v := perfVolume(b)
	data := make([]byte, 65536)
	if err := v.Create("f", data); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Read("f"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCachedWriteAt(b *testing.B) {
	_, v := perfVolume(b)
	data := make([]byte, 16384)
	if err := v.Create("f", data); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(16384)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.WriteAt("f", data, 0); err != nil {
			b.Fatal(err)
		}
	}
}
