//go:build race

package stegfs

// raceEnabled reports whether the race detector is instrumenting this build;
// its shadow-memory bookkeeping allocates, so alloc-count gates must skip.
const raceEnabled = true
