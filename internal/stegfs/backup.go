package stegfs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"stegfs/internal/alloc"
	"stegfs/internal/bitmapvec"
	"stegfs/internal/plainfs"
	"stegfs/internal/vdisk"
)

// backupMagic identifies a StegFS backup stream.
const backupMagic = "SGBK0001"

// Backup implements steg_backup (§3.3): it writes a snapshot of the volume
// to w. Hidden data cannot be enumerated (the system does not hold the
// FAKs), so the snapshot saves the raw image of every block that is
// allocated in the bitmap but does not belong to any plain file — that
// covers abandoned blocks, dummy files, hidden files and their internal
// free pools. Plain files are backed up by name and content, so they can be
// reconstructed at new addresses.
func (fs *FS) Backup(w io.Writer) error {
	// Quiesce the volume: the freeze gate drains every in-flight mutator —
	// hidden-object operations hold it through their object locks, plain
	// mutators around their calls — and blocks new ones, so the imaged
	// blocks, the bitmap and the plain files form one consistent snapshot.
	// fs.mu (taken after the gate, per the lock hierarchy) serializes the
	// metadata read against Sync.
	fs.objs.Freeze()
	defer fs.objs.Unfreeze()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	bm := fs.alloc.Snapshot()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(backupMagic); err != nil {
		return err
	}
	bs := fs.dev.BlockSize()

	// Superblock.
	buf := make([]byte, bs)
	if err := encodeSuper(fs.sb, buf); err != nil {
		return err
	}
	if err := writeBlob(bw, buf); err != nil {
		return err
	}

	// Bitmap.
	if err := writeBlob(bw, bm.Marshal()); err != nil {
		return err
	}

	// Raw image of allocated-but-not-plain blocks.
	plainBlocks, err := fs.plain.ReferencedBlocks()
	if err != nil {
		return err
	}
	var imaged []int64
	for b := int64(fs.sb.dataStart); b < fs.dev.NumBlocks(); b++ {
		if bm.Test(b) && !plainBlocks[b] {
			imaged = append(imaged, b)
		}
	}
	var n8 [8]byte
	binary.BigEndian.PutUint64(n8[:], uint64(len(imaged)))
	if _, err := bw.Write(n8[:]); err != nil {
		return err
	}
	for _, b := range imaged {
		binary.BigEndian.PutUint64(n8[:], uint64(b))
		if _, err := bw.Write(n8[:]); err != nil {
			return err
		}
		if err := fs.dev.ReadBlock(b, buf); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}

	// Plain files by content.
	names := fs.plain.Names()
	sort.Strings(names)
	binary.BigEndian.PutUint64(n8[:], uint64(len(names)))
	if _, err := bw.Write(n8[:]); err != nil {
		return err
	}
	for _, name := range names {
		data, err := fs.plain.Read(name)
		if err != nil {
			return err
		}
		if err := writeBlob(bw, []byte(name)); err != nil {
			return err
		}
		if err := writeBlob(bw, data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeBlob writes a length-prefixed byte slice.
func writeBlob(w io.Writer, b []byte) error {
	var n8 [8]byte
	binary.BigEndian.PutUint64(n8[:], uint64(len(b)))
	if _, err := w.Write(n8[:]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

// readBlob reads a length-prefixed byte slice, refusing absurd lengths.
func readBlob(r io.Reader, limit int64) ([]byte, error) {
	var n8 [8]byte
	if _, err := io.ReadFull(r, n8[:]); err != nil {
		return nil, err
	}
	n := int64(binary.BigEndian.Uint64(n8[:]))
	if n < 0 || n > limit {
		return nil, fmt.Errorf("stegfs: backup blob length %d exceeds limit %d", n, limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Recover implements steg_recovery (§3.3): it rebuilds a damaged volume on
// dev from a backup stream. Abandoned and hidden blocks are restored to
// their original addresses first (their internal inode tables cannot be
// relocated), then the plain files are reconstructed, possibly at new
// addresses. It returns the recovered, mounted file system.
func Recover(dev vdisk.Device, rd io.Reader) (*FS, error) {
	r := bufio.NewReader(rd)
	magic := make([]byte, len(backupMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, err
	}
	if string(magic) != backupMagic {
		return nil, fmt.Errorf("stegfs: not a StegFS backup (magic %q)", magic)
	}
	volBytes := dev.NumBlocks() * int64(dev.BlockSize())

	sbBuf, err := readBlob(r, volBytes)
	if err != nil {
		return nil, err
	}
	sb, err := decodeSuper(sbBuf)
	if err != nil {
		return nil, err
	}
	if int64(sb.numBlocks) != dev.NumBlocks() || int(sb.blockSize) != dev.BlockSize() {
		return nil, fmt.Errorf("stegfs: backup geometry %dx%d does not match device %dx%d",
			sb.numBlocks, sb.blockSize, dev.NumBlocks(), dev.BlockSize())
	}
	if _, err := readBlob(r, volBytes); err != nil { // stored bitmap; rebuilt below
		return nil, err
	}

	// Restore the imaged blocks to their original addresses and mark them.
	bm := bitmapvec.New(dev.NumBlocks())
	for b := int64(0); b < int64(sb.dataStart); b++ {
		if err := bm.Set(b); err != nil {
			return nil, err
		}
	}
	var n8 [8]byte
	if _, err := io.ReadFull(r, n8[:]); err != nil {
		return nil, err
	}
	nImaged := int64(binary.BigEndian.Uint64(n8[:]))
	if nImaged < 0 || nImaged > dev.NumBlocks() {
		return nil, fmt.Errorf("stegfs: backup images %d blocks on a %d-block device", nImaged, dev.NumBlocks())
	}
	buf := make([]byte, dev.BlockSize())
	for i := int64(0); i < nImaged; i++ {
		if _, err := io.ReadFull(r, n8[:]); err != nil {
			return nil, err
		}
		b := int64(binary.BigEndian.Uint64(n8[:]))
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if err := dev.WriteBlock(b, buf); err != nil {
			return nil, err
		}
		if err := bm.Set(b); err != nil {
			return nil, err
		}
	}

	// Reset the central directory, then rebuild plain files at (possibly)
	// new addresses.
	zero := make([]byte, dev.BlockSize())
	for b := int64(sb.inoStart); b < int64(sb.inoStart)+int64(sb.inoLen); b++ {
		if err := dev.WriteBlock(b, zero); err != nil {
			return nil, err
		}
	}
	params := Params{
		PctAbandoned:      sb.pctAband,
		FreeMin:           int(sb.freeMin),
		FreeMax:           int(sb.freeMax),
		NDummy:            int(sb.nDummy),
		DummyAvgSize:      int64(sb.dummyAvg),
		MaxPlainFiles:     int(sb.maxPlain),
		MaxHeaderProbes:   int(sb.headerProbe),
		FreeProbeStop:     int(sb.freeStop),
		DeterministicKeys: sb.flags&flagDeterministicKeys != 0,
		Seed:              sb.seed,
		FillVolume:        true,
	}
	al, err := alloc.New(bm, int64(sb.dataStart), 0, sb.seed+3)
	if err != nil {
		return nil, err
	}
	fs := &FS{dev: dev, alloc: al, sb: sb, params: params, objs: newLockTable(), sealers: newSealerCache()}
	fs.plain, err = plainfs.NewEmbedded(dev, bm, int64(sb.inoStart), int64(sb.inoLen), int64(sb.dataStart), plainfs.Config{
		Policy:   plainfs.Random,
		MaxFiles: int(sb.maxPlain),
		Seed:     sb.seed + 1,
		Alloc:    al,
	})
	if err != nil {
		return nil, err
	}

	if _, err := io.ReadFull(r, n8[:]); err != nil {
		return nil, err
	}
	nPlain := int64(binary.BigEndian.Uint64(n8[:]))
	if nPlain < 0 || nPlain > int64(sb.maxPlain) {
		return nil, fmt.Errorf("stegfs: backup holds %d plain files, volume allows %d", nPlain, sb.maxPlain)
	}
	for i := int64(0); i < nPlain; i++ {
		name, err := readBlob(r, volBytes)
		if err != nil {
			return nil, err
		}
		data, err := readBlob(r, volBytes)
		if err != nil {
			return nil, err
		}
		if err := fs.plain.Create(string(name), data); err != nil {
			return nil, fmt.Errorf("stegfs: restoring plain file %q: %w", name, err)
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return fs, nil
}
