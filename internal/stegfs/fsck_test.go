package stegfs

import (
	"bytes"
	"strings"
	"testing"

	"stegfs/internal/stegdb"
	"stegfs/internal/vdisk"
)

func fsckParams() Params {
	p := DefaultParams()
	p.Seed = 41
	p.DeterministicKeys = true
	p.NDummy = 2
	p.FillVolume = false
	p.MaxPlainFiles = 16
	return p
}

// newFsckVolume formats a volume with plain files, keyed hidden files for
// two users, and an embedded stegdb table, then checkpoints it so every
// object is discoverable by a fresh mount.
func newFsckVolume(t *testing.T) (*vdisk.MemStore, CheckOptions) {
	t.Helper()
	mem, err := vdisk.NewMemStore(4096, 512)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(mem, fsckParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("readme.txt", []byte("plain one")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("notes.txt", bytes.Repeat([]byte("plain two "), 100)); err != nil {
		t.Fatal(err)
	}
	alice := fs.NewHiddenView("alice")
	for _, name := range []string{"diary", "ledger"} {
		if err := alice.Create(name, bytes.Repeat([]byte(name+" "), 120)); err != nil {
			t.Fatal(err)
		}
	}
	bob := fs.NewHiddenView("bob")
	if err := bob.Create("plans", []byte("short hidden file")); err != nil {
		t.Fatal(err)
	}
	tab, err := stegdb.CreateTable(fs.NewHiddenView("db"), "accounts", true, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		k := []byte{byte(i), byte(i >> 4)}
		if err := tab.Put(k, bytes.Repeat(k, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	opts := CheckOptions{
		ViewFiles: map[string][]string{
			"alice": {"diary", "ledger"},
			"bob":   {"plans"},
		},
		Tables: []TableRef{{UID: "db", Name: "accounts"}},
		CheckTable: func(view *HiddenView, name string) ([]string, error) {
			return stegdb.CheckAny(view, view.Adopt, name)
		},
	}
	return mem, opts
}

func TestFsckCleanVolume(t *testing.T) {
	mem, opts := newFsckVolume(t)
	rep, err := Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean volume reported errors:\n%s", rep.Summary())
	}
	if rep.PlainFiles != 2 || rep.DummiesChecked != 2 || rep.HiddenChecked != 3 || rep.TablesChecked != 1 {
		t.Fatalf("coverage counts wrong:\n%s", rep.Summary())
	}
	if rep.AccountedBlocks == 0 {
		t.Fatal("no blocks accounted")
	}
	if rep.UsedBlocks+rep.FreeBlocks != 4096 {
		t.Fatalf("block totals inconsistent:\n%s", rep.Summary())
	}
}

// TestFsckKeylessHiddenIsNotAnError: hidden data without keys must be
// counted as unaccounted cover, never flagged — that is the deniability
// contract.
func TestFsckKeylessHiddenIsNotAnError(t *testing.T) {
	mem, opts := newFsckVolume(t)
	full, err := Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	blind, err := Check(mem, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !blind.OK() {
		t.Fatalf("keyless check reported errors:\n%s", blind.Summary())
	}
	if blind.HiddenChecked != 0 || blind.DummiesChecked != 2 {
		t.Fatalf("keyless coverage wrong:\n%s", blind.Summary())
	}
	if blind.UnaccountedUsed <= full.UnaccountedUsed {
		t.Fatalf("withholding keys did not grow the unaccounted set (%d vs %d)",
			blind.UnaccountedUsed, full.UnaccountedUsed)
	}
}

// TestFsckDetectsAndRepairsFreedReachableBlock: clearing a bitmap bit under
// a live hidden file is detected, and -repair re-marks it and persists.
func TestFsckDetectsAndRepairsFreedReachableBlock(t *testing.T) {
	mem, opts := newFsckVolume(t)

	// Reopen and free one of diary's data blocks out from under it.
	fs, err := Mount(mem)
	if err != nil {
		t.Fatal(err)
	}
	alice := fs.NewHiddenView("alice")
	if err := alice.Adopt("diary"); err != nil {
		t.Fatal(err)
	}
	data, _, err := alice.BlocksOf("diary")
	if err != nil {
		t.Fatal(err)
	}
	fs.Alloc().Free(data[0])
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("freed reachable block not detected")
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "reachable but marked free") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong errors:\n%s", rep.Summary())
	}

	repOpts := opts
	repOpts.Repair = true
	rep, err = Check(mem, repOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || len(rep.Repaired) == 0 {
		t.Fatalf("repair pass failed:\n%s", rep.Summary())
	}

	// Repair persisted: a fresh check is clean.
	rep, err = Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("volume still dirty after repair:\n%s", rep.Summary())
	}
}

// TestFsckDetectsCorruptSuperblock: garbage in block 0 is a reported
// finding, not a checker crash.
func TestFsckDetectsCorruptSuperblock(t *testing.T) {
	mem, _ := newFsckVolume(t)
	junk := bytes.Repeat([]byte{0xA5}, 512)
	if err := mem.WriteBlock(0, junk); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(mem, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupt superblock not detected")
	}
}

// TestFsckDetectsCorruptHiddenHeader: a bit flip in a hidden file's header
// block fails the header signature check, and the object — whose key we
// hold — is reported missing. (Payload blocks are unauthenticated CTR
// ciphertext; their end-to-end integrity belongs to the IDA share CRCs.)
func TestFsckDetectsCorruptHiddenHeader(t *testing.T) {
	mem, opts := newFsckVolume(t)
	fs, err := Mount(mem)
	if err != nil {
		t.Fatal(err)
	}
	alice := fs.NewHiddenView("alice")
	if err := alice.Adopt("ledger"); err != nil {
		t.Fatal(err)
	}
	_, all, err := alice.BlocksOf("ledger")
	if err != nil {
		t.Fatal(err)
	}
	headerBlk := all[0]
	buf := make([]byte, 512)
	if err := mem.ReadBlock(headerBlk, buf); err != nil {
		t.Fatal(err)
	}
	buf[40] ^= 0x01
	if err := mem.WriteBlock(headerBlk, buf); err != nil {
		t.Fatal(err)
	}

	rep, err := Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corrupt hidden header not detected")
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "ledger") {
			found = true
		}
	}
	if !found {
		t.Fatalf("corruption not attributed to ledger:\n%s", rep.Summary())
	}
}

// TestFsckPartitionedTable: a partitioned stegdb table is discovered from
// its base name, every partition (and journal sibling) is verified and
// accounted, and a missing partition file is an error.
func TestFsckPartitionedTable(t *testing.T) {
	mem, err := vdisk.NewMemStore(8192, 512)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(mem, fsckParams())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := stegdb.CreatePartitionedTable(fs.NewHiddenView("db"), "ledger", 3, true, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		k := []byte{byte(i), byte(i >> 4)}
		if err := pt.Put(k, bytes.Repeat(k, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	opts := CheckOptions{
		Tables: []TableRef{{UID: "db", Name: "ledger"}},
		CheckTable: func(view *HiddenView, name string) ([]string, error) {
			return stegdb.CheckAny(view, view.Adopt, name)
		},
	}
	rep, err := Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.TablesChecked != 1 {
		t.Fatalf("partitioned table check failed:\n%s", rep.Summary())
	}

	// Every partition's blocks must be accounted: a blind pass (no table
	// ref) leaves strictly more used blocks unaccounted.
	blind, err := Check(mem, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if blind.UnaccountedUsed <= rep.UnaccountedUsed {
		t.Fatalf("table keys did not shrink the unaccounted set (%d vs %d)",
			blind.UnaccountedUsed, rep.UnaccountedUsed)
	}

	// Deleting one partition file must fail discovery loudly.
	fs2, err := Mount(mem)
	if err != nil {
		t.Fatal(err)
	}
	db := fs2.NewHiddenView("db")
	if err := db.Adopt("ledger.p1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Delete("ledger.p1"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err = Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.TablesChecked != 0 {
		t.Fatalf("missing partition not detected:\n%s", rep.Summary())
	}
}

// TestFsckDetectsMissingKeyedFile: a key whose object does not exist on the
// volume is an error (the caller asserted it should be there).
func TestFsckDetectsMissingKeyedFile(t *testing.T) {
	mem, opts := newFsckVolume(t)
	opts.ViewFiles["alice"] = append(opts.ViewFiles["alice"], "never-created")
	rep, err := Check(mem, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("missing keyed file not detected")
	}
}
