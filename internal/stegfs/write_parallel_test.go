package stegfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"stegfs/internal/fsapi"
	"stegfs/internal/vdisk"
)

// The tests in this file pin the parallel write path: mutations of distinct
// hidden objects — and plain files — run concurrently over the sharded
// allocator with no whole-volume allocation lock. All of them are meant to
// run under -race.

// TestParallelDistinctObjectWrites: each goroutine owns a disjoint set of
// hidden files and churns them through the full mutation mix — in-place
// rewrite, delete, re-create, rewrite — through one shared view. Every
// object must come out with exactly its final payload, and the volume must
// not leak blocks across the churn.
func TestParallelDistinctObjectWrites(t *testing.T) {
	fs, _ := newTestFS(t, 32768, 512, func(p *Params) { p.DeterministicKeys = true })
	view := fs.NewHiddenView("u")
	const workers = 8
	const objsPerWorker = 3
	const rounds = 4
	payload := func(w, o, round int) []byte {
		return mkPayload(2000+o*512, byte(1+w*16+o*4+round%3))
	}
	for w := 0; w < workers; w++ {
		for o := 0; o < objsPerWorker; o++ {
			if err := view.Create(fmt.Sprintf("w%d/f%d", w, o), payload(w, o, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	free0 := fs.FreeBlocks()
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				for o := 0; o < objsPerWorker; o++ {
					name := fmt.Sprintf("w%d/f%d", w, o)
					if err := view.Write(name, payload(w, o, r)); err != nil {
						errs <- fmt.Errorf("%s rewrite %d: %w", name, r, err)
						return
					}
					if err := view.Delete(name); err != nil {
						errs <- fmt.Errorf("%s delete %d: %w", name, r, err)
						return
					}
					if err := view.Create(name, payload(w, o, r)); err != nil {
						errs <- fmt.Errorf("%s re-create %d: %w", name, r, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for o := 0; o < objsPerWorker; o++ {
			name := fmt.Sprintf("w%d/f%d", w, o)
			got, err := view.Read(name)
			if err != nil {
				t.Fatalf("%s after churn: %v", name, err)
			}
			if !bytes.Equal(got, payload(w, o, rounds)) {
				t.Fatalf("%s corrupted after churn", name)
			}
		}
	}
	// Churn is create/delete-balanced per object; pools may differ in fill
	// but never exceed FreeMax, so the free count must sit within the pool
	// slack of where it started.
	slack := int64(workers*objsPerWorker*fs.params.FreeMax) + 8
	if free1 := fs.FreeBlocks(); free1 < free0-slack || free1 > free0+slack {
		t.Fatalf("block leak across churn: free %d -> %d (slack %d)", free0, free1, slack)
	}
}

// TestPlainHiddenWriteInterleave: plain-file mutators and hidden-file
// writers share the allocator groups; running them concurrently must leave
// every file intact on both sides of the namespace.
func TestPlainHiddenWriteInterleave(t *testing.T) {
	fs, _ := newTestFS(t, 32768, 512, nil)
	view := fs.NewHiddenView("u")
	const rounds = 12
	hidden := mkPayload(5000, 0x21)
	plainA := mkPayload(3000, 0x42)
	plainB := mkPayload(3000, 0x43)
	if err := view.Create("h", hidden); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	wg.Add(3)
	go func() { // hidden writer
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if err := view.Write("h", hidden); err != nil {
				errs <- fmt.Errorf("hidden write %d: %w", r, err)
				return
			}
		}
	}()
	go func() { // plain create/write/delete churn
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			name := fmt.Sprintf("p%d", r%3)
			if err := fs.Create(name, plainA); err != nil && !errors.Is(err, fsapi.ErrExists) {
				errs <- fmt.Errorf("plain create %d: %w", r, err)
				return
			}
			if err := fs.Write(name, plainB); err != nil {
				errs <- fmt.Errorf("plain write %d: %w", r, err)
				return
			}
			if r%3 == 2 {
				if err := fs.Delete(name); err != nil {
					errs <- fmt.Errorf("plain delete %d: %w", r, err)
					return
				}
			}
		}
	}()
	go func() { // plain + hidden readers alongside the writers
		defer wg.Done()
		for r := 0; r < rounds*2; r++ {
			if got, err := view.Read("h"); err != nil {
				errs <- fmt.Errorf("hidden read %d: %w", r, err)
				return
			} else if !bytes.Equal(got, hidden) {
				errs <- fmt.Errorf("hidden read %d: corrupted", r)
				return
			}
			_, _ = fs.Read("p0") // may race with delete; content checked below
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := view.Read("h")
	if err != nil || !bytes.Equal(got, hidden) {
		t.Fatalf("hidden file after interleave: %v", err)
	}
	for _, name := range fs.PlainNames() {
		got, err := fs.Read(name)
		if err != nil {
			t.Fatalf("plain %s after interleave: %v", name, err)
		}
		if !bytes.Equal(got, plainB) {
			t.Fatalf("plain %s corrupted after interleave", name)
		}
	}
}

// TestSyncUnderWriteLoad: FS.Sync's freeze gate must quiesce hidden AND
// plain mutators (and the bitmap write must see quiesced allocation groups)
// while writers hammer the volume. After the dust settles, a remount from
// the synced device must see every plain file — Sync's bitmap was written
// with data already flushed — and the hidden files must read back intact.
func TestSyncUnderWriteLoad(t *testing.T) {
	store, err := vdisk.NewMemStore(32768, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 4 * 512
	p.MaxPlainFiles = 64
	p.DeterministicKeys = true
	fs, err := Format(store, p, WithCache(1024))
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("u")
	const workers = 4
	const rounds = 6
	payload := func(w int) []byte { return mkPayload(4000, byte(0x30+w)) }
	for w := 0; w < workers; w++ {
		if err := view.Create(fmt.Sprintf("f%d", w), payload(w)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var stop atomic.Bool
	errs := make(chan error, workers+2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", w)
			for r := 0; r < rounds; r++ {
				if err := view.Write(name, payload(w)); err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
					return
				}
				if err := view.Delete(name); err != nil {
					errs <- fmt.Errorf("%s delete: %w", name, err)
					return
				}
				if err := view.Create(name, payload(w)); err != nil {
					errs <- fmt.Errorf("%s re-create: %w", name, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // plain writer crossing the same Sync barriers
		defer wg.Done()
		for r := 0; !stop.Load(); r++ {
			if err := fs.Create(fmt.Sprintf("q%d", r), mkPayload(1500, byte(r))); err != nil {
				errs <- fmt.Errorf("plain create %d: %w", r, err)
				return
			}
		}
	}()
	syncs := 0
	for done := false; !done; {
		select {
		case err := <-errs:
			t.Fatal(err)
		default:
		}
		if err := fs.Sync(); err != nil {
			t.Fatalf("Sync under load: %v", err)
		}
		syncs++
		// Stop once the hidden churn finished (detect via a channel-free
		// join: try a non-blocking wait by checking after each sync round).
		if syncs >= 8 {
			done = true
		}
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Remount from the raw device image and verify both namespaces.
	fs2, err := Mount(store)
	if err != nil {
		t.Fatalf("remount after sync-under-load: %v", err)
	}
	view2 := fs2.NewHiddenView("u")
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("f%d", w)
		if err := view2.Adopt(name); err != nil {
			t.Fatalf("adopt %s on remount: %v", name, err)
		}
		got, err := view2.Read(name)
		if err != nil {
			t.Fatalf("%s on remount: %v", name, err)
		}
		if !bytes.Equal(got, payload(w)) {
			t.Fatalf("%s corrupted on remount", name)
		}
	}
	for _, name := range fs2.PlainNames() {
		if _, err := fs2.Read(name); err != nil {
			t.Fatalf("plain %s on remount: %v", name, err)
		}
	}
}

// TestBackupUnderWriteLoad: Backup freezes the volume mid-churn; the
// resulting stream must recover into a volume where every hidden object is
// wholly one of the two alternating payloads (never a torn mix) and the
// plain files restore.
func TestBackupUnderWriteLoad(t *testing.T) {
	fs, _ := newTestFS(t, 32768, 512, func(p *Params) { p.DeterministicKeys = true })
	view := fs.NewHiddenView("u")
	const files = 4
	a := mkPayload(4500, 0x5A)
	b := mkPayload(4500, 0xA5)
	for i := 0; i < files; i++ {
		if err := view.Create(fmt.Sprintf("f%d", i), a); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Create("plain", mkPayload(2000, 7)); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, files)
	for i := 0; i < files; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", i)
			for r := 0; !stop.Load(); r++ {
				p := a
				if r%2 == 1 {
					p = b
				}
				if err := view.Write(name, p); err != nil {
					errs <- fmt.Errorf("%s: %w", name, err)
					return
				}
			}
		}(i)
	}
	var img bytes.Buffer
	if err := fs.Backup(&img); err != nil {
		t.Fatalf("backup under write load: %v", err)
	}
	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	store2, err := vdisk.NewMemStore(32768, 512)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Recover(store2, bytes.NewReader(img.Bytes()))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	view2 := fs2.NewHiddenView("u")
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("f%d", i)
		if err := view2.Adopt(name); err != nil {
			t.Fatalf("adopt %s: %v", name, err)
		}
		got, err := view2.Read(name)
		if err != nil {
			t.Fatalf("%s from backup: %v", name, err)
		}
		if !bytes.Equal(got, a) && !bytes.Equal(got, b) {
			t.Fatalf("%s from backup is a torn mix of payloads", name)
		}
	}
	if _, err := fs2.Read("plain"); err != nil {
		t.Fatalf("plain file from backup: %v", err)
	}
}

// TestCreateHiddenBatch: the parallel batch create registers every object
// under the UAK, the contents round-trip, and duplicate names — in the
// batch or already registered — fail without leaving orphans.
func TestCreateHiddenBatch(t *testing.T) {
	fs, _ := newTestFS(t, 32768, 512, nil)
	s, err := fs.NewSession("u")
	if err != nil {
		t.Fatal(err)
	}
	uak := []byte("k")
	names := []string{"x0", "x1", "x2", "x3", "x4", "x5"}
	datas := make([][]byte, len(names))
	for i := range datas {
		datas[i] = mkPayload(1500+300*i, byte(i+1))
	}
	if err := s.CreateHiddenBatch(names, uak, datas, 4); err != nil {
		t.Fatal(err)
	}
	entries, err := s.ListHidden(uak)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("%d entries registered, want %d", len(entries), len(names))
	}
	for i, n := range names {
		if err := s.Connect(n, uak); err != nil {
			t.Fatalf("connect %s: %v", n, err)
		}
		got, err := s.ReadHidden(n)
		if err != nil {
			t.Fatalf("read %s: %v", n, err)
		}
		if !bytes.Equal(got, datas[i]) {
			t.Fatalf("%s corrupted", n)
		}
	}

	free0 := fs.FreeBlocks()
	if err := s.CreateHiddenBatch([]string{"y", "y"}, uak, [][]byte{{1}, {2}}, 2); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("duplicate in-batch name = %v, want ErrExists", err)
	}
	if err := s.CreateHiddenBatch([]string{"z", "x0"}, uak, [][]byte{{1}, {2}}, 2); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("existing-name batch = %v, want ErrExists", err)
	}
	// All-or-nothing: the failed batch must not have registered "z".
	entries, err = s.ListHidden(uak)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(names) {
		t.Fatalf("failed batch left %d entries, want %d (partial registration)", len(entries), len(names))
	}
	if err := s.Connect("z", uak); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("connect of rolled-back batch member = %v, want ErrNotFound", err)
	}
	// Rolled-back batches must not leak blocks (pool slack only).
	slack := int64(4 * fs.params.FreeMax)
	if free1 := fs.FreeBlocks(); free1 < free0-slack {
		t.Fatalf("failed batch leaked blocks: free %d -> %d", free0, free1)
	}
	// x0 must still read back after the failed batch tried to reuse it.
	got, err := s.ReadHidden("x0")
	if err != nil || !bytes.Equal(got, datas[0]) {
		t.Fatalf("x0 damaged by failed batch: %v", err)
	}

	// Multi-parent batch: entries split between the UAK root and a hidden
	// directory; registration groups by parent (one rewrite each).
	if err := s.CreateHidden("d", uak, FlagDir, nil); err != nil {
		t.Fatal(err)
	}
	nested := []string{"d/a", "top", "d/b"}
	nestedData := [][]byte{mkPayload(900, 0x61), mkPayload(900, 0x62), mkPayload(900, 0x63)}
	if err := s.CreateHiddenBatch(nested, uak, nestedData, 3); err != nil {
		t.Fatalf("multi-parent batch: %v", err)
	}
	for i, n := range nested {
		if err := s.Connect(n, uak); err != nil {
			t.Fatalf("connect %s: %v", n, err)
		}
		got, err := s.ReadHidden(n)
		if err != nil || !bytes.Equal(got, nestedData[i]) {
			t.Fatalf("%s from multi-parent batch: %v", n, err)
		}
	}
	// A failing multi-parent batch (duplicate under d) unwinds both parents.
	if err := s.CreateHiddenBatch([]string{"top2", "d/a"}, uak, [][]byte{{1}, {2}}, 2); !errors.Is(err, fsapi.ErrExists) {
		t.Fatalf("duplicate nested batch = %v, want ErrExists", err)
	}
	if err := s.Connect("top2", uak); !errors.Is(err, fsapi.ErrNotFound) {
		t.Fatalf("top2 from failed multi-parent batch = %v, want ErrNotFound", err)
	}
}

// TestRewriteOnFullVolumeRecycles: a reshaping rewrite on a (nearly) full
// volume cannot hold the old and new payload simultaneously; it must fall
// back to recycling the old blocks instead of wedging with ErrNoSpace —
// deletes of directory entries go through this path, so a full volume that
// refused would never free space again.
func TestRewriteOnFullVolumeRecycles(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, func(p *Params) { p.FreeMin = 0; p.FreeMax = 4 })
	view := fs.NewHiddenView("u")
	big := mkPayload(40*512, 0x11)
	if err := view.Create("big", big); err != nil {
		t.Fatal(err)
	}
	// Exhaust the remaining free space.
	var eaten int
	for {
		if err := view.Create(fmt.Sprintf("fill%03d", eaten), mkPayload(8*512, 0x22)); err != nil {
			break
		}
		eaten++
	}
	if fs.FreeBlocks() > 4 {
		t.Fatalf("volume not full enough: %d free", fs.FreeBlocks())
	}
	// Reshape "big" down: needs 20 fresh blocks while 40 old ones are still
	// held — impossible without recycling.
	smaller := mkPayload(20*512, 0x33)
	if err := view.Write("big", smaller); err != nil {
		t.Fatalf("reshaping rewrite on full volume: %v", err)
	}
	got, err := view.Read("big")
	if err != nil || !bytes.Equal(got, smaller) {
		t.Fatalf("rewrite on full volume corrupted payload: %v", err)
	}
	// The shrink must have returned space to the volume.
	if err := view.Delete("big"); err != nil {
		t.Fatalf("delete after full-volume rewrite: %v", err)
	}
}

// TestConcurrentSessionCreates: steg_create's bulk write now runs outside
// nsMu, so concurrent creates of distinct names overlap; every name must
// end up registered exactly once with intact content.
func TestConcurrentSessionCreates(t *testing.T) {
	fs, _ := newTestFS(t, 32768, 512, nil)
	s, err := fs.NewSession("u")
	if err != nil {
		t.Fatal(err)
	}
	uak := []byte("k")
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	payload := func(w int) []byte { return mkPayload(2500, byte(w+1)) }
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := s.CreateHidden(fmt.Sprintf("c%d", w), uak, FlagFile, payload(w)); err != nil {
				errs <- fmt.Errorf("create c%d: %w", w, err)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	entries, err := s.ListHidden(uak)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != workers {
		t.Fatalf("%d entries registered, want %d", len(entries), workers)
	}
	for w := 0; w < workers; w++ {
		name := fmt.Sprintf("c%d", w)
		if err := s.Connect(name, uak); err != nil {
			t.Fatalf("connect %s: %v", name, err)
		}
		got, err := s.ReadHidden(name)
		if err != nil || !bytes.Equal(got, payload(w)) {
			t.Fatalf("%s corrupted: %v", name, err)
		}
	}
}

// TestWriteScalingAcrossGroups is the in-package smoke for the A6 property:
// concurrent creators from many goroutines must all succeed and place
// blocks across many allocation groups (no single-group convoy).
func TestWriteScalingAcrossGroups(t *testing.T) {
	fs, _ := newTestFS(t, 65536, 512, nil)
	view := fs.NewHiddenView("u")
	if g := fs.Alloc().Groups(); g < 8 {
		t.Fatalf("test volume built only %d allocation groups", g)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for o := 0; o < 4; o++ {
				if err := view.Create(fmt.Sprintf("g%d_%d", w, o), mkPayload(3000, byte(w+1))); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The created blocks must spread over many groups.
	groups := make(map[int]bool)
	for w := 0; w < workers; w++ {
		for o := 0; o < 4; o++ {
			data, all, err := view.BlocksOf(fmt.Sprintf("g%d_%d", w, o))
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range append(data, all...) {
				groups[fs.Alloc().GroupOf(b)] = true
			}
		}
	}
	if len(groups) < fs.Alloc().Groups()/4 {
		t.Fatalf("allocations clustered in %d of %d groups", len(groups), fs.Alloc().Groups())
	}
}
