package stegfs

import (
	"errors"
	"testing"

	"stegfs/internal/fsapi"
)

// TestPoolTakeEmptyPoolFallsBackToVolume: with FreeMax=0 the internal pool
// is always empty, so poolTake must allocate directly from the volume bitmap
// and leave the pool empty.
func TestPoolTakeEmptyPoolFallsBackToVolume(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, func(p *Params) { p.FreeMin = 0; p.FreeMax = 0 })
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, mkPayload(512, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.hdr.free) != 0 {
		t.Fatalf("FreeMax=0 volume seeded a pool of %d blocks", len(r.hdr.free))
	}
	b, err := fs.poolTake(r)
	if err != nil {
		t.Fatalf("poolTake with empty pool: %v", err)
	}
	if !fs.alloc.Test(b) {
		t.Fatalf("block %d from empty-pool take not marked used in bitmap", b)
	}
	if len(r.hdr.free) != 0 {
		t.Fatalf("empty-pool take grew the pool to %d", len(r.hdr.free))
	}
}

// TestPoolTopUpClampedToHeaderCapacity: a FreeMax larger than the header
// block can persist must clamp at freeCapacity, or flushHeader would fail on
// every header write.
func TestPoolTopUpClampedToHeaderCapacity(t *testing.T) {
	const bs = 512
	capHdr := freeCapacity(bs)
	fs, _ := newTestFS(t, 8192, bs, func(p *Params) { p.FreeMax = capHdr * 4 })
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, mkPayload(bs, 1))
	if err != nil {
		t.Fatal(err)
	}
	fs.poolTopUp(r)
	if len(r.hdr.free) > capHdr {
		t.Fatalf("pool %d exceeds header capacity %d", len(r.hdr.free), capHdr)
	}
	if len(r.hdr.free) != capHdr {
		t.Fatalf("pool %d, want clamp exactly at header capacity %d", len(r.hdr.free), capHdr)
	}
	// The clamped pool must still round-trip through the header encoder.
	if err := fs.flushHeader(r); err != nil {
		t.Fatalf("header with clamped pool failed to flush: %v", err)
	}
}

// TestPoolGiveBeyondClampReturnsToVolume: once the pool sits at the header
// clamp, poolGive must release blocks back to the volume bitmap instead of
// overflowing the header.
func TestPoolGiveBeyondClampReturnsToVolume(t *testing.T) {
	const bs = 512
	capHdr := freeCapacity(bs)
	fs, _ := newTestFS(t, 8192, bs, func(p *Params) { p.FreeMax = capHdr * 4 })
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs.poolTopUp(r)
	if len(r.hdr.free) != capHdr {
		t.Fatalf("pool %d after top-up, want %d", len(r.hdr.free), capHdr)
	}
	b, err := fs.alloc.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	fs.poolGive(r, b)
	if len(r.hdr.free) != capHdr {
		t.Fatalf("poolGive overflowed the clamped pool to %d", len(r.hdr.free))
	}
	if fs.alloc.Test(b) {
		t.Fatalf("block %d given to a full pool was not freed back to the volume", b)
	}
}

// TestPoolTakeFullVolumeReportsNoSpace: when the pool is empty and the
// volume has no free blocks left, poolTake surfaces ErrNoSpace instead of
// looping or panicking.
func TestPoolTakeFullVolumeReportsNoSpace(t *testing.T) {
	fs, _ := newTestFS(t, 2048, 512, func(p *Params) { p.FreeMin = 0; p.FreeMax = 0 })
	r, err := fs.createHidden("u/f", []byte("k"), FlagFile, mkPayload(512, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the volume.
	for {
		if _, err := fs.alloc.Alloc(); err != nil {
			break
		}
	}
	if _, err := fs.poolTake(r); !errors.Is(err, fsapi.ErrNoSpace) {
		t.Fatalf("poolTake on full volume = %v, want ErrNoSpace", err)
	}
}
