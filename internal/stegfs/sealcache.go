package stegfs

import (
	"sync"

	"stegfs/internal/sgcrypto"
)

// sealerDefaultMax bounds the sealer cache. An entry is one expanded AES
// schedule plus a block number (~350 bytes), so the cap costs at most a
// couple of megabytes while covering far more simultaneously hot objects
// than any workload in this repository touches.
const sealerDefaultMax = 4096

// sealerCache memoizes the expensive part of opening a hidden object: the
// key-derivation/AES-schedule work of building its Sealer and — more
// importantly — the result of the pseudorandom header probe, keyed by the
// object's header signature. A hit turns open from "hash chain + O(probes)
// block reads" into a single sealed read of the remembered header block.
//
// Entries are hints, not truth. The open path re-reads the header block
// under the object lock and verifies the embedded signature, falling back
// to a full probe (and dropping the entry) when it no longer matches — an
// object deleted, or deleted and re-created at a different header block,
// costs one wasted block read but can never serve wrong data. destroyHidden
// drops the entry eagerly; a probe racing a destroy can at worst re-insert
// a stale hint, which the verify-on-open heals the same way.
type sealerCache struct {
	// mu is deliberately unleveled (guard discipline, like lockTable.mu): it
	// protects only the map, is held for a few map operations at a time, and
	// never wraps another acquisition.
	mu sync.Mutex
	// lockcheck:guardedby mu
	m   map[[sgcrypto.SignatureLen]byte]sealerEntry
	max int
}

type sealerEntry struct {
	sealer    *sgcrypto.Sealer
	headerBlk int64
}

func newSealerCache() *sealerCache {
	return &sealerCache{m: make(map[[sgcrypto.SignatureLen]byte]sealerEntry), max: sealerDefaultMax}
}

// get returns the cached open state for sig, if any.
func (c *sealerCache) get(sig [sgcrypto.SignatureLen]byte) (*sgcrypto.Sealer, int64, bool) {
	c.mu.Lock()
	e, ok := c.m[sig]
	c.mu.Unlock()
	return e.sealer, e.headerBlk, ok
}

// add remembers the open state for sig, evicting an arbitrary entry at
// capacity (evicted objects simply pay the probe again on next open).
func (c *sealerCache) add(sig [sgcrypto.SignatureLen]byte, s *sgcrypto.Sealer, headerBlk int64) {
	c.mu.Lock()
	if _, ok := c.m[sig]; !ok && len(c.m) >= c.max {
		for k := range c.m {
			delete(c.m, k)
			break
		}
	}
	c.m[sig] = sealerEntry{sealer: s, headerBlk: headerBlk}
	c.mu.Unlock()
}

// drop forgets sig (object destroyed, or its hint proved stale).
func (c *sealerCache) drop(sig [sgcrypto.SignatureLen]byte) {
	c.mu.Lock()
	delete(c.m, sig)
	c.mu.Unlock()
}
