package stegfs

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// hdrNumDirect is the number of direct data pointers in a hidden header.
const hdrNumDirect = 24

// hdrMagic follows the signature inside a decrypted header; it is redundant
// with the signature (which is what actually authenticates the header) and
// exists as a cheap self-check for corruption diagnostics.
var hdrMagic = [4]byte{'S', 'G', 'H', '1'}

// hdrFixedLen is the length of the fixed part of a hidden header:
// sig(32) magic(4) flags(1) pad(3) size(8) nblocks(8)
// direct(24*8) single(8) double(8) freeCount(2).
const hdrFixedLen = 32 + 4 + 1 + 3 + 8 + 8 + hdrNumDirect*8 + 8 + 8 + 2

// header is the in-memory form of a hidden object's header block (Figure 2:
// signature, link to inode table, free-blocks list).
type header struct {
	sig     [sgcrypto.SignatureLen]byte
	flags   byte
	size    int64
	nblocks int64
	root    ptree.Root
	free    []int64 // internal pool of free blocks held by this file
}

// freeCapacity returns how many free-pool entries fit in a header block.
func freeCapacity(blockSize int) int { return (blockSize - hdrFixedLen) / 8 }

// encodeHeader serializes h into a block-size buffer (plaintext; the caller
// seals it).
func encodeHeader(h *header, buf []byte) error {
	if len(buf) < hdrFixedLen {
		return fmt.Errorf("stegfs: block size %d too small for header (%d)", len(buf), hdrFixedLen)
	}
	if len(h.free) > freeCapacity(len(buf)) {
		return fmt.Errorf("stegfs: free pool %d exceeds header capacity %d", len(h.free), freeCapacity(len(buf)))
	}
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, h.sig[:])
	copy(buf[32:], hdrMagic[:])
	buf[36] = h.flags
	off := 40
	binary.BigEndian.PutUint64(buf[off:], uint64(h.size))
	binary.BigEndian.PutUint64(buf[off+8:], uint64(h.nblocks))
	off += 16
	if len(h.root.Direct) != hdrNumDirect {
		return fmt.Errorf("stegfs: header root has %d direct slots, want %d", len(h.root.Direct), hdrNumDirect)
	}
	for i := 0; i < hdrNumDirect; i++ {
		binary.BigEndian.PutUint64(buf[off+i*8:], uint64(h.root.Direct[i]))
	}
	off += hdrNumDirect * 8
	binary.BigEndian.PutUint64(buf[off:], uint64(h.root.Single))
	binary.BigEndian.PutUint64(buf[off+8:], uint64(h.root.Double))
	off += 16
	binary.BigEndian.PutUint16(buf[off:], uint16(len(h.free)))
	off += 2
	for i, b := range h.free {
		binary.BigEndian.PutUint64(buf[off+i*8:], uint64(b))
	}
	return nil
}

// decodeHeader parses a decrypted header block. It returns false when the
// signature does not match (the block belongs to something else or is free
// space).
func decodeHeader(buf []byte, wantSig [sgcrypto.SignatureLen]byte) (*header, bool, error) {
	if len(buf) < hdrFixedLen {
		return nil, false, fmt.Errorf("stegfs: header buffer too small")
	}
	if !bytes.Equal(buf[:32], wantSig[:]) {
		return nil, false, nil
	}
	if !bytes.Equal(buf[32:36], hdrMagic[:]) {
		// Signature matched but magic did not: a 2^-256 accident or real
		// corruption. Report it loudly.
		return nil, false, fmt.Errorf("stegfs: header signature match with corrupt magic")
	}
	h := &header{root: ptree.NewRoot(hdrNumDirect)}
	copy(h.sig[:], buf[:32])
	h.flags = buf[36]
	off := 40
	h.size = int64(binary.BigEndian.Uint64(buf[off:]))
	h.nblocks = int64(binary.BigEndian.Uint64(buf[off+8:]))
	off += 16
	for i := 0; i < hdrNumDirect; i++ {
		h.root.Direct[i] = int64(binary.BigEndian.Uint64(buf[off+i*8:]))
	}
	off += hdrNumDirect * 8
	h.root.Single = int64(binary.BigEndian.Uint64(buf[off:]))
	h.root.Double = int64(binary.BigEndian.Uint64(buf[off+8:]))
	off += 16
	n := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if n > freeCapacity(len(buf)) {
		return nil, false, fmt.Errorf("stegfs: corrupt header: free count %d", n)
	}
	h.free = make([]int64, n)
	for i := 0; i < n; i++ {
		h.free[i] = int64(binary.BigEndian.Uint64(buf[off+i*8:]))
	}
	return h, true, nil
}

// encIO is a ptree.BlockIO view of the device that transparently seals and
// opens blocks with a hidden object's sealer, so everything a hidden object
// writes is indistinguishable from random bytes on disk.
type encIO struct {
	dev    vdisk.Device
	sealer *sgcrypto.Sealer
}

func (e encIO) BlockSize() int { return e.dev.BlockSize() }

func (e encIO) ReadBlock(n int64, buf []byte) error {
	if err := e.dev.ReadBlock(n, buf); err != nil {
		return err
	}
	return e.sealer.Open(n, buf, buf)
}

func (e encIO) WriteBlock(n int64, buf []byte) error {
	ct := make([]byte, len(buf))
	if err := e.sealer.Seal(n, ct, buf); err != nil {
		return err
	}
	return e.dev.WriteBlock(n, ct)
}

// hiddenRef is an open handle to a located hidden object.
type hiddenRef struct {
	physName  string
	fak       []byte
	sealer    *sgcrypto.Sealer
	headerBlk int64
	hdr       *header
}

func (r *hiddenRef) io(dev vdisk.Device) encIO { return encIO{dev: dev, sealer: r.sealer} }

// --- Locating and creating headers ------------------------------------------

// probeHeader runs the pseudorandom block-number generator and returns the
// first candidate holding a matching signature (retrieval mode), mirroring
// §3.1: "looks for the first block number that is marked as assigned in the
// bitmap and contains a matching file signature".
func (fs *FS) probeHeader(physName string, fak []byte) (*hiddenRef, error) {
	sealer, err := sgcrypto.NewSealer(physName, fak)
	if err != nil {
		return nil, err
	}
	want := sgcrypto.Signature(physName, fak)
	gen := sgcrypto.NewPRBG(sgcrypto.HeaderSeed(physName, fak), fs.dev.NumBlocks())
	buf := make([]byte, fs.dev.BlockSize())
	freeSeen := 0
	for i := 0; i < fs.params.MaxHeaderProbes; i++ {
		cand := gen.Next()
		if !fs.bm.Test(cand) {
			// Free block: cannot be the header. A header always lands on the
			// first creation-time-free candidate, so after enough free
			// candidates with no match the object does not exist (each one
			// would have to have been allocated at creation and freed since).
			freeSeen++
			if freeSeen >= fs.params.FreeProbeStop {
				break
			}
			continue
		}
		if err := fs.dev.ReadBlock(cand, buf); err != nil {
			return nil, err
		}
		if err := sealer.Open(cand, buf, buf); err != nil {
			return nil, err
		}
		h, ok, err := decodeHeader(buf, want)
		if err != nil {
			return nil, err
		}
		if ok {
			return &hiddenRef{physName: physName, fak: fak, sealer: sealer, headerBlk: cand, hdr: h}, nil
		}
	}
	return nil, fmt.Errorf("%w: hidden object %q", fsapi.ErrNotFound, physName)
}

// allocHeaderBlock runs the generator in creation mode: the first candidate
// that is free in the bitmap becomes the header block.
func (fs *FS) allocHeaderBlock(physName string, fak []byte) (int64, error) {
	gen := sgcrypto.NewPRBG(sgcrypto.HeaderSeed(physName, fak), fs.dev.NumBlocks())
	for i := 0; i < fs.params.MaxHeaderProbes; i++ {
		cand := gen.Next()
		if cand < int64(fs.sb.dataStart) {
			continue // metadata region is never free, skip cheaply
		}
		if !fs.bm.Test(cand) {
			if err := fs.bm.Set(cand); err != nil {
				return 0, err
			}
			return cand, nil
		}
	}
	return 0, fmt.Errorf("%w: no free header block within %d probes", fsapi.ErrNoSpace, fs.params.MaxHeaderProbes)
}

// --- Free-pool management (§3.1) --------------------------------------------

// poolTake removes and returns a random block from the object's internal
// free pool, topping the pool up from the file system when it falls below
// FreeMin. When the pool is empty it allocates directly from the volume.
func (fs *FS) poolTake(r *hiddenRef) (int64, error) {
	h := r.hdr
	if len(h.free) == 0 {
		b, err := fs.bm.AllocRandomFree(fs.rng)
		if err != nil {
			return 0, fsapi.ErrNoSpace
		}
		return b, nil
	}
	i := fs.rng.Intn(len(h.free))
	b := h.free[i]
	h.free[i] = h.free[len(h.free)-1]
	h.free = h.free[:len(h.free)-1]
	if len(h.free) < fs.params.FreeMin {
		fs.poolTopUp(r)
	}
	return b, nil
}

// poolTopUp refills the pool to FreeMax with random free blocks. Shortfalls
// are tolerated (the volume may simply be full).
func (fs *FS) poolTopUp(r *hiddenRef) {
	capHdr := freeCapacity(fs.dev.BlockSize())
	target := fs.params.FreeMax
	if target > capHdr {
		target = capHdr
	}
	for len(r.hdr.free) < target {
		b, err := fs.bm.AllocRandomFree(fs.rng)
		if err != nil {
			return
		}
		r.hdr.free = append(r.hdr.free, b)
	}
}

// poolGive returns a freed block to the pool; once the pool exceeds FreeMax
// the block goes back to the file system instead (§3.1 truncation rule).
func (fs *FS) poolGive(r *hiddenRef, b int64) {
	capHdr := freeCapacity(fs.dev.BlockSize())
	limit := fs.params.FreeMax
	if limit > capHdr {
		limit = capHdr
	}
	if len(r.hdr.free) < limit {
		r.hdr.free = append(r.hdr.free, b)
		return
	}
	_ = fs.bm.Clear(b)
}

// --- Hidden object CRUD ------------------------------------------------------

// createHidden stores a new hidden object. The caller holds fs.mu.
func (fs *FS) createHidden(physName string, fak []byte, flags byte, data []byte) (*hiddenRef, error) {
	// Refuse to overwrite an existing object with the same (name, key).
	if _, err := fs.probeHeader(physName, fak); err == nil {
		return nil, fmt.Errorf("%w: hidden object %q", fsapi.ErrExists, physName)
	}
	sealer, err := sgcrypto.NewSealer(physName, fak)
	if err != nil {
		return nil, err
	}
	hb, err := fs.allocHeaderBlock(physName, fak)
	if err != nil {
		return nil, err
	}
	r := &hiddenRef{physName: physName, fak: fak, sealer: sealer, headerBlk: hb}
	r.hdr = &header{
		sig:   sgcrypto.Signature(physName, fak),
		flags: flags,
		root:  ptree.NewRoot(hdrNumDirect),
	}
	// "When a hidden file is created, StegFS straightaway allocates several
	// blocks to the file" — seed the internal free pool.
	fs.poolTopUp(r)

	if err := fs.writeHiddenData(r, data); err != nil {
		fs.destroyHiddenLocked(r)
		return nil, err
	}
	// The data write may have drained the pool; the created file must end
	// up holding its free blocks (Figure 2: the header carries a persistent
	// free-blocks list), or bitmap-snapshot deltas would expose exactly the
	// data blocks.
	fs.poolTopUp(r)
	if err := fs.flushHeader(r); err != nil {
		fs.destroyHiddenLocked(r)
		return nil, err
	}
	return r, nil
}

// writeHiddenData allocates blocks (via the pool) and writes the payload and
// its pointer tree. It fills in r.hdr.{size,nblocks,root}.
func (fs *FS) writeHiddenData(r *hiddenRef, data []byte) error {
	bs := fs.dev.BlockSize()
	n := (int64(len(data)) + int64(bs) - 1) / int64(bs)
	blocks := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		b, err := fs.poolTake(r)
		if err != nil {
			for _, blk := range blocks {
				_ = fs.bm.Clear(blk)
			}
			return err
		}
		blocks = append(blocks, b)
	}
	io := r.io(fs.dev)
	buf := make([]byte, bs)
	for i, b := range blocks {
		for j := range buf {
			buf[j] = 0
		}
		off := i * bs
		if off < len(data) {
			copy(buf, data[off:])
		}
		if err := io.WriteBlock(b, buf); err != nil {
			return err
		}
	}
	root, _, err := ptree.Write(io, func() (int64, error) { return fs.poolTake(r) }, hdrNumDirect, blocks)
	if err != nil {
		return err
	}
	r.hdr.root = root
	r.hdr.size = int64(len(data))
	r.hdr.nblocks = n
	return nil
}

// flushHeader seals and writes the header block.
func (fs *FS) flushHeader(r *hiddenRef) error {
	buf := make([]byte, fs.dev.BlockSize())
	if err := encodeHeader(r.hdr, buf); err != nil {
		return err
	}
	return r.io(fs.dev).WriteBlock(r.headerBlk, buf)
}

// readHidden returns the full payload of an open hidden object.
func (fs *FS) readHidden(r *hiddenRef) ([]byte, error) {
	io := r.io(fs.dev)
	blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	bs := fs.dev.BlockSize()
	out := make([]byte, r.hdr.nblocks*int64(bs))
	buf := make([]byte, bs)
	for i, b := range blocks {
		if err := io.ReadBlock(b, buf); err != nil {
			return nil, err
		}
		copy(out[i*bs:], buf)
	}
	return out[:r.hdr.size], nil
}

// rewriteHidden replaces the payload of an open hidden object. Same-shape
// payloads are updated in place; otherwise old blocks are released through
// the pool and fresh ones allocated.
func (fs *FS) rewriteHidden(r *hiddenRef, data []byte) error {
	bs := fs.dev.BlockSize()
	n := (int64(len(data)) + int64(bs) - 1) / int64(bs)
	io := r.io(fs.dev)
	if n == r.hdr.nblocks {
		blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks)
		if err != nil {
			return err
		}
		buf := make([]byte, bs)
		for i, b := range blocks {
			for j := range buf {
				buf[j] = 0
			}
			off := i * bs
			if off < len(data) {
				copy(buf, data[off:])
			}
			if err := io.WriteBlock(b, buf); err != nil {
				return err
			}
		}
		r.hdr.size = int64(len(data))
		return fs.flushHeader(r)
	}
	// Release old data and pointer blocks through the pool.
	blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return err
	}
	if err := ptree.Free(io, r.hdr.root, r.hdr.nblocks, func(b int64) { fs.poolGive(r, b) }); err != nil {
		return err
	}
	for _, b := range blocks {
		fs.poolGive(r, b)
	}
	if err := fs.writeHiddenData(r, data); err != nil {
		return err
	}
	return fs.flushHeader(r)
}

// destroyHiddenLocked frees everything the object holds: data blocks,
// pointer blocks, pooled free blocks and the header itself.
func (fs *FS) destroyHiddenLocked(r *hiddenRef) {
	io := r.io(fs.dev)
	if r.hdr != nil && r.hdr.nblocks > 0 {
		if blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks); err == nil {
			for _, b := range blocks {
				_ = fs.bm.Clear(b)
			}
		}
		_ = ptree.Free(io, r.hdr.root, r.hdr.nblocks, func(b int64) { _ = fs.bm.Clear(b) })
	}
	if r.hdr != nil {
		for _, b := range r.hdr.free {
			_ = fs.bm.Clear(b)
		}
	}
	_ = fs.bm.Clear(r.headerBlk)
}

// hiddenBlocks returns every block an open hidden object occupies: header,
// data, pointer blocks and pooled free blocks. Backup images these.
func (fs *FS) hiddenBlocks(r *hiddenRef) ([]int64, error) {
	io := r.io(fs.dev)
	out := []int64{r.headerBlk}
	blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	out = append(out, blocks...)
	meta, err := ptree.MetaBlocks(io, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	out = append(out, meta...)
	out = append(out, r.hdr.free...)
	return out, nil
}
