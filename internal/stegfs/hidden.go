package stegfs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"runtime"
	"sync"
	"sync/atomic"

	"stegfs/internal/fsapi"
	"stegfs/internal/ptree"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// hdrNumDirect is the number of direct data pointers in a hidden header.
const hdrNumDirect = 24

// hdrMagic follows the signature inside a decrypted header; it is redundant
// with the signature (which identifies the header as ours) and exists as a
// cheap self-check for corruption diagnostics.
var hdrMagic = [4]byte{'S', 'G', 'H', '1'}

// hdrCRCOff / hdrBodyOff delimit the header content checksum: a CRC32 of
// everything after the checksum field. The signature only proves the block
// belongs to (name, key) — it says nothing about the fields, and the CTR
// seal is malleable, so a media bit flip in size/nblocks/pointers would
// otherwise decode cleanly and send readers chasing garbage. The CRC makes
// post-decrypt corruption a detectable error instead.
const (
	hdrCRCOff  = 37
	hdrBodyOff = 41
)

// hdrFixedLen is the length of the fixed part of a hidden header:
// sig(32) magic(4) flags(1) crc(4) pad(3) size(8) nblocks(8)
// direct(24*8) single(8) double(8) freeCount(2).
const hdrFixedLen = 32 + 4 + 1 + 4 + 3 + 8 + 8 + hdrNumDirect*8 + 8 + 8 + 2

// header is the in-memory form of a hidden object's header block (Figure 2:
// signature, link to inode table, free-blocks list).
type header struct {
	sig     [sgcrypto.SignatureLen]byte
	flags   byte
	size    int64
	nblocks int64
	root    ptree.Root
	free    []int64 // internal pool of free blocks held by this file
}

// freeCapacity returns how many free-pool entries fit in a header block.
func freeCapacity(blockSize int) int { return (blockSize - hdrFixedLen) / 8 }

// encodeHeader serializes h into a block-size buffer (plaintext; the caller
// seals it).
func encodeHeader(h *header, buf []byte) error {
	if len(buf) < hdrFixedLen {
		return fmt.Errorf("stegfs: block size %d too small for header (%d)", len(buf), hdrFixedLen)
	}
	if len(h.free) > freeCapacity(len(buf)) {
		return fmt.Errorf("stegfs: free pool %d exceeds header capacity %d", len(h.free), freeCapacity(len(buf)))
	}
	for i := range buf {
		buf[i] = 0
	}
	copy(buf, h.sig[:])
	copy(buf[32:], hdrMagic[:])
	buf[36] = h.flags
	off := 44
	binary.BigEndian.PutUint64(buf[off:], uint64(h.size))
	binary.BigEndian.PutUint64(buf[off+8:], uint64(h.nblocks))
	off += 16
	if len(h.root.Direct) != hdrNumDirect {
		return fmt.Errorf("stegfs: header root has %d direct slots, want %d", len(h.root.Direct), hdrNumDirect)
	}
	for i := 0; i < hdrNumDirect; i++ {
		binary.BigEndian.PutUint64(buf[off+i*8:], uint64(h.root.Direct[i]))
	}
	off += hdrNumDirect * 8
	binary.BigEndian.PutUint64(buf[off:], uint64(h.root.Single))
	binary.BigEndian.PutUint64(buf[off+8:], uint64(h.root.Double))
	off += 16
	binary.BigEndian.PutUint16(buf[off:], uint16(len(h.free)))
	off += 2
	for i, b := range h.free {
		binary.BigEndian.PutUint64(buf[off+i*8:], uint64(b))
	}
	binary.BigEndian.PutUint32(buf[hdrCRCOff:], crc32.ChecksumIEEE(buf[hdrBodyOff:]))
	return nil
}

// decodeHeader parses a decrypted header block. It returns false when the
// signature does not match (the block belongs to something else or is free
// space).
func decodeHeader(buf []byte, wantSig [sgcrypto.SignatureLen]byte) (*header, bool, error) {
	h := &header{}
	ok, err := decodeHeaderInto(buf, wantSig, h)
	if !ok || err != nil {
		return nil, ok, err
	}
	return h, true, nil
}

// decodeHeaderInto is decodeHeader reusing h's backing storage (the direct
// pointer and free-pool slices grow once and are re-sliced thereafter), so a
// pooled ref re-reads its header without allocating.
func decodeHeaderInto(buf []byte, wantSig [sgcrypto.SignatureLen]byte, h *header) (bool, error) {
	if len(buf) < hdrFixedLen {
		return false, fmt.Errorf("stegfs: header buffer too small")
	}
	if !bytes.Equal(buf[:32], wantSig[:]) {
		return false, nil
	}
	if !bytes.Equal(buf[32:36], hdrMagic[:]) {
		// Signature matched but magic did not: a 2^-256 accident or real
		// corruption. Report it loudly.
		return false, fmt.Errorf("stegfs: header signature match with corrupt magic")
	}
	if got := crc32.ChecksumIEEE(buf[hdrBodyOff:]); got != binary.BigEndian.Uint32(buf[hdrCRCOff:]) {
		return false, fmt.Errorf("stegfs: header content checksum mismatch")
	}
	if cap(h.root.Direct) >= hdrNumDirect {
		h.root.Direct = h.root.Direct[:hdrNumDirect]
	} else {
		h.root.Direct = make([]int64, hdrNumDirect)
	}
	copy(h.sig[:], buf[:32])
	h.flags = buf[36]
	off := 44
	h.size = int64(binary.BigEndian.Uint64(buf[off:]))
	h.nblocks = int64(binary.BigEndian.Uint64(buf[off+8:]))
	off += 16
	for i := 0; i < hdrNumDirect; i++ {
		h.root.Direct[i] = int64(binary.BigEndian.Uint64(buf[off+i*8:]))
	}
	off += hdrNumDirect * 8
	h.root.Single = int64(binary.BigEndian.Uint64(buf[off:]))
	h.root.Double = int64(binary.BigEndian.Uint64(buf[off+8:]))
	off += 16
	n := int(binary.BigEndian.Uint16(buf[off:]))
	off += 2
	if n > freeCapacity(len(buf)) {
		return false, fmt.Errorf("stegfs: corrupt header: free count %d", n)
	}
	if cap(h.free) >= n {
		h.free = h.free[:n]
	} else {
		h.free = make([]int64, n)
	}
	for i := 0; i < n; i++ {
		h.free[i] = int64(binary.BigEndian.Uint64(buf[off+i*8:]))
	}
	return true, nil
}

// --- Sealed block I/O --------------------------------------------------------

// Bounds for the per-operation seal/open fan-out: the CTR transform of each
// block is independent, so large batches spread across a few workers. The
// cap stays low because the fan-out is per operation — concurrent readers
// already occupy the remaining cores — and a single-CPU box skips it.
const (
	sealMaxWorkers = 4
	sealFanMin     = 32 // below this many blocks the fan-out overhead loses
)

// fanBlocks runs fn(0..n-1), fanning out across a bounded worker pool when
// the batch is large enough and more than one CPU is available. The first
// error stops the fan-out and is returned.
func fanBlocks(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > sealMaxWorkers {
		workers = sealMaxWorkers
	}
	if workers <= 1 || n < sealFanMin {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// encIO is a ptree.BlockIO view of the device that transparently seals and
// opens blocks with a hidden object's sealer, so everything a hidden object
// writes is indistinguishable from random bytes on disk. It also implements
// ptree.BatchBlockIO / the vectored block API: batches go to the device as
// one sorted submission and the per-block CTR transforms fan out across a
// bounded worker pool. The ciphertext staging buffer is reused across calls,
// so steady-state writes allocate nothing per block.
//
// An encIO is bound to one operation on one hidden object; it is not safe
// for concurrent use (the sealer is, but the scratch buffer is not).
type encIO struct {
	dev     vdisk.Device
	sealer  *sgcrypto.Sealer
	scratch []byte   // reused ciphertext staging for writes
	ctBufs  [][]byte // reused block views over scratch
}

func (e *encIO) BlockSize() int { return e.dev.BlockSize() }

func (e *encIO) ReadBlock(n int64, buf []byte) error {
	if err := e.dev.ReadBlock(n, buf); err != nil {
		return err
	}
	return e.sealer.Open(n, buf, buf)
}

func (e *encIO) WriteBlock(n int64, buf []byte) error {
	if cap(e.scratch) < len(buf) {
		e.scratch = make([]byte, len(buf))
	}
	ct := e.scratch[:len(buf)]
	if err := e.sealer.Seal(n, ct, buf); err != nil {
		return err
	}
	return e.dev.WriteBlock(n, ct)
}

// ReadBlocks fetches the batch in one sorted device submission and decrypts
// the blocks in place.
func (e *encIO) ReadBlocks(ns []int64, bufs [][]byte) error {
	if err := vdisk.ReadBlocks(e.dev, ns, bufs); err != nil {
		return err
	}
	return fanBlocks(len(ns), func(i int) error {
		return e.sealer.Open(ns[i], bufs[i], bufs[i])
	})
}

// WriteBlocks seals the batch into the reused staging area and submits one
// sorted device write.
func (e *encIO) WriteBlocks(ns []int64, bufs [][]byte) error {
	if len(ns) != len(bufs) {
		return fmt.Errorf("%w: %d block numbers, %d buffers", vdisk.ErrBadBuffer, len(ns), len(bufs))
	}
	bs := e.dev.BlockSize()
	if cap(e.scratch) < len(ns)*bs {
		e.scratch = make([]byte, len(ns)*bs)
	}
	ct := e.scratch[:len(ns)*bs]
	cts := e.ctViews(ct, len(ns), bs)
	if err := fanBlocks(len(ns), func(i int) error {
		return e.sealer.Seal(ns[i], cts[i], bufs[i])
	}); err != nil {
		return err
	}
	return vdisk.WriteBlocks(e.dev, ns, cts)
}

// ctViews re-slices the reused view list over the ciphertext staging area.
func (e *encIO) ctViews(ct []byte, n, bs int) [][]byte {
	if cap(e.ctBufs) < n {
		e.ctBufs = make([][]byte, n)
	}
	cts := e.ctBufs[:n]
	for i := range cts {
		cts[i] = ct[i*bs : (i+1)*bs]
	}
	return cts
}

// ReadSpan is ReadBlocks for callers whose bufs are back-to-back views of
// the contiguous buffer flat: the whole span decrypts in one vectored
// OpenRange sweep instead of per-block Open calls. On a multi-CPU box large
// batches keep the per-block fan-out, which spreads the CTR work across
// cores.
func (e *encIO) ReadSpan(ns []int64, flat []byte, bufs [][]byte) error {
	if err := vdisk.ReadBlocks(e.dev, ns, bufs); err != nil {
		return err
	}
	if runtime.GOMAXPROCS(0) > 1 && len(ns) >= sealFanMin {
		return fanBlocks(len(ns), func(i int) error {
			return e.sealer.Open(ns[i], bufs[i], bufs[i])
		})
	}
	return e.sealer.OpenRange(ns, flat, flat)
}

// WriteSpan is WriteBlocks for a contiguous span: one vectored SealRange
// into the reused staging area, then one sorted device submission.
func (e *encIO) WriteSpan(ns []int64, flat []byte, bufs [][]byte) error {
	bs := e.dev.BlockSize()
	if cap(e.scratch) < len(flat) {
		e.scratch = make([]byte, len(flat))
	}
	ct := e.scratch[:len(flat)]
	cts := e.ctViews(ct, len(ns), bs)
	if runtime.GOMAXPROCS(0) > 1 && len(ns) >= sealFanMin {
		if err := fanBlocks(len(ns), func(i int) error {
			return e.sealer.Seal(ns[i], cts[i], bufs[i])
		}); err != nil {
			return err
		}
	} else if err := e.sealer.SealRange(ns, ct, flat); err != nil {
		return err
	}
	return vdisk.WriteBlocks(e.dev, ns, cts)
}

var _ ptree.BatchBlockIO = (*encIO)(nil)

// hiddenRef is an open handle to a located hidden object. Refs come from a
// pool and carry every piece of per-operation scratch the data path needs
// (header storage, sealed-I/O adapter, block list, staging arena), so a
// steady-state cached read allocates nothing. The storage is reused the
// moment release returns the ref — callers must not retain the ref, r.hdr,
// or anything r.io returned past release.
type hiddenRef struct {
	physName  string
	fak       []byte
	sealer    *sgcrypto.Sealer
	headerBlk int64
	sig       [sgcrypto.SignatureLen]byte // header signature (== hdr.sig once decoded)
	hdr       *header
	exclusive bool // lock mode held on fs.objs (set by open/createHidden)

	// Reusable per-operation storage, retained across pool round trips.
	hdrStore  header   // backing store for hdr
	hdrBuf    []byte   // header-block read/write scratch
	enc       encIO    // the adapter r.io returns
	blockList []int64  // ptree.ReadInto destination
	staging   []byte   // rwHidden span arena
	spanBufs  [][]byte // block views over staging
}

var refPool = sync.Pool{New: func() any { return new(hiddenRef) }}

// getRef returns a pooled ref with its identity fields cleared and its
// scratch storage intact.
func getRef() *hiddenRef {
	r := refPool.Get().(*hiddenRef)
	r.physName, r.fak, r.sealer = "", nil, nil
	r.headerBlk = 0
	r.sig = [sgcrypto.SignatureLen]byte{}
	r.hdr = nil
	r.exclusive = false
	return r
}

func putRef(r *hiddenRef) {
	r.enc.dev, r.enc.sealer = nil, nil
	refPool.Put(r)
}

// io returns the ref's embedded sealed-I/O adapter, bound to dev. Anything
// that must outlive the ref (cursors) builds its own encIO instead.
func (r *hiddenRef) io(dev vdisk.Device) *encIO {
	r.enc.dev = dev
	r.enc.sealer = r.sealer
	return &r.enc
}

// blockBuf returns the ref's reusable block-size scratch buffer.
func (r *hiddenRef) blockBuf(bs int) []byte {
	if cap(r.hdrBuf) < bs {
		r.hdrBuf = make([]byte, bs)
	}
	r.hdrBuf = r.hdrBuf[:bs]
	return r.hdrBuf
}

// --- Locating, opening and creating headers ----------------------------------

// probeHeader runs the pseudorandom block-number generator and returns the
// first candidate holding a matching signature (retrieval mode), mirroring
// §3.1: "looks for the first block number that is marked as assigned in the
// bitmap and contains a matching file signature". The probe takes no FS-
// level lock: each bitmap test locks only the candidate's allocation group
// for an instant, so any number of probes — and writers to unrelated
// objects — run in parallel. The returned ref carries a header snapshot
// that is only trustworthy while no writer runs; callers that need a stable
// view go through openShared/openExclusive, which re-read the header under
// the object lock.
func (fs *FS) probeHeader(physName string, fak []byte) (*hiddenRef, error) {
	sealer, err := sgcrypto.NewSealer(physName, fak)
	if err != nil {
		return nil, err
	}
	want := sgcrypto.Signature(physName, fak)
	gen := sgcrypto.NewPRBG(sgcrypto.HeaderSeed(physName, fak), fs.dev.NumBlocks())
	r := getRef()
	r.physName, r.fak, r.sealer, r.sig = physName, fak, sealer, want
	buf := r.blockBuf(fs.dev.BlockSize())
	freeSeen := 0
	for i := 0; i < fs.params.MaxHeaderProbes; i++ {
		cand := gen.Next()
		if !fs.alloc.Test(cand) {
			// Free block: cannot be the header. A header always lands on the
			// first creation-time-free candidate, so after enough free
			// candidates with no match the object does not exist (each one
			// would have to have been allocated at creation and freed since).
			// The probe is lock-free, so a block another object frees and
			// re-allocates mid-churn can flicker free for an instant;
			// re-testing keeps such transients from counting toward the stop
			// (an existing object's header block itself is stably allocated
			// for its whole lifetime, so a flickering candidate is never the
			// header we seek and can be skipped without counting).
			if fs.alloc.Test(cand) {
				continue
			}
			freeSeen++
			if freeSeen >= fs.params.FreeProbeStop {
				break
			}
			continue
		}
		if err := fs.dev.ReadBlock(cand, buf); err != nil {
			putRef(r)
			return nil, err
		}
		if err := sealer.Open(cand, buf, buf); err != nil {
			putRef(r)
			return nil, err
		}
		ok, err := decodeHeaderInto(buf, want, &r.hdrStore)
		if err != nil {
			putRef(r)
			return nil, err
		}
		if ok {
			r.hdr = &r.hdrStore
			r.headerBlk = cand
			fs.sealers.add(want, sealer, cand)
			return r, nil
		}
	}
	putRef(r)
	return nil, fmt.Errorf("%w: hidden object %q", fsapi.ErrNotFound, physName)
}

// reloadHeader re-reads and re-decodes the object's header block. Called
// with the object lock held, it upgrades a probe-time snapshot to the
// current state (the object may have been rewritten — or deleted, reported
// as ErrNotFound — between the probe and the lock acquisition).
func (fs *FS) reloadHeader(r *hiddenRef) error {
	buf := r.blockBuf(fs.dev.BlockSize())
	if err := fs.dev.ReadBlock(r.headerBlk, buf); err != nil {
		return err
	}
	if err := r.sealer.Open(r.headerBlk, buf, buf); err != nil {
		return err
	}
	ok, err := decodeHeaderInto(buf, r.sig, &r.hdrStore)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: hidden object %q", fsapi.ErrNotFound, r.physName)
	}
	r.hdr = &r.hdrStore
	return nil
}

// openShared locates (physName, fak) and returns a ref holding the object's
// shared lock with a current header. Release with fs.release.
func (fs *FS) openShared(physName string, fak []byte) (*hiddenRef, error) {
	return fs.openHidden(physName, fak, false)
}

// openExclusive is openShared with the exclusive object lock, for callers
// that will mutate the object.
func (fs *FS) openExclusive(physName string, fak []byte) (*hiddenRef, error) {
	return fs.openHidden(physName, fak, true)
}

func (fs *FS) openHidden(physName string, fak []byte, exclusive bool) (*hiddenRef, error) {
	return fs.openHiddenSig(physName, fak, sgcrypto.Signature(physName, fak), exclusive)
}

// openHiddenSig is openHidden for callers that already hold the object's
// header signature (views precompute it per name), saving the hash on the
// hot path. The sealer cache turns the common case into a single sealed
// header read: a cached (sealer, header block) hint skips both the key
// derivation and the pseudorandom probe chain. The hint is verified under
// the object lock — reloadHeader re-checks the embedded signature — and a
// stale hint (object deleted, or re-created at a different block) falls
// back to the full probe.
func (fs *FS) openHiddenSig(physName string, fak []byte, sig [sgcrypto.SignatureLen]byte, exclusive bool) (*hiddenRef, error) {
	if exclusive {
		// Exclusive opens exist to mutate; a degraded mount refuses them
		// up front (reads — shared opens — keep serving).
		if err := fs.checkWritable(); err != nil {
			return nil, err
		}
	}
	if sealer, hb, ok := fs.sealers.get(sig); ok {
		r := getRef()
		r.physName, r.fak, r.sealer, r.headerBlk = physName, fak, sealer, hb
		r.sig, r.exclusive = sig, exclusive
		if exclusive {
			fs.objs.Lock(hb)
		} else {
			fs.objs.RLock(hb)
		}
		err := fs.reloadHeader(r)
		if err == nil {
			return r, nil
		}
		fs.release(r)
		fs.sealers.drop(sig)
		if !errors.Is(err, fsapi.ErrNotFound) {
			return nil, err
		}
		// Not-found on a hint only means the hint was stale; the full probe
		// below is the authority.
	}
	r, err := fs.probeHeader(physName, fak)
	if err != nil {
		return nil, err
	}
	r.exclusive = exclusive
	if exclusive {
		fs.objs.Lock(r.headerBlk)
	} else {
		fs.objs.RLock(r.headerBlk)
	}
	if err := fs.reloadHeader(r); err != nil {
		fs.release(r)
		return nil, err
	}
	return r, nil
}

// release drops the object lock taken by openShared/openExclusive and
// returns the ref to the pool — the caller must not touch r (or anything it
// handed out: r.hdr, r.io results, ptree.ReadInto lists) afterwards.
//
// lockcheck:release volume/objLock
// lockcheck:release volume/gate shared
func (fs *FS) release(r *hiddenRef) {
	if r.exclusive {
		fs.objs.Unlock(r.headerBlk)
	} else {
		fs.objs.RUnlock(r.headerBlk)
	}
	putRef(r)
}

// allocHeaderBlock runs the generator in creation mode: the first candidate
// that is free in the bitmap becomes the header block. Each candidate is
// claimed with an atomic per-group test-and-set, so two concurrent creates
// of different names racing down overlapping chains can never both win one
// block; same-name creates are serialized by the caller's name stripe.
func (fs *FS) allocHeaderBlock(physName string, fak []byte) (int64, error) {
	gen := sgcrypto.NewPRBG(sgcrypto.HeaderSeed(physName, fak), fs.dev.NumBlocks())
	for i := 0; i < fs.params.MaxHeaderProbes; i++ {
		cand := gen.Next()
		if fs.alloc.TryAlloc(cand) {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("%w: no free header block within %d probes", fsapi.ErrNoSpace, fs.params.MaxHeaderProbes)
}

// --- Free-pool management (§3.1) --------------------------------------------

// The pool operations below mutate r.hdr.free, which is guarded by the
// object's exclusive lock (held by every caller); volume allocation goes
// through the sharded allocator, which synchronizes internally per group.
// No FS-level lock is involved, so writers to distinct hidden objects top
// up, drain and return their pools fully in parallel.

// poolTake removes and returns a random block from the object's internal
// free pool, topping the pool up from the file system when it falls below
// FreeMin. When the pool is empty it allocates directly from the volume.
func (fs *FS) poolTake(r *hiddenRef) (int64, error) {
	h := r.hdr
	if len(h.free) == 0 {
		b, err := fs.alloc.Alloc()
		if err != nil {
			return 0, fsapi.ErrNoSpace
		}
		return b, nil
	}
	i := fs.alloc.Intn(len(h.free))
	b := h.free[i]
	h.free[i] = h.free[len(h.free)-1]
	h.free = h.free[:len(h.free)-1]
	if len(h.free) < fs.params.FreeMin {
		fs.poolTopUp(r)
	}
	return b, nil
}

// poolTopUp refills the pool to FreeMax with random free blocks. Shortfalls
// are tolerated (the volume may simply be full).
func (fs *FS) poolTopUp(r *hiddenRef) {
	capHdr := freeCapacity(fs.dev.BlockSize())
	target := fs.params.FreeMax
	if target > capHdr {
		target = capHdr
	}
	for len(r.hdr.free) < target {
		b, err := fs.alloc.Alloc()
		if err != nil {
			return
		}
		r.hdr.free = append(r.hdr.free, b)
	}
}

// poolGive returns a freed block to the pool; once the pool exceeds FreeMax
// the block goes back to the file system instead (§3.1 truncation rule).
func (fs *FS) poolGive(r *hiddenRef, b int64) {
	capHdr := freeCapacity(fs.dev.BlockSize())
	limit := fs.params.FreeMax
	if limit > capHdr {
		limit = capHdr
	}
	if len(r.hdr.free) < limit {
		r.hdr.free = append(r.hdr.free, b)
		return
	}
	fs.alloc.Free(b)
}

// poolAlloc adapts poolTake to a ptree.AllocFunc (pointer blocks are few).
func (fs *FS) poolAlloc(r *hiddenRef) ptree.AllocFunc {
	return func() (int64, error) { return fs.poolTake(r) }
}

// --- Hidden object CRUD ------------------------------------------------------

// createHidden stores a new hidden object. It is self-locking: the existence
// probe, the header-block allocation and the initial header flush happen
// under the physical name's stripe mutex, so two concurrent creates for the
// same (name, key) serialize there — the second one's probe finds the first
// one's flushed header — while creates of different names proceed in
// parallel (their candidate-block claims are already atomic per allocation
// group). The bulk data write then runs under the new object's exclusive
// lock only; pool interactions go straight to the sharded allocator.
func (fs *FS) createHidden(physName string, fak []byte, flags byte, data []byte) (*hiddenRef, error) {
	if err := fs.checkWritable(); err != nil {
		return nil, err
	}
	sealer, err := sgcrypto.NewSealer(physName, fak)
	if err != nil {
		return nil, err
	}
	// Gate before the stripe, matching Freeze's order: the gate hold taken
	// here is what later lets the fresh object be locked while the stripe is
	// still held without ever waiting on the gate (see lockTable.EnterGate).
	fs.objs.EnterGate()
	stripe := fs.createStripe(physName)
	stripe.Lock()
	if pr, err := fs.probeHeader(physName, fak); err == nil {
		putRef(pr)
		stripe.Unlock()
		fs.objs.ExitGate()
		return nil, fmt.Errorf("%w: hidden object %q", fsapi.ErrExists, physName)
	}
	hb, err := fs.allocHeaderBlock(physName, fak)
	if err != nil {
		stripe.Unlock()
		fs.objs.ExitGate()
		return nil, err
	}
	// Create-refs are handed to the caller and never released through
	// fs.release, so they are built outside the pool.
	r := &hiddenRef{physName: physName, fak: fak, sealer: sealer, headerBlk: hb, exclusive: true}
	r.sig = sgcrypto.Signature(physName, fak)
	r.hdrStore = header{
		sig:   r.sig,
		flags: flags,
		root:  ptree.NewRoot(hdrNumDirect),
	}
	r.hdr = &r.hdrStore
	// "When a hidden file is created, StegFS straightaway allocates several
	// blocks to the file" — seed the internal free pool.
	fs.poolTopUp(r)
	// Lock the fresh object BEFORE the header becomes findable: probes are
	// lock-free, so flushing first would open a window where another party
	// holding the FAK probes the empty header, takes the object lock ahead
	// of the creator and reads zero-length content that never logically
	// existed. The gate is already held (EnterGate above, Freeze's order),
	// and the acquisition cannot deadlock: the only possible holder of this
	// block's lock is a deleter still tearing down a previous object that
	// used the same block, and its progress needs none of the locks held
	// here (deleters take neither name stripes nor the gate exclusively).
	// lockcheck:ignore audited inversion (see lockTable doc): the gate was pre-taken via EnterGate in hierarchy order, and the only possible holder of this fresh block's lock is a deleter whose progress needs none of the locks held here
	fs.objs.LockGateHeld(hb)
	// Flush the (still empty) header before the stripe drops: from this
	// instant a probe for the same (name, key) finds the object instead of
	// minting a second header — and then blocks on the object lock taken
	// above until the content is in place.
	if err := fs.flushHeader(r); err != nil {
		fs.alloc.FreeBatch(append(append([]int64(nil), r.hdr.free...), hb))
		stripe.Unlock()
		fs.objs.Unlock(hb) // also returns the gate hold from EnterGate
		return nil, err
	}
	stripe.Unlock()
	defer fs.objs.Unlock(hb)

	if err := fs.writeHiddenData(r, data); err != nil {
		fs.destroyHidden(r)
		return nil, err
	}
	// The data write may have drained the pool; the created file must end
	// up holding its free blocks (Figure 2: the header carries a persistent
	// free-blocks list), or bitmap-snapshot deltas would expose exactly the
	// data blocks.
	fs.poolTopUp(r)
	if err := fs.flushHeader(r); err != nil {
		fs.destroyHidden(r)
		return nil, err
	}
	fs.sealers.add(r.sig, sealer, hb)
	return r, nil
}

// releaseFailedWrite returns blocks claimed for a failed write. Some of
// them were drawn from the object's internal pool, which the last
// flushHeader persisted as owned — volume-freeing those directly would
// double-own them (free in the bitmap AND listed in the on-disk free list;
// a stale-header destroy would later liberate whoever re-allocated them).
// So the drained header is flushed first, and the blocks go back to the
// volume only once no on-disk state references them. If that flush itself
// fails the blocks stay allocated — a bounded leak, never double ownership.
// The caller holds the object's exclusive lock.
func (fs *FS) releaseFailedWrite(r *hiddenRef, blocks []int64) {
	if err := fs.flushHeader(r); err != nil {
		return
	}
	fs.alloc.FreeBatch(blocks)
}

// writeHiddenData allocates blocks (via the pool and the sharded allocator)
// and writes the payload and its pointer tree with vectored sealed I/O. It
// fills in r.hdr.{size,nblocks,root}. The caller holds the object's
// exclusive lock.
func (fs *FS) writeHiddenData(r *hiddenRef, data []byte) error {
	bs := fs.dev.BlockSize()
	n := (int64(len(data)) + int64(bs) - 1) / int64(bs)
	blocks := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		b, err := fs.poolTake(r)
		if err != nil {
			fs.releaseFailedWrite(r, blocks)
			return err
		}
		blocks = append(blocks, b)
	}

	io := r.io(fs.dev)
	bufs := payloadBufs(data, len(blocks), bs)
	if err := io.WriteBlocks(blocks, bufs); err != nil {
		fs.releaseFailedWrite(r, blocks)
		return fs.observe(err)
	}
	root, meta, err := ptree.Write(io, fs.poolAlloc(r), hdrNumDirect, blocks)
	if err != nil {
		// ptree.Write reports the pointer blocks it had already claimed;
		// release them along with the data blocks or a failed large write
		// leaks every indirect block it managed to allocate.
		fs.releaseFailedWrite(r, append(blocks, meta...))
		return fs.observe(err)
	}
	r.hdr.root = root
	r.hdr.size = int64(len(data))
	r.hdr.nblocks = n
	return nil
}

// payloadBufs splits data into nBlocks block-sized write buffers. Full
// blocks alias data directly (WriteBlocks only reads them while sealing into
// its own ciphertext staging); only the final partial block — if any — is
// copied into a fresh zero-padded buffer, so a hidden write never duplicates
// the whole payload.
func payloadBufs(data []byte, nBlocks, bs int) [][]byte {
	bufs := make([][]byte, nBlocks)
	full := len(data) / bs
	for i := 0; i < full && i < nBlocks; i++ {
		bufs[i] = data[i*bs : (i+1)*bs]
	}
	if full < nBlocks {
		tail := make([]byte, bs)
		copy(tail, data[full*bs:])
		bufs[full] = tail
	}
	return bufs
}

// flushHeader seals and writes the header block.
func (fs *FS) flushHeader(r *hiddenRef) error {
	buf := r.blockBuf(fs.dev.BlockSize())
	if err := encodeHeader(r.hdr, buf); err != nil {
		return err
	}
	// Header writes are the durability chokepoint for every hidden mutation;
	// a device-class failure here degrades the mount (see health.go).
	return fs.observe(r.io(fs.dev).WriteBlock(r.headerBlk, buf))
}

// readHidden returns the full payload of an open hidden object: one batched
// sorted device read for the data blocks, decrypted in place by the seal
// fan-out. The caller holds the object's lock (shared suffices).
func (fs *FS) readHidden(r *hiddenRef) ([]byte, error) {
	io := r.io(fs.dev)
	blocks, err := ptree.ReadInto(io, r.hdr.root, r.hdr.nblocks, r.blockList)
	if err != nil {
		return nil, err
	}
	r.blockList = blocks
	bs := fs.dev.BlockSize()
	out := make([]byte, r.hdr.nblocks*int64(bs))
	bufs := r.spanViews(out, len(blocks), bs)
	if err := io.ReadSpan(blocks, out, bufs); err != nil {
		return nil, err
	}
	return out[:r.hdr.size], nil
}

// spanViews re-slices the ref's reusable view list over a contiguous span.
func (r *hiddenRef) spanViews(flat []byte, n, bs int) [][]byte {
	if cap(r.spanBufs) < n {
		r.spanBufs = make([][]byte, n)
	}
	bufs := r.spanBufs[:n]
	for i := range bufs {
		bufs[i] = flat[i*bs : (i+1)*bs]
	}
	return bufs
}

// rewriteHidden replaces the payload of an open hidden object. Same-shape
// payloads are updated in place; otherwise old blocks are released through
// the pool and fresh ones allocated. The caller holds the object's exclusive
// lock.
func (fs *FS) rewriteHidden(r *hiddenRef, data []byte) error {
	bs := fs.dev.BlockSize()
	n := (int64(len(data)) + int64(bs) - 1) / int64(bs)
	io := r.io(fs.dev)
	blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return err
	}
	if n == r.hdr.nblocks {
		if err := io.WriteBlocks(blocks, payloadBufs(data, len(blocks), bs)); err != nil {
			return fs.observe(err)
		}
		r.hdr.size = int64(len(data))
		return fs.flushHeader(r)
	}
	// Stage the release of the old data and pointer blocks: they go back to
	// the pool only after the replacement payload AND the header referencing
	// it are durably in place (the same ordering fix as tickDummy's pool
	// rotation). Freeing first would let a concurrent writer claim a block
	// the still-persisted old header tree references, and a later
	// stale-header destroy would liberate that writer's live data. The
	// trade-off is that a reshaping rewrite transiently holds both the old
	// and the new blocks — and, on failure, leaves the old payload intact
	// and readable instead of half-released.
	staged := blocks
	if err := ptree.Free(io, r.hdr.root, r.hdr.nblocks, func(b int64) { staged = append(staged, b) }); err != nil {
		return err
	}
	err = fs.writeHiddenData(r, data)
	recycled := false
	if errors.Is(err, fsapi.ErrNoSpace) {
		// The volume cannot hold old and new payload simultaneously. Fall
		// back to the recycle-first ordering: release the old blocks into
		// the pool and retry, letting the write reuse them. This narrows
		// the staged path's failure-isolation (a retry that ALSO fails
		// mid-write leaves the on-disk header referencing recycled blocks,
		// the pre-sharding behavior) but a nearly-full volume must be able
		// to rewrite — deleting a directory entry goes through this very
		// path, and refusing would wedge the volume with no way to free
		// space.
		recycled = true
		for _, b := range staged {
			fs.poolGive(r, b)
		}
		err = fs.writeHiddenData(r, data)
	}
	if err != nil {
		return err
	}
	if err := fs.flushHeader(r); err != nil {
		return err
	}
	if !recycled {
		prevPool := len(r.hdr.free)
		for _, b := range staged {
			fs.poolGive(r, b)
		}
		// Persist the refilled pool (Figure 2: the header carries the free
		// list) — best effort: the rewrite itself is already durable
		// (payload and the header referencing it flushed above), so a
		// failure here must not fail the operation, or callers like
		// CreateHidden's rollback would destroy an object whose directory
		// entry is live on disk.
		if ferr := fs.flushHeader(r); ferr != nil {
			// The refilled pool lives only in this transient ref — a
			// reopen re-reads the header from disk — so an unpersisted
			// pool would leak the staged blocks outright once the ref is
			// dropped. The successful flush above left them unreferenced
			// on disk, so reverting the in-memory pool and returning them
			// to the volume is safe: no on-disk state lists them, and the
			// batch free is a no-op for the overflow blocks poolGive already
			// released.
			r.hdr.free = r.hdr.free[:prevPool]
			fs.alloc.FreeBatch(staged)
		}
	}
	return nil
}

// destroyHidden frees everything the object holds: data blocks, pointer
// blocks, pooled free blocks and the header itself. The caller holds the
// object's exclusive lock; the blocks return to their allocation groups.
func (fs *FS) destroyHidden(r *hiddenRef) {
	// Forget the open-state hint first: after the free below the header
	// block can be recycled by a new object, and a lingering hint would
	// send every subsequent open through a wasted stale-header read.
	fs.sealers.drop(r.sig)
	io := r.io(fs.dev)
	var victims []int64
	if r.hdr != nil && r.hdr.nblocks > 0 {
		if blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks); err == nil {
			victims = append(victims, blocks...)
		}
		if meta, err := ptree.MetaBlocks(io, r.hdr.root, r.hdr.nblocks); err == nil {
			victims = append(victims, meta...)
		}
	}
	if r.hdr != nil {
		victims = append(victims, r.hdr.free...)
	}
	// Scrub the header ciphertext BEFORE the block is freed: probes are
	// lock-free, so a freed-then-reallocated-but-not-yet-written header
	// block would otherwise keep presenting the deleted object's intact
	// header — a second deleter could "find" the object and liberate
	// blocks their new owner already claimed. After the scrub a stale
	// probe reads random bytes and fails the signature check. Best
	// effort: on a scrub write error the block is freed anyway (the
	// window then matches the pre-scrub behavior).
	_ = writeRandomBlock(fs.dev, r.headerBlk)
	victims = append(victims, r.headerBlk)
	// One group-aware batch free: victims are sorted by allocation group and
	// each touched group is cleared under a single lock hold, so a large
	// delete stops hammering the group mutexes block by block.
	fs.alloc.FreeBatch(victims)
}

// destroyByRef tears down the object behind a ref whose lock is NOT held:
// it takes the exclusive object lock, refreshes the header (the ref's
// snapshot may be stale — destroying with a stale header could free blocks
// the object no longer owns) and destroys the object. An object that is
// already gone (not-found on reload) counts as success: the work is done.
// This is the one shared teardown path for rollbacks and deletes — it
// needs no probe, so it cannot spuriously miss under concurrent churn.
func (fs *FS) destroyByRef(r *hiddenRef) error {
	fs.objs.Lock(r.headerBlk)
	err := fs.reloadHeader(r)
	if err == nil {
		fs.destroyHidden(r)
	}
	fs.objs.Unlock(r.headerBlk)
	if err != nil && !errors.Is(err, fsapi.ErrNotFound) {
		return err
	}
	return nil
}

// hiddenBlocks returns every block an open hidden object occupies: header,
// data, pointer blocks and pooled free blocks. Backup images these. The
// caller holds the object's lock (shared suffices).
func (fs *FS) hiddenBlocks(r *hiddenRef) ([]int64, error) {
	io := r.io(fs.dev)
	out := []int64{r.headerBlk}
	blocks, err := ptree.Read(io, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	out = append(out, blocks...)
	meta, err := ptree.MetaBlocks(io, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return nil, err
	}
	out = append(out, meta...)
	out = append(out, r.hdr.free...)
	return out, nil
}
