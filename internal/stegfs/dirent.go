package stegfs

import (
	"encoding/binary"
	"fmt"
)

// Entry is one record of a hidden directory or of a user's UAK directory:
// the (file name, file access key) pair of §3.2, extended with the physical
// name the header-location hash needs (the physical name embeds the owner's
// user id, so a recipient of a shared file must learn it too).
type Entry struct {
	// Name is the display name: a path component inside a hidden directory,
	// or the full object name inside a UAK directory.
	Name string
	// Phys is the physical name used to locate the object's header.
	Phys string
	// FAK is the object's file access key.
	FAK []byte
	// Flags carries the object type (FlagFile, FlagDir, FlagDummy).
	Flags byte
}

// encodeEntries serializes a directory payload.
func encodeEntries(entries []Entry) []byte {
	size := 4
	for _, e := range entries {
		size += 1 + 2 + len(e.Name) + 2 + len(e.Phys) + 2 + len(e.FAK)
	}
	out := make([]byte, size)
	binary.BigEndian.PutUint32(out, uint32(len(entries)))
	off := 4
	putBytes := func(b []byte) {
		binary.BigEndian.PutUint16(out[off:], uint16(len(b)))
		off += 2
		copy(out[off:], b)
		off += len(b)
	}
	for _, e := range entries {
		out[off] = e.Flags
		off++
		putBytes([]byte(e.Name))
		putBytes([]byte(e.Phys))
		putBytes(e.FAK)
	}
	return out
}

// decodeEntries parses a directory payload.
func decodeEntries(data []byte) ([]Entry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("stegfs: directory payload too short (%d bytes)", len(data))
	}
	n := int(binary.BigEndian.Uint32(data))
	off := 4
	getBytes := func() ([]byte, error) {
		if off+2 > len(data) {
			return nil, fmt.Errorf("stegfs: truncated directory payload")
		}
		l := int(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if off+l > len(data) {
			return nil, fmt.Errorf("stegfs: truncated directory payload")
		}
		b := data[off : off+l]
		off += l
		return b, nil
	}
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		if off >= len(data) {
			return nil, fmt.Errorf("stegfs: truncated directory payload")
		}
		var e Entry
		e.Flags = data[off]
		off++
		b, err := getBytes()
		if err != nil {
			return nil, err
		}
		e.Name = string(b)
		if b, err = getBytes(); err != nil {
			return nil, err
		}
		e.Phys = string(b)
		if b, err = getBytes(); err != nil {
			return nil, err
		}
		e.FAK = append([]byte(nil), b...)
		out = append(out, e)
	}
	return out, nil
}

// findEntry returns the index of the entry named name, or -1.
func findEntry(entries []Entry, name string) int {
	for i := range entries {
		if entries[i].Name == name {
			return i
		}
	}
	return -1
}
