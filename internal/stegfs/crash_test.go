package stegfs

import (
	"bytes"
	"fmt"
	"testing"

	"stegfs/internal/vdisk"
)

// Crash-consistency harness: the volume sits on a vdisk.CutStore, which
// silently drops every device write after a cut point — a power cut that
// strikes mid-Sync. The tests pin FS.Sync's data-before-metadata barrier
// WITH the write-behind pipeline and its background flusher active: no cut
// point may ever leave the on-device superblock/bitmap referencing state
// whose data never reached the device.

const (
	crashBlocks   = 2048
	crashBS       = 512
	crashFiles    = 6
	crashWBehind  = 8 // small high-water: the background flusher runs mid-scenario
	crashCacheCap = 256
)

func crashParams() Params {
	p := DefaultParams()
	p.Seed = 42
	p.FillVolume = false
	p.DeterministicKeys = true
	p.NDummy = 1
	p.DummyAvgSize = 2 * crashBS
	p.PctAbandoned = 0.02
	p.MaxPlainFiles = 16
	return p
}

func crashPayload(i int, tag byte) []byte {
	buf := make([]byte, crashBS) // exactly one block: a surviving block is old or new, never torn
	for j := range buf {
		buf[j] = tag ^ byte(i*31) ^ byte(j)
	}
	return buf
}

// runCrashScenario formats a cached volume with write-behind + background
// flusher, checkpoints a set of hidden files with Sync, rewrites them all
// in place (and creates two uncheckpointed files), arms the cut cutAt
// accepted writes into the final Sync window, runs that Sync, and returns
// the surviving raw image plus the accepted-write count of the window.
// cutAt < 0 leaves the cut disarmed (the probe run measuring the window).
func runCrashScenario(t *testing.T, cutAt int64, flushWorkers int) (img []byte, windowWrites int64) {
	t.Helper()
	mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
	if err != nil {
		t.Fatal(err)
	}
	cs := vdisk.NewCutStore(mem)
	fs, err := Format(cs, crashParams(),
		WithCache(crashCacheCap), WithWriteBehind(crashWBehind, flushWorkers))
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("crash")
	for i := 0; i < crashFiles; i++ {
		if err := view.Create(fmt.Sprintf("f%d", i), crashPayload(i, 0xA0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil { // the checkpoint every cut must preserve
		t.Fatal(err)
	}

	// Mutation phase: in-place rewrites of every checkpointed file plus two
	// fresh (uncheckpointed) creates, all riding the async pipeline.
	for i := 0; i < crashFiles; i++ {
		if err := view.Write(fmt.Sprintf("f%d", i), crashPayload(i, 0xB0)); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 2; j++ {
		if err := view.Create(fmt.Sprintf("new%d", j), crashPayload(j, 0xC0)); err != nil {
			t.Fatal(err)
		}
	}

	pre := cs.Writes()
	if cutAt >= 0 {
		cs.CutAfter(cutAt)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("Sync with cut at %d: %v", cutAt, err)
	}
	img, window := mem.Snapshot(), cs.Writes()-pre
	// Stop the mount's background flusher (its writes land past the cut and
	// after the snapshot, so they cannot perturb the crash image).
	if err := fs.Close(); err != nil {
		t.Fatalf("close after cut %d: %v", cutAt, err)
	}
	return img, window
}

// fsckCrashImage runs the offline checker over a surviving image, keyed for
// the checkpointed files. Only checkpointed objects are discoverable after a
// crash (an unsynced create's header block is free in the surviving bitmap,
// so the probe's free-block stop hides it), so those are exactly the keys
// fsck gets — and with them, every cut point must yield a clean report.
func fsckCrashImage(t *testing.T, img []byte, cutAt int64) {
	t.Helper()
	mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Restore(img); err != nil {
		t.Fatal(err)
	}
	names := make([]string, crashFiles)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	rep, err := Check(mem, CheckOptions{ViewFiles: map[string][]string{"crash": names}})
	if err != nil {
		t.Fatalf("cut %d: fsck: %v", cutAt, err)
	}
	if !rep.OK() {
		t.Fatalf("cut %d: fsck found inconsistencies:\n%s", cutAt, rep.Summary())
	}
	if rep.HiddenChecked != crashFiles {
		t.Fatalf("cut %d: fsck verified %d/%d checkpointed files", cutAt, rep.HiddenChecked, crashFiles)
	}
}

// verifyCrashImage remounts a surviving image and checks the barrier's
// promise: every checkpointed file reads back whole — old or new content,
// never garbage — and keeps doing so after heavy post-recovery churn
// re-allocates whatever the surviving bitmap says is free. The image must
// also pass the offline checker before any recovery churn touches it.
func verifyCrashImage(t *testing.T, img []byte, cutAt int64) {
	t.Helper()
	fsckCrashImage(t, img, cutAt)
	mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Restore(img); err != nil {
		t.Fatal(err)
	}
	fs, err := Mount(mem)
	if err != nil {
		t.Fatalf("cut %d: remount failed: %v", cutAt, err)
	}
	view := fs.NewHiddenView("crash")
	// FAKs live only in the creating view; re-derive them (DeterministicKeys).
	for i := 0; i < crashFiles; i++ {
		name := fmt.Sprintf("f%d", i)
		if err := view.Adopt(name); err != nil {
			t.Fatalf("cut %d: checkpointed file %s lost: %v", cutAt, name, err)
		}
	}
	check := func(phase string) {
		for i := 0; i < crashFiles; i++ {
			name := fmt.Sprintf("f%d", i)
			got, err := view.Read(name)
			if err != nil {
				t.Fatalf("cut %d (%s): checkpointed file %s unreadable: %v", cutAt, phase, name, err)
			}
			if !bytes.Equal(got, crashPayload(i, 0xA0)) && !bytes.Equal(got, crashPayload(i, 0xB0)) {
				t.Fatalf("cut %d (%s): file %s is neither old nor new content", cutAt, phase, name)
			}
		}
	}
	check("remount")
	// Churn: hammer allocation from the surviving bitmap. If any surviving
	// metadata referenced blocks whose data never hit the device — or worse,
	// marked live blocks free — this re-allocation storm would overwrite a
	// checkpointed file's blocks and the recheck below would catch it.
	for j := 0; j < 24; j++ {
		if err := view.Create(fmt.Sprintf("churn%d", j), crashPayload(j, 0xD0)); err != nil {
			t.Fatalf("cut %d: churn create: %v", cutAt, err)
		}
	}
	for j := 0; j < 8; j++ {
		if err := fs.Create(fmt.Sprintf("plain%d", j), crashPayload(j, 0xE0)); err != nil {
			t.Fatalf("cut %d: churn plain create: %v", cutAt, err)
		}
	}
	if err := fs.TickDummies(); err != nil {
		t.Fatalf("cut %d: dummy tick after recovery: %v", cutAt, err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("cut %d: sync after churn: %v", cutAt, err)
	}
	check("post-churn")
}

// TestSyncCrashCutSweep sweeps the cut point across the entire Sync write
// window (and past it): wherever the power fails — before the data flush,
// mid-flush, between the data flush and the superblock/bitmap write, or
// mid-metadata — the remounted volume must serve every checkpointed hidden
// file intact, even after churn.
func TestSyncCrashCutSweep(t *testing.T) {
	// Probe run: measure the window with the cut disarmed. The async flusher
	// makes the exact count vary slightly run to run, so the sweep extends a
	// little past the probe's answer; every run checks its own invariant.
	_, window := runCrashScenario(t, -1, 1)
	if window == 0 {
		t.Fatal("probe run saw no writes in the Sync window")
	}
	for cut := int64(0); cut <= window+2; cut++ {
		img, _ := runCrashScenario(t, cut, 1)
		verifyCrashImage(t, img, cut)
	}
}

// TestSyncCrashMultiWorker repeats the boundary cuts with a multi-worker
// flush pipeline, where batched runs complete out of order.
func TestSyncCrashMultiWorker(t *testing.T) {
	_, window := runCrashScenario(t, -1, 4)
	for _, cut := range []int64{0, 1, window / 2, window - 1, window} {
		if cut < 0 {
			continue
		}
		img, _ := runCrashScenario(t, cut, 4)
		verifyCrashImage(t, img, cut)
	}
}

// runTornScenario is runCrashScenario on a vdisk.FaultStore armed with
// TearAfter instead of a clean cut: the final Sync's write stream accepts
// acceptAt writes, then a window of coin-flipped writes lands partially (in
// any combination), then everything is dropped. This models a dying device
// reordering or losing the tail of a batch rather than stopping cleanly —
// per-block atomicity holds, cross-block ordering does not.
func runTornScenario(t *testing.T, acceptAt int64, window int, seed int64) []byte {
	t.Helper()
	mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
	if err != nil {
		t.Fatal(err)
	}
	fstore := vdisk.NewFaultStore(mem, seed)
	fs, err := Format(fstore, crashParams(),
		WithCache(crashCacheCap), WithWriteBehind(crashWBehind, 1))
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("crash")
	for i := 0; i < crashFiles; i++ {
		if err := view.Create(fmt.Sprintf("f%d", i), crashPayload(i, 0xA0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashFiles; i++ {
		if err := view.Write(fmt.Sprintf("f%d", i), crashPayload(i, 0xB0)); err != nil {
			t.Fatal(err)
		}
	}
	for j := 0; j < 2; j++ {
		if err := view.Create(fmt.Sprintf("new%d", j), crashPayload(j, 0xC0)); err != nil {
			t.Fatal(err)
		}
	}
	if acceptAt >= 0 {
		fstore.TearAfter(acceptAt, window)
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("Sync torn at %d+%d: %v", acceptAt, window, err)
	}
	img := mem.Snapshot()
	// The flusher's post-snapshot writes all fall past the torn window and
	// are silently dropped, so Close cannot perturb the image.
	if err := fs.Close(); err != nil {
		t.Fatalf("close after tear %d: %v", acceptAt, err)
	}
	return img
}

// TestSyncTornBatchSweep slides a torn window across the whole Sync write
// stream: every partial commit of the window — not just a clean prefix —
// must leave an image that passes fsck and serves every checkpointed file
// old-or-new. This leans on same-shape rewrites being byte-identical at the
// header and single-block payloads being per-block atomic.
func TestSyncTornBatchSweep(t *testing.T) {
	// Probe: measure the Sync window with tearing disarmed.
	_, window := runCrashScenario(t, -1, 1)
	if window == 0 {
		t.Fatal("probe run saw no writes in the Sync window")
	}
	const tornWindow = 8
	for accept := int64(0); accept <= window+2; accept += 2 {
		// Vary the seed with the cut point so the window's commit/drop
		// pattern differs across sweep positions.
		img := runTornScenario(t, accept, tornWindow, 1000+accept)
		verifyCrashImage(t, img, accept)
	}
}

// TestSyncWriteOrderDataBeforeMetadata pins the barrier at the device-write
// level: within one Sync's accepted-write stream, every data-region write
// precedes the first superblock/bitmap write. With the background flusher
// active this is exactly the property the cut sweep relies on.
func TestSyncWriteOrderDataBeforeMetadata(t *testing.T) {
	mem, err := vdisk.NewMemStore(crashBlocks, crashBS)
	if err != nil {
		t.Fatal(err)
	}
	cs := vdisk.NewCutStore(mem)
	fs, err := Format(cs, crashParams(), WithCache(crashCacheCap), WithWriteBehind(crashWBehind))
	if err != nil {
		t.Fatal(err)
	}
	view := fs.NewHiddenView("crash")
	for i := 0; i < crashFiles; i++ {
		if err := view.Create(fmt.Sprintf("f%d", i), crashPayload(i, 0xA0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashFiles; i++ {
		if err := view.Write(fmt.Sprintf("f%d", i), crashPayload(i, 0xB0)); err != nil {
			t.Fatal(err)
		}
	}
	cs.StartTrace()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	trace := cs.StopTrace()
	if len(trace) == 0 {
		t.Fatal("Sync issued no device writes")
	}
	dataStart := fs.DataStart()
	metaSeen := false
	for i, b := range trace {
		isMeta := b < dataStart // superblock, bitmap region, central directory
		if isMeta {
			metaSeen = true
			continue
		}
		if metaSeen {
			t.Fatalf("data-region block %d written at position %d AFTER metadata in the Sync stream: %v", b, i, trace)
		}
	}
	if !metaSeen {
		t.Fatal("Sync stream carried no superblock/bitmap write")
	}
}
