package stegfs

import (
	"bytes"
	"errors"
	"testing"

	"stegfs/internal/vdisk"
)

func healthParams() Params {
	p := DefaultParams()
	p.Seed = 99
	p.DeterministicKeys = true
	p.NDummy = 1
	p.FillVolume = false
	p.MaxPlainFiles = 8
	return p
}

func newHealthVolume(t *testing.T, opts ...Option) (*vdisk.FaultStore, *FS) {
	t.Helper()
	mem, err := vdisk.NewMemStore(2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	fstore := vdisk.NewFaultStore(mem, 17)
	fs, err := Format(fstore, healthParams(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return fstore, fs
}

// TestHealthDegradesToReadOnly: an unrecoverable write fault flips the mount
// read-only — reads keep serving, every mutator path fails fast with
// ErrReadOnly, and Health reports the cause.
func TestHealthDegradesToReadOnly(t *testing.T) {
	fstore, fs := newHealthVolume(t)
	view := fs.NewHiddenView("alice")
	if err := view.Create("prewritten", []byte("survives degradation")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("plain.txt", []byte("plain payload")); err != nil {
		t.Fatal(err)
	}
	// Checkpoint so the remount at the end sees a bitmap that knows about
	// the files created above.
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if h := fs.Health(); h.ReadOnly || h.Faults != 0 {
		t.Fatalf("healthy mount reports %+v", h)
	}

	// Every device write now fails; the next mutation is unrecoverable.
	fstore.SetTransientRates(0, 1, 1<<30)
	if err := view.Write("prewritten", []byte("new content")); err == nil {
		t.Fatal("write on a dead device succeeded")
	}
	fstore.Disarm()

	h := fs.Health()
	if !h.ReadOnly || h.Reason == "" || h.Faults == 0 {
		t.Fatalf("mount not degraded after unrecoverable write: %+v", h)
	}

	// Mutators fail fast with ErrReadOnly — even though the device is fine
	// again (degradation is sticky until remount).
	if err := view.Write("prewritten", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("hidden write = %v, want ErrReadOnly", err)
	}
	if err := view.Create("newfile", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("hidden create = %v, want ErrReadOnly", err)
	}
	if err := view.Delete("prewritten"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("hidden delete = %v, want ErrReadOnly", err)
	}
	if err := fs.Create("other.txt", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("plain create = %v, want ErrReadOnly", err)
	}
	if err := fs.Write("plain.txt", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("plain write = %v, want ErrReadOnly", err)
	}
	if err := fs.Delete("plain.txt"); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("plain delete = %v, want ErrReadOnly", err)
	}
	if err := fs.TickDummies(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("dummy tick = %v, want ErrReadOnly", err)
	}

	// Reads keep serving.
	got, err := view.Read("prewritten")
	if err != nil {
		t.Fatalf("read on degraded mount: %v", err)
	}
	if !bytes.Equal(got, []byte("survives degradation")) {
		t.Fatal("degraded read returned wrong payload")
	}
	if _, err := fs.Read("plain.txt"); err != nil {
		t.Fatalf("plain read on degraded mount: %v", err)
	}

	// A fresh mount of the same (healed) device is writable again.
	fs2, err := Mount(fstore)
	if err != nil {
		t.Fatal(err)
	}
	view2 := fs2.NewHiddenView("alice")
	if err := view2.Adopt("prewritten"); err != nil {
		t.Fatal(err)
	}
	if err := view2.Write("prewritten", []byte("post-remount")); err != nil {
		t.Fatalf("remount still read-only: %v", err)
	}
}

// TestHealthRetryAbsorbsTransients: mounted WithRetry, a noisy device's
// transient faults never reach the FS — no degradation, no visible errors,
// and Health reports the retry work done on the FS's behalf.
func TestHealthRetryAbsorbsTransients(t *testing.T) {
	mem, err := vdisk.NewMemStore(2048, 512)
	if err != nil {
		t.Fatal(err)
	}
	fstore := vdisk.NewFaultStore(mem, 23)
	fs, err := Format(fstore, healthParams(), WithRetry(8))
	if err != nil {
		t.Fatal(err)
	}
	fstore.SetTransientRates(0.02, 0.02, 2)
	view := fs.NewHiddenView("bob")
	payload := bytes.Repeat([]byte("noisy device "), 200)
	for i := 0; i < 8; i++ {
		name := string(rune('a' + i))
		if err := view.Create(name, payload); err != nil {
			t.Fatalf("create %s under 2%% transients: %v", name, err)
		}
		got, err := view.Read(name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %s mismatch", name)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatalf("sync under transients: %v", err)
	}
	h := fs.Health()
	if h.ReadOnly || h.Faults != 0 {
		t.Fatalf("transients leaked past the retry layer: %+v", h)
	}
	if h.Retries == 0 {
		t.Fatal("device injected faults but Health reports zero retries")
	}
	if h.GiveUps != 0 {
		t.Fatalf("retry layer gave up %d times", h.GiveUps)
	}
}

// TestHealthSyncFailureDegrades: a failed durability barrier is exactly the
// "device cannot persist what mutators believe durable" case — it must
// degrade the mount even when the individual mutations all succeeded.
func TestHealthSyncFailureDegrades(t *testing.T) {
	fstore, fs := newHealthVolume(t, WithCache(128))
	defer fs.Cache().StopFlushers() //nolint:errcheck
	view := fs.NewHiddenView("carol")
	if err := view.Create("f", []byte("cached")); err != nil {
		t.Fatal(err)
	}
	fstore.SetTransientRates(0, 1, 1<<30)
	if err := fs.Sync(); err == nil {
		t.Fatal("sync with a dead device succeeded")
	}
	fstore.Disarm()
	if h := fs.Health(); !h.ReadOnly {
		t.Fatalf("failed barrier did not degrade: %+v", h)
	}
	if err := view.Create("g", []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create after failed barrier = %v, want ErrReadOnly", err)
	}
}
