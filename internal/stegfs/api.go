package stegfs

import (
	"crypto/rsa"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"stegfs/internal/fsapi"
	"stegfs/internal/sgcrypto"
)

// reserved physical-name prefixes. User ids may not contain NUL, so user
// objects (physName = uid + "/" + path) can never collide with these.
const (
	physUAKDir = "\x00uakdir"
	physDummy  = "\x00dummy/"
)

// uakDirFAK derives the file access key of the hidden directory that stores
// a user's (name, FAK) pairs for one UAK. The directory itself is "encrypted
// with the UAK and stored as a hidden file on the file system" (§3.2). The
// user id is mixed in so that two users who happen to choose the same UAK
// string get distinct, mutually invisible directories.
func uakDirFAK(uid string, uak []byte) []byte {
	sig := sgcrypto.Signature("stegfs.uakdir.fak\x00"+uid, uak)
	return sig[:]
}

// uakDirPhys returns the physical name of a user's UAK directory.
func uakDirPhys(uid string) string { return physUAKDir + "/" + uid }

// Session is a user's login session. Hidden objects become visible only
// after an explicit Connect and vanish again on Disconnect or Logoff,
// mirroring the steg_connect/steg_disconnect semantics of §4.
//
// A Session belongs to one user. Methods that change the visible set or the
// namespace (Connect, ConnectLevel, Disconnect, Logoff, CreateHidden,
// DeleteHidden, Hide, Unhide, Revoke, AddEntry) must not run concurrently
// with any other method of the same session — the visible map is not
// internally locked. Methods that only read the visible map (ReadHidden,
// WriteHidden, Visible, ListHidden, GetEntry) may run concurrently with one
// another once the connections are established; stegctl's multi-name
// steg-cat relies on this. Distinct sessions on the same FS run fully
// concurrently — reads of distinct hidden objects proceed in parallel under
// the per-object locks, while compound directory updates serialize on the
// namespace lock.
type Session struct {
	fs      *FS
	uid     string
	visible map[string]Entry
}

// NewSession starts a session for the given user id.
func (fs *FS) NewSession(uid string) (*Session, error) {
	if strings.ContainsRune(uid, 0) || uid == "" {
		return nil, fmt.Errorf("stegfs: invalid user id %q", uid)
	}
	return &Session{fs: fs, uid: uid, visible: make(map[string]Entry)}, nil
}

// UID returns the session's user id.
func (s *Session) UID() string { return s.uid }

// physFor builds the physical name of a user object: "the physical file name
// is derived by concatenating the user id with the complete path name of the
// file" (§3.1), preventing cross-user collisions on (name, key).
func (s *Session) physFor(objname string) string { return s.uid + "/" + objname }

// --- UAK directory plumbing -------------------------------------------------

// readHiddenObject opens (phys, fak) shared, reads the full payload and
// releases the object lock — the snapshot-read primitive of every directory
// walk.
func (fs *FS) readHiddenObject(phys string, fak []byte) ([]byte, error) {
	r, err := fs.openShared(phys, fak)
	if err != nil {
		return nil, err
	}
	defer fs.release(r)
	return fs.readHidden(r)
}

// loadUAKDir returns the entries of the UAK's directory; a missing directory
// reads as empty (its absence is itself deniable).
func (fs *FS) loadUAKDir(uid string, uak []byte) ([]Entry, error) {
	payload, err := fs.readHiddenObject(uakDirPhys(uid), uakDirFAK(uid, uak))
	if err != nil {
		if errors.Is(err, fsapi.ErrNotFound) {
			return nil, nil // no directory yet
		}
		return nil, err
	}
	return decodeEntries(payload)
}

// saveUAKDir writes the UAK directory, creating it on first use. The caller
// holds fs.nsMu (it is always part of a compound directory update).
func (fs *FS) saveUAKDir(uid string, uak []byte, entries []Entry) error {
	payload := encodeEntries(entries)
	fak := uakDirFAK(uid, uak)
	if r, err := fs.openExclusive(uakDirPhys(uid), fak); err == nil {
		defer fs.release(r)
		return fs.rewriteHidden(r, payload)
	}
	_, err := fs.createHidden(uakDirPhys(uid), fak, FlagDir, payload)
	return err
}

// resolve walks a slash-separated object name starting from the UAK
// directory, descending through hidden directories. Each directory is read
// atomically under its own object lock (hand-over-hand; at most one object
// lock is held at a time).
func (fs *FS) resolve(uid string, uak []byte, objname string) (Entry, error) {
	comps := strings.Split(objname, "/")
	entries, err := fs.loadUAKDir(uid, uak)
	if err != nil {
		return Entry{}, err
	}
	var cur Entry
	for i, comp := range comps {
		idx := findEntry(entries, comp)
		if idx < 0 {
			return Entry{}, fmt.Errorf("%w: hidden object %q", fsapi.ErrNotFound, objname)
		}
		cur = entries[idx]
		if i == len(comps)-1 {
			return cur, nil
		}
		if cur.Flags&FlagDir == 0 {
			return Entry{}, fmt.Errorf("%w: %q", fsapi.ErrNotDir, strings.Join(comps[:i+1], "/"))
		}
		payload, err := fs.readHiddenObject(cur.Phys, cur.FAK)
		if err != nil {
			return Entry{}, err
		}
		if entries, err = decodeEntries(payload); err != nil {
			return Entry{}, err
		}
	}
	return cur, nil
}

// loadParentEntries returns (read-only) the entry list governing objname's
// final component: the UAK directory for top-level names, the parent hidden
// directory's entries otherwise. Shared by the advisory creatability check
// and anything else that needs the parent view without rewriting it.
func (fs *FS) loadParentEntries(uid string, uak []byte, objname string) ([]Entry, error) {
	comps := strings.Split(objname, "/")
	if len(comps) == 1 {
		return fs.loadUAKDir(uid, uak)
	}
	parent, err := fs.resolve(uid, uak, strings.Join(comps[:len(comps)-1], "/"))
	if err != nil {
		return nil, err
	}
	if parent.Flags&FlagDir == 0 {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrNotDir, parent.Name)
	}
	payload, err := fs.readHiddenObject(parent.Phys, parent.FAK)
	if err != nil {
		return nil, err
	}
	return decodeEntries(payload)
}

// checkCreatable verifies — read-only, no nsMu needed — that objname can be
// created: its parent chain resolves to a directory and the final component
// is not taken. Advisory only: callers re-check authoritatively during the
// nsMu-held registration, but this lets steg_create fail the common
// duplicate/missing-parent cases before paying the payload write, without
// holding the global namespace lock across directory device reads.
func (fs *FS) checkCreatable(uid string, uak []byte, objname string) error {
	entries, err := fs.loadParentEntries(uid, uak, objname)
	if err != nil {
		return err
	}
	if base := objname[strings.LastIndexByte(objname, '/')+1:]; findEntry(entries, base) >= 0 {
		return fmt.Errorf("%w: %q", fsapi.ErrExists, objname)
	}
	return nil
}

// updateParent rewrites the entry list that contains the last component of
// objname, applying fn to it. For top-level names that is the UAK directory;
// for nested names it is the parent hidden directory. The caller holds
// fs.nsMu, which serializes all compound directory updates.
func (fs *FS) updateParent(uid string, uak []byte, objname string, fn func([]Entry) ([]Entry, error)) error {
	comps := strings.Split(objname, "/")
	if len(comps) == 1 {
		entries, err := fs.loadUAKDir(uid, uak)
		if err != nil {
			return err
		}
		if entries, err = fn(entries); err != nil {
			return err
		}
		return fs.saveUAKDir(uid, uak, entries)
	}
	parent, err := fs.resolve(uid, uak, strings.Join(comps[:len(comps)-1], "/"))
	if err != nil {
		return err
	}
	if parent.Flags&FlagDir == 0 {
		return fmt.Errorf("%w: %q", fsapi.ErrNotDir, parent.Name)
	}
	r, err := fs.openExclusive(parent.Phys, parent.FAK)
	if err != nil {
		return err
	}
	defer fs.release(r)
	payload, err := fs.readHidden(r)
	if err != nil {
		return err
	}
	entries, err := decodeEntries(payload)
	if err != nil {
		return err
	}
	if entries, err = fn(entries); err != nil {
		return err
	}
	return fs.rewriteHidden(r, encodeEntries(entries))
}

// --- The steg_* APIs of Section 4 -------------------------------------------

// CreateHidden implements steg_create: it creates a hidden file (objtype
// FlagFile) or hidden directory (FlagDir) named objname under the UAK, with
// the given initial contents (directories must start empty). A fresh random
// FAK is generated and recorded in the UAK's directory.
//
// The bulk object write runs BEFORE the namespace lock is taken — the
// object is unreachable until its directory entry lands, so only the entry
// registration needs nsMu. Concurrent steg_creates of distinct names
// therefore overlap their payload writes across the sharded allocator and
// meet only at the (short) directory update. A lock-free advisory directory
// check fails the common error cases (duplicate name, missing parent)
// before any payload is written; the registration's re-check under nsMu
// stays authoritative for races in between.
func (s *Session) CreateHidden(objname string, uak []byte, objtype byte, data []byte) error {
	if objtype != FlagFile && objtype != FlagDir {
		return fmt.Errorf("stegfs: invalid object type %#x", objtype)
	}
	if objname == "" || strings.ContainsRune(objname, 0) {
		return fmt.Errorf("stegfs: invalid object name %q", objname)
	}
	if objtype == FlagDir {
		if len(data) != 0 {
			return fmt.Errorf("stegfs: directories are created empty")
		}
		data = encodeEntries(nil)
	}
	fak, err := sgcrypto.NewFAK()
	if err != nil {
		return err
	}
	phys := s.physFor(objname)
	base := objname[strings.LastIndexByte(objname, '/')+1:]

	if err := s.fs.checkCreatable(s.uid, uak, objname); err != nil {
		return err
	}
	r, err := s.fs.createHidden(phys, fak, objtype, data)
	if err != nil {
		return err
	}
	s.fs.nsMu.Lock()
	defer s.fs.nsMu.Unlock()
	err = s.fs.updateParent(s.uid, uak, objname, func(entries []Entry) ([]Entry, error) {
		if findEntry(entries, base) >= 0 {
			return nil, fmt.Errorf("%w: %q", fsapi.ErrExists, objname)
		}
		return append(entries, Entry{Name: base, Phys: phys, FAK: fak, Flags: objtype}), nil
	})
	if err != nil {
		// Roll back the orphaned object through its ref (no re-probe).
		if derr := s.fs.destroyByRef(r); derr != nil {
			return errors.Join(err, fmt.Errorf("stegfs: rollback of %q failed, blocks leaked: %w", objname, derr))
		}
		return err
	}
	return nil
}

// CreateHiddenBatch creates several hidden files in one call: the objects
// themselves are written concurrently by up to `workers` goroutines — their
// allocations spread across the sharded allocator's groups, so the device
// waits overlap the way the parallel write path promises — and the
// directory entries are then recorded under a single namespace-lock hold.
// names[i] receives datas[i]; a fresh random FAK is generated per object.
//
// The batch is all-or-nothing: on any failure the objects are destroyed
// and every entry this call already registered is removed again, so a
// caller can retry the whole batch after a failure. The one exception
// keeps the namespace consistent rather than clean: if unwinding an
// already-registered parent directory itself fails (e.g. the volume filled
// up mid-rollback), that parent's names are left fully created — entry and
// object both — never as dangling entries pointing at destroyed objects.
// Names must be distinct and, like CreateHidden, non-empty and NUL-free.
func (s *Session) CreateHiddenBatch(names []string, uak []byte, datas [][]byte, workers int) error {
	if len(names) != len(datas) {
		return fmt.Errorf("stegfs: %d names but %d payloads", len(names), len(datas))
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" || strings.ContainsRune(n, 0) {
			return fmt.Errorf("stegfs: invalid object name %q", n)
		}
		if seen[n] {
			return fmt.Errorf("%w: duplicate name %q in batch", fsapi.ErrExists, n)
		}
		seen[n] = true
	}
	if workers <= 0 || workers > len(names) {
		workers = len(names)
	}

	// Group the names by parent directory up front: the advisory pre-check
	// below reads each distinct parent once (not once per name), and the
	// registration phase rewrites each parent once for the whole batch.
	type parentGroup struct {
		repr string // one member name; updateParent derives the parent from it
		idxs []int
	}
	var order []string
	byParent := make(map[string]*parentGroup)
	for i, name := range names {
		dir := ""
		if j := strings.LastIndexByte(name, '/'); j >= 0 {
			dir = name[:j]
		}
		pg, ok := byParent[dir]
		if !ok {
			pg = &parentGroup{repr: name}
			byParent[dir] = pg
			order = append(order, dir)
		}
		pg.idxs = append(pg.idxs, i)
	}

	// Advisory fast-fail (same as CreateHidden's checkCreatable): catch
	// duplicate names and missing parents before paying any payload
	// writes. Registration re-checks authoritatively.
	for _, dir := range order {
		pg := byParent[dir]
		entries, err := s.fs.loadParentEntries(s.uid, uak, pg.repr)
		if err != nil {
			return err
		}
		for _, i := range pg.idxs {
			if base := names[i][strings.LastIndexByte(names[i], '/')+1:]; findEntry(entries, base) >= 0 {
				return fmt.Errorf("%w: %q", fsapi.ErrExists, names[i])
			}
		}
	}

	faks := make([][]byte, len(names))
	for i := range faks {
		fak, err := sgcrypto.NewFAK()
		if err != nil {
			return err
		}
		faks[i] = fak
	}

	// Phase 1 — create the objects in parallel (no namespace lock yet; the
	// objects exist on the volume but are reachable only via their FAKs).
	// The first failure aborts the remaining creates: the batch is doomed
	// anyway, so the skipped objects' write I/O would only be torn down
	// again.
	refs := make([]*hiddenRef, len(names)) // phase-1 refs; rollback needs no re-probe
	errs := make([]error, len(names))
	var failed atomic.Bool
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if failed.Load() {
					continue
				}
				refs[i], errs[i] = s.fs.createHidden(s.physFor(names[i]), faks[i], FlagFile, datas[i])
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range names {
		next <- i
	}
	close(next)
	wg.Wait()

	// destroy tears down batch member i through its phase-1 ref; destroy
	// failures surface joined onto the primary error (a swallowed failure
	// here would leak the object's blocks with the FAK discarded).
	var destroyErrs []error
	destroy := func(i int) {
		if refs[i] == nil {
			return
		}
		if err := s.fs.destroyByRef(refs[i]); err != nil {
			destroyErrs = append(destroyErrs, fmt.Errorf("stegfs: rollback of %q failed, blocks leaked: %w", names[i], err))
		}
	}
	for i, err := range errs {
		if err != nil {
			for j := range refs {
				destroy(j)
			}
			return errors.Join(append([]error{fmt.Errorf("stegfs: batch create %q: %w", names[i], err)}, destroyErrs...)...)
		}
	}

	// Phase 2 — record the entries under one namespace-lock hold, using
	// the parent grouping built above so each parent is read-modified-
	// rewritten once for the whole batch (a flat batch touches the UAK
	// directory exactly once) instead of once per name.
	addEntries := func(pg *parentGroup) func([]Entry) ([]Entry, error) {
		return func(entries []Entry) ([]Entry, error) {
			for _, i := range pg.idxs {
				base := names[i][strings.LastIndexByte(names[i], '/')+1:]
				if findEntry(entries, base) >= 0 {
					return nil, fmt.Errorf("%w: %q", fsapi.ErrExists, names[i])
				}
				entries = append(entries, Entry{Name: base, Phys: s.physFor(names[i]), FAK: faks[i], Flags: FlagFile})
			}
			return entries, nil
		}
	}
	removeEntries := func(pg *parentGroup) func([]Entry) ([]Entry, error) {
		return func(entries []Entry) ([]Entry, error) {
			for _, i := range pg.idxs {
				base := names[i][strings.LastIndexByte(names[i], '/')+1:]
				if idx := findEntry(entries, base); idx >= 0 {
					entries = append(entries[:idx], entries[idx+1:]...)
				}
			}
			return entries, nil
		}
	}
	s.fs.nsMu.Lock()
	defer s.fs.nsMu.Unlock()
	for reg, dir := range order {
		pg := byParent[dir]
		if err := s.fs.updateParent(s.uid, uak, pg.repr, addEntries(pg)); err != nil {
			// All-or-nothing: un-register the parents recorded so far, and
			// destroy a group's objects only once its entries are gone —
			// if a rollback rewrite itself fails, that group's names stay
			// fully created, never as entries pointing at destroyed
			// objects. Groups never registered (this one included) just
			// lose their objects.
			var rollbackErrs []error
			for _, prevDir := range order[:reg] {
				prev := byParent[prevDir]
				if rerr := s.fs.updateParent(s.uid, uak, prev.repr, removeEntries(prev)); rerr == nil {
					for _, i := range prev.idxs {
						destroy(i)
					}
				} else {
					rollbackErrs = append(rollbackErrs, fmt.Errorf("stegfs: unwind of parent %q failed, its names remain created: %w", prevDir, rerr))
				}
			}
			for _, laterDir := range order[reg:] {
				for _, i := range byParent[laterDir].idxs {
					destroy(i)
				}
			}
			primary := fmt.Errorf("stegfs: batch register under %q: %w", dir, err)
			return errors.Join(append(append([]error{primary}, rollbackErrs...), destroyErrs...)...)
		}
	}
	return nil
}

// Hide implements steg_hide: it converts the plain file at pathname into the
// hidden object objname and deletes the plain source (§4).
func (s *Session) Hide(pathname, objname string, uak []byte) error {
	data, err := s.fs.Read(pathname)
	if err != nil {
		return err
	}
	if err := s.CreateHidden(objname, uak, FlagFile, data); err != nil {
		return err
	}
	return s.fs.Delete(pathname)
}

// Unhide implements steg_unhide: it converts the hidden object objname into
// a plain file at pathname and deletes the hidden source (§4).
func (s *Session) Unhide(pathname, objname string, uak []byte) error {
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		return err
	}
	if e.Flags&FlagFile == 0 {
		return fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	data, err := s.fs.readHiddenObject(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	if err := s.fs.Create(pathname, data); err != nil {
		return err
	}
	return s.DeleteHidden(objname, uak)
}

// Connect implements steg_connect: it locates the hidden object through the
// (objname, UAK) pair and makes it visible in the session. Connecting a
// hidden directory reveals all its offspring as well (§4).
func (s *Session) Connect(objname string, uak []byte) error {
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		return err
	}
	return s.connectEntry(objname, e)
}

func (s *Session) connectEntry(objname string, e Entry) error {
	// steg_connect "first locates the hidden object through the (objname,
	// UAK) pair" — a dangling entry (e.g. after revocation) fails here.
	r, err := s.fs.openShared(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	s.visible[objname] = e
	if e.Flags&FlagDir == 0 {
		s.fs.release(r)
		return nil
	}
	payload, err := s.fs.readHidden(r)
	s.fs.release(r)
	if err != nil {
		return err
	}
	children, err := decodeEntries(payload)
	if err != nil {
		return err
	}
	for _, child := range children {
		if err := s.connectEntry(objname+"/"+child.Name, child); err != nil {
			return err
		}
	}
	return nil
}

// Disconnect implements steg_disconnect: the object (and, for directories,
// all offspring) becomes invisible again.
func (s *Session) Disconnect(objname string) {
	delete(s.visible, objname)
	prefix := objname + "/"
	for name := range s.visible {
		if strings.HasPrefix(name, prefix) {
			delete(s.visible, name)
		}
	}
}

// Logoff disconnects every connected object ("when the user logs off, all
// the connected hidden objects are automatically disconnected").
func (s *Session) Logoff() { s.visible = make(map[string]Entry) }

// Visible returns the names of the currently connected hidden objects, in
// sorted order (map iteration would make listings flap between calls).
func (s *Session) Visible() []string {
	out := make([]string, 0, len(s.visible))
	for n := range s.visible {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ReadHidden reads a connected hidden object's contents. Data blocks are
// decrypted on the fly, never staged in plaintext on the volume. The read
// holds only the object's shared lock, so any number of sessions can read
// distinct (or the same) hidden objects simultaneously.
func (s *Session) ReadHidden(objname string) ([]byte, error) {
	e, ok := s.visible[objname]
	if !ok {
		return nil, fmt.Errorf("%w: %q not connected", fsapi.ErrNotFound, objname)
	}
	r, err := s.fs.openShared(e.Phys, e.FAK)
	if err != nil {
		return nil, err
	}
	defer s.fs.release(r)
	if r.hdr.flags&FlagDir != 0 {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	return s.fs.readHidden(r)
}

// WriteHidden replaces a connected hidden object's contents under the
// object's exclusive lock; writers to distinct objects only meet at the
// (short) allocation critical sections.
func (s *Session) WriteHidden(objname string, data []byte) error {
	e, ok := s.visible[objname]
	if !ok {
		return fmt.Errorf("%w: %q not connected", fsapi.ErrNotFound, objname)
	}
	r, err := s.fs.openExclusive(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	defer s.fs.release(r)
	if r.hdr.flags&FlagDir != 0 {
		return fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	return s.fs.rewriteHidden(r, data)
}

// DeleteHidden removes a hidden object and its entry in the UAK (or parent)
// directory. Directories must be empty.
func (s *Session) DeleteHidden(objname string, uak []byte) error {
	s.fs.nsMu.Lock()
	defer s.fs.nsMu.Unlock()
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		return err
	}
	// Locate the object before touching the parent, so a dangling entry
	// fails here and the directory is left as it was. The ref's header block
	// is reused below to destroy the object without a second probe.
	r, err := s.fs.probeHeader(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	if e.Flags&FlagDir != 0 {
		payload, err := s.fs.readHiddenObject(e.Phys, e.FAK)
		if err != nil {
			return err
		}
		children, err := decodeEntries(payload)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return fmt.Errorf("stegfs: directory %q not empty", objname)
		}
	}
	base := objname[strings.LastIndexByte(objname, '/')+1:]
	if err := s.fs.updateParent(s.uid, uak, objname, func(entries []Entry) ([]Entry, error) {
		idx := findEntry(entries, base)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, objname)
		}
		return append(entries[:idx], entries[idx+1:]...), nil
	}); err != nil {
		return err
	}
	// The entry is gone; destroy the object through the probe's ref
	// (destroyByRef refreshes the header under the object lock first, and
	// treats a concurrent delete's not-found as done).
	if err := s.fs.destroyByRef(r); err != nil {
		return err
	}
	delete(s.visible, objname)
	return nil
}

// ListHidden returns the entries reachable with a UAK (the user's directory
// of name/FAK pairs, §3.2).
func (s *Session) ListHidden(uak []byte) ([]Entry, error) {
	return s.fs.loadUAKDir(s.uid, uak)
}

// GetEntry implements steg_getentry: it retrieves the (name, FAK) pair of a
// shared object and encrypts it with the recipient's public key. The
// returned ciphertext is the "entryfile" the owner transmits (Figure 4).
func (s *Session) GetEntry(objname string, uak []byte, pub *rsa.PublicKey) ([]byte, error) {
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		return nil, err
	}
	payload := encodeEntries([]Entry{e})
	return sgcrypto.WrapEntry(pub, payload)
}

// AddEntry implements steg_addentry: it decrypts an entry file with the
// recipient's private key and records the shared object under the
// recipient's UAK. The caller should destroy the ciphertext afterwards
// (Figure 4).
func (s *Session) AddEntry(entryfile []byte, priv *rsa.PrivateKey, uak []byte) error {
	payload, err := sgcrypto.UnwrapEntry(priv, entryfile)
	if err != nil {
		return err
	}
	entries, err := decodeEntries(payload)
	if err != nil {
		return err
	}
	s.fs.nsMu.Lock()
	defer s.fs.nsMu.Unlock()
	dir, err := s.fs.loadUAKDir(s.uid, uak)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if findEntry(dir, e.Name) >= 0 {
			return fmt.Errorf("%w: %q", fsapi.ErrExists, e.Name)
		}
		dir = append(dir, e)
	}
	return s.fs.saveUAKDir(s.uid, uak, dir)
}

// Revoke implements the revocation procedure of §3.2: StegFS "first makes a
// new copy with a fresh FAK and possibly a different file name, then removes
// the original file to invalidate the old FAK". newName may equal objname.
func (s *Session) Revoke(objname, newName string, uak []byte) error {
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		return err
	}
	if e.Flags&FlagFile == 0 {
		return fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	data, err := s.fs.readHiddenObject(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	if err := s.DeleteHidden(objname, uak); err != nil {
		return err
	}
	return s.CreateHidden(newName, uak, FlagFile, data)
}

// ConnectLevel connects every object reachable with the UAKs at the given
// access level or lower in a linear hierarchy (§3.2: "when the user signs on
// at a given access level, all the hidden files associated with UAKs at that
// access level or lower are visible"). uaks[0] is level 1.
func (s *Session) ConnectLevel(uaks [][]byte, level int) error {
	if level < 0 || level > len(uaks) {
		return fmt.Errorf("stegfs: level %d out of range [0,%d]", level, len(uaks))
	}
	for i := 0; i < level; i++ {
		entries, err := s.fs.loadUAKDir(s.uid, uaks[i])
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := s.connectEntry(e.Name, e); err != nil {
				return err
			}
		}
	}
	return nil
}
