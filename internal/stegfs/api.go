package stegfs

import (
	"crypto/rsa"
	"fmt"
	"strings"

	"stegfs/internal/fsapi"
	"stegfs/internal/sgcrypto"
)

// reserved physical-name prefixes. User ids may not contain NUL, so user
// objects (physName = uid + "/" + path) can never collide with these.
const (
	physUAKDir = "\x00uakdir"
	physDummy  = "\x00dummy/"
)

// uakDirFAK derives the file access key of the hidden directory that stores
// a user's (name, FAK) pairs for one UAK. The directory itself is "encrypted
// with the UAK and stored as a hidden file on the file system" (§3.2). The
// user id is mixed in so that two users who happen to choose the same UAK
// string get distinct, mutually invisible directories.
func uakDirFAK(uid string, uak []byte) []byte {
	sig := sgcrypto.Signature("stegfs.uakdir.fak\x00"+uid, uak)
	return sig[:]
}

// uakDirPhys returns the physical name of a user's UAK directory.
func uakDirPhys(uid string) string { return physUAKDir + "/" + uid }

// Session is a user's login session. Hidden objects become visible only
// after an explicit Connect and vanish again on Disconnect or Logoff,
// mirroring the steg_connect/steg_disconnect semantics of §4.
type Session struct {
	fs      *FS
	uid     string
	visible map[string]Entry
}

// NewSession starts a session for the given user id.
func (fs *FS) NewSession(uid string) (*Session, error) {
	if strings.ContainsRune(uid, 0) || uid == "" {
		return nil, fmt.Errorf("stegfs: invalid user id %q", uid)
	}
	return &Session{fs: fs, uid: uid, visible: make(map[string]Entry)}, nil
}

// UID returns the session's user id.
func (s *Session) UID() string { return s.uid }

// physFor builds the physical name of a user object: "the physical file name
// is derived by concatenating the user id with the complete path name of the
// file" (§3.1), preventing cross-user collisions on (name, key).
func (s *Session) physFor(objname string) string { return s.uid + "/" + objname }

// --- UAK directory plumbing -------------------------------------------------

// loadUAKDir returns the entries of the UAK's directory; a missing directory
// reads as empty (its absence is itself deniable).
func (fs *FS) loadUAKDir(uid string, uak []byte) ([]Entry, error) {
	r, err := fs.probeHeader(uakDirPhys(uid), uakDirFAK(uid, uak))
	if err != nil {
		return nil, nil // no directory yet
	}
	payload, err := fs.readHidden(r)
	if err != nil {
		return nil, err
	}
	return decodeEntries(payload)
}

// saveUAKDir writes the UAK directory, creating it on first use.
func (fs *FS) saveUAKDir(uid string, uak []byte, entries []Entry) error {
	payload := encodeEntries(entries)
	fak := uakDirFAK(uid, uak)
	if r, err := fs.probeHeader(uakDirPhys(uid), fak); err == nil {
		return fs.rewriteHidden(r, payload)
	}
	_, err := fs.createHidden(uakDirPhys(uid), fak, FlagDir, payload)
	return err
}

// resolve walks a slash-separated object name starting from the UAK
// directory, descending through hidden directories.
func (fs *FS) resolve(uid string, uak []byte, objname string) (Entry, error) {
	comps := strings.Split(objname, "/")
	entries, err := fs.loadUAKDir(uid, uak)
	if err != nil {
		return Entry{}, err
	}
	var cur Entry
	for i, comp := range comps {
		idx := findEntry(entries, comp)
		if idx < 0 {
			return Entry{}, fmt.Errorf("%w: hidden object %q", fsapi.ErrNotFound, objname)
		}
		cur = entries[idx]
		if i == len(comps)-1 {
			return cur, nil
		}
		if cur.Flags&FlagDir == 0 {
			return Entry{}, fmt.Errorf("%w: %q", fsapi.ErrNotDir, strings.Join(comps[:i+1], "/"))
		}
		r, err := fs.probeHeader(cur.Phys, cur.FAK)
		if err != nil {
			return Entry{}, err
		}
		payload, err := fs.readHidden(r)
		if err != nil {
			return Entry{}, err
		}
		if entries, err = decodeEntries(payload); err != nil {
			return Entry{}, err
		}
	}
	return cur, nil
}

// updateParent rewrites the entry list that contains the last component of
// objname, applying fn to it. For top-level names that is the UAK directory;
// for nested names it is the parent hidden directory.
func (fs *FS) updateParent(uid string, uak []byte, objname string, fn func([]Entry) ([]Entry, error)) error {
	comps := strings.Split(objname, "/")
	if len(comps) == 1 {
		entries, err := fs.loadUAKDir(uid, uak)
		if err != nil {
			return err
		}
		if entries, err = fn(entries); err != nil {
			return err
		}
		return fs.saveUAKDir(uid, uak, entries)
	}
	parent, err := fs.resolve(uid, uak, strings.Join(comps[:len(comps)-1], "/"))
	if err != nil {
		return err
	}
	if parent.Flags&FlagDir == 0 {
		return fmt.Errorf("%w: %q", fsapi.ErrNotDir, parent.Name)
	}
	r, err := fs.probeHeader(parent.Phys, parent.FAK)
	if err != nil {
		return err
	}
	payload, err := fs.readHidden(r)
	if err != nil {
		return err
	}
	entries, err := decodeEntries(payload)
	if err != nil {
		return err
	}
	if entries, err = fn(entries); err != nil {
		return err
	}
	return fs.rewriteHidden(r, encodeEntries(entries))
}

// --- The steg_* APIs of Section 4 -------------------------------------------

// CreateHidden implements steg_create: it creates a hidden file (objtype
// FlagFile) or hidden directory (FlagDir) named objname under the UAK, with
// the given initial contents (directories must start empty). A fresh random
// FAK is generated and recorded in the UAK's directory.
func (s *Session) CreateHidden(objname string, uak []byte, objtype byte, data []byte) error {
	if objtype != FlagFile && objtype != FlagDir {
		return fmt.Errorf("stegfs: invalid object type %#x", objtype)
	}
	if objname == "" || strings.ContainsRune(objname, 0) {
		return fmt.Errorf("stegfs: invalid object name %q", objname)
	}
	if objtype == FlagDir {
		if len(data) != 0 {
			return fmt.Errorf("stegfs: directories are created empty")
		}
		data = encodeEntries(nil)
	}
	fak, err := sgcrypto.NewFAK()
	if err != nil {
		return err
	}
	phys := s.physFor(objname)
	base := objname[strings.LastIndexByte(objname, '/')+1:]

	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	if _, err := s.fs.createHidden(phys, fak, objtype, data); err != nil {
		return err
	}
	err = s.fs.updateParent(s.uid, uak, objname, func(entries []Entry) ([]Entry, error) {
		if findEntry(entries, base) >= 0 {
			return nil, fmt.Errorf("%w: %q", fsapi.ErrExists, objname)
		}
		return append(entries, Entry{Name: base, Phys: phys, FAK: fak, Flags: objtype}), nil
	})
	if err != nil {
		// Roll back the orphaned object.
		if r, perr := s.fs.probeHeader(phys, fak); perr == nil {
			s.fs.destroyHiddenLocked(r)
		}
		return err
	}
	return nil
}

// Hide implements steg_hide: it converts the plain file at pathname into the
// hidden object objname and deletes the plain source (§4).
func (s *Session) Hide(pathname, objname string, uak []byte) error {
	data, err := s.fs.Read(pathname)
	if err != nil {
		return err
	}
	if err := s.CreateHidden(objname, uak, FlagFile, data); err != nil {
		return err
	}
	return s.fs.Delete(pathname)
}

// Unhide implements steg_unhide: it converts the hidden object objname into
// a plain file at pathname and deletes the hidden source (§4).
func (s *Session) Unhide(pathname, objname string, uak []byte) error {
	s.fs.mu.Lock()
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		s.fs.mu.Unlock()
		return err
	}
	if e.Flags&FlagFile == 0 {
		s.fs.mu.Unlock()
		return fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	r, err := s.fs.probeHeader(e.Phys, e.FAK)
	if err != nil {
		s.fs.mu.Unlock()
		return err
	}
	data, err := s.fs.readHidden(r)
	if err != nil {
		s.fs.mu.Unlock()
		return err
	}
	s.fs.mu.Unlock()

	if err := s.fs.Create(pathname, data); err != nil {
		return err
	}
	return s.DeleteHidden(objname, uak)
}

// Connect implements steg_connect: it locates the hidden object through the
// (objname, UAK) pair and makes it visible in the session. Connecting a
// hidden directory reveals all its offspring as well (§4).
func (s *Session) Connect(objname string, uak []byte) error {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		return err
	}
	return s.connectLocked(objname, e)
}

func (s *Session) connectLocked(objname string, e Entry) error {
	// steg_connect "first locates the hidden object through the (objname,
	// UAK) pair" — a dangling entry (e.g. after revocation) fails here.
	r, err := s.fs.probeHeader(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	s.visible[objname] = e
	if e.Flags&FlagDir == 0 {
		return nil
	}
	payload, err := s.fs.readHidden(r)
	if err != nil {
		return err
	}
	children, err := decodeEntries(payload)
	if err != nil {
		return err
	}
	for _, child := range children {
		if err := s.connectLocked(objname+"/"+child.Name, child); err != nil {
			return err
		}
	}
	return nil
}

// Disconnect implements steg_disconnect: the object (and, for directories,
// all offspring) becomes invisible again.
func (s *Session) Disconnect(objname string) {
	delete(s.visible, objname)
	prefix := objname + "/"
	for name := range s.visible {
		if strings.HasPrefix(name, prefix) {
			delete(s.visible, name)
		}
	}
}

// Logoff disconnects every connected object ("when the user logs off, all
// the connected hidden objects are automatically disconnected").
func (s *Session) Logoff() { s.visible = make(map[string]Entry) }

// Visible returns the names of the currently connected hidden objects.
func (s *Session) Visible() []string {
	out := make([]string, 0, len(s.visible))
	for n := range s.visible {
		out = append(out, n)
	}
	return out
}

// ReadHidden reads a connected hidden object's contents. Data blocks are
// decrypted on the fly, never staged in plaintext on the volume.
func (s *Session) ReadHidden(objname string) ([]byte, error) {
	e, ok := s.visible[objname]
	if !ok {
		return nil, fmt.Errorf("%w: %q not connected", fsapi.ErrNotFound, objname)
	}
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	r, err := s.fs.probeHeader(e.Phys, e.FAK)
	if err != nil {
		return nil, err
	}
	if r.hdr.flags&FlagDir != 0 {
		return nil, fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	return s.fs.readHidden(r)
}

// WriteHidden replaces a connected hidden object's contents.
func (s *Session) WriteHidden(objname string, data []byte) error {
	e, ok := s.visible[objname]
	if !ok {
		return fmt.Errorf("%w: %q not connected", fsapi.ErrNotFound, objname)
	}
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	r, err := s.fs.probeHeader(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	if r.hdr.flags&FlagDir != 0 {
		return fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	return s.fs.rewriteHidden(r, data)
}

// DeleteHidden removes a hidden object and its entry in the UAK (or parent)
// directory. Directories must be empty.
func (s *Session) DeleteHidden(objname string, uak []byte) error {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		return err
	}
	r, err := s.fs.probeHeader(e.Phys, e.FAK)
	if err != nil {
		return err
	}
	if e.Flags&FlagDir != 0 {
		payload, err := s.fs.readHidden(r)
		if err != nil {
			return err
		}
		children, err := decodeEntries(payload)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return fmt.Errorf("stegfs: directory %q not empty", objname)
		}
	}
	base := objname[strings.LastIndexByte(objname, '/')+1:]
	if err := s.fs.updateParent(s.uid, uak, objname, func(entries []Entry) ([]Entry, error) {
		idx := findEntry(entries, base)
		if idx < 0 {
			return nil, fmt.Errorf("%w: %q", fsapi.ErrNotFound, objname)
		}
		return append(entries[:idx], entries[idx+1:]...), nil
	}); err != nil {
		return err
	}
	s.fs.destroyHiddenLocked(r)
	delete(s.visible, objname)
	return nil
}

// ListHidden returns the entries reachable with a UAK (the user's directory
// of name/FAK pairs, §3.2).
func (s *Session) ListHidden(uak []byte) ([]Entry, error) {
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	return s.fs.loadUAKDir(s.uid, uak)
}

// GetEntry implements steg_getentry: it retrieves the (name, FAK) pair of a
// shared object and encrypts it with the recipient's public key. The
// returned ciphertext is the "entryfile" the owner transmits (Figure 4).
func (s *Session) GetEntry(objname string, uak []byte, pub *rsa.PublicKey) ([]byte, error) {
	s.fs.mu.Lock()
	e, err := s.fs.resolve(s.uid, uak, objname)
	s.fs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	payload := encodeEntries([]Entry{e})
	return sgcrypto.WrapEntry(pub, payload)
}

// AddEntry implements steg_addentry: it decrypts an entry file with the
// recipient's private key and records the shared object under the
// recipient's UAK. The caller should destroy the ciphertext afterwards
// (Figure 4).
func (s *Session) AddEntry(entryfile []byte, priv *rsa.PrivateKey, uak []byte) error {
	payload, err := sgcrypto.UnwrapEntry(priv, entryfile)
	if err != nil {
		return err
	}
	entries, err := decodeEntries(payload)
	if err != nil {
		return err
	}
	s.fs.mu.Lock()
	defer s.fs.mu.Unlock()
	dir, err := s.fs.loadUAKDir(s.uid, uak)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if findEntry(dir, e.Name) >= 0 {
			return fmt.Errorf("%w: %q", fsapi.ErrExists, e.Name)
		}
		dir = append(dir, e)
	}
	return s.fs.saveUAKDir(s.uid, uak, dir)
}

// Revoke implements the revocation procedure of §3.2: StegFS "first makes a
// new copy with a fresh FAK and possibly a different file name, then removes
// the original file to invalidate the old FAK". newName may equal objname.
func (s *Session) Revoke(objname, newName string, uak []byte) error {
	s.fs.mu.Lock()
	e, err := s.fs.resolve(s.uid, uak, objname)
	if err != nil {
		s.fs.mu.Unlock()
		return err
	}
	if e.Flags&FlagFile == 0 {
		s.fs.mu.Unlock()
		return fmt.Errorf("%w: %q", fsapi.ErrIsDir, objname)
	}
	r, err := s.fs.probeHeader(e.Phys, e.FAK)
	if err != nil {
		s.fs.mu.Unlock()
		return err
	}
	data, err := s.fs.readHidden(r)
	s.fs.mu.Unlock()
	if err != nil {
		return err
	}
	if err := s.DeleteHidden(objname, uak); err != nil {
		return err
	}
	return s.CreateHidden(newName, uak, FlagFile, data)
}

// ConnectLevel connects every object reachable with the UAKs at the given
// access level or lower in a linear hierarchy (§3.2: "when the user signs on
// at a given access level, all the hidden files associated with UAKs at that
// access level or lower are visible"). uaks[0] is level 1.
func (s *Session) ConnectLevel(uaks [][]byte, level int) error {
	if level < 0 || level > len(uaks) {
		return fmt.Errorf("stegfs: level %d out of range [0,%d]", level, len(uaks))
	}
	for i := 0; i < level; i++ {
		s.fs.mu.Lock()
		entries, err := s.fs.loadUAKDir(s.uid, uaks[i])
		if err != nil {
			s.fs.mu.Unlock()
			return err
		}
		for _, e := range entries {
			if err := s.connectLocked(e.Name, e); err != nil {
				s.fs.mu.Unlock()
				return err
			}
		}
		s.fs.mu.Unlock()
	}
	return nil
}
