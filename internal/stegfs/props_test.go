package stegfs

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"stegfs/internal/adversary"
)

// TestPropertyHiddenRoundTrip: create/read is the identity for arbitrary
// payload sizes and keys.
func TestPropertyHiddenRoundTrip(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, nil)
	i := 0
	f := func(szRaw uint16, key []byte) bool {
		i++
		name := fmt.Sprintf("u/p%d", i)
		data := mkPayload(int(szRaw)%30000, byte(i))
		if _, err := fs.createHidden(name, key, FlagFile, data); err != nil {
			return false
		}
		r, err := fs.openShared(name, key)
		if err != nil {
			return false
		}
		got, err := fs.readHidden(r)
		fs.release(r)
		if err != nil {
			return false
		}
		if !bytes.Equal(got, data) {
			return false
		}
		// Clean up so the volume does not fill.
		r, err = fs.openExclusive(name, key)
		if err != nil {
			return false
		}
		fs.destroyHidden(r)
		fs.release(r)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBitmapLedger: after arbitrary create/delete sequences of
// hidden files, the bitmap's used count equals metadata + abandoned +
// dummies + live files' blocks, and deleting everything restores the
// baseline exactly.
func TestPropertyBitmapLedger(t *testing.T) {
	f := func(ops []uint16) bool {
		fsys, _ := newTestFS(t, 8192, 512, nil)
		view := fsys.NewHiddenView("u")
		base := fsys.FreeBlocks()
		live := map[string]bool{}
		for i, op := range ops {
			if i >= 12 {
				break
			}
			name := fmt.Sprintf("f%d", int(op)%6)
			if live[name] {
				if err := view.Delete(name); err != nil {
					return false
				}
				delete(live, name)
			} else {
				if err := view.Create(name, mkPayload(int(op)%9000+1, byte(i))); err != nil {
					return false
				}
				live[name] = true
			}
		}
		// Account for every live file's blocks.
		var occupied int64
		for name := range live {
			_, all, err := view.BlocksOf(name)
			if err != nil {
				return false
			}
			occupied += int64(len(all))
		}
		if fsys.FreeBlocks() != base-occupied {
			return false
		}
		for name := range live {
			if err := view.Delete(name); err != nil {
				return false
			}
		}
		return fsys.FreeBlocks() == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMultiFileIsolation: concurrent hidden files never corrupt each
// other, whatever the interleaving of writes.
func TestPropertyMultiFileIsolation(t *testing.T) {
	f := func(writes []uint16) bool {
		fsys, _ := newTestFS(t, 8192, 512, nil)
		view := fsys.NewHiddenView("u")
		const nFiles = 4
		ref := make([][]byte, nFiles)
		for i := 0; i < nFiles; i++ {
			ref[i] = mkPayload(2000+i*777, byte(i))
			if err := view.Create(fmt.Sprintf("f%d", i), ref[i]); err != nil {
				return false
			}
		}
		for j, w := range writes {
			if j >= 10 {
				break
			}
			i := int(w) % nFiles
			ref[i] = mkPayload(int(w)%12000+1, byte(j+100))
			if err := view.Write(fmt.Sprintf("f%d", i), ref[i]); err != nil {
				return false
			}
		}
		for i := 0; i < nFiles; i++ {
			got, err := view.Read(fmt.Sprintf("f%d", i))
			if err != nil || !bytes.Equal(got, ref[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestIndistinguishabilityOnDisk: with full random fill, every data-region
// block — free space, abandoned, dummy, hidden data — passes a uniformity
// test; nothing betrays which blocks hold hidden content.
func TestIndistinguishabilityOnDisk(t *testing.T) {
	fs, store := newTestFS(t, 4096, 1024, nil) // FillVolume=true by default
	view := fs.NewHiddenView("u")
	if err := view.Create("secret", mkPayload(50_000, 9)); err != nil {
		t.Fatal(err)
	}
	var blocks []int64
	for b := fs.DataStart(); b < store.NumBlocks(); b++ {
		blocks = append(blocks, b)
	}
	st, err := adversary.ScanBlocks(store, blocks, 400)
	if err != nil {
		t.Fatal(err)
	}
	if st.Flagged != 0 {
		t.Fatalf("%d of %d data blocks distinguishable from random (max chi2=%.1f)",
			st.Flagged, st.Blocks, st.MaxChi)
	}
}

// TestHiddenBlocksLookLikeFreeBlocks: compare the chi-square distribution of
// blocks holding hidden data against untouched free blocks; their means must
// be statistically indistinguishable.
func TestHiddenBlocksLookLikeFreeBlocks(t *testing.T) {
	fs, store := newTestFS(t, 4096, 1024, nil)
	view := fs.NewHiddenView("u")
	if err := view.Create("secret", mkPayload(80_000, 3)); err != nil {
		t.Fatal(err)
	}
	data, _, err := view.BlocksOf("secret")
	if err != nil {
		t.Fatal(err)
	}
	hiddenStats, err := adversary.ScanBlocks(store, data, 400)
	if err != nil {
		t.Fatal(err)
	}
	var free []int64
	bm := fs.Bitmap()
	for b := fs.DataStart(); b < store.NumBlocks() && len(free) < len(data); b++ {
		if !bm.Test(b) {
			free = append(free, b)
		}
	}
	freeStats, err := adversary.ScanBlocks(store, free, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Both means should hover around 255 (the chi-square dof); a gap larger
	// than 25% would be a distinguisher.
	ratio := hiddenStats.MeanChi / freeStats.MeanChi
	if ratio < 0.75 || ratio > 1.33 {
		t.Fatalf("hidden (%.1f) vs free (%.1f) chi2 means differ by %0.2fx",
			hiddenStats.MeanChi, freeStats.MeanChi, ratio)
	}
}

// TestCentralDirectoryNeverReferencesHidden: a structural deniability
// invariant — no walk of public metadata reaches a hidden block.
func TestCentralDirectoryNeverReferencesHidden(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, nil)
	view := fs.NewHiddenView("u")
	if err := fs.Create("public", mkPayload(10_000, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := view.Create(fmt.Sprintf("h%d", i), mkPayload(8_000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	refs, err := fs.PlainReferencedBlocks()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, all, err := view.BlocksOf(fmt.Sprintf("h%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range all {
			if refs[b] {
				t.Fatalf("public metadata references hidden block %d", b)
			}
		}
	}
}

// TestSnapshotAttackBlunted: the §3.1 intruder measures allocation deltas;
// with free pools and dummy churn the delta's precision must be well below
// 1 (many candidates hold no user data).
func TestSnapshotAttackBlunted(t *testing.T) {
	fs, _ := newTestFS(t, 8192, 512, func(p *Params) {
		p.NDummy = 4
		p.DummyAvgSize = 16 * 512
		p.FreeMax = 10
	})
	view := fs.NewHiddenView("u")
	before := fs.Bitmap()
	if err := view.Create("target", mkPayload(20*512, 2)); err != nil {
		t.Fatal(err)
	}
	if err := fs.TickDummies(); err != nil {
		t.Fatal(err)
	}
	after := fs.Bitmap()
	data, _, err := view.BlocksOf("target")
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int64]bool{}
	for _, b := range data {
		truth[b] = true
	}
	res := adversary.DeltaAttack(before, after, nil, truth)
	if res.Candidates <= len(truth) {
		t.Fatalf("delta attack sees only %d candidates for %d data blocks — no cover", res.Candidates, len(truth))
	}
	if res.Precision > 0.5 {
		t.Fatalf("attack precision %.2f too high: dummies/pools not providing cover", res.Precision)
	}
}
