package stegfs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"stegfs/internal/alloc"
	"stegfs/internal/bitmapvec"
	"stegfs/internal/blockcache"
	"stegfs/internal/fsapi"
	"stegfs/internal/plainfs"
	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// createStripes is the number of name-stripe mutexes serializing concurrent
// creates of the same physical name (see FS.createMu).
const createStripes = 64

// FS is a mounted StegFS volume: an embedded plain file system reached
// through the central directory, plus hidden objects reachable only with
// the correct (name, key) pairs.
//
// Lock hierarchy (outermost first):
//
//	nsMu → objs gate (then one per-object lock) → createMu stripe →
//	mu → allocation-group locks → cache/device internals
//
// Block allocation lives in the sharded allocator (internal/alloc): the
// data region is split into allocation groups, each with its own mutex, so
// writers to distinct hidden objects — and plain-file mutators — contend
// only when their blocks land in the same group. mu is demoted to guarding
// the superblock fields and serializing the Sync/Backup metadata writes;
// every mutator (hidden or plain) holds the freeze gate shared, which is
// what lets Sync/Backup quiesce the whole volume, all allocation groups
// included, before imaging or writing the bitmap.
type FS struct {
	// lockcheck:level 10 volume/nsMu
	nsMu sync.Mutex // serializes compound namespace ops (directory updates)
	// lockcheck:level 40 volume/fsMu
	mu      sync.RWMutex // guards sb fields; serializes Sync/Backup metadata writes
	objs    *lockTable   // per-hidden-object locks, keyed by header block
	sealers *sealerCache // open-state hints keyed by header signature (see sealcache.go)
	// lockcheck:level 30 volume/createMu
	createMu [createStripes]sync.Mutex // name stripes: same-(name,key) creates serialize here
	dev      vdisk.Device
	cache    *blockcache.Cache  // non-nil when mounted through WithCache
	retry    *vdisk.RetryDevice // non-nil when mounted through WithRetry
	alloc    *alloc.Allocator   // sharded allocator over the volume bitmap
	sb       *superblock
	params   Params
	plain    *plainfs.Volume
	health   healthState // read-only degradation state (see health.go)
}

// createStripe returns the name-stripe mutex for a physical name.
//
// lockcheck:returns volume/createMu
func (fs *FS) createStripe(physName string) *sync.Mutex {
	h := fnv.New32a()
	_, _ = h.Write([]byte(physName))
	return &fs.createMu[h.Sum32()%createStripes]
}

// Option configures Format and Mount.
type Option func(*mountConfig)

type mountConfig struct {
	cacheBlocks  int
	cachePolicy  string
	writeBehind  int
	flushWorkers int
	allocGroups  int
	retryPolicy  *vdisk.RetryPolicy
	retry        *vdisk.RetryDevice // set by applyOptions when retryPolicy != nil
}

// WithCache mounts the volume through a blockcache of the given capacity (in
// blocks). All I/O — plain files, hidden files, and anything layered on them
// such as stegdb — then runs through the cache; FS.Sync flushes dirty data
// blocks to the device before the superblock/bitmap write so the on-device
// image stays crash-consistent. A capacity of 0 is a no-op.
func WithCache(blocks int) Option {
	return func(c *mountConfig) { c.cacheBlocks = blocks }
}

// WithCachePolicy selects the cache replacement policy ("lru", "arc", "2q";
// see blockcache.PolicyNames). It composes with WithCache, which sets the
// capacity; without WithCache it has no effect. Scan-resistant policies
// (ARC, 2Q) keep the repeatedly probed header/p-tree/directory blocks
// resident even when hidden-file data scans exceed the cache capacity.
func WithCachePolicy(name string) Option {
	return func(c *mountConfig) { c.cachePolicy = name }
}

// WithWriteBehind bounds deferred dirty data: once more than highWater dirty
// blocks accumulate in the cache, the flush pipeline writes dirty blocks
// back in ascending, batched runs without waiting for the next Sync. The
// optional second argument sets the number of background flusher goroutines
// servicing those runs (default 1): the runs are issued outside the cache
// mutex, so a cached writer never stalls behind the device; pass a negative
// worker count to keep write-behind synchronous in the writing goroutine.
// The data-before-metadata barrier in FS.Sync is unaffected: write-behind
// may flush any dirty block early (headers and p-tree blocks included — the
// cache cannot tell them apart), but the on-device image's consistency
// rests on the superblock/bitmap being written only inside Sync after a
// full flush — which drains the pipeline first — and that ordering is
// untouched. Composes with WithCache; highWater 0 disables.
func WithWriteBehind(highWater int, flushWorkers ...int) Option {
	return func(c *mountConfig) {
		c.writeBehind = highWater
		if len(flushWorkers) > 0 {
			c.flushWorkers = flushWorkers[0]
		}
	}
}

// WithAllocGroups sets the number of allocation groups the sharded
// allocator partitions the data region into (default alloc.DefaultGroups).
// The grouping is runtime-only — the on-disk bitmap layout is identical for
// every value, and two-level free-weighted sampling keeps allocation
// uniform over the whole free space regardless of the group count — so the
// knob trades allocator parallelism against per-group bookkeeping without
// touching the format or the §3.1 adversary model. Values <= 0 select the
// default.
func WithAllocGroups(groups int) Option {
	return func(c *mountConfig) { c.allocGroups = groups }
}

// resolveAllocGroups turns the WithAllocGroups setting into a concrete group
// count. Values > 0 pass through. The default scales with the machine and
// the volume instead of a fixed constant: contention on a group mutex grows
// with the number of goroutines that can run at once (alloc.Stats counts
// exactly these collisions), so the default provisions 8 groups per
// available CPU — enough that concurrent writers rarely meet — bounded
// below for parallelism headroom and above by both a bookkeeping cap and a
// 64-block minimum span per group on small volumes (alloc.New enforces the
// same floor internally). Group count is runtime-only and allocation stays
// uniform over the whole free space regardless of it (two-level
// free-weighted sampling), so scaling it never touches the on-disk format
// or the §3.1 uniformity guarantees.
func resolveAllocGroups(configured int, dataBlocks int64) int {
	if configured > 0 {
		return configured
	}
	g := 8 * runtime.GOMAXPROCS(0)
	if g < alloc.DefaultGroups {
		g = alloc.DefaultGroups
	}
	if g > 256 {
		g = 256
	}
	if bySpan := dataBlocks / 64; int64(g) > bySpan {
		g = int(bySpan)
	}
	if g < 1 {
		g = 1
	}
	return g
}

// WithRetry mounts the volume through a vdisk.RetryDevice: transient device
// faults (vdisk.ErrTransient, vdisk.ErrIO) are absorbed by bounded retries
// with exponential backoff below the cache, so they never reach the FS and
// never degrade the mount. maxRetries <= 0 selects the policy default.
// FS.Health reports the retry/give-up counters.
func WithRetry(maxRetries int) Option {
	return func(c *mountConfig) {
		c.retryPolicy = &vdisk.RetryPolicy{MaxRetries: maxRetries}
	}
}

// applyOptions resolves opts and wraps dev in a retry layer and/or a cache
// when requested (stacking retry below the cache, so flushed write-backs are
// retried too).
func applyOptions(dev vdisk.Device, opts []Option) (vdisk.Device, *blockcache.Cache, mountConfig, error) {
	var cfg mountConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.retryPolicy != nil {
		cfg.retry = vdisk.NewRetryDevice(dev, *cfg.retryPolicy)
		dev = cfg.retry
	}
	if cfg.cacheBlocks > 0 {
		c, err := blockcache.NewWithOptions(dev, blockcache.Options{
			Capacity:     cfg.cacheBlocks,
			Policy:       cfg.cachePolicy,
			WriteBehind:  cfg.writeBehind,
			FlushWorkers: cfg.flushWorkers,
		})
		if err != nil {
			return nil, nil, cfg, err
		}
		return c, c, cfg, nil
	}
	if cfg.cachePolicy != "" {
		// Catch a policy name typo even when the capacity is 0 (uncached).
		if _, err := blockcache.NewPolicy(cfg.cachePolicy, 0); err != nil {
			return nil, nil, cfg, err
		}
	}
	return dev, nil, cfg, nil
}

// layoutFor computes region boundaries for a volume on dev.
func layoutFor(dev vdisk.Device, maxPlain int) (bmStart, bmLen, inoStart, inoLen, dataStart int64) {
	bs := int64(dev.BlockSize())
	bmStart = 1
	bmLen = (int64(bitmapvec.MarshaledLen(dev.NumBlocks())) + bs - 1) / bs
	inoStart = bmStart + bmLen
	inoLen = plainfs.InodeBlocksFor(dev, maxPlain)
	dataStart = inoStart + inoLen
	return
}

// Format initializes dev as a StegFS volume: writes random patterns into all
// blocks, reserves metadata regions, abandons a random fraction of blocks,
// creates the dummy hidden files, and mounts the result.
func Format(dev vdisk.Device, params Params, opts ...Option) (_ *FS, retErr error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	dev, cache, mcfg, err := applyOptions(dev, opts)
	if err != nil {
		return nil, err
	}
	// The cache may have spawned background flusher goroutines; a failed
	// format must not leak them.
	defer func() {
		if retErr != nil && cache != nil {
			_ = cache.StopFlushers()
		}
	}()
	bmStart, bmLen, inoStart, inoLen, dataStart := layoutFor(dev, params.MaxPlainFiles)
	n := dev.NumBlocks()
	if dataStart+16 >= n {
		return nil, fmt.Errorf("stegfs: volume too small: %d blocks, metadata needs %d", n, dataStart)
	}
	if dev.BlockSize() < superblockLen {
		return nil, fmt.Errorf("stegfs: block size %d smaller than superblock (%d)", dev.BlockSize(), superblockLen)
	}

	sb := &superblock{
		blockSize:   uint32(dev.BlockSize()),
		numBlocks:   uint64(n),
		bmStart:     uint64(bmStart),
		bmLen:       uint64(bmLen),
		inoStart:    uint64(inoStart),
		inoLen:      uint64(inoLen),
		dataStart:   uint64(dataStart),
		maxPlain:    uint64(params.MaxPlainFiles),
		pctAband:    params.PctAbandoned,
		freeMin:     uint32(params.FreeMin),
		freeMax:     uint32(params.FreeMax),
		nDummy:      uint32(params.NDummy),
		dummyAvg:    uint64(params.DummyAvgSize),
		seed:        params.Seed,
		headerProbe: uint32(params.MaxHeaderProbes),
		freeStop:    uint32(params.FreeProbeStop),
	}
	if params.DeterministicKeys {
		sb.flags |= flagDeterministicKeys
	}
	if params.DeterministicKeys {
		sb.volKey = sgcrypto.Signature("stegfs.volkey.deterministic", []byte{
			byte(params.Seed), byte(params.Seed >> 8), byte(params.Seed >> 16),
			byte(params.Seed >> 24), byte(params.Seed >> 32), byte(params.Seed >> 40),
			byte(params.Seed >> 48), byte(params.Seed >> 56)})
	} else if _, err := rand.Read(sb.volKey[:]); err != nil {
		return nil, fmt.Errorf("stegfs: volume key: %w", err)
	}

	// Step 1 — random patterns into all blocks so used blocks do not stand
	// out from free blocks (§3.1).
	if params.FillVolume {
		var seed [8]byte
		binary.BigEndian.PutUint64(seed[:], uint64(params.Seed))
		filler := sgcrypto.NewRandomFiller(seed[:])
		buf := make([]byte, dev.BlockSize())
		for b := int64(0); b < n; b++ {
			filler.Fill(buf)
			if err := dev.WriteBlock(b, buf); err != nil {
				return nil, fmt.Errorf("stegfs: format fill block %d: %w", b, err)
			}
		}
	}

	// Step 2 — bitmap with metadata regions marked used, then the sharded
	// allocator over the data region (the single-threaded setup above is the
	// last direct bitmap access; everything after goes through the groups).
	bm := bitmapvec.New(n)
	for b := int64(0); b < dataStart; b++ {
		if err := bm.Set(b); err != nil {
			return nil, err
		}
	}
	al, err := alloc.New(bm, dataStart, resolveAllocGroups(mcfg.allocGroups, n-dataStart), params.Seed)
	if err != nil {
		return nil, err
	}

	// Step 3 — abandon a random selection of data-region blocks (§3.1:
	// "some randomly selected blocks are abandoned by turning on their
	// corresponding bits in the bitmap"). Drawn through the allocator, so
	// abandoned blocks follow the same whole-volume uniform distribution as
	// hidden allocations.
	dataBlocks := n - dataStart
	nAband := int64(float64(dataBlocks) * params.PctAbandoned)
	for i := int64(0); i < nAband; i++ {
		b, err := al.Alloc()
		if err != nil {
			return nil, fmt.Errorf("stegfs: abandoning blocks: %w", err)
		}
		if !params.FillVolume {
			// Ensure abandoned blocks still look random even when the bulk
			// fill was skipped.
			if err := writeRandomBlock(dev, b); err != nil {
				return nil, err
			}
		}
	}
	sb.nAbandoned = uint64(nAband)

	// Zero the central directory so it decodes as empty inodes.
	zero := make([]byte, dev.BlockSize())
	for b := inoStart; b < inoStart+inoLen; b++ {
		if err := dev.WriteBlock(b, zero); err != nil {
			return nil, err
		}
	}

	fs := &FS{dev: dev, cache: cache, retry: mcfg.retry, alloc: al, sb: sb, params: params, objs: newLockTable(), sealers: newSealerCache()}
	fs.plain, err = plainfs.NewEmbedded(dev, bm, inoStart, inoLen, dataStart, plainfs.Config{
		Policy:   plainfs.Random,
		MaxFiles: params.MaxPlainFiles,
		Seed:     params.Seed + 1,
		Alloc:    al,
	})
	if err != nil {
		return nil, err
	}

	// Step 4 — dummy hidden files (§3.1).
	if err := fs.createDummies(); err != nil {
		return nil, fmt.Errorf("stegfs: creating dummy files: %w", err)
	}

	if err := fs.Sync(); err != nil {
		return nil, err
	}
	return fs, nil
}

// writeRandomBlock fills block b of dev with fresh random-looking bytes.
func writeRandomBlock(dev vdisk.Device, b int64) error {
	buf := make([]byte, dev.BlockSize())
	var seed [16]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return err
	}
	sgcrypto.NewRandomFiller(seed[:]).Fill(buf)
	return dev.WriteBlock(b, buf)
}

// Mount opens an already-formatted StegFS volume.
func Mount(dev vdisk.Device, opts ...Option) (_ *FS, retErr error) {
	dev, cache, mcfg, err := applyOptions(dev, opts)
	if err != nil {
		return nil, err
	}
	// As in Format: a failed mount must stop any flusher goroutines the
	// cache already spawned.
	defer func() {
		if retErr != nil && cache != nil {
			_ = cache.StopFlushers()
		}
	}()
	buf := make([]byte, dev.BlockSize())
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, err
	}
	sb, err := decodeSuper(buf)
	if err != nil {
		return nil, err
	}
	if int64(sb.numBlocks) != dev.NumBlocks() || int(sb.blockSize) != dev.BlockSize() {
		return nil, fmt.Errorf("stegfs: superblock geometry %dx%d does not match device %dx%d",
			sb.numBlocks, sb.blockSize, dev.NumBlocks(), dev.BlockSize())
	}
	bs := int64(dev.BlockSize())
	raw := make([]byte, int64(sb.bmLen)*bs)
	for i := int64(0); i < int64(sb.bmLen); i++ {
		if err := dev.ReadBlock(int64(sb.bmStart)+i, raw[i*bs:(i+1)*bs]); err != nil {
			return nil, err
		}
	}
	bm, err := bitmapvec.Unmarshal(dev.NumBlocks(), raw)
	if err != nil {
		return nil, err
	}
	params := Params{
		PctAbandoned:      sb.pctAband,
		FreeMin:           int(sb.freeMin),
		FreeMax:           int(sb.freeMax),
		NDummy:            int(sb.nDummy),
		DummyAvgSize:      int64(sb.dummyAvg),
		MaxPlainFiles:     int(sb.maxPlain),
		MaxHeaderProbes:   int(sb.headerProbe),
		FreeProbeStop:     int(sb.freeStop),
		Seed:              sb.seed,
		FillVolume:        true,
		DeterministicKeys: sb.flags&flagDeterministicKeys != 0,
	}
	al, err := alloc.New(bm, int64(sb.dataStart), resolveAllocGroups(mcfg.allocGroups, dev.NumBlocks()-int64(sb.dataStart)), sb.seed+2)
	if err != nil {
		return nil, err
	}
	fs := &FS{dev: dev, cache: cache, retry: mcfg.retry, alloc: al, sb: sb, params: params, objs: newLockTable(), sealers: newSealerCache()}
	fs.plain, err = plainfs.NewEmbedded(dev, bm, int64(sb.inoStart), int64(sb.inoLen), int64(sb.dataStart), plainfs.Config{
		Policy:   plainfs.Random,
		MaxFiles: int(sb.maxPlain),
		Seed:     sb.seed + 1,
		Alloc:    al,
	})
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// Sync persists the superblock and the allocation bitmap. When the volume is
// mounted through a cache, dirty data blocks are flushed to the device first
// (so no metadata ever references data that has not reached the device) and
// the metadata writes are flushed after, leaving the on-device image fully
// consistent at return. The freeze gate drains every in-flight mutator
// first — hidden-object operations hold it through their object locks and
// plain-file mutators hold it around their calls — otherwise the bitmap
// could be written while a rewrite has allocated blocks whose data has not
// reached the cache yet, and the flushed image would pair fresh metadata
// with stale data. The bitmap serialization itself additionally quiesces
// every allocation group (alloc.MarshalBitmap), so even a mutator slipping
// past the gate could never yield a torn bitmap image.
func (fs *FS) Sync() error {
	fs.objs.Freeze()
	defer fs.objs.Unfreeze()
	fs.mu.Lock()
	defer fs.mu.Unlock()
	// A failed barrier means the device could not persist data that mutators
	// already believe durable — if it is a device-class fault, degrade the
	// mount so further mutations fail fast instead of widening the loss.
	return fs.observe(fs.syncLocked())
}

// lockcheck:holds volume/fsMu
func (fs *FS) syncLocked() error {
	if fs.cache != nil {
		// Data blocks before the metadata that references them.
		if err := fs.cache.Flush(); err != nil {
			return err
		}
	}
	buf := make([]byte, fs.dev.BlockSize())
	if err := encodeSuper(fs.sb, buf); err != nil {
		return err
	}
	if err := fs.dev.WriteBlock(0, buf); err != nil {
		return err
	}
	raw := fs.alloc.MarshalBitmap()
	bs := fs.dev.BlockSize()
	for i := int64(0); i < int64(fs.sb.bmLen); i++ {
		for j := range buf {
			buf[j] = 0
		}
		off := i * int64(bs)
		if off < int64(len(raw)) {
			copy(buf, raw[off:])
		}
		if err := fs.dev.WriteBlock(int64(fs.sb.bmStart)+i, buf); err != nil {
			return err
		}
	}
	if fs.cache != nil {
		// Push the superblock/bitmap writes out too.
		if err := fs.cache.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close syncs the volume, flushes any cache and stops the cache's
// background flusher goroutines, leaving the device image complete and no
// worker outliving the mount. The underlying store is NOT closed — the
// caller provided it and still owns it. The FS must not be used afterwards.
func (fs *FS) Close() error {
	err := fs.Sync()
	if fs.cache != nil {
		if serr := fs.cache.StopFlushers(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// Cache returns the block cache the volume is mounted through, or nil when
// uncached.
func (fs *FS) Cache() *blockcache.Cache { return fs.cache }

// CacheStats returns the cache counters and whether a cache is mounted.
func (fs *FS) CacheStats() (blockcache.Stats, bool) {
	if fs.cache == nil {
		return blockcache.Stats{}, false
	}
	return fs.cache.Stats(), true
}

// Params returns the volume's parameters.
func (fs *FS) Params() Params { return fs.params }

// Device returns the underlying block device.
func (fs *FS) Device() vdisk.Device { return fs.dev }

// Bitmap returns a consistent snapshot of the allocation bitmap, taken with
// all allocation groups quiesced. Adversary tooling diffs these snapshots.
func (fs *FS) Bitmap() *bitmapvec.Bitmap { return fs.alloc.Snapshot() }

// Alloc exposes the sharded allocator (group count, free-weight inspection).
func (fs *FS) Alloc() *alloc.Allocator { return fs.alloc }

// DataStart returns the first allocatable data block.
func (fs *FS) DataStart() int64 { return int64(fs.sb.dataStart) }

// FreeBlocks returns the number of blocks currently free in the bitmap.
func (fs *FS) FreeBlocks() int64 { return fs.alloc.FreeBlocks() }

// --- Plain file operations (fsapi.FileSystem via the central directory) ----

// SchemeName implements fsapi.FileSystem.
func (fs *FS) SchemeName() string { return "StegFS" }

// Plain mutators hold the freeze gate shared (never fs.mu): their block
// allocations go through the sharded allocator — which the embedded plainfs
// volume shares with the hidden-file machinery — so they contend with hidden
// writers only per allocation group, while the gate hold gives Sync and
// Backup a point where no plain mutation is in flight either. Plain readers
// need no FS-level lock at all: plainfs's own internal lock serializes its
// directory state, so plain reads never block hidden operations (or each
// other's probe phases).

// Create stores a plain file through the central directory.
func (fs *FS) Create(name string, data []byte) error {
	if err := fs.checkWritable(); err != nil {
		return err
	}
	fs.objs.EnterGate()
	defer fs.objs.ExitGate()
	return fs.observe(fs.plain.Create(name, data))
}

// Read returns a plain file's contents.
func (fs *FS) Read(name string) ([]byte, error) {
	return fs.plain.Read(name)
}

// Write replaces a plain file's contents.
func (fs *FS) Write(name string, data []byte) error {
	if err := fs.checkWritable(); err != nil {
		return err
	}
	fs.objs.EnterGate()
	defer fs.objs.ExitGate()
	return fs.observe(fs.plain.Write(name, data))
}

// Delete removes a plain file.
func (fs *FS) Delete(name string) error {
	if err := fs.checkWritable(); err != nil {
		return err
	}
	fs.objs.EnterGate()
	defer fs.objs.ExitGate()
	return fs.observe(fs.plain.Delete(name))
}

// Stat describes a plain file.
func (fs *FS) Stat(name string) (fsapi.FileInfo, error) {
	return fs.plain.Stat(name)
}

// PlainNames lists the central directory (visible to everyone, including
// adversaries).
func (fs *FS) PlainNames() []string {
	return fs.plain.Names()
}

// PlainReferencedBlocks returns every block reachable from the central
// directory. An adversary can compute this set too — it is exactly what the
// brute-force examination of §3.1 subtracts from the bitmap.
func (fs *FS) PlainReferencedBlocks() (map[int64]bool, error) {
	return fs.plain.ReferencedBlocks()
}

var _ fsapi.FileSystem = (*FS)(nil)
