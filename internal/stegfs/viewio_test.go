package stegfs

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func newIOView(t *testing.T) *HiddenView {
	t.Helper()
	fs, _ := newTestFS(t, 8192, 512, nil)
	return fs.NewHiddenView("io")
}

func TestReadAtBasics(t *testing.T) {
	v := newIOView(t)
	want := mkPayload(3000, 1)
	if err := v.Create("f", want); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, err := v.ReadAt("f", buf, 700)
	if err != nil || n != 100 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, want[700:800]) {
		t.Fatal("ReadAt content mismatch")
	}
	// Read straddling a block boundary (512).
	n, err = v.ReadAt("f", buf, 480)
	if err != nil || n != 100 {
		t.Fatalf("straddling ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(buf, want[480:580]) {
		t.Fatal("straddling ReadAt mismatch")
	}
	// Short read at EOF.
	n, err = v.ReadAt("f", buf, 2950)
	if err != io.EOF || n != 50 {
		t.Fatalf("EOF ReadAt = %d, %v", n, err)
	}
	if _, err = v.ReadAt("f", buf, 5000); err != io.EOF {
		t.Fatalf("past-EOF ReadAt err = %v", err)
	}
}

func TestWriteAtInPlace(t *testing.T) {
	v := newIOView(t)
	want := mkPayload(3000, 2)
	if err := v.Create("f", want); err != nil {
		t.Fatal(err)
	}
	patch := bytes.Repeat([]byte{0xAB}, 600) // straddles two block boundaries
	if _, err := v.WriteAt("f", patch, 400); err != nil {
		t.Fatal(err)
	}
	copy(want[400:], patch)
	got, err := v.Read("f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("WriteAt corrupted surroundings")
	}
	// Out-of-bounds writes refused.
	if _, err := v.WriteAt("f", patch, 2600); err == nil {
		t.Fatal("write past EOF should fail")
	}
	if _, err := v.WriteAt("f", patch, -1); err == nil {
		t.Fatal("negative offset should fail")
	}
}

func TestResizeGrowShrink(t *testing.T) {
	v := newIOView(t)
	want := mkPayload(1000, 3)
	if err := v.Create("f", want); err != nil {
		t.Fatal(err)
	}
	// Grow within the same block count first (1000 -> 1024).
	if err := v.Resize("f", 1024); err != nil {
		t.Fatal(err)
	}
	got, _ := v.Read("f")
	if len(got) != 1024 || !bytes.Equal(got[:1000], want) {
		t.Fatal("same-shape grow lost data")
	}
	for _, b := range got[1000:] {
		if b != 0 {
			t.Fatal("grown tail not zeroed")
		}
	}
	// Grow across blocks.
	if err := v.Resize("f", 5000); err != nil {
		t.Fatal(err)
	}
	got, _ = v.Read("f")
	if len(got) != 5000 || !bytes.Equal(got[:1000], want) {
		t.Fatal("cross-shape grow lost prefix")
	}
	// Shrink.
	if err := v.Resize("f", 300); err != nil {
		t.Fatal(err)
	}
	got, _ = v.Read("f")
	if len(got) != 300 || !bytes.Equal(got, want[:300]) {
		t.Fatal("shrink lost prefix")
	}
	if err := v.Resize("f", -1); err == nil {
		t.Fatal("negative resize should fail")
	}
}

// TestPropertyReadAtMatchesRead: random windows through ReadAt equal the
// same slices of a whole-file Read.
func TestPropertyReadAtMatchesRead(t *testing.T) {
	v := newIOView(t)
	want := mkPayload(9000, 4)
	if err := v.Create("f", want); err != nil {
		t.Fatal(err)
	}
	f := func(offRaw, lenRaw uint16) bool {
		off := int64(offRaw) % 9000
		l := int(lenRaw)%2000 + 1
		buf := make([]byte, l)
		n, err := v.ReadAt("f", buf, off)
		if err != nil && err != io.EOF {
			return false
		}
		return bytes.Equal(buf[:n], want[off:int(off)+n])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWriteAtReadAt: random in-place writes are faithfully readable
// and leave everything else intact.
func TestPropertyWriteAtReadAt(t *testing.T) {
	v := newIOView(t)
	ref := mkPayload(8000, 5)
	if err := v.Create("f", append([]byte(nil), ref...)); err != nil {
		t.Fatal(err)
	}
	f := func(offRaw, lenRaw uint16, tag byte) bool {
		off := int(offRaw) % 8000
		l := int(lenRaw)%1000 + 1
		if off+l > 8000 {
			l = 8000 - off
		}
		patch := bytes.Repeat([]byte{tag}, l)
		if _, err := v.WriteAt("f", patch, int64(off)); err != nil {
			return false
		}
		copy(ref[off:], patch)
		got, err := v.Read("f")
		if err != nil {
			return false
		}
		return bytes.Equal(got, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
