package stegfs

import (
	"fmt"
	"io"

	"stegfs/internal/ptree"
)

// Random-access I/O on hidden files. The DBMS extension (internal/stegdb,
// the future work of §6) needs page-granular reads and writes inside a
// hidden file without rewriting it wholesale; these methods perform sealed
// in-place block I/O through the file's inode table, batched into one
// vectored device submission per call.

// ReadAt reads len(p) bytes from the named hidden file starting at offset
// off. It returns io.EOF semantics like os.File.ReadAt: a short read at the
// end of the file reports io.EOF.
func (v *HiddenView) ReadAt(name string, p []byte, off int64) (int, error) {
	r, err := v.openShared(name)
	if err != nil {
		return 0, err
	}
	defer v.fs.release(r)
	if off < 0 {
		return 0, fmt.Errorf("stegfs: negative offset %d", off)
	}
	if off >= r.hdr.size {
		return 0, io.EOF
	}
	end := off + int64(len(p))
	if end > r.hdr.size {
		end = r.hdr.size
	}
	n, err := v.fs.rwHidden(r, p[:end-off], off, false)
	if err != nil {
		return n, err
	}
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p into the named hidden file at offset off, in place. The
// write must lie within the file's current size; use Resize to grow first.
func (v *HiddenView) WriteAt(name string, p []byte, off int64) (int, error) {
	r, err := v.openExclusive(name)
	if err != nil {
		return 0, err
	}
	defer v.fs.release(r)
	if off < 0 || off+int64(len(p)) > r.hdr.size {
		return 0, fmt.Errorf("stegfs: write [%d,%d) outside file of %d bytes (Resize first)",
			off, off+int64(len(p)), r.hdr.size)
	}
	return v.fs.rwHidden(r, p, off, true)
}

// rwHidden performs a sealed partial read or write across the file's data
// blocks, with read-modify-write on partially covered edge blocks. The
// spanned blocks are staged in one buffer and submitted as a single vectored
// request (reads: one batch in; writes: edge blocks batched in, then the
// whole span batched out). The caller holds the object's lock — shared for
// reads, exclusive for writes.
func (fs *FS) rwHidden(r *hiddenRef, p []byte, off int64, write bool) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	bs := int64(fs.dev.BlockSize())
	io_ := r.io(fs.dev)
	blocks, err := ptree.ReadInto(io_, r.hdr.root, r.hdr.nblocks, r.blockList)
	if err != nil {
		return 0, err
	}
	r.blockList = blocks
	first := off / bs
	last := (off + int64(len(p)) - 1) / bs
	if last >= int64(len(blocks)) {
		return 0, fmt.Errorf("stegfs: offset %d beyond mapped blocks", off+int64(len(p))-1)
	}
	span := blocks[first : last+1]
	// The span stages in the ref's reusable arena: with a warm cache the
	// whole read path — lock, header reload, tree walk, batched read,
	// vectored open — then runs without a single heap allocation.
	need := int(int64(len(span)) * bs)
	if cap(r.staging) < need {
		r.staging = make([]byte, need)
	}
	staging := r.staging[:need]
	bufs := r.spanViews(staging, len(span), int(bs))
	inOff := off - first*bs // offset of p[0] within the staging area

	if !write {
		if err := io_.ReadSpan(span, staging, bufs); err != nil {
			return 0, err
		}
		copy(p, staging[inOff:])
		return len(p), nil
	}

	// Read-modify-write: only partially covered edge blocks need their old
	// contents fetched.
	var edgeNs []int64
	var edgeBufs [][]byte
	if inOff != 0 {
		edgeNs = append(edgeNs, span[0])
		edgeBufs = append(edgeBufs, bufs[0])
	}
	if tail := inOff + int64(len(p)); tail != int64(len(span))*bs && (len(edgeNs) == 0 || span[len(span)-1] != edgeNs[0]) {
		edgeNs = append(edgeNs, span[len(span)-1])
		edgeBufs = append(edgeBufs, bufs[len(span)-1])
	}
	if err := io_.ReadBlocks(edgeNs, edgeBufs); err != nil {
		return 0, err
	}
	copy(staging[inOff:], p)
	if err := io_.WriteSpan(span, staging, bufs); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Resize grows or shrinks the named hidden file to newSize bytes, preserving
// the common prefix of the contents. Growth appends zero bytes.
func (v *HiddenView) Resize(name string, newSize int64) error {
	if newSize < 0 {
		return fmt.Errorf("stegfs: negative size %d", newSize)
	}
	r, err := v.openExclusive(name)
	if err != nil {
		return err
	}
	defer v.fs.release(r)
	if newSize == r.hdr.size {
		return nil
	}
	bs := int64(v.fs.dev.BlockSize())
	newBlocks := (newSize + bs - 1) / bs
	if newBlocks == r.hdr.nblocks {
		// Same shape: only the logical size changes. Zero the now-exposed
		// tail when growing within the last block.
		if newSize > r.hdr.size {
			zeroFrom := r.hdr.size
			zeroLen := newSize - r.hdr.size
			z := make([]byte, zeroLen)
			old := r.hdr.size
			r.hdr.size = newSize
			if _, err := v.fs.rwHidden(r, z, zeroFrom, true); err != nil {
				r.hdr.size = old
				return err
			}
		}
		r.hdr.size = newSize
		return v.fs.flushHeader(r)
	}
	// Shape change: preserve the prefix, rewrite.
	keep := r.hdr.size
	if newSize < keep {
		keep = newSize
	}
	prefix := make([]byte, keep)
	if keep > 0 {
		if _, err := v.fs.rwHidden(r, prefix, 0, false); err != nil {
			return err
		}
	}
	data := make([]byte, newSize)
	copy(data, prefix)
	return v.fs.rewriteHidden(r, data)
}
