package stegfs

import (
	"fmt"
	"io"

	"stegfs/internal/ptree"
)

// Random-access I/O on hidden files. The DBMS extension (internal/stegdb,
// the future work of §6) needs page-granular reads and writes inside a
// hidden file without rewriting it wholesale; these methods perform sealed
// in-place block I/O through the file's inode table.

// ReadAt reads len(p) bytes from the named hidden file starting at offset
// off. It returns io.EOF semantics like os.File.ReadAt: a short read at the
// end of the file reports io.EOF.
func (v *HiddenView) ReadAt(name string, p []byte, off int64) (int, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("stegfs: negative offset %d", off)
	}
	if off >= r.hdr.size {
		return 0, io.EOF
	}
	end := off + int64(len(p))
	if end > r.hdr.size {
		end = r.hdr.size
	}
	n, err := v.fs.rwHidden(r, p[:end-off], off, false)
	if err != nil {
		return n, err
	}
	if int64(n) < int64(len(p)) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt writes p into the named hidden file at offset off, in place. The
// write must lie within the file's current size; use Resize to grow first.
func (v *HiddenView) WriteAt(name string, p []byte, off int64) (int, error) {
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return 0, err
	}
	if off < 0 || off+int64(len(p)) > r.hdr.size {
		return 0, fmt.Errorf("stegfs: write [%d,%d) outside file of %d bytes (Resize first)",
			off, off+int64(len(p)), r.hdr.size)
	}
	return v.fs.rwHidden(r, p, off, true)
}

// rwHidden performs a sealed partial read or write across the file's data
// blocks, with read-modify-write on partially covered edge blocks.
func (fs *FS) rwHidden(r *hiddenRef, p []byte, off int64, write bool) (int, error) {
	bs := int64(fs.dev.BlockSize())
	io_ := r.io(fs.dev)
	blocks, err := ptree.Read(io_, r.hdr.root, r.hdr.nblocks)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, bs)
	done := 0
	for done < len(p) {
		pos := off + int64(done)
		bi := pos / bs
		if bi >= int64(len(blocks)) {
			return done, fmt.Errorf("stegfs: offset %d beyond mapped blocks", pos)
		}
		inOff := pos % bs
		chunk := int(bs - inOff)
		if chunk > len(p)-done {
			chunk = len(p) - done
		}
		if write {
			if inOff != 0 || chunk != int(bs) {
				if err := io_.ReadBlock(blocks[bi], buf); err != nil {
					return done, err
				}
			}
			copy(buf[inOff:], p[done:done+chunk])
			if err := io_.WriteBlock(blocks[bi], buf); err != nil {
				return done, err
			}
		} else {
			if err := io_.ReadBlock(blocks[bi], buf); err != nil {
				return done, err
			}
			copy(p[done:done+chunk], buf[inOff:int(inOff)+chunk])
		}
		done += chunk
	}
	return done, nil
}

// Resize grows or shrinks the named hidden file to newSize bytes, preserving
// the common prefix of the contents. Growth appends zero bytes.
func (v *HiddenView) Resize(name string, newSize int64) error {
	if newSize < 0 {
		return fmt.Errorf("stegfs: negative size %d", newSize)
	}
	v.fs.mu.Lock()
	defer v.fs.mu.Unlock()
	r, err := v.open(name)
	if err != nil {
		return err
	}
	if newSize == r.hdr.size {
		return nil
	}
	bs := int64(v.fs.dev.BlockSize())
	newBlocks := (newSize + bs - 1) / bs
	if newBlocks == r.hdr.nblocks {
		// Same shape: only the logical size changes. Zero the now-exposed
		// tail when growing within the last block.
		if newSize > r.hdr.size {
			zeroFrom := r.hdr.size
			zeroLen := newSize - r.hdr.size
			z := make([]byte, zeroLen)
			old := r.hdr.size
			r.hdr.size = newSize
			if _, err := v.fs.rwHidden(r, z, zeroFrom, true); err != nil {
				r.hdr.size = old
				return err
			}
		}
		r.hdr.size = newSize
		return v.fs.flushHeader(r)
	}
	// Shape change: preserve the prefix, rewrite.
	keep := r.hdr.size
	if newSize < keep {
		keep = newSize
	}
	prefix := make([]byte, keep)
	if keep > 0 {
		if _, err := v.fs.rwHidden(r, prefix, 0, false); err != nil {
			return err
		}
	}
	data := make([]byte, newSize)
	copy(data, prefix)
	return v.fs.rewriteHidden(r, data)
}
