package stegfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessions hammers one volume from several goroutine "users"
// doing hidden and plain operations simultaneously. Run with -race.
func TestConcurrentSessions(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, func(p *Params) { p.MaxPlainFiles = 128 })
	const users = 4
	const opsPerUser = 8
	var wg sync.WaitGroup
	errs := make(chan error, users*opsPerUser*2)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			uid := fmt.Sprintf("user%d", u)
			s, err := fs.NewSession(uid)
			if err != nil {
				errs <- err
				return
			}
			uak := []byte(uid + "-key")
			for i := 0; i < opsPerUser; i++ {
				name := fmt.Sprintf("f%d", i)
				want := mkPayload(2000+u*100+i, byte(u*16+i))
				if err := s.CreateHidden(name, uak, FlagFile, want); err != nil {
					errs <- fmt.Errorf("%s create %s: %w", uid, name, err)
					return
				}
				if err := s.Connect(name, uak); err != nil {
					errs <- fmt.Errorf("%s connect %s: %w", uid, name, err)
					return
				}
				got, err := s.ReadHidden(name)
				if err != nil {
					errs <- fmt.Errorf("%s read %s: %w", uid, name, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("%s %s content mismatch", uid, name)
					return
				}
				// Plain activity interleaves with everyone's hidden work.
				pname := fmt.Sprintf("%s-plain-%d", uid, i)
				if err := fs.Create(pname, mkPayload(500, byte(i))); err != nil {
					errs <- fmt.Errorf("%s plain create: %w", uid, err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everything is still intact afterwards.
	for u := 0; u < users; u++ {
		uid := fmt.Sprintf("user%d", u)
		s, _ := fs.NewSession(uid)
		uak := []byte(uid + "-key")
		entries, err := s.ListHidden(uak)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != opsPerUser {
			t.Fatalf("%s lost entries: %d of %d", uid, len(entries), opsPerUser)
		}
	}
}

// TestConcurrentCachedReadersWriters drives hidden-file readers and writers
// from many goroutines through a volume mounted on the block-cache layer,
// with Syncs (cache flush barriers) interleaved. Run with -race: this is the
// test that proves the cache serializes correctly under the FS lock. A final
// uncached remount proves no write was stranded in the cache.
func TestConcurrentCachedReadersWriters(t *testing.T) {
	for _, capacity := range []int{1, 64, 2048} {
		t.Run(fmt.Sprintf("cache=%d", capacity), func(t *testing.T) {
			fs, store := newCachedTestFS(t, 16384, 512, capacity)
			const users = 4
			const files = 3
			const rounds = 5

			// Each user creates its files up front, then all users rewrite and
			// re-read them concurrently.
			views := make([]*HiddenView, users)
			for u := 0; u < users; u++ {
				views[u] = fs.NewHiddenView(fmt.Sprintf("user%d", u))
				for i := 0; i < files; i++ {
					if err := views[u].Create(fmt.Sprintf("f%d", i), mkPayload(2500, byte(u*16+i))); err != nil {
						t.Fatalf("user%d create f%d: %v", u, i, err)
					}
				}
			}
			var wg sync.WaitGroup
			errs := make(chan error, users*rounds*files)
			final := make([][][]byte, users)
			for u := 0; u < users; u++ {
				final[u] = make([][]byte, files)
				wg.Add(1)
				go func(u int) {
					defer wg.Done()
					v := views[u]
					for r := 0; r < rounds; r++ {
						for i := 0; i < files; i++ {
							name := fmt.Sprintf("f%d", i)
							want := mkPayload(2500, byte(u*16+i)+byte(r+1))
							if err := v.Write(name, want); err != nil {
								errs <- fmt.Errorf("user%d write %s: %w", u, name, err)
								return
							}
							final[u][i] = want
							got, err := v.Read(name)
							if err != nil {
								errs <- fmt.Errorf("user%d read %s: %w", u, name, err)
								return
							}
							if !bytes.Equal(got, want) {
								errs <- fmt.Errorf("user%d %s torn through cache", u, name)
								return
							}
						}
						if r%2 == 1 {
							if err := v.Sync(); err != nil {
								errs <- fmt.Errorf("user%d sync: %w", u, err)
								return
							}
						}
					}
				}(u)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if err := fs.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// Remount the raw store uncached: every last write must be there.
			fs2, err := Mount(store)
			if err != nil {
				t.Fatalf("remount: %v", err)
			}
			for u := 0; u < users; u++ {
				v2 := fs2.NewHiddenView(fmt.Sprintf("user%d", u))
				for i := 0; i < files; i++ {
					name := fmt.Sprintf("f%d", i)
					if err := v2.Adopt(name); err != nil {
						t.Fatalf("user%d adopt %s: %v", u, name, err)
					}
					got, err := v2.Read(name)
					if err != nil {
						t.Fatalf("user%d read %s after remount: %v", u, name, err)
					}
					if !bytes.Equal(got, final[u][i]) {
						t.Fatalf("user%d %s lost in cache across Close+remount", u, name)
					}
				}
			}
		})
	}
}

// TestConcurrentDummyTicks runs dummy maintenance concurrently with user
// activity; neither side may corrupt the other.
func TestConcurrentDummyTicks(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, nil)
	view := fs.NewHiddenView("u")
	stop := make(chan struct{})
	tickErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				tickErr <- nil
				return
			default:
				if err := fs.TickDummies(); err != nil {
					tickErr <- err
					return
				}
			}
		}
	}()
	ref := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("f%d", i)
		ref[name] = mkPayload(4000, byte(i))
		if err := view.Create(name, ref[name]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-tickErr; err != nil {
		t.Fatalf("dummy tick under load: %v", err)
	}
	for name, want := range ref {
		got, err := view.Read(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted by concurrent ticks (%v)", name, err)
		}
	}
}
