package stegfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentSessions hammers one volume from several goroutine "users"
// doing hidden and plain operations simultaneously. Run with -race.
func TestConcurrentSessions(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, func(p *Params) { p.MaxPlainFiles = 128 })
	const users = 4
	const opsPerUser = 8
	var wg sync.WaitGroup
	errs := make(chan error, users*opsPerUser*2)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			uid := fmt.Sprintf("user%d", u)
			s, err := fs.NewSession(uid)
			if err != nil {
				errs <- err
				return
			}
			uak := []byte(uid + "-key")
			for i := 0; i < opsPerUser; i++ {
				name := fmt.Sprintf("f%d", i)
				want := mkPayload(2000+u*100+i, byte(u*16+i))
				if err := s.CreateHidden(name, uak, FlagFile, want); err != nil {
					errs <- fmt.Errorf("%s create %s: %w", uid, name, err)
					return
				}
				if err := s.Connect(name, uak); err != nil {
					errs <- fmt.Errorf("%s connect %s: %w", uid, name, err)
					return
				}
				got, err := s.ReadHidden(name)
				if err != nil {
					errs <- fmt.Errorf("%s read %s: %w", uid, name, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("%s %s content mismatch", uid, name)
					return
				}
				// Plain activity interleaves with everyone's hidden work.
				pname := fmt.Sprintf("%s-plain-%d", uid, i)
				if err := fs.Create(pname, mkPayload(500, byte(i))); err != nil {
					errs <- fmt.Errorf("%s plain create: %w", uid, err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everything is still intact afterwards.
	for u := 0; u < users; u++ {
		uid := fmt.Sprintf("user%d", u)
		s, _ := fs.NewSession(uid)
		uak := []byte(uid + "-key")
		entries, err := s.ListHidden(uak)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != opsPerUser {
			t.Fatalf("%s lost entries: %d of %d", uid, len(entries), opsPerUser)
		}
	}
}

// TestConcurrentDummyTicks runs dummy maintenance concurrently with user
// activity; neither side may corrupt the other.
func TestConcurrentDummyTicks(t *testing.T) {
	fs, _ := newTestFS(t, 16384, 512, nil)
	view := fs.NewHiddenView("u")
	stop := make(chan struct{})
	tickErr := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				tickErr <- nil
				return
			default:
				if err := fs.TickDummies(); err != nil {
					tickErr <- err
					return
				}
			}
		}
	}()
	ref := map[string][]byte{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("f%d", i)
		ref[name] = mkPayload(4000, byte(i))
		if err := view.Create(name, ref[name]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-tickErr; err != nil {
		t.Fatalf("dummy tick under load: %v", err)
	}
	for name, want := range ref {
		got, err := view.Read(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted by concurrent ticks (%v)", name, err)
		}
	}
}
