package stegfs

import (
	"bytes"
	"fmt"
	"testing"

	"stegfs/internal/vdisk"
)

// newCachedTestFS formats a volume mounted through a block cache of the
// given capacity (0 = pass-through, no cache object at all).
func newCachedTestFS(t *testing.T, numBlocks int64, blockSize int, cacheBlocks int) (*FS, *vdisk.MemStore) {
	t.Helper()
	store, err := vdisk.NewMemStore(numBlocks, blockSize)
	if err != nil {
		t.Fatalf("NewMemStore: %v", err)
	}
	p := DefaultParams()
	p.NDummy = 2
	p.DummyAvgSize = 4 * int64(blockSize)
	p.MaxPlainFiles = 64
	p.DeterministicKeys = true // so a fresh view can re-derive FAKs via Adopt
	fs, err := Format(store, p, WithCache(cacheBlocks))
	if err != nil {
		t.Fatalf("Format (cache=%d): %v", cacheBlocks, err)
	}
	return fs, store
}

// TestCacheMountAfterFlushRoundTrip proves correctness is cache-transparent:
// at every capacity (including 0 = pass-through and 1 = maximal thrashing),
// hidden and plain files written through a cached mount survive a Sync and
// are readable from a fresh, UNCACHED mount of the raw store — i.e. no data
// is ever stranded in the cache.
func TestCacheMountAfterFlushRoundTrip(t *testing.T) {
	for _, capacity := range []int{0, 1, 8, 64, 1024} {
		t.Run(fmt.Sprintf("cache=%d", capacity), func(t *testing.T) {
			fs, store := newCachedTestFS(t, 8192, 512, capacity)
			view := fs.NewHiddenView("alice")

			hidden := map[string][]byte{}
			for i := 0; i < 6; i++ {
				name := fmt.Sprintf("h%d", i)
				hidden[name] = mkPayload(3000+i*700, byte(i+1))
				if err := view.Create(name, hidden[name]); err != nil {
					t.Fatalf("Create %s: %v", name, err)
				}
			}
			// Overwrite one with a different shape to exercise realloc paths.
			hidden["h1"] = mkPayload(9000, 0xAB)
			if err := view.Write("h1", hidden["h1"]); err != nil {
				t.Fatalf("Write h1: %v", err)
			}
			plain := map[string][]byte{}
			for i := 0; i < 4; i++ {
				name := fmt.Sprintf("p%d", i)
				plain[name] = mkPayload(1200+i*300, byte(0x40+i))
				if err := fs.Create(name, plain[name]); err != nil {
					t.Fatalf("plain Create %s: %v", name, err)
				}
			}

			// Close path: flush everything through the view.
			if err := view.Close(); err != nil {
				t.Fatalf("view Close: %v", err)
			}
			if capacity > 0 {
				if d := fs.Cache().Dirty(); d != 0 {
					t.Fatalf("%d dirty blocks left after Close", d)
				}
			}

			// Remount the raw store with no cache: everything must be there.
			fs2, err := Mount(store)
			if err != nil {
				t.Fatalf("uncached remount: %v", err)
			}
			view2 := fs2.NewHiddenView("alice")
			for name, want := range hidden {
				if err := view2.Adopt(name); err != nil {
					t.Fatalf("Adopt %s: %v", name, err)
				}
				got, err := view2.Read(name)
				if err != nil {
					t.Fatalf("Read %s: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("hidden %s corrupted across cached Sync + remount", name)
				}
			}
			for name, want := range plain {
				got, err := fs2.Read(name)
				if err != nil {
					t.Fatalf("plain Read %s: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("plain %s corrupted across cached Sync + remount", name)
				}
			}

			// And a cached remount reads the same bytes.
			fs3, err := Mount(store, WithCache(capacity))
			if err != nil {
				t.Fatalf("cached remount: %v", err)
			}
			view3 := fs3.NewHiddenView("alice")
			for name, want := range hidden {
				if err := view3.Adopt(name); err != nil {
					t.Fatalf("cached Adopt %s: %v", name, err)
				}
				got, err := view3.Read(name)
				if err != nil {
					t.Fatalf("cached Read %s: %v", name, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("hidden %s corrupted through cached mount", name)
				}
			}
		})
	}
}

// TestCacheHitsOnRepeatedReads checks the perf contract: re-reading the same
// hidden file through a cached mount is served from memory (nonzero hit
// rate, fewer device reads) and costs less simulated disk time than the
// uncached mount.
func TestCacheHitsOnRepeatedReads(t *testing.T) {
	run := func(capacity int) (elapsed float64, fs *FS, disk *vdisk.Disk) {
		t.Helper()
		store, err := vdisk.NewMemStore(8192, 512)
		if err != nil {
			t.Fatal(err)
		}
		disk = vdisk.NewDisk(store, vdisk.DefaultGeometry())
		p := DefaultParams()
		p.NDummy = 2
		p.DummyAvgSize = 4 * 512
		p.MaxPlainFiles = 64
		p.FillVolume = false
		p.DeterministicKeys = true
		fs, err = Format(disk, p, WithCache(capacity))
		if err != nil {
			t.Fatal(err)
		}
		view := fs.NewHiddenView("u")
		payload := mkPayload(20000, 0x5A)
		if err := view.Create("doc", payload); err != nil {
			t.Fatal(err)
		}
		disk.ResetClock()
		for i := 0; i < 8; i++ {
			got, err := view.Read("doc")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("payload corrupted")
			}
		}
		return disk.Elapsed().Seconds(), fs, disk
	}

	uncached, _, _ := run(0)
	cached, fs, _ := run(2048)
	stats, ok := fs.CacheStats()
	if !ok {
		t.Fatal("CacheStats: no cache mounted")
	}
	if stats.Hits == 0 {
		t.Fatalf("no cache hits on repeated reads: %+v", stats)
	}
	if stats.HitRate() <= 0 {
		t.Fatalf("hit rate %v not positive", stats.HitRate())
	}
	if cached >= uncached {
		t.Fatalf("cached repeated reads (%.6fs) not faster than uncached (%.6fs)", cached, uncached)
	}
}
