package stegfs

// Offline cross-validation of a StegFS image ("stegfsck"). The checker works
// under the same constraint the paper imposes on every observer: without a
// file's access key, its blocks are indistinguishable from abandoned cover
// blocks. So the check is asymmetric — everything the superblock makes
// self-describing (geometry, the metadata region, plain files, the dummy
// set) is verified unconditionally, while hidden objects are verified only
// for the keys the caller supplies. Used blocks no supplied key reaches are
// *counted*, never flagged: they are exactly the abandoned-plus-unknown
// cover set whose unaccountability is the point of the design.

import (
	"fmt"
	"sort"

	"stegfs/internal/sgcrypto"
	"stegfs/internal/vdisk"
)

// KeyRef names one hidden object by its physical name and file access key.
type KeyRef struct {
	Phys string
	FAK  []byte
}

// TableRef names one embedded stegdb table to open and structurally check.
// A nil FAK derives the key from the volume key (DeterministicKeys volumes
// only), mirroring HiddenView.Adopt.
type TableRef struct {
	UID  string
	Name string
	FAK  []byte
}

// CheckOptions selects what a Check pass can see and whether it may write.
type CheckOptions struct {
	// ViewFiles maps uid -> hidden file names whose FAKs derive from the
	// volume key (requires a DeterministicKeys volume).
	ViewFiles map[string][]string
	// Keys lists hidden objects by explicit physical name and FAK.
	Keys []KeyRef
	// Tables lists embedded stegdb tables to open and check.
	Tables []TableRef
	// CheckTable structurally checks one embedded database table through a
	// view and returns the hidden file names the table lives in. Callers
	// wire it to stegdb (CheckAny discovers plain and partitioned layouts,
	// adopts every constituent file — partitions, journal siblings — into
	// the view, and runs the structural check); stegfs cannot import stegdb
	// itself — the database is a layer *above* the filesystem. The checker
	// then gives each returned file the full hidden-object verification so
	// all of the table's blocks are accounted. Nil limits table checks to
	// the single underlying hidden file named by the TableRef.
	CheckTable func(view *HiddenView, name string) ([]string, error)
	// Repair re-marks reachable-but-free blocks as used and persists the
	// bitmap. Nothing else is mutated; without Repair, Check never writes.
	Repair bool
}

// CheckReport is the outcome of one Check pass.
type CheckReport struct {
	// Errors are inconsistencies found; empty means the image is clean
	// (with respect to the keys supplied).
	Errors []string
	// Repaired describes fixes applied (Repair mode only).
	Repaired []string

	PlainFiles     int
	DummiesChecked int
	HiddenChecked  int
	TablesChecked  int

	// UsedBlocks/FreeBlocks are the bitmap totals after any repair.
	UsedBlocks int64
	FreeBlocks int64
	// AccountedBlocks is how many data-region blocks some checked object
	// owns; UnaccountedUsed is the remainder — abandoned blocks plus hidden
	// objects whose keys were not supplied. Deliberately not an error.
	AccountedBlocks int64
	UnaccountedUsed int64
}

// OK reports whether the pass found no inconsistencies.
func (r *CheckReport) OK() bool { return len(r.Errors) == 0 }

func (r *CheckReport) errf(format string, args ...any) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

// Summary renders the report as a short human-readable block.
func (r *CheckReport) Summary() string {
	s := fmt.Sprintf("plain files:      %d\ndummies checked:  %d\nhidden checked:   %d\ntables checked:   %d\nused blocks:      %d\nfree blocks:      %d\naccounted:        %d\nunaccounted used: %d (abandoned + keyless hidden; by design)\n",
		r.PlainFiles, r.DummiesChecked, r.HiddenChecked, r.TablesChecked,
		r.UsedBlocks, r.FreeBlocks, r.AccountedBlocks, r.UnaccountedUsed)
	for _, fix := range r.Repaired {
		s += "repaired: " + fix + "\n"
	}
	for _, e := range r.Errors {
		s += "ERROR: " + e + "\n"
	}
	return s
}

// deriveViewFAK is HiddenView.Adopt's key derivation, exposed to the checker
// so callers can name files instead of shipping raw keys.
func deriveViewFAK(sb *superblock, uid, name string) []byte {
	sig := sgcrypto.Signature("stegfs.view.fak\x00"+uid+"\x00"+name, sb.volKey[:])
	return sig[:]
}

// Check cross-validates the StegFS image on dev. It mounts the device
// read-only in effect: without opts.Repair no block is written. The returned
// error is reserved for the checker itself failing to run; inconsistencies
// in the image land in the report.
func Check(dev vdisk.Device, opts CheckOptions) (*CheckReport, error) {
	rep := &CheckReport{}

	// 1. Superblock: decode the raw block ourselves so a corrupt superblock
	// is a reported finding, not an opaque mount failure.
	buf := make([]byte, dev.BlockSize())
	if err := dev.ReadBlock(0, buf); err != nil {
		return nil, fmt.Errorf("fsck: read superblock: %w", err)
	}
	sb, err := decodeSuper(buf)
	if err != nil {
		rep.errf("superblock: %v", err)
		return rep, nil
	}
	if got := uint64(dev.NumBlocks()); sb.numBlocks != got {
		rep.errf("superblock: volume claims %d blocks, device has %d", sb.numBlocks, got)
	}
	if got := uint32(dev.BlockSize()); sb.blockSize != got {
		rep.errf("superblock: volume claims block size %d, device has %d", sb.blockSize, got)
	}
	if !(1 <= sb.bmStart && sb.bmStart < sb.inoStart && sb.inoStart < sb.dataStart && sb.dataStart <= sb.numBlocks) {
		rep.errf("superblock: region layout invalid (bm %d, ino %d, data %d, total %d)",
			sb.bmStart, sb.inoStart, sb.dataStart, sb.numBlocks)
	}
	if len(rep.Errors) > 0 {
		// Geometry is broken; everything below would chase bad pointers.
		return rep, nil
	}

	fs, err := Mount(dev)
	if err != nil {
		rep.errf("mount: %v", err)
		return rep, nil
	}

	dataStart := int64(sb.dataStart)
	numBlocks := int64(sb.numBlocks)

	// 2. Metadata region: every block below dataStart is permanently
	// allocated; a clear bit there means the persisted bitmap is damaged.
	for b := int64(0); b < dataStart; b++ {
		if fs.alloc.Test(b) {
			continue
		}
		if opts.Repair && fs.alloc.TryAlloc(b) {
			rep.Repaired = append(rep.Repaired, fmt.Sprintf("re-marked metadata block %d used", b))
		} else {
			rep.errf("metadata block %d is marked free", b)
		}
	}

	// owners maps each accounted data block to the object that claimed it,
	// so cross-object overlaps surface with both names attached.
	owners := make(map[int64]string)
	claim := func(owner string, blocks []int64) {
		for _, b := range blocks {
			if b < 0 || b >= numBlocks {
				rep.errf("%s: block %d outside volume [0, %d)", owner, b, numBlocks)
				continue
			}
			if b < dataStart {
				rep.errf("%s: block %d inside the metadata region [0, %d)", owner, b, dataStart)
				continue
			}
			if prev, dup := owners[b]; dup {
				rep.errf("block %d owned by both %s and %s", b, prev, owner)
				continue
			}
			owners[b] = owner
			if fs.alloc.Test(b) {
				continue
			}
			if opts.Repair && fs.alloc.TryAlloc(b) {
				rep.Repaired = append(rep.Repaired, fmt.Sprintf("re-marked block %d used (reachable from %s)", b, owner))
			} else {
				rep.errf("%s: block %d reachable but marked free", owner, b)
			}
		}
	}

	// 3. Plain files: the central directory is not deniable, so every block
	// it references must be consistent unconditionally.
	rep.PlainFiles = len(fs.PlainNames())
	plainBlocks, err := fs.plain.ReferencedBlocks()
	if err != nil {
		rep.errf("plain directory: %v", err)
	} else {
		blocks := make([]int64, 0, len(plainBlocks))
		for b := range plainBlocks {
			blocks = append(blocks, b)
		}
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		claim("plainfs", blocks)
	}

	// checkObject opens one hidden object, validates its header checksum
	// (openShared re-reads the header and verifies its embedded signature),
	// walks and claims its ptree blocks, and re-reads the full payload so a
	// damaged ptree or unreadable block surfaces. Payload *content* is CTR
	// ciphertext with no per-block MAC — silent data bit flips are invisible
	// here by design; end-to-end integrity is the IDA share CRC's job.
	checkObject := func(label, phys string, fak []byte) bool {
		r, err := fs.openShared(phys, fak)
		if err != nil {
			rep.errf("%s: %v", label, err)
			return false
		}
		blocks, err := fs.hiddenBlocks(r)
		fs.release(r)
		if err != nil {
			rep.errf("%s: block walk: %v", label, err)
			return false
		}
		claim(label, blocks)
		if _, err := fs.readHiddenObject(phys, fak); err != nil {
			rep.errf("%s: payload: %v", label, err)
			return false
		}
		return true
	}

	// 4. Dummies: their keys derive from the superblock's volume key, so the
	// system-maintained cover set is always checkable offline.
	for i := 0; i < int(sb.nDummy); i++ {
		if checkObject(fmt.Sprintf("dummy %d", i), dummyPhys(i), fs.dummyFAK(i)) {
			rep.DummiesChecked++
		}
	}

	// 5. Keyed hidden objects.
	var keyed []KeyRef
	if len(opts.ViewFiles) > 0 && sb.flags&flagDeterministicKeys == 0 {
		rep.errf("ViewFiles given but the volume was not formatted with DeterministicKeys")
	} else {
		uids := make([]string, 0, len(opts.ViewFiles))
		for uid := range opts.ViewFiles {
			uids = append(uids, uid)
		}
		sort.Strings(uids)
		for _, uid := range uids {
			for _, name := range opts.ViewFiles[uid] {
				keyed = append(keyed, KeyRef{Phys: uid + "/" + name, FAK: deriveViewFAK(sb, uid, name)})
			}
		}
	}
	keyed = append(keyed, opts.Keys...)
	for _, k := range keyed {
		if checkObject(fmt.Sprintf("hidden %q", k.Phys), k.Phys, k.FAK) {
			rep.HiddenChecked++
		}
	}

	// 6. Embedded database tables: the injected checker runs first — it is
	// the only layer that knows whether the name is a plain table or the
	// zeroth member of a partitioned one, and it adopts every constituent
	// hidden file (partitions, journal siblings) into the view as it
	// discovers them. Each discovered file then gets the full object check
	// (header CRC, ptree walk, block accounting) using the key the view
	// remembered at adoption, so a multi-file table is accounted whole.
	for _, tr := range opts.Tables {
		label := fmt.Sprintf("table %s/%s", tr.UID, tr.Name)
		if tr.FAK == nil && sb.flags&flagDeterministicKeys == 0 {
			rep.errf("%s: nil FAK requires a DeterministicKeys volume", label)
			continue
		}
		if opts.CheckTable == nil {
			// No database layer injected: only the named hidden file can be
			// verified (partitioned tables need CheckTable for discovery).
			fak := tr.FAK
			if fak == nil {
				fak = deriveViewFAK(sb, tr.UID, tr.Name)
			}
			if checkObject(label, tr.UID+"/"+tr.Name, fak) {
				rep.TablesChecked++
			}
			continue
		}
		view := fs.NewHiddenView(tr.UID)
		if tr.FAK != nil {
			if err := view.AdoptWithFAK(tr.Name, tr.FAK); err != nil {
				rep.errf("%s: %v", label, err)
				continue
			}
		}
		files, err := opts.CheckTable(view, tr.Name)
		if err != nil {
			rep.errf("%s: %v", label, err)
			continue
		}
		clean := true
		for _, f := range files {
			fak, err := view.fakFor(f)
			if err != nil {
				rep.errf("%s: constituent %q: %v", label, f, err)
				clean = false
				continue
			}
			if !checkObject(fmt.Sprintf("%s file %q", label, f), tr.UID+"/"+f, fak) {
				clean = false
			}
		}
		if clean {
			rep.TablesChecked++
		}
	}

	// 7. Accounting. Used-but-unowned data blocks are counted, not flagged:
	// distinguishing abandoned cover from keyless hidden data is exactly
	// what the scheme makes impossible.
	for b := dataStart; b < numBlocks; b++ {
		if !fs.alloc.Test(b) {
			continue
		}
		if _, ok := owners[b]; ok {
			rep.AccountedBlocks++
		} else {
			rep.UnaccountedUsed++
		}
	}
	rep.FreeBlocks = fs.alloc.FreeBlocks()
	rep.UsedBlocks = numBlocks - rep.FreeBlocks

	// 8. Persist repairs. This is the only write path in the checker.
	if opts.Repair && len(rep.Repaired) > 0 {
		if err := fs.Sync(); err != nil {
			rep.errf("repair: persisting bitmap: %v", err)
		}
	}
	return rep, nil
}
