package stegfs

import (
	"strings"
	"testing"

	"stegfs/internal/vdisk"
)

func TestParamsValidateTable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		bad    bool
	}{
		{"defaults", func(p *Params) {}, false},
		{"negative abandoned", func(p *Params) { p.PctAbandoned = -0.1 }, true},
		{"abandoned = 1", func(p *Params) { p.PctAbandoned = 1 }, true},
		{"free bounds inverted", func(p *Params) { p.FreeMin = 5; p.FreeMax = 2 }, true},
		{"negative dummies", func(p *Params) { p.NDummy = -1 }, true},
		{"negative dummy size", func(p *Params) { p.DummyAvgSize = -1 }, true},
		{"zero plain files", func(p *Params) { p.MaxPlainFiles = 0 }, true},
		{"zero probes", func(p *Params) { p.MaxHeaderProbes = 0 }, true},
		{"zero free stop", func(p *Params) { p.FreeProbeStop = 0 }, true},
		{"zero abandoned ok", func(p *Params) { p.PctAbandoned = 0 }, false},
		{"zero dummies ok", func(p *Params) { p.NDummy = 0 }, false},
	}
	for _, tc := range cases {
		p := DefaultParams()
		tc.mutate(&p)
		err := p.Validate()
		if tc.bad && err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
		if !tc.bad && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
	}
}

func TestSuperblockCodecRoundTrip(t *testing.T) {
	sb := &superblock{
		blockSize:   1024,
		numBlocks:   1 << 20,
		bmStart:     1,
		bmLen:       128,
		inoStart:    129,
		inoLen:      512,
		dataStart:   641,
		maxPlain:    1024,
		pctAband:    0.0125,
		freeMin:     1,
		freeMax:     10,
		nDummy:      10,
		dummyAvg:    1 << 20,
		seed:        -42,
		nAbandoned:  10480,
		headerProbe: 1 << 17,
		freeStop:    64,
		flags:       flagDeterministicKeys,
	}
	for i := range sb.volKey {
		sb.volKey[i] = byte(i * 7)
	}
	buf := make([]byte, 1024)
	if err := encodeSuper(sb, buf); err != nil {
		t.Fatal(err)
	}
	got, err := decodeSuper(buf)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *sb {
		t.Fatalf("superblock round trip mismatch:\n got %+v\nwant %+v", got, sb)
	}
}

func TestSuperblockRejectsGarbage(t *testing.T) {
	buf := make([]byte, 1024)
	copy(buf, "NOTSTEG!")
	if _, err := decodeSuper(buf); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := decodeSuper(buf[:10]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestFormatRejectsTinyVolume(t *testing.T) {
	store, err := vdisk.NewMemStore(8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(store, DefaultParams()); err == nil {
		t.Fatal("8-block volume should not format")
	}
}

func TestFormatRejectsTinyBlocks(t *testing.T) {
	store, err := vdisk.NewMemStore(4096, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Format(store, DefaultParams()); err == nil {
		t.Fatal("64-byte blocks cannot hold the superblock")
	}
}

func TestFormatZeroDummiesZeroAbandoned(t *testing.T) {
	// The degenerate configuration must still be a working file system
	// (just one with weaker cover, as §3.1 discusses).
	fs, _ := newTestFS(t, 4096, 512, func(p *Params) {
		p.NDummy = 0
		p.PctAbandoned = 0
	})
	view := fs.NewHiddenView("u")
	if err := view.Create("f", mkPayload(1000, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Read("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.TickDummies(); err != nil {
		t.Fatalf("zero-dummy tick should be a no-op, got %v", err)
	}
	if fs.AbandonedCount() != 0 {
		t.Fatal("abandoned count should be zero")
	}
}

func TestPhysicalNamesEmbedUID(t *testing.T) {
	fs, _ := newTestFS(t, 4096, 512, nil)
	s, err := fs.NewSession("alice")
	if err != nil {
		t.Fatal(err)
	}
	phys := s.physFor("docs/x")
	if !strings.HasPrefix(phys, "alice/") {
		t.Fatalf("physical name %q does not embed the uid", phys)
	}
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.PctAbandoned != 0.01 {
		t.Fatalf("PctAbandoned = %v, Table 1 says 1%%", p.PctAbandoned)
	}
	if p.FreeMin != 0 || p.FreeMax != 10 {
		t.Fatalf("free pool bounds [%d,%d], Table 1 says [0,10]", p.FreeMin, p.FreeMax)
	}
	if p.NDummy != 10 {
		t.Fatalf("NDummy = %d, Table 1 says 10", p.NDummy)
	}
	if p.DummyAvgSize != 1<<20 {
		t.Fatalf("DummyAvgSize = %d, Table 1 says 1 MB", p.DummyAvgSize)
	}
}
